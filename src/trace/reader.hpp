// Streaming trace decoder with a bounded prefetch buffer.
//
// The reader pulls kPrefetchRecords-record chunks from its byte source into
// a fixed buffer and hands out decoded ChampSimRecords one at a time — the
// decoupled-frontend shape of ChampSim's IFETCH/DECODE buffers, sized so an
// arbitrarily large trace streams in constant memory. Each refill that finds
// the buffer empty is counted as one decode stall (a pure function of the
// byte stream, so the counter is deterministic and never feeds timing back
// into decoding). A stream whose byte count is not a multiple of the record
// size throws: the trace was truncated mid-record.
#pragma once

#include <memory>
#include <vector>

#include "trace/byte_source.hpp"
#include "trace/champsim.hpp"

namespace tlrob::trace {

inline constexpr u32 kPrefetchRecords = 256;

class TraceReader {
 public:
  explicit TraceReader(std::unique_ptr<TraceByteSource> src);

  /// Decodes the next record; false at clean end-of-trace. Throws
  /// std::runtime_error on a mid-record truncation or corrupt stream.
  bool next(ChampSimRecord& out);

  /// Repositions to record 0 (loop-rewind).
  void rewind();

  u64 records_decoded() const { return decoded_; }
  u64 rewinds() const { return rewinds_; }
  u64 decode_stall_cycles() const { return stalls_; }

 private:
  void refill();

  std::unique_ptr<TraceByteSource> src_;
  std::vector<u8> buf_;
  std::size_t buf_len_ = 0;
  std::size_t buf_pos_ = 0;
  bool eof_ = false;
  u64 decoded_ = 0;
  u64 rewinds_ = 0;
  u64 stalls_ = 0;
};

}  // namespace tlrob::trace
