// Rewindable byte streams feeding the trace decoder.
//
// Three backends: an in-memory buffer (synthesized traces, tests), a raw
// file, and a gzip file (zlib inflate, compiled in when CMake finds ZLIB).
// open_trace_file() sniffs the gzip magic so .champsim and .champsim.gz
// inputs need no flag. Corrupt or truncated compressed streams throw
// std::runtime_error — the campaign engine turns that into a structured
// per-job failure, never a crash.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tlrob::trace {

class TraceByteSource {
 public:
  virtual ~TraceByteSource() = default;

  /// Reads up to `n` bytes into `dst`; returns the count actually read.
  /// A short read means end-of-stream. Throws std::runtime_error on a
  /// corrupt or prematurely-ended compressed stream.
  virtual std::size_t read(u8* dst, std::size_t n) = 0;

  /// Repositions to the first byte (loop-rewind support).
  virtual void rewind() = 0;
};

/// Stream over a shared immutable buffer (uncompressed records).
class MemoryByteSource final : public TraceByteSource {
 public:
  explicit MemoryByteSource(std::shared_ptr<const std::vector<u8>> bytes)
      : bytes_(std::move(bytes)) {}

  std::size_t read(u8* dst, std::size_t n) override;
  void rewind() override { pos_ = 0; }

 private:
  std::shared_ptr<const std::vector<u8>> bytes_;
  std::size_t pos_ = 0;
};

/// True when gzip-compressed traces can be read (built against zlib).
bool gzip_supported();

/// Opens `path`, sniffing the gzip magic to pick the raw or inflating
/// backend. Throws std::runtime_error when the file is missing or gzip'd
/// while gzip support is not built.
std::unique_ptr<TraceByteSource> open_trace_file(const std::string& path);

}  // namespace tlrob::trace
