// TraceWorkload (shared, immutable) + TraceThreadSource (per-thread replay).
//
// A TraceWorkload is built once per distinct trace: one streaming pass
// lowers the record stream into a Program (lowering.hpp) and records the
// trace's identity (record count, FNV-1a content hash). Each simulated
// thread then replays the stream through its own TraceThreadSource — a
// ThreadContext whose refill() decodes records instead of walking the
// synthetic generators, so SmtCore's fetch hot path is untouched. Replay
// rewinds to record 0 at end-of-trace (fixed-instruction-budget runs), and
// every dynamic fact the timing model consumes (branch outcome, actual
// target, memory address) comes from the trace, keeping the predictors and
// the memory system honest.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trace/lowering.hpp"
#include "trace/reader.hpp"
#include "workload/thread_context.hpp"

namespace tlrob::trace {

class TraceWorkload {
 public:
  /// Loads and lowers a trace file (gzip sniffed). Throws std::runtime_error
  /// on missing/empty/corrupt input.
  static std::shared_ptr<const TraceWorkload> from_file(const std::string& path);

  /// Builds from in-memory records (synthesized traces, tests) — no file IO.
  static std::shared_ptr<const TraceWorkload> from_records(
      const std::string& name, const std::vector<ChampSimRecord>& records);

  /// Opens a fresh decode stream over the trace bytes (one per thread).
  std::unique_ptr<TraceReader> open_reader() const;

  const std::string& name() const { return name_; }
  const TraceLowering& lowering() const { return lowering_; }

 private:
  TraceWorkload() = default;

  std::string name_;
  TraceLowering lowering_;
  std::string path_;                           // file-backed when non-empty
  std::shared_ptr<const std::vector<u8>> mem_;  // memory-backed otherwise
};

/// Builds the Benchmark wrapper SmtCore consumes: the lowered program, a
/// wrong-path address spec covering the trace's observed data footprint, a
/// dummy outcome generator (trace branches carry their own outcomes), and a
/// source factory constructing TraceThreadSource instances.
Benchmark trace_benchmark(std::shared_ptr<const TraceWorkload> workload);

class TraceThreadSource final : public ThreadContext {
 public:
  TraceThreadSource(const Benchmark& bench, Addr addr_space_base, u64 salt,
                    std::shared_ptr<const TraceWorkload> workload);

  void append_source_counters(u32 tid, std::map<std::string, u64>& counters) const override;

  u64 unmapped_fallbacks() const { return unmapped_; }
  const TraceReader& reader() const { return *reader_; }

 protected:
  void refill() override;

 private:
  void advance_record();

  std::shared_ptr<const TraceWorkload> workload_;
  std::unique_ptr<TraceReader> reader_;
  ChampSimRecord cur_{};
  u32 cur_block_ = 0;
  ChampSimRecord next_{};
  u32 next_block_ = 0;
  std::vector<ArchOp> uops_;  // lowered uops of cur_, replayed in order
  u32 uop_pos_ = 0;
  u64 unmapped_ = 0;
};

}  // namespace tlrob::trace
