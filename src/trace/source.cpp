#include "trace/source.hpp"

#include <stdexcept>
#include <utility>

#include "trace/byte_source.hpp"

namespace tlrob::trace {

namespace {

/// Threads own disjoint 64 GiB address windows ((t+1) << 36, smt_sim.cpp);
/// trace data addresses fold into the window so coexisting replayed threads
/// never alias each other's lines.
constexpr Addr kDataAddrMask = (Addr{1} << 36) - 1;

}  // namespace

std::shared_ptr<const TraceWorkload> TraceWorkload::from_file(const std::string& path) {
  std::shared_ptr<TraceWorkload> wl(new TraceWorkload());
  TraceReader reader(open_trace_file(path));
  wl->lowering_ = build_lowering(reader, path);
  // The "trace:" prefix makes the workload name a valid resolve.hpp token,
  // so names recorded in JSONL replay through resolve_benchmark() as-is.
  wl->name_ = "trace:" + path;
  wl->path_ = path;
  return wl;
}

std::shared_ptr<const TraceWorkload> TraceWorkload::from_records(
    const std::string& name, const std::vector<ChampSimRecord>& records) {
  auto bytes = std::make_shared<std::vector<u8>>(records.size() * kRecordBytes);
  for (std::size_t i = 0; i < records.size(); ++i)
    serialize_record(records[i], bytes->data() + i * kRecordBytes);
  std::shared_ptr<TraceWorkload> wl(new TraceWorkload());
  TraceReader reader(std::make_unique<MemoryByteSource>(bytes));
  wl->lowering_ = build_lowering(reader, name);
  wl->name_ = name;
  wl->mem_ = std::move(bytes);
  return wl;
}

std::unique_ptr<TraceReader> TraceWorkload::open_reader() const {
  if (!path_.empty()) return std::make_unique<TraceReader>(open_trace_file(path_));
  return std::make_unique<TraceReader>(std::make_unique<MemoryByteSource>(mem_));
}

Benchmark trace_benchmark(std::shared_ptr<const TraceWorkload> workload) {
  const TraceLowering& low = workload->lowering();
  Benchmark b;
  b.name = workload->name();
  b.program = low.program;
  // Wrong-path synthesis reads this spec (fetch walks the static CFG past a
  // mispredict and asks the spec for plausible addresses); correct-path
  // replay never does. kStride keeps SmtCore's cache prewarm heuristics out
  // of the picture — the trace stream itself warms the hierarchy.
  AddrGenSpec wrong_path;
  wrong_path.pattern = AddrPattern::kStride;
  wrong_path.base = static_cast<Addr>(low.data_base & kDataAddrMask);
  wrong_path.region_bytes = low.data_span;
  wrong_path.stride = 64;
  b.agens = {wrong_path};
  b.bgens = {BranchGenSpec{}};  // outcomes come from the trace, never this
  b.expected_class = IlpClass::kMid;
  b.source_factory = [wl = std::move(workload)](const Benchmark& bench, Addr base,
                                                u64 salt) -> std::unique_ptr<ThreadContext> {
    return std::make_unique<TraceThreadSource>(bench, base, salt, wl);
  };
  return b;
}

TraceThreadSource::TraceThreadSource(const Benchmark& bench, Addr addr_space_base, u64 salt,
                                     std::shared_ptr<const TraceWorkload> workload)
    : ThreadContext(bench, addr_space_base, salt), workload_(std::move(workload)) {
  reader_ = workload_->open_reader();
  if (!reader_->next(next_))
    throw std::runtime_error(workload_->name() + ": trace contains no records");
  const u32* b = workload_->lowering().block_of_ip.find(next_.ip);
  if (b == nullptr)
    throw std::runtime_error(workload_->name() + ": trace changed between load and replay");
  next_block_ = *b;
  uops_.reserve(8);
  advance_record();
}

void TraceThreadSource::advance_record() {
  cur_ = next_;
  cur_block_ = next_block_;

  // Lookahead: the dynamic successor of cur_ is whatever record comes next;
  // at end-of-stream the trace rewinds to record 0 (fixed-instruction-budget
  // replay), matching the CFG closure built by build_lowering().
  if (!reader_->next(next_)) {
    reader_->rewind();
    if (!reader_->next(next_))
      throw std::runtime_error(workload_->name() + ": trace became empty on rewind");
  }
  const u32* nb = workload_->lowering().block_of_ip.find(next_.ip);
  if (nb == nullptr)
    throw std::runtime_error(workload_->name() + ": trace changed between load and replay");
  next_block_ = *nb;

  // Re-derive the uop roles from the block's static shape (a pure function
  // of the first-seen record bytes at this PC) and attach this occurrence's
  // dynamic facts: memory addresses positionally, branch outcome and actual
  // target from the record and the lookahead.
  u64 load_addrs[4];
  u32 n_loads = 0;
  for (const u64 a : cur_.src_mem)
    if (a != 0) load_addrs[n_loads++] = a;
  u64 store_addrs[2];
  u32 n_stores = 0;
  for (const u64 a : cur_.dest_mem)
    if (a != 0) store_addrs[n_stores++] = a;

  const Addr base = addr_space_base();
  const Addr fallback = base + (workload_->lowering().data_base & kDataAddrMask);
  const BasicBlock& bb = program().block(cur_block_);
  const Addr actual_target = block_pc(next_block_);

  uops_.clear();
  uop_pos_ = 0;
  u32 li = 0, sti = 0;
  bool mismatch = false;
  for (const StaticInst& si : bb.insts) {
    ArchOp op;
    op.si = &si;
    op.pc = si.pc;
    op.block = cur_block_;
    switch (si.op) {
      case OpClass::kLoad:
        if (li < n_loads) {
          op.mem_addr = base + (load_addrs[li++] & kDataAddrMask);
        } else {
          op.mem_addr = fallback;
          mismatch = true;
        }
        break;
      case OpClass::kStore:
        if (sti < n_stores) {
          op.mem_addr = base + (store_addrs[sti++] & kDataAddrMask);
        } else {
          op.mem_addr = fallback;
          mismatch = true;
        }
        break;
      default:
        if (is_control(si.op)) {
          op.taken = (si.op == OpClass::kBranch) ? (cur_.branch_taken != 0) : true;
          op.target_pc = actual_target;
        }
        break;
    }
    uops_.push_back(op);
  }
  // Dynamic references beyond the static shape (a PC whose later occurrences
  // touch more addresses than its first) are dropped, not modelled.
  if (li < n_loads || sti < n_stores) mismatch = true;
  if (mismatch) ++unmapped_;
}

void TraceThreadSource::refill() {
  for (u32 i = 0; i < kBatch; ++i) {
    if (uop_pos_ == uops_.size()) advance_record();
    batch_[i] = uops_[uop_pos_++];
  }
  batch_pos_ = 0;
  batch_len_ = kBatch;
}

void TraceThreadSource::append_source_counters(u32 tid,
                                               std::map<std::string, u64>& counters) const {
  const std::string prefix = "trace.t" + std::to_string(tid) + ".";
  counters[prefix + "records_decoded"] = reader_->records_decoded();
  counters[prefix + "rewinds"] = reader_->rewinds();
  counters[prefix + "unmapped_fallbacks"] = unmapped_;
  counters[prefix + "decode_stall_cycles"] = reader_->decode_stall_cycles();
  counters[prefix + "content_hash"] = workload_->lowering().content_hash;
  counters["trace.records_decoded"] += reader_->records_decoded();
  counters["trace.rewinds"] += reader_->rewinds();
  counters["trace.unmapped_fallbacks"] += unmapped_;
  counters["trace.decode_stall_cycles"] += reader_->decode_stall_cycles();
}

}  // namespace tlrob::trace
