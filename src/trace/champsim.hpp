// ChampSim-compatible instruction-trace records.
//
// The on-disk format is ChampSim's `input_instr`: 64 bytes per dynamic
// instruction, little-endian, usually gzip-compressed —
//
//   u64 ip;                        // instruction pointer
//   u8  is_branch, branch_taken;
//   u8  destination_registers[2];  // 0 = unused slot
//   u8  source_registers[4];       // 0 = unused slot
//   u64 destination_memory[2];     // store addresses, 0 = unused slot
//   u64 source_memory[4];          // load addresses, 0 = unused slot
//
// Branch *kind* is not stored; ChampSim infers it from which of the special
// registers (stack pointer, flags, instruction pointer) a branch reads and
// writes. We implement the same inference so public ChampSim traces and the
// traces tlrob-mktrace synthesizes decode identically.
#pragma once

#include <array>

#include "common/types.hpp"

namespace tlrob::trace {

inline constexpr u32 kRecordBytes = 64;
inline constexpr u32 kNumDestRegs = 2;
inline constexpr u32 kNumSrcRegs = 4;
inline constexpr u32 kNumDestMem = 2;
inline constexpr u32 kNumSrcMem = 4;

// ChampSim's special x86 register numbers (champsim::REG_*).
inline constexpr u8 kRegStackPointer = 6;
inline constexpr u8 kRegFlags = 25;
inline constexpr u8 kRegInstructionPointer = 26;

/// Register indices at or above this value are malformed (x86 traces use
/// 0..~64; 128+ never appears in a well-formed ChampSim trace).
inline constexpr u8 kMaxTraceReg = 128;

struct ChampSimRecord {
  u64 ip = 0;
  u8 is_branch = 0;
  u8 branch_taken = 0;
  std::array<u8, kNumDestRegs> dest_regs{};
  std::array<u8, kNumSrcRegs> src_regs{};
  std::array<u64, kNumDestMem> dest_mem{};
  std::array<u64, kNumSrcMem> src_mem{};
};

/// Branch kinds inferred ChampSim-style from register read/write sets.
enum class BranchKind : u8 {
  kNotBranch,
  kDirectJump,
  kIndirectJump,
  kConditional,
  kDirectCall,
  kIndirectCall,
  kReturn,
  kOther,  // is_branch set but no known register pattern
};

/// ChampSim's branch classification (ooo_cpu.cc): which of SP/FLAGS/IP the
/// instruction reads and writes determines the kind.
BranchKind classify_branch(const ChampSimRecord& rec);

/// Serialize to / deserialize from the 64-byte little-endian wire format.
void serialize_record(const ChampSimRecord& rec, u8* out);
ChampSimRecord deserialize_record(const u8* in);

/// FNV-1a over a record's wire bytes, chained from `h` (seed with
/// kFnvOffsetBasis). Used for trace content identity.
inline constexpr u64 kFnvOffsetBasis = 0xcbf29ce484222325ULL;
u64 fnv1a_record(u64 h, const ChampSimRecord& rec);

}  // namespace tlrob::trace
