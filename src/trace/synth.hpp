// Deterministic trace synthesis from the synthetic SPEC profiles.
//
// Rather than invent a second workload model, synthesis *transcribes*: it
// runs the existing ThreadContext over a spec profile (the same functional
// walk SmtCore fetches from) and converts each correct-path micro-op into
// one ChampSim record — PCs from the finalized program, memory addresses
// from the address generators, branch outcomes from the outcome generators,
// and the register read/write conventions ChampSim's branch classifier
// expects. Same (profile, records, seed) in, bit-identical trace out; this
// is what lets tests and CI exercise the whole trace frontend without any
// external trace file.
#pragma once

#include <string>
#include <vector>

#include "trace/champsim.hpp"

namespace tlrob::trace {

/// Runs `profile` (a spec_profiles.hpp benchmark name) for `records`
/// instructions and transcribes the stream. Throws std::out_of_range for an
/// unknown profile, std::invalid_argument for records == 0.
std::vector<ChampSimRecord> synthesize_records(const std::string& profile, u64 records,
                                               u64 seed);

/// Wire-format serialization of a record sequence.
std::vector<u8> records_to_bytes(const std::vector<ChampSimRecord>& records);

/// Writes records to `path`: gzip-compressed when the path ends in ".gz"
/// (requires zlib, throws otherwise), raw 64-byte records else. Throws
/// std::runtime_error on IO failure.
void write_trace_file(const std::string& path, const std::vector<ChampSimRecord>& records);

}  // namespace tlrob::trace
