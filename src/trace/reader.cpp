#include "trace/reader.hpp"

#include <stdexcept>

namespace tlrob::trace {

TraceReader::TraceReader(std::unique_ptr<TraceByteSource> src) : src_(std::move(src)) {
  buf_.resize(static_cast<std::size_t>(kPrefetchRecords) * kRecordBytes);
}

void TraceReader::refill() {
  ++stalls_;
  buf_pos_ = 0;
  buf_len_ = 0;
  while (buf_len_ < buf_.size()) {
    const std::size_t got = src_->read(buf_.data() + buf_len_, buf_.size() - buf_len_);
    if (got == 0) break;
    buf_len_ += got;
  }
  if (buf_len_ < buf_.size()) {
    eof_ = true;
    if (buf_len_ % kRecordBytes != 0)
      throw std::runtime_error("trace ends mid-record (" + std::to_string(buf_len_ % kRecordBytes) +
                               " stray bytes; file truncated?)");
  }
}

bool TraceReader::next(ChampSimRecord& out) {
  if (buf_pos_ == buf_len_) {
    if (eof_) return false;
    refill();
    if (buf_len_ == 0) return false;
  }
  out = deserialize_record(buf_.data() + buf_pos_);
  buf_pos_ += kRecordBytes;
  ++decoded_;
  return true;
}

void TraceReader::rewind() {
  src_->rewind();
  buf_pos_ = 0;
  buf_len_ = 0;
  eof_ = false;
  ++rewinds_;
}

}  // namespace tlrob::trace

