#include "trace/lowering.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace tlrob::trace {

namespace {

/// Memory-footprint cap for the wrong-path address spec: sparse traces can
/// span the whole virtual address space, but wrong-path synthesis only needs
/// a plausible-locality region.
constexpr u64 kMaxDataSpan = u64{1} << 26;

/// Unique-PC cap: a runaway (or non-trace) input must fail with a message,
/// not exhaust memory building one block per corrupt "record".
constexpr u32 kMaxBlocks = u32{1} << 20;

OpClass control_class(BranchKind kind) {
  switch (kind) {
    case BranchKind::kConditional: return OpClass::kBranch;
    case BranchKind::kDirectCall:
    case BranchKind::kIndirectCall: return OpClass::kCall;
    case BranchKind::kReturn: return OpClass::kReturn;
    default: return OpClass::kJump;  // direct/indirect jumps, BRANCH_OTHER
  }
}

}  // namespace

ArchReg map_trace_reg(u8 r) {
  if (r == 0 || r == kRegInstructionPointer) return kNoReg;
  if (r < 33) return ireg((static_cast<u32>(r) - 1) % 30);
  if (r < 65) return freg(static_cast<u32>(r) - 33);
  return ireg((static_cast<u32>(r) - 65) % 30);
}

std::vector<StaticInst> lower_record(const ChampSimRecord& rec) {
  ArchReg srcs[2] = {kNoReg, kNoReg};
  u32 n_src = 0;
  bool any_fp = false;
  for (const u8 r : rec.src_regs) {
    const ArchReg m = map_trace_reg(r);
    if (m == kNoReg) continue;
    any_fp = any_fp || is_fp_reg(m);
    if (n_src < 2) srcs[n_src++] = m;
  }
  ArchReg dests[kNumDestRegs] = {kNoReg, kNoReg};
  u32 n_dest = 0;
  for (const u8 r : rec.dest_regs) {
    const ArchReg m = map_trace_reg(r);
    if (m == kNoReg) continue;
    any_fp = any_fp || is_fp_reg(m);
    dests[n_dest++] = m;
  }

  u32 n_loads = 0, n_stores = 0;
  for (const u64 a : rec.src_mem) n_loads += (a != 0);
  for (const u64 a : rec.dest_mem) n_stores += (a != 0);

  std::vector<StaticInst> uops;
  uops.reserve(2 + n_loads + n_stores);

  if (n_loads + n_stores > 0) {
    StaticInst agen;
    agen.op = OpClass::kIntAlu;
    agen.dest = kAgenTempReg;
    agen.src[0] = srcs[0];
    agen.src[1] = srcs[1];
    uops.push_back(agen);
  }
  for (u32 i = 0; i < n_loads; ++i) {
    StaticInst ld;
    ld.op = OpClass::kLoad;
    ld.agen_id = 0;
    ld.src[0] = kAgenTempReg;
    ld.dest = (i < n_dest) ? dests[i] : kValueTempReg;
    uops.push_back(ld);
  }
  for (u32 i = 0; i < n_stores; ++i) {
    StaticInst st;
    st.op = OpClass::kStore;
    st.agen_id = 0;
    st.src[0] = kAgenTempReg;
    st.src[1] = srcs[0];  // store data dependence
    uops.push_back(st);
  }

  const BranchKind kind = classify_branch(rec);
  if (kind != BranchKind::kNotBranch) {
    StaticInst br;
    br.op = control_class(kind);
    if (br.op == OpClass::kBranch) br.bgen_id = 0;
    br.src[0] = srcs[0];
    br.src[1] = srcs[1];
    uops.push_back(br);
  } else if (n_loads + n_stores == 0) {
    StaticInst alu;
    alu.op = any_fp ? OpClass::kFpAdd : OpClass::kIntAlu;
    alu.dest = dests[0];
    alu.src[0] = srcs[0];
    alu.src[1] = srcs[1];
    uops.push_back(alu);
  }
  return uops;
}

TraceLowering build_lowering(TraceReader& reader, const std::string& name) {
  auto program = std::make_shared<Program>(name);
  program->set_generator_counts(1, 1);

  // Build-time tables. The unordered map is lookup-only (never iterated);
  // deterministic iteration happens over block_ip / the FlatMap below.
  std::unordered_map<Addr, u32> block_of;
  std::vector<Addr> block_ip;
  struct Succ {
    Addr fallthrough_ip = 0;
    Addr taken_ip = 0;
    bool have_fallthrough = false;
    bool have_taken = false;
  };
  std::vector<Succ> succs;

  TraceLowering out;
  Addr data_min = 0, data_max = 0;
  bool have_data = false;

  auto validate_regs = [&](const ChampSimRecord& rec, u64 record_index) {
    for (const u8 r : rec.src_regs)
      if (r >= kMaxTraceReg)
        throw std::runtime_error(name + ": record " + std::to_string(record_index) +
                                 ": source register index " + std::to_string(r) +
                                 " out of range (max " + std::to_string(kMaxTraceReg - 1) + ")");
    for (const u8 r : rec.dest_regs)
      if (r >= kMaxTraceReg)
        throw std::runtime_error(name + ": record " + std::to_string(record_index) +
                                 ": destination register index " + std::to_string(r) +
                                 " out of range (max " + std::to_string(kMaxTraceReg - 1) + ")");
  };

  auto intern_block = [&](const ChampSimRecord& rec) -> u32 {
    const auto it = block_of.find(rec.ip);
    if (it != block_of.end()) return it->second;
    if (program->num_blocks() >= kMaxBlocks)
      throw std::runtime_error(name + ": more than " + std::to_string(kMaxBlocks) +
                               " unique trace PCs; input does not look like an "
                               "instruction trace");
    const u32 id = program->add_block();
    program->block(id).insts = lower_record(rec);
    block_of.emplace(rec.ip, id);
    block_ip.push_back(rec.ip);
    succs.emplace_back();
    return id;
  };

  auto note_data = [&](const ChampSimRecord& rec) {
    for (const u64 a : rec.src_mem)
      if (a != 0) {
        data_min = have_data ? std::min(data_min, a) : a;
        data_max = have_data ? std::max(data_max, a) : a;
        have_data = true;
      }
    for (const u64 a : rec.dest_mem)
      if (a != 0) {
        data_min = have_data ? std::min(data_min, a) : a;
        data_max = have_data ? std::max(data_max, a) : a;
        have_data = true;
      }
  };

  ChampSimRecord first{}, prev{};
  bool have_prev = false;
  ChampSimRecord rec;
  while (reader.next(rec)) {
    if (out.record_count == 0) first = rec;
    out.content_hash = fnv1a_record(out.content_hash, rec);
    validate_regs(rec, out.record_count);
    note_data(rec);
    const u32 id = intern_block(rec);
    if (have_prev) {
      const u32 prev_id = block_of.find(prev.ip)->second;
      Succ& s = succs[prev_id];
      if (prev.is_branch != 0 && prev.branch_taken != 0) {
        if (!s.have_taken) {
          s.taken_ip = rec.ip;
          s.have_taken = true;
        }
      } else if (!s.have_fallthrough) {
        s.fallthrough_ip = rec.ip;
        s.have_fallthrough = true;
      }
    }
    (void)id;
    prev = rec;
    have_prev = true;
    ++out.record_count;
  }
  if (out.record_count == 0)
    throw std::runtime_error(name + ": trace contains no records");

  // Loop-rewind closure: the last record's dynamic successor is record 0.
  {
    const u32 prev_id = block_of.find(prev.ip)->second;
    Succ& s = succs[prev_id];
    if (prev.is_branch != 0 && prev.branch_taken != 0) {
      if (!s.have_taken) {
        s.taken_ip = first.ip;
        s.have_taken = true;
      }
    } else if (!s.have_fallthrough) {
      s.fallthrough_ip = first.ip;
      s.have_fallthrough = true;
    }
  }

  // Patch successor edges: unobserved edges (never-taken branch, always-taken
  // jump fallthrough) steer to block 0 — only wrong-path synthesis and
  // static-target prediction ever consult them.
  for (u32 b = 0; b < program->num_blocks(); ++b) {
    BasicBlock& bb = program->block(b);
    const Succ& s = succs[b];
    bb.fallthrough = s.have_fallthrough ? block_of.find(s.fallthrough_ip)->second : 0;
    StaticInst& last = bb.insts.back();
    if (is_control(last.op))
      last.taken_block = s.have_taken ? block_of.find(s.taken_ip)->second : 0;
  }

  program->finalize();

  out.block_of_ip.reserve(block_ip.size());
  for (u32 b = 0; b < block_ip.size(); ++b) out.block_of_ip.emplace(block_ip[b], b);
  out.block_of_ip.seal();

  if (have_data) {
    out.data_base = data_min & ~Addr{4095};
    out.data_span = std::clamp<u64>(data_max - out.data_base, 8, kMaxDataSpan);
  }
  out.program = std::move(program);
  return out;
}

}  // namespace tlrob::trace
