#include "trace/champsim.hpp"

namespace tlrob::trace {

namespace {

void put_u64(u8* out, u64 v) {
  for (u32 i = 0; i < 8; ++i) out[i] = static_cast<u8>(v >> (8 * i));
}

u64 get_u64(const u8* in) {
  u64 v = 0;
  for (u32 i = 0; i < 8; ++i) v |= static_cast<u64>(in[i]) << (8 * i);
  return v;
}

bool reads(const ChampSimRecord& r, u8 reg) {
  for (const u8 s : r.src_regs)
    if (s == reg) return true;
  return false;
}

bool writes(const ChampSimRecord& r, u8 reg) {
  for (const u8 d : r.dest_regs)
    if (d == reg) return true;
  return false;
}

/// Reads any register other than SP/FLAGS/IP (ChampSim's "reads_other").
bool reads_other(const ChampSimRecord& r) {
  for (const u8 s : r.src_regs)
    if (s != 0 && s != kRegStackPointer && s != kRegFlags && s != kRegInstructionPointer)
      return true;
  return false;
}

}  // namespace

BranchKind classify_branch(const ChampSimRecord& rec) {
  if (!rec.is_branch) return BranchKind::kNotBranch;
  const bool rd_sp = reads(rec, kRegStackPointer);
  const bool rd_flags = reads(rec, kRegFlags);
  const bool rd_ip = reads(rec, kRegInstructionPointer);
  const bool rd_other = reads_other(rec);
  const bool wr_sp = writes(rec, kRegStackPointer);
  const bool wr_ip = writes(rec, kRegInstructionPointer);

  if (!rd_sp && !rd_flags && wr_ip && !rd_other) return BranchKind::kDirectJump;
  if (!rd_sp && !rd_flags && wr_ip && rd_other) return BranchKind::kIndirectJump;
  if (!rd_sp && rd_ip && !wr_sp && wr_ip && rd_flags && !rd_other)
    return BranchKind::kConditional;
  if (rd_sp && rd_ip && wr_sp && wr_ip && !rd_flags && !rd_other)
    return BranchKind::kDirectCall;
  if (rd_sp && rd_ip && wr_sp && wr_ip && !rd_flags && rd_other)
    return BranchKind::kIndirectCall;
  if (rd_sp && !rd_ip && wr_sp && wr_ip) return BranchKind::kReturn;
  return BranchKind::kOther;
}

void serialize_record(const ChampSimRecord& rec, u8* out) {
  put_u64(out, rec.ip);
  out[8] = rec.is_branch;
  out[9] = rec.branch_taken;
  for (u32 i = 0; i < kNumDestRegs; ++i) out[10 + i] = rec.dest_regs[i];
  for (u32 i = 0; i < kNumSrcRegs; ++i) out[12 + i] = rec.src_regs[i];
  for (u32 i = 0; i < kNumDestMem; ++i) put_u64(out + 16 + 8 * i, rec.dest_mem[i]);
  for (u32 i = 0; i < kNumSrcMem; ++i) put_u64(out + 32 + 8 * i, rec.src_mem[i]);
}

ChampSimRecord deserialize_record(const u8* in) {
  ChampSimRecord rec;
  rec.ip = get_u64(in);
  rec.is_branch = in[8];
  rec.branch_taken = in[9];
  for (u32 i = 0; i < kNumDestRegs; ++i) rec.dest_regs[i] = in[10 + i];
  for (u32 i = 0; i < kNumSrcRegs; ++i) rec.src_regs[i] = in[12 + i];
  for (u32 i = 0; i < kNumDestMem; ++i) rec.dest_mem[i] = get_u64(in + 16 + 8 * i);
  for (u32 i = 0; i < kNumSrcMem; ++i) rec.src_mem[i] = get_u64(in + 32 + 8 * i);
  return rec;
}

u64 fnv1a_record(u64 h, const ChampSimRecord& rec) {
  u8 bytes[kRecordBytes];
  serialize_record(rec, bytes);
  for (const u8 b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace tlrob::trace
