#include "trace/synth.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#if defined(TLROB_HAVE_ZLIB)
#include <zlib.h>
#endif

#include "workload/spec_profiles.hpp"
#include "workload/thread_context.hpp"

namespace tlrob::trace {

namespace {

/// Micro-op register -> trace register. +1 keeps integer register 0 out of
/// the trace's "unused slot" encoding; FP registers land on 33..64, matching
/// the range map_trace_reg() folds back onto the FP file.
u8 map_out(ArchReg r) { return r == kNoReg ? 0 : static_cast<u8>(r + 1); }

/// Address 0 would read as an unused slot; fold it to a nearby nonzero one.
u64 nonzero_addr(Addr a) { return a == 0 ? 8 : a; }

ChampSimRecord transcribe(const ArchOp& op) {
  const StaticInst& si = *op.si;
  ChampSimRecord rec;
  rec.ip = op.pc;
  switch (si.op) {
    // Control ops carry the fixed special-register read/write sets that make
    // classify_branch() reproduce their kind; their data sources are dropped
    // (ChampSim's classifier requires exact register patterns).
    case OpClass::kBranch:
      rec.is_branch = 1;
      rec.branch_taken = op.taken ? 1 : 0;
      rec.src_regs[0] = kRegInstructionPointer;
      rec.src_regs[1] = kRegFlags;
      rec.dest_regs[0] = kRegInstructionPointer;
      break;
    case OpClass::kJump:
      rec.is_branch = 1;
      rec.branch_taken = 1;
      rec.dest_regs[0] = kRegInstructionPointer;
      break;
    case OpClass::kCall:
      rec.is_branch = 1;
      rec.branch_taken = 1;
      rec.src_regs[0] = kRegInstructionPointer;
      rec.src_regs[1] = kRegStackPointer;
      rec.dest_regs[0] = kRegInstructionPointer;
      rec.dest_regs[1] = kRegStackPointer;
      break;
    case OpClass::kReturn:
      rec.is_branch = 1;
      rec.branch_taken = 1;
      rec.src_regs[0] = kRegStackPointer;
      rec.dest_regs[0] = kRegInstructionPointer;
      rec.dest_regs[1] = kRegStackPointer;
      break;
    default:
      rec.dest_regs[0] = map_out(si.dest);
      rec.src_regs[0] = map_out(si.src[0]);
      rec.src_regs[1] = map_out(si.src[1]);
      if (si.op == OpClass::kLoad) rec.src_mem[0] = nonzero_addr(op.mem_addr);
      if (si.op == OpClass::kStore) rec.dest_mem[0] = nonzero_addr(op.mem_addr);
      break;
  }
  return rec;
}

}  // namespace

std::vector<ChampSimRecord> synthesize_records(const std::string& profile, u64 records,
                                               u64 seed) {
  if (records == 0) throw std::invalid_argument("trace synthesis: record count must be > 0");
  const Benchmark& bench = spec_benchmark(profile);
  ThreadContext ctx(bench, /*addr_space_base=*/0, seed);
  std::vector<ChampSimRecord> out;
  out.reserve(records);
  for (u64 i = 0; i < records; ++i) out.push_back(transcribe(ctx.next()));
  return out;
}

std::vector<u8> records_to_bytes(const std::vector<ChampSimRecord>& records) {
  std::vector<u8> bytes(records.size() * kRecordBytes);
  for (std::size_t i = 0; i < records.size(); ++i)
    serialize_record(records[i], bytes.data() + i * kRecordBytes);
  return bytes;
}

void write_trace_file(const std::string& path, const std::vector<ChampSimRecord>& records) {
  const std::vector<u8> bytes = records_to_bytes(records);
  const bool want_gz = path.size() > 3 && path.compare(path.size() - 3, 3, ".gz") == 0;
  if (want_gz) {
#if defined(TLROB_HAVE_ZLIB)
    gzFile gz = gzopen(path.c_str(), "wb");
    if (gz == nullptr) throw std::runtime_error("cannot open " + path + " for writing");
    std::size_t written = 0;
    while (written < bytes.size()) {
      const unsigned chunk =
          static_cast<unsigned>(std::min<std::size_t>(bytes.size() - written, 1u << 20));
      const int got = gzwrite(gz, bytes.data() + written, chunk);
      if (got <= 0) {
        gzclose(gz);
        throw std::runtime_error("gzip write failed for " + path);
      }
      written += static_cast<std::size_t>(got);
    }
    if (gzclose(gz) != Z_OK) throw std::runtime_error("gzip close failed for " + path);
#else
    throw std::runtime_error("cannot write " + path +
                             ": gzip output requires zlib, which this build lacks "
                             "(drop the .gz suffix for a raw trace)");
#endif
  } else {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + path + " for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("write failed for " + path);
  }
}

}  // namespace tlrob::trace
