// Lowering ChampSim trace records onto the micro-op ISA.
//
// One streaming pass over the trace builds a Program whose CFG mirrors the
// dynamic stream: one basic block per unique trace PC, lowered from the
// first dynamic occurrence of that PC. Memory instructions split into an
// address-generation uop plus one access uop per referenced address (the
// access consumes the agen uop's result through a reserved scratch
// register), register identities map deterministically onto the 64-register
// micro-op file, and branch records terminate their block with the control
// class ChampSim's register-pattern inference assigns them. Successor edges
// (fallthrough / taken target) are the first-observed dynamic successors;
// the stream end wraps to the first record, matching loop-rewind replay.
//
// Everything here is a pure function of the record bytes, so the replay
// layer (source.cpp) can re-derive each block's uop roles without storing
// per-record metadata.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "isa/program.hpp"
#include "trace/champsim.hpp"
#include "trace/reader.hpp"

namespace tlrob::trace {

/// Scratch registers reserved out of the mapped range: the agen uop writes
/// kAgenTempReg and every access uop of the same record reads it; loads
/// beyond the record's destination registers write kValueTempReg.
inline constexpr ArchReg kAgenTempReg = ireg(31);
inline constexpr ArchReg kValueTempReg = ireg(30);

/// Deterministic trace-register -> micro-op-register map. Slot 0 and the
/// instruction pointer map to kNoReg (control flow is explicit in the
/// micro-op ISA); 1..32 fold onto integer registers 0..29 (30/31 are the
/// scratch pair), 33..64 onto the FP file, 65..127 back onto the integers.
/// Values >= kMaxTraceReg are rejected during lowering, not mapped.
ArchReg map_trace_reg(u8 r);

/// The micro-op sequence for one record, in block order: [agen] [loads...]
/// [stores...] [compute-or-control]. taken_block/pc are patched later by
/// the CFG build; agen_id/bgen_id are always generator 0.
std::vector<StaticInst> lower_record(const ChampSimRecord& rec);

/// A lowered trace: the finalized Program plus the tables replay needs.
struct TraceLowering {
  std::shared_ptr<const Program> program;
  FlatMap<Addr, u32> block_of_ip;  // trace instruction pointer -> block id
  u64 record_count = 0;
  u64 content_hash = kFnvOffsetBasis;  // FNV-1a over all record wire bytes
  Addr data_base = 0;                  // observed data footprint (page-aligned
  u64 data_span = 8;                   // base, clamped span) for wrong-path
                                       // address synthesis
};

/// Streams the whole trace once and builds the lowering. Throws
/// std::runtime_error on an empty trace, a register index >= kMaxTraceReg,
/// or a stream truncated mid-record; `name` labels the diagnostics.
TraceLowering build_lowering(TraceReader& reader, const std::string& name);

}  // namespace tlrob::trace
