// Workload-name resolution: one vocabulary for every benchmark backend.
//
// A workload name is either a synthetic SPEC profile ("art", "mcf", ...), a
// trace file ("trace:<path>", gzip sniffed), or an in-memory synthesized
// trace ("tracegen:<profile>@<records>[@<seed>]" — the tlrob_mktrace
// pipeline without the file). Trace workloads are expensive to load (one
// full lowering pass), so resolution memoises them process-wide; the
// returned Benchmark's name round-trips through resolve_benchmark(), which
// is what lets the single-thread-reference memo replay a trace workload
// from nothing but the name a JobRecord carries.
//
// Workload lists are core-major on a CMP: entries [c*M, (c+1)*M) of an
// N-core x M-thread machine's list become core c's threads 0..M-1.
#pragma once

#include <string>
#include <vector>

#include "workload/mixes.hpp"
#include "workload/thread_context.hpp"

namespace tlrob::trace {

/// True for "trace:..." and "tracegen:..." names (no validation beyond the
/// prefix).
bool is_trace_workload_name(const std::string& name);

/// Resolves any workload name to a runnable Benchmark. Trace workloads are
/// loaded (and cached) on first use. Throws std::invalid_argument listing
/// the available backends for an unknown name, std::runtime_error for a
/// trace that fails to load or parse.
Benchmark resolve_benchmark(const std::string& name);

/// Resolves every name in a mix. Mixes may combine backends freely.
std::vector<Benchmark> resolve_mix_benchmarks(const Mix& mix);

/// Parses a --workload value into a Mix: "mix:<n>" names a Table 2 mix,
/// anything else is a comma-separated per-thread workload list (thread i
/// runs entry i). Validates names/syntax eagerly so a typo fails the
/// campaign up front; trace *contents* are only read at job execution, so a
/// bad file becomes a structured per-job failure. Throws
/// std::invalid_argument with the backend list on bad input.
Mix workload_mix(const std::string& spec);

/// Human-readable summary of every accepted workload form (error messages,
/// --help).
std::string workload_backends_help();

}  // namespace tlrob::trace
