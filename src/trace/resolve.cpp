#include "trace/resolve.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/sync.hpp"
#include "trace/source.hpp"
#include "trace/synth.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob::trace {

namespace {

constexpr const char* kTracePrefix = "trace:";
constexpr const char* kTraceGenPrefix = "tracegen:";

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct TraceGenSpec {
  std::string profile;
  u64 records = 0;
  u64 seed = 1;
};

/// "tracegen:<profile>@<records>[@<seed>]". Validation is eager — these
/// names appear in CLI input and campaign specs, where a typo should fail
/// before any job runs.
TraceGenSpec parse_tracegen(const std::string& name) {
  const std::string body = name.substr(std::string(kTraceGenPrefix).size());
  const auto at1 = body.find('@');
  if (at1 == std::string::npos)
    throw std::invalid_argument("malformed workload '" + name +
                                "': expected tracegen:<profile>@<records>[@<seed>]");
  TraceGenSpec spec;
  spec.profile = body.substr(0, at1);
  if (!is_spec_benchmark(spec.profile))
    throw std::invalid_argument("unknown profile '" + spec.profile + "' in workload '" + name +
                                "'\n" + workload_backends_help());
  std::string rest = body.substr(at1 + 1);
  const auto at2 = rest.find('@');
  std::string records_str = rest.substr(0, at2);
  try {
    spec.records = std::stoull(records_str);
    if (at2 != std::string::npos) spec.seed = std::stoull(rest.substr(at2 + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed workload '" + name +
                                "': record count and seed must be integers");
  }
  if (spec.records == 0)
    throw std::invalid_argument("malformed workload '" + name + "': record count must be > 0");
  return spec;
}

/// Memo slot for one loaded trace workload: the once_flag serialises the
/// (expensive) load-and-lower pass, the pointer is written exactly once
/// under it. A load that throws leaves the once_flag unset, so a later
/// retry (or another job's attempt) sees the error again instead of a null
/// workload.
struct WorkloadEntry {
  std::once_flag once;
  std::shared_ptr<const TraceWorkload> workload;
};

Mutex workload_mu;
std::map<std::string, std::unique_ptr<WorkloadEntry>> workload_cache
    TLROB_GUARDED_BY(workload_mu);

std::shared_ptr<const TraceWorkload> trace_workload(const std::string& name) {
  WorkloadEntry* entry;
  {
    MutexLock lock(workload_mu);
    auto& slot = workload_cache[name];
    if (!slot) slot = std::make_unique<WorkloadEntry>();
    entry = slot.get();
  }
  std::call_once(entry->once, [&] {
    if (has_prefix(name, kTraceGenPrefix)) {
      const TraceGenSpec spec = parse_tracegen(name);
      entry->workload =
          TraceWorkload::from_records(name, synthesize_records(spec.profile, spec.records,
                                                               spec.seed));
    } else {
      // Strip the "trace:" prefix to get the path; from_file() restores it
      // as the workload name so Benchmark names round-trip through here.
      entry->workload = TraceWorkload::from_file(name.substr(std::string(kTracePrefix).size()));
    }
  });
  return entry->workload;
}

}  // namespace

bool is_trace_workload_name(const std::string& name) {
  return has_prefix(name, kTracePrefix) || has_prefix(name, kTraceGenPrefix);
}

Benchmark resolve_benchmark(const std::string& name) {
  if (is_trace_workload_name(name)) return trace_benchmark(trace_workload(name));
  if (is_spec_benchmark(name)) return spec_benchmark(name);
  throw std::invalid_argument("unknown workload '" + name + "'\n" + workload_backends_help());
}

std::vector<Benchmark> resolve_mix_benchmarks(const Mix& mix) {
  std::vector<Benchmark> v;
  v.reserve(mix.benchmarks.size());
  for (const auto& name : mix.benchmarks) v.push_back(resolve_benchmark(name));
  return v;
}

Mix workload_mix(const std::string& spec) {
  if (spec.empty())
    throw std::invalid_argument("empty workload specification\n" + workload_backends_help());
  if (has_prefix(spec, "mix:")) {
    u32 index = 0;
    try {
      index = static_cast<u32>(std::stoul(spec.substr(4)));
    } catch (const std::exception&) {
      throw std::invalid_argument("malformed workload '" + spec + "': expected mix:<1..11>");
    }
    return table2_mix(index);
  }

  Mix mix;
  mix.name = spec;
  mix.classification = "custom";
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const std::string name =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (name.empty())
      throw std::invalid_argument("empty workload entry in '" + spec + "'\n" +
                                  workload_backends_help());
    if (is_trace_workload_name(name)) {
      if (has_prefix(name, kTraceGenPrefix)) (void)parse_tracegen(name);  // syntax check
      if (has_prefix(name, kTracePrefix) && name.size() == std::string(kTracePrefix).size())
        throw std::invalid_argument("workload 'trace:' is missing a file path\n" +
                                    workload_backends_help());
    } else if (!is_spec_benchmark(name)) {
      throw std::invalid_argument("unknown workload '" + name + "'\n" +
                                  workload_backends_help());
    }
    mix.benchmarks.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return mix;
}

std::string workload_backends_help() {
  std::string out = "available workload backends:\n";
  out += "  synthetic profiles: ";
  bool first = true;
  for (const auto& b : spec_benchmarks()) {
    if (!first) out += ", ";
    out += b.name;
    first = false;
  }
  out += "\n  mix:<1..11>                         one of the paper's Table 2 mixes\n";
  out += "  trace:<file>                        ChampSim trace replay (.gz or raw)\n";
  out += "  tracegen:<profile>@<records>[@<seed>]  in-memory synthesized trace\n";
  out += "combine per-thread entries with commas, e.g. "
         "workload=trace:a.gz,tracegen:art@4000";
  return out;
}

}  // namespace tlrob::trace
