#include "trace/byte_source.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#if defined(TLROB_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace tlrob::trace {

std::size_t MemoryByteSource::read(u8* dst, std::size_t n) {
  const std::vector<u8>& b = *bytes_;
  const std::size_t got = std::min(n, b.size() - pos_);
  if (got != 0) std::memcpy(dst, b.data() + pos_, got);
  pos_ += got;
  return got;
}

namespace {

class RawFileByteSource final : public TraceByteSource {
 public:
  explicit RawFileByteSource(const std::string& path)
      : path_(path), in_(path, std::ios::binary) {
    if (!in_.is_open()) throw std::runtime_error("cannot open trace file: " + path);
  }

  std::size_t read(u8* dst, std::size_t n) override {
    in_.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    return static_cast<std::size_t>(in_.gcount());
  }

  void rewind() override {
    in_.clear();
    in_.seekg(0, std::ios::beg);
    if (!in_) throw std::runtime_error("cannot rewind trace file: " + path_);
  }

 private:
  std::string path_;
  std::ifstream in_;
};

#if defined(TLROB_HAVE_ZLIB)
class GzFileByteSource final : public TraceByteSource {
 public:
  explicit GzFileByteSource(const std::string& path) : path_(path) {
    f_ = gzopen(path.c_str(), "rb");
    if (f_ == nullptr) throw std::runtime_error("cannot open gzip trace file: " + path);
    gzbuffer(f_, 1 << 16);
  }

  ~GzFileByteSource() override {
    if (f_ != nullptr) gzclose(f_);
  }

  GzFileByteSource(const GzFileByteSource&) = delete;
  GzFileByteSource& operator=(const GzFileByteSource&) = delete;

  std::size_t read(u8* dst, std::size_t n) override {
    const int got = gzread(f_, dst, static_cast<unsigned>(n));
    if (got < 0) throw_gz_error();
    if (static_cast<std::size_t>(got) < n) {
      // Short read: distinguish clean end-of-stream from a stream cut off
      // mid-deflate (zlib reports the latter via gzerror, not the return).
      int code = Z_OK;
      gzerror(f_, &code);
      if (code != Z_OK && code != Z_STREAM_END) throw_gz_error();
    }
    return static_cast<std::size_t>(got);
  }

  void rewind() override {
    if (gzrewind(f_) != 0) throw std::runtime_error("cannot rewind gzip trace file: " + path_);
  }

 private:
  [[noreturn]] void throw_gz_error() const {
    int code = Z_OK;
    const char* msg = gzerror(f_, &code);
    throw std::runtime_error("truncated or corrupt gzip stream in " + path_ + ": " +
                             (msg != nullptr && *msg != '\0' ? msg : "unexpected end of data"));
  }

  std::string path_;
  gzFile f_ = nullptr;
};
#endif

bool has_gzip_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("cannot open trace file: " + path);
  char magic[2] = {0, 0};
  in.read(magic, 2);
  return in.gcount() == 2 && static_cast<u8>(magic[0]) == 0x1f &&
         static_cast<u8>(magic[1]) == 0x8b;
}

}  // namespace

bool gzip_supported() {
#if defined(TLROB_HAVE_ZLIB)
  return true;
#else
  return false;
#endif
}

std::unique_ptr<TraceByteSource> open_trace_file(const std::string& path) {
  if (has_gzip_magic(path)) {
#if defined(TLROB_HAVE_ZLIB)
    return std::make_unique<GzFileByteSource>(path);
#else
    throw std::runtime_error("trace file " + path +
                             " is gzip-compressed but this build lacks zlib; "
                             "decompress it first (zcat) or rebuild with zlib");
#endif
  }
  return std::make_unique<RawFileByteSource>(path);
}

}  // namespace tlrob::trace
