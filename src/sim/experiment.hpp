// Experiment harness shared by the benches, examples and integration tests:
// runs mixes on configured machines and computes the paper's metrics.
//
// Weighted-IPC denominators (each benchmark's IPC "in a single-threaded
// situation", §3) are measured on the fixed single-thread reference machine
// (sim/presets.hpp) and memoised per (benchmark, commit_target), since every
// figure reuses them.
#pragma once

#include "sim/metrics.hpp"
#include "sim/presets.hpp"
#include "sim/smt_sim.hpp"
#include "workload/mixes.hpp"

namespace tlrob {

/// Default per-run length (committed instructions on the fastest thread).
inline constexpr u64 kDefaultCommitTarget = 200000;
/// Default warmup (committed instructions, excluded from all statistics).
inline constexpr u64 kDefaultWarmup = 60000;

/// Runs `benchmarks` (one per thread) on `cfg`.
RunResult run_benchmarks(const MachineConfig& cfg, const std::vector<Benchmark>& benchmarks,
                         u64 commit_target = kDefaultCommitTarget, u64 max_cycles = 0,
                         u64 warmup_insts = kDefaultWarmup);

/// Single-threaded IPC of a SPEC profile on the reference machine.
/// Memoised and thread-safe: each (benchmark, commit_target) is simulated
/// exactly once, concurrent callers of an in-flight key block until the
/// value exists (the campaign runner hits this from many workers at once).
double single_thread_ipc(const std::string& benchmark, u64 commit_target = kDefaultCommitTarget);

/// Everything a figure needs for one (machine, mix) cell.
struct MixOutcome {
  RunResult run;
  std::vector<double> mt_ipc;
  std::vector<double> st_ipc;
  double ft = 0.0;          // fair throughput (harmonic mean of weighted IPCs)
  double throughput = 0.0;  // sum of multithreaded IPCs
};

MixOutcome run_mix(const MachineConfig& cfg, const Mix& mix,
                   u64 commit_target = kDefaultCommitTarget);

}  // namespace tlrob
