#include "sim/presets.hpp"

#include <sstream>

namespace tlrob {

MachineConfig baseline32_config() {
  MachineConfig cfg;  // defaults are Table 1
  cfg.rob_second_level = 0;
  cfg.rob.scheme = RobScheme::kBaseline;
  return cfg;
}

MachineConfig baseline128_config() {
  MachineConfig cfg = baseline32_config();
  cfg.rob_first_level = 128;
  return cfg;
}

MachineConfig two_level_config(RobScheme scheme, u32 dod_threshold) {
  MachineConfig cfg;
  cfg.rob.scheme = scheme;
  cfg.rob.dod_threshold = dod_threshold;
  if (scheme == RobScheme::kAdaptive) cfg.rob_second_level = 0;  // private growth only
  return cfg;
}

MachineConfig single_thread_config() {
  MachineConfig cfg = baseline32_config();
  cfg.num_threads = 1;
  return cfg;
}

MachineConfig cmp_config(u32 cores, RobScheme scheme, u32 dod_threshold) {
  MachineConfig cfg = scheme == RobScheme::kBaseline ? baseline32_config()
                                                     : two_level_config(scheme, dod_threshold);
  cfg.num_cores = cores;
  cfg.llc.enabled = true;
  return cfg;
}

std::string describe(const MachineConfig& cfg) {
  std::ostringstream os;
  os << "cores                  " << cfg.num_cores << "\n"
     << "threads (per core)     " << cfg.num_threads << "\n"
     << "fetch width            " << cfg.fetch_width << " (up to " << cfg.fetch_threads
     << " threads/cycle)\n"
     << "issue width            " << cfg.issue_width << "\n"
     << "commit width           " << cfg.commit_width << "\n"
     << "rob level-1 (per thr)  " << cfg.rob_first_level << "\n"
     << "rob level-2 (shared)   " << cfg.rob_second_level << "\n"
     << "iq entries (shared)    " << cfg.iq_entries << "\n"
     << "lsq entries (per thr)  " << cfg.lsq_entries << "\n"
     << "int/fp physical regs   " << cfg.int_regs << "/" << cfg.fp_regs << "\n"
     << "fetch policy           " << fetch_policy_name(cfg.fetch_policy) << "\n"
     << "rob scheme             " << rob_scheme_name(cfg.rob.scheme) << " (DoD threshold "
     << cfg.rob.dod_threshold << ")\n"
     << "l1i                    " << (cfg.memory.l1i.size_bytes >> 10) << "KB/"
     << cfg.memory.l1i.ways << "w/" << cfg.memory.l1i.line_bytes << "B/"
     << cfg.memory.l1i.hit_latency << "cyc\n"
     << "l1d                    " << (cfg.memory.l1d.size_bytes >> 10) << "KB/"
     << cfg.memory.l1d.ways << "w/" << cfg.memory.l1d.line_bytes << "B/"
     << cfg.memory.l1d.hit_latency << "cyc\n"
     << "l2                     " << (cfg.memory.l2.size_bytes >> 20) << "MB/"
     << cfg.memory.l2.ways << "w/" << cfg.memory.l2.line_bytes << "B/"
     << cfg.memory.l2.hit_latency << "cyc\n"
     << "memory                 " << cfg.memory.channel.first_chunk << "cyc first chunk, "
     << cfg.memory.channel.interchunk << "cyc interchunk, " << cfg.memory.channel.bus_bytes * 8
     << "-bit bus\n";
  if (cfg.llc.enabled || cfg.num_cores > 1)
    os << "llc (shared)           " << (cfg.llc.geo.size_bytes >> 10) << "KB/" << cfg.llc.geo.ways
       << "w/" << cfg.llc.geo.line_bytes << "B/" << cfg.llc.geo.hit_latency << "cyc, "
       << cfg.llc.mshr_entries << " MSHRs\n"
       << "dram (shared)          " << cfg.dram.channels << "ch x " << cfg.dram.banks_per_channel
       << " banks, " << cfg.dram.row_bytes << "B rows, tCAS/tRCD/tRP " << cfg.dram.tcas << "/"
       << cfg.dram.trcd << "/" << cfg.dram.trp << "cyc, "
       << (cfg.dram.open_page ? "open" : "closed") << "-page\n";
  os
     << "branch predictor       " << cfg.predictor.gshare_entries << "-entry gshare, "
     << cfg.predictor.history_bits << "-bit history/thread\n"
     << "btb                    " << cfg.predictor.btb_entries << " entries, "
     << cfg.predictor.btb_ways << "-way\n"
     << "load-hit predictor     " << cfg.load_hit_entries << "-entry bimodal, "
     << cfg.load_hit_history << "-bit history/thread\n"
     << "invariant audit        " << audit_level_name(cfg.audit.level);
  if (cfg.audit.level != AuditLevel::kOff)
    os << " (cheap every " << cfg.audit.cheap_interval << ", full every "
       << cfg.audit.full_interval << " cycles, "
       << (cfg.audit.abort_on_violation ? "abort" : "record") << " on violation)";
  os << "\n";
  return os.str();
}

}  // namespace tlrob
