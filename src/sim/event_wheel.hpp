// Calendar wheel of scheduled pipeline events.
//
// The core's completion events (functional-unit done, load fill, L2-miss
// detection, replay, speculative-wakeup maturation) were previously held in
// a std::priority_queue: every push/pop paid a heap reshuffle plus the
// backing vector's growth, and finding "when is the next event" meant
// nothing cheaper than popping. This wheel keeps one pre-sized FIFO slot per
// cycle in a power-of-two horizon: scheduling is an O(1) append, draining a
// cycle is an O(events) sweep of one slot, and next_after() — what the
// idle-cycle fast-forward needs — is a scan that costs exactly the distance
// skipped. Slot vectors keep their capacity across reuse, so steady state
// allocates nothing.
//
// Processing order is identical to the old priority queue: ascending cycle,
// FIFO (schedule order) within a cycle. Events beyond the horizon —
// impossible with the current memory latencies but kept correct anyway —
// overflow to a side vector and migrate into their slot when the cursor
// draws within a horizon of them; migration runs before any direct push or
// drain that could observe the slot, preserving the global FIFO tie-break.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "pipeline/dyn_inst.hpp"

namespace tlrob {

enum class EvKind : u8 {
  kFuComplete,
  kLoadFill,
  kL2MissDetect,
  kLoadReplay,
  /// No-op marker: a register was made speculatively ready at this cycle
  /// (RenameUnit::set_spec_ready). Nothing is dispatched on it — it exists
  /// so the fast-forward's "next interesting cycle" computation sees the
  /// wakeup and never skips past the cycle where a dependent could issue.
  kWake,
};

struct SimEvent {
  Cycle when = 0;
  u64 order = 0;  // global schedule order; FIFO tie-break within a cycle
  EvKind kind = EvKind::kFuComplete;
  InstRef ref;
};

class EventWheel {
 public:
  explicit EventWheel(u32 horizon_log2 = 12)
      : slots_(1u << horizon_log2), mask_((1u << horizon_log2) - 1) {}

  u32 horizon() const { return static_cast<u32>(slots_.size()); }
  u64 pending() const { return pending_; }
  u64 scheduled_total() const { return scheduled_; }
  u64 processed_total() const { return processed_; }
  /// First cycle the wheel has fully drained through (all events at cycles
  /// below this have been handed out).
  Cycle drained_until() const { return cursor_; }

  void schedule(Cycle when, EvKind kind, const InstRef& ref) {
    // An event scheduled for the current (already-drained) cycle fires at
    // the next process_due, exactly as it did leaving the priority queue.
    if (when < cursor_) when = cursor_;
    const SimEvent ev{when, order_++, kind, ref};
    if (when - cursor_ < horizon()) {
      // Any overflow event that has drifted within the horizon is older
      // than this one and must land in its slot first, or the FIFO
      // tie-break within its cycle would invert.
      if (!overflow_.empty()) migrate_overflow();
      slots_[when & mask_].push_back(ev);
    } else {
      overflow_.push_back(ev);
    }
    ++pending_;
    ++scheduled_;
  }

  /// Drains every event with when <= now, ascending cycle then schedule
  /// order, invoking handler(const SimEvent&). The handler may schedule new
  /// events (they land at cycles > now).
  template <typename Handler>
  void process_due(Cycle now, Handler&& handler) {
    if (!overflow_.empty()) migrate_overflow();
    for (; cursor_ <= now; ++cursor_) {
      std::vector<SimEvent>& slot = slots_[cursor_ & mask_];
      if (slot.empty()) continue;
      for (u32 i = 0; i < slot.size(); ++i) {  // index loop: handler may push
        const SimEvent ev = slot[i];  // by value: a same-cycle push may grow
                                      // (and reallocate) this very slot
        ++processed_;
        --pending_;
        handler(ev);
      }
      slot.clear();  // keeps capacity: steady state never reallocates
    }
  }

  /// Next cycle >= drained_until() holding an event, or `none` if the wheel
  /// is empty. Cost is proportional to the distance to that event — the
  /// same cycles a fast-forward caller is about to skip.
  Cycle next_event_or(Cycle none) const {
    if (pending_ == 0) return none;
    Cycle best = none;
    for (Cycle c = cursor_; c < cursor_ + horizon(); ++c) {
      if (!slots_[c & mask_].empty()) {
        best = c;
        break;
      }
    }
    // A not-yet-migrated overflow event can have drifted inside the horizon
    // since it was scheduled; it may precede the first occupied slot.
    for (const SimEvent& ev : overflow_) best = std::min(best, ev.when);
    return best;
  }

  /// Test-only corruption hook for the invariant-audit suite: skews the
  /// pending counter without touching the slots, simulating a dropped or
  /// duplicated event. Never called by the simulator.
  void test_only_corrupt_pending(i64 delta) {
    pending_ = static_cast<u64>(static_cast<i64>(pending_) + delta);
  }

  /// Audit recount: the pending counter must equal the events actually
  /// sitting in slots + overflow, and the schedule/process totals must
  /// account for every event exactly once (no drop, no duplicate).
  bool audit_consistent() const {
    u64 live = overflow_.size();
    for (const auto& slot : slots_) live += slot.size();
    return live == pending_ && scheduled_ == processed_ + pending_;
  }

 private:
  void migrate_overflow() {
    // Called at the top of process_due, before any of this tick's direct
    // pushes: migrated events therefore precede any same-cycle push made
    // later this tick, and sorting by schedule order restores FIFO among
    // themselves.
    std::vector<SimEvent> still_far;
    std::vector<SimEvent> ready;
    for (SimEvent& ev : overflow_) {
      if (ev.when - cursor_ < horizon())
        ready.push_back(ev);
      else
        still_far.push_back(ev);
    }
    if (ready.empty()) return;
    std::sort(ready.begin(), ready.end(),
              [](const SimEvent& a, const SimEvent& b) { return a.order < b.order; });
    for (SimEvent& ev : ready) slots_[ev.when & mask_].push_back(ev);
    overflow_ = std::move(still_far);
  }

  std::vector<std::vector<SimEvent>> slots_;
  std::vector<SimEvent> overflow_;
  u32 mask_;
  Cycle cursor_ = 0;  // all cycles < cursor_ are drained
  u64 order_ = 0;
  u64 pending_ = 0;
  u64 scheduled_ = 0;
  u64 processed_ = 0;
};

}  // namespace tlrob
