// Performance metrics: IPC, weighted IPC and the paper's headline metric —
// fair throughput (FT), the harmonic mean of per-thread weighted IPCs
// (Luo et al., ISPASS 2001; called "fairness" there).
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "obs/interval_sampler.hpp"

namespace tlrob {

struct ThreadResult {
  std::string benchmark;
  u64 committed = 0;
  double ipc = 0.0;
};

/// Everything a single simulation produces that experiments consume.
struct RunResult {
  u64 cycles = 0;
  std::vector<ThreadResult> threads;

  /// Dependents of long-latency loads observed in the ROB at miss-service
  /// time (Figures 1 / 3 / 7): true transitive register dependents, and the
  /// paper's low-cost not-yet-executed proxy.
  Histogram dod_true{31};
  Histogram dod_proxy{31};

  /// Flat copy of the core's counters at end of run.
  std::map<std::string, u64> counters;

  /// Interval-telemetry time series (empty unless
  /// MachineConfig::telemetry.sample_interval was nonzero).
  obs::IntervalSeries samples;

  /// Closed stall-cycle taxonomy: per thread (machine-global order), cycles
  /// attributed to each obs::StallClass; each thread's classes sum to
  /// `cycles`. Empty when sampling is off — kept out of `counters` so a
  /// telemetry-on run's counter map stays identical to the telemetry-off
  /// run's (the runner flattens it via obs::stall_summary_counters).
  std::vector<std::array<u64, obs::kStallClassCount>> stall_cycles;

  double total_throughput() const;
};

/// Counter value from a run, 0 when the event never occurred (counters are
/// created lazily, so absent means "never happened").
u64 run_counter(const RunResult& r, const std::string& name);

/// Weighted IPC of one thread: multithreaded IPC / single-threaded IPC.
double weighted_ipc(double mt_ipc, double st_ipc);

/// Fair throughput: harmonic mean of weighted IPCs. `mt` and `st` must have
/// equal, non-zero length.
double fair_throughput(const std::vector<double>& mt_ipc, const std::vector<double>& st_ipc);

}  // namespace tlrob
