// Pipeline event tracing: a human-readable per-instruction event log
// (fetch / dispatch / issue / complete / commit / squash), gated to a cycle
// window so multi-million-cycle runs can dump just the region under study.
//
// Attach a stream before running:
//   core.tracer().attach(&std::cerr, 1000, 1200);
// or from the CLI driver: ./simulate mix=1 trace=1000:1200
#pragma once

#include <ostream>
#include <string>

#include "common/types.hpp"
#include "isa/opcode.hpp"
#include "pipeline/dyn_inst.hpp"

namespace tlrob {

class PipelineTracer {
 public:
  /// Routes events in cycle window [start, end) to `os` (nullptr detaches).
  void attach(std::ostream* os, Cycle start = 0, Cycle end = kNeverCycle) {
    os_ = os;
    start_ = start;
    end_ = end;
  }

  bool active(Cycle now) const { return os_ != nullptr && now >= start_ && now < end_; }

  /// A stream is attached (regardless of the cycle window). The core's
  /// idle-cycle fast-forward stays off while tracing so the log shows every
  /// cycle, including the window's quiet ones.
  bool attached() const { return os_ != nullptr; }

  /// One line per instruction event. `extra` is appended verbatim.
  void event(Cycle now, const char* stage, const DynInst& di, const char* extra = "") {
    if (!active(now)) return;
    *os_ << now << " t" << di.tid << " #" << di.tseq << " " << stage << " "
         << op_class_name(di.op) << " pc=0x" << std::hex << di.pc << std::dec;
    if (di.is_mem()) *os_ << " addr=0x" << std::hex << di.mem_addr << std::dec;
    if (di.wrong_path) *os_ << " WP";
    if (*extra != '\0') *os_ << " " << extra;
    *os_ << "\n";
  }

  /// Free-form machine-level note (squash extents, partition grants, ...).
  /// Prefer note_if at call sites whose message needs std::string
  /// construction — this overload's argument is built even when the tracer
  /// is detached or outside its window.
  void note(Cycle now, const std::string& text) {
    if (!active(now)) return;
    *os_ << now << " -- " << text << "\n";
  }

  /// Lazy note: `build` (any callable returning something streamable into
  /// note()) runs only when the tracer is active on `now`, so hot paths pay
  /// nothing for message formatting on the millions of untraced cycles.
  template <typename F>
  void note_if(Cycle now, F&& build) {
    if (active(now)) note(now, build());
  }

 private:
  std::ostream* os_ = nullptr;
  Cycle start_ = 0;
  Cycle end_ = kNeverCycle;
};

}  // namespace tlrob
