#include "sim/experiment.hpp"

#include <map>
#include <memory>
#include <mutex>

#include "common/sync.hpp"
#include "sim/cmp.hpp"
#include "trace/resolve.hpp"

namespace tlrob {

namespace {

/// Memo slot for one (benchmark, insts) single-thread reference run: the
/// once_flag serialises the expensive simulation, the value is written
/// exactly once under it.
struct StIpcEntry {
  std::once_flag once;
  double ipc = 0.0;
};

/// Guards the memo map's shape (insertion); the entries themselves are
/// pointer-stable (unique_ptr values, never erased) and owned by their
/// once_flag after the slot is handed out.
Mutex st_ipc_mu;
std::map<std::pair<std::string, u64>, std::unique_ptr<StIpcEntry>> st_ipc_cache
    TLROB_GUARDED_BY(st_ipc_mu);

}  // namespace

RunResult run_benchmarks(const MachineConfig& cfg, const std::vector<Benchmark>& benchmarks,
                         u64 commit_target, u64 max_cycles, u64 warmup_insts) {
  // The CMP engine hosts anything with multiple cores or a shared memory
  // backend (plus the differential tests that force it); the default
  // single-core configuration keeps the legacy path untouched.
  if (cfg.num_cores > 1 || cfg.llc.enabled || cfg.force_cmp_engine) {
    CmpMachine machine(cfg, benchmarks);
    return machine.run(commit_target, max_cycles, warmup_insts);
  }
  SmtCore core(cfg, benchmarks);
  return core.run(commit_target, max_cycles, warmup_insts);
}

double single_thread_ipc(const std::string& benchmark, u64 commit_target) {
  // Concurrent campaign jobs share this memo, so it must be thread-safe and
  // compute each key exactly once: the map hands out stable per-key entries
  // under a short lock, and call_once runs the (expensive) reference
  // simulation outside it while concurrent callers of the same key block
  // until the value exists.
  StIpcEntry* entry;
  {
    MutexLock lock(st_ipc_mu);
    auto& slot = st_ipc_cache[std::make_pair(benchmark, commit_target)];
    if (!slot) slot = std::make_unique<StIpcEntry>();
    entry = slot.get();
  }
  std::call_once(entry->once, [&] {
    const MachineConfig cfg = single_thread_config();
    const RunResult r = run_benchmarks(cfg, {trace::resolve_benchmark(benchmark)}, commit_target);
    entry->ipc = r.threads.at(0).ipc;
  });
  return entry->ipc;
}

MixOutcome run_mix(const MachineConfig& cfg, const Mix& mix, u64 commit_target) {
  MixOutcome out;
  out.run = run_benchmarks(cfg, trace::resolve_mix_benchmarks(mix), commit_target);
  for (const auto& t : out.run.threads) {
    out.mt_ipc.push_back(t.ipc);
    out.st_ipc.push_back(single_thread_ipc(t.benchmark, commit_target));
  }
  out.ft = fair_throughput(out.mt_ipc, out.st_ipc);
  out.throughput = out.run.total_throughput();
  return out;
}

}  // namespace tlrob
