#include "sim/experiment.hpp"

#include <map>

#include "workload/spec_profiles.hpp"

namespace tlrob {

RunResult run_benchmarks(const MachineConfig& cfg, const std::vector<Benchmark>& benchmarks,
                         u64 commit_target, u64 max_cycles, u64 warmup_insts) {
  SmtCore core(cfg, benchmarks);
  return core.run(commit_target, max_cycles, warmup_insts);
}

double single_thread_ipc(const std::string& benchmark, u64 commit_target) {
  static std::map<std::pair<std::string, u64>, double> cache;
  const auto key = std::make_pair(benchmark, commit_target);
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  const MachineConfig cfg = single_thread_config();
  const RunResult r = run_benchmarks(cfg, {spec_benchmark(benchmark)}, commit_target);
  const double ipc = r.threads.at(0).ipc;
  cache.emplace(key, ipc);
  return ipc;
}

MixOutcome run_mix(const MachineConfig& cfg, const Mix& mix, u64 commit_target) {
  MixOutcome out;
  out.run = run_benchmarks(cfg, mix_benchmarks(mix), commit_target);
  for (const auto& t : out.run.threads) {
    out.mt_ipc.push_back(t.ipc);
    out.st_ipc.push_back(single_thread_ipc(t.benchmark, commit_target));
  }
  out.ft = fair_throughput(out.mt_ipc, out.st_ipc);
  out.throughput = out.run.total_throughput();
  return out;
}

}  // namespace tlrob
