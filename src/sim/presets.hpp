// Machine configuration (Table 1) and the named presets the experiments use.
#pragma once

#include <string>

#include "memory/memory_system.hpp"
#include "memory/shared_memory.hpp"
#include "branch/predictor.hpp"
#include "obs/telemetry_config.hpp"
#include "pipeline/dcra.hpp"
#include "pipeline/fetch_policy.hpp"
#include "rob/allocation_policy.hpp"
#include "verify/audit_context.hpp"

namespace tlrob {

struct MachineConfig {
  /// CMP topology: `num_cores` SMT cores of `num_threads` hardware threads
  /// each. Every core keeps its private L1/L2, branch state and second-level
  /// ROB partition; cores > 1 couple through the shared LLC + banked DRAM
  /// backend (`llc`/`dram`). The default (1 core, LLC off) is exactly the
  /// paper's single-core machine and never touches the CMP engine.
  u32 num_cores = 1;
  u32 num_threads = 4;

  /// Routes even a 1-core config through the CMP engine (CmpMachine). Used
  /// by the differential tests that pin the engines byte-identical; normal
  /// configs leave it off.
  bool force_cmp_engine = false;

  /// Parallel CMP engine: nonzero runs CmpMachine's cores on worker threads
  /// (always one pinned worker per core — the CoreGate barrier protocol
  /// requires every core to hold a thread), synchronized at the shared
  /// LLC/DRAM boundary so results are bit-identical to the serial lockstep
  /// engine. The numeric value is advisory: the campaign CLI's thread-budget
  /// heuristic multiplies it against --jobs. 0 (default) = serial engine,
  /// the reference all goldens are recorded against.
  u32 parallel_cores = 0;
  /// Epoch quantum in cycles for the parallel engine: the maximum distance
  /// any core may run ahead between barriers before the engine re-clamps to
  /// the termination horizon. Affects only scheduling granularity, never
  /// results (bit-identity holds for any value >= 1). 0 selects the default.
  u32 parallel_quantum = 0;

  /// First global thread index hosted by this core (CMP machines construct
  /// one SmtCore per core with `addr_space_id_base = core * num_threads`, so
  /// every thread in the machine gets a distinct address space and workload
  /// seed). 0 for single-core machines — thread bases then reduce to the
  /// historical values bit-for-bit.
  u32 addr_space_id_base = 0;

  // Machine width (Table 1: 8-wide fetch / issue / commit).
  u32 fetch_width = 8;
  u32 fetch_threads = 2;  // ICOUNT 2.8: up to 2 threads per cycle
  u32 dispatch_width = 8;
  u32 issue_width = 8;
  u32 commit_width = 8;

  // Front end.
  u32 decode_depth = 3;      // fetch-to-dispatch pipeline stages
  u32 frontend_buffer = 24;  // per-thread fetched-not-dispatched capacity

  // Window (Table 1: per-thread 32-entry level-1 ROB, 48-entry LSQ; shared
  // 64-entry IQ; the proposed shared second level is 384 entries = 96*4).
  u32 rob_first_level = 32;
  u32 rob_second_level = 384;
  /// Free registers per file the second-level holder must leave for the
  /// other threads' baseline windows (so accelerating a memory-bound thread
  /// does not starve co-runners of renames — the paper's "without adversely
  /// impacting other threads" requirement applied to the shared file).
  u32 second_level_reg_reserve = 24;
  u32 iq_entries = 64;
  u32 lsq_entries = 48;

  // Physical registers (Table 1: 224 int + 224 fp). Per-thread files by
  // default, following M-Sim's SMT model (each context renames out of its
  // own file); the shared-pool interpretation of Table 1 is available as an
  // ablation (bench_ablation_regfile) and makes the register file, not the
  // ROB, the binding window limit.
  u32 int_regs = 224;
  u32 fp_regs = 224;
  bool shared_regfile = false;

  /// L2-miss-driven early register deallocation (Sharkey & Ponomarev,
  /// ICS'07) — the synergy the paper cites but leaves out of its evaluation.
  /// When a thread waits on an L2 miss and has no unresolved control flow,
  /// previous mappings whose value has been produced and fully consumed are
  /// released before commit, letting the second-level window grow past the
  /// register-file bound. Off by default to match the paper's configuration.
  bool early_register_release = false;

  FetchPolicyKind fetch_policy = FetchPolicyKind::kDcra;
  DcraConfig dcra{};
  RobPolicyConfig rob{};
  MemoryConfig memory{};
  /// Shared memory-side backend (CMP mode): LLC geometry/MSHRs and banked
  /// DRAM timing. Ignored while llc.enabled is false and num_cores == 1.
  LlcConfig llc{};
  DramConfig dram{};
  PredictorConfig predictor{};
  u32 load_hit_entries = 1024;  // Table 1 load-hit predictor
  u32 load_hit_history = 8;

  /// Pipeline invariant auditing (src/verify). Defaults to the process-wide
  /// $TLROB_AUDIT setting so CI can turn the cheap tier on for every
  /// existing test without touching them.
  AuditConfig audit = default_audit_config();

  /// Observability (src/obs): interval sampling and host self-profiling.
  /// Defaults to the process-wide $TLROB_SAMPLE / $TLROB_PROFILE settings;
  /// everything off (the default) is provably zero-cost on the cycle loop.
  obs::TelemetryConfig telemetry = obs::default_telemetry_config();

  u64 seed = 12345;
};

/// Table 1 baseline: 32-entry private ROBs, no second level, DCRA fetch.
MachineConfig baseline32_config();

/// Baseline_128 of Figure 2: private ROBs blindly scaled to 128 entries.
MachineConfig baseline128_config();

/// Two-level configurations used in §5.
MachineConfig two_level_config(RobScheme scheme, u32 dod_threshold);

/// The single-threaded reference machine used as the weighted-IPC
/// denominator (one thread on the Table 1 core).
MachineConfig single_thread_config();

/// CMP of `cores` Table 1 SMT cores sharing an LLC and banked DRAM, each
/// running the given ROB scheme (kBaseline => no second level per core).
MachineConfig cmp_config(u32 cores, RobScheme scheme, u32 dod_threshold);

/// Human-readable one-line-per-parameter dump (bench_table1_config).
std::string describe(const MachineConfig& cfg);

}  // namespace tlrob
