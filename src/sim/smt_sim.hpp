// The cycle-level SMT out-of-order core.
//
// Organisation (functional-first, timing-directed, as in M-Sim): each
// ThreadContext architecturally executes the correct path; the core's fetch
// stage consumes that stream (or synthesises wrong-path instructions after a
// detected misprediction), and the back end models Table 1's pipeline:
// rename with shared physical register files, shared issue queue, functional
// units, per-thread LSQs and per-thread ROBs with the optional shared
// second-level partition managed by TwoLevelRobController.
//
// Stage evaluation order within a tick: events (completions / fills / miss
// detections, which include branch resolution and squash) -> commit -> issue
// -> dispatch -> fetch -> ROB-policy tick.
#pragma once

#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "branch/load_hit_predictor.hpp"
#include "branch/predictor.hpp"
#include "memory/memory_system.hpp"
#include "pipeline/dcra.hpp"
#include "pipeline/fetch_policy.hpp"
#include "pipeline/func_units.hpp"
#include "pipeline/issue_queue.hpp"
#include "pipeline/lsq.hpp"
#include "pipeline/rename.hpp"
#include "rob/allocation_policy.hpp"
#include "rob/rob.hpp"
#include "rob/two_level_rob.hpp"
#include "sim/metrics.hpp"
#include "sim/presets.hpp"
#include "sim/trace.hpp"
#include "verify/invariant_checker.hpp"
#include "workload/thread_context.hpp"

namespace tlrob {

class SmtCore {
 public:
  /// One Benchmark per hardware thread; `benchmarks.size()` must equal
  /// cfg.num_threads.
  SmtCore(const MachineConfig& cfg, const std::vector<Benchmark>& benchmarks);

  /// Runs until any thread has committed `commit_target` instructions or
  /// `max_cycles` elapse (0 = derive a generous bound from the target).
  /// `warmup_insts` commits per fastest thread are executed first and then
  /// excluded from every statistic — the stand-in for the paper's Simpoint
  /// fast-forwarding (cold caches otherwise dominate short runs).
  RunResult run(u64 commit_target, u64 max_cycles = 0, u64 warmup_insts = 0);

  /// Zeroes every statistic (counters, histograms, IPC baselines) while
  /// preserving microarchitectural state. Used at the warmup boundary.
  void reset_measurement();

  /// Advances one cycle (exposed for tests).
  void tick();

  Cycle now() const { return cycle_; }
  u64 committed(ThreadId t) const { return threads_[t].committed; }
  u32 outstanding_l1(ThreadId t) const { return threads_[t].outstanding_l1; }
  u32 outstanding_l2(ThreadId t) const { return threads_[t].outstanding_l2; }
  const ReorderBuffer& rob(ThreadId t) const { return threads_[t].rob; }
  const IssueQueue& issue_queue() const { return iq_; }
  MemorySystem& memory() { return mem_; }
  TwoLevelRobController& rob_controller() { return *rob_ctrl_; }
  SecondLevelRob& second_level() { return second_; }
  RenameUnit& rename_unit() { return rename_; }
  BranchPredictor& branch_predictor() { return bpred_; }
  StatGroup& stats() { return stats_; }
  PipelineTracer& tracer() { return tracer_; }
  const MachineConfig& config() const { return cfg_; }

  /// The pipeline invariant auditor (cfg.audit decides what runs per cycle).
  InvariantChecker& auditor() { return auditor_; }

  /// Runs every registered invariant check against the current state
  /// immediately, regardless of the configured audit level or intervals.
  /// Returns the number of violations found by this sweep.
  u32 audit_now();

  /// Test-only mutable access to structures the audit tests corrupt; the
  /// simulator itself never uses these.
  ReorderBuffer& rob_for_test(ThreadId t) { return threads_[t].rob; }
  LoadStoreQueue& lsq_for_test(ThreadId t) { return threads_[t].lsq; }
  IssueQueue& iq_for_test() { return iq_; }

  /// Builds the RunResult for the current state (run() calls this at exit).
  RunResult snapshot_result() const;

 private:
  struct ThreadState {
    std::unique_ptr<ThreadContext> ctx;
    ReorderBuffer rob;
    LoadStoreQueue lsq;
    std::deque<DynInst> frontend;  // fetched, awaiting dispatch (oldest front)
    std::unordered_map<Addr, u32> block_of_pc;

    u64 next_tseq = 1;
    u64 committed = 0;
    u64 committed_base = 0;  // committed count at the last measurement reset

    // Fetch state.
    bool wrong_path = false;  // fetching down a mispredicted path
    bool wp_dead = false;     // wrong-path cursor fell off the CFG
    u32 wp_block = 0;
    u32 wp_index = 0;
    Cycle fetch_stall_until = 0;

    // Outstanding-miss accounting (STALL/FLUSH gating, DCRA classification).
    u32 outstanding_l1 = 0;
    u32 outstanding_l2 = 0;
    u32 unresolved_ctrl = 0;  // dispatched control ops not yet resolved

    ThreadState(u32 rob_cap, u32 lsq_cap) : rob(rob_cap), lsq(lsq_cap) {}
  };

  enum class EvKind : u8 { kFuComplete, kLoadFill, kL2MissDetect, kLoadReplay };
  struct Event {
    Cycle when;
    u64 order;  // FIFO tie-break for determinism
    EvKind kind;
    InstRef ref;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.order > b.order;
    }
  };

  // -- stages ---------------------------------------------------------------
  void process_events();
  void do_commit();
  void do_issue();
  void do_dispatch();
  void do_fetch();
  void do_early_release();

  // -- helpers ----------------------------------------------------------------
  std::vector<ThreadFetchView> make_views() const;
  DynInst* find_inst(const InstRef& ref);
  void schedule(Cycle when, EvKind kind, const DynInst& di);
  void handle_fu_complete(DynInst& di);
  void handle_load_fill(DynInst& di);
  void handle_l2_miss_detect(DynInst& di);
  void handle_load_replay(DynInst& di);
  void finish_execution(DynInst& di);
  void resolve_control(DynInst& di);
  void squash_after(ThreadId tid, u64 tseq);
  void undispatch_after(ThreadId tid, u64 tseq);
  void drop_outstanding_counts(DynInst& di);
  void refresh_audit_ctx();
  bool fetch_one(ThreadState& ts, ThreadId tid);
  DynInst make_correct_path_inst(ThreadState& ts, ThreadId tid);
  DynInst make_wrong_path_inst(ThreadState& ts, ThreadId tid);
  void predict_and_steer(ThreadState& ts, DynInst& di);
  bool try_dispatch_one(ThreadState& ts, ThreadId tid);
  bool issue_one(DynInst& di);
  void issue_load(DynInst& di);
  void replay_dependents_of(PhysReg reg);
  Addr icache_addr(const ThreadState& ts, Addr pc) const {
    return ts.ctx->addr_space_base() + pc;
  }

  MachineConfig cfg_;
  std::vector<Benchmark> benchmarks_;
  std::vector<ThreadState> threads_;
  RenameUnit rename_;
  IssueQueue iq_;
  FuncUnitPool fus_;
  MemorySystem mem_;
  BranchPredictor bpred_;
  LoadHitPredictor lhp_;
  DcraController dcra_;
  std::unique_ptr<FetchPolicy> fetch_policy_;
  SecondLevelRob second_;
  std::unique_ptr<TwoLevelRobController> rob_ctrl_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  u64 event_order_ = 0;
  Cycle cycle_ = 0;
  Cycle cycle_base_ = 0;  // cycle count at the last measurement reset
  SeqNum next_seq_ = 1;
  u64 commit_rr_ = 0;
  Rng wp_rng_;

  StatGroup stats_;
  PipelineTracer tracer_;
  Histogram dod_true_{31};
  Histogram dod_proxy_{31};

  InvariantChecker auditor_;
  AuditContext audit_ctx_;  // stable pointers into the members above
};

}  // namespace tlrob
