// The cycle-level SMT out-of-order core.
//
// Organisation (functional-first, timing-directed, as in M-Sim): each
// ThreadContext architecturally executes the correct path; the core's fetch
// stage consumes that stream (or synthesises wrong-path instructions after a
// detected misprediction), and the back end models Table 1's pipeline:
// rename with shared physical register files, shared issue queue, functional
// units, per-thread LSQs and per-thread ROBs with the optional shared
// second-level partition managed by TwoLevelRobController.
//
// Stage evaluation order within a tick: events (completions / fills / miss
// detections, which include branch resolution and squash) -> commit -> issue
// -> dispatch -> fetch -> ROB-policy tick.
//
// Hot-path design (DESIGN.md §8): completion events live in a calendar wheel
// (EventWheel) instead of a priority queue; every per-cycle scratch
// collection is a reused member buffer; the DynInst windows are fixed ring
// slabs; and run() fast-forwards runs of provably idle cycles — every stage
// reports whether it changed state, and when none did, the core jumps
// straight to the next cycle at which anything *can* happen (next scheduled
// event, next frontend-head maturity, next fetch-stall expiry, next
// controller re-check), replaying the per-cycle stall counters for the
// skipped distance. Statistics are bit-identical to the cycle-by-cycle
// execution; tests/golden pins that.
#pragma once

#include <chrono>  // tlrob-lint: allow(D2) host self-profiler time source, never architectural state
#include <memory>
#include <vector>

#include "common/flat_map.hpp"

#include "branch/load_hit_predictor.hpp"
#include "branch/predictor.hpp"
#include "common/ring_deque.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/interval_sampler.hpp"
#include "obs/self_profile.hpp"
#include "memory/memory_system.hpp"
#include "pipeline/dcra.hpp"
#include "pipeline/fetch_policy.hpp"
#include "pipeline/func_units.hpp"
#include "pipeline/issue_queue.hpp"
#include "pipeline/lsq.hpp"
#include "pipeline/rename.hpp"
#include "rob/allocation_policy.hpp"
#include "rob/rob.hpp"
#include "rob/two_level_rob.hpp"
#include "sim/event_wheel.hpp"
#include "sim/metrics.hpp"
#include "sim/presets.hpp"
#include "sim/trace.hpp"
#include "verify/invariant_checker.hpp"
#include "workload/thread_context.hpp"

namespace tlrob {

class SmtCore {
 public:
  /// One Benchmark per hardware thread; `benchmarks.size()` must equal
  /// cfg.num_threads. In CMP machines, `shared` is the machine-wide LLC/DRAM
  /// backend behind this core's L2 and `core_id` attributes its requests;
  /// standalone cores (null backend) keep the private fixed-latency channel.
  SmtCore(const MachineConfig& cfg, const std::vector<Benchmark>& benchmarks,
          SharedMemory* shared = nullptr, u32 core_id = 0);

  /// Runs until any thread has committed `commit_target` instructions or
  /// `max_cycles` elapse (0 = derive a generous bound from the target).
  /// `warmup_insts` commits per fastest thread are executed first and then
  /// excluded from every statistic — the stand-in for the paper's Simpoint
  /// fast-forwarding (cold caches otherwise dominate short runs).
  RunResult run(u64 commit_target, u64 max_cycles = 0, u64 warmup_insts = 0);

  /// Zeroes every statistic (counters, histograms, IPC baselines) while
  /// preserving microarchitectural state. Used at the warmup boundary.
  void reset_measurement();

  /// Advances exactly one cycle (exposed for tests; never fast-forwards).
  void tick();

  Cycle now() const { return cycle_; }
  u64 committed(ThreadId t) const { return threads_[t].committed; }

  /// Largest measurement-relative commit count over this core's threads —
  /// run()'s progress metric, exposed for the CMP machine's lockstep loop.
  u64 fastest_measured() const {
    u64 best = 0;
    for (const auto& ts : threads_) {
      const u64 m = ts.committed - ts.committed_base;
      if (m > best) best = m;
    }
    return best;
  }
  u32 outstanding_l1(ThreadId t) const { return threads_[t].outstanding_l1; }
  u32 outstanding_l2(ThreadId t) const { return threads_[t].outstanding_l2; }
  const ReorderBuffer& rob(ThreadId t) const { return threads_[t].rob; }
  const IssueQueue& issue_queue() const { return iq_; }
  MemorySystem& memory() { return mem_; }
  TwoLevelRobController& rob_controller() { return *rob_ctrl_; }
  SecondLevelRob& second_level() { return second_; }
  RenameUnit& rename_unit() { return rename_; }
  BranchPredictor& branch_predictor() { return bpred_; }
  StatGroup& stats() { return stats_; }
  PipelineTracer& tracer() { return tracer_; }
  const MachineConfig& config() const { return cfg_; }
  const EventWheel& event_wheel() const { return wheel_; }

  /// Attaches a Chrome trace-event writer (nullptr detaches). Unlike the
  /// text tracer this does not pin the core to cycle-by-cycle execution:
  /// every span edge and instant happens in a state-changing tick, which
  /// the idle-cycle fast-forward never skips (obs/chrome_trace.hpp).
  void attach_chrome_trace(obs::ChromeTraceWriter* writer);

  /// Closes any still-open second-level tenure into the attached Chrome
  /// trace (span end = the current cycle) without disturbing the live
  /// grant; run() calls this at exit so traces never end with a dangling
  /// allocation.
  void flush_chrome_trace();

  /// Interval-telemetry series recorded so far (empty unless
  /// cfg.telemetry.sample_interval is nonzero).
  const obs::IntervalSeries& samples() const { return series_; }

  /// Host self-profiler (active when cfg.telemetry.profile).
  const obs::SelfProfiler& profiler() const { return profiler_; }

  /// Ticks actually executed (cycle_ minus fast-forwarded ones) — the
  /// denominator for the profiler's ns/cycle column.
  u64 executed_cycles() const { return cycle_ - fast_forwarded_; }

  /// Cycles run() skipped via idle fast-forward (diagnostics; counted in
  /// cycle_ exactly as if they had been ticked).
  u64 fast_forwarded_cycles() const { return fast_forwarded_; }

  /// The pipeline invariant auditor (cfg.audit decides what runs per cycle).
  InvariantChecker& auditor() { return auditor_; }

  /// Runs every registered invariant check against the current state
  /// immediately, regardless of the configured audit level or intervals.
  /// Returns the number of violations found by this sweep.
  u32 audit_now();

  /// Test-only mutable access to structures the audit tests corrupt; the
  /// simulator itself never uses these.
  ReorderBuffer& rob_for_test(ThreadId t) { return threads_[t].rob; }
  LoadStoreQueue& lsq_for_test(ThreadId t) { return threads_[t].lsq; }
  IssueQueue& iq_for_test() { return iq_; }
  EventWheel& wheel_for_test() { return wheel_; }

  /// Builds the RunResult for the current state (run() calls this at exit).
  RunResult snapshot_result() const;

  // -- CMP lockstep interface (sim/cmp.cpp) ----------------------------------
  // step() is decomposed into these so a CmpMachine can tick N cores in
  // lockstep and fast-forward only when EVERY core proved its cycle idle:
  // step(limit) == { if (cmp_pinned()) tick; else if (!cmp_tick()) { w =
  // cmp_idle_wake(limit); if (w > now()) cmp_replay_idle_to(w); } }.

  /// The auditor/tracer pin this core to cycle-by-cycle execution.
  bool cmp_pinned() const { return auditor_.enabled() || tracer_.attached(); }
  /// One tick with the fast-forward stall baselines captured; returns true
  /// iff the tick changed machine state (a false return means
  /// cmp_idle_wake/cmp_replay_idle_to may be used for this cycle).
  bool cmp_tick();
  /// After an idle cmp_tick(): the earliest future cycle anything can happen
  /// at on this core, bounded by `limit`. A result <= now() means no skip.
  Cycle cmp_idle_wake(Cycle limit) const;
  /// Jumps the core to `wake`, replaying per-cycle stall counters and sample
  /// points for the skipped distance (wake must not exceed this core's
  /// cmp_idle_wake bound).
  void cmp_replay_idle_to(Cycle wake);
  /// Overrides the fast-forwarded-cycle count. The parallel CMP engine skips
  /// per-core spans the serial engine only skips machine-wide; it reconstructs
  /// the serial machine-wide count from the per-core idle logs and installs it
  /// here before snapshot_result() so `core.fast_forwarded_cycles` (and
  /// executed_cycles()) stay bit-identical to the serial engine. Every other
  /// statistic is fast-forward-pattern-independent by the replay contract.
  void cmp_set_fast_forwarded(u64 ff) { fast_forwarded_ = ff; }

 private:
  struct ThreadState {
    std::unique_ptr<ThreadContext> ctx;
    ReorderBuffer rob;
    LoadStoreQueue lsq;
    /// Fetched, awaiting dispatch (oldest front). Sized for the fetch buffer
    /// plus the whole ROB slab: FLUSH un-dispatch pushes a full window back.
    RingDeque<DynInst> frontend;
    /// Block index by entry PC. Sealed at construction; sorted flat storage
    /// so any future iteration (or emission) of it is deterministic (D1).
    FlatMap<Addr, u32> block_of_pc;

    u64 next_tseq = 1;
    u64 committed = 0;
    u64 committed_base = 0;  // committed count at the last measurement reset

    // Fetch state.
    bool wrong_path = false;  // fetching down a mispredicted path
    bool wp_dead = false;     // wrong-path cursor fell off the CFG
    u32 wp_block = 0;
    u32 wp_index = 0;
    Cycle fetch_stall_until = 0;

    // Outstanding-miss accounting (STALL/FLUSH gating, DCRA classification).
    u32 outstanding_l1 = 0;
    u32 outstanding_l2 = 0;
    u32 unresolved_ctrl = 0;  // dispatched control ops not yet resolved

    ThreadState(u32 rob_cap, u32 rob_max_extra, u32 lsq_cap, u32 frontend_cap)
        : rob(rob_cap, rob_max_extra),
          lsq(lsq_cap),
          frontend(frontend_cap + rob_cap + rob_max_extra) {}
  };

  // -- stages (each returns true iff it changed machine state this cycle) ----
  bool process_events();
  bool do_commit();
  bool do_issue();
  bool do_dispatch();
  bool do_fetch();
  bool do_early_release();

  /// One tick; returns true iff any stage (or the ROB controller) acted.
  /// The template parameter selects host self-profiling: <true> brackets
  /// each stage with steady_clock reads feeding profiler_, <false> compiles
  /// to the bare stage sequence (the two share one body via if constexpr,
  /// so they cannot drift apart).
  template <bool Profiled>
  bool tick_impl();
  bool tick_once() { return tick_impl<false>(); }
  /// tick_impl dispatch on the profiler flag (checked once per tick).
  bool tick_dispatch();
  /// tick_once() plus, when the cycle was provably idle and neither the
  /// auditor nor a tracer needs to see every cycle, a jump to the next cycle
  /// anything can happen at (bounded by `limit`), with the per-cycle stall
  /// statistics replayed for the skipped distance.
  void step(Cycle limit);

  // -- helpers ----------------------------------------------------------------
  void refresh_views();
  DynInst* find_inst(const InstRef& ref);
  void schedule(Cycle when, EvKind kind, const DynInst& di);
  void handle_fu_complete(DynInst& di);
  void handle_load_fill(DynInst& di);
  void handle_l2_miss_detect(DynInst& di);
  void handle_load_replay(DynInst& di);
  void finish_execution(DynInst& di);
  void resolve_control(DynInst& di);
  void squash_after(ThreadId tid, u64 tseq);
  void undispatch_after(ThreadId tid, u64 tseq);
  void drop_outstanding_counts(DynInst& di);
  void refresh_audit_ctx();
  /// Captures one interval sample labelled `label` from the current state
  /// (also called from step()'s fast-forward replay, where the quiescent
  /// state is exactly the state every skipped cycle saw).
  void record_sample(Cycle label);
  /// Stall-cycle taxonomy (active iff sampling is on): classifies thread `t`
  /// at cycle `c` from current machine state. Pure; every input except the
  /// cycle-indexed latency-chain segment comparison is invariant across an
  /// idle span, which is what lets the fast-forward attribute skipped spans
  /// piecewise instead of executing them.
  obs::StallClass classify_stall(ThreadId t, Cycle c, bool committed_now) const;
  /// Attributes the cycle being ticked (cycle_) for every thread; called at
  /// the end of tick_impl, before the sampler, so samples see it.
  void attribute_tick();
  /// Attributes the idle cycles [from, to) from the quiescent state,
  /// splitting at the head load's segment edges (at most three breakpoints).
  void attribute_idle_span(Cycle from, Cycle to);
  /// Observes second-level ownership transitions for the Chrome trace's
  /// grant-lifecycle spans and the text tracer's grant notes. Called at the
  /// end of a tick only while an observer is attached; transitions can only
  /// happen in state-changing ticks, which are never fast-forwarded.
  void poll_second_level();
  bool fetch_one(ThreadState& ts, ThreadId tid);
  DynInst make_correct_path_inst(ThreadState& ts, ThreadId tid);
  DynInst make_wrong_path_inst(ThreadState& ts, ThreadId tid);
  void predict_and_steer(ThreadState& ts, DynInst& di);
  bool try_dispatch_one(ThreadState& ts, ThreadId tid);
  bool issue_one(DynInst& di);
  void issue_load(DynInst& di);
  void replay_dependents_of(PhysReg reg);
  Addr icache_addr(const ThreadState& ts, Addr pc) const {
    return ts.ctx->addr_space_base() + pc;
  }

  MachineConfig cfg_;
  std::vector<Benchmark> benchmarks_;
  SharedMemory* shared_ = nullptr;  // not owned; null outside CMP machines
  u32 core_id_ = 0;
  std::vector<ThreadState> threads_;
  RenameUnit rename_;
  IssueQueue iq_;
  FuncUnitPool fus_;
  MemorySystem mem_;
  BranchPredictor bpred_;
  LoadHitPredictor lhp_;
  DcraController dcra_;
  std::unique_ptr<FetchPolicy> fetch_policy_;
  SecondLevelRob second_;
  std::unique_ptr<TwoLevelRobController> rob_ctrl_;

  EventWheel wheel_;
  Cycle cycle_ = 0;
  Cycle cycle_base_ = 0;  // cycle count at the last measurement reset
  SeqNum next_seq_ = 1;
  u64 commit_rr_ = 0;
  u64 fast_forwarded_ = 0;
  // Stall-counter values captured by cmp_tick() before the tick ran; the
  // deltas are what cmp_replay_idle_to() multiplies across skipped cycles.
  u64 ff_base_[7] = {0, 0, 0, 0, 0, 0, 0};
  Rng wp_rng_;

  // Reused per-cycle scratch (capacity retained; steady state never
  // allocates).
  std::vector<ThreadFetchView> views_;
  std::vector<ThreadId> order_;
  std::vector<DynInst*> ready_scratch_;
  std::vector<PhysReg> replay_regs_;     // worklist for replay_dependents_of
  std::vector<DynInst*> replay_victims_;

  StatGroup stats_;
  PipelineTracer tracer_;
  Histogram dod_true_{31};
  Histogram dod_proxy_{31};

  // Observability (src/obs). All off by default: sample_every_ == 0 makes
  // the per-tick sampler test one short-circuited compare, trace_ == nullptr
  // skips every event hook, and the profiler gates tick_impl selection.
  obs::ChromeTraceWriter* trace_ = nullptr;
  obs::IntervalSeries series_;
  Cycle sample_every_ = 0;
  Cycle next_sample_ = 0;
  // Closed stall-cycle taxonomy, gated with the sampler (sample_every_ != 0):
  // per thread, measurement-relative cycles per obs::StallClass — exactly one
  // class per thread per cycle, so each row sums to cycle_ - cycle_base_.
  // Kept out of stats_ so a sampling run's counter map stays identical to a
  // non-sampling run's (snapshot_result exports it as RunResult::stall_cycles).
  std::vector<std::array<u64, obs::kStallClassCount>> stall_cycles_;
  // Per-thread committed counts at the top of the current tick (kCommit
  // detection scratch; only maintained while the taxonomy is on).
  std::vector<u64> commit_base_scratch_;
  obs::SelfProfiler profiler_;
  // Detail attribution for the cross-cutting kMemory/kPredict phases: when
  // the profiler is on, ProfScope brackets the memory-hierarchy and
  // predictor calls, accumulating their time both into the detail phase and
  // into prof_steal_ns_, which tick_impl's per-stage lap() subtracts from
  // the enclosing stage. Off (the default), ProfScope is one predictable
  // branch.
  bool prof_detail_ = false;
  u64 prof_steal_ns_ = 0;
  struct ProfScope {
    SmtCore* core;
    obs::Phase phase;
    // tlrob-lint: allow(D2) profiler scope reads host time; feeds SelfProfiler only
    std::chrono::steady_clock::time_point t0;
    ProfScope(SmtCore* c, obs::Phase p) : core(c), phase(p) {
      if (core->prof_detail_) t0 = std::chrono::steady_clock::now();  // tlrob-lint: allow(D2) profiler
    }
    ~ProfScope() {
      if (!core->prof_detail_) return;
      // tlrob-lint: allow(D2) profiler scope exit: host-time delta for SelfProfiler
      const u64 dt = static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() -  // tlrob-lint: allow(D2) profiler
                                          t0)
                                          .count());
      core->profiler_.add(phase, dt);
      core->prof_steal_ns_ += dt;
    }
  };
  // Second-level tenure being observed by poll_second_level().
  ThreadId sl_owner_ = SecondLevelRob::kNoOwner;
  Cycle sl_acquired_ = 0;
  u64 sl_allocs_ = 0;
  u64 sl_trigger_ = 0;

  InvariantChecker auditor_;
  AuditContext audit_ctx_;  // stable pointers into the members above

  // Cached stat handles (StatGroup map nodes are address-stable and reset()
  // zeroes in place, so these stay valid across reset_measurement()). The
  // per-cycle map lookups were ~a quarter of the profile. Declared after
  // stats_ (initialisation order). The stall counters are also what step()
  // replays across fast-forwarded cycles.
  Counter* cnt_events_dropped_;
  Counter* cnt_exec_completed_;
  Counter* cnt_issue_insts_;
  Counter* cnt_issue_replays_;
  Counter* cnt_commit_insts_;
  Counter* cnt_commit_wp_bug_;
  Counter* cnt_dispatch_insts_;
  Counter* cnt_stall_rob_;
  Counter* cnt_stall_iq_;
  Counter* cnt_stall_lsq_;
  Counter* cnt_stall_regs_;
  Counter* cnt_stall_reg_reserve_;
  Counter* cnt_stall_dcra_;
  Counter* cnt_fetch_insts_;
  Counter* cnt_fetch_wrong_path_;
  Counter* cnt_fetch_icache_stalls_;
  Counter* cnt_fetch_policy_gated_;
  Counter* cnt_squash_insts_;
  Counter* cnt_lsq_forwards_;
  Counter* cnt_loads_l1_miss_;
  Counter* cnt_loads_l1_miss_wp_;
  Counter* cnt_loads_spec_wakeups_;
  Counter* cnt_loads_l2_miss_;
  Counter* cnt_loads_l2_miss_wp_;
  Counter* cnt_loads_l2_miss_fills_;
  Counter* cnt_loads_l2_detect_after_fill_;
  Counter* cnt_loads_l2_miss_detect_;
  Counter* cnt_loads_l2_miss_detect_wp_;
  Counter* cnt_flush_triggered_;
  Counter* cnt_flush_undispatched_;
  Counter* cnt_mispredicts_resolved_;
  Counter* cnt_mispredicts_fetched_;
  Counter* cnt_early_released_;
};

}  // namespace tlrob
