#include "sim/metrics.hpp"

#include <stdexcept>

namespace tlrob {

double RunResult::total_throughput() const {
  double sum = 0;
  for (const auto& t : threads) sum += t.ipc;
  return sum;
}

u64 run_counter(const RunResult& r, const std::string& name) {
  auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

double weighted_ipc(double mt_ipc, double st_ipc) {
  if (st_ipc <= 0.0) throw std::invalid_argument("weighted_ipc: single-thread IPC must be > 0");
  return mt_ipc / st_ipc;
}

double fair_throughput(const std::vector<double>& mt_ipc, const std::vector<double>& st_ipc) {
  if (mt_ipc.empty() || mt_ipc.size() != st_ipc.size())
    throw std::invalid_argument("fair_throughput: mismatched or empty IPC vectors");
  double denom = 0;
  for (size_t i = 0; i < mt_ipc.size(); ++i) {
    const double w = weighted_ipc(mt_ipc[i], st_ipc[i]);
    if (w <= 0.0) return 0.0;  // a stalled thread pins the harmonic mean at 0
    denom += 1.0 / w;
  }
  return static_cast<double>(mt_ipc.size()) / denom;
}

}  // namespace tlrob
