// Command-line overrides for MachineConfig — the sim-outorder-style knobs a
// downstream user expects. Keys are flat "name=value" options (see
// common/config.hpp); unknown keys are ignored so experiment scripts can mix
// machine knobs with their own options.
#pragma once

#include <string>

#include "common/config.hpp"
#include "sim/presets.hpp"

namespace tlrob {

/// Applies recognised overrides onto `cfg`. Supported keys:
///   threads, fetch_width, fetch_threads, dispatch_width, issue_width,
///   commit_width, decode_depth, frontend_buffer,
///   rob1 (first-level entries), rob2 (second-level entries), iq, lsq,
///   int_regs, fp_regs, shared_regfile (0/1), reg_reserve,
///   policy (dcra|icount|stall|flush|rr),
///   scheme (baseline|rrob|relaxed|cdr|prob), threshold, recheck, cdr_delay,
///   lease, cooldown, predictor_entries,
///   l2_kb, l2_ways, l1d_kb, l1i_kb, mem_lat, interchunk, critical_bytes,
///   mshr, dcra_sharing, seed,
///   cores (CMP core count; > 1 enables the shared LLC/DRAM backend),
///   llc (spec string, see apply_llc_spec), dram (see apply_dram_spec),
///   force_cmp (0/1 — route a 1-core config through the CMP engine).
/// Throws std::invalid_argument on an unrecognised policy/scheme value.
MachineConfig apply_overrides(MachineConfig cfg, const Options& opts);

/// Parses an LLC spec "size_kb[:ways[:latency[:mshr]]]" (e.g. "8192:16:24:32")
/// onto `llc` and enables it. Throws std::invalid_argument on a malformed
/// spec.
void apply_llc_spec(LlcConfig& llc, const std::string& spec);

/// Parses a DRAM spec "channels[:banks[:tcas[:trcd[:trp]]]]" (e.g.
/// "2:8:240:160:100") onto `dram`. Throws std::invalid_argument on a
/// malformed spec.
void apply_dram_spec(DramConfig& dram, const std::string& spec);

/// Parses a scheme name as accepted by apply_overrides.
RobScheme parse_scheme(const std::string& name);

/// Parses a fetch-policy name as accepted by apply_overrides.
FetchPolicyKind parse_fetch_policy(const std::string& name);

}  // namespace tlrob
