#include "sim/config_override.hpp"

#include <stdexcept>

namespace tlrob {

RobScheme parse_scheme(const std::string& name) {
  if (name == "baseline") return RobScheme::kBaseline;
  if (name == "rrob" || name == "reactive") return RobScheme::kReactive;
  if (name == "relaxed") return RobScheme::kRelaxedReactive;
  if (name == "cdr") return RobScheme::kCdr;
  if (name == "prob" || name == "predictive") return RobScheme::kPredictive;
  if (name == "adaptive") return RobScheme::kAdaptive;
  throw std::invalid_argument("unknown ROB scheme: " + name +
                              " (expected baseline|rrob|relaxed|cdr|prob|adaptive)");
}

FetchPolicyKind parse_fetch_policy(const std::string& name) {
  if (name == "dcra") return FetchPolicyKind::kDcra;
  if (name == "icount") return FetchPolicyKind::kIcount;
  if (name == "stall") return FetchPolicyKind::kStall;
  if (name == "flush") return FetchPolicyKind::kFlush;
  if (name == "rr" || name == "round_robin") return FetchPolicyKind::kRoundRobin;
  throw std::invalid_argument("unknown fetch policy: " + name +
                              " (expected dcra|icount|stall|flush|rr)");
}

MachineConfig apply_overrides(MachineConfig cfg, const Options& opts) {
  auto u32opt = [&](const char* key, u32& field) {
    field = static_cast<u32>(opts.get_u64(key, field));
  };
  u32opt("threads", cfg.num_threads);
  u32opt("fetch_width", cfg.fetch_width);
  u32opt("fetch_threads", cfg.fetch_threads);
  u32opt("dispatch_width", cfg.dispatch_width);
  u32opt("issue_width", cfg.issue_width);
  u32opt("commit_width", cfg.commit_width);
  u32opt("decode_depth", cfg.decode_depth);
  u32opt("frontend_buffer", cfg.frontend_buffer);
  u32opt("rob1", cfg.rob_first_level);
  u32opt("rob2", cfg.rob_second_level);
  u32opt("iq", cfg.iq_entries);
  u32opt("lsq", cfg.lsq_entries);
  u32opt("int_regs", cfg.int_regs);
  u32opt("fp_regs", cfg.fp_regs);
  u32opt("reg_reserve", cfg.second_level_reg_reserve);
  cfg.shared_regfile = opts.get_bool("shared_regfile", cfg.shared_regfile);

  if (opts.has("policy")) cfg.fetch_policy = parse_fetch_policy(opts.get("policy"));
  if (opts.has("scheme")) cfg.rob.scheme = parse_scheme(opts.get("scheme"));
  u32opt("threshold", cfg.rob.dod_threshold);
  cfg.rob.recheck_interval = opts.get_u64("recheck", cfg.rob.recheck_interval);
  cfg.rob.cdr_delay = opts.get_u64("cdr_delay", cfg.rob.cdr_delay);
  cfg.rob.lease_limit = opts.get_u64("lease", cfg.rob.lease_limit);
  cfg.rob.lease_cooldown = opts.get_u64("cooldown", cfg.rob.lease_cooldown);
  u32opt("predictor_entries", cfg.rob.predictor_entries);

  if (opts.has("l2_kb")) cfg.memory.l2.size_bytes = opts.get_u64("l2_kb", 0) << 10;
  u32opt("l2_ways", cfg.memory.l2.ways);
  if (opts.has("l1d_kb")) cfg.memory.l1d.size_bytes = opts.get_u64("l1d_kb", 0) << 10;
  if (opts.has("l1i_kb")) cfg.memory.l1i.size_bytes = opts.get_u64("l1i_kb", 0) << 10;
  cfg.memory.channel.first_chunk = opts.get_u64("mem_lat", cfg.memory.channel.first_chunk);
  cfg.memory.channel.interchunk = opts.get_u64("interchunk", cfg.memory.channel.interchunk);
  u32opt("critical_bytes", cfg.memory.channel.critical_bytes);
  u32opt("mshr", cfg.memory.channel.mshr_entries);
  cfg.dcra.sharing = opts.get_double("dcra_sharing", cfg.dcra.sharing);
  cfg.seed = opts.get_u64("seed", cfg.seed);

  if (opts.has("audit")) cfg.audit.level = parse_audit_level(opts.get("audit"));
  cfg.audit.cheap_interval = opts.get_u64("audit_cheap_interval", cfg.audit.cheap_interval);
  cfg.audit.full_interval = opts.get_u64("audit_full_interval", cfg.audit.full_interval);
  cfg.audit.abort_on_violation = opts.get_bool("audit_abort", cfg.audit.abort_on_violation);
  return cfg;
}

}  // namespace tlrob
