#include "sim/config_override.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace tlrob {

RobScheme parse_scheme(const std::string& name) {
  if (name == "baseline") return RobScheme::kBaseline;
  if (name == "rrob" || name == "reactive") return RobScheme::kReactive;
  if (name == "relaxed") return RobScheme::kRelaxedReactive;
  if (name == "cdr") return RobScheme::kCdr;
  if (name == "prob" || name == "predictive") return RobScheme::kPredictive;
  if (name == "adaptive") return RobScheme::kAdaptive;
  throw std::invalid_argument("unknown ROB scheme: " + name +
                              " (expected baseline|rrob|relaxed|cdr|prob|adaptive)");
}

FetchPolicyKind parse_fetch_policy(const std::string& name) {
  if (name == "dcra") return FetchPolicyKind::kDcra;
  if (name == "icount") return FetchPolicyKind::kIcount;
  if (name == "stall") return FetchPolicyKind::kStall;
  if (name == "flush") return FetchPolicyKind::kFlush;
  if (name == "rr" || name == "round_robin") return FetchPolicyKind::kRoundRobin;
  throw std::invalid_argument("unknown fetch policy: " + name +
                              " (expected dcra|icount|stall|flush|rr)");
}

namespace {

/// Splits a ":"-separated spec into up to `max_fields` u64s (missing fields
/// keep their defaults; extra fields are an error).
std::vector<u64> parse_spec_fields(const std::string& spec, size_t max_fields,
                                   const char* what) {
  std::vector<u64> fields;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t colon = spec.find(':', pos);
    const std::string field =
        colon == std::string::npos ? spec.substr(pos) : spec.substr(pos, colon - pos);
    try {
      size_t used = 0;
      fields.push_back(std::stoull(field, &used));
      if (used != field.size()) throw std::invalid_argument(field);
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string(what) + " spec: bad field \"" + field + "\" in \"" +
                                  spec + "\"");
    }
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  if (fields.size() > max_fields)
    throw std::invalid_argument(std::string(what) + " spec: too many fields in \"" + spec + "\"");
  return fields;
}

}  // namespace

void apply_llc_spec(LlcConfig& llc, const std::string& spec) {
  const std::vector<u64> f = parse_spec_fields(spec, 4, "llc");
  llc.enabled = true;
  if (f.size() > 0) llc.geo.size_bytes = f[0] << 10;
  if (f.size() > 1) llc.geo.ways = static_cast<u32>(f[1]);
  if (f.size() > 2) llc.geo.hit_latency = static_cast<u32>(f[2]);
  if (f.size() > 3) llc.mshr_entries = static_cast<u32>(f[3]);
}

void apply_dram_spec(DramConfig& dram, const std::string& spec) {
  const std::vector<u64> f = parse_spec_fields(spec, 5, "dram");
  if (f.size() > 0) dram.channels = static_cast<u32>(f[0]);
  if (f.size() > 1) dram.banks_per_channel = static_cast<u32>(f[1]);
  if (f.size() > 2) dram.tcas = f[2];
  if (f.size() > 3) dram.trcd = f[3];
  if (f.size() > 4) dram.trp = f[4];
}

MachineConfig apply_overrides(MachineConfig cfg, const Options& opts) {
  auto u32opt = [&](const char* key, u32& field) {
    field = static_cast<u32>(opts.get_u64(key, field));
  };
  u32opt("threads", cfg.num_threads);
  u32opt("fetch_width", cfg.fetch_width);
  u32opt("fetch_threads", cfg.fetch_threads);
  u32opt("dispatch_width", cfg.dispatch_width);
  u32opt("issue_width", cfg.issue_width);
  u32opt("commit_width", cfg.commit_width);
  u32opt("decode_depth", cfg.decode_depth);
  u32opt("frontend_buffer", cfg.frontend_buffer);
  u32opt("rob1", cfg.rob_first_level);
  u32opt("rob2", cfg.rob_second_level);
  u32opt("iq", cfg.iq_entries);
  u32opt("lsq", cfg.lsq_entries);
  u32opt("int_regs", cfg.int_regs);
  u32opt("fp_regs", cfg.fp_regs);
  u32opt("reg_reserve", cfg.second_level_reg_reserve);
  cfg.shared_regfile = opts.get_bool("shared_regfile", cfg.shared_regfile);

  if (opts.has("policy")) cfg.fetch_policy = parse_fetch_policy(opts.get("policy"));
  if (opts.has("scheme")) cfg.rob.scheme = parse_scheme(opts.get("scheme"));
  u32opt("threshold", cfg.rob.dod_threshold);
  cfg.rob.recheck_interval = opts.get_u64("recheck", cfg.rob.recheck_interval);
  cfg.rob.cdr_delay = opts.get_u64("cdr_delay", cfg.rob.cdr_delay);
  cfg.rob.lease_limit = opts.get_u64("lease", cfg.rob.lease_limit);
  cfg.rob.lease_cooldown = opts.get_u64("cooldown", cfg.rob.lease_cooldown);
  u32opt("predictor_entries", cfg.rob.predictor_entries);

  if (opts.has("l2_kb")) cfg.memory.l2.size_bytes = opts.get_u64("l2_kb", 0) << 10;
  u32opt("l2_ways", cfg.memory.l2.ways);
  if (opts.has("l1d_kb")) cfg.memory.l1d.size_bytes = opts.get_u64("l1d_kb", 0) << 10;
  if (opts.has("l1i_kb")) cfg.memory.l1i.size_bytes = opts.get_u64("l1i_kb", 0) << 10;
  cfg.memory.channel.first_chunk = opts.get_u64("mem_lat", cfg.memory.channel.first_chunk);
  cfg.memory.channel.interchunk = opts.get_u64("interchunk", cfg.memory.channel.interchunk);
  u32opt("critical_bytes", cfg.memory.channel.critical_bytes);
  u32opt("mshr", cfg.memory.channel.mshr_entries);
  cfg.dcra.sharing = opts.get_double("dcra_sharing", cfg.dcra.sharing);
  cfg.seed = opts.get_u64("seed", cfg.seed);

  // CMP topology and the shared memory backend. cores > 1 without an
  // explicit llc spec still gets the shared backend (default LLC geometry);
  // an llc spec alone builds a 1-core machine with an LLC.
  u32opt("cores", cfg.num_cores);
  if (opts.has("llc")) apply_llc_spec(cfg.llc, opts.get("llc"));
  if (opts.has("dram")) apply_dram_spec(cfg.dram, opts.get("dram"));
  cfg.force_cmp_engine = opts.get_bool("force_cmp", cfg.force_cmp_engine);
  // Parallel CMP engine: `parallel_cores` (bare flag = 1 = one worker per
  // core; any nonzero value enables it, the number only feeds the runner's
  // thread-budget heuristic) and the epoch quantum (0 = engine default).
  u32opt("parallel_cores", cfg.parallel_cores);
  u32opt("parallel_quantum", cfg.parallel_quantum);

  if (opts.has("audit")) cfg.audit.level = parse_audit_level(opts.get("audit"));
  cfg.audit.cheap_interval = opts.get_u64("audit_cheap_interval", cfg.audit.cheap_interval);
  cfg.audit.full_interval = opts.get_u64("audit_full_interval", cfg.audit.full_interval);
  cfg.audit.abort_on_violation = opts.get_bool("audit_abort", cfg.audit.abort_on_violation);
  return cfg;
}

}  // namespace tlrob
