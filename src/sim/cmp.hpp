// CMP-of-SMT machine: N SmtCores in lockstep behind one shared LLC + banked
// DRAM backend.
//
// Each core is a complete Table 1 SMT core — private L1/L2, branch state,
// issue queue, register files, and its own second-level ROB partition — and
// the cores couple only through SharedMemory (memory/shared_memory.hpp),
// whose latency-chain contract means the memory side never generates events
// of its own. That makes the machine-wide tick loop simple and the global
// idle fast-forward sound:
//
//   - Cores tick in fixed index order every cycle (deterministic
//     interleaving of LLC/DRAM requests).
//   - The machine fast-forwards only when EVERY core proved its cycle idle
//     in the same lockstep cycle; the jump target is the minimum of the
//     cores' individual wake bounds, and each core replays its own stall
//     counters and sample points across the skipped distance (SmtCore's
//     cmp_* decomposition of step()).
//
// Result merging: per-thread results concatenate core-major (core c's
// thread t is machine thread c*M + t, matching the workload slicing and the
// address-space bases), per-core counters sum under their historical names,
// the shared llc.*/dram.* families append once, and the DoD histograms
// merge. A 1-core machine without an LLC delegates run() to its single core
// outright, which makes the no-backend CMP path byte-identical to the
// legacy engine by construction — the differential test in
// tests/test_pool_fuzz.cpp pins the remaining plumbing.
//
// Parallel engine (cfg.parallel_cores != 0): run() executes the same
// machine on one pinned worker thread per core, synchronized by a
// deterministic epoch barrier at the shared-backend boundary. Each epoch,
// every core advances privately up to min(epoch quantum, termination
// horizon) cycles, re-using the exact cmp_tick / cmp_idle_wake /
// cmp_replay_idle_to decomposition the serial engine drives; every
// shared-backend call blocks in CoreGate::sync() until its (cycle, core)
// key is the global minimum, so LLC/DRAM mutations apply in exactly the
// serial lockstep order and results are bit-identical to the serial engine
// (DESIGN.md §14 carries the full argument; tests/test_parallel_cmp.cpp
// pins it differentially over every CMP preset).
#pragma once

#include <memory>
#include <vector>

#include "sim/smt_sim.hpp"

namespace tlrob {

class CmpMachine {
 public:
  /// One Benchmark per hardware thread, core-major: benchmarks[c*M + t] runs
  /// on core c, thread t. `benchmarks.size()` must equal
  /// cfg.num_cores * cfg.num_threads.
  CmpMachine(const MachineConfig& cfg, const std::vector<Benchmark>& benchmarks);

  /// Runs until any thread on any core has committed `commit_target`
  /// instructions or `max_cycles` elapse (0 = derive a generous bound), with
  /// `warmup_insts` excluded from every statistic — the same contract as
  /// SmtCore::run.
  RunResult run(u64 commit_target, u64 max_cycles = 0, u64 warmup_insts = 0);

  /// Advances every core exactly one cycle, in core order (tests).
  void tick();

  Cycle now() const { return cores_.front()->now(); }
  u32 num_cores() const { return static_cast<u32>(cores_.size()); }
  SmtCore& core(u32 c) { return *cores_[c]; }
  const SmtCore& core(u32 c) const { return *cores_[c]; }
  /// Null when the machine has no shared backend (1 core, LLC disabled).
  SharedMemory* shared_memory() { return shared_.get(); }

  /// Machine-wide Chrome tracing: one writer per core (process track
  /// "core<c>", pid = core index, carrying that core's thread/grant tracks)
  /// plus an optional backend writer (pid = num_cores, process "shared
  /// backend") that records LLC MSHR-pool occupancy, per-bank DRAM row
  /// open/conflict instants and cross-core merge events. Pass
  /// `per_core.size() == num_cores()`; `backend` may be null (and is
  /// ignored without a shared backend). Merge the writers with
  /// obs::ChromeTraceWriter::write_merged for one Perfetto-loadable file.
  void attach_chrome_trace(const std::vector<obs::ChromeTraceWriter*>& per_core,
                           obs::ChromeTraceWriter* backend);

  /// Sum of the cores' host self-profilers (phase nanos and call counts),
  /// for one machine-wide profile= table.
  obs::SelfProfiler aggregate_profile() const;

  /// Machine-wide executed ticks (sum over cores of cycles minus their
  /// fast-forwarded spans) — the ns/cycle denominator for
  /// aggregate_profile().print.
  u64 executed_cycles() const;

  /// Machine-wide result: concatenated threads, summed per-core counters,
  /// shared llc.*/dram.* families, merged DoD histograms and sample series.
  RunResult snapshot_result() const;

 private:
  /// One lockstep cycle for all cores, fast-forwarding a globally idle
  /// machine (bounded by `limit`).
  void step_all(Cycle limit);
  /// The epoch-parallel engine behind run() (cfg.parallel_cores != 0,
  /// multi-core machines only). Same contract and bit-identical results;
  /// max_cycles is already resolved by run().
  RunResult run_parallel(u64 commit_target, u64 max_cycles, u64 warmup_insts);
  void reset_measurement();
  /// Adds the shared backend's llc.*/dram.* counter families to `r` (no-op
  /// without a backend).
  void append_shared_counters(RunResult& r) const;

  MachineConfig cfg_;
  std::unique_ptr<SharedMemory> shared_;  // may be null (1 core, LLC off)
  std::vector<std::unique_ptr<SmtCore>> cores_;
};

}  // namespace tlrob
