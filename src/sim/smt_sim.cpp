#include "sim/smt_sim.hpp"

#include <algorithm>
#include <chrono>  // tlrob-lint: allow(D2) host self-profiler time source, never architectural state
#include <stdexcept>
#include <string>
#include <string_view>

#include "memory/shared_memory.hpp"

namespace tlrob {

namespace {

// Incremental append instead of an operator+ chain: GCC 12's -O3 restrict
// analysis misfires on long chains over std::to_string temporaries
// (GCC PR 105329) and -Werror turns that into a build break.
std::string concat(std::initializer_list<std::string_view> parts) {
  std::string out;
  for (const auto part : parts) out += part;
  return out;
}

}  // namespace

SmtCore::SmtCore(const MachineConfig& cfg, const std::vector<Benchmark>& benchmarks,
                 SharedMemory* shared, u32 core_id)
    : cfg_(cfg),
      benchmarks_(benchmarks),
      shared_(shared),
      core_id_(core_id),
      rename_(RenameConfig{cfg.int_regs, cfg.fp_regs, cfg.num_threads, cfg.shared_regfile}),
      iq_(cfg.iq_entries, cfg.num_threads),
      fus_(),
      mem_(cfg.memory, shared, core_id),
      bpred_(cfg.predictor, cfg.num_threads),
      lhp_(cfg.load_hit_entries, cfg.load_hit_history, cfg.num_threads),
      dcra_(cfg.dcra, cfg.num_threads),
      second_(cfg.rob_second_level),
      wp_rng_(cfg.seed ^ 0xabcdef12345ULL),
      series_(cfg.telemetry.sample_interval),
      sample_every_(cfg.telemetry.sample_interval),
      next_sample_(cfg.telemetry.sample_interval),
      auditor_(cfg.audit, cfg.num_threads) {
  profiler_.enable(cfg.telemetry.profile);
  prof_detail_ = cfg.telemetry.profile;
  if (benchmarks_.size() != cfg.num_threads)
    throw std::invalid_argument("SmtCore: one benchmark per hardware thread required");
  if (cfg.early_register_release && cfg.fetch_policy == FetchPolicyKind::kFlush)
    throw std::invalid_argument(
        "SmtCore: early register release is incompatible with the FLUSH policy "
        "(un-dispatched instructions cannot restore early-freed registers)");

  fetch_policy_ = FetchPolicy::create(cfg.fetch_policy, &dcra_);

  // The ROB ring slabs are sized for the largest window any scheme can ever
  // grant this configuration: the shared second level, or kAdaptive's
  // per-thread growth bound.
  const u32 rob_max_extra = std::max(cfg.rob_second_level, cfg.rob.adaptive_max_extra);
  threads_.reserve(cfg.num_threads);
  for (ThreadId t = 0; t < cfg.num_threads; ++t) {
    threads_.emplace_back(cfg.rob_first_level, rob_max_extra, cfg.lsq_entries,
                          cfg.frontend_buffer);
    ThreadState& ts = threads_.back();
    // Global thread identity: CMP machines offset each core's threads so
    // every thread in the machine gets a distinct address space and workload
    // seed; addr_space_id_base == 0 reduces to the historical single-core
    // values bit-for-bit.
    const u64 gt = cfg.addr_space_id_base + t;
    const Addr base = static_cast<Addr>(gt + 1) << 36;
    const u64 salt = cfg.seed + 7919ULL * (gt + 1);
    ts.ctx = benchmarks_[t].source_factory
                 ? benchmarks_[t].source_factory(benchmarks_[t], base, salt)
                 : std::make_unique<ThreadContext>(benchmarks_[t], base, salt);
    const Program& prog = ts.ctx->program();
    ts.block_of_pc.reserve(prog.num_blocks());
    for (u32 b = 0; b < prog.num_blocks(); ++b)
      ts.block_of_pc.emplace(prog.block(b).insts.front().pc, b);
    ts.block_of_pc.seal();
  }

  std::vector<ReorderBuffer*> robs;
  for (auto& ts : threads_) robs.push_back(&ts.rob);
  rob_ctrl_ = std::make_unique<TwoLevelRobController>(cfg.rob, std::move(robs), second_);

  stall_cycles_.assign(cfg.num_threads, {});
  commit_base_scratch_.assign(cfg.num_threads, 0);

  views_.resize(cfg.num_threads);
  order_.reserve(cfg.num_threads);
  ready_scratch_.reserve(cfg.iq_entries);
  replay_regs_.reserve(64);
  replay_victims_.reserve(cfg.iq_entries);

  cnt_events_dropped_ = &stats_.counter("events.dropped");
  cnt_exec_completed_ = &stats_.counter("exec.completed");
  cnt_issue_insts_ = &stats_.counter("issue.insts");
  cnt_issue_replays_ = &stats_.counter("issue.replays");
  cnt_commit_insts_ = &stats_.counter("commit.insts");
  cnt_commit_wp_bug_ = &stats_.counter("commit.wrong_path_bug");
  cnt_dispatch_insts_ = &stats_.counter("dispatch.insts");
  cnt_stall_rob_ = &stats_.counter("dispatch.stall_rob");
  cnt_stall_iq_ = &stats_.counter("dispatch.stall_iq");
  cnt_stall_lsq_ = &stats_.counter("dispatch.stall_lsq");
  cnt_stall_regs_ = &stats_.counter("dispatch.stall_regs");
  cnt_stall_reg_reserve_ = &stats_.counter("dispatch.stall_reg_reserve");
  cnt_stall_dcra_ = &stats_.counter("dispatch.stall_dcra");
  cnt_fetch_insts_ = &stats_.counter("fetch.insts");
  cnt_fetch_wrong_path_ = &stats_.counter("fetch.wrong_path");
  cnt_fetch_icache_stalls_ = &stats_.counter("fetch.icache_stalls");
  cnt_fetch_policy_gated_ = &stats_.counter("fetch.policy_gated");
  cnt_squash_insts_ = &stats_.counter("squash.insts");
  cnt_lsq_forwards_ = &stats_.counter("lsq.forwards");
  cnt_loads_l1_miss_ = &stats_.counter("loads.l1_miss");
  cnt_loads_l1_miss_wp_ = &stats_.counter("loads.l1_miss_wp");
  cnt_loads_spec_wakeups_ = &stats_.counter("loads.spec_wakeups");
  cnt_loads_l2_miss_ = &stats_.counter("loads.l2_miss");
  cnt_loads_l2_miss_wp_ = &stats_.counter("loads.l2_miss_wp");
  cnt_loads_l2_miss_fills_ = &stats_.counter("loads.l2_miss_fills");
  cnt_loads_l2_detect_after_fill_ = &stats_.counter("loads.l2_detect_after_fill");
  cnt_loads_l2_miss_detect_ = &stats_.counter("loads.l2_miss_detect");
  cnt_loads_l2_miss_detect_wp_ = &stats_.counter("loads.l2_miss_detect_wp");
  cnt_flush_triggered_ = &stats_.counter("flush.triggered");
  cnt_flush_undispatched_ = &stats_.counter("flush.undispatched");
  cnt_mispredicts_resolved_ = &stats_.counter("branch.mispredicts_resolved");
  cnt_mispredicts_fetched_ = &stats_.counter("branch.mispredicts_fetched");
  cnt_early_released_ = &stats_.counter("rename.early_released");

  // The audit view is built once: every pointer below is stable for the
  // core's lifetime (threads_ never resizes after construction). Only the
  // cycle and the outstanding-miss snapshots refresh per audit.
  audit_ctx_.num_threads = cfg_.num_threads;
  audit_ctx_.scheme = cfg_.rob.scheme;
  audit_ctx_.adaptive_max_extra = cfg_.rob.adaptive_max_extra;
  for (auto& ts : threads_) {
    audit_ctx_.robs.push_back(&ts.rob);
    audit_ctx_.lsqs.push_back(&ts.lsq);
  }
  audit_ctx_.iq = &iq_;
  audit_ctx_.rename = &rename_;
  audit_ctx_.second = &second_;
  audit_ctx_.ctrl = rob_ctrl_.get();
  audit_ctx_.wheel = &wheel_;
  audit_ctx_.shared = shared_;
  audit_ctx_.core_id = core_id_;
  audit_ctx_.outstanding_l1.assign(cfg_.num_threads, 0);
  audit_ctx_.outstanding_l2.assign(cfg_.num_threads, 0);
  audit_ctx_.last_committed = &auditor_.last_committed();

  // Functional cache warming (the stand-in for Simpoint fast-forwarding):
  // REUSED data starts resident, so short runs measure steady-state
  // behaviour instead of cold-start churn. Only content a benchmark actually
  // re-touches is installed — streaming sweeps, pointer chases and the cold
  // bodies of gather regions have no reuse to preserve, and warming them
  // would only flush everyone else's hot sets. Large reuse prefixes go
  // first, small per-thread hot sets last (LRU-youngest).
  for (ThreadId t = 0; t < cfg.num_threads; ++t) {
    const Addr base = threads_[t].ctx->addr_space_base();
    for (const AddrGenSpec& s : benchmarks_[t].agens) {
      if (s.pattern == AddrPattern::kRandom && s.hot_bytes > 0)
        mem_.prewarm_region(base + s.base, s.hot_bytes);
      else if (s.pattern == AddrPattern::kRandom && s.region_bytes <= (1 << 20))
        mem_.prewarm_region(base + s.base, s.region_bytes);
    }
  }
  for (ThreadId t = 0; t < cfg.num_threads; ++t) {
    const Addr base = threads_[t].ctx->addr_space_base();
    for (const AddrGenSpec& s : benchmarks_[t].agens)
      if (s.pattern == AddrPattern::kStack)
        mem_.prewarm_region(base + s.base, s.region_bytes);
  }
}

// ---------------------------------------------------------------------------
// Event plumbing
// ---------------------------------------------------------------------------

void SmtCore::schedule(Cycle when, EvKind kind, const DynInst& di) {
  wheel_.schedule(when, kind, InstRef{di.tid, di.tseq, di.replay_gen});
}

DynInst* SmtCore::find_inst(const InstRef& ref) {
  DynInst* d = threads_[ref.tid].rob.find(ref.tseq);
  if (d == nullptr || d->replay_gen != ref.replay_gen) return nullptr;
  return d;
}

bool SmtCore::process_events() {
  const u64 before = wheel_.processed_total();
  wheel_.process_due(cycle_, [&](const SimEvent& ev) {
    if (ev.kind == EvKind::kWake) return;  // wake marker: exists only so the
                                           // fast-forward sees this cycle
    DynInst* di = find_inst(ev.ref);
    if (di == nullptr) {
      cnt_events_dropped_->inc();
      return;
    }
    switch (ev.kind) {
      case EvKind::kFuComplete: handle_fu_complete(*di); break;
      case EvKind::kLoadFill: handle_load_fill(*di); break;
      case EvKind::kL2MissDetect: handle_l2_miss_detect(*di); break;
      case EvKind::kLoadReplay: handle_load_replay(*di); break;
      case EvKind::kWake: break;  // handled above
    }
  });
  return wheel_.processed_total() != before;
}

void SmtCore::handle_fu_complete(DynInst& di) { finish_execution(di); }

void SmtCore::handle_load_fill(DynInst& di) {
  if (!di.wrong_path && di.is_l2_miss) {
    // Figures 1 / 3 / 7: dependents captured by the ROB at miss-service time.
    ReorderBuffer& rob = threads_[di.tid].rob;
    const u32 dod_true = rob.count_true_dependents(di);
    const u32 dod_proxy = rob.count_unexecuted_younger(di.tseq, 0xffffffffu);
    dod_true_.record(dod_true);
    dod_proxy_.record(dod_proxy);
    cnt_loads_l2_miss_fills_->inc();
    if (trace_ != nullptr) {
      // The miss shadow: detection to line arrival, the window the paper's
      // second-level grants live in.
      trace_->complete_event(di.tid, "l2_miss_shadow", di.l2_miss_detect_cycle, cycle_,
                             {{"tseq", di.tseq}, {"pc", di.pc}});
      trace_->instant_event(di.tid, "dod_snapshot", cycle_,
                            {{"dod_true", dod_true}, {"dod_proxy", dod_proxy}});
    }
  }
  if (!di.wrong_path) rob_ctrl_->on_load_fill(di, cycle_);
  drop_outstanding_counts(di);
  finish_execution(di);
}

void SmtCore::handle_l2_miss_detect(DynInst& di) {
  // A merged secondary miss can be serviced before the nominal detection
  // time (it piggybacks on a fill that is about to arrive); a "detection"
  // of an already-completed load must not gate fetch, flush, or count.
  if (di.executed) {
    cnt_loads_l2_detect_after_fill_->inc();
    return;
  }
  if (!di.l2_counted) {
    ++threads_[di.tid].outstanding_l2;
    di.l2_counted = true;
  }
  (di.wrong_path ? cnt_loads_l2_miss_detect_wp_ : cnt_loads_l2_miss_detect_)->inc();
  if (di.wrong_path) return;
  rob_ctrl_->on_l2_miss_detected(di, cycle_);
  if (trace_ != nullptr)
    trace_->instant_event(di.tid, "second_level_request", cycle_,
                          {{"tseq", di.tseq}, {"pc", di.pc}});
  if (fetch_policy_->flush_on_l2_miss()) {
    undispatch_after(di.tid, di.tseq);
    cnt_flush_triggered_->inc();
  }
}

void SmtCore::handle_load_replay(DynInst& di) {
  // The load was predicted to hit L1 but missed: kill the speculative
  // wakeup and replay every dependent that issued on it.
  if (di.dest_phys != kInvalidPhysReg && rename_.is_spec(di.dest_phys)) {
    rename_.clear_spec(di.dest_phys);
    replay_dependents_of(di.dest_phys);
  }
}

void SmtCore::replay_dependents_of(PhysReg reg) {
  // Iterative worklist form of the chained-speculation walk. The visited set
  // is identical to the recursive version's: a victim's spec_used flags are
  // cleared when it is processed (so it can never match again), and a
  // register enters the worklist only once, right after its spec bit is
  // cleared.
  replay_regs_.clear();
  replay_regs_.push_back(reg);
  while (!replay_regs_.empty()) {
    const PhysReg r = replay_regs_.back();
    replay_regs_.pop_back();
    iq_.collect_into(replay_victims_, [&](DynInst& e) {
      return e.issued && !e.executed &&
             ((e.spec_used[0] && e.src_phys[0] == r) ||
              (e.spec_used[1] && e.src_phys[1] == r));
    });
    for (DynInst* e : replay_victims_) {
      e->issued = false;
      iq_.mark_unissued(e);
      ++e->replay_gen;  // poison in-flight completion events
      e->spec_used[0] = e->spec_used[1] = false;
      drop_outstanding_counts(*e);
      if (e->is_load()) {
        e->is_l2_miss = false;
        e->l1_hit = false;
        e->addr_resolved = false;
      }
      cnt_issue_replays_->inc();
      if (e->dest_phys != kInvalidPhysReg && rename_.is_spec(e->dest_phys)) {
        rename_.clear_spec(e->dest_phys);
        replay_regs_.push_back(e->dest_phys);  // chained speculation
      }
    }
  }
}

void SmtCore::drop_outstanding_counts(DynInst& di) {
  ThreadState& ts = threads_[di.tid];
  if (di.l1_counted) {
    if (ts.outstanding_l1 > 0) --ts.outstanding_l1;
    di.l1_counted = false;
  }
  if (di.l2_counted) {
    if (ts.outstanding_l2 > 0) --ts.outstanding_l2;
    di.l2_counted = false;
  }
}

void SmtCore::finish_execution(DynInst& di) {
  if (di.executed) return;  // idempotent: commit-poll and events may race
  di.executed = true;
  di.complete_cycle = cycle_;
  if (di.dest_phys != kInvalidPhysReg) {
    rename_.set_ready(di.dest_phys);
    iq_.wake_waiters(di.dest_phys);
  }
  if (di.in_iq) iq_.remove(&di);  // speculatively issued entries release here
  rename_.consumers_read(di);
  tracer_.event(cycle_, "complete", di);
  cnt_exec_completed_->inc();
  if (di.is_ctrl() && !di.branch_resolved) {
    di.branch_resolved = true;
    ThreadState& ts = threads_[di.tid];
    if (ts.unresolved_ctrl > 0) --ts.unresolved_ctrl;
    resolve_control(di);
  }
}

void SmtCore::resolve_control(DynInst& di) {
  if (di.wrong_path) return;
  {
    ProfScope ps(this, obs::Phase::kPredict);
    bpred_.train(di.tid, *di.si, di.pred, di.taken, di.actual_target);
  }
  if (!di.mispredicted) return;

  cnt_mispredicts_resolved_->inc();
  {
    ProfScope ps(this, obs::Phase::kPredict);
    bpred_.recover(di.tid, *di.si, di.pred, di.taken);
  }
  squash_after(di.tid, di.tseq);
  ThreadState& ts = threads_[di.tid];
  ts.wrong_path = false;
  ts.wp_dead = false;
  ts.fetch_stall_until = std::max(ts.fetch_stall_until, cycle_ + 1);
}

void SmtCore::squash_after(ThreadId tid, u64 tseq) {
  ThreadState& ts = threads_[tid];
  const u64 squashed_before = cnt_squash_insts_->value();
  while (!ts.frontend.empty() && ts.frontend.back().tseq > tseq) ts.frontend.pop_back();
  ts.lsq.squash_after(tseq);  // before the ROB destroys the entries it points at
  ts.rob.squash_after(tseq, [&](DynInst& d) {
    if (d.in_iq) iq_.remove(&d);
    drop_outstanding_counts(d);
    if (!d.executed) rename_.consumers_cancel(d);
    if (d.is_ctrl() && !d.branch_resolved && ts.unresolved_ctrl > 0) --ts.unresolved_ctrl;
    ++d.replay_gen;
    rename_.squash_undo(d);
    tracer_.event(cycle_, "squash  ", d);
    cnt_squash_insts_->inc();
  });
  rob_ctrl_->on_squash(tid, tseq);
  const u64 squashed = cnt_squash_insts_->value() - squashed_before;
  if (trace_ != nullptr)
    trace_->instant_event(tid, "squash", cycle_, {{"insts", squashed}, {"after_tseq", tseq}});
  tracer_.note_if(cycle_, [&] {
    return concat({"t", std::to_string(tid), " squash after #", std::to_string(tseq), " (",
                   std::to_string(squashed), " insts)"});
  });
}

void SmtCore::undispatch_after(ThreadId tid, u64 tseq) {
  // FLUSH-policy semantics: free the shared resources held by this thread's
  // post-miss instructions, but keep the instructions themselves — they go
  // back to the front of the dispatch queue instead of being re-fetched
  // (equivalent shared-resource behaviour; see DESIGN.md).
  ThreadState& ts = threads_[tid];
  ts.lsq.squash_after(tseq);  // before the ROB pops the entries it points at
  ts.rob.squash_after(tseq, [&](DynInst& d) {
    if (d.in_iq) iq_.remove(&d);
    drop_outstanding_counts(d);
    if (!d.executed) rename_.consumers_cancel(d);
    if (d.is_ctrl() && !d.branch_resolved && ts.unresolved_ctrl > 0) --ts.unresolved_ctrl;
    rename_.squash_undo(d);
    ++d.replay_gen;
    d.dispatched = false;
    d.issued = false;
    d.executed = false;
    d.branch_resolved = false;
    d.addr_resolved = false;
    d.lsq_allocated = false;
    d.l1_hit = false;
    d.is_l2_miss = false;
    d.l2_miss_detect_cycle = kNeverCycle;
    d.fill_cycle = kNeverCycle;
    d.seg_private_end = 0;
    d.seg_llc_end = 0;
    d.seg_dram_end = 0;
    d.complete_cycle = kNeverCycle;
    d.spec_used[0] = d.spec_used[1] = false;
    d.src_phys[0] = d.src_phys[1] = kInvalidPhysReg;
    d.dest_phys = kInvalidPhysReg;
    d.prev_dest_phys = kInvalidPhysReg;
    d.iq_slot = -1;
    // The ROB pops youngest-first; pushing each straight onto the frontend's
    // front leaves them oldest-first ahead of the (younger) fetched entries —
    // the same order the old two-pass copy produced, without the scratch
    // vector. The frontend ring is sized for the whole window, so this
    // cannot overflow.
    ts.frontend.push_front(std::move(d));
    cnt_flush_undispatched_->inc();
  });
  rob_ctrl_->on_squash(tid, tseq);
}

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

bool SmtCore::do_commit() {
  u32 budget = cfg_.commit_width;
  u32 pops = 0;
  const u32 n = cfg_.num_threads;
  for (u32 i = 0; i < n && budget > 0; ++i) {
    const ThreadId t = static_cast<ThreadId>((commit_rr_ + i) % n);
    ThreadState& ts = threads_[t];
    while (budget > 0) {
      DynInst* h = ts.rob.head();
      if (h == nullptr) break;
      // Store-data completion: an issued store whose data arrived after its
      // address generation becomes committable here.
      if (h->is_store() && h->issued && !h->executed &&
          (h->src_phys[0] == kInvalidPhysReg || rename_.is_ready(h->src_phys[0], cycle_)))
        finish_execution(*h);
      if (!h->executed) break;
      if (h->wrong_path) {
        // Should be unreachable: the mispredicted branch squashes before
        // committing. Counted rather than asserted so long runs surface it.
        cnt_commit_wp_bug_->inc();
      }
      if (h->is_store() && !h->wrong_path) {
        ProfScope ps(this, obs::Phase::kMemory);
        mem_.access_data(h->mem_addr, true, cycle_);
      }
      if (h->is_mem() && h->lsq_allocated) ts.lsq.pop(h);
      drop_outstanding_counts(*h);  // defensive: no committed op may keep gating fetch
      rename_.commit_free(*h);
      auditor_.on_commit(t, h->tseq, cycle_);
      tracer_.event(cycle_, "commit  ", *h);
      if (!h->wrong_path) {
        ++ts.committed;
        cnt_commit_insts_->inc();
      }
      ts.rob.pop_head();
      --budget;
      ++pops;
    }
  }
  ++commit_rr_;
  return pops > 0;
}

// ---------------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------------

bool SmtCore::do_issue() {
  // Stores issue for address generation as soon as the address dependence
  // (src[1]) is ready; the data (src[0]) is only needed at commit (split
  // store-address / store-data, as in real LSQs) — the queue's mirrored
  // wakeup sources encode that shape, so the scan only tests readiness.
  // Entries blocked on a plain not-ready register park in the queue until
  // that register's wake (finish_execution / speculative load wakeup).
  iq_.collect_issue_candidates(ready_scratch_, [&](PhysReg r) {
    if (rename_.is_ready(r, cycle_)) return IssueQueue::SrcState::kReady;
    return rename_.is_spec(r) ? IssueQueue::SrcState::kWaitTime
                              : IssueQueue::SrcState::kWaitEvent;
  });
  std::sort(ready_scratch_.begin(), ready_scratch_.end(),
            [](const DynInst* a, const DynInst* b) { return a->seq < b->seq; });

  u32 issued = 0;
  bool fu_blocked = false;
  for (DynInst* d : ready_scratch_) {
    if (issued >= cfg_.issue_width) break;
    if (issue_one(*d)) {
      ++issued;
    } else if (!fus_.can_issue(d->op, cycle_)) {
      // Blocked on a busy functional unit: a time-gated condition the
      // fast-forward cannot see through, so the cycle counts as active. A
      // load parked on unresolved older stores, by contrast, is purely
      // state-gated and quiescent.
      fu_blocked = true;
    }
  }
  return issued > 0 || fu_blocked;
}

bool SmtCore::issue_one(DynInst& di) {
  if (!fus_.can_issue(di.op, cycle_)) return false;
  if (di.is_load() && !threads_[di.tid].lsq.older_stores_resolved(di)) return false;

  bool any_spec = false;
  for (u32 s = 0; s < 2; ++s) {
    if (di.src_phys[s] != kInvalidPhysReg && rename_.is_spec(di.src_phys[s])) {
      di.spec_used[s] = true;
      any_spec = true;
    }
  }

  di.issued = true;
  iq_.mark_issued(&di);
  di.issue_cycle = cycle_;
  tracer_.event(cycle_, "issue   ", di, any_spec ? "spec" : "");
  cnt_issue_insts_->inc();

  if (di.is_load()) {
    fus_.issue(di.op, cycle_);
    issue_load(di);
  } else if (di.is_store()) {
    fus_.issue(di.op, cycle_);
    // Replayed stores keep their resolved address; only the first issue
    // retires the LSQ's unresolved-store count.
    if (!di.addr_resolved) {
      di.addr_resolved = true;
      threads_[di.tid].lsq.note_store_resolved();
    }
    // The store is architecturally complete once both the address is
    // generated and the data has been produced; with the data still in
    // flight the commit stage polls readiness at the ROB head.
    if (di.src_phys[0] == kInvalidPhysReg || rename_.is_ready(di.src_phys[0], cycle_))
      schedule(cycle_ + fus_.timing(di.op).latency, EvKind::kFuComplete, di);
  } else {
    const Cycle done = fus_.issue(di.op, cycle_);
    schedule(done, EvKind::kFuComplete, di);
  }

  // Speculatively issued instructions keep their slot until completion so
  // they can be re-armed by a replay; everything else frees it now.
  if (!any_spec) iq_.remove(&di);
  return true;
}

void SmtCore::issue_load(DynInst& di) {
  ThreadState& ts = threads_[di.tid];
  di.addr_resolved = true;

  if (!di.wrong_path) {
    if (const DynInst* st = ts.lsq.forwarding_store(di); st != nullptr) {
      // Forward from the youngest older overlapping store. Data arrives when
      // both the hit latency has elapsed and the store data exists.
      const Cycle data_at =
          st->executed ? cycle_ + 2 : std::max<Cycle>(cycle_ + 2, cycle_ + 4);
      di.l1_hit = true;
      {
        ProfScope ps(this, obs::Phase::kPredict);
        lhp_.update(di.tid, di.pc, true);
      }
      schedule(data_at, EvKind::kLoadFill, di);
      cnt_lsq_forwards_->inc();
      return;
    }
  }

  DataAccess da;
  {
    ProfScope ps(this, obs::Phase::kMemory);
    da = mem_.access_data(di.mem_addr, false, cycle_);
  }
  bool predicted_hit;
  {
    ProfScope ps(this, obs::Phase::kPredict);
    predicted_hit = lhp_.predict(di.tid, di.pc);
    lhp_.update(di.tid, di.pc, da.l1_hit);
  }
  di.l1_hit = da.l1_hit;
  const Cycle data_cycle = da.data_ready + 1;  // +1: load-to-use forwarding

  if (da.l1_hit) {
    schedule(data_cycle, EvKind::kLoadFill, di);
    return;
  }

  // Stall-taxonomy segment edges of the miss's latency chain (pure
  // annotation; classify_stall reads them off the ROB head while the load
  // is outstanding).
  di.seg_private_end = da.seg_private;
  di.seg_llc_end = da.seg_llc;
  di.seg_dram_end = da.seg_dram;

  (di.wrong_path ? cnt_loads_l1_miss_wp_ : cnt_loads_l1_miss_)->inc();
  if (!di.l1_counted) {
    ++ts.outstanding_l1;
    di.l1_counted = true;
  }
  if (predicted_hit && di.dest_phys != kInvalidPhysReg) {
    // Speculative wakeup at hit latency; the mis-speculation is discovered
    // one cycle later and replays any dependent that got away.
    rename_.set_spec_ready(di.dest_phys, cycle_ + 2);
    iq_.wake_waiters(di.dest_phys);
    // The wake marker keeps the maturation cycle visible to the
    // fast-forward: a dependent may issue the moment spec_at arrives.
    schedule(cycle_ + 2, EvKind::kWake, di);
    schedule(cycle_ + 3, EvKind::kLoadReplay, di);
    cnt_loads_spec_wakeups_->inc();
  }
  if (da.l2_miss) {
    di.is_l2_miss = true;
    di.l2_miss_detect_cycle = da.l2_miss_detect;
    di.fill_cycle = data_cycle;
    schedule(da.l2_miss_detect, EvKind::kL2MissDetect, di);
    (di.wrong_path ? cnt_loads_l2_miss_wp_ : cnt_loads_l2_miss_)->inc();
  }
  schedule(data_cycle, EvKind::kLoadFill, di);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void SmtCore::refresh_views() {
  for (ThreadId t = 0; t < cfg_.num_threads; ++t) {
    views_[t].frontend_count = threads_[t].frontend.size();
    views_[t].iq_count = iq_.occupancy(t);
    views_[t].outstanding_l1 = threads_[t].outstanding_l1;
    views_[t].outstanding_l2 = threads_[t].outstanding_l2;
    views_[t].active = true;
  }
}

bool SmtCore::try_dispatch_one(ThreadState& ts, ThreadId tid) {
  if (ts.frontend.empty()) return false;
  DynInst& f = ts.frontend.front();
  if (f.fetch_cycle + cfg_.decode_depth > cycle_) return false;
  if (ts.rob.full()) {
    cnt_stall_rob_->inc();
    return false;
  }
  if (!iq_.has_free()) {
    cnt_stall_iq_->inc();
    return false;
  }
  if (f.is_mem() && !ts.lsq.has_free()) {
    cnt_stall_lsq_->inc();
    return false;
  }
  if (!rename_.can_rename(tid, *f.si)) {
    cnt_stall_regs_->inc();
    return false;
  }
  if (ts.rob.extra() > 0 && ts.rob.size() >= ts.rob.base_capacity() && f.si->has_dest() &&
      cfg_.shared_regfile) {
    // A second-level holder dispatching beyond its first level must leave
    // rename headroom for the other threads.
    const bool fp = is_fp_reg(f.si->dest);
    const u32 free = fp ? rename_.free_fp(tid) : rename_.free_int(tid);
    if (free <= cfg_.second_level_reg_reserve) {
      cnt_stall_reg_reserve_->inc();
      return false;
    }
  }
  if (cfg_.fetch_policy == FetchPolicyKind::kDcra) {
    // Register files are per thread (M-Sim model), so DCRA's cross-thread
    // partitioning applies to the shared issue queue; the per-thread rename
    // pools are passed as the loose self-limits they are.
    if (!dcra_.within_caps(tid, iq_.occupancy(tid), iq_.capacity(), rename_.int_in_use(tid),
                           rename_.int_rename_pool(), rename_.fp_in_use(tid),
                           rename_.fp_rename_pool())) {
      cnt_stall_dcra_->inc();
      return false;
    }
  }

  DynInst di = std::move(f);
  ts.frontend.pop_front();
  rename_.rename(di);
  di.dispatched = true;
  di.dispatch_cycle = cycle_;
  DynInst& slot = ts.rob.push(std::move(di));
  iq_.insert(&slot);
  if (slot.is_mem()) ts.lsq.push(&slot);
  if (slot.is_ctrl()) ++ts.unresolved_ctrl;
  tracer_.event(cycle_, "dispatch", slot);
  cnt_dispatch_insts_->inc();
  return true;
}

bool SmtCore::do_dispatch() {
  refresh_views();
  dcra_.classify(views_);
  dcra_.set_privileged(second_.owner() == SecondLevelRob::kNoOwner
                           ? DcraController::kNoPrivileged
                           : second_.owner());
  fetch_policy_->order(views_, cycle_, order_);
  u32 budget = cfg_.dispatch_width;
  u32 dispatched = 0;
  for (ThreadId t : order_) {
    ThreadState& ts = threads_[t];
    while (budget > 0 && try_dispatch_one(ts, t)) {
      --budget;
      ++dispatched;
    }
  }
  return dispatched > 0;
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

DynInst SmtCore::make_correct_path_inst(ThreadState& ts, ThreadId tid) {
  const ArchOp op = ts.ctx->next();
  const Program& prog = ts.ctx->program();

  DynInst di;
  di.si = op.si;
  di.op = op.si->op;
  di.pc = op.pc;
  di.tid = tid;
  di.mem_addr = op.mem_addr;
  di.taken = op.taken;
  di.actual_target = op.target_pc;

  if (di.is_ctrl()) {
    const BasicBlock& bb = prog.block(op.block);
    const Addr fallthrough_pc = ts.ctx->block_pc(bb.fallthrough);
    const Addr static_target =
        di.op == OpClass::kReturn ? 0 : ts.ctx->block_pc(op.si->taken_block);
    {
      ProfScope ps(this, obs::Phase::kPredict);
      di.pred = bpred_.predict(tid, *op.si, static_target, fallthrough_pc, fallthrough_pc);
    }

    di.mispredicted =
        (di.pred.taken != di.taken) || (di.pred.target != di.actual_target);
    if (di.mispredicted) {
      ts.wrong_path = true;
      ts.wp_index = 0;
      ts.wp_dead = false;
      if (di.op == OpClass::kBranch) {
        ts.wp_block = di.pred.taken ? op.si->taken_block : bb.fallthrough;
      } else {  // mispredicted return: steer by the (wrong) RAS target
        if (const u32* block = ts.block_of_pc.find(di.pred.target))
          ts.wp_block = *block;
        else
          ts.wp_dead = true;
      }
      cnt_mispredicts_fetched_->inc();
    }
  }
  return di;
}

DynInst SmtCore::make_wrong_path_inst(ThreadState& ts, ThreadId tid) {
  const Program& prog = ts.ctx->program();
  const BasicBlock& bb = prog.block(ts.wp_block);
  const StaticInst& si = bb.insts[ts.wp_index];

  DynInst di;
  di.si = &si;
  di.op = si.op;
  di.pc = si.pc;
  di.tid = tid;
  di.wrong_path = true;

  if (is_memory(si.op)) {
    // Plausible-locality pseudo address: same region the static instruction
    // touches on the correct path, random offset; generator state untouched.
    const AddrGenSpec& spec = ts.ctx->benchmark().agens[static_cast<u32>(si.agen_id)];
    const u64 region = std::max<u64>(8, spec.region_bytes);
    di.mem_addr = ts.ctx->addr_space_base() + spec.base + (wp_rng_.next() % region & ~7ULL);
  }

  // Advance the cursor. Control flow follows the *prediction* (there is no
  // architectural truth down here), so wrong-path branches never "mispredict".
  u32 next_block = ts.wp_block;
  u32 next_index = ts.wp_index + 1;
  if (is_control(si.op)) {
    const Addr fallthrough_pc = ts.ctx->block_pc(bb.fallthrough);
    const Addr static_target =
        si.op == OpClass::kReturn ? 0 : ts.ctx->block_pc(si.taken_block);
    {
      ProfScope ps(this, obs::Phase::kPredict);
      di.pred = bpred_.predict(tid, si, static_target, fallthrough_pc, fallthrough_pc);
    }
    di.taken = di.pred.taken;
    di.actual_target = di.pred.target;
    if (si.op == OpClass::kReturn) {
      const u32* block = ts.block_of_pc.find(di.pred.target);
      if (block == nullptr) {
        ts.wp_dead = true;  // fell off the CFG; stall until the squash
        return di;
      }
      next_block = *block;
    } else {
      next_block = di.pred.taken ? si.taken_block : bb.fallthrough;
    }
    next_index = 0;
  } else if (next_index == bb.insts.size()) {
    next_block = bb.fallthrough;
    next_index = 0;
  }
  ts.wp_block = next_block;
  ts.wp_index = next_index;
  return di;
}

bool SmtCore::fetch_one(ThreadState& ts, ThreadId tid) {
  DynInst di =
      ts.wrong_path ? make_wrong_path_inst(ts, tid) : make_correct_path_inst(ts, tid);

  Cycle iready;
  {
    ProfScope ps(this, obs::Phase::kMemory);
    iready = mem_.access_inst(icache_addr(ts, di.pc), cycle_);
  }
  di.fetch_cycle = std::max(cycle_, iready);
  if (iready > cycle_) {
    ts.fetch_stall_until = iready;
    cnt_fetch_icache_stalls_->inc();
  }

  di.seq = next_seq_++;
  di.tseq = ts.next_tseq++;
  tracer_.event(cycle_, "fetch   ", di);
  ts.frontend.push_back(std::move(di));
  (ts.frontend.back().wrong_path ? cnt_fetch_wrong_path_ : cnt_fetch_insts_)->inc();
  return true;
}

bool SmtCore::do_fetch() {
  refresh_views();
  fetch_policy_->order(views_, cycle_, order_);

  u32 budget = cfg_.fetch_width;
  u32 threads_fetched = 0;
  u32 fetched = 0;
  for (ThreadId t : order_) {
    if (budget == 0 || threads_fetched >= cfg_.fetch_threads) break;
    ThreadState& ts = threads_[t];
    if (ts.fetch_stall_until > cycle_) continue;
    if (ts.wrong_path && ts.wp_dead) continue;
    if (ts.frontend.size() >= cfg_.frontend_buffer) continue;
    if (!fetch_policy_->may_fetch(t, views_)) {
      cnt_fetch_policy_gated_->inc();
      continue;
    }

    bool fetched_any = false;
    while (budget > 0 && ts.frontend.size() < cfg_.frontend_buffer) {
      if (!fetch_one(ts, t)) break;
      fetched_any = true;
      --budget;
      ++fetched;
      const DynInst& last = ts.frontend.back();
      if (last.is_ctrl() && last.pred.taken) break;  // redirect: resume next cycle
      if (ts.wrong_path && ts.wp_dead) break;
      if (ts.fetch_stall_until > cycle_) break;  // I-cache miss mid-run
    }
    if (fetched_any) ++threads_fetched;
  }
  return fetched > 0;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

bool SmtCore::do_early_release() {
  // Sharkey & Ponomarev [24]: while a thread waits on an L2 miss and has no
  // unresolved control flow in its window (so nothing can be squashed), any
  // previous mapping whose value exists and has been read by every renamed
  // consumer is dead — the redefining instruction will commit — and can be
  // released before that commit.
  u32 released = 0;
  for (ThreadId t = 0; t < cfg_.num_threads; ++t) {
    ThreadState& ts = threads_[t];
    if (ts.outstanding_l2 == 0 || ts.unresolved_ctrl > 0) continue;
    ts.rob.for_each([&](DynInst& d) {
      if (!d.dispatched || d.prev_dest_phys == kInvalidPhysReg || d.prev_freed_early)
        return;
      if (rename_.pending_readers(d.prev_dest_phys) != 0) return;
      if (!rename_.is_value_ready(d.prev_dest_phys)) return;
      rename_.early_free_prev(d);
      cnt_early_released_->inc();
      ++released;
    });
  }
  return released > 0;
}

template <bool Profiled>
bool SmtCore::tick_impl() {
  // The profiled instantiation brackets each stage with steady_clock reads;
  // the plain one compiles `lap` to nothing, so both share this body and the
  // stage sequence cannot drift between them.
  // tlrob-lint: allow(D2) profiler reads host time; it feeds SelfProfiler only
  std::chrono::steady_clock::time_point t0;
  if constexpr (Profiled) t0 = std::chrono::steady_clock::now();  // tlrob-lint: allow(D2) profiler
  auto lap = [&](obs::Phase ph) {
    if constexpr (Profiled) {
      const auto t1 = std::chrono::steady_clock::now();  // tlrob-lint: allow(D2) profiler
      u64 dt = static_cast<u64>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
      // Time already attributed to the cross-cutting kMemory/kPredict
      // phases inside this stage is subtracted so the table sums cleanly
      // (clamped: clock granularity can make the parts exceed the whole).
      dt -= std::min(dt, prof_steal_ns_);
      prof_steal_ns_ = 0;
      profiler_.add(ph, dt);
      t0 = t1;
    } else {
      (void)ph;
    }
  };

  // Commit baseline for the stall taxonomy's kCommit detection (on only with
  // the sampler; one predictable branch otherwise).
  if (sample_every_ != 0)
    for (ThreadId t = 0; t < cfg_.num_threads; ++t)
      commit_base_scratch_[t] = threads_[t].committed;

  bool active = false;
  if (process_events()) active = true;
  lap(obs::Phase::kEvents);
  if (do_commit()) active = true;
  lap(obs::Phase::kCommit);
  if (do_issue()) active = true;
  lap(obs::Phase::kIssue);
  if (do_dispatch()) active = true;
  lap(obs::Phase::kDispatch);
  if (do_fetch()) active = true;
  lap(obs::Phase::kFetch);
  if (cfg_.early_register_release) {
    if (do_early_release()) active = true;
    lap(obs::Phase::kEarlyRelease);
  }
  if (rob_ctrl_->tick(cycle_)) active = true;
  lap(obs::Phase::kController);
  // Audit after the policy tick: maybe_release has run, so a granted window
  // whose justifying load completed this cycle has been revoked and any
  // surviving grant must be trigger-backed (see second_level_check.cpp).
  if (auditor_.enabled()) {
    refresh_audit_ctx();
    auditor_.run_cycle(audit_ctx_);
    lap(obs::Phase::kAudit);
  }
  // Observability, after every stage has settled. Ownership transitions only
  // happen in state-changing ticks, so polling per executed tick sees every
  // tenure edge; the sampler compare is the whole per-tick cost when off.
  if (trace_ != nullptr || tracer_.attached()) poll_second_level();
  // Stall taxonomy: attribute the cycle just simulated before the sampler
  // runs, so a sample labelled L carries the attribution through cycle L-1.
  if (sample_every_ != 0) attribute_tick();
  if (sample_every_ != 0 && cycle_ + 1 == next_sample_) {
    record_sample(next_sample_);
    next_sample_ += sample_every_;
    lap(obs::Phase::kSample);
  }
  ++cycle_;
  return active;
}

obs::StallClass SmtCore::classify_stall(ThreadId t, Cycle c, bool committed_now) const {
  using obs::StallClass;
  if (committed_now) return StallClass::kCommit;
  const ThreadState& ts = threads_[t];
  if (ts.rob.empty()) return StallClass::kFrontend;
  const DynInst& h = *ts.rob.head();
  // Head done but not yet retired: commit-bandwidth / retirement-order bound.
  if (h.executed) return StallClass::kCommit;
  if (h.is_load() && h.issued) {
    // In-flight load at the head: segment the wait by the latency chain's
    // recorded edges. Loads that never left the private hierarchy (LSQ
    // forwards, L1 hits, legacy-channel fills) carry all-equal edges and
    // attribute entirely to the private bucket.
    if (c < h.seg_private_end) return StallClass::kMemPrivate;
    if (c < h.seg_llc_end) return StallClass::kMemLlc;
    if (c < h.seg_dram_end) return StallClass::kMemDram;
    // Tail past the last edge (bus transfer + load-to-use delivery): bus time
    // when the chain had a DRAM segment, else it stays with the deepest level
    // the chain reached.
    if (h.seg_dram_end > h.seg_llc_end) return StallClass::kMemBus;
    if (h.seg_llc_end > h.seg_private_end) return StallClass::kMemLlc;
    return StallClass::kMemPrivate;
  }
  // A registered long-latency candidate without the second-level grant: the
  // thread is holding out for (or has been denied) the big window.
  if (rob_ctrl_->has_pending_candidate(t) && !second_.owned_by(t))
    return StallClass::kRob2Wait;
  return StallClass::kOther;
}

void SmtCore::attribute_tick() {
  for (ThreadId t = 0; t < cfg_.num_threads; ++t) {
    const bool committed_now = threads_[t].committed != commit_base_scratch_[t];
    ++stall_cycles_[t][static_cast<size_t>(classify_stall(t, cycle_, committed_now))];
  }
}

void SmtCore::attribute_idle_span(Cycle from, Cycle to) {
  if (from >= to) return;
  for (ThreadId t = 0; t < cfg_.num_threads; ++t) {
    // Inside an idle span every classification input is frozen except the
    // cycle index, which only enters through the head load's segment edges —
    // integrate piecewise over the edges that fall inside [from, to).
    const ThreadState& ts = threads_[t];
    Cycle c = from;
    while (c < to) {
      Cycle end = to;
      if (!ts.rob.empty()) {
        const DynInst& h = *ts.rob.head();
        if (h.is_load() && h.issued && !h.executed)
          for (const Cycle edge : {h.seg_private_end, h.seg_llc_end, h.seg_dram_end})
            if (edge > c && edge < end) end = edge;
      }
      stall_cycles_[t][static_cast<size_t>(classify_stall(t, c, false))] += end - c;
      c = end;
    }
  }
}

template bool SmtCore::tick_impl<false>();
template bool SmtCore::tick_impl<true>();

bool SmtCore::tick_dispatch() {
  return profiler_.enabled() ? tick_impl<true>() : tick_impl<false>();
}

void SmtCore::tick() { tick_dispatch(); }

bool SmtCore::cmp_tick() {
  ff_base_[0] = cnt_stall_rob_->value();
  ff_base_[1] = cnt_stall_iq_->value();
  ff_base_[2] = cnt_stall_lsq_->value();
  ff_base_[3] = cnt_stall_regs_->value();
  ff_base_[4] = cnt_stall_reg_reserve_->value();
  ff_base_[5] = cnt_stall_dcra_->value();
  ff_base_[6] = cnt_fetch_policy_gated_->value();
  return tick_dispatch();
}

Cycle SmtCore::cmp_idle_wake(Cycle limit) const {
  // The tick just executed (at cycle_ - 1) was provably a no-op: no event
  // fired, nothing committed / issued / dispatched / fetched / released, and
  // the ROB controller made no state change. Every condition that could end
  // the quiet spell is time-gated and enumerable:
  //   - the next scheduled event (fills, completions, wake markers),
  //   - a frontend head reaching decode maturity,
  //   - a fetch stall (I-cache miss / post-squash redirect) expiring,
  //   - the controller's next due re-check or phase boundary.
  // (Nothing memory-side: the latency-chain model resolves every LLC/DRAM
  // access at issue time, so the shared backend never wakes a core on its
  // own — the completion is already in this core's wheel.)
  // Until the earliest of those, every tick repeats this one exactly — same
  // stalls, same counters, no state change.
  const Cycle now = cycle_ - 1;
  Cycle wake = limit;
  wake = std::min(wake, wheel_.next_event_or(kNeverCycle));
  wake = std::min(wake, rob_ctrl_->next_wake(now));
  for (const ThreadState& ts : threads_) {
    if (!ts.frontend.empty()) {
      const Cycle mature = ts.frontend.front().fetch_cycle + cfg_.decode_depth;
      if (mature > now) wake = std::min(wake, mature);
    }
    if (ts.fetch_stall_until > now) wake = std::min(wake, ts.fetch_stall_until);
  }
  return wake;
}

void SmtCore::cmp_replay_idle_to(Cycle wake) {
  // Replay the sample points inside the skipped span. Every sampled quantity
  // (occupancies, outstanding misses, DCRA caps, committed counts, ownership)
  // is machine state, and a skippable cycle is by definition one in which no
  // machine state changes — so each skipped sample point would have captured
  // exactly the state visible right now. Label semantics match the tick path:
  // sample L is the state after cycle L-1 completed.
  if (sample_every_ != 0) {
    // Interleave the taxonomy with the sample replay: a sample labelled L
    // must carry the attribution of every cycle < L, exactly as the tick
    // path orders attribute_tick() before record_sample().
    Cycle attributed = cycle_;
    while (next_sample_ <= wake) {
      attribute_idle_span(attributed, next_sample_);
      attributed = next_sample_;
      record_sample(next_sample_);
      next_sample_ += sample_every_;
    }
    attribute_idle_span(attributed, wake);
  }

  const u64 skipped = wake - cycle_;
  cnt_stall_rob_->inc((cnt_stall_rob_->value() - ff_base_[0]) * skipped);
  cnt_stall_iq_->inc((cnt_stall_iq_->value() - ff_base_[1]) * skipped);
  cnt_stall_lsq_->inc((cnt_stall_lsq_->value() - ff_base_[2]) * skipped);
  cnt_stall_regs_->inc((cnt_stall_regs_->value() - ff_base_[3]) * skipped);
  cnt_stall_reg_reserve_->inc((cnt_stall_reg_reserve_->value() - ff_base_[4]) * skipped);
  cnt_stall_dcra_->inc((cnt_stall_dcra_->value() - ff_base_[5]) * skipped);
  cnt_fetch_policy_gated_->inc((cnt_fetch_policy_gated_->value() - ff_base_[6]) * skipped);
  commit_rr_ += skipped;  // do_commit advances the rotation every cycle
  fast_forwarded_ += skipped;
  cycle_ = wake;
}

void SmtCore::step(Cycle limit) {
  // The fast-forward needs every cycle to be invisible to observers: the
  // auditor samples fixed cycle intervals and the tracer logs a window, so
  // either being attached pins the core to cycle-by-cycle execution. (The
  // Chrome trace and the interval sampler do NOT pin it: trace events only
  // happen in state-changing ticks, and skipped sample points are replayed
  // by cmp_replay_idle_to from the quiescent state every skipped cycle saw.)
  if (cmp_pinned()) {
    tick_dispatch();
    return;
  }

  if (cmp_tick()) return;

  const Cycle wake = cmp_idle_wake(limit);
  if (wake <= cycle_) return;
  cmp_replay_idle_to(wake);
}

void SmtCore::attach_chrome_trace(obs::ChromeTraceWriter* writer) {
  trace_ = writer;
  if (trace_ == nullptr) return;
  for (ThreadId t = 0; t < cfg_.num_threads; ++t)
    trace_->set_thread_name(t, concat({"t", std::to_string(t), " ", benchmarks_[t].name}));
}

void SmtCore::flush_chrome_trace() {
  if (trace_ == nullptr || sl_owner_ == SecondLevelRob::kNoOwner) return;
  // Close the still-open tenure at the current cycle; tracking state is left
  // alone so a subsequent run() continues observing the live grant.
  trace_->complete_event(sl_owner_, "second_level_grant", sl_acquired_, cycle_,
                         {{"trigger_tseq", sl_trigger_}, {"alloc", sl_allocs_}});
}

void SmtCore::poll_second_level() {
  const ThreadId owner = second_.owner();
  const u64 allocs = second_.total_allocations();
  if (owner == sl_owner_ && allocs == sl_allocs_) return;
  // A changed allocation count with an unchanged owner is a release and
  // re-grant inside one tick (the controller's maybe_release + acquire) —
  // still one tenure ending and another beginning.
  if (sl_owner_ != SecondLevelRob::kNoOwner) {
    if (trace_ != nullptr)
      trace_->complete_event(sl_owner_, "second_level_grant", sl_acquired_, cycle_,
                             {{"trigger_tseq", sl_trigger_}, {"alloc", sl_allocs_}});
    tracer_.note_if(cycle_, [&] {
      return concat({"t", std::to_string(sl_owner_), " releases second-level partition (held since ",
                     std::to_string(sl_acquired_), ")"});
    });
  }
  sl_owner_ = owner;
  sl_allocs_ = allocs;
  if (owner != SecondLevelRob::kNoOwner) {
    sl_acquired_ = second_.acquired_at();
    sl_trigger_ = rob_ctrl_->audit_trigger_tseq(owner);
    tracer_.note_if(cycle_, [&] {
      return concat({"t", std::to_string(owner), " granted second-level partition (trigger #",
                     std::to_string(sl_trigger_), ")"});
    });
  }
}

void SmtCore::record_sample(Cycle label) {
  obs::IntervalSample s;
  s.cycle = label;
  s.second_level_owner = second_.owner();
  s.iq_occ_total = iq_.occupancy();
  // Shared-backend MSHR occupancy: quiescent state (the pool only mutates
  // inside request calls), so replayed samples see the same value the
  // executed cycle would have. Sample `label` records the machine state
  // after cycle label-1 finished, so the ordered read carries the serial key
  // (label-1, core): under the parallel engine it publishes this core's
  // clock and waits until no earlier-keyed backend call is still pending.
  s.llc_mshr_occ = shared_ != nullptr ? shared_->inflight_count_at(label - 1, core_id_) : 0;
  s.threads.reserve(cfg_.num_threads);
  for (ThreadId t = 0; t < cfg_.num_threads; ++t) {
    const ThreadState& ts = threads_[t];
    obs::ThreadSample th;
    th.rob_occ = ts.rob.size();
    th.rob_cap = ts.rob.capacity();
    th.iq_occ = iq_.occupancy(t);
    th.lsq_occ = ts.lsq.occupancy();
    // The paper's proxy applied to the whole resident window: not-yet-executed
    // instructions younger than (and including) the ROB head.
    th.dod_proxy =
        ts.rob.empty() ? 0 : ts.rob.count_unexecuted_younger(ts.rob.head()->tseq - 1,
                                                             0xffffffffu);
    th.outstanding_l2 = ts.outstanding_l2;
    th.dcra_iq_cap = dcra_.cap(t, cfg_.iq_entries);
    th.committed = ts.committed - ts.committed_base;
    th.stall = stall_cycles_[t];
    if (trace_ != nullptr) {
      trace_->counter_event(t, "rob_occ", label, th.rob_occ);
      trace_->counter_event(t, "outstanding_l2", label, th.outstanding_l2);
    }
    s.threads.push_back(th);
  }
  series_.add(std::move(s));
}

void SmtCore::refresh_audit_ctx() {
  audit_ctx_.cycle = cycle_;
  for (ThreadId t = 0; t < cfg_.num_threads; ++t) {
    audit_ctx_.outstanding_l1[t] = threads_[t].outstanding_l1;
    audit_ctx_.outstanding_l2[t] = threads_[t].outstanding_l2;
  }
}

u32 SmtCore::audit_now() {
  refresh_audit_ctx();
  return auditor_.run_all(audit_ctx_);
}

void SmtCore::reset_measurement() {
  cycle_base_ = cycle_;
  for (auto& ts : threads_) ts.committed_base = ts.committed;
  second_.reset_accounting(cycle_);
  stats_.reset();
  dod_true_.reset();
  dod_proxy_.reset();
  bpred_.stats().reset();
  rob_ctrl_->stats().reset();
  if (auto* p = rob_ctrl_->predictor()) p->stats().reset();
  mem_.l1i().stats().reset();
  mem_.l1d().stats().reset();
  mem_.l2().stats().reset();
  mem_.channel().stats().reset();
  // CMP: the shared backend is reset once per machine-wide measurement
  // boundary; every core resets at the same lockstep cycle, so the repeats
  // are idempotent.
  if (shared_ != nullptr) shared_->reset_stats();
  // Drop warmup-era samples; next_sample_ keeps its absolute alignment so the
  // measured series stays on the same cycle grid regardless of warmup length.
  series_.reset();
  for (auto& a : stall_cycles_) a.fill(0);
  profiler_.reset();
}

RunResult SmtCore::run(u64 commit_target, u64 max_cycles, u64 warmup_insts) {
  if (max_cycles == 0) max_cycles = (warmup_insts + commit_target) * 400 + 200000;

  if (warmup_insts > 0) {
    while (cycle_ < max_cycles && fastest_measured() < warmup_insts) step(max_cycles);
    reset_measurement();
  }
  while (cycle_ < max_cycles && fastest_measured() < commit_target) step(max_cycles);
  flush_chrome_trace();
  return snapshot_result();
}

RunResult SmtCore::snapshot_result() const {
  RunResult r;
  const Cycle measured_cycles = cycle_ - cycle_base_;
  r.cycles = measured_cycles;
  for (ThreadId t = 0; t < cfg_.num_threads; ++t) {
    ThreadResult tr;
    tr.benchmark = benchmarks_[t].name;
    tr.committed = threads_[t].committed - threads_[t].committed_base;
    tr.ipc = measured_cycles == 0
                 ? 0.0
                 : static_cast<double>(tr.committed) / static_cast<double>(measured_cycles);
    r.threads.push_back(tr);
  }
  r.dod_true = dod_true_;
  r.dod_proxy = dod_proxy_;
  r.samples = series_;
  if (sample_every_ != 0) r.stall_cycles = stall_cycles_;

  auto merge = [&r](const std::string& prefix, const StatGroup& g) {
    for (const auto& [name, c] : g.counters_map()) r.counters[prefix + name] = c.value();
  };
  merge("core.", stats_);
  merge("bpred.", const_cast<BranchPredictor&>(bpred_).stats());
  merge("rob.", const_cast<TwoLevelRobController&>(*rob_ctrl_).stats());
  auto& mem = const_cast<MemorySystem&>(mem_);
  merge("l1i.", mem.l1i().stats());
  merge("l1d.", mem.l1d().stats());
  merge("l2.", mem.l2().stats());
  merge("channel.", mem.channel().stats());
  if (auto* p = const_cast<TwoLevelRobController&>(*rob_ctrl_).predictor())
    merge("dodpred.", p->stats());
  merge("audit.", const_cast<InvariantChecker&>(auditor_).stats());
  r.counters["rob2.allocations"] = second_.total_allocations();
  r.counters["rob2.busy_cycles"] = second_.busy_cycles(cycle_);
  r.counters["core.fast_forwarded_cycles"] = fast_forwarded_;
  // Instruction sources merge last: the default hook is a no-op, so purely
  // synthetic runs produce exactly the counter set they always did. Sources
  // report under the machine-global thread index so CMP cores never collide.
  for (ThreadId t = 0; t < cfg_.num_threads; ++t)
    threads_[t].ctx->append_source_counters(cfg_.addr_space_id_base + t, r.counters);
  return r;
}

}  // namespace tlrob
