#include "sim/cmp.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "memory/shared_memory.hpp"
#include "obs/chrome_trace.hpp"

namespace tlrob {

CmpMachine::CmpMachine(const MachineConfig& cfg, const std::vector<Benchmark>& benchmarks)
    : cfg_(cfg) {
  if (cfg.num_cores == 0) throw std::invalid_argument("CmpMachine: at least one core required");
  if (benchmarks.size() != static_cast<size_t>(cfg.num_cores) * cfg.num_threads)
    throw std::invalid_argument(
        "CmpMachine: one benchmark per hardware thread (num_cores * num_threads) required");

  // A 1-core machine with the LLC off has nothing to share; leaving shared_
  // null keeps that configuration on the exact legacy path (no llc.*/dram.*
  // counters, bit-identical results) while still exercising this engine.
  if (cfg.llc.enabled || cfg.num_cores > 1) {
    LlcConfig llc = cfg.llc;
    llc.enabled = true;
    shared_ = std::make_unique<SharedMemory>(llc, cfg.dram);
  }

  cores_.reserve(cfg.num_cores);
  for (u32 c = 0; c < cfg.num_cores; ++c) {
    MachineConfig core_cfg = cfg;
    core_cfg.num_cores = 1;
    core_cfg.force_cmp_engine = false;
    core_cfg.addr_space_id_base = c * cfg.num_threads;
    const std::vector<Benchmark> slice(benchmarks.begin() + c * cfg.num_threads,
                                       benchmarks.begin() + (c + 1) * cfg.num_threads);
    cores_.push_back(std::make_unique<SmtCore>(core_cfg, slice, shared_.get(), c));
  }
}

void CmpMachine::tick() {
  for (auto& c : cores_) c->tick();
}

void CmpMachine::attach_chrome_trace(const std::vector<obs::ChromeTraceWriter*>& per_core,
                                     obs::ChromeTraceWriter* backend) {
  if (per_core.size() != cores_.size())
    throw std::invalid_argument("CmpMachine::attach_chrome_trace: one writer per core required");
  for (size_t c = 0; c < cores_.size(); ++c) {
    // pid before attach: the core's thread_name metadata events stamp the
    // writer's pid at emission time.
    per_core[c]->set_pid(static_cast<u32>(c));
    per_core[c]->set_process_name("core" + std::to_string(c));
    cores_[c]->attach_chrome_trace(per_core[c]);
  }
  if (backend != nullptr && shared_ != nullptr) {
    backend->set_pid(static_cast<u32>(cores_.size()));
    backend->set_process_name("shared backend");
    shared_->attach_chrome_trace(backend);
  }
}

obs::SelfProfiler CmpMachine::aggregate_profile() const {
  obs::SelfProfiler total;
  total.enable(cfg_.telemetry.profile);
  for (const auto& c : cores_) total.merge(c->profiler());
  return total;
}

u64 CmpMachine::executed_cycles() const {
  u64 total = 0;
  for (const auto& c : cores_) total += c->executed_cycles();
  return total;
}

void CmpMachine::step_all(Cycle limit) {
  // Any pinned core (auditor / text tracer) pins the whole machine: lockstep
  // only holds if nobody fast-forwards past a cycle a peer executed.
  bool pinned = false;
  for (auto& c : cores_) pinned = pinned || c->cmp_pinned();
  if (pinned) {
    for (auto& c : cores_) c->tick();
    return;
  }

  // Tick every core (fixed order — the deterministic interleaving of shared
  // LLC/DRAM requests); no short-circuit, all cores must advance this cycle.
  bool any = false;
  for (auto& c : cores_)
    if (c->cmp_tick()) any = true;
  if (any) return;

  // Globally idle cycle: jump to the earliest cycle anything can happen at
  // on ANY core. The shared backend never wakes a core on its own (latency
  // chain), so the per-core wake bounds are machine-wide sound.
  Cycle wake = limit;
  for (auto& c : cores_) wake = std::min(wake, c->cmp_idle_wake(limit));
  if (wake <= now()) return;
  for (auto& c : cores_) c->cmp_replay_idle_to(wake);
}

void CmpMachine::reset_measurement() {
  // Every core resets at the same lockstep boundary; each also resets the
  // shared backend's stats (idempotent repeats).
  for (auto& c : cores_) c->reset_measurement();
}

RunResult CmpMachine::run(u64 commit_target, u64 max_cycles, u64 warmup_insts) {
  if (cores_.size() == 1) {
    // Single core: the core's own run loop IS the machine (byte-identical to
    // the legacy engine when there is no backend); only the shared counter
    // families are appended on top.
    RunResult r = cores_.front()->run(commit_target, max_cycles, warmup_insts);
    append_shared_counters(r);
    return r;
  }

  if (max_cycles == 0) max_cycles = (warmup_insts + commit_target) * 400 + 200000;

  auto fastest_measured = [&] {
    u64 best = 0;
    for (const auto& c : cores_) best = std::max(best, c->fastest_measured());
    return best;
  };

  if (warmup_insts > 0) {
    while (now() < max_cycles && fastest_measured() < warmup_insts) step_all(max_cycles);
    reset_measurement();
  }
  while (now() < max_cycles && fastest_measured() < commit_target) step_all(max_cycles);
  for (auto& c : cores_) c->flush_chrome_trace();
  return snapshot_result();
}

void CmpMachine::append_shared_counters(RunResult& r) const {
  if (shared_ == nullptr) return;
  auto& sm = const_cast<SharedMemory&>(*shared_);
  auto merge = [&r](const std::string& prefix, const StatGroup& g) {
    for (const auto& [name, c] : g.counters_map()) r.counters[prefix + name] = c.value();
  };
  merge("llc.", sm.llc().stats());
  merge("llc.", sm.stats());  // cross-core merges, MSHR stalls, writebacks
  merge("dram.", sm.dram().stats());
}

RunResult CmpMachine::snapshot_result() const {
  RunResult r = cores_.front()->snapshot_result();
  for (size_t c = 1; c < cores_.size(); ++c) {
    const RunResult rc = cores_[c]->snapshot_result();
    // Threads concatenate core-major; cycles are lockstep-equal across cores.
    r.threads.insert(r.threads.end(), rc.threads.begin(), rc.threads.end());
    // Stall taxonomy concatenates in the same machine-global thread order
    // (empty vectors when telemetry is off keep this a no-op).
    r.stall_cycles.insert(r.stall_cycles.end(), rc.stall_cycles.begin(), rc.stall_cycles.end());
    r.dod_true.merge(rc.dod_true);
    r.dod_proxy.merge(rc.dod_proxy);
    // Per-core counters sum under their historical names ("l2.misses" is the
    // machine-wide L2 miss count, etc.).
    for (const auto& [name, v] : rc.counters) r.counters[name] += v;
  }
  if (cores_.size() > 1 && cores_.front()->samples().enabled()) {
    std::vector<const obs::IntervalSeries*> series;
    series.reserve(cores_.size());
    for (const auto& c : cores_) series.push_back(&c->samples());
    r.samples = obs::merge_core_series(series);
  }
  append_shared_counters(r);
  return r;
}

}  // namespace tlrob
