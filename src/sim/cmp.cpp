#include "sim/cmp.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>

#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "memory/shared_memory.hpp"
#include "obs/chrome_trace.hpp"

namespace tlrob {
namespace {

/// Default epoch quantum (cycles a core may run ahead between barriers).
/// Scheduling granularity only — bit-identity holds for any value >= 1; this
/// one amortises the barrier over enough work to matter while keeping the
/// termination-horizon re-clamp frequent.
constexpr Cycle kDefaultParallelQuantum = 8192;

/// Per-core coverage log of the parallel epoch executor: which cycles the
/// core executed busy, and which it proved idle (with the unclamped
/// cmp_idle_wake bound the serial engine would have computed at any cycle of
/// the span — idle state is quiescent, so the bound is span-constant).
/// Workers append during an epoch; only the barrier thread reads (the pool's
/// wait_idle() orders the two).
struct CoverageSeg {
  Cycle begin;
  Cycle end;    // exclusive
  Cycle bound;  // idle entries: the core's cmp_idle_wake(max_cycles) bound
  bool idle;
};

/// Replays the serial engine's machine-wide fast-forward decision over the
/// merged per-core coverage logs: the serial engine skips ahead only from a
/// cycle EVERY core proved idle, jumping to the minimum of their wake
/// bounds. The parallel engine skips per-core spans the serial engine would
/// have executed (and vice versa) — all statistics are fast-forward-pattern
/// independent by the replay contract except `core.fast_forwarded_cycles`,
/// which this reconstruction restores exactly.
class FfReconstructor {
 public:
  FfReconstructor(u32 cores, Cycle start) : logs_(cores), pos_(cores, 0), cursor_(start) {}

  std::vector<CoverageSeg>& log(u32 core) { return logs_[core]; }
  u64 serial_ff() const { return serial_ff_; }

  /// Consumes every cycle all cores have covered so far (call at barriers).
  void drain() {
    for (;;) {
      bool all_idle = true;
      Cycle wmin = kNeverCycle;
      for (u32 i = 0; i < static_cast<u32>(logs_.size()); ++i) {
        const std::vector<CoverageSeg>& v = logs_[i];
        size_t& p = pos_[i];
        while (p < v.size() && v[p].end <= cursor_) ++p;
        if (p >= v.size() || v[p].begin > cursor_) {
          prune();
          return;  // cursor not covered by core i yet — resume next barrier
        }
        if (v[p].idle)
          wmin = std::min(wmin, v[p].bound);
        else
          all_idle = false;
      }
      if (!all_idle || wmin <= cursor_ + 1) {
        ++cursor_;  // serial executes this cycle (busy, or no skip possible)
        continue;
      }
      serial_ff_ += wmin - (cursor_ + 1);  // serial replays (cursor, wmin)
      cursor_ = wmin;
    }
  }

 private:
  void prune() {
    for (u32 i = 0; i < static_cast<u32>(logs_.size()); ++i) {
      logs_[i].erase(logs_[i].begin(),
                     logs_[i].begin() + static_cast<std::ptrdiff_t>(pos_[i]));
      pos_[i] = 0;
    }
  }

  std::vector<std::vector<CoverageSeg>> logs_;  // [core], consumed from pos_
  std::vector<size_t> pos_;
  Cycle cursor_;        // next serial cycle not yet accounted
  u64 serial_ff_ = 0;   // machine-wide fast-forwarded cycles, serial semantics
};

/// One core's share of one epoch: advance to `e_end`, publishing the clock
/// before every tick so shared-backend calls carry the key (cycle, core).
/// Non-pinned cores log busy/idle coverage for the reconstruction; pinned
/// machines (auditor / text tracer attached) run cycle-by-cycle and never
/// fast-forward, exactly like the serial engine.
void run_core_epoch(SmtCore& core, u32 i, CoreGate& gate, Cycle e_end, Cycle max_cycles,
                    bool pinned, FfReconstructor* ff) {
  if (pinned) {
    while (core.now() < e_end) {
      gate.advance(i, core.now());
      core.tick();
    }
    return;
  }
  std::vector<CoverageSeg>& log = ff->log(i);
  while (core.now() < e_end) {
    const Cycle c = core.now();
    gate.advance(i, c);
    if (core.cmp_tick()) {
      if (!log.empty() && !log.back().idle && log.back().end == c)
        ++log.back().end;  // extend the busy run
      else
        log.push_back({c, c + 1, 0, false});
    } else {
      // The unclamped wake bound is what the serial engine would compute at
      // any cycle of this idle span; the replay itself clamps to the epoch.
      const Cycle wake = core.cmp_idle_wake(max_cycles);
      const Cycle to = std::min(wake, e_end);
      if (to > core.now()) core.cmp_replay_idle_to(to);
      log.push_back({c, core.now(), wake, true});
    }
  }
}

}  // namespace

CmpMachine::CmpMachine(const MachineConfig& cfg, const std::vector<Benchmark>& benchmarks)
    : cfg_(cfg) {
  if (cfg.num_cores == 0) throw std::invalid_argument("CmpMachine: at least one core required");
  if (benchmarks.size() != static_cast<size_t>(cfg.num_cores) * cfg.num_threads)
    throw std::invalid_argument(
        "CmpMachine: one benchmark per hardware thread (num_cores * num_threads) required");

  // A 1-core machine with the LLC off has nothing to share; leaving shared_
  // null keeps that configuration on the exact legacy path (no llc.*/dram.*
  // counters, bit-identical results) while still exercising this engine.
  if (cfg.llc.enabled || cfg.num_cores > 1) {
    LlcConfig llc = cfg.llc;
    llc.enabled = true;
    shared_ = std::make_unique<SharedMemory>(llc, cfg.dram);
  }

  cores_.reserve(cfg.num_cores);
  for (u32 c = 0; c < cfg.num_cores; ++c) {
    MachineConfig core_cfg = cfg;
    core_cfg.num_cores = 1;
    core_cfg.force_cmp_engine = false;
    core_cfg.addr_space_id_base = c * cfg.num_threads;
    const std::vector<Benchmark> slice(benchmarks.begin() + c * cfg.num_threads,
                                       benchmarks.begin() + (c + 1) * cfg.num_threads);
    cores_.push_back(std::make_unique<SmtCore>(core_cfg, slice, shared_.get(), c));
  }
}

void CmpMachine::tick() {
  for (auto& c : cores_) c->tick();
}

void CmpMachine::attach_chrome_trace(const std::vector<obs::ChromeTraceWriter*>& per_core,
                                     obs::ChromeTraceWriter* backend) {
  if (per_core.size() != cores_.size())
    throw std::invalid_argument("CmpMachine::attach_chrome_trace: one writer per core required");
  for (size_t c = 0; c < cores_.size(); ++c) {
    // pid before attach: the core's thread_name metadata events stamp the
    // writer's pid at emission time.
    per_core[c]->set_pid(static_cast<u32>(c));
    per_core[c]->set_process_name("core" + std::to_string(c));
    cores_[c]->attach_chrome_trace(per_core[c]);
  }
  if (backend != nullptr && shared_ != nullptr) {
    backend->set_pid(static_cast<u32>(cores_.size()));
    backend->set_process_name("shared backend");
    shared_->attach_chrome_trace(backend);
  }
}

obs::SelfProfiler CmpMachine::aggregate_profile() const {
  obs::SelfProfiler total;
  total.enable(cfg_.telemetry.profile);
  for (const auto& c : cores_) total.merge(c->profiler());
  return total;
}

u64 CmpMachine::executed_cycles() const {
  u64 total = 0;
  for (const auto& c : cores_) total += c->executed_cycles();
  return total;
}

void CmpMachine::step_all(Cycle limit) {
  // Any pinned core (auditor / text tracer) pins the whole machine: lockstep
  // only holds if nobody fast-forwards past a cycle a peer executed.
  bool pinned = false;
  for (auto& c : cores_) pinned = pinned || c->cmp_pinned();
  if (pinned) {
    for (auto& c : cores_) c->tick();
    return;
  }

  // Tick every core (fixed order — the deterministic interleaving of shared
  // LLC/DRAM requests); no short-circuit, all cores must advance this cycle.
  bool any = false;
  for (auto& c : cores_)
    if (c->cmp_tick()) any = true;
  if (any) return;

  // Globally idle cycle: jump to the earliest cycle anything can happen at
  // on ANY core. The shared backend never wakes a core on its own (latency
  // chain), so the per-core wake bounds are machine-wide sound.
  Cycle wake = limit;
  for (auto& c : cores_) wake = std::min(wake, c->cmp_idle_wake(limit));
  if (wake <= now()) return;
  for (auto& c : cores_) c->cmp_replay_idle_to(wake);
}

void CmpMachine::reset_measurement() {
  // Every core resets at the same lockstep boundary; each also resets the
  // shared backend's stats (idempotent repeats).
  for (auto& c : cores_) c->reset_measurement();
}

RunResult CmpMachine::run(u64 commit_target, u64 max_cycles, u64 warmup_insts) {
  if (cores_.size() == 1) {
    // Single core: the core's own run loop IS the machine (byte-identical to
    // the legacy engine when there is no backend); only the shared counter
    // families are appended on top.
    RunResult r = cores_.front()->run(commit_target, max_cycles, warmup_insts);
    append_shared_counters(r);
    return r;
  }

  if (max_cycles == 0) max_cycles = (warmup_insts + commit_target) * 400 + 200000;

  if (cfg_.parallel_cores != 0) return run_parallel(commit_target, max_cycles, warmup_insts);

  auto fastest_measured = [&] {
    u64 best = 0;
    for (const auto& c : cores_) best = std::max(best, c->fastest_measured());
    return best;
  };

  if (warmup_insts > 0) {
    while (now() < max_cycles && fastest_measured() < warmup_insts) step_all(max_cycles);
    reset_measurement();
  }
  while (now() < max_cycles && fastest_measured() < commit_target) step_all(max_cycles);
  for (auto& c : cores_) c->flush_chrome_trace();
  return snapshot_result();
}

RunResult CmpMachine::run_parallel(u64 commit_target, u64 max_cycles, u64 warmup_insts) {
  const u32 n = static_cast<u32>(cores_.size());

  // The auditor / text tracer pin the serial machine to cycle-by-cycle
  // execution; the parallel engine honours the same pin (no fast-forward, no
  // coverage logs — fast_forwarded_ stays 0 on both engines).
  bool pinned = false;
  for (auto& c : cores_) pinned = pinned || c->cmp_pinned();

  const Cycle quantum =
      cfg_.parallel_quantum != 0 ? Cycle{cfg_.parallel_quantum} : kDefaultParallelQuantum;
  const u64 commit_w = std::max<u64>(1, cfg_.commit_width);

  CoreGate gate(n);
  shared_->set_gate(&gate);  // multi-core machines always have a backend
  FfReconstructor ff(n, now());
  // One pinned worker per core: epoch tasks block inside CoreGate::sync()
  // on each other, which is deadlock-free only while every task holds a
  // worker simultaneously (see common/thread_pool.hpp).
  WorkStealingPool pool(n);

  auto fastest_measured = [&] {
    u64 best = 0;
    for (const auto& c : cores_) best = std::max(best, c->fastest_measured());
    return best;
  };

  // One barrier-synchronized phase of the run loop. The epoch end E' clamps
  // to the termination horizon frontier + ceil(remaining/commit_width): no
  // core can reach the commit target strictly before E' (commits are bounded
  // by commit_width per cycle), so the stop condition — checked only at
  // barriers — first becomes true at exactly the cycle the serial loop, which
  // checks it every step, stops at.
  auto run_phase = [&](u64 target) {
    while (now() < max_cycles && fastest_measured() < target) {
      const Cycle frontier = now();
      const u64 remaining = target - fastest_measured();
      const u64 span = std::max<u64>(
          1, std::min<u64>(quantum, (remaining + commit_w - 1) / commit_w));
      const Cycle e_end = std::min<Cycle>(max_cycles, frontier + span);

      std::vector<std::exception_ptr> errors(n);
      for (u32 i = 0; i < n; ++i) {
        pool.submit([this, &gate, &errors, &ff, i, e_end, max_cycles, pinned] {
          try {
            run_core_epoch(*cores_[i], i, gate, e_end, max_cycles, pinned,
                           pinned ? nullptr : &ff);
          } catch (...) {
            errors[i] = std::current_exception();
          }
          // Publishing the epoch boundary is what lets every other core's
          // last-cycle operations clear their sync() — required even on the
          // exception path, or the surviving cores deadlock mid-barrier.
          gate.advance(i, e_end);
        });
      }
      pool.wait_idle();
      for (std::exception_ptr& e : errors)
        if (e) std::rethrow_exception(e);  // lowest core's failure wins
      if (!pinned) ff.drain();
    }
  };

  try {
    if (warmup_insts > 0) {
      run_phase(warmup_insts);
      reset_measurement();  // all cores parked at the same barrier cycle
    }
    run_phase(commit_target);
  } catch (...) {
    // Detach before propagating (an audit abort, typically): later
    // single-threaded accesses must not wait on clocks that stopped moving.
    shared_->set_gate(nullptr);
    throw;
  }
  shared_->set_gate(nullptr);

  if (!pinned) {
    ff.drain();
    // The serial engine fast-forwards machine-wide, so every core carries
    // the identical count; install the reconstructed value (the one quantity
    // the per-core skip pattern perturbs).
    for (auto& c : cores_) c->cmp_set_fast_forwarded(ff.serial_ff());
  }
  for (auto& c : cores_) c->flush_chrome_trace();
  return snapshot_result();
}

void CmpMachine::append_shared_counters(RunResult& r) const {
  if (shared_ == nullptr) return;
  auto& sm = const_cast<SharedMemory&>(*shared_);
  auto merge = [&r](const std::string& prefix, const StatGroup& g) {
    for (const auto& [name, c] : g.counters_map()) r.counters[prefix + name] = c.value();
  };
  merge("llc.", sm.llc().stats());
  merge("llc.", sm.stats());  // cross-core merges, MSHR stalls, writebacks
  merge("dram.", sm.dram().stats());
}

RunResult CmpMachine::snapshot_result() const {
  RunResult r = cores_.front()->snapshot_result();
  for (size_t c = 1; c < cores_.size(); ++c) {
    const RunResult rc = cores_[c]->snapshot_result();
    // Threads concatenate core-major; cycles are lockstep-equal across cores.
    r.threads.insert(r.threads.end(), rc.threads.begin(), rc.threads.end());
    // Stall taxonomy concatenates in the same machine-global thread order
    // (empty vectors when telemetry is off keep this a no-op).
    r.stall_cycles.insert(r.stall_cycles.end(), rc.stall_cycles.begin(), rc.stall_cycles.end());
    r.dod_true.merge(rc.dod_true);
    r.dod_proxy.merge(rc.dod_proxy);
    // Per-core counters sum under their historical names ("l2.misses" is the
    // machine-wide L2 miss count, etc.).
    for (const auto& [name, v] : rc.counters) r.counters[name] += v;
  }
  if (cores_.size() > 1 && cores_.front()->samples().enabled()) {
    std::vector<const obs::IntervalSeries*> series;
    series.reserve(cores_.size());
    for (const auto& c : cores_) series.push_back(&c->samples());
    r.samples = obs::merge_core_series(series);
  }
  append_shared_counters(r);
  return r;
}

}  // namespace tlrob
