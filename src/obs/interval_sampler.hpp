// Deterministic interval telemetry: every N cycles the core snapshots the
// occupancy dynamics the paper's argument is made of — how full each
// thread's window is, who holds the shared second level, how many L2 misses
// are in flight (memory-level parallelism), and the DoD proxy the
// allocation schemes decide on — into an in-memory time series.
//
// Determinism contract: a sample is a pure function of machine state at its
// cycle, and every quantity captured is invariant across a provably idle
// cycle. The core therefore *replays* sample points that fall inside an
// idle-cycle fast-forward from the quiescent state (the same way it replays
// the per-cycle stall counters), and the series is bit-identical whether or
// not the fast-forward fired. tests/test_obs.cpp pins this.
//
// Export formats:
//   JSONL — one object per sample, fixed key order and number formatting
//           (runner/json.hpp writers), so parallel campaign workers produce
//           byte-identical files.
//   CSV   — long form, one row per (sample, thread), for spreadsheet /
//           pandas consumption.
#pragma once

#include <array>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tlrob::obs {

/// Stall-cycle taxonomy: every cycle of a thread's measurement window is
/// attributed to exactly one class (closed accounting — the per-thread sum
/// equals the run's cycle count, pinned by ctest). Classification is a pure
/// function of quiescent machine state plus the commit delta of the cycle,
/// which is what lets fast-forwarded spans be attributed piecewise from the
/// latency-chain segment edges without executing the skipped cycles.
enum class StallClass : u8 {
  kCommit = 0,      // committed at least one instruction (or head done,
                    //  commit-bandwidth/ROB-order bound)
  kFrontend,        // ROB empty: fetch/decode starvation (incl. I-miss)
  kMemPrivate,      // head blocked on a load inside the private L1/L2
  kMemLlc,          // head load waiting on shared-LLC tag/MSHR queueing or a
                    //  cross-core merged fill
  kMemDram,         // head load inside the DRAM bank/row command chain
  kMemBus,          // head load serialised on a DRAM channel bus transfer
  kRob2Wait,        // long-latency load registered, second level not granted
  kOther,           // everything else (issue/exec latency, squash recovery)
};
inline constexpr size_t kStallClassCount = 8;

/// Short dotted-counter-safe names, indexed by StallClass.
const char* stall_class_name(StallClass c);

/// Per-thread slice of one sample.
struct ThreadSample {
  u32 rob_occ = 0;         // instructions in the thread's ROB window
  u32 rob_cap = 0;         // current capacity (base + granted extra)
  u32 iq_occ = 0;          // this thread's shared-IQ entries
  u32 lsq_occ = 0;         // LSQ entries
  u32 dod_proxy = 0;       // unexecuted insts in the first-level window
  u32 outstanding_l2 = 0;  // in-flight L2 misses (MLP)
  u32 dcra_iq_cap = 0;     // DCRA's current issue-queue cap for this thread
  u64 committed = 0;       // cumulative committed (measurement-relative)
  /// Cumulative stall-taxonomy cycles (measurement-relative), indexed by
  /// StallClass; sums to the sample's cycle offset by construction.
  std::array<u64, kStallClassCount> stall{};

  bool operator==(const ThreadSample&) const = default;
};

/// One interval boundary. `cycle` is the absolute simulator cycle the
/// sample is labelled with (always a multiple of the interval).
struct IntervalSample {
  Cycle cycle = 0;
  ThreadId second_level_owner = 0xffffffffu;  // SecondLevelRob::kNoOwner
  u32 iq_occ_total = 0;
  u32 llc_mshr_occ = 0;  // shared-backend MSHR pool occupancy (0 w/o backend)
  std::vector<ThreadSample> threads;

  bool operator==(const IntervalSample&) const = default;
};

/// The recorded series plus its period. The core owns one and appends; the
/// result plumbing (RunResult, campaign records, the tlrob-trace tool) copy
/// or serialise it.
class IntervalSeries {
 public:
  IntervalSeries() = default;
  explicit IntervalSeries(Cycle interval) : interval_(interval) {}

  Cycle interval() const { return interval_; }
  bool enabled() const { return interval_ != 0; }
  const std::vector<IntervalSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }

  void add(IntervalSample&& s) { samples_.push_back(std::move(s)); }
  /// Measurement-boundary reset: drops recorded samples, keeps the period
  /// (subsequent samples stay aligned to absolute interval boundaries).
  void reset() { samples_.clear(); }

  /// One JSON object per line. Per-thread interval IPC is derived from the
  /// committed deltas between consecutive samples (the first sample's delta
  /// baseline is 0 committed).
  void write_jsonl(std::ostream& os) const;

  /// Long-form CSV with a header row: one row per (sample, thread).
  void write_csv(std::ostream& os) const;

  bool operator==(const IntervalSeries& o) const {
    return interval_ == o.interval_ && samples_ == o.samples_;
  }

 private:
  Cycle interval_ = 0;
  std::vector<IntervalSample> samples_;
};

/// Occupancy-distribution summary of a series, flattened to the dotted
/// counter namespace so it rides inside JobRecord::counters and round-trips
/// through every campaign sink unchanged:
///   obs.samples                 — number of samples recorded
///   obs.tN.rob_occ_p50/p90/p99  — ROB-occupancy percentiles (Histogram)
///   obs.tN.iq_occ_p90           — shared-IQ share percentile
///   obs.tN.mlp_p90              — outstanding-L2 (MLP) percentile
///   obs.tN.dod_p90              — DoD-proxy percentile
/// Empty when the series is empty (so disabled telemetry adds no keys).
std::map<std::string, u64> series_summary_counters(const IntervalSeries& series);

/// Flattens a run's closed stall-cycle taxonomy (RunResult::stall_cycles,
/// machine-global thread order) into the counter namespace:
///   stall.tN.<class>_cycles — one key per thread per StallClass.
/// Empty input (taxonomy off) adds no keys.
std::map<std::string, u64> stall_summary_counters(
    const std::vector<std::array<u64, kStallClassCount>>& per_thread);

/// CMP-wide interference summary, derived from the merged series and the
/// machine-global taxonomy:
///   obs.cmp.cores             — core count
///   obs.cmp.llc_mshr_p90      — MSHR-pool occupancy percentile over samples
///   obs.cmp.stall_llc_cycles  — total cycles attributed to LLC contention
///   obs.cmp.stall_dram_cycles — total DRAM bank/row cycles
///   obs.cmp.stall_bus_cycles  — total channel-bus serialisation cycles
/// Empty when the taxonomy is empty (telemetry off).
std::map<std::string, u64> cmp_summary_counters(
    const IntervalSeries& series,
    const std::vector<std::array<u64, kStallClassCount>>& per_thread, u32 num_cores);

/// Machine-wide series of a CMP run: per-sample, the cores' thread slices
/// concatenate in core order (machine-global thread indexing), the shared-IQ
/// occupancies sum, and the second-level-owner column reports core 0's owner
/// (the partition is per-core; the per-thread rob_cap columns carry each
/// core's grant). Cores tick in lockstep, so every input must have the same
/// interval, sample count, and cycle labels — anything else is a logic
/// error.
IntervalSeries merge_core_series(const std::vector<const IntervalSeries*>& cores);

}  // namespace tlrob::obs
