#include "obs/telemetry_config.hpp"

#include <cstdlib>
#include <string>

namespace tlrob::obs {

TelemetryConfig default_telemetry_config() {
  // Computed once: the environment is the process-wide switch, not a
  // per-config knob (explicit assignment to MachineConfig::telemetry
  // overrides).
  static const TelemetryConfig cached = [] {
    TelemetryConfig cfg;
    if (const char* s = std::getenv("TLROB_SAMPLE"); s != nullptr && *s != '\0')
      cfg.sample_interval = std::strtoull(s, nullptr, 0);
    if (const char* p = std::getenv("TLROB_PROFILE"); p != nullptr && *p != '\0')
      cfg.profile = std::string(p) != "0";
    return cfg;
  }();
  return cached;
}

}  // namespace tlrob::obs
