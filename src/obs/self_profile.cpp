#include "obs/self_profile.hpp"

#include <cstdio>

namespace tlrob::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kEvents: return "events";
    case Phase::kCommit: return "commit";
    case Phase::kIssue: return "issue";
    case Phase::kDispatch: return "dispatch";
    case Phase::kFetch: return "fetch";
    case Phase::kEarlyRelease: return "early_release";
    case Phase::kController: return "controller";
    case Phase::kAudit: return "audit";
    case Phase::kSample: return "sample";
    case Phase::kMemory: return "memory";
    case Phase::kPredict: return "predict";
    case Phase::kCount: break;
  }
  return "unknown";
}

u64 SelfProfiler::total_attributed_nanos() const {
  u64 total = 0;
  for (const u64 n : nanos_) total += n;
  return total;
}

void SelfProfiler::reset() {
  nanos_.fill(0);
  calls_.fill(0);
}

void SelfProfiler::print(std::ostream& os, u64 executed_cycles, double wall_seconds) const {
  const u64 total = total_attributed_nanos();
  char line[160];
  std::snprintf(line, sizeof(line), "%-14s %12s %7s %12s %10s\n", "phase", "total ms",
                "share", "ns/call", "ns/cycle");
  os << line;
  for (size_t i = 0; i < static_cast<size_t>(Phase::kCount); ++i) {
    const double ms = static_cast<double>(nanos_[i]) / 1e6;
    const double share =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(nanos_[i]) / static_cast<double>(total);
    const double per_call =
        calls_[i] == 0 ? 0.0
                       : static_cast<double>(nanos_[i]) / static_cast<double>(calls_[i]);
    const double per_cycle =
        executed_cycles == 0
            ? 0.0
            : static_cast<double>(nanos_[i]) / static_cast<double>(executed_cycles);
    std::snprintf(line, sizeof(line), "%-14s %12.3f %6.1f%% %12.1f %10.1f\n",
                  phase_name(static_cast<Phase>(i)), ms, share, per_call, per_cycle);
    os << line;
  }
  std::snprintf(line, sizeof(line), "%-14s %12.3f\n", "attributed",
                static_cast<double>(total) / 1e6);
  os << line;
  if (wall_seconds > 0.0) {
    const double residual_ms = wall_seconds * 1e3 - static_cast<double>(total) / 1e6;
    std::snprintf(line, sizeof(line), "%-14s %12.3f  (fast-forward scans, run loop)\n",
                  "unattributed", residual_ms);
    os << line;
  }
}

}  // namespace tlrob::obs
