#include "obs/chrome_trace.hpp"

#include <algorithm>

#include "runner/json.hpp"

namespace tlrob::obs {

using runner::json_escape;
using runner::json_u64;

void ChromeTraceWriter::set_process_name(const std::string& name) {
  Event e;
  e.ph = 'M';
  e.proc_meta = true;
  e.pid = pid_;
  e.name = name;
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::set_thread_name(ThreadId tid, const std::string& name) {
  Event e;
  e.ph = 'M';
  e.pid = pid_;
  e.tid = tid;
  e.name = name;
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::complete_event(ThreadId tid, const std::string& name, Cycle start,
                                       Cycle end, std::vector<Arg> args) {
  Event e;
  e.ph = 'X';
  e.pid = pid_;
  e.tid = tid;
  e.name = name;
  e.ts = start;
  e.dur = end >= start ? end - start : 0;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::instant_event(ThreadId tid, const std::string& name, Cycle ts,
                                      std::vector<Arg> args) {
  Event e;
  e.ph = 'i';
  e.pid = pid_;
  e.tid = tid;
  e.name = name;
  e.ts = ts;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::counter_event(ThreadId tid, const std::string& name, Cycle ts,
                                      u64 value) {
  Event e;
  e.ph = 'C';
  e.pid = pid_;
  e.tid = tid;
  e.name = name;
  e.ts = ts;
  e.args.push_back({"value", value});
  events_.push_back(std::move(e));
}

size_t ChromeTraceWriter::count_named(char ph, const std::string& name) const {
  return static_cast<size_t>(std::count_if(events_.begin(), events_.end(), [&](const Event& e) {
    // Metadata events serialise under the fixed names "thread_name" /
    // "process_name" (the stored name is the label), so match what write()
    // emits.
    if (e.ph == 'M')
      return ph == 'M' && name == (e.proc_meta ? "process_name" : "thread_name");
    return e.ph == ph && e.name == name;
  }));
}

void ChromeTraceWriter::write_events(std::ostream& os, const std::vector<Event>& events,
                                     bool& first) {
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    if (e.ph == 'M') {
      // Metadata: args.name carries the label. process_name events omit tid
      // (they label the whole pid group).
      os << "{\"ph\":\"M\",\"pid\":" << json_u64(e.pid);
      if (!e.proc_meta) os << ",\"tid\":" << json_u64(e.tid);
      os << ",\"name\":\"" << (e.proc_meta ? "process_name" : "thread_name")
         << "\",\"args\":{\"name\":" << json_escape(e.name) << "}}";
      continue;
    }
    os << "{\"ph\":\"" << e.ph << "\",\"pid\":" << json_u64(e.pid)
       << ",\"tid\":" << json_u64(e.tid) << ",\"name\":" << json_escape(e.name)
       << ",\"ts\":" << json_u64(e.ts);
    if (e.ph == 'X') os << ",\"dur\":" << json_u64(e.dur);
    if (e.ph == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i != 0) os << ",";
        os << json_escape(e.args[i].key) << ":" << json_u64(e.args[i].value);
      }
      os << "}";
    }
    os << "}";
  }
}

void ChromeTraceWriter::write(std::ostream& os) const {
  write_merged(os, {this});
}

void ChromeTraceWriter::write_merged(std::ostream& os,
                                     const std::vector<const ChromeTraceWriter*>& writers) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const ChromeTraceWriter* w : writers)
    if (w != nullptr) write_events(os, w->events_, first);
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"1 ts = 1 simulated cycle\"}}\n";
}

}  // namespace tlrob::obs
