// Telemetry configuration (src/obs) — the observability counterpart of
// verify/audit_context.hpp's AuditConfig.
//
// Everything in src/obs is compiled in unconditionally and gated at runtime;
// the contract is that a config with everything off adds at most one
// predictable branch to the cycle loop (bench_sim_speed's perf-smoke job and
// the golden-run fixtures both pin this).
//
// Dependency note: this header is included by sim/presets.hpp (MachineConfig
// embeds a TelemetryConfig), so it must only depend on common/types.hpp.
#pragma once

#include "common/types.hpp"

namespace tlrob::obs {

struct TelemetryConfig {
  /// Interval-sampler period in cycles; 0 = sampler off. Every
  /// `sample_interval` cycles the core records per-thread ROB/IQ/LSQ
  /// occupancy, committed counts, the DoD proxy, outstanding L2 misses,
  /// DCRA issue-queue caps and second-level ownership into an in-memory
  /// time series (obs/interval_sampler.hpp).
  ///
  /// Sampling does NOT disable the idle-cycle fast-forward: sample points
  /// inside a fast-forwarded span are replayed from the quiescent state,
  /// exactly like the per-cycle stall counters, and tests pin that the
  /// series is bit-identical either way (see DESIGN.md §9).
  Cycle sample_interval = 0;

  /// Host-side self-profiling: attribute wall time to pipeline phases
  /// (events / commit / issue / dispatch / fetch / controller / audit /
  /// sample) via obs/self_profile.hpp. Changes no simulated state; adds two
  /// clock reads per stage per executed cycle while on.
  bool profile = false;
};

/// The process-default telemetry configuration, mirroring
/// default_audit_config(): $TLROB_SAMPLE sets sample_interval (cycles,
/// 0/unset = off), $TLROB_PROFILE=1 turns self-profiling on. MachineConfig
/// uses this as its initial value, so any existing binary picks the knobs up
/// without new plumbing. Explicit assignment overrides.
TelemetryConfig default_telemetry_config();

}  // namespace tlrob::obs
