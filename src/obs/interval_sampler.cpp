#include "obs/interval_sampler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/histogram.hpp"
#include "runner/json.hpp"

namespace tlrob::obs {

namespace {

constexpr ThreadId kNoOwner = 0xffffffffu;

using runner::json_double;
using runner::json_u64;

constexpr const char* kStallClassNames[kStallClassCount] = {
    "commit", "frontend", "mem_private", "mem_llc",
    "mem_dram", "mem_bus", "rob2_wait", "other",
};

}  // namespace

const char* stall_class_name(StallClass c) {
  return kStallClassNames[static_cast<size_t>(c)];
}

void IntervalSeries::write_jsonl(std::ostream& os) const {
  std::vector<u64> prev_committed;
  for (const IntervalSample& s : samples_) {
    prev_committed.resize(s.threads.size(), 0);
    os << "{\"cycle\":" << json_u64(s.cycle) << ",\"interval\":" << json_u64(interval_)
       << ",\"owner\":";
    if (s.second_level_owner == kNoOwner)
      os << "null";
    else
      os << json_u64(s.second_level_owner);
    os << ",\"iq_occ\":" << json_u64(s.iq_occ_total)
       << ",\"llc_mshr\":" << json_u64(s.llc_mshr_occ) << ",\"threads\":[";
    for (size_t t = 0; t < s.threads.size(); ++t) {
      const ThreadSample& th = s.threads[t];
      const u64 delta = th.committed - std::min(th.committed, prev_committed[t]);
      const double ipc =
          interval_ == 0 ? 0.0 : static_cast<double>(delta) / static_cast<double>(interval_);
      if (t != 0) os << ",";
      os << "{\"rob\":" << json_u64(th.rob_occ) << ",\"rob_cap\":" << json_u64(th.rob_cap)
         << ",\"iq\":" << json_u64(th.iq_occ) << ",\"lsq\":" << json_u64(th.lsq_occ)
         << ",\"dod\":" << json_u64(th.dod_proxy) << ",\"mlp\":" << json_u64(th.outstanding_l2)
         << ",\"dcra_iq_cap\":" << json_u64(th.dcra_iq_cap)
         << ",\"committed\":" << json_u64(th.committed) << ",\"ipc\":" << json_double(ipc)
         << ",\"stall\":[";
      for (size_t c = 0; c < kStallClassCount; ++c) {
        if (c != 0) os << ",";
        os << json_u64(th.stall[c]);
      }
      os << "]}";
      prev_committed[t] = th.committed;
    }
    os << "]}\n";
  }
}

void IntervalSeries::write_csv(std::ostream& os) const {
  os << "cycle,thread,rob_occ,rob_cap,iq_occ,lsq_occ,dod_proxy,outstanding_l2,"
        "dcra_iq_cap,committed,interval_ipc,second_level_owner,llc_mshr";
  for (size_t c = 0; c < kStallClassCount; ++c)
    os << ",stall_" << kStallClassNames[c];
  os << "\n";
  std::vector<u64> prev_committed;
  for (const IntervalSample& s : samples_) {
    prev_committed.resize(s.threads.size(), 0);
    for (size_t t = 0; t < s.threads.size(); ++t) {
      const ThreadSample& th = s.threads[t];
      const u64 delta = th.committed - std::min(th.committed, prev_committed[t]);
      const double ipc =
          interval_ == 0 ? 0.0 : static_cast<double>(delta) / static_cast<double>(interval_);
      os << s.cycle << "," << t << "," << th.rob_occ << "," << th.rob_cap << "," << th.iq_occ
         << "," << th.lsq_occ << "," << th.dod_proxy << "," << th.outstanding_l2 << ","
         << th.dcra_iq_cap << "," << th.committed << "," << json_double(ipc) << ",";
      if (s.second_level_owner == kNoOwner)
        os << "none";
      else
        os << s.second_level_owner;
      os << "," << s.llc_mshr_occ;
      for (size_t c = 0; c < kStallClassCount; ++c) os << "," << th.stall[c];
      os << "\n";
      prev_committed[t] = th.committed;
    }
  }
}

std::map<std::string, u64> series_summary_counters(const IntervalSeries& series) {
  std::map<std::string, u64> counters;
  if (series.empty()) return counters;
  counters["obs.samples"] = series.size();
  counters["obs.sample_interval"] = series.interval();

  const size_t num_threads = series.samples().front().threads.size();
  for (size_t t = 0; t < num_threads; ++t) {
    // Bucket bounds: occupancies are clamped by their capacities, so the
    // largest observed capacity sizes the histogram exactly; MLP and DoD
    // use the same bound (both are bounded by the window).
    u32 max_cap = 1;
    for (const IntervalSample& s : series.samples())
      max_cap = std::max(max_cap, s.threads[t].rob_cap);
    Histogram rob_occ(max_cap), iq_occ(max_cap), mlp(max_cap), dod(max_cap);
    for (const IntervalSample& s : series.samples()) {
      const ThreadSample& th = s.threads[t];
      rob_occ.record(th.rob_occ);
      iq_occ.record(th.iq_occ);
      mlp.record(th.outstanding_l2);
      dod.record(th.dod_proxy);
    }
    const std::string prefix = "obs.t" + std::to_string(t) + ".";
    counters[prefix + "rob_occ_p50"] = rob_occ.percentile(50.0);
    counters[prefix + "rob_occ_p90"] = rob_occ.percentile(90.0);
    counters[prefix + "rob_occ_p99"] = rob_occ.percentile(99.0);
    counters[prefix + "iq_occ_p90"] = iq_occ.percentile(90.0);
    counters[prefix + "mlp_p90"] = mlp.percentile(90.0);
    counters[prefix + "dod_p90"] = dod.percentile(90.0);
  }
  return counters;
}

std::map<std::string, u64> stall_summary_counters(
    const std::vector<std::array<u64, kStallClassCount>>& per_thread) {
  std::map<std::string, u64> counters;
  for (size_t t = 0; t < per_thread.size(); ++t) {
    const std::string prefix = "stall.t" + std::to_string(t) + ".";
    for (size_t c = 0; c < kStallClassCount; ++c)
      counters[prefix + kStallClassNames[c] + "_cycles"] = per_thread[t][c];
  }
  return counters;
}

std::map<std::string, u64> cmp_summary_counters(
    const IntervalSeries& series,
    const std::vector<std::array<u64, kStallClassCount>>& per_thread, u32 num_cores) {
  std::map<std::string, u64> counters;
  if (per_thread.empty()) return counters;
  counters["obs.cmp.cores"] = num_cores;
  u64 llc = 0, dram = 0, bus = 0;
  for (const auto& th : per_thread) {
    llc += th[static_cast<size_t>(StallClass::kMemLlc)];
    dram += th[static_cast<size_t>(StallClass::kMemDram)];
    bus += th[static_cast<size_t>(StallClass::kMemBus)];
  }
  counters["obs.cmp.stall_llc_cycles"] = llc;
  counters["obs.cmp.stall_dram_cycles"] = dram;
  counters["obs.cmp.stall_bus_cycles"] = bus;
  if (!series.empty()) {
    u32 max_occ = 1;
    for (const IntervalSample& s : series.samples())
      max_occ = std::max(max_occ, s.llc_mshr_occ);
    Histogram mshr(max_occ);
    for (const IntervalSample& s : series.samples()) mshr.record(s.llc_mshr_occ);
    counters["obs.cmp.llc_mshr_p90"] = mshr.percentile(90.0);
  }
  return counters;
}

IntervalSeries merge_core_series(const std::vector<const IntervalSeries*>& cores) {
  if (cores.empty()) return IntervalSeries{};
  IntervalSeries out(cores.front()->interval());
  for (const IntervalSeries* c : cores) {
    if (c->interval() != out.interval() || c->size() != cores.front()->size())
      throw std::logic_error("merge_core_series: cores sampled on different grids");
  }
  for (size_t i = 0; i < cores.front()->size(); ++i) {
    IntervalSample merged;
    merged.cycle = cores.front()->samples()[i].cycle;
    merged.second_level_owner = cores.front()->samples()[i].second_level_owner;
    // Every core samples the same shared backend, so core 0's MSHR-pool
    // occupancy is the machine-wide value.
    merged.llc_mshr_occ = cores.front()->samples()[i].llc_mshr_occ;
    for (const IntervalSeries* c : cores) {
      const IntervalSample& s = c->samples()[i];
      if (s.cycle != merged.cycle)
        throw std::logic_error("merge_core_series: cores sampled at different cycles");
      merged.iq_occ_total += s.iq_occ_total;
      merged.threads.insert(merged.threads.end(), s.threads.begin(), s.threads.end());
    }
    out.add(std::move(merged));
  }
  return out;
}

}  // namespace tlrob::obs
