// Structured event trace in the Chrome trace-event JSON format, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// The writer gives each hardware thread its own track (pid P / tid N, named
// via thread_name metadata; a single-core run uses the default pid 0, the
// CMP engine gives every core its own pid/process and the shared LLC/DRAM
// backend a pseudo-process after the last core) and records:
//   - duration spans ("X" complete events): second-level grant lifecycles
//     (acquire -> release, with the trigger load and decision DoD as args)
//     and L2-miss shadows (miss detection -> line fill, per load);
//   - instant events ("i"): second-level allocation requests (candidate
//     registration), squashes, and DoD snapshots at decision points;
//   - counter tracks ("C"): per-thread ROB occupancy / outstanding L2
//     misses at every interval-sampler boundary, when sampling is on.
//
// Timestamps are simulator cycles written into the microsecond `ts` field —
// the standard trick for cycle-accurate traces (1 cycle renders as 1 us).
//
// Interaction with the idle-cycle fast-forward: every span edge and instant
// above happens in a tick that changed machine state, and a fast-forwarded
// cycle is by construction one in which nothing changed, so the event trace
// is identical with fast-forwarding on or off and the writer does not pin
// the core to cycle-by-cycle execution (unlike the text PipelineTracer).
// Counter samples inside a skipped span are replayed by the sampler.
//
// Attachment mirrors PipelineTracer: host code owns the writer, attaches it
// to a core (SmtCore::attach_chrome_trace) before running, and serialises
// with write() afterwards. Detached (the default) costs one null-pointer
// test per hooked event, never per cycle.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tlrob::obs {

class ChromeTraceWriter {
 public:
  /// One key/value argument pair rendered into the event's "args" object.
  struct Arg {
    std::string key;
    u64 value = 0;
  };

  /// Sets the process id stamped on every subsequently recorded event
  /// (default 0). The CMP engine assigns pid = core index to each core's
  /// writer and pid = num_cores to the shared-backend writer so Perfetto
  /// groups tracks by core.
  void set_pid(u32 pid) { pid_ = pid; }
  u32 pid() const { return pid_; }

  /// Names this writer's process (process_name metadata under the current
  /// pid); typically "core0" or "shared llc/dram".
  void set_process_name(const std::string& name);

  /// Names the track for hardware thread `tid` (shown by Perfetto in track
  /// order); typically "t0 <benchmark>".
  void set_thread_name(ThreadId tid, const std::string& name);

  /// Duration span [start, end) on `tid`'s track.
  void complete_event(ThreadId tid, const std::string& name, Cycle start, Cycle end,
                      std::vector<Arg> args = {});

  /// Thread-scoped instant event at `ts`.
  void instant_event(ThreadId tid, const std::string& name, Cycle ts,
                     std::vector<Arg> args = {});

  /// Counter-track value at `ts` ("C" event; Perfetto renders a stepped
  /// area chart per counter name).
  void counter_event(ThreadId tid, const std::string& name, Cycle ts, u64 value);

  size_t event_count() const { return events_.size(); }

  /// Number of recorded events with the given ph/name (test helper).
  size_t count_named(char ph, const std::string& name) const;

  /// Serialises the whole trace as one JSON document ({"traceEvents": [...]}).
  /// Events are written in recording order; trace viewers sort by ts.
  void write(std::ostream& os) const;

  /// Serialises several writers (e.g. one per core plus the shared backend)
  /// into a single JSON document. Each writer's events keep their own pid, so
  /// the merged trace renders as one process group per writer.
  static void write_merged(std::ostream& os,
                           const std::vector<const ChromeTraceWriter*>& writers);

  void clear() { events_.clear(); }

 private:
  struct Event {
    char ph = 'i';  // 'X' | 'i' | 'C' | 'M'
    bool proc_meta = false;  // 'M' only: process_name (vs thread_name)
    u32 pid = 0;
    ThreadId tid = 0;
    std::string name;
    Cycle ts = 0;
    Cycle dur = 0;  // 'X' only
    std::vector<Arg> args;
  };

  static void write_events(std::ostream& os, const std::vector<Event>& events, bool& first);

  u32 pid_ = 0;
  std::vector<Event> events_;
};

}  // namespace tlrob::obs
