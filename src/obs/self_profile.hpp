// Host-side simulator self-profiling: attributes wall-clock time to the
// pipeline phases of the cycle loop (event drain, commit, issue, dispatch,
// fetch, early release, ROB-controller tick, audit, interval sampling), so
// "why is this configuration slow to simulate" is answerable without an
// external profiler.
//
// Enabled via MachineConfig::telemetry.profile (or $TLROB_PROFILE=1); the
// core then routes ticks through a timing wrapper that brackets each stage
// with steady_clock reads. Disabled (the default), the only cost is one
// boolean test per tick dispatch — the phase accumulators are never touched
// and the golden fingerprints and perf-smoke contract are unaffected.
// Attributed time deliberately excludes the fast-forward bookkeeping and
// run()'s loop overhead; print() reports the residual against a caller-
// measured wall time when one is provided.
//
// Two cross-cutting phases, kMemory and kPredict, time the memory-hierarchy
// and predictor calls *inside* the pipeline stages; the enclosing stage's
// measurement subtracts them, so the table still sums to the attributed
// total and "is it the cache model or the issue logic" is answerable
// directly from profile= output.
#pragma once

#include <array>
#include <ostream>

#include "common/types.hpp"

namespace tlrob::obs {

enum class Phase : u8 {
  kEvents,        // event-wheel drain (completions, fills, miss detections)
  kCommit,
  kIssue,
  kDispatch,
  kFetch,
  kEarlyRelease,  // optional Sharkey-Ponomarev early register release
  kController,    // TwoLevelRobController::tick
  kAudit,         // invariant checks
  kSample,        // interval-sampler capture
  kMemory,        // memory-hierarchy accesses (subtracted from the stage above)
  kPredict,       // branch/load-hit predictor calls (likewise subtracted)
  kCount,
};

const char* phase_name(Phase p);

class SelfProfiler {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void add(Phase p, u64 nanos) {
    nanos_[static_cast<size_t>(p)] += nanos;
    ++calls_[static_cast<size_t>(p)];
  }

  u64 nanos(Phase p) const { return nanos_[static_cast<size_t>(p)]; }
  u64 calls(Phase p) const { return calls_[static_cast<size_t>(p)]; }
  u64 total_attributed_nanos() const;

  /// Adds another profiler's accumulators into this one (phase-wise nanos
  /// and call counts) — CmpMachine merges its cores' profiles this way.
  void merge(const SelfProfiler& other) {
    for (size_t i = 0; i < static_cast<size_t>(Phase::kCount); ++i) {
      nanos_[i] += other.nanos_[i];
      calls_[i] += other.calls_[i];
    }
  }

  void reset();

  /// Summary table: per phase, total ms, share of attributed time, and
  /// ns/call. `executed_cycles` (ticks actually run, i.e. cycles minus the
  /// fast-forwarded ones) yields the ns/cycle column; `wall_seconds` > 0
  /// adds the unattributed residual (fast-forward scans, run()-loop
  /// overhead) as a final row.
  void print(std::ostream& os, u64 executed_cycles, double wall_seconds = 0.0) const;

 private:
  bool enabled_ = false;
  std::array<u64, static_cast<size_t>(Phase::kCount)> nanos_{};
  std::array<u64, static_cast<size_t>(Phase::kCount)> calls_{};
};

}  // namespace tlrob::obs
