// Composite per-core front-end predictor: gshare direction prediction, BTB,
// and per-thread return address stacks.
//
// Model notes (documented in DESIGN.md): direct branch/jump/call targets are
// available to our short front end at fetch (decode-time target computation),
// so the BTB influences statistics but not correctness; the two mispredict
// sources that cost cycles are conditional-branch *direction* (gshare) and
// *return* targets (RAS).
#pragma once

#include <vector>

#include "branch/btb.hpp"
#include "branch/gshare.hpp"
#include "branch/ras.hpp"
#include "common/stats.hpp"
#include "isa/static_inst.hpp"

namespace tlrob {

struct PredictorConfig {
  u32 gshare_entries = 2048;  // Table 1: 2K-entry gShare
  u32 history_bits = 10;      // 10-bit global history per thread
  u32 btb_entries = 2048;     // 2048-entry, 2-way
  u32 btb_ways = 2;
};

struct BranchPrediction {
  bool taken = true;        // predicted direction (unconditional ops: true)
  Addr target = 0;          // predicted target (returns: RAS; else static)
  u16 history_before = 0;   // gshare snapshot (conditional branches)
  u32 ras_checkpoint = 0;   // RAS top-of-stack snapshot
  bool used_ras = false;
};

class BranchPredictor {
 public:
  BranchPredictor(const PredictorConfig& cfg, u32 num_threads);

  /// Predicts a control instruction at fetch. `static_target` is the taken
  /// target PC (direct ops), `fallthrough` the not-taken successor PC, and
  /// `return_pc` the PC pushed for calls.
  BranchPrediction predict(ThreadId tid, const StaticInst& si, Addr static_target,
                           Addr fallthrough, Addr return_pc);

  /// Trains tables when a correct-path control instruction resolves.
  void train(ThreadId tid, const StaticInst& si, const BranchPrediction& pred,
             bool actual_taken, Addr actual_target);

  /// Restores per-thread speculative state after the squash caused by a
  /// mispredicted control instruction.
  void recover(ThreadId tid, const StaticInst& si, const BranchPrediction& pred,
               bool actual_taken);

  StatGroup& stats() { return stats_; }
  ReturnAddressStack& ras(ThreadId tid) { return ras_[tid]; }

 private:
  Gshare gshare_;
  Btb btb_;
  std::vector<ReturnAddressStack> ras_;
  StatGroup stats_;
  // Cached stat handles (StatGroup map nodes are address-stable); predict()
  // runs per fetched control op and train() per resolved one, so the
  // string-keyed lookups were measurable. Declared after stats_.
  Counter* cnt_btb_hits_;
  Counter* cnt_cond_;
  Counter* cnt_cond_mispredict_;
  Counter* cnt_returns_;
  Counter* cnt_ras_mispredict_;
};

}  // namespace tlrob
