// Per-thread return address stack.
//
// Recovery model: the fetch unit snapshots the stack pointer at every control
// instruction it predicts; a squash restores that pointer. Entry contents are
// not checkpointed (a standard low-cost RAS; corruption after deep wrong-path
// call/return sequences is possible and simply yields a misprediction).
#pragma once

#include <array>

#include "common/types.hpp"

namespace tlrob {

class ReturnAddressStack {
 public:
  static constexpr u32 kDepth = 16;

  void push(Addr return_pc) {
    top_ = (top_ + 1) % kDepth;
    stack_[top_] = return_pc;
  }

  /// Predicted return target; pops the stack.
  Addr pop() {
    const Addr pc = stack_[top_];
    top_ = (top_ + kDepth - 1) % kDepth;
    return pc;
  }

  /// Current top-of-stack index; stash it before a predicted control op.
  u32 checkpoint() const { return top_; }

  /// Restores the stack pointer saved by checkpoint().
  void restore(u32 saved_top) { top_ = saved_top; }

 private:
  std::array<Addr, kDepth> stack_{};
  u32 top_ = kDepth - 1;
};

}  // namespace tlrob
