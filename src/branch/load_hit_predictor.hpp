// Load-hit predictor (Table 1: 2-bit bimodal, 1K entries, 8-bit global
// history per thread).
//
// Drives speculative scheduling of load dependents: a load predicted to hit
// the L1 wakes its dependents after the 2-cycle hit latency; if it actually
// misses, speculatively issued dependents are replayed (see the issue queue).
#pragma once

#include <vector>

#include "branch/bimodal.hpp"
#include "common/types.hpp"

namespace tlrob {

class LoadHitPredictor {
 public:
  LoadHitPredictor(u32 entries, u32 history_bits, u32 num_threads);

  /// Predicted "will hit L1" for the load at `pc`. Inline along with
  /// update(): both run on every issued load.
  bool predict(ThreadId tid, Addr pc) const { return table_.predict(index(tid, pc)); }

  /// Trains with the actual outcome and shifts it into the thread history.
  void update(ThreadId tid, Addr pc, bool hit) {
    table_.update(index(tid, pc), hit);
    histories_[tid] = ((histories_[tid] << 1) | (hit ? 1 : 0)) & history_mask_;
  }

 private:
  u64 index(ThreadId tid, Addr pc) const {
    return (pc >> 2) ^ histories_[tid];
  }

  BimodalTable table_;
  u32 history_mask_;
  std::vector<u32> histories_;
};

}  // namespace tlrob
