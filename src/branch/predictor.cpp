#include "branch/predictor.hpp"

namespace tlrob {

BranchPredictor::BranchPredictor(const PredictorConfig& cfg, u32 num_threads)
    : gshare_(cfg.gshare_entries, cfg.history_bits, num_threads),
      btb_(cfg.btb_entries, cfg.btb_ways),
      ras_(num_threads) {
  cnt_btb_hits_ = &stats_.counter("btb.hits");
  cnt_cond_ = &stats_.counter("branch.cond");
  cnt_cond_mispredict_ = &stats_.counter("branch.cond_mispredict");
  cnt_returns_ = &stats_.counter("branch.returns");
  cnt_ras_mispredict_ = &stats_.counter("branch.ras_mispredict");
}

BranchPrediction BranchPredictor::predict(ThreadId tid, const StaticInst& si,
                                          Addr static_target, Addr fallthrough,
                                          Addr return_pc) {
  BranchPrediction p;
  p.ras_checkpoint = ras_[tid].checkpoint();
  if (btb_.lookup(tid, si.pc).has_value()) cnt_btb_hits_->inc();

  switch (si.op) {
    case OpClass::kBranch: {
      const auto g = gshare_.predict(tid, si.pc);
      p.taken = g.taken;
      p.history_before = g.history_before;
      p.target = g.taken ? static_target : fallthrough;
      break;
    }
    case OpClass::kJump:
      p.taken = true;
      p.target = static_target;
      break;
    case OpClass::kCall:
      p.taken = true;
      p.target = static_target;
      ras_[tid].push(return_pc);
      break;
    case OpClass::kReturn:
      p.taken = true;
      p.target = ras_[tid].pop();
      p.used_ras = true;
      break;
    default:
      p.taken = false;
      p.target = fallthrough;
      break;
  }
  return p;
}

void BranchPredictor::train(ThreadId tid, const StaticInst& si, const BranchPrediction& pred,
                            bool actual_taken, Addr actual_target) {
  if (si.op == OpClass::kBranch) {
    gshare_.update(si.pc, pred.history_before, actual_taken);
    cnt_cond_->inc();
    if (pred.taken != actual_taken) cnt_cond_mispredict_->inc();
  }
  if (si.op == OpClass::kReturn) {
    cnt_returns_->inc();
    if (pred.target != actual_target) cnt_ras_mispredict_->inc();
  }
  if (actual_taken) btb_.update(tid, si.pc, actual_target);
}

void BranchPredictor::recover(ThreadId tid, const StaticInst& si, const BranchPrediction& pred,
                              bool actual_taken) {
  if (si.op == OpClass::kBranch)
    gshare_.recover(tid, pred.history_before, actual_taken);
  // Rewind wrong-path push/pop activity, then re-apply this instruction's own
  // architectural RAS effect (a mispredicted return still pops).
  ras_[tid].restore(pred.ras_checkpoint);
  if (si.op == OpClass::kReturn) ras_[tid].pop();
}

}  // namespace tlrob
