// Branch target buffer (Table 1: 2048-entry, 2-way set-associative).
//
// Stored structure-of-arrays with masked/shifted indexing: lookup() runs on
// every fetched control instruction, so the way-scan touches only the dense
// tag and valid columns (targets and recency stamps are read on a hit).
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace tlrob {

class Btb {
 public:
  Btb(u32 entries, u32 ways);

  /// Returns the cached target for `pc`, if any, refreshing its recency.
  /// Tags include the thread id so that coexisting threads (whose PCs live
  /// in disjoint address spaces anyway) never alias destructively.
  std::optional<Addr> lookup(ThreadId tid, Addr pc) {
    const u32 base = static_cast<u32>(set_of(pc) * ways_);
    const u64 tag = tag_of(tid, pc);
    for (u32 w = 0; w < ways_; ++w) {
      const u32 i = base + w;
      if (valid_[i] != 0 && tags_[i] == tag) {
        lru_[i] = ++stamp_;
        return targets_[i];
      }
    }
    return std::nullopt;
  }

  /// Installs/refreshes the mapping pc -> target (LRU within the set).
  void update(ThreadId tid, Addr pc, Addr target);

  u32 sets() const { return sets_; }
  u32 ways() const { return ways_; }

 private:
  u64 set_of(Addr pc) const { return (pc >> 2) & (sets_ - 1); }
  u64 tag_of(ThreadId tid, Addr pc) const {
    return ((pc >> 2) >> set_shift_) << 3 | (tid & 0x7);
  }

  u32 sets_;
  u32 ways_;
  u32 set_shift_;  // log2(sets)
  // Structure-of-arrays entry state, set-major ([set * ways + way]).
  std::vector<u8> valid_;
  std::vector<u64> tags_;
  std::vector<Addr> targets_;
  std::vector<u64> lru_;  // last-touch stamp
  u64 stamp_ = 0;
};

}  // namespace tlrob
