// Branch target buffer (Table 1: 2048-entry, 2-way set-associative).
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace tlrob {

class Btb {
 public:
  Btb(u32 entries, u32 ways);

  /// Returns the cached target for `pc`, if any, refreshing its recency.
  /// Tags include the thread id so that coexisting threads (whose PCs live
  /// in disjoint address spaces anyway) never alias destructively.
  std::optional<Addr> lookup(ThreadId tid, Addr pc);

  /// Installs/refreshes the mapping pc -> target (LRU within the set).
  void update(ThreadId tid, Addr pc, Addr target);

  u32 sets() const { return sets_; }
  u32 ways() const { return ways_; }

 private:
  struct Entry {
    bool valid = false;
    u64 tag = 0;
    Addr target = 0;
    u64 lru = 0;  // last-touch stamp
  };

  u64 set_of(Addr pc) const { return (pc >> 2) & (sets_ - 1); }
  u64 tag_of(ThreadId tid, Addr pc) const {
    return ((pc >> 2) / sets_) << 3 | (tid & 0x7);
  }

  u32 sets_;
  u32 ways_;
  std::vector<Entry> entries_;  // sets_ * ways_, set-major
  u64 stamp_ = 0;
};

}  // namespace tlrob
