#include "branch/load_hit_predictor.hpp"

namespace tlrob {

LoadHitPredictor::LoadHitPredictor(u32 entries, u32 history_bits, u32 num_threads)
    : table_(entries),
      history_mask_((1u << history_bits) - 1),
      histories_(num_threads, 0) {}

}  // namespace tlrob
