#include "branch/load_hit_predictor.hpp"

namespace tlrob {

LoadHitPredictor::LoadHitPredictor(u32 entries, u32 history_bits, u32 num_threads)
    : table_(entries),
      history_mask_((1u << history_bits) - 1),
      histories_(num_threads, 0) {}

bool LoadHitPredictor::predict(ThreadId tid, Addr pc) const {
  return table_.predict(index(tid, pc));
}

void LoadHitPredictor::update(ThreadId tid, Addr pc, bool hit) {
  table_.update(index(tid, pc), hit);
  histories_[tid] = ((histories_[tid] << 1) | (hit ? 1 : 0)) & history_mask_;
}

}  // namespace tlrob
