#include "branch/btb.hpp"

#include <stdexcept>

namespace tlrob {

Btb::Btb(u32 entries, u32 ways) : ways_(ways) {
  if (ways == 0 || entries % ways != 0)
    throw std::invalid_argument("Btb: entries must be a multiple of ways");
  sets_ = entries / ways;
  if ((sets_ & (sets_ - 1)) != 0)
    throw std::invalid_argument("Btb: set count must be a power of two");
  entries_.resize(entries);
}

std::optional<Addr> Btb::lookup(ThreadId tid, Addr pc) {
  const u64 set = set_of(pc);
  const u64 tag = tag_of(tid, pc);
  for (u32 w = 0; w < ways_; ++w) {
    Entry& e = entries_[set * ways_ + w];
    if (e.valid && e.tag == tag) {
      e.lru = ++stamp_;
      return e.target;
    }
  }
  return std::nullopt;
}

void Btb::update(ThreadId tid, Addr pc, Addr target) {
  const u64 set = set_of(pc);
  const u64 tag = tag_of(tid, pc);
  ++stamp_;
  for (u32 w = 0; w < ways_; ++w) {
    Entry& e = entries_[set * ways_ + w];
    if (e.valid && e.tag == tag) {
      e.target = target;
      e.lru = stamp_;
      return;
    }
  }
  Entry* victim = &entries_[set * ways_];
  for (u32 w = 0; w < ways_; ++w) {
    Entry& e = entries_[set * ways_ + w];
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) victim = &e;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->target = target;
  victim->lru = stamp_;
}

}  // namespace tlrob
