#include "branch/btb.hpp"

#include <stdexcept>

namespace tlrob {

Btb::Btb(u32 entries, u32 ways) : ways_(ways) {
  if (ways == 0 || entries % ways != 0)
    throw std::invalid_argument("Btb: entries must be a multiple of ways");
  sets_ = entries / ways;
  if ((sets_ & (sets_ - 1)) != 0)
    throw std::invalid_argument("Btb: set count must be a power of two");
  set_shift_ = 0;
  while ((sets_ >> set_shift_) > 1) ++set_shift_;
  valid_.assign(entries, 0);
  tags_.assign(entries, 0);
  targets_.assign(entries, 0);
  lru_.assign(entries, 0);
}

void Btb::update(ThreadId tid, Addr pc, Addr target) {
  const u32 base = static_cast<u32>(set_of(pc) * ways_);
  const u64 tag = tag_of(tid, pc);
  ++stamp_;
  for (u32 w = 0; w < ways_; ++w) {
    const u32 i = base + w;
    if (valid_[i] != 0 && tags_[i] == tag) {
      targets_[i] = target;
      lru_[i] = stamp_;
      return;
    }
  }
  u32 victim = base;
  for (u32 w = 0; w < ways_; ++w) {
    const u32 i = base + w;
    if (valid_[i] == 0) {
      victim = i;
      break;
    }
    if (lru_[i] < lru_[victim]) victim = i;
  }
  valid_[victim] = 1;
  tags_[victim] = tag;
  targets_[victim] = target;
  lru_[victim] = stamp_;
}

}  // namespace tlrob
