// 2-bit saturating-counter bimodal predictor table.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace tlrob {

/// A table of 2-bit saturating counters indexed by an arbitrary hash the
/// caller supplies. Counters start weakly taken (2).
class BimodalTable {
 public:
  explicit BimodalTable(u32 entries);

  bool predict(u64 index) const { return table_[mask(index)] >= 2; }

  // Inline: trained on every resolved conditional branch and every load
  // (via the load-hit predictor), so the saturating-counter nudge must not
  // pay a call.
  void update(u64 index, bool taken) {
    u8& c = table_[mask(index)];
    if (taken) {
      if (c < 3) ++c;
    } else {
      if (c > 0) --c;
    }
  }

  u32 size() const { return static_cast<u32>(table_.size()); }
  u8 counter(u64 index) const { return table_[mask(index)]; }

 private:
  u64 mask(u64 index) const { return index & (table_.size() - 1); }
  std::vector<u8> table_;
};

}  // namespace tlrob
