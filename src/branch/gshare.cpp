#include "branch/gshare.hpp"

namespace tlrob {

Gshare::Gshare(u32 pht_entries, u32 history_bits, u32 num_threads)
    : pht_(pht_entries),
      history_bits_(history_bits),
      history_mask_(static_cast<u16>((1u << history_bits) - 1)),
      histories_(num_threads, 0) {}

u64 Gshare::index(Addr pc, u16 history) const {
  return (pc >> 2) ^ history;
}

Gshare::Prediction Gshare::predict(ThreadId tid, Addr pc) {
  u16& h = histories_[tid];
  Prediction p;
  p.history_before = h;
  p.taken = pht_.predict(index(pc, h));
  h = static_cast<u16>(((h << 1) | (p.taken ? 1 : 0)) & history_mask_);
  return p;
}

void Gshare::update(Addr pc, u16 history_at_predict, bool taken) {
  pht_.update(index(pc, history_at_predict), taken);
}

void Gshare::recover(ThreadId tid, u16 history_before_branch, bool actual_taken) {
  histories_[tid] = static_cast<u16>(
      ((history_before_branch << 1) | (actual_taken ? 1 : 0)) & history_mask_);
}

}  // namespace tlrob
