#include "branch/gshare.hpp"

namespace tlrob {

Gshare::Gshare(u32 pht_entries, u32 history_bits, u32 num_threads)
    : pht_(pht_entries),
      history_bits_(history_bits),
      history_mask_(static_cast<u16>((1u << history_bits) - 1)),
      histories_(num_threads, 0) {}

}  // namespace tlrob
