#include "branch/bimodal.hpp"

#include <stdexcept>

namespace tlrob {

BimodalTable::BimodalTable(u32 entries) : table_(entries, 2) {
  if (entries == 0 || (entries & (entries - 1)) != 0)
    throw std::invalid_argument("BimodalTable size must be a power of two");
}

}  // namespace tlrob
