#include "branch/bimodal.hpp"

#include <stdexcept>

namespace tlrob {

BimodalTable::BimodalTable(u32 entries) : table_(entries, 2) {
  if (entries == 0 || (entries & (entries - 1)) != 0)
    throw std::invalid_argument("BimodalTable size must be a power of two");
}

void BimodalTable::update(u64 index, bool taken) {
  u8& c = table_[mask(index)];
  if (taken) {
    if (c < 3) ++c;
  } else {
    if (c > 0) --c;
  }
}

}  // namespace tlrob
