// gshare conditional-branch direction predictor (Table 1: 2K-entry PHT,
// 10-bit global history per thread).
//
// History is maintained *speculatively* at prediction time; a caller that
// squashes a branch restores the pre-branch history snapshot the predictor
// returned (the simulator stashes it in the DynInst).
#pragma once

#include "branch/bimodal.hpp"
#include "common/types.hpp"

namespace tlrob {

class Gshare {
 public:
  Gshare(u32 pht_entries, u32 history_bits, u32 num_threads);

  struct Prediction {
    bool taken;
    u16 history_before;  // snapshot for squash recovery
  };

  /// Predicts and speculatively shifts the predicted outcome into the
  /// thread's global history. Inline: runs on every fetched conditional
  /// branch.
  Prediction predict(ThreadId tid, Addr pc) {
    u16& h = histories_[tid];
    Prediction p;
    p.history_before = h;
    p.taken = pht_.predict(index(pc, h));
    h = static_cast<u16>(((h << 1) | (p.taken ? 1 : 0)) & history_mask_);
    return p;
  }

  /// Trains the PHT for the (pc, history) the prediction used.
  void update(Addr pc, u16 history_at_predict, bool taken) {
    pht_.update(index(pc, history_at_predict), taken);
  }

  /// Restores the thread's history after a squash: the caller passes the
  /// snapshot taken at prediction of the *mispredicted* branch plus its
  /// actual outcome (which is shifted back in).
  void recover(ThreadId tid, u16 history_before_branch, bool actual_taken) {
    histories_[tid] = static_cast<u16>(
        ((history_before_branch << 1) | (actual_taken ? 1 : 0)) & history_mask_);
  }

  u16 history(ThreadId tid) const { return histories_[tid]; }

 private:
  u64 index(Addr pc, u16 history) const { return (pc >> 2) ^ history; }

  BimodalTable pht_;
  u32 history_bits_;
  u16 history_mask_;
  std::vector<u16> histories_;
};

}  // namespace tlrob
