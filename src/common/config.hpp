// Minimal "key=value" option-bag used by benches, examples and tests to
// override experiment parameters from the command line without pulling in a
// flags library.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tlrob {

/// Parses arguments of the form `key=value` (or bare `key`, stored as "1").
/// Unrecognised positional arguments are kept in order and retrievable.
class Options {
 public:
  Options() = default;

  /// Parse from main()'s argv (argv[0] is skipped).
  static Options from_args(int argc, const char* const* argv);

  /// Parse from a pre-split token list.
  static Options from_tokens(const std::vector<std::string>& tokens);

  void set(const std::string& key, const std::string& value) { values_[key] = value; }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback = "") const;
  u64 get_u64(const std::string& key, u64 fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list value ("1,2,5" -> {"1","2","5"}); empty items are
  /// dropped, an absent key yields an empty vector.
  std::vector<std::string> get_list(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tlrob
