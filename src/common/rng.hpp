// Small, fast, deterministic PRNG used by workload generators.
//
// We deliberately avoid <random> engines in the hot path: workload generation
// runs once per simulated instruction, and determinism across platforms and
// standard-library versions matters for reproducible experiments.
#pragma once

#include "common/types.hpp"

namespace tlrob {

/// xoshiro256** — public-domain generator by Blackman & Vigna.
/// Deterministic for a given seed on every platform.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed via splitmix64.
  void reseed(u64 seed);

  /// Next raw 64-bit value.
  u64 next();

  /// Uniform in [0, bound). bound == 0 yields 0.
  u64 below(u64 bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  u64 between(u64 lo, u64 hi);

  /// Geometrically distributed value >= 1 with success probability p
  /// (mean 1/p), capped at `cap` to bound tail latency in generators.
  u64 geometric(double p, u64 cap);

 private:
  u64 state_[4];
};

}  // namespace tlrob
