// Lightweight named-statistics registry.
//
// Every simulator component registers scalar counters and averages with a
// StatGroup; the experiment harness and benches print or diff them. This is
// the moral equivalent of SimpleScalar's stat database, reduced to what the
// reproduction needs.
#pragma once

#include <map>
#include <ostream>
#include <string>

#include "common/types.hpp"

namespace tlrob {

/// A monotonically increasing event counter.
class Counter {
 public:
  void inc(u64 by = 1) { value_ += by; }
  void reset() { value_ = 0; }
  u64 value() const { return value_; }

 private:
  u64 value_ = 0;
};

/// Running mean of observed samples.
class Average {
 public:
  void sample(double v) {
    sum_ += v;
    ++count_;
  }
  void reset() {
    sum_ = 0;
    count_ = 0;
  }
  u64 count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

 private:
  double sum_ = 0;
  u64 count_ = 0;
};

/// A flat, ordered collection of named counters and averages.
///
/// Lookup is by full dotted name ("commit.insts"). Creation is idempotent:
/// the first lookup creates the stat, later lookups return the same object.
class StatGroup {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Average& average(const std::string& name) { return averages_[name]; }

  bool has_counter(const std::string& name) const { return counters_.count(name) != 0; }
  bool has_average(const std::string& name) const { return averages_.count(name) != 0; }

  /// Value of a counter, or 0 if it was never touched.
  u64 counter_value(const std::string& name) const;

  void reset();

  /// Prints "name value" lines in name order.
  void print(std::ostream& os) const;

  const std::map<std::string, Counter>& counters_map() const { return counters_; }
  const std::map<std::string, Average>& averages_map() const { return averages_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Average> averages_;
};

}  // namespace tlrob
