#include "common/stats.hpp"

namespace tlrob {

u64 StatGroup::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void StatGroup::reset() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, a] : averages_) a.reset();
}

void StatGroup::print(std::ostream& os) const {
  for (const auto& [name, c] : counters_) os << name << " " << c.value() << "\n";
  for (const auto& [name, a] : averages_)
    os << name << " mean=" << a.mean() << " n=" << a.count() << "\n";
}

}  // namespace tlrob
