#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tlrob {

void Histogram::record(u64 value) {
  const u64 idx = std::min<u64>(value, buckets_.size() - 1);
  ++buckets_[idx];
  ++total_;
  sum_ += static_cast<double>(value);
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  sum_ = 0;
}

u64 Histogram::percentile(double p) const {
  if (total_ == 0) return 0;
  p = std::min(100.0, std::max(0.0, p));
  // Nearest rank: the k-th smallest sample with k = ceil(p/100 * n), k >= 1.
  const u64 rank = std::max<u64>(
      1, static_cast<u64>(std::ceil(p / 100.0 * static_cast<double>(total_))));
  u64 seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return i;
  }
  return buckets_.size() - 1;  // unreachable: seen == total_ after the loop
}

void Histogram::merge(const Histogram& other) {
  if (other.buckets_.size() != buckets_.size())
    throw std::invalid_argument("Histogram::merge: bucket count mismatch");
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

void Histogram::print(std::ostream& os, const std::string& label) const {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (!label.empty()) os << label << " ";
    os << i << " " << buckets_[i] << "\n";
  }
}

}  // namespace tlrob
