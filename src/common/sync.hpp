// Annotated synchronisation primitives.
//
// Thin, zero-overhead wrappers over the std primitives that carry the Clang
// thread-safety capability attributes (common/thread_annotations.hpp).
// std::mutex itself is unannotated, so code locking it directly gets no
// static checking; everything concurrent in this repo (the campaign pool,
// the in-order emitter, the single-thread-IPC memo) locks through these
// types instead, which is what lets the static-analysis CI job compile with
// -Werror=thread-safety and actually prove the lock discipline.
//
// The deliberate omissions are part of the contract:
//   - No public lock()/unlock() free-calling style: tlrob-lint rule C2
//     forbids naked .lock()/.unlock() in concurrent modules, so the only
//     way to hold a Mutex is a scoped MutexLock (RAII; exception-safe).
//   - No timed/shared variants until something needs them — a smaller
//     vocabulary is easier to lint and to reason about.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace tlrob {

/// Annotated exclusive lock. Lock it with MutexLock; the raw lock()/unlock()
/// surface exists for the analysis and for MutexLock, not for callers.
class TLROB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // tlrob-lint: allow(C2) RAII wrapper internals: MutexLock is the sole caller.
  void lock() TLROB_ACQUIRE() { m_.lock(); }
  // tlrob-lint: allow(C2) RAII wrapper internals: MutexLock is the sole caller.
  void unlock() TLROB_RELEASE() { m_.unlock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  // tlrob-lint: allow(C1) the wrapper's own capability state, not guarded data.
  std::mutex m_;
};

/// Scoped lock over Mutex (the only sanctioned way to hold one).
class TLROB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TLROB_ACQUIRE(mu) : lk_(mu.m_) {}
  ~MutexLock() TLROB_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable bound to Mutex/MutexLock. wait()/wait_for() require
/// the caller to hold the lock they pass (enforced at compile time under
/// Clang by MutexLock's scoped capability); the lock is released for the
/// duration of the block and reacquired before return, exactly like
/// std::condition_variable.
class CondVar {
 public:
  void wait(MutexLock& lock) { cv_.wait(lock.lk_); }

  template <typename Rep, typename Period>
  void wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& dur) {
    cv_.wait_for(lock.lk_, dur);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Deterministic total-order gate for the parallel CMP engine (sim/cmp.cpp).
///
/// N cores advance on N worker threads; everything they share (the LLC/DRAM
/// backend, the backend Chrome-trace writer, the audit's shared-memory view)
/// must be touched in exactly the serial lockstep order: operations apply
/// ordered by the key (tick cycle, core index), with one core's same-cycle
/// operations applying in its own program order. The gate realises that
/// order without a global lock:
///
///   - Each core publishes a monotonic clock — the cycle it is currently
///     ticking. The pair (clock[i], i) is a lower bound on the key of any
///     operation core i can still perform.
///   - An operation with key (c, i) may apply once it is the global minimum:
///     for every other core j, (clock[j], j) > (c, i) lexicographically.
///     sync() blocks until that holds.
///
/// Mutual exclusion and publication both fall out of the protocol: while
/// core i sits at clock c, no other core's operation with a larger key can
/// pass its own sync() (it needs clock[i] beyond c), and the release-store
/// of a clock advance paired with the acquire-loads in sync() sequences
/// core i's writes before any later-keyed core's reads. Deadlock-freedom:
/// clocks only grow, keys are totally ordered (the core index breaks ties),
/// and the core holding the global-minimum bound is, by definition, never
/// blocked — so some core always progresses and every sync() eventually
/// returns, provided each participating core keeps advancing its clock to
/// its epoch end (the engine publishes the epoch boundary after its last
/// tick for exactly this reason).
///
/// Waiters spin briefly (the common case: the peer is one tick behind),
/// then park on a condition variable; advance() only takes the lock when
/// the sleeper count says someone is parked, so the per-tick publish stays
/// a single release-store on the fast path.
class CoreGate {
 public:
  explicit CoreGate(u32 cores) : slots_(cores) {}

  CoreGate(const CoreGate&) = delete;
  CoreGate& operator=(const CoreGate&) = delete;

  /// Publishes core `core`'s clock (monotonic; lower values are ignored).
  /// Single writer per slot: only core `core`'s worker calls this.
  void advance(u32 core, Cycle c) {
    std::atomic<Cycle>& clk = slots_[core].clock;
    if (clk.load(std::memory_order_relaxed) >= c) return;
    clk.store(c, std::memory_order_release);
    if (sleepers_.load(std::memory_order_acquire) != 0) {
      {
        MutexLock lock(mu_);
        ++wakeups_;
      }
      cv_.notify_all();
    }
  }

  /// Blocks until (clock[core], core) is the global minimum over all cores'
  /// published bounds — i.e. until every operation that serially precedes
  /// core `core`'s next shared-state access has been applied and no later
  /// one can slip in front.
  void sync(u32 core) {
    const Cycle c = slots_[core].clock.load(std::memory_order_relaxed);
    for (u32 j = 0; j < static_cast<u32>(slots_.size()); ++j) {
      if (j == core) continue;
      u32 spins = 0;
      while (!passed(j, c, core)) {
        if (++spins < kSpinLimit) {
          std::this_thread::yield();
          continue;
        }
        // Park: bounded waits make a missed notify a latency blip, not a
        // deadlock (the condition is re-read after every wakeup).
        sleepers_.fetch_add(1, std::memory_order_acq_rel);
        {
          MutexLock lock(mu_);
          while (!passed(j, c, core)) cv_.wait_for(lock, std::chrono::milliseconds(1));
        }
        sleepers_.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
  }

  Cycle clock(u32 core) const { return slots_[core].clock.load(std::memory_order_acquire); }
  u32 cores() const { return static_cast<u32>(slots_.size()); }

 private:
  /// True once core j's bound is lexicographically past (c, core).
  bool passed(u32 j, Cycle c, u32 core) const {
    const Cycle cj = slots_[j].clock.load(std::memory_order_acquire);
    return cj > c || (cj == c && j > core);
  }

  static constexpr u32 kSpinLimit = 128;

  struct alignas(64) Slot {  // cache-line padded: one writer per slot
    std::atomic<Cycle> clock{0};
  };
  std::vector<Slot> slots_;

  std::atomic<u32> sleepers_{0};  // fast-path gate on the notify below
  Mutex mu_;
  CondVar cv_;
  /// Notify generation (diagnostics); also the state mu_ demonstrably
  /// guards — the clocks themselves are lock-free by design.
  u64 wakeups_ TLROB_GUARDED_BY(mu_) = 0;
};

}  // namespace tlrob
