// Annotated synchronisation primitives.
//
// Thin, zero-overhead wrappers over the std primitives that carry the Clang
// thread-safety capability attributes (common/thread_annotations.hpp).
// std::mutex itself is unannotated, so code locking it directly gets no
// static checking; everything concurrent in this repo (the campaign pool,
// the in-order emitter, the single-thread-IPC memo) locks through these
// types instead, which is what lets the static-analysis CI job compile with
// -Werror=thread-safety and actually prove the lock discipline.
//
// The deliberate omissions are part of the contract:
//   - No public lock()/unlock() free-calling style: tlrob-lint rule C2
//     forbids naked .lock()/.unlock() in concurrent modules, so the only
//     way to hold a Mutex is a scoped MutexLock (RAII; exception-safe).
//   - No timed/shared variants until something needs them — a smaller
//     vocabulary is easier to lint and to reason about.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace tlrob {

/// Annotated exclusive lock. Lock it with MutexLock; the raw lock()/unlock()
/// surface exists for the analysis and for MutexLock, not for callers.
class TLROB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // tlrob-lint: allow(C2) RAII wrapper internals: MutexLock is the sole caller.
  void lock() TLROB_ACQUIRE() { m_.lock(); }
  // tlrob-lint: allow(C2) RAII wrapper internals: MutexLock is the sole caller.
  void unlock() TLROB_RELEASE() { m_.unlock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock over Mutex (the only sanctioned way to hold one).
class TLROB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TLROB_ACQUIRE(mu) : lk_(mu.m_) {}
  ~MutexLock() TLROB_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable bound to Mutex/MutexLock. wait()/wait_for() require
/// the caller to hold the lock they pass (enforced at compile time under
/// Clang by MutexLock's scoped capability); the lock is released for the
/// duration of the block and reacquired before return, exactly like
/// std::condition_variable.
class CondVar {
 public:
  void wait(MutexLock& lock) { cv_.wait(lock.lk_); }

  template <typename Rep, typename Period>
  void wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& dur) {
    cv_.wait_for(lock.lk_, dur);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tlrob
