#include "common/thread_pool.hpp"

#include <chrono>

namespace tlrob {

namespace {
// Identity of the current pool worker, so submit() from inside a job lands
// on the submitter's own deque (LIFO) instead of round-robin.
thread_local const WorkStealingPool* tl_pool = nullptr;
thread_local u32 tl_index = 0;
}  // namespace

u32 WorkStealingPool::resolve_threads(u32 threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<u32>(hw);
}

WorkStealingPool::WorkStealingPool(u32 threads) {
  const u32 n = resolve_threads(threads);
  queues_.reserve(n);
  for (u32 i = 0; i < n; ++i) queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(n);
  for (u32 i = 0; i < n; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  {
    MutexLock lock(state_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkStealingPool::submit(std::function<void()> task) {
  u64 slot;
  const bool own = tl_pool == this;
  {
    MutexLock lock(state_mu_);
    ++unfinished_;
    slot = own ? tl_index : next_victim_++ % queues_.size();
  }
  {
    Worker& w = *queues_[slot];
    MutexLock lock(w.mu);
    if (own)
      w.deque.push_front(std::move(task));  // LIFO for the owner
    else
      w.deque.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool WorkStealingPool::take_task(u32 self, std::function<void()>& out) {
  {
    Worker& mine = *queues_[self];
    MutexLock lock(mine.mu);
    if (!mine.deque.empty()) {
      out = std::move(mine.deque.front());
      mine.deque.pop_front();
      return true;
    }
  }
  // Steal the oldest task from the first non-empty victim.
  for (size_t i = 1; i < queues_.size(); ++i) {
    Worker& victim = *queues_[(self + i) % queues_.size()];
    MutexLock lock(victim.mu);
    if (!victim.deque.empty()) {
      out = std::move(victim.deque.back());
      victim.deque.pop_back();
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_loop(u32 self) {
  tl_pool = this;
  tl_index = self;
  for (;;) {
    std::function<void()> task;
    if (take_task(self, task)) {
      task();
      MutexLock lock(state_mu_);
      if (--unfinished_ == 0) idle_cv_.notify_all();
      continue;
    }
    MutexLock lock(state_mu_);
    if (stopping_) return;
    // Re-probe after a bounded nap: a task may have been enqueued between
    // the failed take and acquiring the lock, and the bounded wait keeps
    // the loop free of a queued-task counter that take_task would have to
    // keep consistent with three mutexes held in sequence.
    work_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

void WorkStealingPool::wait_idle() {
  MutexLock lock(state_mu_);
  while (unfinished_ != 0) idle_cv_.wait(lock);
}

}  // namespace tlrob
