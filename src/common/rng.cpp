#include "common/rng.hpp"

namespace tlrob {
namespace {

u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(u64 seed) {
  u64 s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

u64 Rng::next() {
  const u64 result = rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

u64 Rng::below(u64 bound) {
  if (bound == 0) return 0;
  // Multiplicative range reduction (Lemire); bias is negligible for the
  // bounds used in workload generation (<< 2^64).
  return static_cast<u64>((static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

u64 Rng::between(u64 lo, u64 hi) {
  return lo + below(hi - lo + 1);
}

u64 Rng::geometric(double p, u64 cap) {
  if (p >= 1.0) return 1;
  if (p <= 0.0) return cap;
  u64 n = 1;
  while (n < cap && !chance(p)) ++n;
  return n;
}

}  // namespace tlrob
