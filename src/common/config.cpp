#include "common/config.hpp"

#include <cstdlib>

namespace tlrob {

Options Options::from_args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return from_tokens(tokens);
}

Options Options::from_tokens(const std::vector<std::string>& tokens) {
  Options opts;
  for (const auto& tok : tokens) {
    // Accept both "key=value" and "--key=value".
    size_t dashes = 0;
    while (dashes < tok.size() && tok[dashes] == '-') ++dashes;
    const std::string t = tok.substr(dashes);
    auto eq = t.find('=');
    if (eq == std::string::npos) {
      if (tok.size() > 1 && tok[0] == '-') {
        // (insert_or_assign sidesteps GCC 12's -Wrestrict false positive on
        // map-subscript assignment from a literal, PR105329.)
        opts.values_.insert_or_assign(t, std::string("1"));  // bare flag
      } else {
        opts.positional_.push_back(tok);
      }
    } else {
      opts.values_[t.substr(0, eq)] = t.substr(eq + 1);
    }
  }
  return opts;
}

std::string Options::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

u64 Options::get_u64(const std::string& key, u64 fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 0);
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string> Options::get_list(const std::string& key) const {
  std::vector<std::string> out;
  const std::string csv = get(key);
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return !(v == "0" || v == "false" || v == "no" || v == "off");
}

}  // namespace tlrob
