// Work-stealing thread pool — the one threading substrate in the repo.
//
// Two consumers share it (deliberately, so the pools cannot drift apart):
//   - the campaign runner (runner/engine.cpp) fans independent jobs out
//     across `--jobs` workers, and
//   - the parallel CMP engine (sim/cmp.cpp) runs one blocking epoch task
//     per core on a pool sized exactly num_cores. That sizing is the
//     pinned-worker contract: epoch tasks block inside CoreGate::sync()
//     waiting on each other's clocks, which is deadlock-free only while
//     every task can hold a worker simultaneously (a worker runs at most
//     one task at a time; with #tasks <= #workers, a blocked task never
//     starves the task it waits on of a thread).
//
// Each worker owns a deque: it pushes/pops its own work LIFO (cache-warm)
// and steals FIFO from the other end of a victim's deque (oldest job first,
// the classic Blumofe–Leiserson discipline). External submissions are dealt
// round-robin across the workers. The implementation favours being obviously
// correct under TSan over lock-free cleverness — campaign jobs run for
// milliseconds to minutes, so per-deque mutexes are nowhere near the
// bottleneck.
//
// Lock discipline (statically checked under Clang via -Wthread-safety and
// the tlrob::Mutex capability annotations): every shared field names the
// mutex that guards it, per-worker deques are guarded by their worker's own
// mu, and the pool-wide accounting (unfinished_, next_victim_, stopping_)
// by state_mu_. A worker never holds two locks at once except submit/steal
// taking state_mu_ then one worker mu, which is the fixed acquisition order.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/types.hpp"

namespace tlrob {

class WorkStealingPool {
 public:
  /// `threads` = 0 selects hardware concurrency (at least 1).
  explicit WorkStealingPool(u32 threads = 0);

  /// Drains remaining work, then joins the workers.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueues a task. Safe from any thread, including pool workers (a
  /// worker submits to its own deque, which is what makes recursive
  /// fan-out work-stealing rather than FIFO).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  u32 size() const { return static_cast<u32>(workers_.size()); }

  /// Resolves the 0 = hardware default the same way the constructor does.
  static u32 resolve_threads(u32 threads);

 private:
  struct Worker {
    Mutex mu;  // guards this worker's deque only
    std::deque<std::function<void()>> deque TLROB_GUARDED_BY(mu);
  };

  void worker_loop(u32 self);
  bool take_task(u32 self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  Mutex state_mu_;  // guards the pool-wide accounting below
  CondVar work_cv_;  // workers sleep here when starved
  CondVar idle_cv_;  // wait_idle sleeps here
  u64 unfinished_ TLROB_GUARDED_BY(state_mu_) = 0;   // submitted, not yet completed
  u64 next_victim_ TLROB_GUARDED_BY(state_mu_) = 0;  // round-robin submit cursor
  bool stopping_ TLROB_GUARDED_BY(state_mu_) = false;
};

}  // namespace tlrob
