// Integer-bucket histogram used for the paper's Figures 1, 3 and 7
// (number of instructions dependent on a long-latency load).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tlrob {

/// Histogram over non-negative integer samples with a fixed number of unit
/// buckets; samples beyond the last bucket are clamped into it (an explicit
/// overflow bucket, matching the "31+" right edge of the paper's figures).
class Histogram {
 public:
  /// Buckets cover values 0 .. max_value; anything larger lands in the
  /// max_value bucket.
  explicit Histogram(u32 max_value = 31) : buckets_(max_value + 1, 0) {}

  void record(u64 value);
  void reset();

  u32 max_value() const { return static_cast<u32>(buckets_.size()) - 1; }
  u64 bucket(u32 value) const { return buckets_.at(value); }
  u64 total_samples() const { return total_; }

  /// Mean of recorded samples (using true values, not clamped ones).
  double mean() const { return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_); }

  /// Nearest-rank percentile over the recorded (clamped) values: the
  /// smallest bucket value v such that at least ceil(p/100 * samples)
  /// samples are <= v. `p` is clamped to [0, 100]; an empty histogram
  /// yields 0. Samples that overflowed into the saturating last bucket
  /// report max_value() (the clamped value — the histogram cannot know
  /// more). Used by the interval sampler's occupancy summaries.
  u64 percentile(double p) const;

  /// Merges another histogram with identical bucket count.
  void merge(const Histogram& other);

  /// Prints "value count" lines; `label` prefixes each line when non-empty.
  void print(std::ostream& os, const std::string& label = "") const;

 private:
  std::vector<u64> buckets_;
  u64 total_ = 0;
  double sum_ = 0;  // of true (unclamped) values
};

}  // namespace tlrob
