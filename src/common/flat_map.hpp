// Sorted flat map: the determinism-safe replacement for lookup-only
// std::unordered_map uses.
//
// Iteration order over an unordered container depends on libstdc++'s hash
// seed, bucket count growth history and insertion order — all invisible
// inputs to any code that later emits what it iterated, which is exactly
// the hazard tlrob-lint rule D1 exists to catch. A FlatMap is built once
// (emplace during construction, then seal()), after which lookups are
// branch-light binary searches over one contiguous array and iteration is
// key-sorted, so emitting it is deterministic by construction. For the
// access patterns it replaced (block_of_pc: ~dozens of keys, built at core
// construction, probed on every fetch steer) the dense layout is also the
// faster structure.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace tlrob {

/// Immutable-after-seal() associative array with std::unordered_map::emplace
/// duplicate semantics (the first insertion of a key wins) and key-sorted,
/// deterministic iteration.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Buffers one entry. Like unordered_map::emplace, a later duplicate of an
  /// already-inserted key is discarded at seal(). Only valid before seal().
  void emplace(const K& key, const V& value) {
    assert(!sealed_ && "FlatMap: emplace after seal()");
    entries_.emplace_back(key, value);
  }

  /// Sorts by key and drops duplicate keys, keeping the first-inserted entry
  /// (stable sort + unique = unordered_map::emplace semantics). Lookups and
  /// iteration are only valid after sealing.
  void seal() {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const value_type& a, const value_type& b) { return a.first < b.first; });
    entries_.erase(std::unique(entries_.begin(), entries_.end(),
                               [](const value_type& a, const value_type& b) {
                                 return a.first == b.first;
                               }),
                   entries_.end());
    sealed_ = true;
  }

  /// Pointer to the mapped value, or nullptr when absent.
  const V* find(const K& key) const {
    assert(sealed_ && "FlatMap: find before seal()");
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
    if (it == entries_.end() || it->first != key) return nullptr;
    return &it->second;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  bool sealed() const { return sealed_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Key-sorted (deterministic) iteration.
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

 private:
  std::vector<value_type> entries_;
  bool sealed_ = false;
};

}  // namespace tlrob
