// Fundamental scalar types shared across the simulator.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace tlrob {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated cycle count.
using Cycle = u64;

/// Hardware thread (context) identifier within one SMT core.
using ThreadId = u32;

/// Byte address in the simulated memory space.
using Addr = u64;

/// Global dynamic-instruction sequence number (age ordering across threads).
using SeqNum = u64;

/// Architectural register index within the micro-op ISA.
using ArchReg = u16;

/// Physical register index in the renamed register file.
using PhysReg = u32;

inline constexpr PhysReg kInvalidPhysReg = std::numeric_limits<PhysReg>::max();
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

}  // namespace tlrob
