// Fixed-capacity circular deque.
//
// The simulator's hot-path queues (per-thread ROB windows, LSQs, frontend
// fetch buffers) all have a capacity known at construction and live for the
// whole run; std::deque's chunked allocation is pure overhead there. This
// ring allocates its storage once and never touches the heap again:
// push/pop at either end are O(1), operator[] gives random access for the
// binary searches the ROB runs, and — unlike std::deque — *every* slot is
// address-stable, so pointers into surviving elements remain valid across
// any sequence of pushes and pops (pointers to removed elements dangle,
// exactly as with std::deque).
#pragma once

#include <stdexcept>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace tlrob {

template <typename T>
class RingDeque {
 public:
  explicit RingDeque(u32 capacity) : slots_(capacity) {}

  u32 capacity() const { return static_cast<u32>(slots_.size()); }
  u32 size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == capacity(); }

  T& operator[](u32 i) { return slots_[index(i)]; }
  const T& operator[](u32 i) const { return slots_[index(i)]; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }
  T& back() { return slots_[index(count_ - 1)]; }
  const T& back() const { return slots_[index(count_ - 1)]; }

  void push_back(T&& v) {
    check_space();
    slots_[index(count_)] = std::move(v);
    ++count_;
  }
  void push_front(T&& v) {
    check_space();
    head_ = head_ == 0 ? capacity() - 1 : head_ - 1;
    slots_[head_] = std::move(v);
    ++count_;
  }
  void pop_back() {
    check_nonempty();
    --count_;
  }
  void pop_front() {
    check_nonempty();
    head_ = head_ + 1 == capacity() ? 0 : head_ + 1;
    --count_;
  }

  /// True when `p` is the address of a live slot (the pool-audit check uses
  /// this to prove no structure holds a pointer into recycled storage).
  bool owns(const T* p) const {
    if (p < slots_.data() || p >= slots_.data() + slots_.size()) return false;
    const u32 raw = static_cast<u32>(p - slots_.data());
    const u32 logical = raw >= head_ ? raw - head_ : raw + capacity() - head_;
    return logical < count_;
  }

 private:
  u32 index(u32 i) const {
    const u32 j = head_ + i;
    return j >= capacity() ? j - capacity() : j;
  }
  void check_space() const {
    if (full()) throw std::logic_error("RingDeque: push on full ring");
  }
  void check_nonempty() const {
    if (empty()) throw std::logic_error("RingDeque: pop on empty ring");
  }

  std::vector<T> slots_;
  u32 head_ = 0;
  u32 count_ = 0;
};

}  // namespace tlrob
