// Clang thread-safety-analysis attribute shim.
//
// The TLROB_* macros expand to Clang's capability attributes when the
// compiler understands them and to nothing everywhere else, so GCC builds
// are byte-identical to an unannotated tree while Clang builds get
// -Wthread-safety checking (promoted to an error by the top-level
// CMakeLists). The vocabulary follows the canonical mutex.h pattern from
// the Clang documentation; apply the macros to the tlrob::Mutex family in
// common/sync.hpp, never to raw std::mutex (the standard types carry no
// capability attributes, so the analysis cannot see them).
//
// Conventions (DESIGN.md §11):
//   - Every Mutex member states in a comment what it protects, and every
//     protected member carries TLROB_GUARDED_BY(that_mutex).
//   - Private helpers that expect the lock held are annotated
//     TLROB_REQUIRES(mu) and called only from locked scopes.
//   - TLROB_NO_THREAD_SAFETY_ANALYSIS is a last resort and needs a
//     justification comment, exactly like a tlrob-lint allow() directive.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define TLROB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TLROB_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define TLROB_CAPABILITY(x) TLROB_THREAD_ANNOTATION(capability(x))
#define TLROB_SCOPED_CAPABILITY TLROB_THREAD_ANNOTATION(scoped_lockable)
#define TLROB_GUARDED_BY(x) TLROB_THREAD_ANNOTATION(guarded_by(x))
#define TLROB_PT_GUARDED_BY(x) TLROB_THREAD_ANNOTATION(pt_guarded_by(x))
#define TLROB_ACQUIRE(...) TLROB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TLROB_RELEASE(...) TLROB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TLROB_TRY_ACQUIRE(...) TLROB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TLROB_REQUIRES(...) TLROB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TLROB_EXCLUDES(...) TLROB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TLROB_ACQUIRED_BEFORE(...) TLROB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TLROB_ACQUIRED_AFTER(...) TLROB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define TLROB_RETURN_CAPABILITY(x) TLROB_THREAD_ANNOTATION(lock_returned(x))
#define TLROB_NO_THREAD_SAFETY_ANALYSIS TLROB_THREAD_ANNOTATION(no_thread_safety_analysis)
