#include "verify/invariant_checker.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "verify/checks/checks.hpp"

namespace tlrob {

const char* audit_level_name(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff: return "off";
    case AuditLevel::kCheap: return "cheap";
    case AuditLevel::kFull: return "full";
  }
  return "unknown";
}

AuditLevel parse_audit_level(const std::string& name) {
  if (name == "off" || name == "none") return AuditLevel::kOff;
  if (name == "cheap") return AuditLevel::kCheap;
  if (name == "full") return AuditLevel::kFull;
  throw std::invalid_argument("unknown audit level: " + name + " (expected off|cheap|full)");
}

AuditConfig default_audit_config() {
  // Computed once: the environment is the process-wide CI switch, not a
  // per-config knob (explicit assignment to MachineConfig::audit overrides).
  static const AuditConfig cached = [] {
    AuditConfig cfg;
    if (const char* level = std::getenv("TLROB_AUDIT"); level != nullptr && *level != '\0') {
      cfg.level = parse_audit_level(level);
      cfg.abort_on_violation = cfg.level != AuditLevel::kOff;
    }
    if (const char* abort_env = std::getenv("TLROB_AUDIT_ABORT");
        abort_env != nullptr && *abort_env != '\0')
      cfg.abort_on_violation = std::string(abort_env) != "0";
    return cfg;
  }();
  return cached;
}

InvariantChecker::InvariantChecker(const AuditConfig& cfg, u32 num_threads)
    : cfg_(cfg), last_committed_(num_threads, 0) {
  if (cfg_.cheap_interval == 0) cfg_.cheap_interval = 1;
  if (cfg_.full_interval == 0) cfg_.full_interval = 1;
  register_check(make_rob_order_check());
  register_check(make_second_level_check());
  register_check(make_iq_counts_check());
  register_check(make_occupancy_check());
  register_check(make_dod_recount_check());
  register_check(make_pool_check());
  register_check(make_event_wheel_check());
  register_check(make_shared_memory_check());
}

void InvariantChecker::register_check(std::unique_ptr<InvariantCheck> check) {
  checks_.push_back(std::move(check));
}

void InvariantChecker::run_tier(const AuditContext& ctx, InvariantCheck::Tier tier) {
  for (const auto& check : checks_) {
    if (check->tier() != tier) continue;
    check->run(ctx, *this);
    ++checks_executed_;
    stats_.counter("checks_run").inc();
  }
}

void InvariantChecker::run_cycle(const AuditContext& ctx) {
  if (cfg_.level == AuditLevel::kOff) return;
  if (ctx.cycle % cfg_.cheap_interval == 0) run_tier(ctx, InvariantCheck::Tier::kCheap);
  if (cfg_.level == AuditLevel::kFull && ctx.cycle % cfg_.full_interval == 0)
    run_tier(ctx, InvariantCheck::Tier::kFull);
}

u32 InvariantChecker::run_all(const AuditContext& ctx) {
  const u64 before = total_violations_;
  run_tier(ctx, InvariantCheck::Tier::kCheap);
  run_tier(ctx, InvariantCheck::Tier::kFull);
  return static_cast<u32>(total_violations_ - before);
}

void InvariantChecker::on_commit(ThreadId tid, u64 tseq, Cycle now) {
  if (cfg_.level == AuditLevel::kOff) return;
  u64& last = last_committed_[tid];
  if (tseq <= last) {
    std::ostringstream os;
    os << "committed tseq " << tseq << " after tseq " << last
       << " (per-thread commit must be in program order)";
    violation(now, tid, "commit.order", os.str());
  }
  last = tseq;
}

void InvariantChecker::violation(Cycle cycle, ThreadId tid, const char* check,
                                 std::string detail) {
  ++total_violations_;
  stats_.counter("violations").inc();
  stats_.counter(std::string("violations.") + check).inc();
  if (violations_.size() < cfg_.max_recorded)
    violations_.push_back(AuditViolation{cycle, tid, check, std::move(detail)});
  if (cfg_.abort_on_violation) throw AuditFailure("pipeline invariant violated\n" + report());
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  os << "audit report: " << total_violations_ << " violation(s), " << checks_executed_
     << " check execution(s)\n";
  for (const AuditViolation& v : violations_) {
    os << "  [cycle " << v.cycle << "] ";
    if (v.tid != kNoThread) os << "thread " << v.tid << " ";
    os << v.check << ": " << v.detail << "\n";
  }
  if (total_violations_ > violations_.size())
    os << "  ... " << (total_violations_ - violations_.size()) << " more not recorded\n";
  return os.str();
}

}  // namespace tlrob
