// Registry and driver for pipeline invariant checks.
//
// A check is a stateless object inspecting an AuditContext and reporting
// violations through the checker. The checker owns the violation log, the
// per-event commit-order state, the audit statistics, and the tier gating
// (cheap checks every cheap_interval cycles, full checks every
// full_interval cycles at AuditLevel::kFull).
//
// Violations are structured (cycle, thread, check id, detail) so a CI
// failure names the broken contract instead of dumping an IPC diff; with
// AuditConfig::abort_on_violation the first one throws AuditFailure carrying
// the full report.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "verify/audit_context.hpp"

namespace tlrob {

/// One recorded contract violation.
struct AuditViolation {
  Cycle cycle = 0;
  ThreadId tid = 0;       // kNoThread when not thread-specific
  std::string check;      // dotted check id, e.g. "rob2.trigger"
  std::string detail;     // offending entries / counts
};

inline constexpr ThreadId kNoThread = 0xffffffffu;

/// Thrown by the checker when abort_on_violation is set.
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(const std::string& what) : std::runtime_error(what) {}
};

class InvariantChecker;

/// Interface every invariant check implements. `tier()` decides when the
/// check runs; `run()` must not mutate pipeline state (it only sees const
/// pointers) and reports through `InvariantChecker::violation`.
class InvariantCheck {
 public:
  enum class Tier : u8 { kCheap, kFull };

  virtual ~InvariantCheck() = default;
  virtual const char* id() const = 0;
  virtual Tier tier() const = 0;
  virtual void run(const AuditContext& ctx, InvariantChecker& out) const = 0;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(const AuditConfig& cfg, u32 num_threads);

  /// Installs the standard check set (rob order, second-level ownership,
  /// occupancy accounting, DoD recount). Done by the constructor; exposed so
  /// tests can build a checker with a custom subset.
  void register_check(std::unique_ptr<InvariantCheck> check);

  bool enabled() const { return cfg_.level != AuditLevel::kOff; }
  const AuditConfig& config() const { return cfg_; }

  /// Per-cycle driver: honours the level and the tier intervals.
  void run_cycle(const AuditContext& ctx);

  /// Runs every registered check (both tiers) immediately, regardless of
  /// level or interval. Returns the number of violations found by this
  /// sweep. Used by tests and by SmtCore::audit_now().
  u32 run_all(const AuditContext& ctx);

  /// Per-event hook: thread `tid` committed the ROB head with sequence
  /// `tseq`. Verifies per-thread program order and feeds the head-vs-
  /// committed cross check.
  void on_commit(ThreadId tid, u64 tseq, Cycle now);

  /// Records a violation (called by checks). Honours max_recorded and
  /// abort_on_violation.
  void violation(Cycle cycle, ThreadId tid, const char* check, std::string detail);

  const std::vector<AuditViolation>& violations() const { return violations_; }
  u64 total_violations() const { return total_violations_; }
  /// Total check executions (one check over one context = 1).
  u64 checks_executed() const { return checks_executed_; }
  const std::vector<u64>& last_committed() const { return last_committed_; }

  /// Human-readable structured report of every recorded violation.
  std::string report() const;

  StatGroup& stats() { return stats_; }

 private:
  void run_tier(const AuditContext& ctx, InvariantCheck::Tier tier);

  AuditConfig cfg_;
  std::vector<std::unique_ptr<InvariantCheck>> checks_;
  std::vector<u64> last_committed_;  // per thread; 0 = nothing committed
  std::vector<AuditViolation> violations_;
  u64 total_violations_ = 0;
  u64 checks_executed_ = 0;
  StatGroup stats_;
};

}  // namespace tlrob
