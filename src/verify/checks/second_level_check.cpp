// Second-level partition ownership (cheap tier).
//
// The paper's central allocation contract (§4): the second-level ROB is
// granted "as an atomic unit to one thread at a time", and only because a
// counted-DoD-qualified L2 miss justifies it. The controller enforces this
// by construction today; this check keeps it true under every future policy
// change (leases, cooldowns, new schemes) by re-deriving it from live state
// at the end of each audited cycle:
//
//   * at most one thread holds extra capacity, and then the whole partition;
//   * a holder is the registered owner and has a justifying trigger load
//     that is a correct-path L2-missing load still waiting for its line;
//   * baseline grants nothing; kAdaptive grows private ROBs only (bounded
//     by adaptive_max_extra) and never touches the shared partition.
#include <sstream>

#include "rob/allocation_policy.hpp"
#include "rob/rob.hpp"
#include "rob/two_level_rob.hpp"
#include "verify/checks/checks.hpp"

namespace tlrob {
namespace {

class SecondLevelCheck final : public InvariantCheck {
 public:
  const char* id() const override { return "rob2.ownership"; }
  Tier tier() const override { return Tier::kCheap; }

  void run(const AuditContext& ctx, InvariantChecker& out) const override {
    const SecondLevelRob& second = *ctx.second;
    const bool two_level = ctx.scheme != RobScheme::kBaseline &&
                           ctx.scheme != RobScheme::kAdaptive;

    if (!two_level && second.owner() != SecondLevelRob::kNoOwner) {
      std::ostringstream os;
      os << rob_scheme_name(ctx.scheme) << " scheme must never allocate the shared "
         << "partition, but thread " << second.owner() << " owns it";
      out.violation(ctx.cycle, second.owner(), "rob2.ownership", os.str());
    }

    u32 holders = 0;
    for (ThreadId t = 0; t < ctx.num_threads; ++t) {
      const ReorderBuffer& rob = *ctx.robs[t];
      const u32 extra = rob.extra();
      if (extra == 0) continue;

      if (ctx.scheme == RobScheme::kBaseline) {
        std::ostringstream os;
        os << "baseline scheme granted " << extra << " extra entries";
        out.violation(ctx.cycle, t, "rob2.ownership", os.str());
        continue;
      }
      if (ctx.scheme == RobScheme::kAdaptive) {
        if (extra > ctx.adaptive_max_extra) {
          std::ostringstream os;
          os << "adaptive growth " << extra << " exceeds bound " << ctx.adaptive_max_extra;
          out.violation(ctx.cycle, t, "rob2.ownership", os.str());
        }
        continue;  // private growth: no shared-partition requirements
      }

      ++holders;
      if (!second.owned_by(t)) {
        std::ostringstream os;
        os << "holds " << extra << " extra entries but the partition owner is "
           << (second.owner() == SecondLevelRob::kNoOwner
                   ? std::string("nobody")
                   : std::to_string(second.owner()));
        out.violation(ctx.cycle, t, "rob2.ownership", os.str());
        continue;
      }
      if (extra != second.entries()) {
        std::ostringstream os;
        os << "granted " << extra << " of " << second.entries()
           << " entries; the partition is allocated as an atomic unit";
        out.violation(ctx.cycle, t, "rob2.ownership", os.str());
      }
      check_trigger(ctx, t, out);
    }

    if (holders > 1) {
      std::ostringstream os;
      os << holders << " threads hold second-level capacity simultaneously";
      out.violation(ctx.cycle, kNoThread, "rob2.ownership", os.str());
    }
  }

 private:
  /// The holder's grant must still be justified: the trigger load registered
  /// at allocation exists in its window and is an un-serviced correct-path
  /// L2 miss. (After the fill, the controller revokes the grant in the same
  /// cycle's policy tick, so at the audit point — end of tick — a granted
  /// window without a live trigger is a leak.)
  static void check_trigger(const AuditContext& ctx, ThreadId t, InvariantChecker& out) {
    const TwoLevelRobController& ctrl = *ctx.ctrl;
    if (!ctrl.audit_has_trigger(t)) {
      out.violation(ctx.cycle, t, "rob2.trigger",
                    "extra capacity granted with no justifying miss registered");
      return;
    }
    const u64 tseq = ctrl.audit_trigger_tseq(t);
    const DynInst* load = ctx.robs[t]->find(tseq);
    std::ostringstream os;
    if (load == nullptr) {
      os << "trigger load tseq " << tseq << " is no longer in the window";
    } else if (!load->is_load() || !load->is_l2_miss || load->wrong_path) {
      os << "trigger tseq " << tseq << " is not a correct-path L2-missing load";
    } else if (load->executed) {
      os << "trigger load tseq " << tseq
         << " already completed; the grant should have been revoked";
    } else {
      return;  // justified
    }
    out.violation(ctx.cycle, t, "rob2.trigger", os.str());
  }
};

}  // namespace

std::unique_ptr<InvariantCheck> make_second_level_check() {
  return std::make_unique<SecondLevelCheck>();
}

}  // namespace tlrob
