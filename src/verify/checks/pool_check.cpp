// DynInst pool liveness (cheap) and event-wheel conservation (full).
//
// The in-flight windows live in fixed ring slabs (RingDeque) and every other
// structure — issue queue, LSQ — holds raw pointers into them. A commit,
// squash or un-dispatch that recycles a slot while some structure still
// points at it is the exact class of bug the ring design makes possible and
// a deque would have hidden behind allocator luck: the stale pointer keeps
// reading plausible (now someone else's) instruction state. PoolCheck proves
// after every audited cycle that each held pointer is a *live* slot of the
// owning thread's slab — neither foreign storage nor recycled.
//
// EventWheelCheck recounts the calendar wheel: the events physically present
// in its slots must match its pending counter, and schedule/process totals
// must account for every event exactly once — a wheel that drops or
// duplicates a wakeup produces a deadlocked or double-completed instruction
// far downstream of the actual bug.
#include <sstream>

#include "pipeline/issue_queue.hpp"
#include "pipeline/lsq.hpp"
#include "rob/rob.hpp"
#include "sim/event_wheel.hpp"
#include "verify/checks/checks.hpp"

namespace tlrob {
namespace {

class PoolCheck final : public InvariantCheck {
 public:
  const char* id() const override { return "pool.liveness"; }
  Tier tier() const override { return Tier::kCheap; }

  void run(const AuditContext& ctx, InvariantChecker& out) const override {
    const IssueQueue& iq = *ctx.iq;
    for (u32 i = 0; i < iq.capacity(); ++i) {
      const DynInst* d = iq.slot(i);
      if (d == nullptr) continue;
      if (d->tid >= ctx.num_threads || !ctx.robs[d->tid]->owns(d)) {
        std::ostringstream os;
        os << "IQ slot " << i << " points outside every live ROB slab window";
        out.violation(ctx.cycle, d->tid < ctx.num_threads ? d->tid : kNoThread,
                      "pool.liveness", os.str());
      }
    }
    for (ThreadId t = 0; t < ctx.num_threads; ++t) {
      const ReorderBuffer& rob = *ctx.robs[t];
      ctx.lsqs[t]->for_each([&](const DynInst& e) {
        if (!rob.owns(&e)) {
          std::ostringstream os;
          os << "LSQ entry tseq " << e.tseq
             << " points at a recycled or foreign ROB slot";
          out.violation(ctx.cycle, t, "pool.liveness", os.str());
        }
      });
    }
  }
};

class EventWheelCheck final : public InvariantCheck {
 public:
  const char* id() const override { return "events.wheel"; }
  Tier tier() const override { return Tier::kFull; }

  void run(const AuditContext& ctx, InvariantChecker& out) const override {
    if (ctx.wheel == nullptr) return;  // context built without a core
    if (!ctx.wheel->audit_consistent()) {
      std::ostringstream os;
      os << "wheel accounting broken: pending=" << ctx.wheel->pending()
         << " scheduled=" << ctx.wheel->scheduled_total()
         << " processed=" << ctx.wheel->processed_total()
         << " (slot recount disagrees — an event was dropped or duplicated)";
      out.violation(ctx.cycle, kNoThread, "events.wheel", os.str());
    }
  }
};

}  // namespace

std::unique_ptr<InvariantCheck> make_pool_check() {
  return std::make_unique<PoolCheck>();
}

std::unique_ptr<InvariantCheck> make_event_wheel_check() {
  return std::make_unique<EventWheelCheck>();
}

}  // namespace tlrob
