// ROB structural integrity (cheap tier).
//
// The rest of the simulator leans on these properties without re-verifying
// them: find() binary-searches assuming the window is tseq-sorted, the DoD
// counter assumes deque position == age, and commit assumes the head is the
// oldest in-flight instruction. A refactor that breaks any of them corrupts
// results silently — IPC still comes out, just wrong.
#include <sstream>

#include "rob/allocation_policy.hpp"
#include "rob/rob.hpp"
#include "rob/two_level_rob.hpp"
#include "verify/checks/checks.hpp"

namespace tlrob {
namespace {

class RobOrderCheck final : public InvariantCheck {
 public:
  const char* id() const override { return "rob.order"; }
  Tier tier() const override { return Tier::kCheap; }

  void run(const AuditContext& ctx, InvariantChecker& out) const override {
    // Occupancy may legitimately exceed the *currently granted* capacity
    // while a thread drains back into its first level after a revocation
    // (grant_extra(0) shrinks capacity immediately; commit drains the
    // excess). The hard ceiling is the largest window any grant allows.
    u32 max_grant = 0;
    if (ctx.scheme == RobScheme::kAdaptive)
      max_grant = ctx.adaptive_max_extra;
    else if (ctx.scheme != RobScheme::kBaseline)
      max_grant = ctx.second->entries();

    for (ThreadId t = 0; t < ctx.num_threads; ++t) {
      const ReorderBuffer& rob = *ctx.robs[t];
      if (rob.size() > rob.base_capacity() + max_grant) {
        std::ostringstream os;
        os << "occupancy " << rob.size() << " exceeds base capacity "
           << rob.base_capacity() << " + largest possible grant " << max_grant;
        out.violation(ctx.cycle, t, "rob.capacity", os.str());
      }

      // The head must be younger than everything this thread already
      // committed (head-oldest + in-order commit stitched together).
      const u64 committed = ctx.last_committed == nullptr ? 0 : (*ctx.last_committed)[t];
      u64 prev_tseq = 0;
      bool first = true;
      rob.for_each([&](const DynInst& d) {
        if (d.tid != t) {
          std::ostringstream os;
          os << "entry tseq " << d.tseq << " belongs to thread " << d.tid;
          out.violation(ctx.cycle, t, "rob.order", os.str());
        }
        if (!d.dispatched) {
          std::ostringstream os;
          os << "entry tseq " << d.tseq << " is in the window but not dispatched";
          out.violation(ctx.cycle, t, "rob.order", os.str());
        }
        const u64 floor = first ? committed : prev_tseq;
        if (d.tseq <= floor) {
          std::ostringstream os;
          os << "entry tseq " << d.tseq << " not older->younger after "
             << (first ? "committed tseq " : "predecessor tseq ") << floor;
          out.violation(ctx.cycle, t, "rob.order", os.str());
        }
        prev_tseq = d.tseq;
        first = false;
      });
    }
  }
};

}  // namespace

std::unique_ptr<InvariantCheck> make_rob_order_check() {
  return std::make_unique<RobOrderCheck>();
}

}  // namespace tlrob
