// Shared LLC/DRAM backend consistency (cheap).
//
// CMP machines couple cores only through SharedMemory, so a bookkeeping bug
// there corrupts every core at once while each core's private structures
// still audit clean. The backend carries its own self-check (MSHR-pool
// bound, DRAM row-outcome conservation, closed-page bank state); this check
// surfaces it through the standard audit path so CMP fuzz runs abort with a
// structured report instead of silently drifting.
#include "memory/shared_memory.hpp"
#include "verify/checks/checks.hpp"

namespace tlrob {
namespace {

class SharedMemoryCheck final : public InvariantCheck {
 public:
  const char* id() const override { return "shared.memory"; }
  Tier tier() const override { return Tier::kCheap; }

  void run(const AuditContext& ctx, InvariantChecker& out) const override {
    if (ctx.shared == nullptr) return;
    // Ordered read: under the parallel CMP engine this waits until the
    // backend is exactly in the state the serial engine would audit here.
    std::string detail = ctx.shared->audit_check_at(ctx.core_id);
    if (!detail.empty())
      out.violation(ctx.cycle, kNoThread, "shared.memory", std::move(detail));
  }
};

}  // namespace

std::unique_ptr<InvariantCheck> make_shared_memory_check() {
  return std::make_unique<SharedMemoryCheck>();
}

}  // namespace tlrob
