// DoD ground truth (full tier).
//
// Every allocation decision in the two-level schemes rests on the counted
// degree of dependence: the number of not-yet-executed instructions in the
// first-level window younger than the missing load
// (ReorderBuffer::count_unexecuted_younger). This check recomputes that
// number from architectural first principles — age defined by tseq, not by
// container position, oldest `base_capacity` younger instructions — for
// every outstanding correct-path L2 miss and compares. It also verifies the
// two inputs the counter depends on:
//
//   * the "result valid" bit (DynInst::executed) is consistent with
//     completion bookkeeping, and
//   * the per-thread outstanding-L1/L2 counters — which gate STALL/FLUSH
//     and DCRA classification — equal a recount of the counted-miss flags
//     in the window.
#include <algorithm>
#include <sstream>
#include <vector>

#include "rob/rob.hpp"
#include "verify/checks/checks.hpp"

namespace tlrob {
namespace {

class DodRecountCheck final : public InvariantCheck {
 public:
  const char* id() const override { return "dod.recount"; }
  Tier tier() const override { return Tier::kFull; }

  void run(const AuditContext& ctx, InvariantChecker& out) const override {
    for (ThreadId t = 0; t < ctx.num_threads; ++t) {
      const ReorderBuffer& rob = *ctx.robs[t];
      u32 l1_counted = 0;
      u32 l2_counted = 0;

      rob.for_each([&](const DynInst& d) {
        if (d.l1_counted) ++l1_counted;
        if (d.l2_counted) ++l2_counted;
        if (d.executed && d.complete_cycle == kNeverCycle) {
          std::ostringstream os;
          os << "entry tseq " << d.tseq
             << " has the result-valid bit set but never completed "
             << "(the DoD counter would under-count it)";
          out.violation(ctx.cycle, t, "dod.execflag", os.str());
        }
        if (d.is_load() && d.is_l2_miss && !d.executed && !d.wrong_path)
          check_count(ctx, t, rob, d, out);
      });

      if (l1_counted != ctx.outstanding_l1[t] || l2_counted != ctx.outstanding_l2[t]) {
        std::ostringstream os;
        os << "outstanding counters (l1=" << ctx.outstanding_l1[t]
           << ", l2=" << ctx.outstanding_l2[t] << ") != window recount (l1=" << l1_counted
           << ", l2=" << l2_counted << ")";
        out.violation(ctx.cycle, t, "dod.outstanding", os.str());
      }
    }
  }

 private:
  static void check_count(const AuditContext& ctx, ThreadId t, const ReorderBuffer& rob,
                          const DynInst& load, InvariantChecker& out) {
    const u32 window = rob.base_capacity();
    const u32 proxy = rob.count_unexecuted_younger(load.tseq, window);

    // Independent recount: order by architectural age (tseq), not by
    // container position, then count the unexecuted among the oldest
    // `window` younger instructions.
    std::vector<const DynInst*> younger;
    rob.for_each([&](const DynInst& d) {
      if (d.tseq > load.tseq) younger.push_back(&d);
    });
    std::sort(younger.begin(), younger.end(),
              [](const DynInst* a, const DynInst* b) { return a->tseq < b->tseq; });
    if (younger.size() > window) younger.resize(window);
    u32 truth = 0;
    for (const DynInst* d : younger)
      if (!d->executed) ++truth;

    if (proxy != truth) {
      std::ostringstream os;
      os << "DoD counter for load tseq " << load.tseq << " returned " << proxy
         << ", ground-truth recount is " << truth << " (" << younger.size()
         << " younger in window " << window << ")";
      out.violation(ctx.cycle, t, "dod.recount", os.str());
    }
  }
};

}  // namespace

std::unique_ptr<InvariantCheck> make_dod_recount_check() {
  return std::make_unique<DodRecountCheck>();
}

}  // namespace tlrob
