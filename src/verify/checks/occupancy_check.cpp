// Shared-structure occupancy accounting (cheap + full tiers).
//
// DCRA classification, ICOUNT ordering and every dispatch gate read the
// issue queue's per-thread occupancy, the LSQ's free count and the rename
// unit's free lists. A slot leaked or double-freed in any of them does not
// crash — it quietly re-partitions the machine between threads, which is
// precisely the class of bug an IPC diff cannot localise.
//
// IqCountsCheck (cheap) recounts the issue queue's slots against its
// counters every audited cycle. OccupancyCheck (full) does the expensive
// cross-structure work: IQ<->ROB and LSQ<->ROB pointer identity and the
// rename unit's register-conservation audit.
#include <sstream>

#include "pipeline/issue_queue.hpp"
#include "pipeline/lsq.hpp"
#include "pipeline/rename.hpp"
#include "rob/rob.hpp"
#include "verify/checks/checks.hpp"

namespace tlrob {
namespace {

class IqCountsCheck final : public InvariantCheck {
 public:
  const char* id() const override { return "iq.counts"; }
  Tier tier() const override { return Tier::kCheap; }

  void run(const AuditContext& ctx, InvariantChecker& out) const override {
    const IssueQueue& iq = *ctx.iq;
    u32 occupied = 0;
    // Scratch reused across cycles: this check runs every audited cycle and
    // must not allocate on the clean path.
    per_thread_.assign(ctx.num_threads, 0);
    std::vector<u32>& per_thread = per_thread_;
    for (u32 i = 0; i < iq.capacity(); ++i) {
      const DynInst* d = iq.slot(i);
      if (d == nullptr) continue;
      ++occupied;
      if (d->tid < ctx.num_threads) ++per_thread[d->tid];
      if (!d->in_iq || d->iq_slot != static_cast<int>(i)) {
        std::ostringstream os;
        os << "slot " << i << " holds tseq " << d->tseq << " whose back-reference is (in_iq="
           << d->in_iq << ", iq_slot=" << d->iq_slot << ")";
        out.violation(ctx.cycle, d->tid, "iq.counts", os.str());
      }
    }
    if (occupied != iq.occupancy()) {
      std::ostringstream os;
      os << "free-count says " << iq.occupancy() << " occupied, slots hold " << occupied;
      out.violation(ctx.cycle, kNoThread, "iq.counts", os.str());
    }
    for (ThreadId t = 0; t < ctx.num_threads; ++t) {
      if (per_thread[t] != iq.occupancy(t)) {
        std::ostringstream os;
        os << "per-thread counter says " << iq.occupancy(t) << ", slots hold "
           << per_thread[t];
        out.violation(ctx.cycle, t, "iq.counts", os.str());
      }
    }
  }

 private:
  mutable std::vector<u32> per_thread_;
};

class OccupancyCheck final : public InvariantCheck {
 public:
  const char* id() const override { return "occupancy.cross"; }
  Tier tier() const override { return Tier::kFull; }

  void run(const AuditContext& ctx, InvariantChecker& out) const override {
    check_iq_rob(ctx, out);
    for (ThreadId t = 0; t < ctx.num_threads; ++t) check_lsq(ctx, t, out);
    for (const std::string& issue : ctx.rename->audit_integrity())
      out.violation(ctx.cycle, kNoThread, "rename.accounting", issue);
  }

 private:
  static void check_iq_rob(const AuditContext& ctx, InvariantChecker& out) {
    const IssueQueue& iq = *ctx.iq;
    // Forward: every occupied slot points at the live ROB entry of its
    // (tid, tseq) — not a stale pointer into a recycled deque node.
    for (u32 i = 0; i < iq.capacity(); ++i) {
      const DynInst* d = iq.slot(i);
      if (d == nullptr || d->tid >= ctx.num_threads) continue;
      if (ctx.robs[d->tid]->find(d->tseq) != d) {
        std::ostringstream os;
        os << "slot " << i << " points at tseq " << d->tseq
           << " which is not (or no longer) that thread's ROB entry";
        out.violation(ctx.cycle, d->tid, "iq.rob_identity", os.str());
      }
    }
    // Backward: every window entry claiming a slot actually occupies it.
    for (ThreadId t = 0; t < ctx.num_threads; ++t) {
      u32 in_iq = 0;
      ctx.robs[t]->for_each([&](const DynInst& d) {
        if (!d.in_iq) return;
        ++in_iq;
        if (d.iq_slot < 0 || static_cast<u32>(d.iq_slot) >= iq.capacity() ||
            iq.slot(static_cast<u32>(d.iq_slot)) != &d) {
          std::ostringstream os;
          os << "entry tseq " << d.tseq << " claims IQ slot " << d.iq_slot
             << " but does not occupy it";
          out.violation(ctx.cycle, t, "iq.rob_identity", os.str());
        }
      });
      if (in_iq != iq.occupancy(t)) {
        std::ostringstream os;
        os << in_iq << " window entries hold IQ slots, per-thread counter says "
           << iq.occupancy(t);
        out.violation(ctx.cycle, t, "iq.rob_identity", os.str());
      }
    }
  }

  static void check_lsq(const AuditContext& ctx, ThreadId t, InvariantChecker& out) {
    const LoadStoreQueue& lsq = *ctx.lsqs[t];
    const ReorderBuffer& rob = *ctx.robs[t];

    u32 allocated = 0;
    rob.for_each([&](const DynInst& d) {
      if (d.lsq_allocated) ++allocated;
      if (d.lsq_allocated && !d.is_mem()) {
        std::ostringstream os;
        os << "non-memory entry tseq " << d.tseq << " holds an LSQ slot";
        out.violation(ctx.cycle, t, "lsq.occupancy", os.str());
      }
    });
    if (allocated != lsq.occupancy()) {
      std::ostringstream os;
      os << allocated << " window entries are lsq_allocated, queue holds "
         << lsq.occupancy() << " (leak or double-free)";
      out.violation(ctx.cycle, t, "lsq.occupancy", os.str());
    }

    u64 prev_tseq = 0;
    lsq.for_each([&](const DynInst& e) {
      if (e.tseq <= prev_tseq) {
        std::ostringstream os;
        os << "entry tseq " << e.tseq << " out of program order after " << prev_tseq;
        out.violation(ctx.cycle, t, "lsq.occupancy", os.str());
      }
      prev_tseq = e.tseq;
      if (rob.find(e.tseq) != &e) {
        std::ostringstream os;
        os << "entry tseq " << e.tseq << " is not (or no longer) the live ROB entry";
        out.violation(ctx.cycle, t, "lsq.occupancy", os.str());
      }
    });
  }
};

}  // namespace

std::unique_ptr<InvariantCheck> make_iq_counts_check() {
  return std::make_unique<IqCountsCheck>();
}

std::unique_ptr<InvariantCheck> make_occupancy_check() {
  return std::make_unique<OccupancyCheck>();
}

}  // namespace tlrob
