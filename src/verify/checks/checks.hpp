// Factories for the standard invariant-check set. Each lives in its own
// translation unit under src/verify/checks/.
#pragma once

#include <memory>

#include "verify/invariant_checker.hpp"

namespace tlrob {

/// ROB structural integrity (cheap): per-thread windows age-ordered with the
/// head oldest, entries owned by the right thread and dispatched, occupancy
/// within the granted capacity, head older than nothing already committed.
std::unique_ptr<InvariantCheck> make_rob_order_check();

/// Second-level partition ownership (cheap): the shared partition is held by
/// at most one thread; extra capacity is granted only to the owner, only
/// whole (the paper's atomic-unit allocation), and only while the justifying
/// L2-missing load is still outstanding. Scheme-aware: baseline grants
/// nothing, kAdaptive grows private ROBs without touching the shared
/// partition.
std::unique_ptr<InvariantCheck> make_second_level_check();

/// Shared-structure occupancy counts (cheap): the issue queue's free count
/// and per-thread occupancy equal a recount of its slots (DCRA and ICOUNT
/// steer fetch off these numbers — a leak silently rebalances every
/// policy).
std::unique_ptr<InvariantCheck> make_iq_counts_check();

/// Cross-structure identity (full): every in_iq ROB entry occupies exactly
/// its recorded IQ slot and vice versa; each LSQ entry points at the live
/// ROB entry of its (tid, tseq) and the queue is in program order with
/// occupancy equal to the window's lsq_allocated count; the rename unit's
/// free lists and per-thread use counters account for every renameable
/// physical register exactly once (no leak, no double-free).
std::unique_ptr<InvariantCheck> make_occupancy_check();

/// DoD ground truth (full): the paper's counted DoD
/// (ReorderBuffer::count_unexecuted_younger) equals an independent recount
/// over the window for every outstanding L2-missing load; the executed bit
/// the counter scans is consistent with completion bookkeeping; the
/// per-thread outstanding-L1/L2 counters equal the number of counted misses
/// in the window.
std::unique_ptr<InvariantCheck> make_dod_recount_check();

/// DynInst pool liveness (cheap): every pointer the issue queue and LSQs
/// hold addresses a live slot of the owning thread's ROB ring slab — never
/// recycled storage (the failure mode fixed slabs make possible and heap
/// allocation hid behind allocator luck).
std::unique_ptr<InvariantCheck> make_pool_check();

/// Event-wheel conservation (full): the calendar wheel's pending counter
/// equals a physical recount of its slots and the schedule/process totals
/// account for every event exactly once (no dropped or duplicated wakeups).
std::unique_ptr<InvariantCheck> make_event_wheel_check();

/// Shared LLC/DRAM backend consistency (cheap; no-op without a backend):
/// the MSHR pool occupancy stays within its bound and the DRAM bank/row
/// bookkeeping accounts for every request exactly once
/// (SharedMemory::audit_check).
std::unique_ptr<InvariantCheck> make_shared_memory_check();

}  // namespace tlrob
