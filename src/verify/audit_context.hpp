// Invariant-audit configuration and the read-only view of live pipeline
// state that checks run against.
//
// The audit subsystem makes the simulator's microarchitectural contracts
// (DESIGN.md §"Invariants & auditing") executable: the core hands every
// registered check an AuditContext each cycle and the checks recount /
// cross-reference the live structures. Everything here is compiled in
// unconditionally; the AuditLevel decides at runtime how much work is done,
// so release builds can leave the cheap tier on permanently (CI does).
//
// Dependency note: this header is included by sim/presets.hpp (MachineConfig
// embeds an AuditConfig), so it must not pull in pipeline headers — the
// structures referenced by AuditContext are forward-declared and only the
// check implementations include their full definitions.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace tlrob {

class ReorderBuffer;
class LoadStoreQueue;
class IssueQueue;
class RenameUnit;
class SecondLevelRob;
class SharedMemory;
class TwoLevelRobController;
class EventWheel;
enum class RobScheme : u8;

/// How much auditing runs.
///   kOff:   no checks at all (beyond the per-event hooks being no-ops).
///   kCheap: O(window) structural checks every `cheap_interval` cycles —
///           cheap enough to leave on in CI (<10% throughput, see
///           bench_sim_speed).
///   kFull:  kCheap plus the ground-truth recounts (DoD, cross-structure
///           pointer identity, rename free-list integrity) every
///           `full_interval` cycles.
enum class AuditLevel : u8 { kOff, kCheap, kFull };

const char* audit_level_name(AuditLevel level);

/// Parses "off" | "cheap" | "full" (throws std::invalid_argument otherwise).
AuditLevel parse_audit_level(const std::string& name);

struct AuditConfig {
  AuditLevel level = AuditLevel::kOff;
  /// Cheap-tier period in cycles (1 = every cycle). The default keeps the
  /// cheap tier under 10% simulation-throughput overhead (bench_sim_speed's
  /// audit-overhead benchmarks measure this) while still catching a
  /// corruption within 8 cycles of it happening.
  Cycle cheap_interval = 8;
  /// Full-recount period in cycles (kFull only).
  Cycle full_interval = 64;
  /// Throw AuditFailure (with the structured report) on the first violation
  /// instead of only recording it. CI runs with this on so a scheme
  /// regression fails the suite even when the IPC numbers still look sane.
  bool abort_on_violation = false;
  /// Violations kept with full detail; later ones are only counted.
  u32 max_recorded = 64;
};

/// The process-default audit configuration: level from $TLROB_AUDIT
/// (off|cheap|full, default off), abort-on-violation enabled whenever a
/// level is set unless $TLROB_AUDIT_ABORT=0. MachineConfig uses this as its
/// initial value, which is how `ctest` runs pick up auditing without every
/// test constructing it explicitly.
AuditConfig default_audit_config();

/// Read-only view of the live pipeline handed to every check. Built once by
/// the core (the pointers are stable for its lifetime); only `cycle` and the
/// per-thread scalar snapshots are refreshed per audit.
struct AuditContext {
  Cycle cycle = 0;
  u32 num_threads = 0;
  RobScheme scheme{};
  u32 adaptive_max_extra = 0;  // kAdaptive growth bound (scheme-aware checks)

  std::vector<const ReorderBuffer*> robs;      // [thread]
  std::vector<const LoadStoreQueue*> lsqs;     // [thread]
  const IssueQueue* iq = nullptr;
  const RenameUnit* rename = nullptr;
  const SecondLevelRob* second = nullptr;
  const TwoLevelRobController* ctrl = nullptr;
  const EventWheel* wheel = nullptr;
  /// CMP machines: the machine-wide LLC/DRAM backend behind this core's L2
  /// (null on single-core configurations without an LLC — the shared-memory
  /// check is then a no-op).
  const SharedMemory* shared = nullptr;
  /// Index of the core this context belongs to within its CmpMachine (0 on
  /// single-core machines). The shared-memory check passes it to
  /// SharedMemory::audit_check_at so that, under the parallel engine, the
  /// backend is audited at this core's position in the deterministic order.
  u32 core_id = 0;

  /// Per-thread outstanding-miss counters as the core sees them (the checks
  /// recount the flags in the window against these).
  std::vector<u32> outstanding_l1;  // [thread]
  std::vector<u32> outstanding_l2;  // [thread]

  /// tseq of the last instruction each thread committed (0 = none yet);
  /// maintained by InvariantChecker::on_commit.
  const std::vector<u64>* last_committed = nullptr;
};

}  // namespace tlrob
