// Outcome generators for conditional branches in synthetic programs.
//
// Loop back-edges dominate real codes and are what makes gshare effective;
// biased data-dependent branches supply the residual mispredictions. Only
// correct-path execution consults these generators (wrong-path instructions
// never advance architectural state), so no checkpointing is needed.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace tlrob {

enum class BranchPattern : u8 {
  kLoop,      // taken (trip-1) times, then not-taken once, repeating
  kBiased,    // independent Bernoulli with probability p_taken
  kPeriodic,  // deterministic period: taken except every `period`-th time
};

struct BranchGenSpec {
  BranchPattern pattern = BranchPattern::kLoop;
  u32 trip = 16;          // kLoop / kPeriodic period
  double p_taken = 0.5;   // kBiased
  u64 seed = 1;
};

class BranchGen {
 public:
  BranchGen(const BranchGenSpec& spec, u64 thread_salt);

  /// Produces the next outcome (true = taken) and advances.
  bool next();

  const BranchGenSpec& spec() const { return spec_; }

 private:
  BranchGenSpec spec_;
  u32 count_ = 0;
  Rng rng_;
};

}  // namespace tlrob
