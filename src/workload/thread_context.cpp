#include "workload/thread_context.hpp"

#include <stdexcept>

namespace tlrob {

ThreadContext::ThreadContext(const Benchmark& bench, Addr addr_space_base, u64 salt)
    : bench_(&bench), addr_base_(addr_space_base) {
  if (!bench.program || !bench.program->finalized())
    throw std::logic_error("ThreadContext: benchmark program missing or not finalized");
  if (bench.agens.size() != bench.program->num_address_generators() ||
      bench.bgens.size() != bench.program->num_branch_generators())
    throw std::logic_error("ThreadContext: generator spec count mismatch for " + bench.name);
  agens_.reserve(bench.agens.size());
  for (const auto& spec : bench.agens) agens_.emplace_back(spec, addr_space_base, salt);
  bgens_.reserve(bench.bgens.size());
  for (const auto& spec : bench.bgens) bgens_.emplace_back(spec, salt);
  ret_stack_.reserve(64);
}

void ThreadContext::refill() {
  for (u32 i = 0; i < kBatch; ++i) batch_[i] = produce();
  batch_pos_ = 0;
  batch_len_ = kBatch;
}

ArchOp ThreadContext::produce() {
  const Program& prog = program();
  const BasicBlock& bb = prog.block(block_);
  const StaticInst& si = bb.insts[index_];

  ArchOp op;
  op.si = &si;
  op.pc = si.pc;
  op.block = block_;

  if (is_memory(si.op)) op.mem_addr = agens_[static_cast<u32>(si.agen_id)].next();

  // Determine the next architectural position.
  u32 next_block = block_;
  u32 next_index = index_ + 1;
  const bool at_block_end = (next_index == bb.insts.size());

  switch (si.op) {
    case OpClass::kBranch: {
      op.taken = bgens_[static_cast<u32>(si.bgen_id)].next();
      next_block = op.taken ? si.taken_block : bb.fallthrough;
      next_index = 0;
      break;
    }
    case OpClass::kJump: {
      op.taken = true;
      next_block = si.taken_block;
      next_index = 0;
      break;
    }
    case OpClass::kCall: {
      op.taken = true;
      // Resume at the fall-through block after the callee returns. Calls
      // terminate their block (enforced by Program::finalize), so the resume
      // point is always a block start.
      ret_stack_.push_back({bb.fallthrough});
      if (ret_stack_.size() > 1024) ret_stack_.erase(ret_stack_.begin());  // runaway guard
      next_block = si.taken_block;
      next_index = 0;
      break;
    }
    case OpClass::kReturn: {
      op.taken = true;
      if (ret_stack_.empty()) {
        next_block = 0;  // defensive: degenerate programs return to entry
      } else {
        next_block = ret_stack_.back().block;
        ret_stack_.pop_back();
      }
      next_index = 0;
      break;
    }
    default: {
      if (at_block_end) {
        next_block = bb.fallthrough;
        next_index = 0;
      }
      break;
    }
  }

  if (is_control(si.op)) op.target_pc = block_pc(next_block);

  block_ = next_block;
  index_ = next_index;
  return op;
}

}  // namespace tlrob
