#include "workload/branch_gen.hpp"

#include <algorithm>

namespace tlrob {

BranchGen::BranchGen(const BranchGenSpec& spec, u64 thread_salt)
    : spec_(spec), rng_(spec.seed * 0xd1342543de82ef95ULL + thread_salt) {
  spec_.trip = std::max<u32>(1, spec_.trip);
}

bool BranchGen::next() {
  switch (spec_.pattern) {
    case BranchPattern::kLoop:
    case BranchPattern::kPeriodic: {
      const bool taken = (count_ + 1) % spec_.trip != 0;
      ++count_;
      return taken;
    }
    case BranchPattern::kBiased:
      return rng_.chance(spec_.p_taken);
  }
  return false;
}

}  // namespace tlrob
