#include "workload/addr_gen.hpp"

#include <algorithm>

namespace tlrob {
namespace {

constexpr u64 kLineBytes = 64;

// Chooses a multiplier coprime with `n` so that idx -> (idx*mult + 1) % n
// cycles through all residues for power-of-two n (odd multiplier), giving a
// full-cycle pseudo-random line permutation for pointer chasing.
u64 choose_multiplier(u64 n, Rng& rng) {
  if (n <= 2) return 1;
  u64 m = rng.below(n) | 1;  // odd
  // For power-of-two n an odd multiplier is always coprime; for other n,
  // nudge until gcd == 1.
  auto gcd = [](u64 a, u64 b) {
    while (b != 0) {
      u64 t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  while (gcd(m, n) != 1) m += 2;
  return m % n == 0 ? 1 : m;
}

}  // namespace

AddrGen::AddrGen(const AddrGenSpec& spec, Addr thread_base, u64 thread_salt)
    : spec_(spec),
      base_(thread_base + spec.base),
      rng_(spec.seed * 0x9e3779b97f4a7c15ULL + thread_salt) {
  lines_ = std::max<u64>(1, spec_.region_bytes / kLineBytes);
  lcg_mult_ = choose_multiplier(lines_, rng_);
  pos_ = rng_.below(lines_);
}

Addr AddrGen::next() {
  const u64 region = std::max<u64>(spec_.region_bytes, spec_.access_size);
  switch (spec_.pattern) {
    case AddrPattern::kStride: {
      const u64 offset = pos_ % region;
      pos_ += static_cast<u64>(spec_.stride);
      return base_ + offset;
    }
    case AddrPattern::kRandom: {
      u64 span = region;
      if (spec_.hot_fraction > 0.0 && spec_.hot_bytes > 0 && rng_.chance(spec_.hot_fraction))
        span = std::min<u64>(region, spec_.hot_bytes);
      const u64 slots = std::max<u64>(1, span / spec_.access_size);
      return base_ + rng_.below(slots) * spec_.access_size;
    }
    case AddrPattern::kPointerChase: {
      const u32 revisits = std::max<u32>(1, spec_.line_revisits);
      const u64 field = visit_ % revisits;
      if (field == 0) pos_ = (pos_ * lcg_mult_ + 1) % lines_;
      ++visit_;
      return base_ + pos_ * kLineBytes + field * spec_.access_size % kLineBytes;
    }
    case AddrPattern::kStack: {
      const u64 slots = std::max<u64>(1, region / spec_.access_size);
      pos_ = (pos_ + 1) % slots;
      return base_ + pos_ * spec_.access_size;
    }
  }
  return base_;
}

}  // namespace tlrob
