// The 20 SPEC CPU2000-named synthetic benchmarks used by the paper's mixes
// (Table 2). Each is an instantiation of a kernel archetype (kernels.hpp)
// with parameters chosen to reproduce the benchmark's timing-relevant
// character: memory-bound vs execution-bound, dependence shape, FP/int mix.
//
// These are *synthetic stand-ins*, not the SPEC programs: we have neither the
// SPEC sources/binaries nor an Alpha front end. What the paper's evaluation
// actually consumes from SPEC is (a) the single-thread ILP class of each
// workload and (b) the DoD / miss-rate structure of its loads — both of which
// these profiles reproduce by construction and which the test suite checks.
#pragma once

#include <string>
#include <vector>

#include "workload/thread_context.hpp"

namespace tlrob {

/// All 20 benchmarks, in a stable order. Built once, cached.
const std::vector<Benchmark>& spec_benchmarks();

/// Lookup by SPEC name ("art", "mcf", ...). Throws std::out_of_range if the
/// name is unknown.
const Benchmark& spec_benchmark(const std::string& name);

/// True if `name` is one of the 20 profiles.
bool is_spec_benchmark(const std::string& name);

}  // namespace tlrob
