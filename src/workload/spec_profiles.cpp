#include "workload/spec_profiles.hpp"

#include <stdexcept>

#include "workload/kernels.hpp"

namespace tlrob {
namespace {

std::vector<Benchmark> build_all() {
  std::vector<Benchmark> v;

  // --- Memory-bound (low ILP) -------------------------------------------
  {
    PointerChaseParams p;  // molecular dynamics, neighbour-list chasing
    p.working_set_bytes = 6 << 20;
    p.chains = 2;
    p.loads_per_chain_iter = 2;
    p.node_fields = 4;
    p.dep_ops_per_load = 4;
    p.hot_loads_per_iter = 4;
    p.fp = true;
    v.push_back(make_pointer_chase("ammp", p, IlpClass::kLow));
  }
  {
    RandomGatherParams p;  // neural-net weights, scattered reads
    p.working_set_bytes = 8 << 20;
    p.reuse_fraction = 0.75;
    p.reuse_bytes = 1280 << 10;
    p.loads_per_iter = 1;
    p.hot_loads_per_iter = 6;
    p.dep_ops_per_load = 6;
    p.indep_ops_per_iter = 12;
    p.fp = true;
    v.push_back(make_random_gather("art", p, IlpClass::kLow));
  }
  {
    StreamParams p;  // multigrid stencil sweeps
    p.working_set_bytes = 6 << 20;
    p.reuse_bytes = 1 << 20;
    p.streams = 3;
    p.fp_ops_per_elem = 4;
    v.push_back(make_stream("mgrid", p, IlpClass::kLow));
  }
  {
    StreamParams p;  // meso-scale atmospheric model
    p.working_set_bytes = 4 << 20;
    p.reuse_bytes = 896 << 10;
    p.streams = 2;
    p.fp_ops_per_elem = 5;
    v.push_back(make_stream("apsi", p, IlpClass::kLow));
  }
  {
    StreamParams p;  // shallow-water stencils
    p.working_set_bytes = 8 << 20;
    p.reuse_bytes = 1280 << 10;
    p.streams = 4;
    p.fp_ops_per_elem = 3;
    v.push_back(make_stream("swim", p, IlpClass::kLow));
  }
  {
    RandomGatherParams p;  // FFT-style scattered FP traffic
    p.working_set_bytes = 6 << 20;
    p.reuse_fraction = 0.7;
    p.reuse_bytes = 1 << 20;
    p.loads_per_iter = 1;
    p.hot_loads_per_iter = 6;
    p.dep_ops_per_load = 7;
    p.indep_ops_per_iter = 14;
    p.fp = true;
    v.push_back(make_random_gather("lucas", p, IlpClass::kLow));
  }
  {
    RandomGatherParams p;  // sparse-matrix earthquake simulation
    p.working_set_bytes = 6 << 20;
    p.reuse_fraction = 0.78;
    p.reuse_bytes = 1 << 20;
    p.loads_per_iter = 1;
    p.hot_loads_per_iter = 6;
    p.dep_ops_per_load = 5;
    p.indep_ops_per_iter = 12;
    p.fp = true;
    v.push_back(make_random_gather("equake", p, IlpClass::kLow));
  }
  {
    PointerChaseParams p;  // network-simplex arc traversal
    p.working_set_bytes = 12 << 20;
    p.chains = 2;
    p.loads_per_chain_iter = 1;
    p.node_fields = 2;
    p.dep_ops_per_load = 4;
    p.hot_loads_per_iter = 4;
    v.push_back(make_pointer_chase("mcf", p, IlpClass::kLow));
  }
  {
    PointerChaseParams p;  // place-and-route net lists
    p.working_set_bytes = 3 << 20;
    p.chains = 2;
    p.loads_per_chain_iter = 1;
    p.node_fields = 3;
    p.dep_ops_per_load = 4;
    p.hot_loads_per_iter = 3;
    v.push_back(make_pointer_chase("twolf", p, IlpClass::kLow));
  }
  {
    BranchyIntParams p;  // routing over a medium graph
    p.working_set_bytes = 6 << 20;
    p.cold_fraction = 0.18;
    p.loads_per_iter = 3;
    p.branches_per_iter = 2;
    p.branch_bias = 0.8;
    v.push_back(make_branchy_int("vpr", p, IlpClass::kLow));
  }

  // --- Medium ILP ---------------------------------------------------------
  {
    BranchyIntParams p;  // dictionary parsing, branchy with L2-resident data
    p.working_set_bytes = 2 << 20;
    p.cold_fraction = 0.03;
    p.loads_per_iter = 3;
    p.branches_per_iter = 3;
    p.branch_bias = 0.85;
    v.push_back(make_branchy_int("parser", p, IlpClass::kMid));
  }
  {
    BranchyIntParams p;  // OO database, call heavy
    p.working_set_bytes = 1 << 20;
    p.cold_fraction = 0.02;
    p.loads_per_iter = 3;
    p.branches_per_iter = 2;
    p.branch_bias = 0.9;
    p.use_call = true;
    v.push_back(make_branchy_int("vortex", p, IlpClass::kMid));
  }
  {
    BranchyIntParams p;  // group-theory interpreter
    p.working_set_bytes = 2 << 20;
    p.cold_fraction = 0.04;
    p.loads_per_iter = 3;
    p.branches_per_iter = 2;
    p.branch_bias = 0.88;
    v.push_back(make_branchy_int("gap", p, IlpClass::kMid));
  }
  {
    BranchyIntParams p;  // perl interpreter dispatch
    p.working_set_bytes = 1 << 20;
    p.cold_fraction = 0.03;
    p.loads_per_iter = 2;
    p.branches_per_iter = 3;
    p.branch_bias = 0.82;
    p.use_call = true;
    v.push_back(make_branchy_int("perlbmk", p, IlpClass::kMid));
  }
  {
    BranchyIntParams p;  // block-sorting compression
    p.working_set_bytes = 3 << 20;
    p.cold_fraction = 0.06;
    p.loads_per_iter = 3;
    p.branches_per_iter = 1;
    p.branch_bias = 0.75;
    v.push_back(make_branchy_int("bzip2", p, IlpClass::kMid));
  }
  {
    ComputeParams p;  // 3D graphics pipeline, FP heavy but cache resident
    p.chains = 5;
    p.chain_len = 4;
    p.fp_fraction = 0.7;
    p.hot_set_bytes = 64 << 10;
    v.push_back(make_compute("mesa", p, IlpClass::kMid));
  }
  {
    StreamParams p;  // QCD kernels over an L2-resident lattice
    p.working_set_bytes = 64 << 10;
    p.reuse_bytes = 192 << 10;
    p.streams = 3;
    p.fp_ops_per_elem = 4;
    v.push_back(make_stream("wupwise", p, IlpClass::kMid));
  }

  // --- Execution-bound (high ILP) ----------------------------------------
  {
    ComputeParams p;  // chess search: integer, cache resident
    p.chains = 6;
    p.chain_len = 4;
    p.fp_fraction = 0.0;
    p.hot_set_bytes = 16 << 10;
    v.push_back(make_compute("crafty", p, IlpClass::kHigh));
  }
  {
    ComputeParams p;  // probabilistic ray tracing
    p.chains = 6;
    p.chain_len = 4;
    p.fp_fraction = 0.5;
    p.hot_set_bytes = 32 << 10;
    v.push_back(make_compute("eon", p, IlpClass::kHigh));
  }
  {
    ComputeParams p;  // LZ77 compression over a small window
    p.chains = 5;
    p.chain_len = 3;
    p.fp_fraction = 0.0;
    p.hot_set_bytes = 24 << 10;
    p.loads_per_iter = 3;
    v.push_back(make_compute("gzip", p, IlpClass::kHigh));
  }

  return v;
}

}  // namespace

const std::vector<Benchmark>& spec_benchmarks() {
  static const std::vector<Benchmark> all = build_all();
  return all;
}

const Benchmark& spec_benchmark(const std::string& name) {
  for (const auto& b : spec_benchmarks())
    if (b.name == name) return b;
  throw std::out_of_range("unknown SPEC profile: " + name);
}

bool is_spec_benchmark(const std::string& name) {
  for (const auto& b : spec_benchmarks())
    if (b.name == name) return true;
  return false;
}

}  // namespace tlrob
