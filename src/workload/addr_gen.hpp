// Address generators: the data-access behaviour of synthetic benchmarks.
//
// Each static load/store in a program references an AddrGenSpec; every thread
// instantiates its own stateful AddrGen per spec so that two copies of the
// same benchmark produce independent (but deterministic) address streams.
//
// Patterns map to the paper's workload classes:
//   kStride        — streaming FP codes (swim, mgrid, lucas): high spatial
//                    locality, periodic L1/L2 misses when the working set is
//                    larger than a cache level.
//   kRandom        — scattered accesses over a working set (art, equake):
//                    independent misses => high memory-level parallelism.
//   kPointerChase  — linked-structure traversal (mcf, ammp, twolf): a full-
//                    cycle permutation over the working set's cache lines, so
//                    every access touches a new line; combined with a
//                    register dependence on the previous load this yields
//                    serialized misses.
//   kStack         — small, hot region (locals/globals): always cache
//                    resident.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace tlrob {

enum class AddrPattern : u8 { kStride, kRandom, kPointerChase, kStack };

struct AddrGenSpec {
  AddrPattern pattern = AddrPattern::kStack;
  /// Region base, relative to the thread's address-space base.
  Addr base = 0;
  /// Working-set size in bytes; accesses stay within [base, base+region).
  u64 region_bytes = 4096;
  /// kStride only: byte distance between consecutive accesses.
  i64 stride = 8;
  /// Access granularity in bytes (1..64).
  u32 access_size = 8;
  /// kPointerChase only: consecutive accesses to the same node line before
  /// chasing to the next one (node-field locality — a node of a real linked
  /// structure spans several fields in one cache line, so only the first
  /// access per node misses).
  u32 line_revisits = 1;
  /// kRandom only: fraction of accesses steered into the first `hot_bytes`
  /// of the region (temporal locality of real codes); the remainder is
  /// uniform over the whole region and supplies a controlled cold-miss tail.
  /// 0 disables (fully uniform).
  double hot_fraction = 0.0;
  u64 hot_bytes = 0;
  /// Seed component mixed with the thread salt.
  u64 seed = 1;
};

/// Stateful per-thread generator instantiated from a spec.
class AddrGen {
 public:
  AddrGen(const AddrGenSpec& spec, Addr thread_base, u64 thread_salt);

  /// Produces the next address of the stream and advances.
  Addr next();

  const AddrGenSpec& spec() const { return spec_; }

 private:
  AddrGenSpec spec_;
  Addr base_;       // absolute region base (thread_base + spec.base)
  u64 lines_;       // region size in 64-byte lines (for permutation walks)
  u64 pos_ = 0;     // stride offset or permutation index
  u64 visit_ = 0;   // kPointerChase: accesses so far (node-field locality)
  u64 lcg_mult_ = 1;
  Rng rng_;
};

}  // namespace tlrob
