#include "workload/mixes.hpp"

#include <stdexcept>

#include "workload/spec_profiles.hpp"

namespace tlrob {

const std::vector<Mix>& table2_mixes() {
  // Classification strings follow Table 2. The scanned table in the source
  // text garbles some of the classification row spans; the mix compositions
  // themselves are unambiguous and are what the experiments consume.
  static const std::vector<Mix> mixes = {
      {"Mix 1", {"ammp", "art", "mgrid", "apsi"}, "4 Low IPC"},
      {"Mix 2", {"art", "mgrid", "apsi", "parser"}, "3 Low IPC + 1 Mid IPC"},
      {"Mix 3", {"ammp", "mgrid", "apsi", "parser"}, "3 Low IPC + 1 Mid IPC"},
      {"Mix 4", {"art", "mgrid", "apsi", "vortex"}, "3 Low IPC + 1 Mid IPC"},
      {"Mix 5", {"ammp", "apsi", "parser", "crafty"}, "2 Low IPC + 2 Mid IPC"},
      {"Mix 6", {"art", "apsi", "parser", "gap"}, "2 Low IPC + 2 Mid IPC"},
      {"Mix 7", {"ammp", "apsi", "vortex", "eon"}, "2 Low IPC + 2 Mid IPC"},
      {"Mix 8", {"art", "parser", "vpr", "gzip"}, "2 Low IPC + 2 Mid IPC"},
      {"Mix 9", {"mgrid", "parser", "perlbmk", "mcf"}, "mixed"},
      {"Mix 10", {"lucas", "twolf", "bzip2", "wupwise"}, "mixed"},
      {"Mix 11", {"equake", "mesa", "swim", "twolf"}, "mixed"},
  };
  return mixes;
}

const Mix& table2_mix(u32 index) {
  const auto& mixes = table2_mixes();
  if (index < 1 || index > mixes.size())
    throw std::out_of_range("mix index must be 1..11");
  return mixes[index - 1];
}

std::vector<Benchmark> mix_benchmarks(const Mix& mix) {
  std::vector<Benchmark> v;
  v.reserve(mix.benchmarks.size());
  for (const auto& name : mix.benchmarks) v.push_back(spec_benchmark(name));
  return v;
}

}  // namespace tlrob
