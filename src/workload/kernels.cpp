#include "workload/kernels.hpp"

#include <algorithm>
#include <memory>

#include "isa/program_builder.hpp"

namespace tlrob {
namespace {

/// Wraps ProgramBuilder with generator-spec bookkeeping and a simple data
/// layout allocator (regions are placed back to back, 4 KB aligned, within
/// the thread's address space).
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name) : name_(name), pb_(std::move(name)) {}

  u32 agen(AddrPattern pattern, u64 region_bytes, i64 stride = 8, u32 access_size = 8,
           u32 line_revisits = 1) {
    AddrGenSpec s;
    s.pattern = pattern;
    s.base = next_base_;
    s.region_bytes = region_bytes;
    s.stride = stride;
    s.access_size = access_size;
    s.line_revisits = line_revisits;
    s.seed = agens_.size() + 1;
    next_base_ += (region_bytes + 0xfffULL) & ~0xfffULL;
    agens_.push_back(s);
    return static_cast<u32>(agens_.size() - 1);
  }

  /// Full-spec variant: caller sets pattern fields; base/seed are assigned.
  u32 agen(AddrGenSpec s) {
    s.base = next_base_;
    s.seed = agens_.size() + 1;
    next_base_ += (s.region_bytes + 0xfffULL) & ~0xfffULL;
    agens_.push_back(s);
    return static_cast<u32>(agens_.size() - 1);
  }

  u32 bgen(BranchPattern pattern, u32 trip, double p_taken = 0.5) {
    BranchGenSpec s;
    s.pattern = pattern;
    s.trip = trip;
    s.p_taken = p_taken;
    s.seed = bgens_.size() + 1;
    bgens_.push_back(s);
    return static_cast<u32>(bgens_.size() - 1);
  }

  ProgramBuilder& pb() { return pb_; }

  Benchmark finish(IlpClass expected) {
    Benchmark b;
    b.name = name_;
    b.program = std::make_shared<Program>(
        pb_.build(static_cast<u32>(agens_.size()), static_cast<u32>(bgens_.size())));
    b.agens = std::move(agens_);
    b.bgens = std::move(bgens_);
    b.expected_class = expected;
    return b;
  }

 private:
  std::string name_;
  ProgramBuilder pb_;
  std::vector<AddrGenSpec> agens_;
  std::vector<BranchGenSpec> bgens_;
  Addr next_base_ = 0x10000000;  // data segment within the thread space
};

}  // namespace

Benchmark make_random_gather(const std::string& name, const RandomGatherParams& p,
                             IlpClass expected) {
  KernelBuilder kb(name);
  auto& pb = kb.pb();
  AddrGenSpec data_spec;
  data_spec.pattern = AddrPattern::kRandom;
  data_spec.region_bytes = p.working_set_bytes;
  data_spec.hot_fraction = p.reuse_fraction;
  data_spec.hot_bytes = p.reuse_bytes;
  const u32 data = kb.agen(data_spec);
  const u32 hot = kb.agen(AddrPattern::kStack, 16 << 10);
  const u32 out = kb.agen(AddrPattern::kStride, 256 << 10, 8);
  u32 reduce_data = 0;
  if (p.reduce_trip > 0) {
    AddrGenSpec rs;
    rs.pattern = AddrPattern::kRandom;
    rs.region_bytes = std::max<u64>(p.working_set_bytes, 1 << 20);
    rs.hot_fraction = 1.0 - p.reduce_cold_fraction;
    rs.hot_bytes = std::max<u64>(p.reuse_bytes, 64 << 10);
    reduce_data = kb.agen(rs);
  }
  const u32 loop = kb.bgen(BranchPattern::kLoop, p.inner_trip);
  const u32 rloop = p.reduce_trip > 0 ? kb.bgen(BranchPattern::kLoop, p.reduce_trip) : 0;

  const u32 entry = pb.current_block();
  const u32 head = pb.new_block();
  const u32 reduce = p.reduce_trip > 0 ? pb.new_block() : 0;
  const u32 tail = pb.new_block();

  pb.in(entry).int_alu(ireg(1)).int_alu(ireg(2), ireg(1)).jump(head);

  pb.in(head);
  for (u32 l = 0; l < p.loads_per_iter; ++l) {
    const ArchReg dst = p.fp ? freg(l) : ireg(4 + l);
    pb.load(dst, data, ireg(1));  // address depends only on the loop-invariant base
    // Terminal dependents: each consumes the loaded value directly and feeds
    // nothing else, so the load's Degree of Dependence is exactly
    // dep_ops_per_load (the small-DoD structure of Figure 1).
    for (u32 d = 0; d < p.dep_ops_per_load; ++d) {
      const ArchReg t = p.fp ? freg(16 + (l * p.dep_ops_per_load + d) % 16)
                             : ireg(16 + (l * p.dep_ops_per_load + d) % 16);
      if (p.fp)
        pb.fp_add(t, dst, freg(15))  /* invariant operand */;
      else
        pb.int_alu(t, dst, ireg(15));
    }
  }
  for (u32 h = 0; h < p.hot_loads_per_iter; ++h)
    pb.load(ireg(8 + h % 4), hot, ireg(2));
  // Load-independent filler on four parallel accumulator chains, so it
  // issues at machine width instead of serialising in the issue queue.
  for (u32 i = 0; i < p.indep_ops_per_iter; ++i)
    pb.int_alu(ireg(24 + (i % 4)), ireg(24 + (i % 4)), ireg(3));
  for (u32 s = 0; s < p.stores_per_iter; ++s)
    pb.store(out, p.fp ? freg(16) : ireg(16));
  pb.int_alu(ireg(1), ireg(1));  // induction update
  pb.branch(loop, head, ireg(1));
  pb.fallthrough(head, p.reduce_trip > 0 ? reduce : tail);

  if (p.reduce_trip > 0) {
    // Issue-bound phase: a serial accumulation over the reuse set. A load
    // that misses here has every younger chain op dependent on it — high
    // DoD, precisely the case the two-level controller must not reward.
    pb.in(reduce);
    pb.load(freg(20), reduce_data, ireg(2));
    ArchReg acc = freg(21);
    pb.fp_add(acc, acc, freg(20));
    for (u32 o = 1; o < p.reduce_serial_ops; ++o) {
      if (o % 3 == 2)
        pb.fp_mult(acc, acc, freg(20));
      else
        pb.fp_add(acc, acc, freg(20));
    }
    pb.int_alu(ireg(6), ireg(6));
    pb.branch(rloop, reduce, ireg(6));
    pb.fallthrough(reduce, tail);
  }

  pb.in(tail).int_alu(ireg(3), ireg(3)).jump(head);
  pb.fallthrough(tail, head);
  pb.fallthrough(entry, head);

  return kb.finish(expected);
}

Benchmark make_pointer_chase(const std::string& name, const PointerChaseParams& p,
                             IlpClass expected) {
  KernelBuilder kb(name);
  auto& pb = kb.pb();
  std::vector<u32> chain_agens;
  for (u32 c = 0; c < p.chains; ++c)
    chain_agens.push_back(kb.agen(AddrPattern::kPointerChase, p.working_set_bytes / p.chains,
                                  8, 8, p.node_fields));
  const u32 hot = kb.agen(AddrPattern::kStack, 16 << 10);
  const u32 loop = kb.bgen(BranchPattern::kLoop, p.inner_trip);

  const u32 entry = pb.current_block();
  const u32 head = pb.new_block();
  const u32 tail = pb.new_block();

  pb.in(entry);
  for (u32 c = 0; c < p.chains; ++c) pb.int_alu(ireg(1 + c));
  pb.jump(head);

  pb.in(head);
  for (u32 c = 0; c < p.chains; ++c) {
    const ArchReg ptr = ireg(1 + c);
    for (u32 l = 0; l < p.loads_per_chain_iter; ++l) {
      pb.load(ptr, chain_agens[c], ptr);  // next pointer depends on this load
      ArchReg prev = ptr;
      for (u32 d = 0; d < p.dep_ops_per_load; ++d) {
        const ArchReg t = p.fp ? freg((c * 8 + d) % 32) : ireg(8 + (c * 8 + d) % 20);
        if (p.fp)
          pb.fp_add(t, prev, t);
        else
          pb.int_alu(t, prev, t);
        prev = t;
      }
    }
  }
  for (u32 h = 0; h < p.hot_loads_per_iter; ++h)
    pb.load(ireg(28 + h % 2), hot, ireg(30));
  pb.int_alu(ireg(30), ireg(30));
  pb.branch(loop, head, ireg(30));
  pb.fallthrough(head, tail);

  pb.in(tail).int_alu(ireg(31), ireg(31)).jump(head);
  pb.fallthrough(tail, head);
  pb.fallthrough(entry, head);

  return kb.finish(expected);
}

Benchmark make_stream(const std::string& name, const StreamParams& p, IlpClass expected) {
  KernelBuilder kb(name);
  auto& pb = kb.pb();
  std::vector<u32> in_streams;
  for (u32 s = 0; s < p.streams; ++s)
    in_streams.push_back(
        kb.agen(AddrPattern::kStride, p.working_set_bytes / (p.streams + 1), p.stride));
  const u32 out =
      kb.agen(AddrPattern::kStride, p.working_set_bytes / (p.streams + 1), p.stride);
  u32 table = 0;
  if (p.reuse_bytes > 0) {
    AddrGenSpec ts;
    ts.pattern = AddrPattern::kRandom;
    ts.region_bytes = p.reuse_bytes;
    ts.hot_fraction = 1.0;
    ts.hot_bytes = p.reuse_bytes;
    table = kb.agen(ts);
  }
  u32 reduce_data = 0;
  if (p.reduce_trip > 0) {
    AddrGenSpec rs;
    rs.pattern = AddrPattern::kRandom;
    rs.region_bytes = std::max<u64>(p.working_set_bytes, 1 << 20);
    rs.hot_fraction = 1.0 - p.reduce_cold_fraction;
    rs.hot_bytes = std::max<u64>(p.reuse_bytes, 64 << 10);
    reduce_data = kb.agen(rs);
  }
  const u32 loop = kb.bgen(BranchPattern::kLoop, p.inner_trip);
  const u32 rloop = p.reduce_trip > 0 ? kb.bgen(BranchPattern::kLoop, p.reduce_trip) : 0;

  const u32 entry = pb.current_block();
  const u32 head = pb.new_block();
  const u32 reduce = p.reduce_trip > 0 ? pb.new_block() : 0;
  const u32 tail = pb.new_block();

  pb.in(entry).int_alu(ireg(1)).jump(head);

  pb.in(head);
  for (u32 s = 0; s < p.streams; ++s) {
    const ArchReg elem = freg(s);
    pb.load(elem, in_streams[s], ireg(1));
    // One terminal consumer per loaded element (low DoD per missing load);
    // the remaining FP work runs on stream-independent chains, so it issues
    // as soon as functional units allow instead of piling up in the IQ
    // behind an outstanding miss.
    for (u32 d = 0; d < p.dep_consumers; ++d)
      pb.fp_add(freg(8 + (s * p.dep_consumers + d) % 8), elem, freg(7));
    for (u32 f = 1; f < p.fp_ops_per_elem; ++f) {
      const ArchReg w = freg(16 + (s * p.fp_ops_per_elem + f) % 16);
      if (f % 3 == 2)
        pb.fp_mult(w, w, freg(6));
      else
        pb.fp_add(w, w, freg(6));
    }
  }
  if (p.reuse_bytes > 0) {
    // Table lookups (stencil coefficients / previous sweep): resident when
    // running alone, evicted under cache sharing; one terminal dependent
    // each, so an L2 miss here has a small DoD.
    for (u32 r = 0; r < p.reuse_loads_per_iter; ++r) {
      pb.load(freg(4 + r % 2), table, ireg(1));
      for (u32 d = 0; d < p.dep_consumers; ++d)
        pb.fp_add(freg(12 + (r * p.dep_consumers + d) % 4), freg(4 + r % 2), freg(7));
    }
  }
  for (u32 s = 0; s < p.stores_per_iter; ++s) pb.store(out, freg(8));
  pb.int_alu(ireg(1), ireg(1));
  pb.branch(loop, head, ireg(1));
  pb.fallthrough(head, p.reduce_trip > 0 ? reduce : tail);

  if (p.reduce_trip > 0) {
    pb.in(reduce);
    pb.load(freg(20), reduce_data, ireg(1));
    ArchReg acc = freg(21);
    for (u32 o = 0; o < p.reduce_serial_ops; ++o) {
      if (o % 3 == 2)
        pb.fp_mult(acc, acc, freg(20));
      else
        pb.fp_add(acc, acc, freg(20));
    }
    pb.int_alu(ireg(5), ireg(5));
    pb.branch(rloop, reduce, ireg(5));
    pb.fallthrough(reduce, tail);
  }

  pb.in(tail).int_alu(ireg(2), ireg(2)).jump(head);
  pb.fallthrough(tail, head);
  pb.fallthrough(entry, head);

  return kb.finish(expected);
}

Benchmark make_compute(const std::string& name, const ComputeParams& p, IlpClass expected) {
  KernelBuilder kb(name);
  auto& pb = kb.pb();
  const u32 hot = kb.agen(AddrPattern::kStack, p.hot_set_bytes);
  const u32 loop = kb.bgen(BranchPattern::kLoop, p.inner_trip);

  const u32 entry = pb.current_block();
  const u32 head = pb.new_block();
  const u32 callee = p.use_call ? pb.new_block() : 0;
  const u32 after_call = p.use_call ? pb.new_block() : 0;
  const u32 tail = pb.new_block();

  pb.in(entry).int_alu(ireg(1)).jump(head);

  const u32 fp_chains = static_cast<u32>(p.fp_fraction * p.chains + 0.5);
  pb.in(head);
  for (u32 l = 0; l < p.loads_per_iter; ++l) pb.load(ireg(24 + l % 4), hot, ireg(1));
  // Independent dependence chains: chain c accumulates into its own register
  // from registers no chain writes (freg(24..31) / the hot-load results), so
  // the exploitable ILP equals `chains`.
  for (u32 step = 0; step < p.chain_len; ++step) {
    for (u32 c = 0; c < p.chains; ++c) {
      if (c < fp_chains) {
        const ArchReg r = freg(c);
        if (step % 4 == 3)
          pb.fp_mult(r, r, freg(24 + c % 8));
        else
          pb.fp_add(r, r, freg(24 + c % 8));
      } else {
        const ArchReg r = ireg(2 + c);
        if (step % 5 == 4)
          pb.int_mult(r, r, ireg(24));
        else
          pb.int_alu(r, r, ireg(24 + c % 4));
      }
    }
  }
  if (p.use_call) {
    pb.call(callee);
    pb.fallthrough(head, after_call);
    pb.in(callee).int_alu(ireg(20), ireg(2)).int_alu(ireg(21), ireg(20)).ret();
    pb.fallthrough(callee, after_call);
    pb.in(after_call);
  }
  pb.store(hot, ireg(2));
  pb.int_alu(ireg(1), ireg(1));
  pb.branch(loop, head, ireg(1));
  pb.fallthrough(p.use_call ? after_call : head, tail);
  if (p.use_call) pb.fallthrough(head, after_call);

  pb.in(tail).int_alu(ireg(30), ireg(30)).jump(head);
  pb.fallthrough(tail, head);
  pb.fallthrough(entry, head);

  return kb.finish(expected);
}

Benchmark make_branchy_int(const std::string& name, const BranchyIntParams& p,
                           IlpClass expected) {
  KernelBuilder kb(name);
  auto& pb = kb.pb();
  AddrGenSpec data_spec;
  data_spec.pattern = AddrPattern::kRandom;
  data_spec.region_bytes = p.working_set_bytes;
  data_spec.hot_fraction = 1.0 - p.cold_fraction;
  data_spec.hot_bytes = p.hot_bytes;
  const u32 data = kb.agen(data_spec);
  const u32 stack = kb.agen(AddrPattern::kStack, 8 << 10);
  const u32 loop = kb.bgen(BranchPattern::kLoop, p.inner_trip);

  const u32 entry = pb.current_block();
  const u32 head = pb.new_block();

  pb.in(entry).int_alu(ireg(1)).jump(head);
  pb.fallthrough(entry, head);

  pb.in(head);
  // The first load reads hot metadata (dictionary headers, tables): branch
  // conditions hang off it, so control resolves at cache-hit latency even
  // when the data-side loads miss — real branchy integer codes decide from
  // hot structures, not from the cold payload they fetch.
  pb.load(ireg(4), stack, ireg(1));
  for (u32 l = 1; l < p.loads_per_iter; ++l) {
    pb.load(ireg(4 + l % 8), l % 2 == 0 ? stack : data, ireg(1));
    ArchReg prev = ireg(4 + l % 8);
    for (u32 d = 0; d < p.dep_ops_per_load; ++d) {
      const ArchReg t = ireg(12 + (l * p.dep_ops_per_load + d) % 12);
      pb.int_alu(t, prev, t);
      prev = t;
    }
  }

  // Data-dependent diamonds: branch on the hot metadata value.
  u32 cur = head;
  for (u32 b = 0; b < p.branches_per_iter; ++b) {
    const u32 bg = kb.bgen(BranchPattern::kBiased, 2, p.branch_bias);
    const u32 then_blk = pb.new_block();
    const u32 join = pb.new_block();
    pb.in(cur).branch(bg, join, ireg(4));
    pb.fallthrough(cur, then_blk);
    pb.in(then_blk).int_alu(ireg(12 + b % 12), ireg(12 + b % 12)).int_alu(ireg(24), ireg(24));
    pb.fallthrough(then_blk, join);
    pb.in(join);
    cur = join;
  }
  for (u32 s = 0; s < p.stores_per_iter; ++s) pb.store(stack, ireg(12));
  if (p.use_call) {
    const u32 callee = pb.new_block();
    const u32 back = pb.new_block();
    pb.in(cur).call(callee);
    pb.fallthrough(cur, back);
    pb.in(callee).int_alu(ireg(25), ireg(12)).ret();
    pb.fallthrough(callee, back);
    pb.in(back);
    cur = back;
  }
  const u32 tail = pb.new_block();
  pb.in(cur).int_alu(ireg(1), ireg(1)).branch(loop, head, ireg(1));
  pb.fallthrough(cur, tail);
  pb.in(tail).int_alu(ireg(2), ireg(2)).jump(head);
  pb.fallthrough(tail, head);

  return kb.finish(expected);
}

}  // namespace tlrob
