// Parameterisable kernel archetypes from which the SPEC-named synthetic
// benchmarks (spec_profiles.cpp) are instantiated.
//
// Each archetype reproduces the *timing-relevant* structure of a class of
// SPEC 2000 codes: dependence shape (what the paper's DoD metric measures),
// memory access pattern / working-set size (what determines L2 miss rate and
// attainable memory-level parallelism), branch behaviour, and instruction
// mix. See DESIGN.md §2 for the substitution argument.
#pragma once

#include <string>

#include "workload/thread_context.hpp"

namespace tlrob {

/// Independent scattered loads over a large working set, each with a short
/// private dependence chain (art / equake / lucas shape). Low DoD per miss,
/// high MLP potential — the prime beneficiary of a second-level ROB.
struct RandomGatherParams {
  u64 working_set_bytes = 16 << 20;
  /// Temporal-locality structure of the gather stream: `reuse_fraction` of
  /// accesses land in the first `reuse_bytes` of the region (resident when
  /// the thread has the L2 to itself; evicted under sharing — the source of
  /// the benchmark's SMT slowdown), the rest sweep the whole working set.
  double reuse_fraction = 0.0;
  u64 reuse_bytes = 0;
  u32 loads_per_iter = 8;       // independent cold loads per loop iteration
  u32 hot_loads_per_iter = 4;   // cache-resident loads (index/metadata reads)
  u32 dep_ops_per_load = 2;     // dependent arithmetic per cold load
  bool fp = true;               // FP vs integer arithmetic
  u32 indep_ops_per_iter = 4;   // load-independent filler arithmetic
  u32 inner_trip = 64;          // inner loop trip count
  u32 stores_per_iter = 1;
  /// Serial-reduction phase interleaved with the gather phase (the
  /// issue-bound phases of Sharkey et al. [23]): `reduce_trip` iterations of
  /// a serially dependent accumulation whose loads mostly hit the reuse set
  /// but occasionally miss with a HIGH degree of dependence — the loads the
  /// DoD filter must reject. 0 disables.
  u32 reduce_trip = 160;
  u32 reduce_serial_ops = 5;
  double reduce_cold_fraction = 0.08;
};
Benchmark make_random_gather(const std::string& name, const RandomGatherParams& p,
                             IlpClass expected = IlpClass::kLow);

/// Serially dependent loads (each load's address depends on the previous
/// load's result) — mcf / ammp / twolf shape. Nearly everything younger than
/// a missing load depends on it => high DoD, little MLP.
struct PointerChaseParams {
  u64 working_set_bytes = 32 << 20;
  u32 chains = 1;               // number of independent chase chains (MLP cap)
  u32 loads_per_chain_iter = 2; // chained loads per chain per iteration
  u32 node_fields = 3;          // loads landing in the same node line (only
                                // the first misses — node-field locality)
  u32 dep_ops_per_load = 3;     // arithmetic dependent on each loaded value
  u32 hot_loads_per_iter = 2;   // cache-resident bookkeeping loads
  bool fp = false;
  u32 inner_trip = 128;
};
Benchmark make_pointer_chase(const std::string& name, const PointerChaseParams& p,
                             IlpClass expected = IlpClass::kLow);

/// Strided streaming over large arrays with dependent FP arithmetic and a
/// strided store stream (swim / mgrid / apsi shape). Misses are periodic and
/// independent; DoD per missing load is small.
struct StreamParams {
  u64 working_set_bytes = 8 << 20;
  /// Size of the re-read table (coefficients / previous sweep's plane):
  /// resident when the thread has the cache to itself, the contended part
  /// of the working set under SMT. 0 disables.
  u64 reuse_bytes = 0;
  u32 reuse_loads_per_iter = 1;
  u32 dep_consumers = 5;        // terminal consumers per loaded element (DoD)
  u32 streams = 3;              // concurrent input streams
  u32 fp_ops_per_elem = 3;      // FP work per loaded element
  u32 stores_per_iter = 1;
  i64 stride = 8;
  u32 inner_trip = 256;
  /// Serial recurrence phase (time-step update): as in the gather kernel,
  /// a high-DoD phase the two-level controller should not reward. 0 = off.
  u32 reduce_trip = 128;
  u32 reduce_serial_ops = 4;
  double reduce_cold_fraction = 0.08;
};
Benchmark make_stream(const std::string& name, const StreamParams& p,
                      IlpClass expected = IlpClass::kLow);

/// Cache-resident computation with wide independent chains and well-predicted
/// branches (crafty / eon / gzip shape). High IPC, no L2 misses.
struct ComputeParams {
  u32 chains = 6;               // parallel dependence chains
  u32 chain_len = 4;            // ops per chain per iteration
  double fp_fraction = 0.0;     // fraction of chains doing FP work
  u64 hot_set_bytes = 16 << 10; // resident working set
  u32 loads_per_iter = 2;
  u32 inner_trip = 64;
  bool use_call = true;         // exercise call/return + RAS
};
Benchmark make_compute(const std::string& name, const ComputeParams& p,
                       IlpClass expected = IlpClass::kHigh);

/// Branchy integer code over a medium working set (parser / vpr / perlbmk /
/// bzip2 shape): data-dependent branches, mixed hit/miss loads.
struct BranchyIntParams {
  u64 working_set_bytes = 3 << 20;
  /// Fraction of data-side accesses that fall outside the hot subset (the
  /// sustained cold/capacity-miss tail); the rest hit `hot_bytes`.
  double cold_fraction = 0.05;
  u64 hot_bytes = 24 << 10;
  u32 loads_per_iter = 3;
  u32 dep_ops_per_load = 2;
  u32 branches_per_iter = 2;
  double branch_bias = 0.85;    // taken probability of data-dependent branches
  u32 inner_trip = 48;
  u32 stores_per_iter = 1;
  bool use_call = false;
};
Benchmark make_branchy_int(const std::string& name, const BranchyIntParams& p,
                           IlpClass expected = IlpClass::kMid);

}  // namespace tlrob
