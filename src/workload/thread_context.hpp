// Architectural (functional) execution of a synthetic program.
//
// The ThreadContext walks the program's CFG along the *correct* path only,
// producing one ArchOp per dynamic instruction: static-instruction identity,
// PC, resolved memory address (loads/stores) and resolved branch outcome /
// target. The timing simulator consumes this stream at fetch — the classic
// functional-first, timing-directed organisation of SimpleScalar/M-Sim.
//
// Wrong-path instructions are synthesised by the fetch unit itself (see
// pipeline/fetch-related code in sim/) and never touch the ThreadContext, so
// mispredicted-branch recovery requires no architectural rollback.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "workload/addr_gen.hpp"
#include "workload/branch_gen.hpp"

namespace tlrob {

class ThreadContext;
struct Benchmark;

/// Single-thread ILP class, as in the paper's Table 2 (low = memory-bound,
/// high = execution-bound).
enum class IlpClass : u8 { kLow, kMid, kHigh };

/// Optional per-thread source constructor: a benchmark backed by something
/// other than the synthetic generators (e.g. a trace replay, src/trace/)
/// supplies one and the core constructs through it; when empty the core
/// builds a plain ThreadContext. Arguments mirror the ThreadContext ctor.
using ThreadSourceFactory =
    std::function<std::unique_ptr<ThreadContext>(const Benchmark&, Addr, u64)>;

/// A complete synthetic benchmark: the program plus the generator specs the
/// per-thread context instantiates.
struct Benchmark {
  std::string name;
  std::shared_ptr<const Program> program;
  std::vector<AddrGenSpec> agens;
  std::vector<BranchGenSpec> bgens;
  IlpClass expected_class = IlpClass::kMid;
  ThreadSourceFactory source_factory;
};

/// One dynamic correct-path instruction.
struct ArchOp {
  const StaticInst* si = nullptr;
  Addr pc = 0;
  u32 block = 0;       // basic block containing the instruction
  Addr mem_addr = 0;   // loads/stores
  bool taken = false;  // control ops: actual direction (unconditional => true)
  Addr target_pc = 0;  // control ops: actual next PC
};

class ThreadContext {
 public:
  /// `addr_space_base` separates coexisting threads' code/data; `salt`
  /// decorrelates generator streams between thread instances.
  ThreadContext(const Benchmark& bench, Addr addr_space_base, u64 salt);
  virtual ~ThreadContext() = default;

  /// Produces the next correct-path instruction and advances. Production
  /// is batched: the source walk (refill()) runs kBatch instructions at a
  /// time into a buffer, amortizing the out-of-line address/branch
  /// generator calls — and, for derived sources, the one virtual dispatch
  /// per batch; timing never feeds back into the architectural walk, so
  /// running ahead is unobservable.
  ArchOp next() {
    if (batch_pos_ == batch_len_) refill();
    ++generated_;
    return batch_[batch_pos_++];
  }

  const Program& program() const { return *bench_->program; }
  const Benchmark& benchmark() const { return *bench_; }
  Addr addr_space_base() const { return addr_base_; }
  u64 generated() const { return generated_; }

  /// PC of the first instruction of `block` (used by fetch for targets).
  Addr block_pc(u32 block) const { return program().block(block).insts.front().pc; }

  /// Merges this source's own counters into a result map at snapshot time
  /// (cold path). The synthetic generators export none; trace replay
  /// sources export their trace.* family (src/trace/source.cpp).
  virtual void append_source_counters(u32 /*tid*/,
                                      std::map<std::string, u64>& /*counters*/) const {}

 protected:
  static constexpr u32 kBatch = 32;

  /// Fills batch_ with the next kBatch correct-path instructions. The one
  /// virtual call per batch is what lets derived sources (trace replay)
  /// plug in without touching the fetch hot path.
  virtual void refill();

  std::array<ArchOp, kBatch> batch_;
  u32 batch_pos_ = 0;
  u32 batch_len_ = 0;

 private:
  struct ReturnPoint {
    u32 block;
  };

  ArchOp produce();

  const Benchmark* bench_;
  Addr addr_base_;
  std::vector<AddrGen> agens_;
  std::vector<BranchGen> bgens_;
  u32 block_ = 0;
  u32 index_ = 0;
  std::vector<ReturnPoint> ret_stack_;
  u64 generated_ = 0;  // instructions consumed through next()
};

}  // namespace tlrob
