// The 11 four-thread workload mixes of the paper's Table 2, plus the Mix
// struct itself, which any workload combination (including 2- or 3-thread
// trace mixes, src/trace/resolve.hpp) is expressed through.
#pragma once

#include <string>
#include <vector>

#include "workload/thread_context.hpp"

namespace tlrob {

struct Mix {
  std::string name;                       // "Mix 1" .. "Mix 11", or custom
  std::vector<std::string> benchmarks;    // one workload name per thread
  std::string classification;             // Table 2 left column
};

/// All 11 mixes in paper order.
const std::vector<Mix>& table2_mixes();

/// Lookup by 1-based index (1..11). Throws std::out_of_range otherwise.
const Mix& table2_mix(u32 index);

/// Resolves a mix to its four Benchmark definitions.
std::vector<Benchmark> mix_benchmarks(const Mix& mix);

}  // namespace tlrob
