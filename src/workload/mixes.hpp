// The 11 four-thread workload mixes of the paper's Table 2.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "workload/thread_context.hpp"

namespace tlrob {

struct Mix {
  std::string name;                          // "Mix 1" .. "Mix 11"
  std::array<std::string, 4> benchmarks;     // SPEC profile names
  std::string classification;                // Table 2 left column
};

/// All 11 mixes in paper order.
const std::vector<Mix>& table2_mixes();

/// Lookup by 1-based index (1..11). Throws std::out_of_range otherwise.
const Mix& table2_mix(u32 index);

/// Resolves a mix to its four Benchmark definitions.
std::vector<Benchmark> mix_benchmarks(const Mix& mix);

}  // namespace tlrob
