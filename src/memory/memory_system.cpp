#include "memory/memory_system.hpp"

#include <algorithm>

#include "memory/shared_memory.hpp"

namespace tlrob {

MemorySystem::MemorySystem(const MemoryConfig& cfg, SharedMemory* backend, u32 core_id)
    : cfg_(cfg), backend_(backend), core_id_(core_id) {
  MemoryChannelConfig ch = cfg.channel;
  ch.line_bytes = cfg.l2.line_bytes;
  l1i_ = std::make_unique<Cache>("l1i", cfg.l1i);
  l1d_ = std::make_unique<Cache>("l1d", cfg.l1d);
  l2_ = std::make_unique<Cache>("l2", cfg.l2);
  channel_ = std::make_unique<MemoryChannel>(ch);
}

MemorySystem::L2Result MemorySystem::access_l2(Addr addr, Cycle when) {
  const Cycle tag_done = when + cfg_.l2.hit_latency;
  const Cache::Probe p = l2_->probe(addr, tag_done);
  if (p.present) {
    // Resident (ready_at <= tag_done) or merged into an in-flight fill.
    const Cycle ready = std::max(p.ready_at, tag_done);
    return {ready, p.ready_at > tag_done && p.fill_from_memory, ready, ready, ready};
  }
  if (backend_ != nullptr) {
    // CMP path: the miss goes to the shared LLC; only a DRAM-bound fill
    // counts as "went to memory" (an LLC hit does not arm the second-level
    // ROB — its latency is covered by the first-level window).
    const SharedMemory::Fill f = backend_->request_fill(addr, tag_done, core_id_);
    bool evicted_dirty = false;
    Addr victim = 0;
    l2_->fill(addr, tag_done, f.ready, f.llc_miss, &evicted_dirty, &victim);
    if (evicted_dirty) backend_->request_writeback(victim, f.ready, core_id_);
    // Private time ends at the L2 tag check; the backend supplies the
    // LLC/DRAM edges (clamped into order for the merged/hit paths, whose
    // edges collapse onto ready).
    const Cycle seg_llc = std::max(tag_done, std::min(f.seg_llc_end, f.ready));
    const Cycle seg_dram = std::max(seg_llc, std::min(f.seg_dram_end, f.ready));
    return {f.ready, f.llc_miss, tag_done, seg_llc, seg_dram};
  }
  const Cycle fill_done = channel_->request_fill(tag_done);
  bool evicted_dirty = false;
  l2_->fill(addr, tag_done, fill_done, /*from_memory=*/true, &evicted_dirty);
  if (evicted_dirty) channel_->request_writeback(fill_done);
  // Legacy fixed-latency channel: no shared backend to attribute, the whole
  // chain is private-hierarchy time.
  return {fill_done, true, fill_done, fill_done, fill_done};
}

DataAccess MemorySystem::access_data(Addr addr, bool is_store, Cycle now) {
  DataAccess out;
  const Cycle l1_done = now + cfg_.l1d.hit_latency;
  const Cache::Probe p = l1d_->probe(addr, l1_done);

  if (p.present && p.ready_at <= l1_done) {
    out.l1_hit = true;
    out.data_ready = l1_done;
    out.seg_private = out.seg_llc = out.seg_dram = l1_done;
  } else if (p.present) {
    // Merge into the in-flight L1 fill. The merged chain's shared-backend
    // split is not tracked per line, so the wait is attributed to the
    // private hierarchy (the L1 MSHR it rides).
    out.data_ready = p.ready_at;
    out.l2_miss = p.fill_from_memory;
    out.l2_miss_detect = now + cfg_.l1d.hit_latency + cfg_.l2.hit_latency;
    out.seg_private = out.seg_llc = out.seg_dram = p.ready_at;
  } else {
    const L2Result l2r = access_l2(addr, l1_done);
    out.data_ready = l2r.ready;
    out.l2_miss = l2r.from_memory;
    out.l2_miss_detect = now + cfg_.l1d.hit_latency + cfg_.l2.hit_latency;
    out.seg_private = l2r.seg_private;
    out.seg_llc = l2r.seg_llc;
    out.seg_dram = l2r.seg_dram;
    bool evicted_dirty = false;
    l1d_->fill(addr, l1_done, l2r.ready, l2r.from_memory, &evicted_dirty);
    if (evicted_dirty) {
      // L1 dirty evictions are absorbed by the L2 (write-back); mark the
      // victim's data dirty there if resident. Addresses of victims are not
      // tracked in the latency-chain model, so this is bandwidth-free — L2
      // dirtiness dominates writeback traffic and is modelled precisely.
    }
  }

  if (is_store) {
    l1d_->mark_dirty(addr);
    l2_->mark_dirty(addr);
  }
  return out;
}

void MemorySystem::prewarm_region(Addr base, u64 bytes, u64 hot_prefix_bytes) {
  const u64 l2_line = cfg_.l2.line_bytes;
  const u64 hot = std::min(hot_prefix_bytes, bytes);
  auto warm_l2 = [&](Addr lo, u64 len) {
    // Touching more than the cache only churns it; warm the tail.
    const u64 span = std::min<u64>(len, 2 * cfg_.l2.size_bytes);
    for (Addr a = lo + len - span; a < lo + len; a += l2_line)
      l2_->fill(a, 0, 0, /*from_memory=*/false, nullptr);
  };
  if (bytes > hot) warm_l2(base + hot, bytes - hot);  // cold body first
  if (hot > 0) warm_l2(base, hot);                    // reused prefix last

  // The L1 keeps the most recently warmed lines of the reused part.
  const u64 l1_seed = hot > 0 ? hot : bytes;
  const u64 l1_span = std::min<u64>(l1_seed, cfg_.l1d.size_bytes);
  for (Addr a = base + l1_seed - l1_span; a < base + l1_seed; a += cfg_.l1d.line_bytes)
    l1d_->fill(a, 0, 0, /*from_memory=*/false, nullptr);
}

Cycle MemorySystem::access_inst(Addr pc, Cycle now) {
  const Cache::Probe p = l1i_->probe(pc, now);
  if (p.present && p.ready_at <= now) return now;
  if (p.present) return p.ready_at;
  const L2Result l2r = access_l2(pc, now);
  l1i_->fill(pc, now, l2r.ready, l2r.from_memory, nullptr);
  return l2r.ready;
}

}  // namespace tlrob
