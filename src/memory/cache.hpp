// Set-associative cache with a latency-chain ("ready-at") timing model.
//
// Instead of discrete fill events, every line carries the cycle at which its
// data becomes available. A line whose ready_at lies in the future is an
// in-flight fill: a new access to it *merges* (MSHR behaviour) and completes
// when the fill does. This models non-blocking caches with per-line MSHRs at
// a fraction of the implementation cost of an event-driven cache, while
// preserving the properties the paper's mechanism depends on — overlapping
// misses, secondary-miss merging, and the visibility of "this access had to
// go to memory".
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace tlrob {

struct CacheGeometry {
  u64 size_bytes = 32 << 10;
  u32 ways = 4;
  u32 line_bytes = 32;
  u32 hit_latency = 1;
};

class Cache {
 public:
  Cache(std::string name, const CacheGeometry& geo);

  struct Probe {
    bool present = false;     // tag match (line resident or in flight)
    Cycle ready_at = 0;       // when the line's data is/was available
    bool fill_from_memory = false;  // in-flight fill originates at DRAM
  };

  /// Tag lookup at cycle `now`; touches LRU on a match.
  Probe probe(Addr addr, Cycle now);

  /// Installs `addr`'s line with data arriving at `ready_at`. Returns true
  /// if a line was allocated; false when every way of the set holds an
  /// in-flight fill (the access then bypasses this level). The evicted dirty
  /// line, if any, is reported through `evicted_dirty`.
  bool fill(Addr addr, Cycle now, Cycle ready_at, bool from_memory, bool* evicted_dirty);

  /// Marks the line dirty (stores). No-op if absent.
  void mark_dirty(Addr addr);

  /// Invalidates everything (used between experiment phases).
  void clear();

  const CacheGeometry& geometry() const { return geo_; }
  u32 sets() const { return sets_; }
  const std::string& name() const { return name_; }
  StatGroup& stats() { return stats_; }

 private:
  struct Line {
    bool valid = false;
    u64 tag = 0;
    Cycle ready_at = 0;
    bool dirty = false;
    bool fill_from_memory = false;
    u64 lru = 0;
  };

  u64 set_of(Addr addr) const { return (addr / geo_.line_bytes) & (sets_ - 1); }
  u64 tag_of(Addr addr) const { return (addr / geo_.line_bytes) / sets_; }
  Line* find(Addr addr);

  std::string name_;
  CacheGeometry geo_;
  u32 sets_;
  std::vector<Line> lines_;
  u64 stamp_ = 0;
  StatGroup stats_;
  // Cached stat handles (StatGroup map nodes are address-stable and reset()
  // zeroes in place); probe() runs on every memory access, so the per-call
  // map lookups were measurable. Declared after stats_.
  Counter* cnt_accesses_;
  Counter* cnt_misses_;
  Counter* cnt_mshr_merges_;
  Counter* cnt_fill_bypass_;
  Counter* cnt_evictions_;
};

}  // namespace tlrob
