// Set-associative cache with a latency-chain ("ready-at") timing model.
//
// Instead of discrete fill events, every line carries the cycle at which its
// data becomes available. A line whose ready_at lies in the future is an
// in-flight fill: a new access to it *merges* (MSHR behaviour) and completes
// when the fill does. This models non-blocking caches with per-line MSHRs at
// a fraction of the implementation cost of an event-driven cache, while
// preserving the properties the paper's mechanism depends on — overlapping
// misses, secondary-miss merging, and the visibility of "this access had to
// go to memory".
//
// Storage is structure-of-arrays: the way-scan in find() only touches the
// tag and flag arrays, so a probe pulls one or two cache lines of host
// memory instead of striding across fat per-line records; ready_at/lru are
// read only on a match. Set and tag extraction are pure shifts (geometry is
// validated to powers of two at construction).
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace tlrob {

struct CacheGeometry {
  u64 size_bytes = 32 << 10;
  u32 ways = 4;
  u32 line_bytes = 32;
  u32 hit_latency = 1;
};

class Cache {
 public:
  Cache(std::string name, const CacheGeometry& geo);

  struct Probe {
    bool present = false;     // tag match (line resident or in flight)
    Cycle ready_at = 0;       // when the line's data is/was available
    bool fill_from_memory = false;  // in-flight fill originates at DRAM
  };

  /// Tag lookup at cycle `now`; touches LRU on a match. Defined inline:
  /// this is the hottest call in the memory system (every access, every
  /// level), and the hit path must not pay a call.
  Probe probe(Addr addr, Cycle now) {
    cnt_accesses_->inc();
    Probe p;
    const u32 i = find(addr);
    if (i != kNotFound) {
      p.present = true;
      p.ready_at = ready_at_[i];
      p.fill_from_memory = (flags_[i] & kFromMemory) != 0;
      lru_[i] = ++stamp_;
      if (p.ready_at > now) cnt_mshr_merges_->inc();
    } else {
      cnt_misses_->inc();
    }
    return p;
  }

  /// Installs `addr`'s line with data arriving at `ready_at`. Returns true
  /// if a line was allocated; false when every way of the set holds an
  /// in-flight fill (the access then bypasses this level). The evicted dirty
  /// line, if any, is reported through `evicted_dirty`; when `evicted_addr`
  /// is non-null it receives the victim's line-aligned address (valid only
  /// when `*evicted_dirty` was set), which the CMP backend needs to route
  /// the writeback to the correct DRAM bank.
  bool fill(Addr addr, Cycle now, Cycle ready_at, bool from_memory, bool* evicted_dirty,
            Addr* evicted_addr = nullptr);

  /// Marks the line dirty (stores); returns whether the line was resident
  /// (false = silently dropped, the caller may forward the write downward).
  bool mark_dirty(Addr addr) {
    const u32 i = find(addr);
    if (i == kNotFound) return false;
    flags_[i] |= kDirty;
    return true;
  }

  /// Invalidates everything (used between experiment phases).
  void clear();

  const CacheGeometry& geometry() const { return geo_; }
  u32 sets() const { return sets_; }
  const std::string& name() const { return name_; }
  StatGroup& stats() { return stats_; }

 private:
  static constexpr u32 kNotFound = ~0u;
  static constexpr u8 kValid = 1;
  static constexpr u8 kDirty = 2;
  static constexpr u8 kFromMemory = 4;

  u64 set_of(Addr addr) const { return (addr >> line_shift_) & set_mask_; }
  u64 tag_of(Addr addr) const { return (addr >> line_shift_) >> set_shift_; }

  /// Way-scan over the flat tag/flag arrays; returns the line's index into
  /// the SoA columns, or kNotFound.
  u32 find(Addr addr) const {
    const u64 line = addr >> line_shift_;
    const u32 base = static_cast<u32>((line & set_mask_) * geo_.ways);
    const u64 tag = line >> set_shift_;
    for (u32 w = 0; w < geo_.ways; ++w) {
      const u32 i = base + w;
      if ((flags_[i] & kValid) != 0 && tags_[i] == tag) return i;
    }
    return kNotFound;
  }

  std::string name_;
  CacheGeometry geo_;
  u32 sets_;
  u32 line_shift_;  // log2(line_bytes)
  u32 set_shift_;   // log2(sets)
  u64 set_mask_;    // sets - 1
  // Structure-of-arrays line state, set-major ([set * ways + way]).
  std::vector<u64> tags_;
  std::vector<Cycle> ready_at_;
  std::vector<u64> lru_;   // last-touch stamp
  std::vector<u8> flags_;  // kValid | kDirty | kFromMemory
  u64 stamp_ = 0;
  StatGroup stats_;
  // Cached stat handles (StatGroup map nodes are address-stable and reset()
  // zeroes in place); probe() runs on every memory access, so the per-call
  // map lookups were measurable. Declared after stats_.
  Counter* cnt_accesses_;
  Counter* cnt_misses_;
  Counter* cnt_mshr_merges_;
  Counter* cnt_fill_bypass_;
  Counter* cnt_evictions_;
};

}  // namespace tlrob
