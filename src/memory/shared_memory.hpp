// Shared memory-side backend for CMP configurations: one LLC + banked DRAM
// behind every core's private L2.
//
// The backend keeps the latency-chain contract of the per-core hierarchy —
// request_fill() resolves the whole LLC/DRAM path at issue time and returns
// an absolute completion cycle — so cores stay free to idle-fast-forward
// independently of the memory side. Cross-core contention is real, though:
// the LLC's line state is shared (thrashing threads evict each other), a
// bounded MSHR pool throttles concurrent fills from all cores, in-flight
// fills merge across cores, and DRAM bank/row/bus conflicts serialise in
// arrival order.
//
// Unlike MemoryChannel, completion times here are NOT monotonic in request
// order (two channels' banks complete out of order), so the outstanding-fill
// pool is a small min-scanned vector rather than a FIFO ring. The pool also
// records which core initiated each fill, which is what makes cross-core
// MSHR merges attributable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "memory/cache.hpp"
#include "memory/dram.hpp"

namespace tlrob {

class CoreGate;

struct LlcConfig {
  /// Routes L2 misses through the shared backend even for num_cores == 1
  /// (a single-core machine with an LLC). CMP machines always enable it.
  bool enabled = false;
  CacheGeometry geo{8 << 20, 16, 128, 24};  // 8 MB, 16-way, 128 B, 24 cycles
  u32 mshr_entries = 32;                    // outstanding DRAM fills, all cores
};

class SharedMemory {
 public:
  SharedMemory(const LlcConfig& llc, const DramConfig& dram);

  struct Fill {
    Cycle ready = 0;        // absolute cycle the line reaches the requesting L2
    bool llc_miss = false;  // the line (or the fill it merged into) went to DRAM
    // Stall-taxonomy segment edges of the latency chain (absolute cycles,
    // only meaningful when <= ready). LLC time (tag check + MSHR-pool
    // queueing + cross-core merge wait) runs to seg_llc_end, DRAM bank/row
    // time to seg_dram_end, and the remainder up to `ready` is channel-bus
    // serialisation. LLC hits and merged fills attribute the whole chain to
    // the LLC bucket (both edges == ready): the wait is by definition
    // queueing behind shared-cache state.
    Cycle seg_llc_end = 0;
    Cycle seg_dram_end = 0;
  };

  /// L2-miss fill from core `core` issued at cycle `when` (the core's L2 tag
  /// check is already paid). Returns the completion cycle and whether DRAM
  /// was involved — the CMP-mode trigger for the second-level ROB.
  Fill request_fill(Addr addr, Cycle when, u32 core);

  /// Dirty L2 victim writeback. Absorbed by the LLC when the line is
  /// resident (inclusive-victim path: mark dirty, no traffic); otherwise it
  /// goes to DRAM.
  void request_writeback(Addr addr, Cycle when, u32 core);

  /// MSHR-pool and DRAM invariants; empty string when consistent.
  std::string audit_check() const;

  Cache& llc() { return *llc_; }
  const Cache& llc() const { return *llc_; }
  DramModel& dram() { return *dram_; }
  const DramModel& dram() const { return *dram_; }
  StatGroup& stats() { return stats_; }
  const StatGroup& stats() const { return stats_; }
  const LlcConfig& config() const { return cfg_; }

  u32 inflight_count() const { return static_cast<u32>(inflight_.size()); }

  /// Parallel-engine ordering gate (common/sync.hpp). While attached, every
  /// request_fill/request_writeback first blocks in CoreGate::sync() until
  /// the calling core's published clock is the global minimum, which makes
  /// the backend's mutation order exactly the serial lockstep order — the
  /// backend itself stays single-threaded-in-effect and unannotated.
  /// nullptr (the default, and what CmpMachine restores after a parallel
  /// run) keeps every call a plain unsynchronised access.
  void set_gate(CoreGate* gate) { gate_ = gate; }

  /// MSHR occupancy as the serial engine would observe it at the point with
  /// order key (serial_cycle, core): publishes the caller's clock and waits
  /// for global minimality before reading. With no gate attached this is
  /// inflight_count(). Used by the interval sampler, whose sample for label
  /// L reads the pool after cycle L-1 completed on the sampling core.
  u32 inflight_count_at(Cycle serial_cycle, u32 core);

  /// audit_check() ordered at the caller's currently published clock: waits
  /// for global minimality (no clock advance — the auditor runs inside the
  /// owning core's tick, whose clock is already current). With no gate this
  /// is plain audit_check().
  std::string audit_check_at(u32 core) const;

  /// Attaches a Chrome trace writer (nullptr detaches) for the backend's
  /// pseudo-process: an MSHR-pool occupancy counter track plus cross-core
  /// merge instants on an "llc" track (tid = one past the DRAM bank tids),
  /// and per-bank row-buffer instants via DramModel::attach_chrome_trace.
  /// Every hook fires inside a request call — state-changing ticks only — so
  /// the trace is identical under machine-wide idle fast-forward.
  void attach_chrome_trace(obs::ChromeTraceWriter* w);

  void reset_stats();

  /// Corruption hook for the invariant-audit tests: duplicates the newest
  /// outstanding fill so the MSHR pool self-check trips.
  void corrupt_inflight_for_test();

 private:
  struct InflightFill {
    u64 line;    // addr >> line_shift
    u32 core;    // initiating core (cross-core merge attribution)
    Cycle done;
  };

  /// Drops completed fills and returns the earliest cycle >= `when` at which
  /// the MSHR pool has a free entry.
  Cycle admit(Cycle when);

  LlcConfig cfg_;
  u32 line_shift_;
  std::unique_ptr<Cache> llc_;
  std::unique_ptr<DramModel> dram_;
  // Outstanding DRAM fills. Completions are non-monotonic across channels,
  // so admit() min-scans; the pool is bounded by mshr_entries, so the scan
  // is short.
  std::vector<InflightFill> inflight_;
  CoreGate* gate_ = nullptr;  // attached only during a parallel CmpMachine run
  obs::ChromeTraceWriter* trace_ = nullptr;
  ThreadId llc_tid_ = 0;  // trace track one past the DRAM bank tracks
  StatGroup stats_;
  Counter* cnt_cross_core_merges_;
  Counter* cnt_mshr_full_stalls_;
  Counter* cnt_writebacks_in_;
  Counter* cnt_writeback_misses_;
};

}  // namespace tlrob
