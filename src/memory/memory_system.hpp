// The full hierarchy of Table 1: split L1I/L1D, unified L2, memory channel.
//
// Data accesses are resolved with the latency-chain model: the entire path of
// an access is computed at issue time and returned as absolute cycles; cache
// line state carries in-flight fills so later accesses merge correctly.
#pragma once

#include <memory>

#include "memory/cache.hpp"
#include "memory/memory_channel.hpp"

namespace tlrob {

class SharedMemory;

struct MemoryConfig {
  CacheGeometry l1i{64 << 10, 2, 64, 1};    // 64 KB, 2-way, 64 B, 1 cycle
  CacheGeometry l1d{32 << 10, 4, 32, 1};    // 32 KB, 4-way, 32 B, 1 cycle
  CacheGeometry l2{2 << 20, 8, 128, 10};    // 2 MB, 8-way, 128 B, 10 cycles
  MemoryChannelConfig channel{};
};

/// Timing outcome of one data access.
struct DataAccess {
  Cycle data_ready = 0;       // absolute cycle the value is available
  bool l1_hit = false;        // data was ready in L1 at lookup time
  bool l2_miss = false;       // the access (or the fill it merged into) went to memory
  Cycle l2_miss_detect = 0;   // cycle at which the L2 miss is discovered
  // Stall-taxonomy segment edges (absolute cycles, non-decreasing, all <=
  // data_ready): private L1/L2 time runs to seg_private, shared-LLC time to
  // seg_llc, DRAM bank/row time to seg_dram; any remainder up to data_ready
  // is channel-bus serialisation. Accesses that never leave the private
  // hierarchy (L1 hits, L2 hits, in-flight merges, legacy channel fills)
  // have all three edges == data_ready.
  Cycle seg_private = 0;
  Cycle seg_llc = 0;
  Cycle seg_dram = 0;
};

class MemorySystem {
 public:
  /// When `backend` is non-null, L2 misses route through the shared LLC/DRAM
  /// backend (CMP mode) instead of the private fixed-latency channel;
  /// `core_id` attributes the requests for cross-core MSHR merge accounting.
  /// With a null backend the hierarchy behaves exactly as before.
  explicit MemorySystem(const MemoryConfig& cfg, SharedMemory* backend = nullptr,
                        u32 core_id = 0);

  /// Data-side access issued at cycle `now` (address generation already
  /// accounted by the caller). Stores follow the same fill path (write-
  /// allocate) and dirty the line.
  DataAccess access_data(Addr addr, bool is_store, Cycle now);

  /// Instruction fetch of the line containing `pc`; returns the cycle the
  /// line is available (== now for an L1I hit, since Table 1's 1-cycle hit
  /// is part of the fetch stage itself).
  Cycle access_inst(Addr pc, Cycle now);

  /// Architectural cache pre-warming: installs the lines of
  /// [base, base+bytes) as instantly-ready and clean, bypassing the channel.
  /// Used before measurement so that cache-resident working sets start
  /// resident (the stand-in for Simpoint functional warming); touch order is
  /// LRU order, so content touched later survives capacity pressure. A
  /// region's frequently-reused prefix of `hot_prefix_bytes` is warmed last.
  void prewarm_region(Addr base, u64 bytes, u64 hot_prefix_bytes = 0);

  Cache& l1i() { return *l1i_; }
  Cache& l1d() { return *l1d_; }
  Cache& l2() { return *l2_; }
  MemoryChannel& channel() { return *channel_; }
  const MemoryConfig& config() const { return cfg_; }

 private:
  /// Looks up the L2 at `when`; returns when the line (containing `addr`)
  /// can be delivered upward, and whether memory was involved. The seg_*
  /// edges mirror DataAccess (all == ready for paths that stay private).
  struct L2Result {
    Cycle ready;
    bool from_memory;
    Cycle seg_private;
    Cycle seg_llc;
    Cycle seg_dram;
  };
  L2Result access_l2(Addr addr, Cycle when);

  MemoryConfig cfg_;
  std::unique_ptr<Cache> l1i_;
  std::unique_ptr<Cache> l1d_;
  std::unique_ptr<Cache> l2_;
  std::unique_ptr<MemoryChannel> channel_;
  SharedMemory* backend_ = nullptr;  // not owned; shared across cores
  u32 core_id_ = 0;
};

}  // namespace tlrob
