#include "memory/shared_memory.hpp"

#include <algorithm>
#include <sstream>

#include "common/sync.hpp"
#include "obs/chrome_trace.hpp"

namespace tlrob {
namespace {

u32 log2_pow2(u64 v) {
  u32 s = 0;
  while ((v >> s) > 1) ++s;
  return s;
}

}  // namespace

SharedMemory::SharedMemory(const LlcConfig& llc, const DramConfig& dram) : cfg_(llc) {
  DramConfig d = dram;
  d.line_bytes = llc.geo.line_bytes;
  line_shift_ = log2_pow2(llc.geo.line_bytes);
  llc_ = std::make_unique<Cache>("llc", llc.geo);
  dram_ = std::make_unique<DramModel>(d);
  cnt_cross_core_merges_ = &stats_.counter("cross_core_merges");
  cnt_mshr_full_stalls_ = &stats_.counter("mshr_full_stalls");
  cnt_writebacks_in_ = &stats_.counter("writebacks_in");
  cnt_writeback_misses_ = &stats_.counter("writeback_misses");
}

Cycle SharedMemory::admit(Cycle when) {
  auto drop_through = [&](Cycle t) {
    for (size_t i = 0; i < inflight_.size();) {
      if (inflight_[i].done <= t) {
        inflight_[i] = inflight_.back();
        inflight_.pop_back();
      } else {
        ++i;
      }
    }
  };
  drop_through(when);
  if (inflight_.size() < cfg_.mshr_entries) return when;
  cnt_mshr_full_stalls_->inc();
  Cycle earliest = inflight_.front().done;
  for (const InflightFill& f : inflight_) earliest = std::min(earliest, f.done);
  drop_through(earliest);
  return earliest;
}

SharedMemory::Fill SharedMemory::request_fill(Addr addr, Cycle when, u32 core) {
  // Parallel engine: block until (clock[core], core) is the global minimum,
  // so this mutation lands in exactly the serial lockstep position. The key
  // is the caller's published tick cycle, NOT `when` (`when` is the L2 tag
  // completion, which can land mid-chain); cores issue backend calls in
  // program order within a tick, so the gate's per-core FIFO-by-construction
  // ordering finishes the serial key (cycle, core, program order).
  if (gate_ != nullptr) gate_->sync(core);
  const Cycle tag_done = when + cfg_.geo.hit_latency;
  const Cache::Probe p = llc_->probe(addr, tag_done);
  if (p.present) {
    if (p.ready_at > tag_done) {
      // Merged into an in-flight fill; attribute merges initiated by another
      // core. Lines can transiently appear twice in the pool (fill-bypass
      // re-requests), but the newest entry is the one the merge rides.
      const u64 line = addr >> line_shift_;
      for (auto it = inflight_.rbegin(); it != inflight_.rend(); ++it) {
        if (it->line == line) {
          if (it->core != core) {
            cnt_cross_core_merges_->inc();
            if (trace_ != nullptr)
              trace_->instant_event(llc_tid_, "cross_core_merge", tag_done,
                                    {{"core", core}, {"owner", it->core}});
          }
          break;
        }
      }
    }
    const Cycle ready = std::max(p.ready_at, tag_done);
    return {ready, p.ready_at > tag_done && p.fill_from_memory, ready, ready};
  }
  const Cycle start = admit(tag_done);
  const DramModel::Access a = dram_->read(addr, start);
  bool evicted_dirty = false;
  Addr victim = 0;
  llc_->fill(addr, tag_done, a.done, /*from_memory=*/true, &evicted_dirty, &victim);
  if (evicted_dirty) dram_->write(victim, a.done);
  inflight_.push_back({addr >> line_shift_, core, a.done});
  if (trace_ != nullptr)
    trace_->counter_event(llc_tid_, "llc_mshr_occupancy", start,
                          static_cast<u64>(inflight_.size()));
  return {a.done, true, start, a.row_done};
}

void SharedMemory::request_writeback(Addr addr, Cycle when, u32 core) {
  if (gate_ != nullptr) gate_->sync(core);
  cnt_writebacks_in_->inc();
  if (llc_->mark_dirty(addr)) return;  // resident: absorbed, dirty in the LLC
  cnt_writeback_misses_->inc();
  dram_->write(addr, when);
}

u32 SharedMemory::inflight_count_at(Cycle serial_cycle, u32 core) {
  if (gate_ != nullptr) {
    gate_->advance(core, serial_cycle);
    gate_->sync(core);
  }
  return inflight_count();
}

std::string SharedMemory::audit_check_at(u32 core) const {
  if (gate_ != nullptr) gate_->sync(core);
  return audit_check();
}

std::string SharedMemory::audit_check() const {
  if (inflight_.size() > cfg_.mshr_entries) {
    std::ostringstream os;
    os << "llc: MSHR pool overflow (" << inflight_.size() << " > " << cfg_.mshr_entries << ")";
    return os.str();
  }
  return dram_->audit_check();
}

void SharedMemory::attach_chrome_trace(obs::ChromeTraceWriter* w) {
  trace_ = w;
  llc_tid_ = static_cast<ThreadId>(dram_->config().channels * dram_->config().banks_per_channel);
  dram_->attach_chrome_trace(w);
  if (trace_ != nullptr) trace_->set_thread_name(llc_tid_, "llc mshr pool");
}

void SharedMemory::reset_stats() {
  llc_->stats().reset();
  dram_->stats().reset();
  stats_.reset();
}

void SharedMemory::corrupt_inflight_for_test() {
  while (inflight_.size() <= cfg_.mshr_entries)
    inflight_.push_back({~0ull, 0, ~Cycle{0}});
}

}  // namespace tlrob
