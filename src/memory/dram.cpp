#include "memory/dram.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/chrome_trace.hpp"

namespace tlrob {
namespace {

u32 log2_pow2(u64 v) {
  u32 s = 0;
  while ((v >> s) > 1) ++s;
  return s;
}

bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

DramModel::DramModel(const DramConfig& cfg) : cfg_(cfg) {
  if (!is_pow2(cfg.channels) || !is_pow2(cfg.banks_per_channel))
    throw std::invalid_argument("dram: channels and banks must be powers of two");
  if (!is_pow2(cfg.line_bytes) || !is_pow2(cfg.row_bytes) || cfg.row_bytes < cfg.line_bytes)
    throw std::invalid_argument("dram: row/line sizes must be powers of two, row >= line");
  line_shift_ = log2_pow2(cfg.line_bytes);
  channel_shift_ = log2_pow2(cfg.channels);
  bank_shift_ = log2_pow2(cfg.banks_per_channel);
  lines_per_row_ = cfg.row_bytes / cfg.line_bytes;
  row_group_shift_ = log2_pow2(lines_per_row_);
  const u32 unit = cfg.critical_bytes > 0 ? std::min(cfg.critical_bytes, cfg.line_bytes)
                                          : cfg.line_bytes;
  const u32 chunks = std::max<u32>(1, unit / std::max<u32>(1, cfg.bus_bytes));
  transfer_ = static_cast<Cycle>(chunks) * cfg.interchunk;
  const u32 banks = cfg.channels * cfg.banks_per_channel;
  bank_busy_until_.assign(banks, 0);
  bank_open_row_.assign(banks, 0);
  bank_row_valid_.assign(banks, 0);
  bus_free_.assign(cfg.channels, 0);
  cnt_reads_ = &stats_.counter("reads");
  cnt_writebacks_ = &stats_.counter("writebacks");
  cnt_row_hits_ = &stats_.counter("row_hits");
  cnt_row_misses_ = &stats_.counter("row_misses");
  cnt_row_conflicts_ = &stats_.counter("row_conflicts");
}

DramModel::BankRef DramModel::map(Addr addr) const {
  const u64 line = addr >> line_shift_;
  const u32 channel = static_cast<u32>(line & (cfg_.channels - 1));
  const u64 per_channel = line >> channel_shift_;
  const u64 row_group = per_channel >> row_group_shift_;
  const u32 bank = static_cast<u32>(row_group & (cfg_.banks_per_channel - 1));
  const u64 row = row_group >> bank_shift_;
  return {channel, bank, row};
}

DramModel::Timing DramModel::access_bank(Addr addr, Cycle when) {
  const BankRef ref = map(addr);
  const u32 i = ref.channel * cfg_.banks_per_channel + ref.bank;
  const Cycle start = std::max(when, bank_busy_until_[i]);

  RowOutcome outcome;
  Cycle latency;
  if (bank_row_valid_[i] == 0) {
    outcome = RowOutcome::kMiss;
    latency = cfg_.trcd + cfg_.tcas;
  } else if (bank_open_row_[i] == ref.row) {
    outcome = RowOutcome::kHit;
    latency = cfg_.tcas;
  } else {
    outcome = RowOutcome::kConflict;
    latency = cfg_.trp + cfg_.trcd + cfg_.tcas;
  }
  const Cycle data_at = start + latency;

  if (cfg_.open_page) {
    bank_open_row_[i] = ref.row;
    bank_row_valid_[i] = 1;
    bank_busy_until_[i] = data_at;
  } else {
    // Auto-precharge: the bank closes after the access and pays the
    // precharge before it can serve the next request.
    bank_row_valid_[i] = 0;
    bank_busy_until_[i] = data_at + cfg_.trp;
  }

  switch (outcome) {
    case RowOutcome::kHit: cnt_row_hits_->inc(); break;
    case RowOutcome::kMiss: cnt_row_misses_->inc(); break;
    case RowOutcome::kConflict: cnt_row_conflicts_->inc(); break;
  }
  if (trace_ != nullptr) {
    const char* name = outcome == RowOutcome::kHit     ? "row_hit"
                       : outcome == RowOutcome::kMiss  ? "row_open"
                                                       : "row_conflict";
    trace_->instant_event(static_cast<ThreadId>(i), name, start, {{"row", ref.row}});
  }
  return {data_at, outcome};
}

DramModel::Access DramModel::read(Addr addr, Cycle when) {
  const Timing t = access_bank(addr, when);
  const u32 ch = static_cast<u32>((addr >> line_shift_) & (cfg_.channels - 1));
  const Cycle transfer_start = std::max(t.data_at, bus_free_[ch]);
  const Cycle done = transfer_start + transfer_;
  bus_free_[ch] = done;
  cnt_reads_->inc();
  return {done, t.outcome, t.data_at};
}

DramModel::Access DramModel::write(Addr addr, Cycle when) {
  const Timing t = access_bank(addr, when);
  const u32 ch = static_cast<u32>((addr >> line_shift_) & (cfg_.channels - 1));
  const Cycle transfer_start = std::max(t.data_at, bus_free_[ch]);
  bus_free_[ch] = transfer_start + transfer_;
  cnt_writebacks_->inc();
  return {bus_free_[ch], t.outcome, t.data_at};
}

Cycle DramModel::bank_busy_until(u32 channel, u32 bank) const {
  return bank_busy_until_[channel * cfg_.banks_per_channel + bank];
}

bool DramModel::bank_row_open(u32 channel, u32 bank) const {
  return bank_row_valid_[channel * cfg_.banks_per_channel + bank] != 0;
}

u64 DramModel::bank_open_row(u32 channel, u32 bank) const {
  return bank_open_row_[channel * cfg_.banks_per_channel + bank];
}

std::string DramModel::audit_check() const {
  const u64 reads = stats_.counter_value("reads");
  const u64 writes = stats_.counter_value("writebacks");
  const u64 outcomes = stats_.counter_value("row_hits") + stats_.counter_value("row_misses") +
                       stats_.counter_value("row_conflicts");
  if (outcomes != reads + writes) {
    std::ostringstream os;
    os << "dram: row outcomes (" << outcomes << ") != reads+writebacks (" << reads + writes
       << ")";
    return os.str();
  }
  if (!cfg_.open_page) {
    for (u32 i = 0; i < bank_row_valid_.size(); ++i)
      if (bank_row_valid_[i] != 0) return "dram: closed-page bank holds an open row";
  }
  return {};
}

void DramModel::attach_chrome_trace(obs::ChromeTraceWriter* w) {
  trace_ = w;
  if (trace_ == nullptr) return;
  for (u32 ch = 0; ch < cfg_.channels; ++ch)
    for (u32 b = 0; b < cfg_.banks_per_channel; ++b) {
      const u32 tid = ch * cfg_.banks_per_channel + b;
      trace_->set_thread_name(static_cast<ThreadId>(tid),
                              "dram ch" + std::to_string(ch) + " bank" + std::to_string(b));
    }
}

void DramModel::reset() {
  std::fill(bank_busy_until_.begin(), bank_busy_until_.end(), 0);
  std::fill(bank_open_row_.begin(), bank_open_row_.end(), 0);
  std::fill(bank_row_valid_.begin(), bank_row_valid_.end(), 0);
  std::fill(bus_free_.begin(), bus_free_.end(), 0);
}

}  // namespace tlrob
