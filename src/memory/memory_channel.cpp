#include "memory/memory_channel.hpp"

#include <algorithm>

namespace tlrob {

MemoryChannel::MemoryChannel(const MemoryChannelConfig& cfg) : cfg_(cfg) {
  const u32 unit = cfg.critical_bytes > 0 ? std::min(cfg.critical_bytes, cfg.line_bytes)
                                          : cfg.line_bytes;
  const u32 chunks = std::max<u32>(1, unit / std::max<u32>(1, cfg.bus_bytes));
  transfer_ = static_cast<Cycle>(chunks) * cfg.interchunk;
  u32 cap = 8;
  while (cap < 2 * cfg.mshr_entries) cap <<= 1;
  fifo_.assign(cap, 0);
  cnt_fills_ = &stats_.counter("fills");
  cnt_writebacks_ = &stats_.counter("writebacks");
  cnt_mshr_full_stalls_ = &stats_.counter("mshr_full_stalls");
}

void MemoryChannel::push_done(Cycle done) {
  if (count_ == fifo_.size()) {  // transient overshoot past the MSHR pool
    std::vector<Cycle> bigger(fifo_.size() * 2);
    for (u32 i = 0; i < count_; ++i)
      bigger[i] = fifo_[(head_ + i) & (fifo_.size() - 1)];
    fifo_ = std::move(bigger);
    head_ = 0;
  }
  fifo_[(head_ + count_) & (fifo_.size() - 1)] = done;
  ++count_;
}

Cycle MemoryChannel::admit(Cycle when) {
  const u32 mask = static_cast<u32>(fifo_.size() - 1);
  while (count_ > 0 && fifo_[head_] <= when) {
    head_ = (head_ + 1) & mask;
    --count_;
  }
  if (count_ < cfg_.mshr_entries) return when;
  cnt_mshr_full_stalls_->inc();
  return fifo_[head_];
}

Cycle MemoryChannel::request_fill(Cycle when) {
  const Cycle start = admit(when);
  // DRAM access proceeds in parallel across banks; the bus serialises the
  // line transfers.
  const Cycle transfer_start = std::max(start + cfg_.first_chunk, bus_free_);
  const Cycle done = transfer_start + transfer_;
  bus_free_ = done;
  push_done(done);
  cnt_fills_->inc();
  return done;
}

void MemoryChannel::request_writeback(Cycle when) {
  bus_free_ = std::max(bus_free_, when) + transfer_;
  cnt_writebacks_->inc();
}

void MemoryChannel::reset() {
  bus_free_ = 0;
  head_ = 0;
  count_ = 0;
}

}  // namespace tlrob
