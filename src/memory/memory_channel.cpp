#include "memory/memory_channel.hpp"

#include <algorithm>

namespace tlrob {

MemoryChannel::MemoryChannel(const MemoryChannelConfig& cfg) : cfg_(cfg) {
  const u32 unit = cfg.critical_bytes > 0 ? std::min(cfg.critical_bytes, cfg.line_bytes)
                                          : cfg.line_bytes;
  const u32 chunks = std::max<u32>(1, unit / std::max<u32>(1, cfg.bus_bytes));
  transfer_ = static_cast<Cycle>(chunks) * cfg.interchunk;
}

Cycle MemoryChannel::admit(Cycle when) {
  while (!outstanding_.empty() && outstanding_.top() <= when) outstanding_.pop();
  if (outstanding_.size() < cfg_.mshr_entries) return when;
  const Cycle start = outstanding_.top();
  stats_.counter("mshr_full_stalls").inc();
  return start;
}

Cycle MemoryChannel::request_fill(Cycle when) {
  const Cycle start = admit(when);
  // DRAM access proceeds in parallel across banks; the bus serialises the
  // line transfers.
  const Cycle transfer_start = std::max(start + cfg_.first_chunk, bus_free_);
  const Cycle done = transfer_start + transfer_;
  bus_free_ = done;
  outstanding_.push(done);
  stats_.counter("fills").inc();
  return done;
}

void MemoryChannel::request_writeback(Cycle when) {
  bus_free_ = std::max(bus_free_, when) + transfer_;
  stats_.counter("writebacks").inc();
}

void MemoryChannel::reset() {
  bus_free_ = 0;
  while (!outstanding_.empty()) outstanding_.pop();
}

}  // namespace tlrob
