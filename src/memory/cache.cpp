#include "memory/cache.hpp"

#include <stdexcept>

namespace tlrob {

Cache::Cache(std::string name, const CacheGeometry& geo) : name_(std::move(name)), geo_(geo) {
  if (geo.line_bytes == 0 || (geo.line_bytes & (geo.line_bytes - 1)) != 0)
    throw std::invalid_argument(name_ + ": line size must be a power of two");
  const u64 lines = geo.size_bytes / geo.line_bytes;
  if (geo.ways == 0 || lines % geo.ways != 0)
    throw std::invalid_argument(name_ + ": line count must divide by ways");
  sets_ = static_cast<u32>(lines / geo.ways);
  if ((sets_ & (sets_ - 1)) != 0)
    throw std::invalid_argument(name_ + ": set count must be a power of two");
  lines_.resize(lines);
  cnt_accesses_ = &stats_.counter("accesses");
  cnt_misses_ = &stats_.counter("misses");
  cnt_mshr_merges_ = &stats_.counter("mshr_merges");
  cnt_fill_bypass_ = &stats_.counter("fill_bypass");
  cnt_evictions_ = &stats_.counter("evictions");
}

Cache::Line* Cache::find(Addr addr) {
  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);
  for (u32 w = 0; w < geo_.ways; ++w) {
    Line& l = lines_[set * geo_.ways + w];
    if (l.valid && l.tag == tag) return &l;
  }
  return nullptr;
}

Cache::Probe Cache::probe(Addr addr, Cycle now) {
  cnt_accesses_->inc();
  Probe p;
  if (Line* l = find(addr)) {
    p.present = true;
    p.ready_at = l->ready_at;
    p.fill_from_memory = l->fill_from_memory;
    l->lru = ++stamp_;
    if (l->ready_at > now) cnt_mshr_merges_->inc();
  } else {
    cnt_misses_->inc();
  }
  return p;
}

bool Cache::fill(Addr addr, Cycle now, Cycle ready_at, bool from_memory, bool* evicted_dirty) {
  if (evicted_dirty) *evicted_dirty = false;
  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);

  if (Line* l = find(addr)) {  // refresh an existing/in-flight line
    l->ready_at = std::max(l->ready_at, ready_at);
    return true;
  }

  // Victimise the LRU line whose fill has completed; in-flight lines are
  // locked. If every way is in flight, the access bypasses this level.
  Line* victim = nullptr;
  for (u32 w = 0; w < geo_.ways; ++w) {
    Line& l = lines_[set * geo_.ways + w];
    if (!l.valid) {
      victim = &l;
      break;
    }
    if (l.ready_at > now) continue;
    if (victim == nullptr || l.lru < victim->lru) victim = &l;
  }
  if (victim == nullptr) {
    cnt_fill_bypass_->inc();
    return false;
  }
  if (victim->valid && victim->dirty && evicted_dirty) *evicted_dirty = true;
  if (victim->valid) cnt_evictions_->inc();
  victim->valid = true;
  victim->tag = tag;
  victim->ready_at = ready_at;
  victim->dirty = false;
  victim->fill_from_memory = from_memory;
  victim->lru = ++stamp_;
  return true;
}

void Cache::mark_dirty(Addr addr) {
  if (Line* l = find(addr)) l->dirty = true;
}

void Cache::clear() {
  for (auto& l : lines_) l = Line{};
  stamp_ = 0;
}

}  // namespace tlrob
