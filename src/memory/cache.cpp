#include "memory/cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace tlrob {
namespace {

u32 log2_pow2(u64 v) {
  u32 s = 0;
  while ((v >> s) > 1) ++s;
  return s;
}

}  // namespace

Cache::Cache(std::string name, const CacheGeometry& geo) : name_(std::move(name)), geo_(geo) {
  if (geo.line_bytes == 0 || (geo.line_bytes & (geo.line_bytes - 1)) != 0)
    throw std::invalid_argument(name_ + ": line size must be a power of two");
  const u64 lines = geo.size_bytes / geo.line_bytes;
  if (geo.ways == 0 || lines % geo.ways != 0)
    throw std::invalid_argument(name_ + ": line count must divide by ways");
  sets_ = static_cast<u32>(lines / geo.ways);
  if ((sets_ & (sets_ - 1)) != 0)
    throw std::invalid_argument(name_ + ": set count must be a power of two");
  line_shift_ = log2_pow2(geo.line_bytes);
  set_shift_ = log2_pow2(sets_);
  set_mask_ = sets_ - 1;
  tags_.assign(lines, 0);
  ready_at_.assign(lines, 0);
  lru_.assign(lines, 0);
  flags_.assign(lines, 0);
  cnt_accesses_ = &stats_.counter("accesses");
  cnt_misses_ = &stats_.counter("misses");
  cnt_mshr_merges_ = &stats_.counter("mshr_merges");
  cnt_fill_bypass_ = &stats_.counter("fill_bypass");
  cnt_evictions_ = &stats_.counter("evictions");
}

bool Cache::fill(Addr addr, Cycle now, Cycle ready_at, bool from_memory, bool* evicted_dirty,
                 Addr* evicted_addr) {
  if (evicted_dirty) *evicted_dirty = false;

  const u32 hit = find(addr);
  if (hit != kNotFound) {  // refresh an existing/in-flight line
    ready_at_[hit] = std::max(ready_at_[hit], ready_at);
    return true;
  }

  // Victimise the LRU line whose fill has completed; in-flight lines are
  // locked. If every way is in flight, the access bypasses this level.
  const u32 base = static_cast<u32>(set_of(addr) * geo_.ways);
  u32 victim = kNotFound;
  for (u32 w = 0; w < geo_.ways; ++w) {
    const u32 i = base + w;
    if ((flags_[i] & kValid) == 0) {
      victim = i;
      break;
    }
    if (ready_at_[i] > now) continue;
    if (victim == kNotFound || lru_[i] < lru_[victim]) victim = i;
  }
  if (victim == kNotFound) {
    cnt_fill_bypass_->inc();
    return false;
  }
  const u8 vf = flags_[victim];
  if ((vf & kValid) != 0 && (vf & kDirty) != 0 && evicted_dirty) {
    *evicted_dirty = true;
    if (evicted_addr)
      *evicted_addr = ((tags_[victim] << set_shift_) | set_of(addr)) << line_shift_;
  }
  if ((vf & kValid) != 0) cnt_evictions_->inc();
  tags_[victim] = tag_of(addr);
  ready_at_[victim] = ready_at;
  flags_[victim] = static_cast<u8>(kValid | (from_memory ? kFromMemory : 0));
  lru_[victim] = ++stamp_;
  return true;
}

void Cache::clear() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(ready_at_.begin(), ready_at_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  std::fill(flags_.begin(), flags_.end(), 0);
  stamp_ = 0;
}

}  // namespace tlrob
