// Main-memory channel (Table 1: 64-bit wide bus, 500-cycle first-chunk
// access, 2-cycle interchunk).
//
// DRAM access latency overlaps across outstanding misses (banked memory);
// the data bus serialises line transfers; a bounded MSHR pool limits the
// number of fills in flight. Together these give memory-level parallelism
// with the diminishing returns the paper's MLP argument relies on.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace tlrob {

struct MemoryChannelConfig {
  u32 bus_bytes = 8;           // 64-bit wide
  Cycle first_chunk = 500;     // access latency to the first chunk
  Cycle interchunk = 2;        // per additional chunk
  u32 line_bytes = 128;        // L2 line (transfer unit)
  /// Critical-chunk-first delivery: the requester is unblocked once this
  /// many bytes have arrived (one L1-D line); the rest of the L2 line
  /// streams in the background without serialising later fills. 0 disables
  /// (full-line occupancy, the pessimistic model).
  u32 critical_bytes = 32;
  u32 mshr_entries = 24;       // outstanding line fills
};

class MemoryChannel {
 public:
  explicit MemoryChannel(const MemoryChannelConfig& cfg);

  /// Requests a full-line fill at cycle `when`; returns the cycle at which
  /// the complete line has arrived.
  Cycle request_fill(Cycle when);

  /// Queues a dirty-line writeback: occupies bus bandwidth but nobody waits
  /// for it.
  void request_writeback(Cycle when);

  /// Transfer time of one line over the bus.
  Cycle transfer_cycles() const { return transfer_; }

  StatGroup& stats() { return stats_; }
  void reset();

 private:
  /// Drops completed fills and returns the earliest outstanding completion
  /// (or `when` if the MSHR pool has room).
  Cycle admit(Cycle when);
  void push_done(Cycle done);

  MemoryChannelConfig cfg_;
  Cycle transfer_;
  Cycle bus_free_ = 0;
  // Outstanding fill completions, oldest at `head_`. Completion times are
  // non-decreasing (every fill's `done` is at least `bus_free_`, which is
  // the previous fill's `done`), so a plain FIFO ring is ordered by value:
  // the front IS the earliest outstanding completion, and admit() is O(1)
  // where the old priority queue paid a heap op per fill. The ring grows
  // (rarely) because requests stalled on a full MSHR pool are still pushed,
  // so occupancy transiently overshoots mshr_entries.
  std::vector<Cycle> fifo_;  // capacity kept a power of two
  u32 head_ = 0;
  u32 count_ = 0;
  StatGroup stats_;
  Counter* cnt_fills_;
  Counter* cnt_writebacks_;
  Counter* cnt_mshr_full_stalls_;
};

}  // namespace tlrob
