// Banked DRAM timing model (channels × banks, open-page row buffers).
//
// Replaces the fixed-latency MemoryChannel behind the shared LLC in CMP
// configurations. The model keeps the latency-chain discipline of the rest
// of the memory system: a request's entire timing is resolved at issue time
// from per-bank row-buffer state and per-channel bus occupancy, and the
// caller receives an absolute completion cycle. There are no autonomous
// memory-side events, which is what keeps multi-core idle fast-forward safe.
//
// Timing follows the classic tCAS/tRCD/tRP decomposition:
//   row-buffer hit       tCAS                  (column access only)
//   row-buffer miss      tRCD + tCAS           (activate a closed bank)
//   row-buffer conflict  tRP + tRCD + tCAS     (precharge, then activate)
//
// Scheduling is FR-FCFS-shaped within the latency-chain constraint: requests
// serialise per bank (a bank's busy window is its row command time), the
// open-page policy keeps the last row latched so same-row streams hit, and
// each channel's data bus serialises transfers. True request reordering is
// impossible when every access is resolved at issue time, so this is the
// deterministic first-ready approximation: arrival order *is* service order,
// and row locality is rewarded through the open row buffer.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace tlrob {

namespace obs {
class ChromeTraceWriter;
}

struct DramConfig {
  u32 channels = 2;           // line-interleaved
  u32 banks_per_channel = 8;
  u32 row_bytes = 2048;       // row-buffer size per bank
  Cycle tcas = 240;           // column access (row-buffer hit)
  Cycle trcd = 160;           // activate (closed bank)
  Cycle trp = 100;            // precharge (row conflict)
  u32 bus_bytes = 8;          // per-channel data-bus width
  Cycle interchunk = 2;       // per bus chunk
  u32 line_bytes = 128;       // transfer unit (LLC line)
  /// Critical-chunk-first: requester unblocks after this many bytes (0 =
  /// full line), mirroring MemoryChannelConfig::critical_bytes.
  u32 critical_bytes = 32;
  /// Open-page keeps the accessed row latched (hit/conflict dynamics);
  /// closed-page auto-precharges after every access (every access pays tRCD).
  bool open_page = true;
};

class DramModel {
 public:
  enum class RowOutcome : u8 { kHit, kMiss, kConflict };

  struct Access {
    Cycle done = 0;            // line fully transferred (fill completion)
    RowOutcome outcome = RowOutcome::kMiss;
    /// Cycle the bank delivers data (row command chain complete, before the
    /// channel-bus transfer) — the DRAM-core / bus boundary of the latency
    /// chain, used by the stall-cycle taxonomy to split DRAM time from bus
    /// serialisation time.
    Cycle row_done = 0;
  };

  explicit DramModel(const DramConfig& cfg);

  /// Line read (fill) issued at `when`; returns the completion cycle and the
  /// row-buffer outcome. Requests to the same bank serialise; requests to
  /// distinct banks/channels overlap.
  Access read(Addr addr, Cycle when);

  /// Dirty-line writeback: occupies the bank and the channel bus but nobody
  /// waits for it.
  Access write(Addr addr, Cycle when);

  /// Bank/bus state invariants; empty string when consistent.
  std::string audit_check() const;

  // Introspection for the timing tests.
  struct BankRef {
    u32 channel;
    u32 bank;
    u64 row;
  };
  BankRef map(Addr addr) const;
  Cycle bank_busy_until(u32 channel, u32 bank) const;
  bool bank_row_open(u32 channel, u32 bank) const;
  u64 bank_open_row(u32 channel, u32 bank) const;
  Cycle transfer_cycles() const { return transfer_; }

  const DramConfig& config() const { return cfg_; }
  StatGroup& stats() { return stats_; }
  const StatGroup& stats() const { return stats_; }
  void reset();

  /// Attaches a Chrome trace writer (nullptr detaches): every bank access
  /// records a row-buffer instant ("row_hit" / "row_open" / "row_conflict")
  /// on a per-bank track (tid = channel * banks_per_channel + bank) with the
  /// row number as an arg. Pure recording inside the request path — timing
  /// and counters are unchanged, so attachment cannot perturb a run.
  void attach_chrome_trace(obs::ChromeTraceWriter* w);

 private:
  struct Timing {
    Cycle data_at;
    RowOutcome outcome;
  };
  /// Resolves bank state at `when`: row outcome, command timing, row-buffer
  /// update. Shared by read and write.
  Timing access_bank(Addr addr, Cycle when);

  DramConfig cfg_;
  u32 line_shift_;
  u32 channel_shift_;   // log2(channels)
  u32 bank_shift_;      // log2(banks_per_channel)
  u64 lines_per_row_;   // row_bytes / line_bytes
  u32 row_group_shift_; // log2(lines_per_row_)
  Cycle transfer_;
  // Structure-of-arrays bank state, channel-major ([channel * banks + bank]).
  std::vector<Cycle> bank_busy_until_;
  std::vector<u64> bank_open_row_;
  std::vector<u8> bank_row_valid_;
  std::vector<Cycle> bus_free_;  // per channel
  obs::ChromeTraceWriter* trace_ = nullptr;
  StatGroup stats_;
  Counter* cnt_reads_;
  Counter* cnt_writebacks_;
  Counter* cnt_row_hits_;
  Counter* cnt_row_misses_;
  Counter* cnt_row_conflicts_;
};

}  // namespace tlrob
