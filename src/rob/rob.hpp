// Per-thread reorder buffer.
//
// The ROB owns the DynInst storage for its thread's in-flight window; other
// structures hold pointers into it. std::deque guarantees reference stability
// for everything except the erased elements under push_back/pop_front/
// pop_back, which are the only mutations performed. (tid, tseq) lookups are
// O(1) because the window always holds a contiguous tseq range.
//
// Capacity is dynamic: `base_capacity` is the first-level size (32 in Table
// 1); the two-level controller grants/revokes `extra` entries when the
// shared second-level partition is allocated to this thread.
#pragma once

#include <deque>

#include "pipeline/dyn_inst.hpp"

namespace tlrob {

class ReorderBuffer {
 public:
  explicit ReorderBuffer(u32 base_capacity) : base_capacity_(base_capacity) {}

  u32 base_capacity() const { return base_capacity_; }
  u32 capacity() const { return base_capacity_ + extra_; }
  u32 size() const { return static_cast<u32>(insts_.size()); }
  bool empty() const { return insts_.empty(); }
  bool full() const { return size() >= capacity(); }

  /// True when the first level alone is exhausted (a reactive-allocation
  /// precondition even while the second level is attached).
  bool first_level_full() const { return size() >= base_capacity_; }

  void grant_extra(u32 entries) { extra_ = entries; }
  void revoke_extra() { extra_ = 0; }
  u32 extra() const { return extra_; }

  /// Appends a new instruction (dispatch). Requires !full().
  DynInst& push(DynInst&& di);

  DynInst* head() { return insts_.empty() ? nullptr : &insts_.front(); }
  const DynInst* head() const { return insts_.empty() ? nullptr : &insts_.front(); }
  DynInst* back() { return insts_.empty() ? nullptr : &insts_.back(); }

  /// Commit: removes the head. Requires non-empty.
  void pop_head();

  /// O(1) lookup by per-thread sequence number; nullptr if the instruction
  /// has committed or been squashed.
  DynInst* find(u64 tseq);
  const DynInst* find(u64 tseq) const;

  /// Removes the suffix younger than `tseq` (youngest first), invoking
  /// `on_remove(DynInst&)` for each before destruction.
  template <typename F>
  void squash_after(u64 tseq, F&& on_remove) {
    while (!insts_.empty() && insts_.back().tseq > tseq) {
      on_remove(insts_.back());
      insts_.pop_back();
    }
  }

  /// The paper's DoD counter: number of not-yet-executed ("result valid" bit
  /// clear) instructions younger than `tseq`, scanning at most `window`
  /// entries after it (the first-level ROB in the hardware proposal).
  u32 count_unexecuted_younger(u64 tseq, u32 window) const;

  /// Measurement-only: number of instructions in the current window that
  /// transitively depend on `load` through register dataflow (Figures 1, 3
  /// and 7 plot this). Memory-carried dependences are not chased.
  u32 count_true_dependents(const DynInst& load) const;

  /// Iterates oldest -> youngest.
  template <typename F>
  void for_each(F&& f) {
    for (DynInst& di : insts_) f(di);
  }
  template <typename F>
  void for_each(F&& f) const {
    for (const DynInst& di : insts_) f(di);
  }

  /// Test-only corruption hook for the invariant-audit suite: swaps two
  /// window entries by position, deliberately breaking the age order every
  /// consumer assumes. Never called by the simulator.
  void test_only_swap(u32 i, u32 j);

 private:
  std::deque<DynInst> insts_;
  u32 base_capacity_;
  u32 extra_ = 0;
};

}  // namespace tlrob
