// Per-thread reorder buffer.
//
// The ROB owns the DynInst storage for its thread's in-flight window; other
// structures hold pointers into it. The window lives in a fixed ring slab
// (RingDeque) sized for the largest capacity the buffer can ever be granted
// (base + max_extra), allocated once at construction: dispatch and commit
// recycle slots through a free-list discipline implicit in the ring (the
// slot behind the tail is always the next reused), every slot is
// address-stable for the core's lifetime, and the hot loop never touches
// the heap. Pointers to popped (committed/squashed) entries dangle exactly
// as they did under the previous std::deque — the pool-audit check
// (verify/checks) proves no live structure keeps one.
//
// Lookups by tseq are binary searches: the window is sorted by strictly
// increasing tseq, but squashed numbers are never reused, so the range has
// gaps and an offset-from-head lookup would be wrong.
//
// Capacity is dynamic: `base_capacity` is the first-level size (32 in Table
// 1); the two-level controller grants/revokes `extra` entries when the
// shared second-level partition is allocated to this thread, up to the
// `max_extra` the slab was sized for.
#pragma once

#include "common/ring_deque.hpp"
#include "pipeline/dyn_inst.hpp"

namespace tlrob {

class ReorderBuffer {
 public:
  /// `max_extra` bounds what grant_extra may ever grant; the default covers
  /// the Table 1 shared second level (384) for directly-constructed test
  /// buffers. The core sizes it from the machine configuration.
  static constexpr u32 kDefaultMaxExtra = 384;

  explicit ReorderBuffer(u32 base_capacity, u32 max_extra = kDefaultMaxExtra)
      : insts_(base_capacity + max_extra),
        base_capacity_(base_capacity),
        max_extra_(max_extra) {}

  u32 base_capacity() const { return base_capacity_; }
  u32 capacity() const { return base_capacity_ + extra_; }
  u32 size() const { return insts_.size(); }
  bool empty() const { return insts_.empty(); }
  bool full() const { return size() >= capacity(); }

  /// True when the first level alone is exhausted (a reactive-allocation
  /// precondition even while the second level is attached).
  bool first_level_full() const { return size() >= base_capacity_; }

  void grant_extra(u32 entries);
  void revoke_extra() { extra_ = 0; }
  u32 extra() const { return extra_; }
  u32 max_extra() const { return max_extra_; }

  /// Appends a new instruction (dispatch). Requires !full().
  DynInst& push(DynInst&& di);

  DynInst* head() { return insts_.empty() ? nullptr : &insts_.front(); }
  const DynInst* head() const { return insts_.empty() ? nullptr : &insts_.front(); }
  DynInst* back() { return insts_.empty() ? nullptr : &insts_.back(); }

  /// Commit: removes the head. Requires non-empty.
  void pop_head();

  /// Lookup by per-thread sequence number (binary search over the window);
  /// nullptr if the instruction has committed or been squashed.
  DynInst* find(u64 tseq);
  const DynInst* find(u64 tseq) const;

  /// Pool-audit hook: true iff `p` points at a live slot of this window's
  /// slab (neither foreign storage nor a recycled/popped slot).
  bool owns(const DynInst* p) const { return insts_.owns(p); }

  /// Removes the suffix younger than `tseq` (youngest first), invoking
  /// `on_remove(DynInst&)` for each before the slot is recycled.
  template <typename F>
  void squash_after(u64 tseq, F&& on_remove) {
    while (!insts_.empty() && insts_.back().tseq > tseq) {
      on_remove(insts_.back());
      insts_.pop_back();
    }
  }

  /// The paper's DoD counter: number of not-yet-executed ("result valid" bit
  /// clear) instructions younger than `tseq`, scanning at most `window`
  /// entries after it (the first-level ROB in the hardware proposal).
  u32 count_unexecuted_younger(u64 tseq, u32 window) const;

  /// Measurement-only: number of instructions in the current window that
  /// transitively depend on `load` through register dataflow (Figures 1, 3
  /// and 7 plot this). Memory-carried dependences are not chased.
  u32 count_true_dependents(const DynInst& load) const;

  /// Iterates oldest -> youngest.
  template <typename F>
  void for_each(F&& f) {
    for (u32 i = 0; i < insts_.size(); ++i) f(insts_[i]);
  }
  template <typename F>
  void for_each(F&& f) const {
    for (u32 i = 0; i < insts_.size(); ++i) f(insts_[i]);
  }

  /// Test-only corruption hook for the invariant-audit suite: swaps two
  /// window entries by position, deliberately breaking the age order every
  /// consumer assumes. Never called by the simulator.
  void test_only_swap(u32 i, u32 j);

 private:
  RingDeque<DynInst> insts_;
  u32 base_capacity_;
  u32 max_extra_;
  u32 extra_ = 0;
  // Reusable taint scratch for count_true_dependents (one slot per physical
  // register, generation-stamped so it never needs clearing): the per-call
  // unordered_set showed up in the self-profile — the walk runs for every
  // correct-path L2-miss fill.
  mutable std::vector<u64> taint_gen_;
  mutable u64 taint_epoch_ = 0;
};

}  // namespace tlrob
