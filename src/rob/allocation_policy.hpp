// Second-level ROB allocation controllers (§4, §5.2, §5.3 of the paper):
//
//   kReactive (2-Level R-ROB):  after an L2 miss is detected, allocate the
//     second level iff (1) the missing load is the oldest instruction in its
//     thread's ROB, (2) the first-level ROB is full, and (3) the counted DoD
//     is below the threshold. Conditions are checked when the miss is
//     detected and re-checked every `recheck_interval` (10) cycles.
//   kRelaxedReactive (2-Level Relaxed R-ROB):  as reactive but without the
//     "first-level ROB full" requirement — the count may be taken over a
//     partially full ROB, which under-counts and occasionally over-allocates
//     (the paper's explanation for its slightly lower FT).
//   kCdr (2-Level CDR-ROB):  the dependence-count snapshot is taken a fixed
//     `cdr_delay` (32) cycles after miss detection, with the oldest/full
//     requirements relaxed.
//   kPredictive (2-Level P-ROB):  a PC-indexed last-value DoD predictor
//     decides at miss-detection time; the actual count, taken when the miss
//     service completes, verifies the prediction, updates the predictor, and
//     revokes an allocation that verification disproves.
//
// The DoD count is the paper's low-complexity proxy: the number of
// not-yet-executed instructions in the first-level window younger than the
// missing load (ReorderBuffer::count_unexecuted_younger).
#pragma once

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "rob/dod_predictor.hpp"
#include "rob/rob.hpp"
#include "rob/two_level_rob.hpp"

namespace tlrob {

enum class RobScheme : u8 {
  kBaseline,
  kReactive,
  kRelaxedReactive,
  kCdr,
  kPredictive,
  /// The comparison point of Sharkey, Balkan & Ponomarev (PACT 2006, the
  /// paper's ref [23]), simplified: each thread's PRIVATE ROB grows and
  /// shrinks in fixed-size partitions between the first-level size and
  /// `adaptive_max_extra` above it, driven by a periodic commit-bound /
  /// issue-bound phase classification. Unlike the two-level design there is
  /// no shared partition and no DoD test, and growth is bounded by the
  /// thread's own physical ROB — the limitation (no coverage of long memory
  /// latencies) the paper's §1 calls out.
  kAdaptive,
};

const char* rob_scheme_name(RobScheme scheme);

struct RobPolicyConfig {
  RobScheme scheme = RobScheme::kBaseline;
  u32 dod_threshold = 16;        // best R-ROB value per §5.2
  Cycle recheck_interval = 10;   // §5.2: conditions re-checked every 10 cycles
  Cycle cdr_delay = 32;          // §5.2: CDR snapshot delay
  u32 predictor_entries = 4096;
  /// Fairness bound on one thread's tenure of the shared partition: after
  /// this many cycles the lease stops being renewed by fresh misses, the
  /// holder drains back into its first level and the partition frees. The
  /// paper leaves the relinquish policy open ("unless this storage is
  /// relinquished..."); an unbounded lease lets one continuously-missing
  /// thread monopolise the partition, which defeats the mechanism on mixes
  /// with several memory-bound threads. Covers ~4 back-to-back miss
  /// services by default.
  Cycle lease_limit = 4000;
  /// After a thread's lease ends it may not re-acquire the partition for
  /// this many cycles, so continuously-missing threads take turns instead
  /// of re-grabbing it the moment they release.
  Cycle lease_cooldown = 2500;

  // kAdaptive only (ref [23] reconstruction):
  Cycle adaptive_interval = 128;  // phase-classification period
  u32 adaptive_step = 16;         // partition granularity
  u32 adaptive_max_extra = 96;    // 32 + 96 = 128-entry physical ROB
  /// Issue-bound when more unexecuted instructions than this sit in the
  /// window (they would clog the shared issue logic if the window grew).
  u32 adaptive_issue_bound_threshold = 16;
};

class TwoLevelRobController {
 public:
  /// `robs[t]` must outlive the controller.
  TwoLevelRobController(const RobPolicyConfig& cfg, std::vector<ReorderBuffer*> robs,
                        SecondLevelRob& second);

  /// Notification: the load's L2 miss became architecturally visible.
  void on_l2_miss_detected(DynInst& load, Cycle now);

  /// Notification: the load's line arrived. Called *before* the load is
  /// marked executed, so the DoD count still sees the pre-fill window.
  void on_load_fill(DynInst& load, Cycle now);

  /// Per-cycle policy evaluation (reactive re-checks, CDR snapshots, lease
  /// release when the holder has drained). Returns true iff the call changed
  /// controller-visible state (candidate retired, partition acquired /
  /// revoked / released, adaptive partition resized) — the core's idle-cycle
  /// fast-forward treats a false return as "this tick was a no-op".
  bool tick(Cycle now);

  /// Earliest future cycle at which tick() could act without any new
  /// notification arriving first: the next due candidate re-check (reactive
  /// variants), the next phase-classification boundary (kAdaptive), or
  /// kNeverCycle (baseline / predictive, which act only on notifications).
  /// Pure time-gates only — state-driven work (lease release on drain) is
  /// triggered by commits/fills, which are activity in their own right.
  Cycle next_wake(Cycle now) const;

  /// Squash hook: drops candidates of `tid` younger than `tseq`.
  void on_squash(ThreadId tid, u64 tseq);

  const RobPolicyConfig& config() const { return cfg_; }
  SecondLevelRob& second_level() { return second_; }
  DodPredictor* predictor() { return predictor_.get(); }
  StatGroup& stats() { return stats_; }

  /// Invariant-audit introspection: whether `tid`'s current grant is backed
  /// by a registered justifying miss, and which load it is. The audit's
  /// second-level check re-derives the paper's allocation contract from
  /// these plus the live ROB/partition state.
  bool audit_has_trigger(ThreadId tid) const { return threads_[tid].has_trigger; }
  u64 audit_trigger_tseq(ThreadId tid) const { return threads_[tid].trigger_tseq; }

  /// Stall-taxonomy introspection: whether `tid` has a registered allocation
  /// candidate (a long-latency load waiting on — or holding out for — the
  /// second-level window). Candidates mutate only in notification calls and
  /// active ticks, so this is constant across an idle fast-forwarded span.
  bool has_pending_candidate(ThreadId tid) const { return !threads_[tid].cands.empty(); }

 private:
  struct Candidate {
    u64 tseq = 0;
    Cycle detect = 0;
    Cycle next_check = 0;
    bool filled = false;
  };
  struct ThreadState {
    std::vector<Candidate> cands;
    u64 trigger_tseq = 0;     // load justifying current ownership
    bool has_trigger = false;
    Cycle cooldown_until = 0;  // earliest re-acquisition after a lease
    u32 adaptive_extra = 0;    // kAdaptive: current growth above level 1
  };

  /// Evaluates one candidate; returns true if it should be dropped (a drop
  /// — retirement or acquisition — always counts as tick() activity; a
  /// deferral only moves next_check, which next_wake() reports).
  bool evaluate(ThreadId tid, Candidate& c, Cycle now);
  /// kAdaptive: periodic per-thread grow/shrink decision (ref [23]).
  /// Returns true iff any partition actually grew or shrank.
  bool adaptive_tick(Cycle now);
  void acquire(ThreadId tid, u64 tseq, Cycle now);
  /// Returns true iff state changed (trigger cleared, extra revoked, or the
  /// partition released).
  bool maybe_release(ThreadId tid, Cycle now);
  /// True when `tid` holds the partition past the fairness bound, so its
  /// lease must not be renewed by further misses.
  bool lease_expired(ThreadId tid, Cycle now) const;
  u32 dod_count(ThreadId tid, u64 tseq) const;

  RobPolicyConfig cfg_;
  std::vector<ReorderBuffer*> robs_;
  SecondLevelRob& second_;
  std::unique_ptr<DodPredictor> predictor_;
  std::vector<ThreadState> threads_;
  /// Lower bound on every live candidate's next_check; lets tick() skip the
  /// per-thread candidate loops on cycles where nothing can be due.
  Cycle next_check_floor_ = kNeverCycle;
  StatGroup stats_;

  // Cached stat handles: StatGroup::counter() is a map lookup and showed up
  // hot in the per-cycle profile; map nodes are address-stable and reset()
  // zeroes values in place, so these stay valid for the controller's life.
  // Declared after stats_ (initialisation order).
  Counter* cnt_allocations_;
  Counter* cnt_lease_grants_;
  Counter* cnt_releases_;
  Counter* cnt_l2_miss_candidates_;
  Counter* cnt_rejected_high_dod_;
  Counter* cnt_predictions_;
  Counter* cnt_prediction_cold_misses_;
  Counter* cnt_predictive_allocations_;
  Counter* cnt_verification_failures_;
  Counter* cnt_adaptive_grows_;
  Counter* cnt_adaptive_shrinks_;
  Average* avg_dod_at_decision_;
  std::vector<Counter*> cnt_allocations_tid_;  // "allocations.tN"
  std::vector<Counter*> cnt_busy_tid_;         // "busy.tN"
};

}  // namespace tlrob
