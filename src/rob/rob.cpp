#include "rob/rob.hpp"

#include <stdexcept>
#include <utility>

namespace tlrob {

void ReorderBuffer::grant_extra(u32 entries) {
  if (entries > max_extra_)
    throw std::logic_error("ReorderBuffer::grant_extra beyond the slab's max_extra");
  extra_ = entries;
}

DynInst& ReorderBuffer::push(DynInst&& di) {
  if (full()) throw std::logic_error("ReorderBuffer::push on full ROB");
  // tseq is strictly increasing but may have gaps: squashed instructions'
  // numbers are never reused.
  if (!insts_.empty() && insts_.back().tseq >= di.tseq)
    throw std::logic_error("ReorderBuffer::push out of program order");
  insts_.push_back(std::move(di));
  return insts_.back();
}

void ReorderBuffer::pop_head() {
  if (insts_.empty()) throw std::logic_error("ReorderBuffer::pop_head on empty ROB");
  insts_.pop_front();
}

DynInst* ReorderBuffer::find(u64 tseq) {
  if (insts_.empty()) return nullptr;
  const u64 front_tseq = insts_.front().tseq;
  if (tseq < front_tseq || tseq > insts_.back().tseq) return nullptr;
  // tseq rises by at least one per entry, so the index of `tseq` (if
  // present) is at most tseq - front_tseq — and exactly that when no
  // squash gap sits in between, which is the overwhelmingly common case.
  // Probe the guess first; fall back to binary search below it.
  u32 hi = insts_.size();
  const u64 off = tseq - front_tseq;
  if (off < hi) {
    const u32 g = static_cast<u32>(off);
    if (insts_[g].tseq == tseq) return &insts_[g];
    hi = g;  // gaps only push the entry to a lower index
  }
  u32 lo = 0;
  while (lo < hi) {
    const u32 mid = lo + (hi - lo) / 2;
    if (insts_[mid].tseq < tseq)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo == insts_.size() || insts_[lo].tseq != tseq) return nullptr;
  return &insts_[lo];
}

const DynInst* ReorderBuffer::find(u64 tseq) const {
  return const_cast<ReorderBuffer*>(this)->find(tseq);
}

void ReorderBuffer::test_only_swap(u32 i, u32 j) {
  if (i >= insts_.size() || j >= insts_.size())
    throw std::out_of_range("ReorderBuffer::test_only_swap");
  std::swap(insts_[i], insts_[j]);
}

u32 ReorderBuffer::count_unexecuted_younger(u64 tseq, u32 window) const {
  u32 count = 0;
  u32 scanned = 0;
  for (u32 i = 0; i < insts_.size(); ++i) {
    const DynInst& di = insts_[i];
    if (di.tseq <= tseq) continue;
    if (scanned >= window) break;
    ++scanned;
    if (!di.executed) ++count;
  }
  return count;
}

u32 ReorderBuffer::count_true_dependents(const DynInst& load) const {
  // Epoch-stamped membership: taint_gen_[r] == taint_epoch_ means r is
  // tainted this walk. The array grows to the highest physical register
  // seen and is never cleared between calls.
  ++taint_epoch_;
  auto taint = [&](PhysReg r) {
    if (r >= taint_gen_.size()) taint_gen_.resize(r + 1, 0);
    taint_gen_[r] = taint_epoch_;
  };
  auto tainted = [&](PhysReg r) {
    return r < taint_gen_.size() && taint_gen_[r] == taint_epoch_;
  };
  if (load.dest_phys != kInvalidPhysReg) taint(load.dest_phys);
  u32 count = 0;
  for (u32 i = 0; i < insts_.size(); ++i) {
    const DynInst& di = insts_[i];
    if (di.tseq <= load.tseq) continue;
    bool dep = false;
    for (PhysReg s : di.src_phys)
      if (s != kInvalidPhysReg && tainted(s)) dep = true;
    if (dep) {
      ++count;
      if (di.dest_phys != kInvalidPhysReg) taint(di.dest_phys);
    }
  }
  return count;
}

}  // namespace tlrob
