// The shared second-level ROB partition.
//
// Per the paper (§4): "the ROB entries comprising the second level can only
// be allocated as a unit to one thread at a time. Unless this storage is
// relinquished by a thread it was allocated to, no other thread is allowed
// to make use of it." Physically it may be a central structure or the upper
// portions of oversized private ROBs; the allocation semantics are what this
// class captures. On a CMP each SMT core owns a private instance — the
// partition is shared between a core's threads, never across cores.
#pragma once

#include "common/stats.hpp"
#include "common/types.hpp"

namespace tlrob {

class SecondLevelRob {
 public:
  static constexpr ThreadId kNoOwner = 0xffffffffu;

  explicit SecondLevelRob(u32 entries) : entries_(entries) {}

  u32 entries() const { return entries_; }
  bool available() const { return owner_ == kNoOwner && entries_ > 0; }
  bool owned_by(ThreadId t) const { return owner_ == t; }
  ThreadId owner() const { return owner_; }

  /// Atomically grants the whole partition. Requires available().
  void allocate(ThreadId t, Cycle now);

  /// Relinquishes the partition. Requires an owner.
  void release(Cycle now);

  u64 total_allocations() const { return allocations_; }
  /// Cycles the partition spent allocated (for utilisation reporting).
  u64 busy_cycles(Cycle now) const;
  Cycle acquired_at() const { return acquired_at_; }

  /// Zeroes the utilisation accounting (warmup boundary); a live allocation
  /// is counted from `now` onward.
  void reset_accounting(Cycle now);

  /// Test-only corruption hook for the invariant-audit suite: rewrites the
  /// owner without the allocate/release protocol, desynchronising ownership
  /// from the granted windows. Never called by the simulator.
  void test_only_set_owner(ThreadId t) { owner_ = t; }

 private:
  u32 entries_;
  ThreadId owner_ = kNoOwner;
  u64 allocations_ = 0;
  Cycle acquired_at_ = 0;
  u64 busy_accum_ = 0;
};

}  // namespace tlrob
