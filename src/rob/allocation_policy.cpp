#include "rob/allocation_policy.hpp"

#include <algorithm>

namespace tlrob {

const char* rob_scheme_name(RobScheme scheme) {
  switch (scheme) {
    case RobScheme::kBaseline: return "baseline";
    case RobScheme::kReactive: return "r-rob";
    case RobScheme::kRelaxedReactive: return "relaxed-r-rob";
    case RobScheme::kCdr: return "cdr-rob";
    case RobScheme::kPredictive: return "p-rob";
    case RobScheme::kAdaptive: return "adaptive-rob";
  }
  return "unknown";
}

TwoLevelRobController::TwoLevelRobController(const RobPolicyConfig& cfg,
                                             std::vector<ReorderBuffer*> robs,
                                             SecondLevelRob& second)
    : cfg_(cfg), robs_(std::move(robs)), second_(second), threads_(robs_.size()) {
  if (cfg.scheme == RobScheme::kPredictive)
    predictor_ = std::make_unique<DodPredictor>(cfg.predictor_entries);
  cnt_allocations_ = &stats_.counter("allocations");
  cnt_lease_grants_ = &stats_.counter("lease_grants_or_renewals");
  cnt_releases_ = &stats_.counter("releases");
  cnt_l2_miss_candidates_ = &stats_.counter("l2_miss_candidates");
  cnt_rejected_high_dod_ = &stats_.counter("rejected_high_dod");
  cnt_predictions_ = &stats_.counter("predictions");
  cnt_prediction_cold_misses_ = &stats_.counter("prediction_cold_misses");
  cnt_predictive_allocations_ = &stats_.counter("predictive_allocations");
  cnt_verification_failures_ = &stats_.counter("verification_failures");
  cnt_adaptive_grows_ = &stats_.counter("adaptive.grows");
  cnt_adaptive_shrinks_ = &stats_.counter("adaptive.shrinks");
  avg_dod_at_decision_ = &stats_.average("dod_at_decision");
  for (u32 t = 0; t < threads_.size(); ++t) {
    cnt_allocations_tid_.push_back(&stats_.counter("allocations.t" + std::to_string(t)));
    cnt_busy_tid_.push_back(&stats_.counter("busy.t" + std::to_string(t)));
  }
}

u32 TwoLevelRobController::dod_count(ThreadId tid, u64 tseq) const {
  // The hardware scans the first-level window following the load.
  return robs_[tid]->count_unexecuted_younger(tseq, robs_[tid]->base_capacity());
}

void TwoLevelRobController::acquire(ThreadId tid, u64 tseq, Cycle now) {
  if (second_.available()) {
    second_.allocate(tid, now);
    robs_[tid]->grant_extra(second_.entries());
    cnt_allocations_->inc();
    cnt_allocations_tid_[tid]->inc();
  } else if (second_.owned_by(tid)) {
    // Renewal: a drain (revoked extra, waiting for release) can be re-armed
    // by a fresh qualifying miss while the lease lasts.
    robs_[tid]->grant_extra(second_.entries());
  }
  threads_[tid].trigger_tseq = tseq;
  threads_[tid].has_trigger = true;
  cnt_lease_grants_->inc();
}

bool TwoLevelRobController::maybe_release(ThreadId tid, Cycle now) {
  if (!second_.owned_by(tid)) return false;
  ThreadState& ts = threads_[tid];
  ReorderBuffer& rob = *robs_[tid];

  bool trigger_live = false;
  if (ts.has_trigger) {
    if (DynInst* t = rob.find(ts.trigger_tseq))
      trigger_live = !t->executed;  // still waiting on the miss
  }
  if (trigger_live) return false;

  // No justifying miss: stop dispatching into the second level and drain.
  bool changed = rob.extra() != 0 || ts.has_trigger;
  rob.revoke_extra();
  ts.has_trigger = false;
  if (rob.size() > rob.base_capacity()) return changed;  // drain into level 1 first

  cnt_busy_tid_[tid]->inc(now - second_.acquired_at());
  // The cooldown exists to rotate the partition among contenders; with no
  // other thread waiting for it, re-acquisition is free.
  bool contended = false;
  for (u32 o = 0; o < threads_.size(); ++o)
    if (o != tid && !threads_[o].cands.empty()) contended = true;
  ts.cooldown_until = contended ? now + cfg_.lease_cooldown : now;
  second_.release(now);
  cnt_releases_->inc();
  return true;
}

bool TwoLevelRobController::lease_expired(ThreadId tid, Cycle now) const {
  return second_.owned_by(tid) && now >= second_.acquired_at() + cfg_.lease_limit;
}

void TwoLevelRobController::on_l2_miss_detected(DynInst& load, Cycle now) {
  if (cfg_.scheme == RobScheme::kBaseline || cfg_.scheme == RobScheme::kAdaptive) return;
  if (load.wrong_path) return;
  const ThreadId tid = load.tid;
  ThreadState& ts = threads_[tid];
  cnt_l2_miss_candidates_->inc();

  if (cfg_.scheme == RobScheme::kPredictive) {
    const auto pred = predictor_->predict(tid, load.pc);
    if (pred.has_value()) {
      cnt_predictions_->inc();
      const bool can_acquire_fresh = second_.available() && now >= ts.cooldown_until;
      const bool can_renew = second_.owned_by(tid) && !lease_expired(tid, now);
      if (*pred < cfg_.dod_threshold && (can_acquire_fresh || can_renew)) {
        acquire(tid, load.tseq, now);
        cnt_predictive_allocations_->inc();
      }
    } else {
      cnt_prediction_cold_misses_->inc();
    }
    // Track for verification at fill regardless of the decision.
    ts.cands.push_back({load.tseq, now, kNeverCycle, false});
    return;
  }

  const Cycle first_check =
      cfg_.scheme == RobScheme::kCdr ? now + cfg_.cdr_delay : now;
  next_check_floor_ = std::min(next_check_floor_, first_check);
  ts.cands.push_back({load.tseq, now, first_check, false});
}

void TwoLevelRobController::on_load_fill(DynInst& load, Cycle now) {
  if (cfg_.scheme == RobScheme::kBaseline || cfg_.scheme == RobScheme::kAdaptive) return;
  if (load.wrong_path) return;
  const ThreadId tid = load.tid;
  ThreadState& ts = threads_[tid];

  if (cfg_.scheme == RobScheme::kPredictive) {
    // §4.2: the actual count is taken shortly before the miss service
    // completes, verifies the prediction and trains the predictor.
    const u32 actual = dod_count(tid, load.tseq);
    predictor_->update(tid, load.pc, actual);
    if (second_.owned_by(tid) && ts.has_trigger && ts.trigger_tseq == load.tseq &&
        actual >= cfg_.dod_threshold) {
      cnt_verification_failures_->inc();
      ts.has_trigger = false;  // lease no longer justified; release on drain
    }
  }

  ts.cands.erase(std::remove_if(ts.cands.begin(), ts.cands.end(),
                                [&](const Candidate& c) { return c.tseq == load.tseq; }),
                 ts.cands.end());
  maybe_release(tid, now);
}

bool TwoLevelRobController::evaluate(ThreadId tid, Candidate& c, Cycle now) {
  ReorderBuffer& rob = *robs_[tid];
  DynInst* load = rob.find(c.tseq);
  if (load == nullptr || load->executed) return true;  // gone or filled

  const bool can_acquire_fresh = second_.available() && now >= threads_[tid].cooldown_until;
  const bool can_renew = second_.owned_by(tid) && !lease_expired(tid, now);
  if (!can_acquire_fresh && !can_renew) {
    c.next_check = now + cfg_.recheck_interval;
    return false;
  }

  bool conditions = true;
  if (cfg_.scheme == RobScheme::kReactive) {
    conditions = rob.head() == load && rob.first_level_full();
  } else if (cfg_.scheme == RobScheme::kRelaxedReactive) {
    conditions = rob.head() == load;  // "full" requirement dropped
  }
  // kCdr: no positional requirements; the snapshot delay gated first_check.

  if (conditions) {
    const u32 dod = dod_count(tid, c.tseq);
    avg_dod_at_decision_->sample(static_cast<double>(dod));
    if (dod < cfg_.dod_threshold) {
      acquire(tid, c.tseq, now);
      return true;  // decision made; candidate retired
    }
    cnt_rejected_high_dod_->inc();
    // A high count can shrink as independent work executes; keep re-checking
    // while the miss is outstanding.
  }
  c.next_check = now + cfg_.recheck_interval;
  return false;
}

bool TwoLevelRobController::adaptive_tick(Cycle now) {
  if (now % cfg_.adaptive_interval != 0) return false;
  bool resized = false;
  for (u32 tid = 0; tid < threads_.size(); ++tid) {
    ThreadState& ts = threads_[tid];
    ReorderBuffer& rob = *robs_[tid];
    if (rob.empty()) continue;
    const u32 unexecuted =
        rob.count_unexecuted_younger(rob.head()->tseq - 1, rob.base_capacity() + ts.adaptive_extra);
    const bool window_saturated = rob.size() + cfg_.adaptive_step / 2 >= rob.capacity();
    const bool head_blocked = !rob.head()->executed;

    if (unexecuted > cfg_.adaptive_issue_bound_threshold) {
      // Issue-bound phase: a larger window would only push more waiting
      // instructions at the shared issue logic — shrink one partition.
      if (ts.adaptive_extra >= cfg_.adaptive_step) {
        ts.adaptive_extra -= cfg_.adaptive_step;
        cnt_adaptive_shrinks_->inc();
        resized = true;
      }
    } else if (window_saturated && head_blocked) {
      // Commit-bound phase: the window is full behind a long-latency op and
      // the work in it drains quickly — grow one partition.
      if (ts.adaptive_extra + cfg_.adaptive_step <= cfg_.adaptive_max_extra) {
        ts.adaptive_extra += cfg_.adaptive_step;
        cnt_adaptive_grows_->inc();
        resized = true;
      }
    }
    rob.grant_extra(ts.adaptive_extra);
  }
  return resized;
}

bool TwoLevelRobController::tick(Cycle now) {
  if (cfg_.scheme == RobScheme::kBaseline) return false;
  if (cfg_.scheme == RobScheme::kAdaptive) return adaptive_tick(now);
  bool activity = false;
  // next_check_floor_ is a lower bound on every candidate's next_check: when
  // now hasn't reached it, the candidate loops below would evaluate nothing,
  // so only the per-thread release polls run. The bound is recomputed on
  // each full pass and lowered whenever a candidate is pushed or deferred;
  // erases can only raise the true minimum, which merely costs one extra
  // full pass.
  const bool cands_due = cfg_.scheme != RobScheme::kPredictive && now >= next_check_floor_;
  if (cands_due) next_check_floor_ = kNeverCycle;
  // Rotate the evaluation order so that when several threads have qualifying
  // candidates pending, the partition does not always go to the lowest id.
  const u32 n = static_cast<u32>(threads_.size());
  for (u32 i = 0; i < n; ++i) {
    const ThreadId tid = static_cast<ThreadId>((now + i) % n);
    ThreadState& ts = threads_[tid];
    if (cands_due) {
      for (auto it = ts.cands.begin(); it != ts.cands.end();) {
        if (it->next_check <= now && evaluate(tid, *it, now)) {
          it = ts.cands.erase(it);
          activity = true;  // retirement or acquisition; deferrals stay put
        } else {
          next_check_floor_ = std::min(next_check_floor_, it->next_check);
          ++it;
        }
      }
    }
    if (maybe_release(tid, now)) activity = true;
  }
  return activity;
}

Cycle TwoLevelRobController::next_wake(Cycle now) const {
  switch (cfg_.scheme) {
    case RobScheme::kBaseline:
    case RobScheme::kPredictive:
      // Notification-driven only (predictive candidates carry
      // next_check = kNeverCycle and are resolved at fill time).
      return kNeverCycle;
    case RobScheme::kAdaptive:
      return (now / cfg_.adaptive_interval + 1) * cfg_.adaptive_interval;
    default:
      break;
  }
  Cycle best = kNeverCycle;
  for (const ThreadState& ts : threads_)
    for (const Candidate& c : ts.cands) best = std::min(best, c.next_check);
  return best;
}

void TwoLevelRobController::on_squash(ThreadId tid, u64 tseq) {
  if (cfg_.scheme == RobScheme::kBaseline || cfg_.scheme == RobScheme::kAdaptive) return;
  ThreadState& ts = threads_[tid];
  ts.cands.erase(std::remove_if(ts.cands.begin(), ts.cands.end(),
                                [&](const Candidate& c) { return c.tseq > tseq; }),
                 ts.cands.end());
  if (ts.has_trigger && ts.trigger_tseq > tseq) ts.has_trigger = false;
}

}  // namespace tlrob
