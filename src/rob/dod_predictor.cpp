#include "rob/dod_predictor.hpp"

#include <stdexcept>

namespace tlrob {

DodPredictor::DodPredictor(u32 entries) : table_(entries), mask_(entries - 1) {
  if (entries == 0 || (entries & (entries - 1)) != 0)
    throw std::invalid_argument("DodPredictor size must be a power of two");
}

std::optional<u32> DodPredictor::predict(ThreadId tid, Addr pc) const {
  const Entry& e = table_[index(tid, pc)];
  if (!e.valid || e.tag != tag(tid, pc)) return std::nullopt;
  return e.count;
}

void DodPredictor::update(ThreadId tid, Addr pc, u32 count) {
  Entry& e = table_[index(tid, pc)];
  const u64 t = tag(tid, pc);
  if (e.valid && e.tag == t) {
    stats_.counter(e.count == count ? "exact_repeats" : "value_changes").inc();
  } else {
    stats_.counter("cold_installs").inc();
  }
  e.valid = true;
  e.tag = t;
  e.count = count;
}

}  // namespace tlrob
