// Degree-of-Dependence (DoD) predictor for the predictive (P-ROB) scheme.
//
// A PC-indexed last-value predictor (§4.2): the number of dependents of a
// static LOAD is predicted to equal the count observed at its previous
// dynamic instance. The paper notes the count is constant per control-flow
// path, so last-value prediction is accurate whenever the post-load path
// repeats. The table stores the full count (not a thresholded bit), which
// lets experiments vary the threshold without retraining.
#pragma once

#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace tlrob {

class DodPredictor {
 public:
  /// `entries` must be a power of two. Tags disambiguate (tid, pc) so the
  /// table can be shared by all threads.
  explicit DodPredictor(u32 entries = 4096);

  /// Predicted dependent count for the load at `pc`; nullopt if this static
  /// load has not been observed yet (no allocation is made in that case).
  std::optional<u32> predict(ThreadId tid, Addr pc) const;

  /// Verification/update with the actual count (taken shortly before the
  /// miss service completes).
  void update(ThreadId tid, Addr pc, u32 count);

  StatGroup& stats() { return stats_; }

 private:
  struct Entry {
    bool valid = false;
    u64 tag = 0;
    u32 count = 0;
  };

  u64 index(ThreadId tid, Addr pc) const { return ((pc >> 2) ^ (u64{tid} << 9)) & mask_; }
  u64 tag(ThreadId tid, Addr pc) const { return (pc >> 2) ^ (u64{tid} << 56); }

  std::vector<Entry> table_;
  u64 mask_;
  StatGroup stats_;
};

}  // namespace tlrob
