#include "rob/two_level_rob.hpp"

#include <stdexcept>

namespace tlrob {

void SecondLevelRob::allocate(ThreadId t, Cycle now) {
  if (!available()) throw std::logic_error("SecondLevelRob::allocate while not available");
  owner_ = t;
  acquired_at_ = now;
  ++allocations_;
}

void SecondLevelRob::release(Cycle now) {
  if (owner_ == kNoOwner) throw std::logic_error("SecondLevelRob::release without owner");
  busy_accum_ += now - acquired_at_;
  owner_ = kNoOwner;
}

void SecondLevelRob::reset_accounting(Cycle now) {
  busy_accum_ = 0;
  allocations_ = owner_ == kNoOwner ? 0 : 1;
  if (owner_ != kNoOwner) acquired_at_ = now;
}

u64 SecondLevelRob::busy_cycles(Cycle now) const {
  u64 busy = busy_accum_;
  if (owner_ != kNoOwner) busy += now - acquired_at_;
  return busy;
}

}  // namespace tlrob
