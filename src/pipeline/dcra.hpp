// DCRA-style dynamically controlled resource allocation (Cazorla et al.,
// MICRO 2004) — the paper's baseline resource-distribution mechanism.
//
// Threads are classified each cycle as *slow* (an in-flight L1 data miss;
// likely memory bound) or *fast*. Every shared resource of capacity C is
// partitioned: with F fast and S slow active threads and sharing factor X,
// a fast thread may occupy up to E_F = C / (F + S*X) entries and a slow
// thread up to X * E_F — slow threads receive a larger share so they can
// expose memory-level parallelism, while the cap keeps them from starving
// fast threads. A thread over its cap in any gated resource is barred from
// fetching/dispatching until it drains. The gated resources are the shared
// issue queue and the renameable portions of the two register files, per the
// original proposal.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "pipeline/fetch_policy.hpp"

namespace tlrob {

struct DcraConfig {
  double sharing = 2.5;  // X: slow-thread multiplier
};

class DcraController {
 public:
  DcraController(const DcraConfig& cfg, u32 num_threads);

  /// Refreshes fast/slow classification and per-thread IQ usage snapshots
  /// from this cycle's thread views.
  void classify(const std::vector<ThreadFetchView>& views);

  bool is_slow(ThreadId t) const { return slow_[t]; }

  /// Marks the thread currently holding the second-level ROB partition
  /// (kNoPrivileged when none). Only this thread may borrow other threads'
  /// unused issue-queue share: its low-DoD qualification is precisely the
  /// guarantee that borrowed slots are vacated quickly, whereas letting a
  /// high-DoD (e.g. pointer-chasing) thread borrow pins the slack behind an
  /// outstanding miss — the clog DCRA exists to prevent.
  static constexpr ThreadId kNoPrivileged = 0xffffffffu;
  void set_privileged(ThreadId t) { privileged_ = t; }

  /// Base (guaranteed) share for a resource of total capacity `capacity`.
  u32 base_share(ThreadId t, u32 capacity) const;

  /// Effective cap: the base share, plus — for the privileged thread only —
  /// every other thread's currently unused base share (Cazorla et al.:
  /// resources not required by the other threads are shared out). The
  /// borrower is throttled back as soon as the lenders' own usage rises,
  /// because base shares are guaranteed.
  u32 cap(ThreadId t, u32 capacity) const;

  /// True if the thread's current usage of every gated resource is below its
  /// cap. Capacities are the *shared pools* (IQ entries, renameable int/fp
  /// registers).
  bool within_caps(ThreadId t, u32 iq_use, u32 iq_capacity, u32 int_use, u32 int_capacity,
                   u32 fp_use, u32 fp_capacity) const;

 private:
  DcraConfig cfg_;
  std::vector<bool> slow_;
  std::vector<u32> iq_usage_;
  u32 num_fast_ = 0;
  u32 num_slow_ = 0;
  ThreadId privileged_ = kNoPrivileged;
};

}  // namespace tlrob
