// Per-thread load/store queue (Table 1: 48 entries per thread).
//
// Memory disambiguation is conservative: a load may issue only once every
// older store in its thread has resolved its address; if the youngest older
// store with an overlapping address has issued, the load forwards from it
// (1-cycle store-to-load forward) instead of accessing the cache.
#pragma once

#include <deque>

#include "pipeline/dyn_inst.hpp"

namespace tlrob {

class LoadStoreQueue {
 public:
  explicit LoadStoreQueue(u32 entries) : capacity_(entries) {}

  bool has_free() const { return entries_.size() < capacity_; }
  u32 capacity() const { return capacity_; }
  u32 occupancy() const { return static_cast<u32>(entries_.size()); }

  /// Dispatch inserts in program order.
  void push(DynInst* di);

  /// Commit releases the (oldest) entry of `di`.
  void pop(DynInst* di);

  /// Squash: drops every entry with tseq > `tseq`.
  void squash_after(u64 tseq);

  /// True if every store older than `load` has a resolved address.
  bool older_stores_resolved(const DynInst& load) const;

  /// Youngest older store whose address range overlaps the load's; nullptr
  /// if none. Only meaningful once older_stores_resolved().
  DynInst* forwarding_store(const DynInst& load) const;

  /// Iterates oldest -> youngest (invariant-audit recounts).
  template <typename F>
  void for_each(F&& f) const {
    for (const DynInst* e : entries_) f(*e);
  }

  /// Test-only corruption hook for the invariant-audit suite: drops the
  /// oldest entry without clearing its lsq_allocated flag, simulating a
  /// slot double-free. Never called by the simulator.
  void test_only_drop_front();

 private:
  static bool overlap(const DynInst& a, const DynInst& b);

  std::deque<DynInst*> entries_;  // program order (oldest at front)
  u32 capacity_;
};

}  // namespace tlrob
