// Per-thread load/store queue (Table 1: 48 entries per thread).
//
// Memory disambiguation is conservative: a load may issue only once every
// older store in its thread has resolved its address; if the youngest older
// store with an overlapping address has issued, the load forwards from it
// (1-cycle store-to-load forward) instead of accessing the cache.
//
// Entries are pointers into the thread's ROB slab, held in a fixed ring
// sized at the queue's capacity — the LSQ never allocates after
// construction. Stores are additionally mirrored into a stores-only side
// ring with an unresolved-address count, so the per-load disambiguation
// checks scan only stores (or nothing at all when every older address is
// known) instead of walking the whole queue.
#pragma once

#include "common/ring_deque.hpp"
#include "pipeline/dyn_inst.hpp"

namespace tlrob {

class LoadStoreQueue {
 public:
  explicit LoadStoreQueue(u32 entries) : entries_(entries), stores_(entries) {}

  bool has_free() const { return !entries_.full(); }
  u32 capacity() const { return entries_.capacity(); }
  u32 occupancy() const { return entries_.size(); }

  /// Dispatch inserts in program order.
  void push(DynInst* di);

  /// Commit releases the (oldest) entry of `di`.
  void pop(DynInst* di);

  /// Squash: drops every entry with tseq > `tseq`.
  void squash_after(u64 tseq);

  /// Bookkeeping: the core issued `di` (a store in this queue) and resolved
  /// its address. Must be called exactly once per resolution (the caller
  /// guards against replayed stores, whose addresses stay resolved).
  void note_store_resolved() {
    if (unresolved_stores_ > 0) --unresolved_stores_;
  }

  /// True if every store older than `load` has a resolved address.
  bool older_stores_resolved(const DynInst& load) const {
    if (unresolved_stores_ == 0) return true;
    for (u32 i = stores_.size(); i-- > 0;) {
      const DynInst* e = stores_[i];
      if (e->tseq >= load.tseq) continue;
      if (!e->addr_resolved) return false;
    }
    return true;
  }

  /// Youngest older store whose address range overlaps the load's; nullptr
  /// if none. Only meaningful once older_stores_resolved().
  DynInst* forwarding_store(const DynInst& load) const;

  /// Iterates oldest -> youngest (invariant-audit recounts).
  template <typename F>
  void for_each(F&& f) const {
    for (u32 i = 0; i < entries_.size(); ++i) f(*entries_[i]);
  }

  /// Test-only corruption hook for the invariant-audit suite: drops the
  /// oldest entry without clearing its lsq_allocated flag, simulating a
  /// slot double-free. Never called by the simulator.
  void test_only_drop_front();

 private:
  static bool overlap(const DynInst& a, const DynInst& b);

  RingDeque<DynInst*> entries_;  // program order (oldest at front)
  RingDeque<DynInst*> stores_;   // the stores of entries_, same order
  u32 unresolved_stores_ = 0;    // stores_ members with !addr_resolved
};

}  // namespace tlrob
