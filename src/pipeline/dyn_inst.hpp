// In-flight dynamic instruction record. The per-thread ROB owns these; every
// other structure (issue queue, LSQ, functional units, event queue) refers to
// them either by stable pointer (within a cycle) or by (tid, tseq) reference
// that is re-resolved through the ROB (across cycles, surviving squashes).
#pragma once

#include "branch/predictor.hpp"
#include "common/types.hpp"
#include "isa/static_inst.hpp"

namespace tlrob {

struct DynInst {
  // -- identity -----------------------------------------------------------
  SeqNum seq = 0;    // global fetch order (age comparisons across threads)
  u64 tseq = 0;      // per-thread program order; never reused, so (tid,tseq)
                     // is a stable reference even across squashes
  ThreadId tid = 0;
  const StaticInst* si = nullptr;
  OpClass op = OpClass::kNop;
  Addr pc = 0;
  bool wrong_path = false;

  // -- architectural outcome (wrong-path ops carry synthetic values) -------
  Addr mem_addr = 0;
  bool taken = false;       // control: actual direction
  Addr actual_target = 0;   // control: actual next PC

  // -- front-end prediction -------------------------------------------------
  BranchPrediction pred;
  bool mispredicted = false;  // set at fetch for correct-path ops whose
                              // prediction disagrees with the outcome

  // -- rename ----------------------------------------------------------------
  PhysReg src_phys[2] = {kInvalidPhysReg, kInvalidPhysReg};
  PhysReg dest_phys = kInvalidPhysReg;
  PhysReg prev_dest_phys = kInvalidPhysReg;
  bool prev_freed_early = false;  // L2-miss-driven early register release

  // -- status ------------------------------------------------------------------
  bool dispatched = false;
  bool in_iq = false;       // occupies an issue-queue slot
  bool issued = false;
  bool executed = false;    // "result valid" bit — exactly what the paper's
                            // DoD counter scans
  bool branch_resolved = false;
  u32 replay_gen = 0;       // bumped when a speculatively issued op replays;
                            // stale completion events compare and drop

  // -- memory ops ----------------------------------------------------------
  bool lsq_allocated = false;
  bool addr_resolved = false;   // store address known (gates younger loads)
  bool l1_hit = false;
  bool is_l2_miss = false;      // long-latency load
  bool l1_counted = false;      // contributes to the thread's outstanding-L1 count
  bool l2_counted = false;
  Cycle l2_miss_detect_cycle = kNeverCycle;
  Cycle fill_cycle = kNeverCycle;
  // Stall-taxonomy segment edges of an in-flight load's latency chain
  // (absolute cycles, non-decreasing; see DataAccess::seg_*). Only set on
  // issued loads that missed the L1; 0 otherwise.
  Cycle seg_private_end = 0;
  Cycle seg_llc_end = 0;
  Cycle seg_dram_end = 0;

  // -- speculative scheduling ------------------------------------------------
  bool spec_used[2] = {false, false};  // issued on a speculatively-ready source

  // -- bookkeeping -----------------------------------------------------------
  Cycle fetch_cycle = 0;
  Cycle dispatch_cycle = 0;
  Cycle issue_cycle = 0;
  Cycle complete_cycle = kNeverCycle;
  int iq_slot = -1;

  bool is_load() const { return op == OpClass::kLoad; }
  bool is_store() const { return op == OpClass::kStore; }
  bool is_mem() const { return is_memory(op); }
  bool is_ctrl() const { return is_control(op); }
};

/// Cross-cycle reference to an in-flight instruction.
struct InstRef {
  ThreadId tid = 0;
  u64 tseq = 0;
  u32 replay_gen = 0;
};

}  // namespace tlrob
