// SMT fetch policies: round-robin, ICOUNT, STALL, FLUSH, and DCRA-gated
// ICOUNT (the paper's baseline).
//
// A policy does two things each cycle: ranks threads for fetch priority and
// vetoes fetching for threads it wants gated. FLUSH additionally asks the
// core to squash a thread's post-miss instructions when an L2 miss is
// detected (implemented in the core as un-dispatch; see DESIGN.md).
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"

namespace tlrob {

enum class FetchPolicyKind : u8 { kRoundRobin, kIcount, kStall, kFlush, kDcra };

/// Per-thread snapshot handed to policies each cycle.
struct ThreadFetchView {
  u32 frontend_count = 0;   // fetched, not yet dispatched
  u32 iq_count = 0;         // occupying issue-queue slots
  u32 outstanding_l1 = 0;   // in-flight loads that missed L1
  u32 outstanding_l2 = 0;   // in-flight loads that missed L2
  bool active = true;
};

class DcraController;

class FetchPolicy {
 public:
  virtual ~FetchPolicy() = default;

  /// Fills `out` with thread ids highest-priority first. `out` is cleared
  /// first; its capacity is retained across calls, so the per-cycle ranking
  /// is allocation-free with a reused buffer. Policies are stateless between
  /// calls.
  virtual void order(const std::vector<ThreadFetchView>& views, Cycle now,
                     std::vector<ThreadId>& out) = 0;

  /// Gate: false forbids fetching for the thread this cycle.
  virtual bool may_fetch(ThreadId tid, const std::vector<ThreadFetchView>& views) {
    (void)tid;
    (void)views;
    return true;
  }

  /// FLUSH-style policies return true: the core squashes a thread's
  /// instructions younger than a load when its L2 miss is detected.
  virtual bool flush_on_l2_miss() const { return false; }

  virtual FetchPolicyKind kind() const = 0;

  /// Factory. `dcra` must outlive the policy for kDcra and may be null
  /// otherwise.
  static std::unique_ptr<FetchPolicy> create(FetchPolicyKind kind, DcraController* dcra);
};

const char* fetch_policy_name(FetchPolicyKind kind);

}  // namespace tlrob
