#include "pipeline/fetch_policy.hpp"

#include "pipeline/dcra.hpp"

namespace tlrob {
namespace {

/// ICOUNT ordering: fewest instructions in the front end + issue queue first
/// (ties by thread id for determinism). Stable insertion sort: n is the
/// thread count (<= 8) and this runs twice per executed tick, so the
/// temporary-buffer std::stable_sort was measurable on the hot path.
void icount_order(const std::vector<ThreadFetchView>& views, std::vector<ThreadId>& out) {
  const u32 n = static_cast<u32>(views.size());
  out.resize(n);
  for (u32 i = 0; i < n; ++i) {
    const u32 key = views[i].frontend_count + views[i].iq_count;
    u32 j = i;
    for (; j > 0; --j) {
      const ThreadId prev = out[j - 1];
      if (views[prev].frontend_count + views[prev].iq_count <= key) break;
      out[j] = prev;
    }
    out[j] = static_cast<ThreadId>(i);
  }
}

class RoundRobinPolicy final : public FetchPolicy {
 public:
  void order(const std::vector<ThreadFetchView>& views, Cycle now,
             std::vector<ThreadId>& out) override {
    const u32 n = static_cast<u32>(views.size());
    out.resize(n);
    for (u32 i = 0; i < n; ++i) out[i] = static_cast<ThreadId>((now + i) % n);
  }
  FetchPolicyKind kind() const override { return FetchPolicyKind::kRoundRobin; }
};

class IcountPolicy final : public FetchPolicy {
 public:
  void order(const std::vector<ThreadFetchView>& views, Cycle,
             std::vector<ThreadId>& out) override {
    icount_order(views, out);
  }
  FetchPolicyKind kind() const override { return FetchPolicyKind::kIcount; }
};

class StallPolicy : public FetchPolicy {
 public:
  void order(const std::vector<ThreadFetchView>& views, Cycle,
             std::vector<ThreadId>& out) override {
    icount_order(views, out);
  }
  bool may_fetch(ThreadId tid, const std::vector<ThreadFetchView>& views) override {
    return views[tid].outstanding_l2 == 0;
  }
  FetchPolicyKind kind() const override { return FetchPolicyKind::kStall; }
};

class FlushPolicy final : public StallPolicy {
 public:
  bool flush_on_l2_miss() const override { return true; }
  FetchPolicyKind kind() const override { return FetchPolicyKind::kFlush; }
};

class DcraPolicy final : public FetchPolicy {
 public:
  explicit DcraPolicy(DcraController* dcra) : dcra_(dcra) {}

  void order(const std::vector<ThreadFetchView>& views, Cycle,
             std::vector<ThreadId>& out) override {
    icount_order(views, out);
  }
  bool may_fetch(ThreadId tid, const std::vector<ThreadFetchView>& views) override {
    // Resource-cap gating is enforced by the core at dispatch through the
    // DcraController; at fetch we only gate threads whose front end has run
    // far ahead (the caps make that the binding constraint).
    (void)tid;
    (void)views;
    return true;
  }
  FetchPolicyKind kind() const override { return FetchPolicyKind::kDcra; }

 private:
  [[maybe_unused]] DcraController* dcra_;
};

}  // namespace

std::unique_ptr<FetchPolicy> FetchPolicy::create(FetchPolicyKind kind, DcraController* dcra) {
  switch (kind) {
    case FetchPolicyKind::kRoundRobin: return std::make_unique<RoundRobinPolicy>();
    case FetchPolicyKind::kIcount: return std::make_unique<IcountPolicy>();
    case FetchPolicyKind::kStall: return std::make_unique<StallPolicy>();
    case FetchPolicyKind::kFlush: return std::make_unique<FlushPolicy>();
    case FetchPolicyKind::kDcra: return std::make_unique<DcraPolicy>(dcra);
  }
  return std::make_unique<IcountPolicy>();
}

const char* fetch_policy_name(FetchPolicyKind kind) {
  switch (kind) {
    case FetchPolicyKind::kRoundRobin: return "round_robin";
    case FetchPolicyKind::kIcount: return "icount";
    case FetchPolicyKind::kStall: return "stall";
    case FetchPolicyKind::kFlush: return "flush";
    case FetchPolicyKind::kDcra: return "dcra";
  }
  return "unknown";
}

}  // namespace tlrob
