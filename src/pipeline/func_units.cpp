#include "pipeline/func_units.hpp"

namespace tlrob {

FuncUnitPool::FuncUnitPool() {
  busy_until_[kIntAdd].assign(8, 0);
  busy_until_[kIntMulDiv].assign(4, 0);
  busy_until_[kLoadStore].assign(4, 0);
  busy_until_[kFpAddG].assign(8, 0);
  busy_until_[kFpMulDiv].assign(4, 0);

  auto set = [this](OpClass op, Group g, Cycle lat, Cycle intv) {
    group_map_[static_cast<u32>(op)] = g;
    timing_[static_cast<u32>(op)] = OpTiming{lat, intv};
  };
  set(OpClass::kIntAlu, kIntAdd, 1, 1);
  set(OpClass::kIntMult, kIntMulDiv, 3, 1);
  set(OpClass::kIntDiv, kIntMulDiv, 20, 19);
  set(OpClass::kLoad, kLoadStore, 2, 1);   // hit latency; misses via the memory path
  set(OpClass::kStore, kLoadStore, 2, 1);
  set(OpClass::kFpAdd, kFpAddG, 2, 1);
  set(OpClass::kFpMult, kFpMulDiv, 4, 1);
  set(OpClass::kFpDiv, kFpMulDiv, 12, 12);
  set(OpClass::kFpSqrt, kFpMulDiv, 24, 24);
  set(OpClass::kBranch, kIntAdd, 1, 1);
  set(OpClass::kJump, kIntAdd, 1, 1);
  set(OpClass::kCall, kIntAdd, 1, 1);
  set(OpClass::kReturn, kIntAdd, 1, 1);
  set(OpClass::kNop, kIntAdd, 1, 1);
}

bool FuncUnitPool::can_issue(OpClass op, Cycle now) const {
  for (Cycle busy : busy_until_[group_of(op)])
    if (busy <= now) return true;
  return false;
}

Cycle FuncUnitPool::issue(OpClass op, Cycle now) {
  const OpTiming& t = timing_[static_cast<u32>(op)];
  for (Cycle& busy : busy_until_[group_of(op)]) {
    if (busy <= now) {
      busy = now + t.interval;
      return now + t.latency;
    }
  }
  return now + t.latency;  // unreachable when can_issue() was honoured
}

u32 FuncUnitPool::group_size(OpClass op) const {
  return static_cast<u32>(busy_until_[group_of(op)].size());
}

}  // namespace tlrob
