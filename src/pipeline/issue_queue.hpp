// Shared out-of-order issue queue (Table 1: 64 entries shared by all
// threads).
//
// The queue is a slot container with per-thread occupancy accounting (DCRA
// and ICOUNT read it). Scheduling policy — oldest-first among ready — lives
// in the core's issue stage; speculative-wakeup replay support lives here:
// instructions issued on a speculatively-ready source keep their slot until
// the speculation confirms, and are re-armed if it does not.
#pragma once

#include <vector>

#include "pipeline/dyn_inst.hpp"

namespace tlrob {

class IssueQueue {
 public:
  IssueQueue(u32 entries, u32 num_threads);

  bool has_free() const { return free_ > 0; }
  u32 capacity() const { return static_cast<u32>(slots_.size()); }
  u32 occupancy() const { return capacity() - free_; }
  u32 occupancy(ThreadId t) const { return per_thread_[t]; }

  /// Inserts a dispatched instruction; requires has_free().
  void insert(DynInst* di);

  /// Releases the instruction's slot (issue confirmation or squash).
  void remove(DynInst* di);

  /// Slot contents by index (nullptr = free); the invariant-audit checks
  /// recount occupancy from these.
  const DynInst* slot(u32 i) const { return slots_[i]; }

  /// Test-only corruption hook for the invariant-audit suite: skews the
  /// free-slot counter without touching the slots, simulating a leaked or
  /// double-freed entry. Never called by the simulator.
  void test_only_corrupt_free(i32 delta) { free_ = static_cast<u32>(free_ + delta); }

  /// Invokes f(DynInst&) for every occupied slot.
  template <typename F>
  void for_each(F&& f) {
    for (DynInst* di : slots_)
      if (di != nullptr) f(*di);
  }

  /// Collects occupied entries matching a predicate into a caller-owned
  /// scratch buffer (cleared first; capacity is retained across calls, so a
  /// reused buffer makes the per-cycle candidate scan allocation-free).
  /// Selection order is slot order — ascending slot index, i.e. the order
  /// entries were placed by insert(), which always takes the lowest free
  /// slot. Callers needing age order sort the result by seq themselves.
  template <typename Pred>
  void collect_into(std::vector<DynInst*>& out, Pred&& pred) {
    out.clear();
    for (DynInst* di : slots_)
      if (di != nullptr && pred(*di)) out.push_back(di);
  }

 private:
  std::vector<DynInst*> slots_;
  std::vector<u32> per_thread_;
  u32 free_;
};

}  // namespace tlrob
