// Shared out-of-order issue queue (Table 1: 64 entries shared by all
// threads).
//
// The queue is a slot container with per-thread occupancy accounting (DCRA
// and ICOUNT read it). Scheduling policy — oldest-first among ready — lives
// in the core's issue stage; speculative-wakeup replay support lives here:
// instructions issued on a speculatively-ready source keep their slot until
// the speculation confirms, and are re-armed if it does not.
//
// The per-cycle candidate scan is the core's hottest loop, so the queue
// keeps occupancy and not-yet-issued bitmaps plus a dense mirror of the
// source registers each entry's wakeup check must see ready: the scan walks
// bitmap words and one flat array instead of dereferencing DynInsts
// scattered across the per-thread ROB slabs. The slot a given insert takes
// (always the lowest free one) and the scan's selection order (ascending
// slot index) are unchanged from the pointer-walk implementation — both are
// part of the machine's deterministic fingerprint.
#pragma once

#include <bit>
#include <vector>

#include "pipeline/dyn_inst.hpp"

namespace tlrob {

class IssueQueue {
 public:
  IssueQueue(u32 entries, u32 num_threads);

  bool has_free() const { return free_ > 0; }
  u32 capacity() const { return static_cast<u32>(slots_.size()); }
  u32 occupancy() const { return capacity() - free_; }
  u32 occupancy(ThreadId t) const { return per_thread_[t]; }

  /// Inserts a dispatched instruction; requires has_free().
  void insert(DynInst* di);

  /// Releases the instruction's slot (issue confirmation or squash).
  void remove(DynInst* di);

  /// The issue stage confirmed `di` issued; a speculatively-issued entry
  /// keeps its slot but leaves the candidate-scan set until re-armed.
  void mark_issued(const DynInst* di) {
    if (di->in_iq) {
      bm_clear(unissued_, static_cast<u32>(di->iq_slot));
      bm_clear(scan_, static_cast<u32>(di->iq_slot));
    }
  }

  /// Replay re-armed `di` (issued flag cleared): back into the scan set.
  void mark_unissued(const DynInst* di) {
    if (di->in_iq) {
      bm_set(unissued_, static_cast<u32>(di->iq_slot));
      bm_set(scan_, static_cast<u32>(di->iq_slot));
    }
  }

  /// Slot contents by index (nullptr = free); the invariant-audit checks
  /// recount occupancy from these.
  const DynInst* slot(u32 i) const { return slots_[i]; }

  /// Test-only corruption hook for the invariant-audit suite: skews the
  /// free-slot counter without touching the slots, simulating a leaked or
  /// double-freed entry. Never called by the simulator.
  void test_only_corrupt_free(i32 delta) { free_ = static_cast<u32>(free_ + delta); }

  /// Invokes f(DynInst&) for every occupied slot.
  template <typename F>
  void for_each(F&& f) {
    for (DynInst* di : slots_)
      if (di != nullptr) f(*di);
  }

  /// Collects occupied entries matching a predicate into a caller-owned
  /// scratch buffer (cleared first; capacity is retained across calls, so a
  /// reused buffer makes the scan allocation-free). Selection order is slot
  /// order — ascending slot index, i.e. the order entries were placed by
  /// insert(), which always takes the lowest free slot. Callers needing age
  /// order sort the result by seq themselves.
  template <typename Pred>
  void collect_into(std::vector<DynInst*>& out, Pred&& pred) {
    out.clear();
    for (DynInst* di : slots_)
      if (di != nullptr && pred(*di)) out.push_back(di);
  }

  /// Source classification for the candidate scan, from the rename
  /// scoreboard's point of view at the current cycle.
  enum class SrcState : u8 {
    kReady,      // value available (or speculatively matured) now
    kWaitTime,   // speculative wakeup pending: matures with time alone
    kWaitEvent,  // plain not-ready: becomes ready only via a set_ready /
                 // set_spec_ready call — safe to park on
  };

  /// The issue stage's candidate scan: collects, in ascending slot order,
  /// every not-yet-issued entry whose mirrored wakeup sources all classify
  /// kReady. A store's address source is pre-substituted at insert (data is
  /// only needed at commit), so the scan itself is shape-blind.
  ///
  /// Entries whose first blocking source is kWaitEvent are parked on that
  /// register and leave the scan set until wake_waiters(reg) — the caller
  /// must invoke it on every readiness transition of a destination register
  /// (set_ready and set_spec_ready). Since a kWaitEvent source can become
  /// ready through no other path, a parked entry can never be a candidate
  /// before its wake, and the per-cycle candidate set is identical to a
  /// full rescan's. kWaitTime sources mature silently, so those entries
  /// stay in the scan set.
  template <typename ClassifyFn>
  void collect_issue_candidates(std::vector<DynInst*>& out, ClassifyFn&& classify) {
    out.clear();
    for (u32 w = 0; w < scan_.size(); ++w) {
      u64 bits = scan_[w];
      while (bits != 0) {
        const u32 i = (w << 6) + static_cast<u32>(std::countr_zero(bits));
        bits &= bits - 1;
        const PhysReg a = chk_src_[2 * i];
        const PhysReg b = chk_src_[2 * i + 1];
        if (a != kInvalidPhysReg) {
          const SrcState s = classify(a);
          if (s == SrcState::kWaitEvent) {
            park(i, a);
            continue;
          }
          if (s == SrcState::kWaitTime) continue;
        }
        if (b != kInvalidPhysReg) {
          const SrcState s = classify(b);
          if (s == SrcState::kWaitEvent) {
            park(i, b);
            continue;
          }
          if (s == SrcState::kWaitTime) continue;
        }
        out.push_back(slots_[i]);
      }
    }
  }

  /// Register `r` transitioned towards ready: put its parked waiters back
  /// into the scan set. Cheap no-op when nothing is parked on it.
  void wake_waiters(PhysReg r);

 private:
  static constexpr u32 kNoSlot = ~0u;

  static void bm_set(std::vector<u64>& bm, u32 i) { bm[i >> 6] |= 1ULL << (i & 63); }
  static void bm_clear(std::vector<u64>& bm, u32 i) { bm[i >> 6] &= ~(1ULL << (i & 63)); }

  void park(u32 slot, PhysReg r);

  std::vector<DynInst*> slots_;
  std::vector<u64> live_;        // bit per slot: occupied
  std::vector<u64> unissued_;    // bit per slot: occupied and not issued
  std::vector<u64> scan_;        // bit per slot: unissued and not parked
  std::vector<PhysReg> chk_src_; // [2*slot + k]: wakeup sources to check
  // Parking: intrusive singly-linked chains headed per register (grown on
  // demand). A chain node is never unlinked eagerly — remove() only clears
  // the slot's park_reg_, and wake_waiters() discards such stale nodes when
  // it drains the chain. A slot still chained (chained_) cannot re-park and
  // simply stays in the scan set until the old chain drains: conservative,
  // never incorrect.
  std::vector<u32> park_head_;   // [reg] -> first chained slot or kNoSlot
  std::vector<u32> park_next_;   // [slot] -> next chained slot or kNoSlot
  std::vector<PhysReg> park_reg_;  // [slot] -> register parked on, or invalid
  std::vector<u8> chained_;      // [slot] -> sits on some chain
  std::vector<u32> per_thread_;
  u64 last_word_mask_;           // valid bits of the final bitmap word
  u32 free_;
};

}  // namespace tlrob
