#include "pipeline/issue_queue.hpp"

#include <cassert>
#include <stdexcept>

namespace tlrob {

IssueQueue::IssueQueue(u32 entries, u32 num_threads)
    : slots_(entries, nullptr), per_thread_(num_threads, 0), free_(entries) {}

void IssueQueue::insert(DynInst* di) {
  if (free_ == 0) throw std::logic_error("IssueQueue::insert on full queue");
  for (u32 i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == nullptr) {
      slots_[i] = di;
      di->iq_slot = static_cast<int>(i);
      di->in_iq = true;
      --free_;
      ++per_thread_[di->tid];
      return;
    }
  }
  assert(false && "free_ count out of sync");
}

void IssueQueue::remove(DynInst* di) {
  if (!di->in_iq) return;
  assert(di->iq_slot >= 0 && slots_[static_cast<u32>(di->iq_slot)] == di);
  slots_[static_cast<u32>(di->iq_slot)] = nullptr;
  di->in_iq = false;
  di->iq_slot = -1;
  ++free_;
  --per_thread_[di->tid];
}

}  // namespace tlrob
