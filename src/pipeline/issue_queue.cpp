#include "pipeline/issue_queue.hpp"

#include <cassert>
#include <stdexcept>

namespace tlrob {

IssueQueue::IssueQueue(u32 entries, u32 num_threads)
    : slots_(entries, nullptr),
      live_((entries + 63) / 64, 0),
      unissued_((entries + 63) / 64, 0),
      scan_((entries + 63) / 64, 0),
      chk_src_(2 * entries, kInvalidPhysReg),
      park_next_(entries, kNoSlot),
      park_reg_(entries, kInvalidPhysReg),
      chained_(entries, 0),
      per_thread_(num_threads, 0),
      last_word_mask_(entries % 64 == 0 ? ~0ULL : (1ULL << (entries % 64)) - 1),
      free_(entries) {}

void IssueQueue::insert(DynInst* di) {
  if (free_ == 0) throw std::logic_error("IssueQueue::insert on full queue");
  for (u32 w = 0; w < live_.size(); ++w) {
    const u64 mask = (w + 1 == live_.size()) ? last_word_mask_ : ~0ULL;
    const u64 free_bits = ~live_[w] & mask;
    if (free_bits == 0) continue;
    const u32 i = (w << 6) + static_cast<u32>(std::countr_zero(free_bits));
    slots_[i] = di;
    bm_set(live_, i);
    if (!di->issued) {
      bm_set(unissued_, i);
      bm_set(scan_, i);
    }
    // A store issues on its address source alone (src[1]); the data (src[0])
    // is only needed at commit, so it never gates the candidate scan.
    chk_src_[2 * i] = di->is_store() ? kInvalidPhysReg : di->src_phys[0];
    chk_src_[2 * i + 1] = di->src_phys[1];
    di->iq_slot = static_cast<int>(i);
    di->in_iq = true;
    --free_;
    ++per_thread_[di->tid];
    return;
  }
  assert(false && "free_ count out of sync");
}

void IssueQueue::remove(DynInst* di) {
  if (!di->in_iq) return;
  const u32 i = static_cast<u32>(di->iq_slot);
  assert(di->iq_slot >= 0 && slots_[i] == di);
  slots_[i] = nullptr;
  bm_clear(live_, i);
  bm_clear(unissued_, i);
  bm_clear(scan_, i);
  park_reg_[i] = kInvalidPhysReg;  // chain node (if any) goes stale
  di->in_iq = false;
  di->iq_slot = -1;
  ++free_;
  --per_thread_[di->tid];
}

void IssueQueue::park(u32 slot, PhysReg r) {
  if (chained_[slot] != 0) return;  // old chain not drained yet; stay scannable
  if (r >= park_head_.size()) park_head_.resize(r + 1, kNoSlot);
  park_reg_[slot] = r;
  park_next_[slot] = park_head_[r];
  park_head_[r] = slot;
  chained_[slot] = 1;
  bm_clear(scan_, slot);
}

void IssueQueue::wake_waiters(PhysReg r) {
  if (r >= park_head_.size()) return;
  u32 i = park_head_[r];
  if (i == kNoSlot) return;
  park_head_[r] = kNoSlot;
  while (i != kNoSlot) {
    const u32 next = park_next_[i];
    park_next_[i] = kNoSlot;
    chained_[i] = 0;
    if (park_reg_[i] == r) {  // stale nodes (slot freed/reused) are skipped
      park_reg_[i] = kInvalidPhysReg;
      bm_set(scan_, i);
    }
    i = next;
  }
}

}  // namespace tlrob
