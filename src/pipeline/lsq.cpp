#include "pipeline/lsq.hpp"

#include <cassert>
#include <stdexcept>

namespace tlrob {

void LoadStoreQueue::push(DynInst* di) {
  if (!has_free()) throw std::logic_error("LoadStoreQueue::push on full queue");
  assert(entries_.empty() || entries_.back()->tseq < di->tseq);
  entries_.push_back(std::move(di));
  di->lsq_allocated = true;
}

void LoadStoreQueue::pop(DynInst* di) {
  if (entries_.empty() || entries_.front() != di)
    throw std::logic_error("LoadStoreQueue::pop out of order");
  entries_.pop_front();
  di->lsq_allocated = false;
}

void LoadStoreQueue::test_only_drop_front() {
  if (!entries_.empty()) entries_.pop_front();
}

void LoadStoreQueue::squash_after(u64 tseq) {
  while (!entries_.empty() && entries_.back()->tseq > tseq) {
    entries_.back()->lsq_allocated = false;
    entries_.pop_back();
  }
}

bool LoadStoreQueue::overlap(const DynInst& a, const DynInst& b) {
  constexpr u32 kAccessBytes = 8;  // fixed access granularity of the ISA
  return a.mem_addr < b.mem_addr + kAccessBytes && b.mem_addr < a.mem_addr + kAccessBytes;
}

bool LoadStoreQueue::older_stores_resolved(const DynInst& load) const {
  for (u32 i = entries_.size(); i-- > 0;) {
    const DynInst* e = entries_[i];
    if (e->tseq >= load.tseq) continue;
    if (e->is_store() && !e->addr_resolved) return false;
  }
  return true;
}

DynInst* LoadStoreQueue::forwarding_store(const DynInst& load) const {
  for (u32 i = entries_.size(); i-- > 0;) {
    DynInst* e = entries_[i];
    if (e->tseq >= load.tseq) continue;
    if (e->is_store() && e->addr_resolved && overlap(*e, load)) return e;
  }
  return nullptr;
}

}  // namespace tlrob
