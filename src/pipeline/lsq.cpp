#include "pipeline/lsq.hpp"

#include <cassert>
#include <stdexcept>

namespace tlrob {

void LoadStoreQueue::push(DynInst* di) {
  if (!has_free()) throw std::logic_error("LoadStoreQueue::push on full queue");
  assert(entries_.empty() || entries_.back()->tseq < di->tseq);
  entries_.push_back(std::move(di));
  di->lsq_allocated = true;
  if (di->is_store()) {
    stores_.push_back(static_cast<DynInst*>(di));
    if (!di->addr_resolved) ++unresolved_stores_;
  }
}

void LoadStoreQueue::pop(DynInst* di) {
  if (entries_.empty() || entries_.front() != di)
    throw std::logic_error("LoadStoreQueue::pop out of order");
  entries_.pop_front();
  di->lsq_allocated = false;
  if (di->is_store()) {
    stores_.pop_front();  // stores_ preserves entries_'s order, so front == di
    if (!di->addr_resolved) note_store_resolved();
  }
}

void LoadStoreQueue::test_only_drop_front() {
  if (entries_.empty()) return;
  if (entries_.front()->is_store()) {
    if (!stores_.front()->addr_resolved) note_store_resolved();
    stores_.pop_front();
  }
  entries_.pop_front();
}

void LoadStoreQueue::squash_after(u64 tseq) {
  while (!entries_.empty() && entries_.back()->tseq > tseq) {
    DynInst* e = entries_.back();
    e->lsq_allocated = false;
    if (e->is_store()) {
      stores_.pop_back();
      if (!e->addr_resolved) note_store_resolved();
    }
    entries_.pop_back();
  }
}

bool LoadStoreQueue::overlap(const DynInst& a, const DynInst& b) {
  constexpr u32 kAccessBytes = 8;  // fixed access granularity of the ISA
  return a.mem_addr < b.mem_addr + kAccessBytes && b.mem_addr < a.mem_addr + kAccessBytes;
}

DynInst* LoadStoreQueue::forwarding_store(const DynInst& load) const {
  for (u32 i = stores_.size(); i-- > 0;) {
    DynInst* e = stores_[i];
    if (e->tseq >= load.tseq) continue;
    if (e->addr_resolved && overlap(*e, load)) return e;
  }
  return nullptr;
}

}  // namespace tlrob
