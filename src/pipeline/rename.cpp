#include "pipeline/rename.hpp"

#include <stdexcept>

namespace tlrob {

RenameUnit::RenameUnit(const RenameConfig& cfg) : cfg_(cfg) {
  const u32 pools = cfg.shared ? 1 : cfg.num_threads;
  const u32 arch_per_pool_int = (cfg.shared ? cfg.num_threads : 1) * kNumIntArchRegs;
  const u32 arch_per_pool_fp = (cfg.shared ? cfg.num_threads : 1) * kNumFpArchRegs;
  if (cfg.int_regs <= arch_per_pool_int || cfg.fp_regs <= arch_per_pool_fp)
    throw std::invalid_argument(
        "RenameUnit: physical registers must exceed committed architectural state");

  const u32 total = pools * (cfg.int_regs + cfg.fp_regs);
  state_.assign(total, RegState::kReady);
  spec_at_.assign(total, 0);
  readers_.assign(total, 0);
  is_fp_phys_.assign(total, false);
  int_use_.assign(cfg.num_threads, 0);
  fp_use_.assign(cfg.num_threads, 0);
  free_int_.resize(pools);
  free_fp_.resize(pools);

  // Physical layout: per pool, the integer file then the FP file. The low
  // registers of each file hold the committed architectural state.
  rat_.assign(cfg.num_threads, std::vector<PhysReg>(kNumArchRegs, kInvalidPhysReg));
  for (u32 p = 0; p < pools; ++p) {
    const PhysReg int_base = p * (cfg.int_regs + cfg.fp_regs);
    const PhysReg fp_base = int_base + cfg.int_regs;
    for (PhysReg r = fp_base; r < int_base + cfg.int_regs + cfg.fp_regs; ++r)
      is_fp_phys_[r] = true;

    u32 next_int = int_base;
    u32 next_fp = fp_base;
    for (u32 t = 0; t < cfg.num_threads; ++t) {
      if (pool(t) != p) continue;
      for (u32 r = 0; r < kNumIntArchRegs; ++r) rat_[t][r] = next_int++;
      for (u32 r = 0; r < kNumFpArchRegs; ++r) rat_[t][kNumIntArchRegs + r] = next_fp++;
    }
    for (PhysReg r = next_int; r < fp_base; ++r) free_int_[p].push_back(r);
    for (PhysReg r = next_fp; r < int_base + cfg.int_regs + cfg.fp_regs; ++r)
      free_fp_[p].push_back(r);
  }
}

bool RenameUnit::can_rename(ThreadId tid, const StaticInst& si) const {
  if (!si.has_dest()) return true;
  return is_fp_reg(si.dest) ? !free_fp_[pool(tid)].empty() : !free_int_[pool(tid)].empty();
}

PhysReg RenameUnit::alloc(bool fp, ThreadId t) {
  auto& fl = fp ? free_fp_[pool(t)] : free_int_[pool(t)];
  const PhysReg r = fl.back();
  fl.pop_back();
  (fp ? fp_use_ : int_use_)[t] += 1;
  return r;
}

void RenameUnit::release(PhysReg r, ThreadId t) {
  const bool fp = is_fp_phys_[r];
  (fp ? free_fp_[pool(t)] : free_int_[pool(t)]).push_back(r);
  u32& use = (fp ? fp_use_ : int_use_)[t];
  if (use > 0) --use;
  state_[r] = RegState::kReady;  // free regs are inert; reset for reuse
}

void RenameUnit::rename(DynInst& di) {
  const StaticInst& si = *di.si;
  for (u32 s = 0; s < 2; ++s) {
    di.src_phys[s] = si.src[s] == kNoReg ? kInvalidPhysReg : rat_[di.tid][si.src[s]];
    if (di.src_phys[s] != kInvalidPhysReg) ++readers_[di.src_phys[s]];
  }
  if (si.has_dest()) {
    di.prev_dest_phys = rat_[di.tid][si.dest];
    di.dest_phys = alloc(is_fp_reg(si.dest), di.tid);
    state_[di.dest_phys] = RegState::kNotReady;
    rat_[di.tid][si.dest] = di.dest_phys;
  }
}

void RenameUnit::commit_free(const DynInst& di) {
  if (di.prev_dest_phys != kInvalidPhysReg && !di.prev_freed_early)
    release(di.prev_dest_phys, di.tid);
}

void RenameUnit::early_free_prev(DynInst& di) {
  release(di.prev_dest_phys, di.tid);
  di.prev_freed_early = true;
}

void RenameUnit::consumers_read(const DynInst& di) {
  for (PhysReg s : di.src_phys)
    if (s != kInvalidPhysReg && readers_[s] > 0) --readers_[s];
}

void RenameUnit::consumers_cancel(const DynInst& di) { consumers_read(di); }

void RenameUnit::squash_undo(const DynInst& di) {
  if (di.dest_phys != kInvalidPhysReg) {
    rat_[di.tid][di.si->dest] = di.prev_dest_phys;
    release(di.dest_phys, di.tid);
  }
}

}  // namespace tlrob
