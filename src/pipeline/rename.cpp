#include "pipeline/rename.hpp"

#include <sstream>
#include <stdexcept>

namespace tlrob {

RenameUnit::RenameUnit(const RenameConfig& cfg) : cfg_(cfg) {
  const u32 pools = cfg.shared ? 1 : cfg.num_threads;
  const u32 arch_per_pool_int = (cfg.shared ? cfg.num_threads : 1) * kNumIntArchRegs;
  const u32 arch_per_pool_fp = (cfg.shared ? cfg.num_threads : 1) * kNumFpArchRegs;
  if (cfg.int_regs <= arch_per_pool_int || cfg.fp_regs <= arch_per_pool_fp)
    throw std::invalid_argument(
        "RenameUnit: physical registers must exceed committed architectural state");

  const u32 total = pools * (cfg.int_regs + cfg.fp_regs);
  state_.assign(total, RegState::kReady);
  spec_at_.assign(total, 0);
  readers_.assign(total, 0);
  is_fp_phys_.assign(total, 0);
  int_use_.assign(cfg.num_threads, 0);
  fp_use_.assign(cfg.num_threads, 0);
  free_int_.resize(pools);
  free_fp_.resize(pools);

  // Physical layout: per pool, the integer file then the FP file. The low
  // registers of each file hold the committed architectural state.
  rat_.assign(cfg.num_threads * kNumArchRegs, kInvalidPhysReg);
  for (u32 p = 0; p < pools; ++p) {
    const PhysReg int_base = p * (cfg.int_regs + cfg.fp_regs);
    const PhysReg fp_base = int_base + cfg.int_regs;
    for (PhysReg r = fp_base; r < int_base + cfg.int_regs + cfg.fp_regs; ++r)
      is_fp_phys_[r] = 1;

    u32 next_int = int_base;
    u32 next_fp = fp_base;
    for (u32 t = 0; t < cfg.num_threads; ++t) {
      if (pool(t) != p) continue;
      PhysReg* row = &rat_[t * kNumArchRegs];
      for (u32 r = 0; r < kNumIntArchRegs; ++r) row[r] = next_int++;
      for (u32 r = 0; r < kNumFpArchRegs; ++r) row[kNumIntArchRegs + r] = next_fp++;
    }
    for (PhysReg r = next_int; r < fp_base; ++r) free_int_[p].push_back(r);
    for (PhysReg r = next_fp; r < int_base + cfg.int_regs + cfg.fp_regs; ++r)
      free_fp_[p].push_back(r);
  }
}

bool RenameUnit::can_rename(ThreadId tid, const StaticInst& si) const {
  if (!si.has_dest()) return true;
  return is_fp_reg(si.dest) ? !free_fp_[pool(tid)].empty() : !free_int_[pool(tid)].empty();
}

void RenameUnit::rename(DynInst& di) {
  const StaticInst& si = *di.si;
  PhysReg* row = &rat_[di.tid * kNumArchRegs];
  for (u32 s = 0; s < 2; ++s) {
    di.src_phys[s] = si.src[s] == kNoReg ? kInvalidPhysReg : row[si.src[s]];
    if (di.src_phys[s] != kInvalidPhysReg) ++readers_[di.src_phys[s]];
  }
  if (si.has_dest()) {
    di.prev_dest_phys = row[si.dest];
    di.dest_phys = alloc(is_fp_reg(si.dest), di.tid);
    state_[di.dest_phys] = RegState::kNotReady;
    row[si.dest] = di.dest_phys;
  }
}

void RenameUnit::commit_free(const DynInst& di) {
  if (di.prev_dest_phys != kInvalidPhysReg && !di.prev_freed_early)
    release(di.prev_dest_phys, di.tid);
}

void RenameUnit::early_free_prev(DynInst& di) {
  release(di.prev_dest_phys, di.tid);
  di.prev_freed_early = true;
}

void RenameUnit::consumers_read(const DynInst& di) {
  for (PhysReg s : di.src_phys)
    if (s != kInvalidPhysReg && readers_[s] > 0) --readers_[s];
}

void RenameUnit::consumers_cancel(const DynInst& di) { consumers_read(di); }

std::vector<std::string> RenameUnit::audit_integrity() const {
  std::vector<std::string> issues;
  const u32 pools = cfg_.shared ? 1 : cfg_.num_threads;
  // 0 = unseen, 1 = on a free list, 2 = RAT-mapped.
  std::vector<u8> seen(state_.size(), 0);

  for (u32 p = 0; p < pools; ++p) {
    for (const bool fp : {false, true}) {
      for (PhysReg r : fp ? free_fp_[p] : free_int_[p]) {
        std::ostringstream os;
        os << "free " << (fp ? "fp" : "int") << " register " << r << " (pool " << p << ") ";
        if (r >= state_.size()) {
          issues.push_back(os.str() + "is out of range");
          continue;
        }
        if ((is_fp_phys_[r] != 0) != fp) issues.push_back(os.str() + "has the wrong class");
        if (seen[r] == 1)
          issues.push_back(os.str() + "appears on a free list twice (double-free)");
        seen[r] = 1;
        if (state_[r] != RegState::kReady)
          issues.push_back(os.str() + "is not inert (state != ready)");
        if (readers_[r] != 0) issues.push_back(os.str() + "has pending readers");
      }
    }
  }

  for (u32 t = 0; t < cfg_.num_threads; ++t) {
    for (u32 a = 0; a < kNumArchRegs; ++a) {
      const PhysReg r = rat_[t * kNumArchRegs + a];
      std::ostringstream os;
      os << "RAT[" << t << "][" << a << "] -> " << r << " ";
      if (r >= state_.size()) {
        issues.push_back(os.str() + "is out of range");
        continue;
      }
      if ((is_fp_phys_[r] != 0) != is_fp_reg(static_cast<ArchReg>(a)))
        issues.push_back(os.str() + "has the wrong class");
      if (seen[r] == 1)
        issues.push_back(os.str() + "is simultaneously on a free list (use-after-free)");
      else if (seen[r] == 2)
        issues.push_back(os.str() + "is mapped by two RAT entries");
      seen[r] = 2;
    }
  }

  // Conservation: every renameable register is free or in use, exactly once.
  for (u32 p = 0; p < pools; ++p) {
    u64 int_use = 0, fp_use = 0;
    for (u32 t = 0; t < cfg_.num_threads; ++t) {
      if (pool(t) != p) continue;
      int_use += int_use_[t];
      fp_use += fp_use_[t];
    }
    if (free_int_[p].size() + int_use != int_rename_pool()) {
      std::ostringstream os;
      os << "int pool " << p << ": " << free_int_[p].size() << " free + " << int_use
         << " in use != " << int_rename_pool() << " renameable (leak or double-free)";
      issues.push_back(os.str());
    }
    if (free_fp_[p].size() + fp_use != fp_rename_pool()) {
      std::ostringstream os;
      os << "fp pool " << p << ": " << free_fp_[p].size() << " free + " << fp_use
         << " in use != " << fp_rename_pool() << " renameable (leak or double-free)";
      issues.push_back(os.str());
    }
  }
  return issues;
}

void RenameUnit::test_only_leak_free_reg() {
  if (!free_int_[0].empty()) free_int_[0].pop_back();
}

void RenameUnit::squash_undo(const DynInst& di) {
  if (di.dest_phys != kInvalidPhysReg) {
    rat_[di.tid * kNumArchRegs + di.si->dest] = di.prev_dest_phys;
    release(di.dest_phys, di.tid);
  }
}

}  // namespace tlrob
