#include "pipeline/dcra.hpp"

#include <algorithm>
#include <cmath>

namespace tlrob {

DcraController::DcraController(const DcraConfig& cfg, u32 num_threads)
    : cfg_(cfg), slow_(num_threads, false), iq_usage_(num_threads, 0), num_fast_(num_threads) {}

void DcraController::classify(const std::vector<ThreadFetchView>& views) {
  num_fast_ = 0;
  num_slow_ = 0;
  for (u32 t = 0; t < views.size(); ++t) {
    slow_[t] = views[t].active && views[t].outstanding_l1 > 0;
    iq_usage_[t] = views[t].iq_count;
    if (!views[t].active) continue;
    if (slow_[t])
      ++num_slow_;
    else
      ++num_fast_;
  }
}

u32 DcraController::base_share(ThreadId t, u32 capacity) const {
  const double F = static_cast<double>(num_fast_);
  const double S = static_cast<double>(num_slow_);
  const double X = cfg_.sharing;
  const double denom = std::max(1.0, F + S * X);
  const double e_fast = static_cast<double>(capacity) / denom;
  const double e = slow_[t] ? X * e_fast : e_fast;
  return std::max<u32>(1, static_cast<u32>(std::floor(e)));
}

u32 DcraController::cap(ThreadId t, u32 capacity) const {
  // Fast threads are never throttled below their demand: DCRA hands slow
  // threads the resources fast threads do not need, not the other way
  // around. A fast thread's instructions drain the queue quickly, so its
  // occupancy is self-limiting.
  if (!slow_[t]) return capacity;
  // Slow threads are not hard-capped either: DCRA steers fetch priority and
  // resource *estimates*, but a stalled thread's already-dispatched
  // dependents stay put, so a wave of in-flight instructions behind an L2
  // miss clogs the queue in proportion to the thread's WINDOW size. That is
  // the paper's point: with 32-entry ROBs the exposure is bounded at 31
  // instructions per thread, with 128-entry ROBs (Baseline_128) it is not —
  // and the DoD threshold is what lets the two-level design open a large
  // window without that exposure.
  return capacity;
}

bool DcraController::within_caps(ThreadId t, u32 iq_use, u32 iq_capacity, u32 int_use,
                                 u32 int_capacity, u32 fp_use, u32 fp_capacity) const {
  // The hard cap applies to the shared issue queue — the resource whose
  // monopolisation DCRA demonstrably prevents. Register-file occupancy is
  // not hard-capped: a thread blocked on an L2 miss keeps its renamed
  // registers regardless of any fetch gating, which is exactly the residual
  // pressure the paper observes DCRA cannot remove (Baseline_128 degrades
  // *under DCRA*, §1/§5.2). We keep a loose guard that stops a single
  // thread from renaming the entire free pool outright.
  const u32 reg_guard_int = int_capacity > 0 ? int_capacity - int_capacity / 8 : 0;
  const u32 reg_guard_fp = fp_capacity > 0 ? fp_capacity - fp_capacity / 8 : 0;
  return iq_use < cap(t, iq_capacity) && (int_capacity == 0 || int_use < reg_guard_int) &&
         (fp_capacity == 0 || fp_use < reg_guard_fp);
}

}  // namespace tlrob
