// Functional-unit pool per Table 1:
//   8 Int Add (1/1), 4 Int Mult (3/1) / Div (20/19), 4 Load/Store (2/1),
//   8 FP Add (2/1), 4 FP Mult (4/1) / Div (12/12) / Sqrt (24/24).
// "(latency / issue interval)": an unpipelined op reserves its unit for the
// issue interval; a pipelined one (interval 1) frees it the next cycle.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace tlrob {

struct OpTiming {
  Cycle latency = 1;
  Cycle interval = 1;  // cycles the unit stays reserved
};

class FuncUnitPool {
 public:
  /// Builds the Table 1 configuration.
  FuncUnitPool();

  /// True if a unit capable of `op` is free at `now`.
  bool can_issue(OpClass op, Cycle now) const;

  /// Reserves a unit and returns the completion cycle. Requires can_issue().
  Cycle issue(OpClass op, Cycle now);

  const OpTiming& timing(OpClass op) const { return timing_[static_cast<u32>(op)]; }

  /// Number of units in the group executing `op`.
  u32 group_size(OpClass op) const;

 private:
  enum Group : u8 { kIntAdd, kIntMulDiv, kLoadStore, kFpAddG, kFpMulDiv, kNumGroups };
  Group group_of(OpClass op) const { return group_map_[static_cast<u32>(op)]; }

  std::array<std::vector<Cycle>, kNumGroups> busy_until_;  // per-unit reservation
  std::array<Group, kNumOpClasses> group_map_{};
  std::array<OpTiming, kNumOpClasses> timing_{};
};

}  // namespace tlrob
