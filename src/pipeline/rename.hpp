// Register renaming: per-thread map tables (RAT), physical register files
// (Table 1: 224 integer + 224 floating-point), free lists, and the
// ready/speculative-ready scoreboard used by the issue queue.
//
// The register files are SHARED by all threads by default — "multiple
// threads share ... the pool of physical registers used for renaming" (§1 of
// the paper) — which is central to its story: with 4 threads, only
// 224 - 4*32 = 96 renames per file exist, so blindly scaling every private
// ROB to 128 entries (Baseline_128) oversubscribes the file catastrophically,
// while granting the large second level to *one* low-DoD thread at a time
// lets that thread alone use the slack. A per-thread-file mode is provided
// for the ablation bench.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "pipeline/dyn_inst.hpp"

namespace tlrob {

struct RenameConfig {
  u32 int_regs = 224;
  u32 fp_regs = 224;
  u32 num_threads = 4;
  /// true: one pool of int_regs/fp_regs shared by all threads (paper model).
  /// false: each thread gets its own full-size files (ablation).
  bool shared = true;
};

class RenameUnit {
 public:
  explicit RenameUnit(const RenameConfig& cfg);

  /// True if a free destination register of the right class is available for
  /// `tid` (always true for dest-less ops).
  bool can_rename(ThreadId tid, const StaticInst& si) const;

  /// Renames `di` in place: source arch regs -> current mappings, allocates
  /// a destination register, updates the RAT. Requires can_rename().
  void rename(DynInst& di);

  /// Commit: releases the previous mapping of the destination (unless it
  /// was already freed by early release).
  void commit_free(const DynInst& di);

  /// Early register release (Sharkey & Ponomarev, ICS'07 — the synergy the
  /// paper defers to future work): frees `di`'s previous mapping before
  /// commit. Caller guarantees safety: the value has been produced, every
  /// consumer has read it, and `di` can no longer be squashed.
  void early_free_prev(DynInst& di);

  /// Outstanding readers of `r` that have been renamed but have not yet
  /// executed (read their operands).
  u32 pending_readers(PhysReg r) const { return readers_[r]; }
  /// Bookkeeping hooks for the reader counts.
  void consumers_read(const DynInst& di);    // at execution completion
  void consumers_cancel(const DynInst& di);  // at squash/undispatch before execution

  /// Squash undo (youngest-first over the squashed suffix): restores the RAT
  /// entry and releases the allocated destination register.
  void squash_undo(const DynInst& di);

  // -- scoreboard -----------------------------------------------------------
  enum class RegState : u8 { kReady, kNotReady, kSpecReady };

  bool is_ready(PhysReg r, Cycle now) const {
    return state_[r] == RegState::kReady ||
           (state_[r] == RegState::kSpecReady && spec_at_[r] <= now);
  }
  bool is_spec(PhysReg r) const { return state_[r] == RegState::kSpecReady; }
  /// True only when the value has actually been produced (not speculative).
  bool is_value_ready(PhysReg r) const { return state_[r] == RegState::kReady; }
  void set_ready(PhysReg r) { state_[r] = RegState::kReady; }
  void set_spec_ready(PhysReg r, Cycle at) {
    state_[r] = RegState::kSpecReady;
    spec_at_[r] = at;
  }
  /// Squashes a wrong speculation: the register goes back to not-ready.
  void clear_spec(PhysReg r) {
    if (state_[r] == RegState::kSpecReady) state_[r] = RegState::kNotReady;
  }

  // -- occupancy (DCRA inputs / stats) ---------------------------------------
  u32 free_int(ThreadId t) const { return static_cast<u32>(free_int_[pool(t)].size()); }
  u32 free_fp(ThreadId t) const { return static_cast<u32>(free_fp_[pool(t)].size()); }
  u32 int_in_use(ThreadId t) const { return int_use_[t]; }
  u32 fp_in_use(ThreadId t) const { return fp_use_[t]; }

  /// Renameable (non-architectural) registers in the pool `t` draws from.
  u32 int_rename_pool() const {
    return cfg_.int_regs - (cfg_.shared ? cfg_.num_threads : 1) * kNumIntArchRegs;
  }
  u32 fp_rename_pool() const {
    return cfg_.fp_regs - (cfg_.shared ? cfg_.num_threads : 1) * kNumFpArchRegs;
  }

  PhysReg rat_entry(ThreadId t, ArchReg r) const { return rat_[t * kNumArchRegs + r]; }
  const RenameConfig& config() const { return cfg_; }

  /// Invariant-audit hook: verifies register conservation from first
  /// principles — every renameable physical register is on exactly one free
  /// list or counted in exactly one thread's use counter, free registers are
  /// inert (ready, reader-free, right class, not mapped by any RAT) and RAT
  /// entries are in range with the right class. Returns one human-readable
  /// issue per violation (empty = clean).
  std::vector<std::string> audit_integrity() const;

  /// Test-only corruption hook for the invariant-audit suite: drops one
  /// free integer register without adjusting any use counter, simulating a
  /// leaked rename. Never called by the simulator.
  void test_only_leak_free_reg();

 private:
  u32 pool(ThreadId t) const { return cfg_.shared ? 0 : t; }

  // Inline: rename/commit run per dispatched instruction. The free lists
  // are LIFO stacks, which both avoids shifting and pins the allocation
  // order (the register a given rename receives is part of the machine's
  // deterministic fingerprint).
  PhysReg alloc(bool fp, ThreadId t) {
    auto& fl = fp ? free_fp_[pool(t)] : free_int_[pool(t)];
    const PhysReg r = fl.back();
    fl.pop_back();
    (fp ? fp_use_ : int_use_)[t] += 1;
    return r;
  }

  void release(PhysReg r, ThreadId t) {
    const bool fp = is_fp_phys_[r] != 0;
    (fp ? free_fp_[pool(t)] : free_int_[pool(t)]).push_back(r);
    u32& use = (fp ? fp_use_ : int_use_)[t];
    if (use > 0) --use;
    state_[r] = RegState::kReady;  // free regs are inert; reset for reuse
  }

  RenameConfig cfg_;
  // RAT flattened to one dense array ([thread * kNumArchRegs + arch reg]):
  // rename() reads up to three entries per instruction, and the flat layout
  // keeps all threads' tables in one allocation with no outer indirection.
  std::vector<PhysReg> rat_;
  std::vector<std::vector<PhysReg>> free_int_;  // [pool]
  std::vector<std::vector<PhysReg>> free_fp_;
  std::vector<RegState> state_;  // flat over all physical registers
  std::vector<Cycle> spec_at_;
  std::vector<u32> readers_;     // renamed-but-not-yet-executed consumers
  std::vector<u8> is_fp_phys_;   // class of each physical register
  std::vector<u32> int_use_;     // renamed (non-architectural) regs per thread
  std::vector<u32> fp_use_;
};

}  // namespace tlrob
