// Micro-op classes of the synthetic RISC-style ISA.
//
// The timing simulator only needs operation *classes* (which functional unit,
// which latency, load/store/branch behaviour) plus register dataflow; it never
// needs architectural values. The classes below mirror the function-unit
// inventory of Table 1 in the paper.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace tlrob {

enum class OpClass : u8 {
  kIntAlu,   // 1-cycle integer add/logic
  kIntMult,  // 3-cycle integer multiply
  kIntDiv,   // 20-cycle unpipelined integer divide
  kLoad,     // memory load (address from a workload address generator)
  kStore,    // memory store
  kFpAdd,    // 2-cycle FP add
  kFpMult,   // 4-cycle FP multiply
  kFpDiv,    // 12-cycle unpipelined FP divide
  kFpSqrt,   // 24-cycle unpipelined FP square root
  kBranch,   // conditional branch (outcome from a workload branch generator)
  kJump,     // unconditional direct jump
  kCall,     // direct call; pushes the return point onto the thread's stack
  kReturn,   // return; pops the thread's stack (predicted via RAS)
  kNop,
};

inline constexpr u32 kNumOpClasses = 14;

/// True for instructions that redirect control flow.
constexpr bool is_control(OpClass op) {
  return op == OpClass::kBranch || op == OpClass::kJump || op == OpClass::kCall ||
         op == OpClass::kReturn;
}

constexpr bool is_memory(OpClass op) {
  return op == OpClass::kLoad || op == OpClass::kStore;
}

/// True for ops whose destination (if any) lives in the FP register file.
/// Register-class selection is by architectural register index (see
/// static_inst.hpp); this helper only classifies the computation itself.
constexpr bool is_fp(OpClass op) {
  return op == OpClass::kFpAdd || op == OpClass::kFpMult || op == OpClass::kFpDiv ||
         op == OpClass::kFpSqrt;
}

std::string_view op_class_name(OpClass op);

}  // namespace tlrob
