// Static (compile-time) instruction representation.
//
// A synthetic benchmark is a control-flow graph of basic blocks; each block is
// a sequence of StaticInst. Register identities encode dataflow only — there
// are 32 integer architectural registers (indices 0..31) and 32 floating-point
// ones (32..63). Loads and stores reference a per-program *address generator*
// by id; conditional branches reference an *outcome generator* by id. Those
// generators are owned by the workload layer (workload/thread_context.hpp),
// keeping the ISA free of any policy.
#pragma once

#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace tlrob {

inline constexpr ArchReg kNoReg = 0xffff;
inline constexpr u32 kNumIntArchRegs = 32;
inline constexpr u32 kNumFpArchRegs = 32;
inline constexpr u32 kNumArchRegs = kNumIntArchRegs + kNumFpArchRegs;

/// True if the architectural register index names an FP register.
constexpr bool is_fp_reg(ArchReg r) { return r >= kNumIntArchRegs && r < kNumArchRegs; }

/// Convenience constructors for readable kernel-builder code.
constexpr ArchReg ireg(u32 i) { return static_cast<ArchReg>(i % kNumIntArchRegs); }
constexpr ArchReg freg(u32 i) { return static_cast<ArchReg>(kNumIntArchRegs + (i % kNumFpArchRegs)); }

struct StaticInst {
  OpClass op = OpClass::kNop;
  ArchReg dest = kNoReg;
  ArchReg src[2] = {kNoReg, kNoReg};

  /// Loads/stores: index of the address generator in the program's table.
  i32 agen_id = -1;
  /// Conditional branches: index of the outcome generator.
  i32 bgen_id = -1;

  /// Control-flow successors, as basic-block ids within the program.
  /// kBranch: taken_block if taken, fall-through otherwise (branches may only
  /// terminate a block). kJump/kCall: taken_block unconditionally. kReturn:
  /// target comes from the thread's architectural return stack.
  u32 taken_block = 0;

  /// Filled in by Program::finalize(): this instruction's PC.
  Addr pc = 0;

  u8 num_src() const { return static_cast<u8>((src[0] != kNoReg) + (src[1] != kNoReg)); }
  bool has_dest() const { return dest != kNoReg; }
  bool is_load() const { return op == OpClass::kLoad; }
  bool is_store() const { return op == OpClass::kStore; }
  bool is_cond_branch() const { return op == OpClass::kBranch; }
};

}  // namespace tlrob
