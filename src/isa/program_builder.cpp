#include "isa/program_builder.hpp"

namespace tlrob {

ProgramBuilder::ProgramBuilder(std::string name) : prog_(std::move(name)) {
  cur_ = prog_.add_block();
}

u32 ProgramBuilder::new_block() { return prog_.add_block(); }

ProgramBuilder& ProgramBuilder::in(u32 block) {
  cur_ = block;
  return *this;
}

ProgramBuilder& ProgramBuilder::fallthrough(u32 block, u32 succ) {
  prog_.block(block).fallthrough = succ;
  return *this;
}

ProgramBuilder& ProgramBuilder::emit(StaticInst si) {
  prog_.block(cur_).insts.push_back(si);
  return *this;
}

namespace {
StaticInst make3(OpClass op, ArchReg d, ArchReg a, ArchReg b) {
  StaticInst si;
  si.op = op;
  si.dest = d;
  si.src[0] = a;
  si.src[1] = b;
  return si;
}
}  // namespace

ProgramBuilder& ProgramBuilder::int_alu(ArchReg d, ArchReg a, ArchReg b) {
  return emit(make3(OpClass::kIntAlu, d, a, b));
}
ProgramBuilder& ProgramBuilder::int_mult(ArchReg d, ArchReg a, ArchReg b) {
  return emit(make3(OpClass::kIntMult, d, a, b));
}
ProgramBuilder& ProgramBuilder::int_div(ArchReg d, ArchReg a, ArchReg b) {
  return emit(make3(OpClass::kIntDiv, d, a, b));
}
ProgramBuilder& ProgramBuilder::fp_add(ArchReg d, ArchReg a, ArchReg b) {
  return emit(make3(OpClass::kFpAdd, d, a, b));
}
ProgramBuilder& ProgramBuilder::fp_mult(ArchReg d, ArchReg a, ArchReg b) {
  return emit(make3(OpClass::kFpMult, d, a, b));
}
ProgramBuilder& ProgramBuilder::fp_div(ArchReg d, ArchReg a, ArchReg b) {
  return emit(make3(OpClass::kFpDiv, d, a, b));
}
ProgramBuilder& ProgramBuilder::fp_sqrt(ArchReg d, ArchReg a) {
  return emit(make3(OpClass::kFpSqrt, d, a, kNoReg));
}

ProgramBuilder& ProgramBuilder::load(ArchReg d, u32 agen, ArchReg addr_dep) {
  StaticInst si = make3(OpClass::kLoad, d, addr_dep, kNoReg);
  si.agen_id = static_cast<i32>(agen);
  return emit(si);
}

ProgramBuilder& ProgramBuilder::store(u32 agen, ArchReg value_src, ArchReg addr_dep) {
  StaticInst si = make3(OpClass::kStore, kNoReg, value_src, addr_dep);
  si.agen_id = static_cast<i32>(agen);
  return emit(si);
}

ProgramBuilder& ProgramBuilder::branch(u32 bgen, u32 taken_block, ArchReg cond_src) {
  StaticInst si = make3(OpClass::kBranch, kNoReg, cond_src, kNoReg);
  si.bgen_id = static_cast<i32>(bgen);
  si.taken_block = taken_block;
  return emit(si);
}

ProgramBuilder& ProgramBuilder::jump(u32 target) {
  StaticInst si = make3(OpClass::kJump, kNoReg, kNoReg, kNoReg);
  si.taken_block = target;
  return emit(si);
}

ProgramBuilder& ProgramBuilder::call(u32 target) {
  StaticInst si = make3(OpClass::kCall, kNoReg, kNoReg, kNoReg);
  si.taken_block = target;
  return emit(si);
}

ProgramBuilder& ProgramBuilder::ret() {
  StaticInst si = make3(OpClass::kReturn, kNoReg, kNoReg, kNoReg);
  return emit(si);
}

ProgramBuilder& ProgramBuilder::nop() { return emit(StaticInst{}); }

Program ProgramBuilder::build(u32 num_agens, u32 num_bgens, Addr code_base) {
  prog_.set_generator_counts(num_agens, num_bgens);
  prog_.finalize(code_base);
  return std::move(prog_);
}

}  // namespace tlrob
