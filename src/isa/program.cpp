#include "isa/program.hpp"

#include <stdexcept>
#include <string>

namespace tlrob {

u32 Program::num_static_insts() const {
  u32 n = 0;
  for (const auto& b : blocks_) n += static_cast<u32>(b.insts.size());
  return n;
}

void Program::finalize(Addr code_base) {
  if (finalized_) throw std::logic_error("Program already finalized: " + name_);
  if (blocks_.empty()) throw std::logic_error("Program has no blocks: " + name_);

  code_base_ = code_base;
  Addr pc = code_base;
  for (u32 bid = 0; bid < blocks_.size(); ++bid) {
    BasicBlock& b = blocks_[bid];
    if (b.insts.empty())
      throw std::logic_error(name_ + ": empty basic block " + std::to_string(bid));
    if (b.fallthrough >= blocks_.size())
      throw std::logic_error(name_ + ": fallthrough out of range in block " + std::to_string(bid));
    for (u32 i = 0; i < b.insts.size(); ++i) {
      StaticInst& si = b.insts[i];
      si.pc = pc;
      pc += 4;
      const bool last = (i + 1 == b.insts.size());
      if (is_control(si.op) && !last)
        throw std::logic_error(name_ + ": control transfer not at block end (block " +
                               std::to_string(bid) + ")");
      if (is_control(si.op) && si.op != OpClass::kReturn && si.taken_block >= blocks_.size())
        throw std::logic_error(name_ + ": branch target out of range in block " +
                               std::to_string(bid));
      if (is_memory(si.op)) {
        if (si.agen_id < 0 || static_cast<u32>(si.agen_id) >= num_agens_)
          throw std::logic_error(name_ + ": memory op with bad address generator id");
      }
      if (si.op == OpClass::kBranch) {
        if (si.bgen_id < 0 || static_cast<u32>(si.bgen_id) >= num_bgens_)
          throw std::logic_error(name_ + ": branch with bad outcome generator id");
      }
      if (si.is_store() && si.has_dest())
        throw std::logic_error(name_ + ": store must not have a destination register");
    }
  }
  finalized_ = true;
}

}  // namespace tlrob
