// Fluent low-level builder for synthetic programs.
//
// The workload layer wraps this with generator-spec management; the builder
// itself only deals in opaque generator ids. Emission is always into the
// "current" block (see in()).
#pragma once

#include <string>

#include "isa/program.hpp"

namespace tlrob {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  /// Creates a new (empty) basic block and returns its id. Does not change
  /// the current emission block.
  u32 new_block();

  /// Switches emission to `block`.
  ProgramBuilder& in(u32 block);
  u32 current_block() const { return cur_; }

  /// Sets the fall-through successor of `block` (default successor when the
  /// terminating control transfer is not taken, or when the block has none).
  ProgramBuilder& fallthrough(u32 block, u32 succ);

  // -- Instruction emitters (all append to the current block) --------------
  ProgramBuilder& emit(StaticInst si);
  ProgramBuilder& int_alu(ArchReg d, ArchReg a = kNoReg, ArchReg b = kNoReg);
  ProgramBuilder& int_mult(ArchReg d, ArchReg a = kNoReg, ArchReg b = kNoReg);
  ProgramBuilder& int_div(ArchReg d, ArchReg a = kNoReg, ArchReg b = kNoReg);
  ProgramBuilder& fp_add(ArchReg d, ArchReg a = kNoReg, ArchReg b = kNoReg);
  ProgramBuilder& fp_mult(ArchReg d, ArchReg a = kNoReg, ArchReg b = kNoReg);
  ProgramBuilder& fp_div(ArchReg d, ArchReg a = kNoReg, ArchReg b = kNoReg);
  ProgramBuilder& fp_sqrt(ArchReg d, ArchReg a = kNoReg);
  /// `addr_dep` expresses an address dependence (e.g. pointer chasing loads
  /// name their own previous destination).
  ProgramBuilder& load(ArchReg d, u32 agen, ArchReg addr_dep = kNoReg);
  ProgramBuilder& store(u32 agen, ArchReg value_src = kNoReg, ArchReg addr_dep = kNoReg);
  ProgramBuilder& branch(u32 bgen, u32 taken_block, ArchReg cond_src = kNoReg);
  ProgramBuilder& jump(u32 target);
  ProgramBuilder& call(u32 target);
  ProgramBuilder& ret();
  ProgramBuilder& nop();

  /// Finalizes and returns the program. `num_agens`/`num_bgens` are the spec
  /// table sizes the workload layer will provide at thread creation.
  Program build(u32 num_agens, u32 num_bgens, Addr code_base = 0x400000);

 private:
  Program prog_;
  u32 cur_ = 0;
};

}  // namespace tlrob
