#include "isa/opcode.hpp"

namespace tlrob {

std::string_view op_class_name(OpClass op) {
  switch (op) {
    case OpClass::kIntAlu: return "int_alu";
    case OpClass::kIntMult: return "int_mult";
    case OpClass::kIntDiv: return "int_div";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kFpAdd: return "fp_add";
    case OpClass::kFpMult: return "fp_mult";
    case OpClass::kFpDiv: return "fp_div";
    case OpClass::kFpSqrt: return "fp_sqrt";
    case OpClass::kBranch: return "branch";
    case OpClass::kJump: return "jump";
    case OpClass::kCall: return "call";
    case OpClass::kReturn: return "return";
    case OpClass::kNop: return "nop";
  }
  return "unknown";
}

}  // namespace tlrob
