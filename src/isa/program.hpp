// A synthetic program: a control-flow graph of basic blocks over StaticInst.
//
// Programs are infinite by construction (the benchmark kernels end with a
// back-edge to their entry block), mirroring the steady-state loop behaviour
// of the SPEC 2000 Simpoint regions the paper simulates. The simulator runs a
// program for a configured number of committed instructions.
#pragma once

#include <string>
#include <vector>

#include "isa/static_inst.hpp"

namespace tlrob {

struct BasicBlock {
  std::vector<StaticInst> insts;
  /// Successor when the block does not end in a taken control transfer.
  u32 fallthrough = 0;
};

class Program {
 public:
  explicit Program(std::string name = "anon") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  u32 add_block() {
    blocks_.emplace_back();
    return static_cast<u32>(blocks_.size() - 1);
  }

  BasicBlock& block(u32 id) { return blocks_.at(id); }
  const BasicBlock& block(u32 id) const { return blocks_.at(id); }
  u32 num_blocks() const { return static_cast<u32>(blocks_.size()); }

  u32 num_address_generators() const { return num_agens_; }
  u32 num_branch_generators() const { return num_bgens_; }
  void set_generator_counts(u32 agens, u32 bgens) {
    num_agens_ = agens;
    num_bgens_ = bgens;
  }

  /// Total static instruction count across all blocks.
  u32 num_static_insts() const;

  /// Assigns PCs (code_base + 4 * static index, in block order), validates the
  /// CFG (successor ids in range, control transfers only at block ends,
  /// non-empty blocks, generator ids in range) and freezes the program.
  /// Throws std::logic_error on malformed programs.
  void finalize(Addr code_base = 0x400000);

  bool finalized() const { return finalized_; }
  Addr code_base() const { return code_base_; }

 private:
  std::string name_;
  std::vector<BasicBlock> blocks_;
  u32 num_agens_ = 0;
  u32 num_bgens_ = 0;
  Addr code_base_ = 0;
  bool finalized_ = false;
};

}  // namespace tlrob
