// Rendering helpers fed by JobRecords — the figure-style presentations
// (DoD histograms, per-column averages) that previously lived as printf
// loops inside individual bench binaries. Everything here derives from the
// same records the JSON/CSV sinks write.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "runner/engine.hpp"

namespace tlrob::runner {

/// Figures 1/3/7-style dependents histogram table: one row per dependent
/// count, one column per mix, plus per-mix sample means and counts.
void render_dod_histograms(std::FILE* out, const std::string& title,
                           const std::vector<DodSummary>& per_mix);

/// Sample-weighted mean across mixes.
double overall_dod_mean(const std::vector<DodSummary>& per_mix);

/// Records of one configuration column, in mix order. Skips failed cells.
std::vector<const JobRecord*> column_records(const CampaignResult& result,
                                             const std::string& config_name);

/// Average fair throughput of one column (over its successful cells).
double column_average_ft(const CampaignResult& result, const std::string& config_name);

/// DoD summaries of one column in mix order (true or proxy histograms).
std::vector<DodSummary> column_dod(const CampaignResult& result,
                                   const std::string& config_name, bool proxy);

/// Sum of a counter over one column's successful cells.
u64 column_counter(const CampaignResult& result, const std::string& config_name,
                   const std::string& counter);

}  // namespace tlrob::runner
