#include "runner/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tlrob::runner {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_u64(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  static const JsonValue null_value;
  const auto it = members.find(key);
  return it == members.end() ? null_value : it->second;
}

double JsonValue::as_double() const {
  return kind == Kind::kNumber ? std::strtod(lexeme.c_str(), nullptr) : 0.0;
}

u64 JsonValue::as_u64() const {
  return kind == Kind::kNumber ? std::strtoull(lexeme.c_str(), nullptr, 10) : 0;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("json parse error at byte " + std::to_string(pos_) + ": " +
                                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.lexeme = string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const unsigned long cp = std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // The writer only emits \u00xx control escapes; decode the
          // single-byte range and pass anything else through as '?'.
          out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.lexeme = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace tlrob::runner
