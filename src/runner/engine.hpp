// The campaign engine: expands a CampaignSpec, executes the jobs on a
// work-stealing pool, and streams JobRecords to the sinks in expansion
// order.
//
// Determinism contract: a campaign's records — and therefore every sink's
// bytes — are identical for any worker count, because (a) each job is a
// pure function of its JobSpec (the simulator is deterministic given a
// config and seed, and per-job seeds are fixed at expansion time), (b) the
// shared single-thread reference IPCs are memoised behind a once-per-key
// guard (sim/experiment.cpp) and are themselves pure, and (c) completions
// pass through an in-order emission window before reaching any sink.
//
// Robustness contract: a job that throws, or whose simulation fails to
// reach its commit target within its cycle cap (the timeout mechanism — the
// simulator is single-stepped and cannot hang, it can only diverge), is
// recorded with status "failed" and the campaign continues. When a manifest
// path is set, every completed record is journalled; resuming replays
// previously successful cells from the journal and executes only the rest.
#pragma once

#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/sinks.hpp"

namespace tlrob::runner {

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (serial
  /// reference mode, no pool).
  u32 jobs = 1;

  /// Sinks receiving records in expansion order. Not owned.
  std::vector<ResultSink*> sinks;

  /// Journal of completed cells (JSON lines of JobRecords). Empty = none.
  std::string manifest_path;

  /// Replay successful cells found in the manifest instead of re-running
  /// them; failed cells are always retried.
  bool resume = false;

  /// Structured annotations (pre-serialised JSON lines, e.g. the CLI's
  /// thread-budget warning) journalled into the manifest right after it
  /// opens. Not JobRecords: load_manifest skips lines it cannot parse, so
  /// notes never poison a resume.
  std::vector<std::string> notes;
};

struct CampaignResult {
  std::vector<JobRecord> records;  // expansion order
  u32 ok = 0;       // ran to the commit target this time
  u32 failed = 0;   // threw, or hit the cycle cap
  u32 resumed = 0;  // replayed from the manifest without re-running
};

/// Executes one cell. Exposed for tests and for callers that want a single
/// cell without engine machinery; run_campaign uses exactly this.
JobRecord execute_job(const JobSpec& spec);

CampaignResult run_campaign(const CampaignSpec& spec, const EngineOptions& opts);

}  // namespace tlrob::runner
