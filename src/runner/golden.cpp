#include "runner/golden.hpp"

#include <cstddef>
#include <sstream>
#include <stdexcept>

#include "runner/engine.hpp"
#include "runner/json.hpp"
#include "runner/presets.hpp"

namespace tlrob::runner {
namespace {

u64 counter_or_zero(const JobRecord& r, const std::string& name) {
  auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

std::string u64_vec_json(const std::vector<u64>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ",";
    out += json_u64(v[i]);
  }
  return out + "]";
}

std::string double_vec_json(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ",";
    out += json_double(v[i]);
  }
  return out + "]";
}

std::vector<u64> u64_vec(const JsonValue& v) {
  std::vector<u64> out;
  out.reserve(v.items.size());
  for (const auto& item : v.items) out.push_back(item.as_u64());
  return out;
}

std::vector<double> double_vec(const JsonValue& v) {
  std::vector<double> out;
  out.reserve(v.items.size());
  for (const auto& item : v.items) out.push_back(item.as_double());
  return out;
}

}  // namespace

RunLengthSpec golden_run_length() { return RunLengthSpec{3000, 1000}; }

GoldenRow golden_row(const JobRecord& record) {
  GoldenRow row;
  row.config = record.config;
  row.mix = record.mix;
  row.status = to_string(record.status);
  row.cycles = record.cycles;
  row.committed = record.committed;
  row.mt_ipc = record.mt_ipc;
  row.l2_misses = counter_or_zero(record, "l2.misses");
  row.second_level_grants = counter_or_zero(record, "rob2.allocations");
  return row;
}

std::vector<GoldenRow> golden_fingerprints(const std::string& preset) {
  const CampaignSpec campaign = preset_campaign(preset, golden_run_length());
  std::vector<GoldenRow> rows;
  for (const JobSpec& spec : expand(campaign)) rows.push_back(golden_row(execute_job(spec)));
  return rows;
}

std::string golden_to_json(const std::string& preset, const std::vector<GoldenRow>& rows) {
  const RunLengthSpec length = golden_run_length();
  std::string out = "{\n";
  out += "\"preset\": " + json_escape(preset) + ",\n";
  out += "\"insts\": " + json_u64(length.insts) + ",\n";
  out += "\"warmup\": " + json_u64(length.warmup) + ",\n";
  out += "\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GoldenRow& r = rows[i];
    out += "{\"config\": " + json_escape(r.config) + ", \"mix\": " + json_escape(r.mix) +
           ", \"status\": " + json_escape(r.status) + ", \"cycles\": " + json_u64(r.cycles) +
           ", \"committed\": " + u64_vec_json(r.committed) +
           ", \"mt_ipc\": " + double_vec_json(r.mt_ipc) +
           ", \"l2_misses\": " + json_u64(r.l2_misses) +
           ", \"second_level_grants\": " + json_u64(r.second_level_grants) + "}";
    if (i + 1 != rows.size()) out += ",";
    out += "\n";
  }
  out += "]\n}\n";
  return out;
}

GoldenFile golden_from_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) throw std::invalid_argument("golden fixture: not a JSON object");
  GoldenFile file;
  file.preset = doc.at("preset").as_string();
  file.length.insts = doc.at("insts").as_u64();
  file.length.warmup = doc.at("warmup").as_u64();
  const JsonValue& rows = doc.at("rows");
  if (!rows.is_array()) throw std::invalid_argument("golden fixture: rows is not an array");
  for (const JsonValue& v : rows.items) {
    GoldenRow row;
    row.config = v.at("config").as_string();
    row.mix = v.at("mix").as_string();
    row.status = v.at("status").as_string();
    row.cycles = v.at("cycles").as_u64();
    row.committed = u64_vec(v.at("committed"));
    row.mt_ipc = double_vec(v.at("mt_ipc"));
    row.l2_misses = v.at("l2_misses").as_u64();
    row.second_level_grants = v.at("second_level_grants").as_u64();
    file.rows.push_back(std::move(row));
  }
  return file;
}

std::string golden_diff(const std::vector<GoldenRow>& expected,
                        const std::vector<GoldenRow>& actual) {
  std::ostringstream os;
  if (expected.size() != actual.size()) {
    os << "row count: expected " << expected.size() << ", got " << actual.size();
    return os.str();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const GoldenRow& e = expected[i];
    const GoldenRow& a = actual[i];
    if (e == a) continue;
    os << "row " << i << " (" << e.config << " / " << e.mix << "): ";
    if (e.config != a.config || e.mix != a.mix) {
      os << "cell identity differs (got " << a.config << " / " << a.mix << ")";
    } else if (e.status != a.status) {
      os << "status " << e.status << " -> " << a.status;
    } else if (e.cycles != a.cycles) {
      os << "cycles " << e.cycles << " -> " << a.cycles;
    } else if (e.committed != a.committed) {
      os << "committed " << u64_vec_json(e.committed) << " -> " << u64_vec_json(a.committed);
    } else if (e.mt_ipc != a.mt_ipc) {
      os << "mt_ipc " << double_vec_json(e.mt_ipc) << " -> " << double_vec_json(a.mt_ipc);
    } else if (e.l2_misses != a.l2_misses) {
      os << "l2_misses " << e.l2_misses << " -> " << a.l2_misses;
    } else {
      os << "second_level_grants " << e.second_level_grants << " -> " << a.second_level_grants;
    }
    return os.str();
  }
  return "";
}

}  // namespace tlrob::runner
