#include "runner/render.hpp"

#include <algorithm>

namespace tlrob::runner {

void render_dod_histograms(std::FILE* out, const std::string& title,
                           const std::vector<DodSummary>& per_mix) {
  std::fprintf(out, "=== %s ===\n", title.c_str());
  std::fprintf(out, "%-6s", "#dep");
  for (size_t m = 0; m < per_mix.size(); ++m)
    std::fprintf(out, " %9s", ("Mix" + std::to_string(m + 1)).c_str());
  std::fprintf(out, "\n");
  size_t rows = 0;
  for (const auto& d : per_mix) rows = std::max(rows, d.buckets.size());
  for (size_t v = 0; v < rows; ++v) {
    std::fprintf(out, "%-6zu", v);
    for (const auto& d : per_mix)
      std::fprintf(out, " %9llu",
                   static_cast<unsigned long long>(v < d.buckets.size() ? d.buckets[v] : 0));
    std::fprintf(out, "\n");
  }
  std::fprintf(out, "%-6s", "mean");
  for (const auto& d : per_mix) std::fprintf(out, " %9.2f", d.mean());
  std::fprintf(out, "\n%-6s", "n");
  for (const auto& d : per_mix)
    std::fprintf(out, " %9llu", static_cast<unsigned long long>(d.samples));
  std::fprintf(out, "\n");
}

double overall_dod_mean(const std::vector<DodSummary>& per_mix) {
  double sum = 0;
  u64 n = 0;
  for (const auto& d : per_mix) {
    sum += d.sum;
    n += d.samples;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<const JobRecord*> column_records(const CampaignResult& result,
                                             const std::string& config_name) {
  std::vector<const JobRecord*> out;
  for (const auto& rec : result.records)
    if (rec.config == config_name && rec.ok()) out.push_back(&rec);
  return out;
}

double column_average_ft(const CampaignResult& result, const std::string& config_name) {
  const auto recs = column_records(result, config_name);
  if (recs.empty()) return 0.0;
  double sum = 0;
  for (const JobRecord* r : recs) sum += r->ft;
  return sum / static_cast<double>(recs.size());
}

std::vector<DodSummary> column_dod(const CampaignResult& result,
                                   const std::string& config_name, bool proxy) {
  std::vector<DodSummary> out;
  for (const JobRecord* r : column_records(result, config_name))
    out.push_back(proxy ? r->dod_proxy : r->dod_true);
  return out;
}

u64 column_counter(const CampaignResult& result, const std::string& config_name,
                   const std::string& counter) {
  u64 sum = 0;
  for (const JobRecord* r : column_records(result, config_name)) {
    const auto it = r->counters.find(counter);
    if (it != r->counters.end()) sum += it->second;
  }
  return sum;
}

}  // namespace tlrob::runner
