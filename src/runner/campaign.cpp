#include "runner/campaign.hpp"

#include <stdexcept>

namespace tlrob::runner {

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::vector<JobSpec> expand(const CampaignSpec& spec) {
  if (spec.columns.empty()) throw std::invalid_argument("campaign has no configurations");
  if (spec.mixes.empty()) throw std::invalid_argument("campaign has no mixes");
  if (spec.lengths.empty()) throw std::invalid_argument("campaign has no run lengths");

  std::vector<JobSpec> jobs;
  jobs.reserve(spec.lengths.size() * spec.mixes.size() * spec.columns.size());
  u64 index = 0;
  for (const RunLengthSpec& rl : spec.lengths) {
    for (const Mix& mix : spec.mixes) {
      for (const ConfigColumn& col : spec.columns) {
        JobSpec js;
        js.index = index;
        js.campaign = spec.name;
        js.config_name = col.name;
        js.config = col.config;
        js.mix = mix;
        js.insts = rl.insts;
        js.warmup = rl.warmup;
        js.max_cycles = col.max_cycles != 0 ? col.max_cycles : spec.max_cycles;
        js.seed = spec.per_job_seeds ? splitmix64(spec.seed ^ (index + 1)) : spec.seed;
        js.sample_interval = spec.sample_interval;
        js.sample_dir = spec.sample_dir;
        jobs.push_back(std::move(js));
        ++index;
      }
    }
  }
  return jobs;
}

}  // namespace tlrob::runner
