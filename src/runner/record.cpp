#include "runner/record.hpp"

#include <sstream>
#include <stdexcept>

namespace tlrob::runner {

namespace {

std::string join_key(const std::string& campaign, const std::string& config,
                     const std::string& mix, u64 insts, u64 warmup, u64 max_cycles,
                     u64 seed) {
  std::ostringstream os;
  os << campaign << '|' << config << '|' << mix << '|' << insts << '|' << warmup << '|'
     << max_cycles << '|' << seed;
  return os.str();
}

template <typename T, typename Fn>
std::string json_array(const std::vector<T>& v, Fn to_text) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += to_text(v[i]);
  }
  return out + "]";
}

std::string dod_json(const DodSummary& d) {
  std::string out = "{\"n\":" + json_u64(d.samples) + ",\"sum\":" + json_double(d.sum) +
                    ",\"buckets\":" + json_array(d.buckets, json_u64) + "}";
  return out;
}

DodSummary dod_from_json(const JsonValue& v) {
  DodSummary d;
  d.samples = v.at("n").as_u64();
  d.sum = v.at("sum").as_double();
  for (const auto& b : v.at("buckets").items) d.buckets.push_back(b.as_u64());
  return d;
}

template <typename T, typename Fn>
std::string joined(const std::vector<T>& v, Fn to_text) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ";";
    out += to_text(v[i]);
  }
  return out;
}

/// CSV field quoting, only applied when the content requires it.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  return out + "\"";
}

}  // namespace

std::string job_key(const JobSpec& spec) {
  return join_key(spec.campaign, spec.config_name, spec.mix.name, spec.insts, spec.warmup,
                  spec.max_cycles, spec.seed);
}

std::string JobRecord::key() const {
  return join_key(campaign, config, mix, insts, warmup, max_cycles, seed);
}

const char* to_string(JobStatus s) { return s == JobStatus::kOk ? "ok" : "failed"; }

std::string scheme_name(const MachineConfig& cfg) {
  switch (cfg.rob.scheme) {
    case RobScheme::kBaseline: return "baseline";
    case RobScheme::kReactive: return "rrob";
    case RobScheme::kRelaxedReactive: return "relaxed";
    case RobScheme::kCdr: return "cdr";
    case RobScheme::kPredictive: return "prob";
    case RobScheme::kAdaptive: return "adaptive";
  }
  return "?";
}

std::string to_json_line(const JobRecord& r) {
  std::ostringstream os;
  os << "{\"job\":" << json_u64(r.job)                                    //
     << ",\"campaign\":" << json_escape(r.campaign)                       //
     << ",\"config\":" << json_escape(r.config)                           //
     << ",\"mix\":" << json_escape(r.mix)                                 //
     << ",\"scheme\":" << json_escape(r.scheme)                           //
     << ",\"threshold\":" << json_u64(r.threshold)                        //
     << ",\"insts\":" << json_u64(r.insts)                                //
     << ",\"warmup\":" << json_u64(r.warmup)                              //
     << ",\"max_cycles\":" << json_u64(r.max_cycles)                      //
     << ",\"seed\":" << json_u64(r.seed)                                  //
     << ",\"status\":" << json_escape(to_string(r.status))                //
     << ",\"error\":" << json_escape(r.error)                             //
     << ",\"cycles\":" << json_u64(r.cycles)                              //
     << ",\"ft\":" << json_double(r.ft)                                   //
     << ",\"throughput\":" << json_double(r.throughput)                   //
     << ",\"benchmarks\":" << json_array(r.benchmarks, json_escape)       //
     << ",\"committed\":" << json_array(r.committed, json_u64)            //
     << ",\"mt_ipc\":" << json_array(r.mt_ipc, json_double)               //
     << ",\"st_ipc\":" << json_array(r.st_ipc, json_double)               //
     << ",\"dod_true\":" << dod_json(r.dod_true)                          //
     << ",\"dod_proxy\":" << dod_json(r.dod_proxy)                        //
     << ",\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : r.counters) {
    if (!first) os << ",";
    first = false;
    os << json_escape(k) << ":" << json_u64(v);
  }
  os << "}}";
  return os.str();
}

JobRecord record_from_json_line(const std::string& line) {
  const JsonValue v = parse_json(line);
  if (!v.is_object()) throw std::invalid_argument("record line is not a JSON object");
  JobRecord r;
  r.job = v.at("job").as_u64();
  r.campaign = v.at("campaign").as_string();
  r.config = v.at("config").as_string();
  r.mix = v.at("mix").as_string();
  r.scheme = v.at("scheme").as_string();
  r.threshold = static_cast<u32>(v.at("threshold").as_u64());
  r.insts = v.at("insts").as_u64();
  r.warmup = v.at("warmup").as_u64();
  r.max_cycles = v.at("max_cycles").as_u64();
  r.seed = v.at("seed").as_u64();
  r.status = v.at("status").as_string() == "ok" ? JobStatus::kOk : JobStatus::kFailed;
  r.error = v.at("error").as_string();
  r.cycles = v.at("cycles").as_u64();
  r.ft = v.at("ft").as_double();
  r.throughput = v.at("throughput").as_double();
  for (const auto& b : v.at("benchmarks").items) r.benchmarks.push_back(b.as_string());
  for (const auto& c : v.at("committed").items) r.committed.push_back(c.as_u64());
  for (const auto& x : v.at("mt_ipc").items) r.mt_ipc.push_back(x.as_double());
  for (const auto& x : v.at("st_ipc").items) r.st_ipc.push_back(x.as_double());
  r.dod_true = dod_from_json(v.at("dod_true"));
  r.dod_proxy = dod_from_json(v.at("dod_proxy"));
  for (const auto& [k, c] : v.at("counters").members) r.counters[k] = c.as_u64();
  return r;
}

std::string csv_header() {
  return "job,campaign,config,mix,scheme,threshold,insts,warmup,max_cycles,seed,status,"
         "error,cycles,ft,throughput,benchmarks,committed,mt_ipc,st_ipc,dod_true_mean,"
         "dod_proxy_mean";
}

std::string to_csv_line(const JobRecord& r) {
  std::ostringstream os;
  os << r.job << ',' << csv_field(r.campaign) << ',' << csv_field(r.config) << ','
     << csv_field(r.mix) << ',' << r.scheme << ',' << r.threshold << ',' << r.insts << ','
     << r.warmup << ',' << r.max_cycles << ',' << r.seed << ',' << to_string(r.status)
     << ',' << csv_field(r.error) << ',' << r.cycles << ',' << json_double(r.ft) << ','
     << json_double(r.throughput) << ','
     << csv_field(joined(r.benchmarks, [](const std::string& s) { return s; })) << ','
     << joined(r.committed, json_u64) << ',' << joined(r.mt_ipc, json_double) << ','
     << joined(r.st_ipc, json_double) << ',' << json_double(r.dod_true.mean()) << ','
     << json_double(r.dod_proxy.mean());
  return os.str();
}

}  // namespace tlrob::runner
