// Declarative sweep specification and its expansion into independent jobs.
//
// A campaign is a cross product: configurations (schemes × thresholds,
// expressed as named columns) × mixes × run lengths. Expansion order is
// fixed — run length (outer), mix, configuration (inner) — which is the
// order every sink receives records in and the row-major order the table
// renderer streams, regardless of how many workers execute the jobs.
#pragma once

#include <string>
#include <vector>

#include "runner/record.hpp"
#include "sim/presets.hpp"
#include "workload/mixes.hpp"

namespace tlrob::runner {

/// One configuration column of the sweep (one machine under test).
struct ConfigColumn {
  std::string name;
  MachineConfig config;
  /// Per-column cycle cap override; 0 defers to CampaignSpec::max_cycles.
  u64 max_cycles = 0;
};

/// One point on the run-length axis.
struct RunLengthSpec {
  u64 insts = 120000;
  u64 warmup = 60000;
};

struct CampaignSpec {
  std::string name;
  std::vector<ConfigColumn> columns;
  std::vector<Mix> mixes;
  std::vector<RunLengthSpec> lengths{RunLengthSpec{}};

  /// Base RNG seed. By default every job runs with exactly this seed (the
  /// historical bench behaviour); with per_job_seeds each cell gets a
  /// distinct seed derived deterministically from (base seed, cell index),
  /// so replication campaigns decorrelate without losing reproducibility.
  u64 seed = 12345;
  bool per_job_seeds = false;

  /// Campaign-wide cycle cap per job (the timeout mechanism: a cell whose
  /// simulation has not reached its commit target when the cap elapses is
  /// recorded as failed instead of aborting the sweep). 0 = the simulator's
  /// derived generous bound.
  u64 max_cycles = 0;

  /// Interval telemetry (src/obs), applied to every job. A nonzero
  /// sample_interval turns sampling on: each record gains the obs.* summary
  /// counters, and when sample_dir is also set each job writes its full
  /// series to <sample_dir>/samples_job<index>.jsonl. Both outputs are pure
  /// functions of the JobSpec, so they are byte-identical for any --jobs N.
  u64 sample_interval = 0;
  std::string sample_dir;
};

/// splitmix64 — the standard 64-bit seed scrambler (Steele et al.),
/// used to derive per-job seeds.
u64 splitmix64(u64 x);

/// Expands the cross product into fully resolved jobs, in the canonical
/// order. Throws std::invalid_argument on an empty axis.
std::vector<JobSpec> expand(const CampaignSpec& spec);

}  // namespace tlrob::runner
