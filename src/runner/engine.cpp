#include "runner/engine.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>

#include "common/sync.hpp"
#include "obs/interval_sampler.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "trace/resolve.hpp"

namespace tlrob::runner {

JobRecord execute_job(const JobSpec& spec) {
  JobRecord rec;
  rec.job = spec.index;
  rec.campaign = spec.campaign;
  rec.config = spec.config_name;
  rec.mix = spec.mix.name;
  rec.scheme = scheme_name(spec.config);
  rec.threshold = spec.config.rob.dod_threshold;
  rec.insts = spec.insts;
  rec.warmup = spec.warmup;
  rec.max_cycles = spec.max_cycles;
  rec.seed = spec.seed;
  try {
    MachineConfig cfg = spec.config;
    cfg.seed = spec.seed;
    if (spec.sample_interval != 0) cfg.telemetry.sample_interval = spec.sample_interval;
    // Workload resolution happens inside the try: a missing or malformed
    // trace file fails this cell with a structured record, not the process.
    const RunResult run = run_benchmarks(cfg, trace::resolve_mix_benchmarks(spec.mix),
                                         spec.insts, spec.max_cycles, spec.warmup);

    rec.cycles = run.cycles;
    u64 fastest = 0;
    for (const auto& t : run.threads) {
      rec.benchmarks.push_back(t.benchmark);
      rec.committed.push_back(t.committed);
      rec.mt_ipc.push_back(t.ipc);
      rec.st_ipc.push_back(single_thread_ipc(t.benchmark, spec.insts));
      fastest = std::max(fastest, t.committed);
    }
    rec.ft = fair_throughput(rec.mt_ipc, rec.st_ipc);
    rec.throughput = run.total_throughput();
    rec.dod_true = {run.dod_true.total_samples(),
                    run.dod_true.mean() * static_cast<double>(run.dod_true.total_samples()),
                    {}};
    rec.dod_proxy = {
        run.dod_proxy.total_samples(),
        run.dod_proxy.mean() * static_cast<double>(run.dod_proxy.total_samples()),
        {}};
    for (u32 v = 0; v <= run.dod_true.max_value(); ++v)
      rec.dod_true.buckets.push_back(run.dod_true.bucket(v));
    for (u32 v = 0; v <= run.dod_proxy.max_value(); ++v)
      rec.dod_proxy.buckets.push_back(run.dod_proxy.bucket(v));
    rec.counters = run.counters;
    // Telemetry summary rides the record's counter map — it round-trips
    // through to_json_line / the manifest like any other counter, and is a
    // pure function of the JobSpec (so identical for any worker count).
    for (const auto& [name, v] : obs::series_summary_counters(run.samples))
      rec.counters[name] = v;
    // Same contract for the stall taxonomy and the CMP interference rollup:
    // structured RunResult fields flattened here (never inside the core, so
    // a telemetry-on run's engine counters stay identical to telemetry-off).
    for (const auto& [name, v] : obs::stall_summary_counters(run.stall_cycles))
      rec.counters[name] = v;
    if (cfg.num_cores > 1 || cfg.llc.enabled)
      for (const auto& [name, v] :
           obs::cmp_summary_counters(run.samples, run.stall_cycles, cfg.num_cores))
        rec.counters[name] = v;
    if (!run.samples.empty() && !spec.sample_dir.empty()) {
      const std::string path =
          spec.sample_dir + "/samples_job" + std::to_string(spec.index) + ".jsonl";
      std::ofstream out(path);
      if (!out.is_open()) throw std::runtime_error("cannot open sample sink: " + path);
      run.samples.write_jsonl(out);
    }

    if (fastest < spec.insts) {
      rec.status = JobStatus::kFailed;
      rec.error = "cycle cap exceeded before commit target (" + std::to_string(fastest) +
                  "/" + std::to_string(spec.insts) + " commits)";
    }
  } catch (const std::exception& e) {
    rec.status = JobStatus::kFailed;
    rec.error = e.what();
  }
  return rec;
}

namespace {

/// Loads successful records from a manifest journal, keyed by cell
/// identity. Unreadable or malformed lines are skipped (a journal truncated
/// by a crash mid-line must not poison the resume). Ordered map on purpose
/// (lint rule D1): anything that later iterates or emits the resume set
/// must see one key order regardless of the journal's completion order.
std::map<std::string, JobRecord> load_manifest(const std::string& path) {
  std::map<std::string, JobRecord> by_key;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      JobRecord rec = record_from_json_line(line);
      if (rec.ok()) by_key[rec.key()] = std::move(rec);
    } catch (const std::invalid_argument&) {
      continue;
    }
  }
  return by_key;
}

/// Serialises completions back into expansion order before any sink or the
/// result vector sees them.
class InOrderEmitter {
 public:
  InOrderEmitter(const EngineOptions& opts, std::ofstream* manifest, CampaignResult* result)
      : opts_(opts), manifest_(manifest), result_(result) {}

  void complete(JobRecord rec, bool resumed) {
    MutexLock lock(mu_);
    if (!resumed && manifest_ && manifest_->is_open()) {
      // Journal in completion order — the manifest is a log, not a sink.
      *manifest_ << to_json_line(rec) << "\n";
      manifest_->flush();
    }
    if (resumed)
      ++result_->resumed;
    else if (rec.ok())
      ++result_->ok;
    else
      ++result_->failed;

    pending_.emplace(rec.job, std::move(rec));
    while (!pending_.empty() && pending_.begin()->first == next_) {
      JobRecord& head = pending_.begin()->second;
      for (ResultSink* sink : opts_.sinks) sink->emit(head);
      result_->records.push_back(std::move(head));
      pending_.erase(pending_.begin());
      ++next_;
    }
  }

 private:
  const EngineOptions& opts_;
  /// mu_ serialises completions from pool workers: it guards the reorder
  /// window and, via the emitter being their only caller, the manifest
  /// stream, the result tallies and every sink's emit().
  Mutex mu_;
  std::ofstream* manifest_ TLROB_PT_GUARDED_BY(mu_);
  CampaignResult* result_ TLROB_PT_GUARDED_BY(mu_);
  std::map<u64, JobRecord> pending_ TLROB_GUARDED_BY(mu_);
  u64 next_ TLROB_GUARDED_BY(mu_) = 0;
};

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec, const EngineOptions& opts) {
  const std::vector<JobSpec> jobs = expand(spec);

  std::map<std::string, JobRecord> done;
  if (opts.resume && !opts.manifest_path.empty()) done = load_manifest(opts.manifest_path);

  std::ofstream manifest;
  if (!opts.manifest_path.empty()) {
    manifest.open(opts.manifest_path, opts.resume ? std::ios::app : std::ios::trunc);
    if (!manifest.is_open())
      throw std::runtime_error("cannot open manifest: " + opts.manifest_path);
    // Annotations first, records after: the journal stays a line-oriented
    // log and resume skips anything that isn't a JobRecord.
    for (const std::string& note : opts.notes) manifest << note << "\n";
    if (!opts.notes.empty()) manifest.flush();
  }

  for (ResultSink* sink : opts.sinks) sink->begin(spec, jobs);

  CampaignResult result;
  result.records.reserve(jobs.size());
  InOrderEmitter emitter(opts, &manifest, &result);

  auto run_one = [&](const JobSpec& js) {
    if (const auto it = done.find(job_key(js)); it != done.end()) {
      JobRecord rec = it->second;
      rec.job = js.index;  // the cell may sit elsewhere in a grown campaign
      emitter.complete(std::move(rec), /*resumed=*/true);
      return;
    }
    emitter.complete(execute_job(js), /*resumed=*/false);
  };

  if (opts.jobs == 1) {
    for (const JobSpec& js : jobs) run_one(js);
  } else {
    WorkStealingPool pool(opts.jobs);
    for (const JobSpec& js : jobs) pool.submit([&run_one, &js] { run_one(js); });
    pool.wait_idle();
  }

  for (ResultSink* sink : opts.sinks) sink->end();
  return result;
}

}  // namespace tlrob::runner
