// Minimal JSON support for the campaign runner's structured sinks and
// manifest: a deterministic writer (fixed formatting, so parallel and serial
// campaigns emit byte-identical lines) and a small recursive-descent parser
// for reading the manifest back on resume.
//
// This is not a general-purpose JSON library — it covers exactly the JSON
// the runner itself writes (objects, arrays, strings, numbers, booleans,
// null) and keeps the raw lexeme of every number so 64-bit integers survive
// a round trip without passing through a double.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tlrob::runner {

// -- writing ----------------------------------------------------------------

/// JSON string literal (quotes included) with the mandatory escapes.
std::string json_escape(const std::string& s);

/// Deterministic double formatting: shortest round-trippable form via
/// "%.17g", with non-finite values written as null (JSON has no inf/nan).
std::string json_double(double v);

/// Unsigned 64-bit integer (always an integer literal, never exponent form).
std::string json_u64(u64 v);

// -- parsing ----------------------------------------------------------------

struct JsonValue {
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string lexeme;  // numbers: raw text; strings: unescaped content
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; returns a null value when absent.
  const JsonValue& at(const std::string& key) const;

  double as_double() const;
  u64 as_u64() const;
  const std::string& as_string() const { return lexeme; }
};

/// Parses one JSON document. Throws std::invalid_argument on malformed
/// input (with a byte offset in the message).
JsonValue parse_json(const std::string& text);

}  // namespace tlrob::runner
