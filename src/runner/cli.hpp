// Command-line front end shared by the tlrob-campaign binary and the ported
// bench_fig*/bench_table* wrappers.
//
// Accepted option spellings: `key=value`, `--key=value`, `--key value` and
// bare `--flag` (stored as "1"); the historical bench spelling `insts=N
// warmup=N` keeps working unchanged. Common options:
//   --jobs N        worker threads (0 = hardware concurrency, 1 = serial)
//   --insts N       committed-instruction target per run
//   --warmup N      warmup commits excluded from statistics
//   --json PATH     JSON-lines sink ("-" = stdout)
//   --csv PATH      CSV sink ("-" = stdout)
//   --manifest PATH completion journal enabling --resume
//   --resume        replay successful cells from the manifest
//   --no-render     suppress the stdout tables (sink-only run)
//   --max-cycles N  per-job cycle cap (the timeout; 0 = derived bound)
//   --seed N        base RNG seed
//   --per-job-seeds derive a distinct deterministic seed per cell
//   --sample-interval N  interval telemetry every N cycles (obs.* summary
//                   counters per record; 0 = off)
//   --sample-dir D  also write each job's full series to
//                   D/samples_job<index>.jsonl
// Custom sweeps (tlrob-campaign without a preset):
//   --schemes a,b   baseline32|baseline128|rrob|relaxed|cdr|prob|adaptive
//   --thresholds l  DoD thresholds crossed with the threshold-taking schemes
//   --mixes 1,2,5   Table 2 mix subset (default: all 11)
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "runner/presets.hpp"

namespace tlrob::runner {

/// Normalises argv into the repo's key=value Options (see header comment).
Options parse_cli_args(int argc, const char* const* argv);

/// Builds a custom sweep spec from --schemes/--thresholds/--mixes options.
/// Throws std::invalid_argument on unknown scheme or mix names.
CampaignSpec custom_campaign(const Options& opts);

/// Runs a campaign described by already-parsed options: a preset when
/// `preset` is non-empty, otherwise the custom sweep options. Wires up the
/// json/csv/manifest sinks. Returns a process exit code (non-zero when any
/// cell failed).
int run_from_options(const std::string& preset, const Options& opts);

/// main() body for the ported bench binaries.
int preset_main(const std::string& preset, int argc, const char* const* argv);

}  // namespace tlrob::runner
