#include "runner/presets.hpp"

#include <stdexcept>

#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "trace/resolve.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob::runner {

namespace {

// -- spec builders ----------------------------------------------------------

CampaignSpec ft_spec(const std::string& name, std::vector<ConfigColumn> columns,
                     const RunLengthSpec& rl) {
  CampaignSpec spec;
  spec.name = name;
  spec.columns = std::move(columns);
  spec.mixes = table2_mixes();
  spec.lengths = {rl};
  return spec;
}

ConfigColumn col(const std::string& name, MachineConfig cfg) { return {name, cfg, 0}; }

MachineConfig with_early_release(MachineConfig cfg) {
  cfg.early_register_release = true;
  return cfg;
}

MachineConfig with_policy(FetchPolicyKind k) {
  MachineConfig cfg = baseline32_config();
  cfg.fetch_policy = k;
  return cfg;
}

MachineConfig with_shared_regfile(MachineConfig cfg) {
  cfg.shared_regfile = true;
  return cfg;
}

constexpr u32 kThresholdSweep[] = {1, 2, 4, 8, 12, 16, 24, 31};

/// Core-major 8-benchmark mixes for the 2-core CMP presets: each pairs two
/// Table 2 mixes (core 0 runs the first, core 1 the second), chosen to put a
/// memory-bound mix next to an ILP/mixed one so the shared LLC and DRAM
/// banks see asymmetric pressure.
std::vector<Mix> cmp_pair_mixes() {
  constexpr u32 kPairs[][2] = {{1, 5}, {4, 9}, {7, 10}};
  std::vector<Mix> out;
  for (const auto& pair : kPairs) {
    const Mix& a = table2_mix(pair[0]);
    const Mix& b = table2_mix(pair[1]);
    Mix m;
    m.name = "CMP " + std::to_string(pair[0]) + "+" + std::to_string(pair[1]);
    m.benchmarks = a.benchmarks;
    m.benchmarks.insert(m.benchmarks.end(), b.benchmarks.begin(), b.benchmarks.end());
    m.classification = a.classification + " | " + b.classification;
    out.push_back(std::move(m));
  }
  return out;
}

// -- epilogue helpers -------------------------------------------------------

const char* class_name(IlpClass c) {
  switch (c) {
    case IlpClass::kLow: return "low";
    case IlpClass::kMid: return "mid";
    case IlpClass::kHigh: return "high";
  }
  return "?";
}

void proxy_means_footnote(std::FILE* out, const std::vector<DodSummary>& proxies) {
  std::fprintf(out, "\n%-6s", "proxy");
  for (const auto& d : proxies) std::fprintf(out, " %9.2f", d.mean());
  std::fprintf(out, "   (mean of the result-valid-bit counting proxy)\n");
}

// -- per-preset epilogues ---------------------------------------------------

void fig1_epilogue(const CampaignResult& res, const CampaignSpec&, std::FILE* out) {
  const auto truth = column_dod(res, "Baseline_32", /*proxy=*/false);
  render_dod_histograms(
      out, "Figure 1: instructions dependent on a long-latency load (Baseline_32)", truth);
  proxy_means_footnote(out, column_dod(res, "Baseline_32", /*proxy=*/true));
  std::fprintf(out, "\noverall mean dependents per long-latency load: %.2f\n",
               overall_dod_mean(truth));
}

void fig3_epilogue(const CampaignResult& res, const CampaignSpec&, std::FILE* out) {
  render_dod_histograms(out,
                        "Figure 3: dependents behind a long-latency load with 2-Level "
                        "R-ROB16 (counting mechanism)",
                        column_dod(res, "R-ROB16", /*proxy=*/true));
  const double bp = overall_dod_mean(column_dod(res, "Baseline_32", true));
  const double rp = overall_dod_mean(column_dod(res, "R-ROB16", true));
  std::fprintf(out,
               "\nmean counted dependents per long-latency load: baseline %.2f, R-ROB16 "
               "%.2f (%+.1f%%; paper: +56%%)\n",
               bp, rp, 100.0 * (rp / bp - 1.0));
  const double bt = overall_dod_mean(column_dod(res, "Baseline_32", false));
  const double rt = overall_dod_mean(column_dod(res, "R-ROB16", false));
  std::fprintf(out,
               "mean true transitive dependents:               baseline %.2f, R-ROB16 "
               "%.2f (%+.1f%%)\n",
               bt, rt, 100.0 * (rt / bt - 1.0));
}

void fig6_epilogue(const CampaignResult& res, const CampaignSpec&, std::FILE* out) {
  const u64 repeats = column_counter(res, "P-ROB5", "dodpred.exact_repeats");
  const u64 changes = column_counter(res, "P-ROB5", "dodpred.value_changes");
  const u64 cold = column_counter(res, "P-ROB5", "dodpred.cold_installs");
  const u64 total = repeats + changes + cold;
  if (total > 0)
    std::fprintf(out,
                 "\nDoD last-value predictor: %.1f%% exact repeats, %.1f%% value changes, "
                 "%.1f%% cold (paper argues per-path counts repeat)\n",
                 100.0 * static_cast<double>(repeats) / static_cast<double>(total),
                 100.0 * static_cast<double>(changes) / static_cast<double>(total),
                 100.0 * static_cast<double>(cold) / static_cast<double>(total));
}

void fig7_epilogue(const CampaignResult& res, const CampaignSpec&, std::FILE* out) {
  render_dod_histograms(out,
                        "Figure 7: dependents behind a long-latency load with 2-Level "
                        "P-ROB5 (counting mechanism)",
                        column_dod(res, "P-ROB5", /*proxy=*/true));
  const double base = overall_dod_mean(column_dod(res, "Baseline_32", true));
  const double prob = overall_dod_mean(column_dod(res, "P-ROB5", true));
  std::fprintf(out,
               "\nmean counted dependents per long-latency load: baseline %.2f, P-ROB5 "
               "%.2f (%+.1f%%; paper: +120.31%%)\n",
               base, prob, 100.0 * (prob / base - 1.0));
}

void table2_epilogue(const CampaignResult&, const CampaignSpec& spec, std::FILE* out) {
  // Part 1 reads the single-thread reference memo, which the campaign's mix
  // cells have just warmed in parallel; benchmarks outside every mix are
  // computed here on first use.
  const u64 insts = spec.lengths.at(0).insts;
  std::fprintf(out, "=== Table 2 (part 1): single-thread classification ===\n");
  std::fprintf(out, "%-10s %8s %8s\n", "benchmark", "ST IPC", "class");
  for (const auto& b : spec_benchmarks())
    std::fprintf(out, "%-10s %8.3f %8s\n", b.name.c_str(), single_thread_ipc(b.name, insts),
                 class_name(b.expected_class));

  std::fprintf(out, "\n=== Table 2 (part 2): simulated benchmark mixes ===\n");
  std::fprintf(out, "%-8s  %-40s %s\n", "mix", "benchmarks", "classification");
  for (const auto& mix : table2_mixes()) {
    std::string benches;
    for (const auto& n : mix.benchmarks) {
      if (!benches.empty()) benches += ", ";
      benches += n;
    }
    std::fprintf(out, "%-8s  %-40s %s\n", mix.name.c_str(), benches.c_str(),
                 mix.classification.c_str());
  }
}

void threshold_epilogue(const CampaignResult& res, const CampaignSpec&, std::FILE* out) {
  const double base = column_average_ft(res, "Baseline_32");
  std::fprintf(out, "=== DoD threshold sweep (average FT over 11 mixes) ===\n");
  std::fprintf(out, "Baseline_32: %.4f\n\n", base);
  std::fprintf(out, "%-10s %12s %12s %12s %12s\n", "threshold", "R-ROB", "vs base", "P-ROB",
               "vs base");
  for (const u32 th : kThresholdSweep) {
    const double r = column_average_ft(res, "R-ROB" + std::to_string(th));
    const double p = column_average_ft(res, "P-ROB" + std::to_string(th));
    std::fprintf(out, "%-10u %12.4f %+11.1f%% %12.4f %+11.1f%%\n", th, r,
                 100.0 * (r / base - 1.0), p, 100.0 * (p / base - 1.0));
  }
}

void early_release_epilogue(const CampaignResult& res, const CampaignSpec&, std::FILE* out) {
  const u64 released = column_counter(res, "R-ROB16+ER", "core.rename.early_released");
  std::fprintf(out,
               "\nregisters released early under R-ROB16+ER across the 11 mixes: %llu\n",
               static_cast<unsigned long long>(released));
}

// -- preset table -----------------------------------------------------------

struct Preset {
  const char* name;
  const char* title;  // FT table heading (nullptr = no FT table)
  const char* summary;
  CampaignSpec (*make)(const RunLengthSpec&);
  void (*epilogue)(const CampaignResult&, const CampaignSpec&, std::FILE*);
};

const Preset kPresets[] = {
    {"fig1", nullptr, "DoD histograms on the baseline machine (Figure 1)",
     [](const RunLengthSpec& rl) {
       return ft_spec("fig1", {col("Baseline_32", baseline32_config())}, rl);
     },
     fig1_epilogue},
    {"fig2", "Figure 2: FT with 2-Level R-ROB",
     "FT of R-ROB16 vs Baseline_32/Baseline_128 (Figure 2)",
     [](const RunLengthSpec& rl) {
       return ft_spec("fig2",
                      {col("Baseline_32", baseline32_config()),
                       col("Baseline_128", baseline128_config()),
                       col("R-ROB16", two_level_config(RobScheme::kReactive, 16))},
                      rl);
     },
     nullptr},
    {"fig3", nullptr, "DoD histograms under R-ROB16 vs baseline (Figure 3)",
     [](const RunLengthSpec& rl) {
       return ft_spec("fig3",
                      {col("Baseline_32", baseline32_config()),
                       col("R-ROB16", two_level_config(RobScheme::kReactive, 16))},
                      rl);
     },
     fig3_epilogue},
    {"fig4", "Figure 4: FT with 2-Level Relaxed R-ROB15",
     "FT of the relaxed reactive scheme (Figure 4)",
     [](const RunLengthSpec& rl) {
       return ft_spec("fig4",
                      {col("Baseline_32", baseline32_config()),
                       col("Baseline_128", baseline128_config()),
                       col("RelaxedR15", two_level_config(RobScheme::kRelaxedReactive, 15))},
                      rl);
     },
     nullptr},
    {"fig5", "Figure 5: FT with 2-Level CDR-ROB15 (32-cycle counting delay)",
     "FT of the counting-delay reactive scheme (Figure 5)",
     [](const RunLengthSpec& rl) {
       return ft_spec("fig5",
                      {col("Baseline_32", baseline32_config()),
                       col("Baseline_128", baseline128_config()),
                       col("CDR-ROB15", two_level_config(RobScheme::kCdr, 15))},
                      rl);
     },
     nullptr},
    {"fig6", "Figure 6: FT with 2-Level P-ROB",
     "FT of the predictive scheme + predictor quality (Figure 6)",
     [](const RunLengthSpec& rl) {
       return ft_spec("fig6",
                      {col("Baseline_32", baseline32_config()),
                       col("Baseline_128", baseline128_config()),
                       col("P-ROB3", two_level_config(RobScheme::kPredictive, 3)),
                       col("P-ROB5", two_level_config(RobScheme::kPredictive, 5))},
                      rl);
     },
     fig6_epilogue},
    {"fig7", nullptr, "DoD histograms under P-ROB5 vs baseline (Figure 7)",
     [](const RunLengthSpec& rl) {
       return ft_spec("fig7",
                      {col("Baseline_32", baseline32_config()),
                       col("P-ROB5", two_level_config(RobScheme::kPredictive, 5))},
                      rl);
     },
     fig7_epilogue},
    {"table2", nullptr, "Single-thread classification and the 11 mixes (Table 2)",
     [](const RunLengthSpec& rl) {
       return ft_spec("table2", {col("Baseline_32", baseline32_config())}, rl);
     },
     table2_epilogue},
    {"ablation_threshold", nullptr, "DoD-threshold sweep for R-ROB and P-ROB (§5.2)",
     [](const RunLengthSpec& rl) {
       std::vector<ConfigColumn> cols = {col("Baseline_32", baseline32_config())};
       for (const u32 th : kThresholdSweep)
         cols.push_back(col("R-ROB" + std::to_string(th),
                            two_level_config(RobScheme::kReactive, th)));
       for (const u32 th : kThresholdSweep)
         cols.push_back(col("P-ROB" + std::to_string(th),
                            two_level_config(RobScheme::kPredictive, th)));
       return ft_spec("ablation_threshold", std::move(cols), rl);
     },
     threshold_epilogue},
    {"ablation_fetch_policy", "Fetch-policy ablation (Baseline_32 machine)",
     "DCRA vs ICOUNT/STALL/FLUSH/round-robin",
     [](const RunLengthSpec& rl) {
       return ft_spec("ablation_fetch_policy",
                      {col("DCRA", with_policy(FetchPolicyKind::kDcra)),
                       col("ICOUNT", with_policy(FetchPolicyKind::kIcount)),
                       col("STALL", with_policy(FetchPolicyKind::kStall)),
                       col("FLUSH", with_policy(FetchPolicyKind::kFlush)),
                       col("RoundRobin", with_policy(FetchPolicyKind::kRoundRobin))},
                      rl);
     },
     nullptr},
    {"ablation_regfile", "Register-file ablation: per-thread (default) vs shared pool",
     "Per-thread vs shared physical register files (DESIGN.md §5)",
     [](const RunLengthSpec& rl) {
       return ft_spec(
           "ablation_regfile",
           {col("B32/perthr", baseline32_config()),
            col("B32/shared", with_shared_regfile(baseline32_config())),
            col("R16/perthr", two_level_config(RobScheme::kReactive, 16)),
            col("R16/shared", with_shared_regfile(two_level_config(RobScheme::kReactive, 16))),
            col("B128/perthr", baseline128_config()),
            col("B128/shared", with_shared_regfile(baseline128_config()))},
           rl);
     },
     nullptr},
    {"ablation_early_release", "Early-register-release ablation",
     "L2-miss-driven early register deallocation (ref [24])",
     [](const RunLengthSpec& rl) {
       return ft_spec(
           "ablation_early_release",
           {col("Baseline_32", baseline32_config()),
            col("R-ROB16", two_level_config(RobScheme::kReactive, 16)),
            col("R-ROB16+ER",
                with_early_release(two_level_config(RobScheme::kReactive, 16))),
            col("B32+ER", with_early_release(baseline32_config()))},
           rl);
     },
     early_release_epilogue},
    {"ablation_adaptive", "Adaptive-ROB (ref [23]) vs the two-level design",
     "Per-thread adaptive ROB growth (ref [23]) vs R-ROB16",
     [](const RunLengthSpec& rl) {
       return ft_spec("ablation_adaptive",
                      {col("Baseline_32", baseline32_config()),
                       col("Adaptive", two_level_config(RobScheme::kAdaptive, 16)),
                       col("R-ROB16", two_level_config(RobScheme::kReactive, 16))},
                      rl);
     },
     nullptr},
    {"trace_synth", "Trace replay: two-level vs baseline on a synthesized trace mix",
     "Trace-frontend exercise: four synthesized ChampSim traces replayed per thread",
     [](const RunLengthSpec& rl) {
       // 500-record traces are shorter than any run length this preset is
       // used at, so loop-rewind replay is always exercised.
       CampaignSpec spec;
       spec.name = "trace_synth";
       spec.columns = {col("Baseline_32", baseline32_config()),
                       col("R-ROB16", two_level_config(RobScheme::kReactive, 16))};
       spec.mixes = {trace::workload_mix(
           "tracegen:art@500@11,tracegen:mcf@500@13,"
           "tracegen:mgrid@500@17,tracegen:crafty@500@19")};
       spec.lengths = {rl};
       return spec;
     },
     nullptr},
    {"cmp_mix", "CMP mix: 2 cores x 4 threads, shared LLC + banked DRAM",
     "Two SMT cores behind a shared LLC/DRAM backend on paired Table 2 mixes",
     [](const RunLengthSpec& rl) {
       CampaignSpec spec;
       spec.name = "cmp_mix";
       spec.columns = {col("CMP2-Baseline_32", cmp_config(2, RobScheme::kBaseline, 0)),
                       col("CMP2-R-ROB16", cmp_config(2, RobScheme::kReactive, 16))};
       spec.mixes = cmp_pair_mixes();
       spec.lengths = {rl};
       return spec;
     },
     nullptr},
    {"cmp_trace", "CMP trace replay: 2 cores x 2 threads on synthesized traces",
     "Trace frontend on a 2-core CMP: per-core trace assignment over the shared backend",
     [](const RunLengthSpec& rl) {
       CampaignSpec spec;
       spec.name = "cmp_trace";
       auto cmp2 = [](RobScheme s, u32 th) {
         MachineConfig cfg = cmp_config(2, s, th);
         cfg.num_threads = 2;  // 2 cores x 2 threads <- the 4-entry trace list
         return cfg;
       };
       spec.columns = {col("CMP2-Baseline_32", cmp2(RobScheme::kBaseline, 0)),
                       col("CMP2-R-ROB16", cmp2(RobScheme::kReactive, 16))};
       spec.mixes = {trace::workload_mix(
           "tracegen:art@500@11,tracegen:mcf@500@13,"
           "tracegen:mgrid@500@17,tracegen:crafty@500@19")};
       spec.lengths = {rl};
       return spec;
     },
     nullptr},
};

const Preset& find_preset(const std::string& name) {
  for (const Preset& p : kPresets)
    if (name == p.name) return p;
  throw std::invalid_argument("unknown preset: " + name);
}

}  // namespace

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Preset& p : kPresets) out.emplace_back(p.name);
    return out;
  }();
  return names;
}

bool is_preset(const std::string& name) {
  for (const Preset& p : kPresets)
    if (name == p.name) return true;
  return false;
}

std::string preset_summary(const std::string& name) { return find_preset(name).summary; }

CampaignSpec preset_campaign(const std::string& name, const RunLengthSpec& length) {
  return find_preset(name).make(length);
}

CampaignResult run_preset(const std::string& name, const PresetOptions& opts) {
  const Preset& preset = find_preset(name);
  CampaignSpec spec = preset.make(opts.length);
  if (!opts.workload.empty()) {
    const Mix mix = trace::workload_mix(opts.workload);
    // Core-major assignment: an N-core column splits the workload list into
    // N equal per-core thread groups.
    for (auto& c : spec.columns) {
      const u32 cores = c.config.num_cores == 0 ? 1 : c.config.num_cores;
      if (mix.benchmarks.size() % cores != 0)
        throw std::invalid_argument("workload size " + std::to_string(mix.benchmarks.size()) +
                                    " not divisible by cores=" + std::to_string(cores));
      c.config.num_threads = static_cast<u32>(mix.benchmarks.size() / cores);
    }
    spec.mixes = {mix};
  }
  spec.sample_interval = opts.sample_interval;
  spec.sample_dir = opts.sample_dir;
  if (opts.parallel_cores != 0 || opts.parallel_quantum != 0) {
    for (auto& c : spec.columns) {
      c.config.parallel_cores = opts.parallel_cores;
      c.config.parallel_quantum = opts.parallel_quantum;
    }
  }

  EngineOptions eng;
  eng.jobs = WorkStealingPool::resolve_threads(opts.jobs);
  eng.manifest_path = opts.manifest_path;
  eng.resume = opts.resume;
  eng.notes = opts.notes;

  FtTableSink table(opts.out, preset.title == nullptr ? "" : preset.title);
  if (opts.render && preset.title != nullptr) eng.sinks.push_back(&table);
  for (ResultSink* sink : opts.extra_sinks) eng.sinks.push_back(sink);

  CampaignResult result = run_campaign(spec, eng);
  if (opts.render && preset.epilogue != nullptr) preset.epilogue(result, spec, opts.out);
  return result;
}

}  // namespace tlrob::runner
