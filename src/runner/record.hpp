// The campaign runner's unit of work and unit of result.
//
// A JobSpec is one (configuration, mix, run-length) cell of a sweep; a
// JobRecord is everything a completed cell produced, in a flat structure all
// sinks (JSON lines, CSV, rendered tables) serialise from. Records are the
// single source of truth: the printf tables the figure benches show are
// rendered from the same JobRecords the JSON/CSV sinks write, so parallel
// and serial campaigns are comparable byte-for-byte.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "runner/json.hpp"
#include "sim/presets.hpp"
#include "workload/mixes.hpp"

namespace tlrob::runner {

/// One (configuration, mix, run-length) cell of a campaign, fully resolved:
/// executing a JobSpec depends on nothing but its own fields (plus the
/// memoised single-thread reference, which is a pure function of
/// (benchmark, insts)), which is what makes cells order-independent.
struct JobSpec {
  u64 index = 0;  // position in campaign expansion order
  std::string campaign;
  std::string config_name;
  MachineConfig config;
  Mix mix;
  u64 insts = 0;
  u64 warmup = 0;
  u64 max_cycles = 0;  // 0 = the simulator's derived generous bound
  u64 seed = 0;        // applied to config.seed before the run

  /// Interval telemetry (campaign-wide, copied from CampaignSpec): nonzero
  /// sample_interval enables sampling for this job; non-empty sample_dir
  /// makes the job write its series to
  /// <sample_dir>/samples_job<index>.jsonl. Excluded from job_key — a
  /// resumed cell is the same cell whether or not it was sampled.
  u64 sample_interval = 0;
  std::string sample_dir;
};

/// Stable identity of a cell across campaign runs — what the resume
/// manifest matches on. Deliberately excludes `index` so a grown or
/// reordered campaign still recognises previously completed cells.
std::string job_key(const JobSpec& spec);

enum class JobStatus : u8 { kOk, kFailed };

const char* to_string(JobStatus s);

/// Dependents-of-a-long-latency-load histogram summary (Figures 1/3/7),
/// carried per record so the DoD figures render from sink records too.
struct DodSummary {
  u64 samples = 0;
  double sum = 0.0;  // of true (unclamped) values
  std::vector<u64> buckets;

  double mean() const { return samples == 0 ? 0.0 : sum / static_cast<double>(samples); }
};

struct JobRecord {
  u64 job = 0;
  std::string campaign;
  std::string config;
  std::string mix;
  std::string scheme;
  u32 threshold = 0;
  u64 insts = 0;
  u64 warmup = 0;
  u64 max_cycles = 0;
  u64 seed = 0;

  JobStatus status = JobStatus::kOk;
  std::string error;

  u64 cycles = 0;
  double ft = 0.0;
  double throughput = 0.0;
  std::vector<std::string> benchmarks;
  std::vector<u64> committed;
  std::vector<double> mt_ipc;
  std::vector<double> st_ipc;
  DodSummary dod_true;
  DodSummary dod_proxy;
  std::map<std::string, u64> counters;

  bool ok() const { return status == JobStatus::kOk; }

  /// Cell identity in job_key() form (same fields, from the record side).
  std::string key() const;
};

/// Canonical scheme name for a machine configuration ("baseline", "rrob",
/// "relaxed", "cdr", "prob", "adaptive") — the vocabulary of
/// sim/config_override.hpp.
std::string scheme_name(const MachineConfig& cfg);

/// One JSON object, single line, fixed key order and number formatting —
/// byte-identical regardless of which worker produced it.
std::string to_json_line(const JobRecord& r);

/// Inverse of to_json_line (used by manifest resume). Throws
/// std::invalid_argument on malformed input.
JobRecord record_from_json_line(const std::string& line);

/// CSV header matching to_csv_line's columns.
std::string csv_header();

/// One CSV row; list-valued fields are ';'-joined, counters are omitted
/// (use the JSON sink for the full record).
std::string to_csv_line(const JobRecord& r);

}  // namespace tlrob::runner
