#include "runner/cli.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "sim/config_override.hpp"
#include "trace/resolve.hpp"

namespace tlrob::runner {

namespace {

/// Flags that never take a following-token value.
bool is_bare_flag(const std::string& key) {
  return key == "resume" || key == "per_job_seeds" || key == "no_render" ||
         key == "list" || key == "help" || key == "allow_oversubscribe";
}

std::string normalise_key(std::string key) {
  std::replace(key.begin(), key.end(), '-', '_');
  return key;
}

}  // namespace

Options parse_cli_args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.size() > 1 && tok[0] == '-' && tok.find('=') == std::string::npos) {
      size_t dashes = 0;
      while (dashes < tok.size() && tok[dashes] == '-') ++dashes;
      const std::string key = normalise_key(tok.substr(dashes));
      const bool next_is_value = i + 1 < argc && argv[i + 1][0] != '-' &&
                                 std::string(argv[i + 1]).find('=') == std::string::npos;
      if (!is_bare_flag(key) && next_is_value) {
        tokens.push_back(key + "=" + argv[++i]);
        continue;
      }
      tokens.push_back("--" + key);
      continue;
    }
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      size_t dashes = 0;
      while (dashes < eq && tok[dashes] == '-') ++dashes;
      tokens.push_back(normalise_key(tok.substr(dashes, eq - dashes)) + tok.substr(eq));
      continue;
    }
    tokens.push_back(tok);  // positional
  }
  return Options::from_tokens(tokens);
}

namespace {

ConfigColumn scheme_column(const std::string& scheme, u32 threshold) {
  if (scheme == "baseline32") return {"Baseline_32", baseline32_config(), 0};
  if (scheme == "baseline128") return {"Baseline_128", baseline128_config(), 0};
  const RobScheme kind = parse_scheme(scheme);  // throws on unknown names
  std::string prefix;
  switch (kind) {
    case RobScheme::kReactive: prefix = "R-ROB"; break;
    case RobScheme::kRelaxedReactive: prefix = "RelaxedR"; break;
    case RobScheme::kCdr: prefix = "CDR-ROB"; break;
    case RobScheme::kPredictive: prefix = "P-ROB"; break;
    case RobScheme::kAdaptive: prefix = "Adaptive"; break;
    case RobScheme::kBaseline: return {"Baseline_32", baseline32_config(), 0};
  }
  return {prefix + std::to_string(threshold), two_level_config(kind, threshold), 0};
}

}  // namespace

CampaignSpec custom_campaign(const Options& opts) {
  CampaignSpec spec;
  spec.name = opts.get("name", "custom");

  auto schemes = opts.get_list("schemes");
  if (schemes.empty()) schemes = {"baseline32", "rrob"};
  std::vector<u32> thresholds;
  for (const auto& t : opts.get_list("thresholds"))
    thresholds.push_back(static_cast<u32>(std::stoul(t)));
  if (thresholds.empty()) thresholds = {16};
  for (const auto& scheme : schemes) {
    if (scheme == "baseline32" || scheme == "baseline128" || scheme == "baseline") {
      spec.columns.push_back(scheme_column(scheme, 0));
      continue;
    }
    for (const u32 th : thresholds) spec.columns.push_back(scheme_column(scheme, th));
  }

  // CMP topology applies uniformly across columns: --cores N gives every
  // column an N-core machine, --llc/--dram shape the shared backend. The
  // machine-wide thread count is preserved — N cores split the column's
  // threads (4-thread Table 2 mixes become 2 cores x 2 threads) — so the
  // same mixes drive any core count.
  for (auto& c : spec.columns) {
    const u32 cores = static_cast<u32>(opts.get_u64("cores", c.config.num_cores));
    if (cores > 1) {
      if (c.config.num_threads % cores != 0)
        throw std::invalid_argument("threads=" + std::to_string(c.config.num_threads) +
                                    " not divisible by cores=" + std::to_string(cores));
      c.config.num_threads /= cores;
    }
    c.config.num_cores = cores;
    if (opts.has("llc")) apply_llc_spec(c.config.llc, opts.get("llc"));
    if (opts.has("dram")) apply_dram_spec(c.config.dram, opts.get("dram"));
    c.config.force_cmp_engine = opts.get_bool("force_cmp", c.config.force_cmp_engine);
    // --parallel-cores[=N]: any nonzero value turns the parallel CMP engine
    // on (the machine always uses one worker per core; N only declares the
    // per-job width to the thread-budget heuristic in run_from_options).
    c.config.parallel_cores =
        static_cast<u32>(opts.get_u64("parallel_cores", c.config.parallel_cores));
    c.config.parallel_quantum =
        static_cast<u32>(opts.get_u64("parallel_quantum", c.config.parallel_quantum));
  }

  const std::string workload = opts.get("workload", "");
  const auto mix_ids = opts.get_list("mixes");
  if (!workload.empty()) {
    if (!mix_ids.empty())
      throw std::invalid_argument("--workload and --mixes are mutually exclusive");
    const Mix mix = trace::workload_mix(workload);
    // The workload list sets the thread count: a 2-entry trace mix runs a
    // 2-thread machine under every column. On a CMP the list is core-major
    // and must divide evenly into per-core thread counts.
    for (auto& c : spec.columns) {
      const u32 cores = c.config.num_cores == 0 ? 1 : c.config.num_cores;
      if (mix.benchmarks.size() % cores != 0)
        throw std::invalid_argument("workload size " + std::to_string(mix.benchmarks.size()) +
                                    " not divisible by cores=" + std::to_string(cores));
      c.config.num_threads = static_cast<u32>(mix.benchmarks.size() / cores);
    }
    spec.mixes = {mix};
  } else if (mix_ids.empty()) {
    spec.mixes = table2_mixes();
  } else {
    for (const auto& id : mix_ids)
      spec.mixes.push_back(table2_mix(static_cast<u32>(std::stoul(id))));
  }

  spec.lengths = {{opts.get_u64("insts", 120000), opts.get_u64("warmup", 60000)}};
  spec.seed = opts.get_u64("seed", spec.seed);
  spec.per_job_seeds = opts.get_bool("per_job_seeds", false);
  spec.max_cycles = opts.get_u64("max_cycles", 0);
  spec.sample_interval = opts.get_u64("sample_interval", 0);
  spec.sample_dir = opts.get("sample_dir", "");
  return spec;
}

int run_from_options(const std::string& preset, const Options& opts) {
  // Structured sinks ("-" = stdout).
  std::vector<std::unique_ptr<std::ofstream>> files;
  std::vector<std::unique_ptr<ResultSink>> owned;
  auto open_sink = [&](const std::string& path, bool csv) -> ResultSink* {
    std::ostream* os = &std::cout;
    if (path != "-") {
      files.push_back(std::make_unique<std::ofstream>(path, std::ios::trunc));
      if (!files.back()->is_open())
        throw std::runtime_error("cannot open sink file: " + path);
      os = files.back().get();
    }
    if (csv)
      owned.push_back(std::make_unique<CsvSink>(*os));
    else
      owned.push_back(std::make_unique<JsonlSink>(*os));
    return owned.back().get();
  };

  std::vector<ResultSink*> sinks;
  if (opts.has("json")) sinks.push_back(open_sink(opts.get("json"), /*csv=*/false));
  if (opts.has("csv")) sinks.push_back(open_sink(opts.get("csv"), /*csv=*/true));

  const bool render = !opts.get_bool("no_render", false);
  u32 jobs = WorkStealingPool::resolve_threads(
      static_cast<u32>(opts.get_u64("jobs", 0)));

  // Thread-budget guard: with --parallel-cores every in-flight job holds one
  // worker thread per simulated core, so --jobs N multiplies. Clamp jobs to
  // keep jobs x width within the hardware threads unless the user overrides
  // with --allow-oversubscribe; either way results are bit-identical (only
  // scheduling changes). The width declaration is the larger of the
  // --parallel-cores value and --cores (presets carry their own core counts,
  // which is why --parallel-cores takes an optional numeric value at all).
  std::vector<std::string> notes;
  const u32 parallel = static_cast<u32>(opts.get_u64("parallel_cores", 0));
  if (parallel != 0) {
    const u32 width = std::max(parallel, static_cast<u32>(opts.get_u64("cores", 1)));
    const u32 hw = WorkStealingPool::resolve_threads(0);
    if (width > 1 && static_cast<u64>(jobs) * width > hw &&
        !opts.get_bool("allow_oversubscribe", false)) {
      const u32 clamped = std::max<u32>(1, hw / width);
      std::cerr << "warning: --jobs " << jobs << " x " << width
                << " core workers per job exceeds " << hw
                << " hardware threads; clamping to --jobs " << clamped
                << " (--allow-oversubscribe keeps the requested value)\n";
      notes.push_back(std::string("{\"note\":\"thread_budget\",\"requested_jobs\":") +
                      std::to_string(jobs) + ",\"parallel_width\":" + std::to_string(width) +
                      ",\"hw_threads\":" + std::to_string(hw) +
                      ",\"clamped_jobs\":" + std::to_string(clamped) + "}");
      jobs = clamped;
    }
  }

  CampaignResult result;
  std::string campaign_name;
  if (!preset.empty()) {
    PresetOptions popts;
    popts.length = {opts.get_u64("insts", 120000), opts.get_u64("warmup", 60000)};
    popts.jobs = jobs;
    popts.extra_sinks = sinks;
    popts.manifest_path = opts.get("manifest", "");
    popts.resume = opts.get_bool("resume", false);
    popts.render = render;
    popts.sample_interval = opts.get_u64("sample_interval", 0);
    popts.sample_dir = opts.get("sample_dir", "");
    popts.workload = opts.get("workload", "");
    popts.parallel_cores = parallel;
    popts.parallel_quantum = static_cast<u32>(opts.get_u64("parallel_quantum", 0));
    popts.notes = notes;
    result = run_preset(preset, popts);
    campaign_name = preset;
  } else {
    const CampaignSpec spec = custom_campaign(opts);
    EngineOptions eng;
    eng.jobs = jobs;
    eng.manifest_path = opts.get("manifest", "");
    eng.resume = opts.get_bool("resume", false);
    eng.notes = notes;
    FtTableSink table(stdout);
    if (render) eng.sinks.push_back(&table);
    for (ResultSink* s : sinks) eng.sinks.push_back(s);
    result = run_campaign(spec, eng);
    campaign_name = spec.name;
  }

  std::cerr << "campaign " << campaign_name << ": " << result.records.size() << " cells, "
            << result.ok << " ok, " << result.failed << " failed, " << result.resumed
            << " resumed (" << jobs << " worker" << (jobs == 1 ? "" : "s") << ")\n";
  return result.failed > 0 ? 1 : 0;
}

int preset_main(const std::string& preset, int argc, const char* const* argv) {
  try {
    return run_from_options(preset, parse_cli_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace tlrob::runner
