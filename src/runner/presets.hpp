// The paper's figures, tables and ablations as named campaign presets.
//
// Each preset supplies a CampaignSpec (what to sweep) plus its stdout
// rendering: the generic fair-throughput table (FtTableSink) and/or a
// figure-specific epilogue (histograms, predictor quality, threshold
// summary) rendered from the returned records. The bench_fig*/bench_table*
// binaries are thin wrappers over run_preset; the tlrob-campaign CLI
// reaches the same presets by name.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "runner/engine.hpp"
#include "runner/render.hpp"

namespace tlrob::runner {

struct PresetOptions {
  RunLengthSpec length{};
  u32 jobs = 0;  // 0 = hardware concurrency, 1 = serial
  /// Structured sinks in addition to the preset's stdout rendering.
  std::vector<ResultSink*> extra_sinks;
  std::string manifest_path;
  bool resume = false;
  /// Render the preset's tables/epilogue to `out` (off for sink-only runs).
  bool render = true;
  std::FILE* out = stdout;
  /// Interval telemetry forwarded into the preset's CampaignSpec
  /// (campaign.hpp: obs.* summary counters per record; per-job series
  /// files when sample_dir is set).
  u64 sample_interval = 0;
  std::string sample_dir;
  /// Workload override (src/trace/resolve.hpp syntax): replaces the
  /// preset's Table 2 mixes with this single mix — per-thread entry i runs
  /// on hardware thread i — and sizes every column's machine to match.
  /// Empty = the preset's own mixes.
  std::string workload;
  /// Parallel CMP engine (MachineConfig::parallel_cores semantics): nonzero
  /// runs every column's multi-core machines on one worker thread per core,
  /// bit-identical to the serial engine. Applied uniformly to all columns.
  u32 parallel_cores = 0;
  u32 parallel_quantum = 0;  // epoch quantum override, 0 = engine default
  /// Manifest annotations forwarded to EngineOptions::notes.
  std::vector<std::string> notes;
};

/// All preset names, in presentation order.
const std::vector<std::string>& preset_names();

bool is_preset(const std::string& name);

/// One-line description of a preset (for --list).
std::string preset_summary(const std::string& name);

/// The campaign a preset sweeps. Throws std::invalid_argument on unknown
/// names.
CampaignSpec preset_campaign(const std::string& name, const RunLengthSpec& length);

/// Runs a preset end-to-end (campaign + rendering).
CampaignResult run_preset(const std::string& name, const PresetOptions& opts);

}  // namespace tlrob::runner
