#include "runner/sinks.hpp"

#include <cstdio>
#include <ostream>

namespace tlrob::runner {

void JsonlSink::emit(const JobRecord& record) { os_ << to_json_line(record) << "\n"; }

void CsvSink::begin(const CampaignSpec&, const std::vector<JobSpec>&) {
  os_ << csv_header() << "\n";
}

void CsvSink::emit(const JobRecord& record) { os_ << to_csv_line(record) << "\n"; }

FtTableSink::FtTableSink(std::FILE* out, std::string title)
    : out_(out), title_(std::move(title)) {}

void FtTableSink::begin(const CampaignSpec& spec, const std::vector<JobSpec>&) {
  columns_.clear();
  for (const auto& col : spec.columns) columns_.push_back(col.name);
  sums_.assign(columns_.size(), 0.0);
  ok_counts_.assign(columns_.size(), 0);
  col_cursor_ = 0;
  if (title_.empty()) title_ = spec.name;
  std::fprintf(out_, "=== %s ===\n", title_.c_str());
  std::fprintf(out_, "%-8s", "mix");
  for (const auto& name : columns_) std::fprintf(out_, " %14s", name.c_str());
  std::fprintf(out_, "\n");
}

void FtTableSink::emit(const JobRecord& record) {
  // Serialised by the engine's emitter lock (see the header's threading
  // contract); col_cursor_/sums_ need no lock of their own.
  if (col_cursor_ == 0) std::fprintf(out_, "%-8s", record.mix.c_str());
  if (record.ok()) {
    std::fprintf(out_, " %14.4f", record.ft);
    sums_[col_cursor_] += record.ft;
    ++ok_counts_[col_cursor_];
  } else {
    std::fprintf(out_, " %14s", "failed");
  }
  std::fflush(out_);
  if (++col_cursor_ == columns_.size()) {
    std::fprintf(out_, "\n");
    col_cursor_ = 0;
  }
}

void FtTableSink::end() {
  auto average = [&](size_t c) {
    return ok_counts_[c] == 0 ? 0.0 : sums_[c] / static_cast<double>(ok_counts_[c]);
  };
  std::fprintf(out_, "%-8s", "Average");
  for (size_t c = 0; c < columns_.size(); ++c) std::fprintf(out_, " %14.4f", average(c));
  std::fprintf(out_, "\n");
  std::fprintf(out_, "%-8s", "vs base");
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (average(0) > 0.0 && ok_counts_[c] > 0)
      std::fprintf(out_, " %+13.1f%%", 100.0 * (average(c) / average(0) - 1.0));
    else
      std::fprintf(out_, " %14s", "n/a");
  }
  std::fprintf(out_, "\n");
}

}  // namespace tlrob::runner
