// Golden-run fingerprints: the bit-identity contract for simulator rework.
//
// A GoldenRow is the architectural signature of one campaign cell — cycles,
// per-thread committed counts and multithreaded IPC, L2 misses and
// second-level grant count. Performance work on the simulator core (event
// scheduling, pooling, fast-forwarding of idle cycles) must leave every row
// byte-identical: the fixtures under tests/golden/ are recorded once from a
// known-good build and only rewritten deliberately via the tlrob-golden
// tool. Any drift is an architectural-model change, not an optimisation.
#pragma once

#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/record.hpp"

namespace tlrob::runner {

/// Architectural fingerprint of one (config, mix) cell of a preset.
struct GoldenRow {
  std::string config;
  std::string mix;
  std::string status;  // "ok" or "failed" (cycle-cap hit)
  u64 cycles = 0;
  std::vector<u64> committed;   // per thread, paper order
  std::vector<double> mt_ipc;   // per thread, derived from committed/cycles
  u64 l2_misses = 0;            // shared-L2 "l2.misses" counter
  u64 second_level_grants = 0;  // "rob2.allocations" counter

  bool operator==(const GoldenRow&) const = default;
};

/// The run length fixtures are recorded at. Deliberately short: long enough
/// that every scheme exercises its second-level machinery (grants are
/// nonzero on two-level configurations), short enough that the full sweep
/// of all presets stays within tier-1 test time.
RunLengthSpec golden_run_length();

/// Projects a completed cell onto its fingerprint fields.
GoldenRow golden_row(const JobRecord& record);

/// Runs every cell of `preset` serially at golden_run_length() and returns
/// the fingerprints in canonical campaign-expansion order.
std::vector<GoldenRow> golden_fingerprints(const std::string& preset);

/// Deterministic fixture serialisation: one JSON document, one row per line,
/// fixed key order and number formatting (json_double/json_u64), so regens
/// that change nothing are byte-identical and review diffs are per-cell.
std::string golden_to_json(const std::string& preset, const std::vector<GoldenRow>& rows);

/// Parsed fixture: preset name, recorded run length, and rows.
struct GoldenFile {
  std::string preset;
  RunLengthSpec length;
  std::vector<GoldenRow> rows;
};

/// Inverse of golden_to_json. Throws std::invalid_argument on malformed
/// input or missing fields.
GoldenFile golden_from_json(const std::string& text);

/// Human-readable first-difference report ("" when equal): which cell
/// diverged and in which field, for test failure messages and the tool's
/// check mode.
std::string golden_diff(const std::vector<GoldenRow>& expected,
                        const std::vector<GoldenRow>& actual);

}  // namespace tlrob::runner
