// Structured result sinks. The engine delivers records to every sink in
// campaign expansion order (it holds an in-order reorder window over job
// completions — fittingly, a reorder buffer for experiment results), so a
// sink never needs its own ordering logic and a parallel campaign's output
// is byte-identical to a serial one's.
//
// Threading contract: sinks are externally synchronised. begin()/end() run
// on the campaign thread before the pool starts / after it drains, and
// every emit() happens under the in-order emitter's Mutex (engine.cpp), so
// sink implementations keep mutable state without locks of their own — but
// must not assume which thread calls emit(). tlrob-lint rule C1 watches
// this file: any mutex that does appear here must carry GUARDED_BY
// annotations (common/thread_annotations.hpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/record.hpp"

namespace tlrob::runner {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once before any record, with the expanded job list.
  virtual void begin(const CampaignSpec& spec, const std::vector<JobSpec>& jobs) {
    (void)spec;
    (void)jobs;
  }

  /// Called once per job, in expansion order.
  virtual void emit(const JobRecord& record) = 0;

  /// Called once after the last record.
  virtual void end() {}
};

/// One JSON object per line (JSON lines / ndjson).
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  void emit(const JobRecord& record) override;

 private:
  std::ostream& os_;
};

/// RFC-4180-style CSV with a header row.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& os) : os_(os) {}
  void begin(const CampaignSpec& spec, const std::vector<JobSpec>& jobs) override;
  void emit(const JobRecord& record) override;

 private:
  std::ostream& os_;
};

/// The paper-style fair-throughput table (one row per mix, one column per
/// configuration, then the average row and each column's percentage
/// improvement over the first, baseline, column) — the renderer that
/// previously lived, copied, in every bench_fig* binary. Streams each row
/// as soon as its cells arrive; failed cells print "failed" and are
/// excluded from the averages.
class FtTableSink : public ResultSink {
 public:
  /// `title` heads the table; defaults to the campaign name when empty.
  explicit FtTableSink(std::FILE* out, std::string title = "");

  void begin(const CampaignSpec& spec, const std::vector<JobSpec>& jobs) override;
  void emit(const JobRecord& record) override;
  void end() override;

 private:
  std::FILE* out_;
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<double> sums_;
  std::vector<u64> ok_counts_;
  size_t col_cursor_ = 0;  // next column expected within the current row
};

}  // namespace tlrob::runner
