// Full simulator driver (the sim-outorder of this repository): run any
// benchmark combination on any machine configuration and dump every
// statistic the core collects.
//
//   ./simulate [bench names ...] [mix=N] [machine knobs] [run knobs]
//
// Workload selection: either positional SPEC profile names (1..N, one per
// hardware thread, e.g. `./simulate art mgrid crafty parser`) or `mix=N`
// for a Table 2 mix. `threads=` defaults to the number of named benchmarks.
//
// Run knobs: insts=N (default 120000), warmup=N (default 60000),
// max_cycles=N, stats=0|1 (dump all counters),
// trace=START:END (pipeline event trace for that cycle window, to stderr).
// Machine knobs: see sim/config_override.hpp (scheme=, threshold=, policy=,
// rob1=, rob2=, l2_kb=, mem_lat=, seed=, ...). CMP knobs (cores=N,
// llc=size_kb[:ways[:lat[:mshrs]]], dram=ch[:banks[:tcas[:trcd[:trp]]]])
// route the run through the CmpMachine engine; the workload list is
// core-major and cores= splits the machine-wide thread count, so
// `simulate mix=1 cores=2` runs 2 cores x 2 threads over the same four
// benchmarks. Pipeline trace / Chrome trace / profile attach to core 0.
//
// Observability knobs (src/obs):
//   sample=N           interval telemetry every N cycles
//   sample_out=PATH    write the series as JSON lines ("-" = stdout)
//   sample_csv=PATH    write the series as CSV ("-" = stdout)
//   trace_json=PATH    Chrome trace-event JSON (open in ui.perfetto.dev)
//   profile=1          host-side per-stage wall-time profile, to stderr
//
// Examples:
//   ./simulate mix=1 scheme=rrob threshold=16
//   ./simulate art art mgrid crafty scheme=prob threshold=5 stats=1
//   ./simulate mcf threads=1 rob1=128 policy=icount
//   ./simulate mix=2 scheme=rrob sample=1000 sample_out=series.jsonl
//       trace_json=trace.json
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/cmp.hpp"
#include "sim/config_override.hpp"
#include "sim/experiment.hpp"
#include "workload/spec_profiles.hpp"

using namespace tlrob;

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);

  // --- workload ------------------------------------------------------------
  std::vector<Benchmark> benches;
  if (opts.has("mix")) {
    benches = mix_benchmarks(table2_mix(static_cast<u32>(opts.get_u64("mix", 1))));
  } else {
    for (const std::string& name : opts.positional()) {
      if (!is_spec_benchmark(name)) {
        std::fprintf(stderr, "unknown benchmark '%s'; available:", name.c_str());
        for (const auto& b : spec_benchmarks()) std::fprintf(stderr, " %s", b.name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
      }
      benches.push_back(spec_benchmark(name));
    }
  }
  if (benches.empty()) benches = mix_benchmarks(table2_mix(1));

  // --- machine ----------------------------------------------------------------
  MachineConfig cfg;
  cfg.num_threads = static_cast<u32>(benches.size());
  cfg.rob_second_level = 0;
  cfg.rob.scheme = RobScheme::kBaseline;
  cfg = apply_overrides(cfg, opts);
  if (cfg.rob.scheme != RobScheme::kBaseline && !opts.has("rob2"))
    cfg.rob_second_level = 384;  // Table 1 default when a two-level scheme is on
  // cores= splits the machine-wide thread count (num_threads so far counts
  // the whole workload list), matching tlrob-campaign's --cores semantics.
  const u32 cores = cfg.num_cores == 0 ? 1 : cfg.num_cores;
  if (cores > 1) {
    if (cfg.num_threads % cores != 0) {
      std::fprintf(stderr, "threads=%u not divisible by cores=%u\n", cfg.num_threads, cores);
      return 1;
    }
    cfg.num_threads /= cores;
  }
  const size_t machine_threads = static_cast<size_t>(cfg.num_threads) * cores;
  while (benches.size() < machine_threads) benches.push_back(benches.back());
  if (benches.size() > machine_threads) benches.resize(machine_threads);

  const u64 insts = opts.get_u64("insts", 120000);
  const u64 warmup = opts.get_u64("warmup", 60000);
  const u64 max_cycles = opts.get_u64("max_cycles", 0);

  // --- observability -------------------------------------------------------
  cfg.telemetry.sample_interval = opts.get_u64("sample", cfg.telemetry.sample_interval);
  cfg.telemetry.profile = opts.get_bool("profile", cfg.telemetry.profile);
  if ((opts.has("sample_out") || opts.has("sample_csv")) &&
      cfg.telemetry.sample_interval == 0)
    cfg.telemetry.sample_interval = 1000;  // asking for the series implies sampling

  std::printf("%s", describe(cfg).c_str());
  std::printf("workload              ");
  for (const auto& b : benches) std::printf(" %s", b.name.c_str());
  std::printf("\nrun                    %llu insts after %llu warmup\n\n",
              static_cast<unsigned long long>(insts),
              static_cast<unsigned long long>(warmup));

  // Same engine routing as run_benchmarks: multiple cores or a shared
  // backend go through CmpMachine; the observability hooks below then
  // attach to core 0 (per-core trace files would interleave unusably).
  const bool cmp_routed = cfg.num_cores > 1 || cfg.llc.enabled || cfg.force_cmp_engine;
  std::unique_ptr<CmpMachine> machine;
  std::unique_ptr<SmtCore> solo;
  if (cmp_routed) {
    machine = std::make_unique<CmpMachine>(cfg, benches);
    if (cores > 1 && (opts.has("trace") || opts.has("trace_json") || cfg.telemetry.profile))
      std::fprintf(stderr, "note: trace/profile observe core 0 of %u\n", cores);
  } else {
    solo = std::make_unique<SmtCore>(cfg, benches);
  }
  SmtCore& core = cmp_routed ? machine->core(0) : *solo;
  if (opts.has("trace")) {
    const std::string spec = opts.get("trace");
    const auto colon = spec.find(':');
    const Cycle lo = std::strtoull(spec.c_str(), nullptr, 0);
    const Cycle hi = colon == std::string::npos
                         ? lo + 200
                         : std::strtoull(spec.c_str() + colon + 1, nullptr, 0);
    core.tracer().attach(&std::cerr, lo, hi);
  }
  obs::ChromeTraceWriter chrome;
  if (opts.has("trace_json")) core.attach_chrome_trace(&chrome);
  const RunResult r = cmp_routed ? machine->run(insts, max_cycles, warmup)
                                 : solo->run(insts, max_cycles, warmup);

  // A sink path of "-" means stdout; anything else is a file (created or
  // truncated). Returns false when the file cannot be opened.
  auto write_to = [](const std::string& path, auto&& emit) {
    if (path == "-") {
      emit(std::cout);
      return true;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      return false;
    }
    emit(out);
    return true;
  };
  bool sinks_ok = true;
  if (opts.has("sample_out"))
    sinks_ok &= write_to(opts.get("sample_out"),
                         [&](std::ostream& os) { r.samples.write_jsonl(os); });
  if (opts.has("sample_csv"))
    sinks_ok &= write_to(opts.get("sample_csv"),
                         [&](std::ostream& os) { r.samples.write_csv(os); });
  if (opts.has("trace_json"))
    sinks_ok &= write_to(opts.get("trace_json"),
                         [&](std::ostream& os) { chrome.write(os); });
  if (cfg.telemetry.profile) core.profiler().print(std::cerr, core.executed_cycles());

  std::printf("%-10s %10s %10s\n", "thread", "committed", "IPC");
  for (const auto& t : r.threads)
    std::printf("%-10s %10llu %10.4f\n", t.benchmark.c_str(),
                static_cast<unsigned long long>(t.committed), t.ipc);
  std::printf("%-10s %10llu %10.4f  (sum)\n", "cycles",
              static_cast<unsigned long long>(r.cycles), r.total_throughput());

  if (cfg.rob.scheme != RobScheme::kBaseline) {
    std::printf("\nsecond level: %llu allocations, busy %llu/%llu cycles (%.1f%%)\n",
                static_cast<unsigned long long>(run_counter(r, "rob2.allocations")),
                static_cast<unsigned long long>(run_counter(r, "rob2.busy_cycles")),
                static_cast<unsigned long long>(r.cycles),
                r.cycles ? 100.0 * static_cast<double>(run_counter(r, "rob2.busy_cycles")) /
                               static_cast<double>(r.cycles)
                         : 0.0);
  }
  if (r.dod_true.total_samples() > 0)
    std::printf("long-latency loads: %llu, mean DoD %.2f (proxy %.2f)\n",
                static_cast<unsigned long long>(r.dod_true.total_samples()),
                r.dod_true.mean(), r.dod_proxy.mean());

  if (opts.get_bool("stats", false)) {
    std::printf("\n--- all counters ---\n");
    for (const auto& [k, v] : r.counters)
      std::printf("%-44s %llu\n", k.c_str(), static_cast<unsigned long long>(v));
  }
  return sinks_ok ? 0 : 1;
}
