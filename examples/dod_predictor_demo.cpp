// Demonstrates the Degree-of-Dependence machinery: runs one mix under the
// predictive scheme and reports (a) the DoD distribution of long-latency
// loads — the paper's Figures 1/7 quantity, (b) how well the paper's
// result-valid-bit counting proxy tracks true transitive dependents, and
// (c) the accuracy of the PC-indexed last-value DoD predictor.
//
//   ./dod_predictor_demo [mix=1] [threshold=5] [insts=120000]
#include <cstdio>

#include "common/config.hpp"
#include "sim/experiment.hpp"

using namespace tlrob;

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  const u32 mix_id = static_cast<u32>(opts.get_u64("mix", 1));
  const u32 threshold = static_cast<u32>(opts.get_u64("threshold", 5));
  const u64 insts = opts.get_u64("insts", 120000);
  const Mix& mix = table2_mix(mix_id);

  const MachineConfig cfg = two_level_config(RobScheme::kPredictive, threshold);
  const RunResult r = run_benchmarks(cfg, mix_benchmarks(mix), insts, 0, insts / 2);

  std::printf("%s under 2-Level P-ROB%u\n\n", mix.name.c_str(), threshold);
  std::printf("DoD of long-latency loads at miss-service time (%llu samples):\n",
              static_cast<unsigned long long>(r.dod_true.total_samples()));
  std::printf("%-6s %12s %12s\n", "#dep", "true", "proxy");
  for (u32 v = 0; v <= 31; ++v)
    std::printf("%-6u %12llu %12llu\n", v,
                static_cast<unsigned long long>(r.dod_true.bucket(v)),
                static_cast<unsigned long long>(r.dod_proxy.bucket(v)));
  std::printf("%-6s %12.2f %12.2f\n", "mean", r.dod_true.mean(), r.dod_proxy.mean());
  std::printf("\nThe proxy (count of not-yet-executed instructions behind the load in the\n"
              "first-level ROB) over-approximates the true transitive dependents, as the\n"
              "paper anticipates; the gap closes when counting is delayed (CDR scheme).\n\n");

  const u64 repeats = run_counter(r, "dodpred.exact_repeats");
  const u64 changes = run_counter(r, "dodpred.value_changes");
  const u64 cold = run_counter(r, "dodpred.cold_installs");
  const u64 total = repeats + changes + cold;
  std::printf("DoD last-value predictor (per static load):\n");
  std::printf("  exact repeats  %8llu (%.1f%%)\n", static_cast<unsigned long long>(repeats),
              total ? 100.0 * repeats / total : 0.0);
  std::printf("  value changes  %8llu (%.1f%%)\n", static_cast<unsigned long long>(changes),
              total ? 100.0 * changes / total : 0.0);
  std::printf("  cold installs  %8llu (%.1f%%)\n", static_cast<unsigned long long>(cold),
              total ? 100.0 * cold / total : 0.0);
  std::printf("\nAllocation activity: %llu predictions, %llu predictive allocations, "
              "%llu verification failures, %llu cold misses\n",
              static_cast<unsigned long long>(run_counter(r, "rob.predictions")),
              static_cast<unsigned long long>(run_counter(r, "rob.predictive_allocations")),
              static_cast<unsigned long long>(run_counter(r, "rob.verification_failures")),
              static_cast<unsigned long long>(run_counter(r, "rob.prediction_cold_misses")));
  return 0;
}
