// Compare every ROB organisation the paper evaluates — Baseline_32,
// Baseline_128 and the four two-level schemes — on one mix, with per-thread
// weighted IPCs (the quantity the fair-throughput metric aggregates).
//
//   ./scheme_comparison [mix=1] [insts=120000] [warmup=60000]
#include <cstdio>

#include "common/config.hpp"
#include "sim/experiment.hpp"

using namespace tlrob;

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  const u32 mix_id = static_cast<u32>(opts.get_u64("mix", 1));
  const u64 insts = opts.get_u64("insts", 120000);
  const u64 warmup = opts.get_u64("warmup", 60000);
  const Mix& mix = table2_mix(mix_id);

  struct Row {
    const char* name;
    MachineConfig cfg;
  };
  const Row rows[] = {
      {"Baseline_32", baseline32_config()},
      {"Baseline_128", baseline128_config()},
      {"2L R-ROB16", two_level_config(RobScheme::kReactive, 16)},
      {"2L Relaxed15", two_level_config(RobScheme::kRelaxedReactive, 15)},
      {"2L CDR-ROB15", two_level_config(RobScheme::kCdr, 15)},
      {"2L P-ROB5", two_level_config(RobScheme::kPredictive, 5)},
      {"AdaptiveROB", two_level_config(RobScheme::kAdaptive, 16)},
  };

  std::printf("%s: %s, %s, %s, %s\n\n", mix.name.c_str(), mix.benchmarks[0].c_str(),
              mix.benchmarks[1].c_str(), mix.benchmarks[2].c_str(),
              mix.benchmarks[3].c_str());
  std::printf("%-14s", "config");
  for (const auto& b : mix.benchmarks) std::printf(" %10s", b.c_str());
  std::printf(" %10s %10s %8s\n", "FT", "IPC sum", "2L busy");

  for (const Row& row : rows) {
    const RunResult r = run_benchmarks(row.cfg, mix_benchmarks(mix), insts, 0, warmup);
    std::vector<double> mt, st;
    for (const auto& t : r.threads) {
      mt.push_back(t.ipc);
      st.push_back(single_thread_ipc(t.benchmark, insts));
    }
    std::printf("%-14s", row.name);
    for (size_t t = 0; t < mt.size(); ++t) std::printf(" %10.2f", weighted_ipc(mt[t], st[t]));
    const double busy = r.cycles == 0 ? 0.0
                                      : 100.0 *
                                            static_cast<double>(run_counter(r, "rob2.busy_cycles")) /
                                            static_cast<double>(r.cycles);
    std::printf(" %10.4f %10.4f %7.1f%%\n", fair_throughput(mt, st), r.total_throughput(),
                busy);
    std::fflush(stdout);
  }
  std::printf("\n(per-benchmark columns show weighted IPC = MT IPC / single-thread IPC;\n"
              " '2L busy' is the fraction of cycles the shared second-level partition was"
              " allocated)\n");
  return 0;
}
