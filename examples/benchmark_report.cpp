// Single-thread characterisation of the 20 synthetic SPEC profiles: IPC,
// ILP class, cache behaviour — the measurement step the paper performs to
// classify benchmarks as low/medium/high ILP (§3) before composing Table 2.
//
//   ./benchmark_report [insts=200000] [bench=<name>]
#include <cstdio>

#include "common/config.hpp"
#include "sim/experiment.hpp"
#include "workload/spec_profiles.hpp"

using namespace tlrob;

namespace {
const char* class_name(IlpClass c) {
  switch (c) {
    case IlpClass::kLow: return "low";
    case IlpClass::kMid: return "mid";
    case IlpClass::kHigh: return "high";
  }
  return "?";
}
}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  const u64 insts = opts.get_u64("insts", kDefaultCommitTarget);
  const std::string only = opts.get("bench");

  std::printf("%-9s %8s %6s | %10s %10s %10s %11s %9s\n", "benchmark", "ST IPC", "class",
              "l1d misses", "l2 misses", "mispreds", "l2/1kinst", "cycles");
  for (const auto& b : spec_benchmarks()) {
    if (!only.empty() && b.name != only) continue;
    const MachineConfig cfg = single_thread_config();
    const RunResult r = run_benchmarks(cfg, {b}, insts);
    const u64 committed = r.threads[0].committed;
    const u64 l1d = r.counters.count("core.loads.l1_miss") ? r.counters.at("core.loads.l1_miss") : 0;
    const u64 l2 = r.counters.count("core.loads.l2_miss") ? r.counters.at("core.loads.l2_miss") : 0;
    const u64 mp = r.counters.count("bpred.branch.cond_mispredict")
                       ? r.counters.at("bpred.branch.cond_mispredict")
                       : 0;
    std::printf("%-9s %8.3f %6s | %10llu %10llu %10llu %11.2f %9llu\n", b.name.c_str(),
                r.threads[0].ipc, class_name(b.expected_class),
                static_cast<unsigned long long>(l1d), static_cast<unsigned long long>(l2),
                static_cast<unsigned long long>(mp),
                committed ? 1000.0 * static_cast<double>(l2) / static_cast<double>(committed)
                          : 0.0,
                static_cast<unsigned long long>(r.cycles));
    if (opts.get_bool("dump", false)) {
      for (const auto& [k, v] : r.counters)
        std::printf("    %-40s %llu\n", k.c_str(), static_cast<unsigned long long>(v));
    }
  }
  return 0;
}
