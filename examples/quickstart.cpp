// Quickstart: run one 4-thread SPEC mix on the Table 1 machine with and
// without the two-level ROB, and print the paper's metrics.
//
//   ./quickstart [mix=1] [insts=200000] [threshold=16]
#include <cstdio>

#include "common/config.hpp"
#include "sim/experiment.hpp"

using namespace tlrob;

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  const u32 mix_id = static_cast<u32>(opts.get_u64("mix", 1));
  const u64 insts = opts.get_u64("insts", kDefaultCommitTarget);
  const u32 threshold = static_cast<u32>(opts.get_u64("threshold", 16));

  const Mix& mix = table2_mix(mix_id);
  std::printf("%s: %s, %s, %s, %s  (%s)\n\n", mix.name.c_str(), mix.benchmarks[0].c_str(),
              mix.benchmarks[1].c_str(), mix.benchmarks[2].c_str(), mix.benchmarks[3].c_str(),
              mix.classification.c_str());

  const MixOutcome base = run_mix(baseline32_config(), mix, insts);
  const MixOutcome rrob =
      run_mix(two_level_config(RobScheme::kReactive, threshold), mix, insts);

  std::printf("%-10s %12s %12s\n", "thread", "base IPC", "R-ROB IPC");
  for (size_t t = 0; t < base.run.threads.size(); ++t)
    std::printf("%-10s %12.4f %12.4f\n", base.run.threads[t].benchmark.c_str(),
                base.mt_ipc[t], rrob.mt_ipc[t]);

  std::printf("\nfair throughput:  baseline_32 %.4f   2-level R-ROB%u %.4f   (%+.1f%%)\n",
              base.ft, threshold, rrob.ft, 100.0 * (rrob.ft / base.ft - 1.0));
  std::printf("total throughput: baseline_32 %.4f   2-level R-ROB%u %.4f\n", base.throughput,
              threshold, rrob.throughput);
  std::printf("second-level allocations: %llu (busy %llu of %llu cycles)\n",
              static_cast<unsigned long long>(rrob.run.counters.at("rob2.allocations")),
              static_cast<unsigned long long>(rrob.run.counters.at("rob2.busy_cycles")),
              static_cast<unsigned long long>(rrob.run.cycles));
  return 0;
}
