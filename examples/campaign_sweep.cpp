// Programmatic use of the campaign runner (src/runner): build a declarative
// sweep spec, run it on the work-stealing pool, stream records into JSON
// lines and a custom sink, and read the aggregated result back.
//
//   ./campaign_sweep [insts=8000] [warmup=2000] [jobs=0]
#include <cstdio>
#include <sstream>

#include "common/config.hpp"
#include "runner/engine.hpp"
#include "runner/render.hpp"
#include "common/thread_pool.hpp"

using namespace tlrob;
using namespace tlrob::runner;

namespace {

/// Sinks are just record consumers — a custom one composes with the
/// built-in JSONL/CSV/table sinks and sees records in the same canonical
/// order.
class BestCellSink : public ResultSink {
 public:
  void emit(const JobRecord& rec) override {
    if (rec.ok() && rec.ft > best_ft_) {
      best_ft_ = rec.ft;
      best_ = rec.config + " on " + rec.mix;
    }
  }
  void end() override {
    std::printf("best cell: %s (FT %.4f)\n", best_.c_str(), best_ft_);
  }

 private:
  double best_ft_ = 0.0;
  std::string best_;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);

  CampaignSpec spec;
  spec.name = "example_sweep";
  spec.columns = {
      {"Baseline_32", baseline32_config(), 0},
      {"R-ROB8", two_level_config(RobScheme::kReactive, 8), 0},
      {"R-ROB16", two_level_config(RobScheme::kReactive, 16), 0},
  };
  spec.mixes = {table2_mix(1), table2_mix(5), table2_mix(10)};
  spec.lengths = {{opts.get_u64("insts", 8000), opts.get_u64("warmup", 2000)}};

  std::ostringstream jsonl;
  JsonlSink json_sink(jsonl);
  BestCellSink best_sink;
  FtTableSink table(stdout, "Example sweep: reactive threshold on three mixes");

  EngineOptions eng;
  eng.jobs = WorkStealingPool::resolve_threads(
      static_cast<u32>(opts.get_u64("jobs", 0)));
  eng.sinks = {&table, &json_sink, &best_sink};

  const CampaignResult result = run_campaign(spec, eng);

  std::printf("\n%zu records (%u ok, %u failed); R-ROB16 average FT %.4f\n",
              result.records.size(), result.ok, result.failed,
              column_average_ft(result, "R-ROB16"));
  std::printf("first JSON record:\n%s\n",
              jsonl.str().substr(0, jsonl.str().find('\n')).c_str());
  return 0;
}
