// Tests for the pipeline invariant-audit subsystem (src/verify).
//
// Two halves:
//   * clean runs — every allocation scheme runs violation-free at audit
//     level "full" with abort-on-violation armed, so the checks themselves
//     are known not to false-positive on any scheme's legal states;
//   * injected corruption — each check is driven to fire by deliberately
//     breaking the structure it guards through the test-only hooks, so a
//     future refactor cannot silently turn a check into a no-op.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/presets.hpp"
#include "sim/smt_sim.hpp"
#include "verify/invariant_checker.hpp"
#include "workload/mixes.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob {
namespace {

AuditConfig full_audit(bool abort_on_violation) {
  AuditConfig audit;
  audit.level = AuditLevel::kFull;
  audit.cheap_interval = 1;
  audit.full_interval = 16;
  audit.abort_on_violation = abort_on_violation;
  return audit;
}

/// A four-thread memory-bound mix on the given scheme with auditing armed.
SmtCore make_audited_core(RobScheme scheme, bool abort_on_violation = false) {
  MachineConfig cfg = two_level_config(scheme, 16);
  cfg.audit = full_audit(abort_on_violation);
  return SmtCore(cfg, mix_benchmarks(table2_mix(1)));
}

/// Ticks until `pred()` holds (tripping the audit exception if armed).
template <typename Pred>
bool tick_until(SmtCore& core, u64 max_cycles, Pred&& pred) {
  for (u64 i = 0; i < max_cycles; ++i) {
    if (pred()) return true;
    core.tick();
  }
  return pred();
}

bool any_violation_of(const SmtCore& core, const std::string& check) {
  const auto& vs = const_cast<SmtCore&>(core).auditor().violations();
  return std::any_of(vs.begin(), vs.end(),
                     [&](const AuditViolation& v) { return v.check == check; });
}

// ---------------------------------------------------------------------------
// Configuration plumbing
// ---------------------------------------------------------------------------

TEST(AuditConfig, LevelParsingRoundTrips) {
  EXPECT_EQ(parse_audit_level("off"), AuditLevel::kOff);
  EXPECT_EQ(parse_audit_level("cheap"), AuditLevel::kCheap);
  EXPECT_EQ(parse_audit_level("full"), AuditLevel::kFull);
  EXPECT_THROW(parse_audit_level("loud"), std::invalid_argument);
  EXPECT_STREQ(audit_level_name(AuditLevel::kCheap), "cheap");
}

TEST(AuditConfig, DescribeMentionsAuditLevel) {
  MachineConfig cfg = baseline32_config();
  cfg.audit.level = AuditLevel::kFull;
  EXPECT_NE(describe(cfg).find("invariant audit        full"), std::string::npos);
}

TEST(AuditConfig, OffLevelRunsNoChecks) {
  MachineConfig cfg = single_thread_config();
  cfg.audit = AuditConfig{};  // level off regardless of environment
  cfg.audit.level = AuditLevel::kOff;
  SmtCore core(cfg, {spec_benchmark("crafty")});
  core.run(2000);
  EXPECT_EQ(core.auditor().checks_executed(), 0u);
  EXPECT_EQ(core.auditor().total_violations(), 0u);
}

// ---------------------------------------------------------------------------
// Clean runs: all four allocation schemes are violation-free at level full
// ---------------------------------------------------------------------------

class CleanSchemes : public ::testing::TestWithParam<RobScheme> {};

TEST_P(CleanSchemes, FullAuditRunsViolationFree) {
  SmtCore core = make_audited_core(GetParam(), /*abort_on_violation=*/true);
  EXPECT_NO_THROW(core.run(4000));
  EXPECT_GT(core.auditor().checks_executed(), 0u);
  EXPECT_EQ(core.auditor().total_violations(), 0u);
  EXPECT_EQ(core.audit_now(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllocationSchemes, CleanSchemes,
                         ::testing::Values(RobScheme::kReactive,
                                           RobScheme::kRelaxedReactive, RobScheme::kCdr,
                                           RobScheme::kPredictive, RobScheme::kBaseline,
                                           RobScheme::kAdaptive),
                         [](const auto& info) {
                           std::string name = rob_scheme_name(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(CleanRuns, SingleThreadFullAudit) {
  MachineConfig cfg = single_thread_config();
  cfg.audit = full_audit(true);
  SmtCore core(cfg, {spec_benchmark("art")});
  EXPECT_NO_THROW(core.run(4000));
  EXPECT_EQ(core.auditor().total_violations(), 0u);
}

// ---------------------------------------------------------------------------
// Injected corruption: each check fires on the defect it guards
// ---------------------------------------------------------------------------

TEST(InjectedCorruption, RobOrderSwapFiresRobOrder) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  ASSERT_TRUE(tick_until(core, 20000, [&] { return core.rob(0).size() >= 2; }));
  ASSERT_EQ(core.audit_now(), 0u);
  core.rob_for_test(0).test_only_swap(0, 1);
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "rob.order"));
}

TEST(InjectedCorruption, DuplicateCommitFiresCommitOrder) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  ASSERT_TRUE(tick_until(core, 20000, [&] { return core.committed(0) >= 10; }));
  const u64 last = core.auditor().last_committed()[0];
  ASSERT_GT(last, 0u);
  core.auditor().on_commit(0, last, core.now());  // same instruction twice
  EXPECT_TRUE(any_violation_of(core, "commit.order"));
}

TEST(InjectedCorruption, UnownedExtraCapacityFiresOwnership) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  core.run(500);
  ASSERT_EQ(core.audit_now(), 0u);
  // Grant a window with no allocation protocol behind it: nobody owns the
  // partition (or another thread does), so thread 0's grant is illegal.
  if (core.second_level().owned_by(0)) core.second_level().test_only_set_owner(1);
  core.rob_for_test(0).grant_extra(core.second_level().entries());
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "rob2.ownership"));
}

TEST(InjectedCorruption, PartialGrantFiresAtomicUnitContract) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  // Wait for a legitimate allocation, then shave the grant: splitting the
  // partition violates the paper's atomic-unit allocation.
  const bool allocated = tick_until(core, 400000, [&] {
    return core.second_level().owner() != SecondLevelRob::kNoOwner &&
           core.rob(core.second_level().owner()).extra() > 0;
  });
  ASSERT_TRUE(allocated) << "no second-level allocation in 400k cycles";
  ASSERT_EQ(core.audit_now(), 0u);
  const ThreadId owner = core.second_level().owner();
  core.rob_for_test(owner).grant_extra(core.second_level().entries() / 2);
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "rob2.ownership"));
}

TEST(InjectedCorruption, CompletedTriggerLoadFiresTriggerCheck) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  const bool allocated = tick_until(core, 400000, [&] {
    return core.second_level().owner() != SecondLevelRob::kNoOwner &&
           core.rob(core.second_level().owner()).extra() > 0;
  });
  ASSERT_TRUE(allocated) << "no second-level allocation in 400k cycles";
  ASSERT_EQ(core.audit_now(), 0u);
  // Forge the trigger load's result-valid bit: the grant is no longer
  // justified by an outstanding miss, which the controller should have
  // noticed and revoked.
  const ThreadId owner = core.second_level().owner();
  const u64 trigger = core.rob_controller().audit_trigger_tseq(owner);
  DynInst* load = core.rob_for_test(owner).find(trigger);
  ASSERT_NE(load, nullptr);
  load->executed = true;
  load->complete_cycle = core.now();  // keep dod.execflag quiet; this test is rob2.trigger
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "rob2.trigger"));
}

TEST(InjectedCorruption, FreeCountSkewFiresIqCounts) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  core.run(500);
  ASSERT_EQ(core.audit_now(), 0u);
  core.iq_for_test().test_only_corrupt_free(+1);
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "iq.counts"));
  core.iq_for_test().test_only_corrupt_free(-1);  // restore for teardown sanity
  EXPECT_EQ(core.audit_now(), 0u) << core.auditor().report();
}

TEST(InjectedCorruption, LsqSlotDoubleFreeFiresLsqOccupancy) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  ASSERT_TRUE(tick_until(core, 20000, [&] {
    for (ThreadId t = 0; t < core.config().num_threads; ++t)
      if (core.lsq_for_test(t).occupancy() > 0) return true;
    return false;
  }));
  ASSERT_EQ(core.audit_now(), 0u);
  for (ThreadId t = 0; t < core.config().num_threads; ++t) {
    if (core.lsq_for_test(t).occupancy() == 0) continue;
    core.lsq_for_test(t).test_only_drop_front();
    break;
  }
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "lsq.occupancy"));
}

TEST(InjectedCorruption, LeakedRenameRegisterFiresRenameAccounting) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  core.run(500);
  ASSERT_EQ(core.audit_now(), 0u);
  core.rename_unit().test_only_leak_free_reg();
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "rename.accounting"));
}

TEST(InjectedCorruption, ForgedMissFlagFiresOutstandingRecount) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  ASSERT_TRUE(tick_until(core, 20000, [&] { return core.rob(0).size() >= 1; }));
  ASSERT_EQ(core.audit_now(), 0u);
  // Forge an l2_counted flag the thread's outstanding counter never saw.
  bool forged = false;
  core.rob_for_test(0).for_each([&](DynInst& d) {
    if (!forged && !d.l2_counted) {
      d.l2_counted = true;
      forged = true;
    }
  });
  ASSERT_TRUE(forged);
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "dod.outstanding"));
}

TEST(InjectedCorruption, ForgedResultValidBitFiresExecFlag) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  ASSERT_TRUE(tick_until(core, 20000, [&] {
    bool has_unexecuted = false;
    core.rob(0).for_each([&](const DynInst& d) { has_unexecuted |= !d.executed; });
    return has_unexecuted;
  }));
  ASSERT_EQ(core.audit_now(), 0u);
  // Set the result-valid bit without completion bookkeeping: the DoD
  // counter would silently under-count every window containing this entry.
  bool forged = false;
  core.rob_for_test(0).for_each([&](DynInst& d) {
    if (!forged && !d.executed) {
      d.executed = true;
      forged = true;
    }
  });
  ASSERT_TRUE(forged);
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "dod.execflag"));
}

TEST(InjectedCorruption, RecycledLsqPointerFiresPoolLiveness) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  ASSERT_TRUE(tick_until(core, 20000, [&] {
    for (ThreadId t = 0; t < core.config().num_threads; ++t)
      if (core.lsq_for_test(t).occupancy() > 0) return true;
    return false;
  }));
  ASSERT_EQ(core.audit_now(), 0u);
  // Recycle ROB slots out from under the LSQ: pop heads until the LSQ's
  // oldest entry points at a slot the ring has reclaimed. This is the exact
  // stale-pointer defect the ring slab makes possible and heap allocation
  // hid behind allocator luck.
  for (ThreadId t = 0; t < core.config().num_threads; ++t) {
    LoadStoreQueue& lsq = core.lsq_for_test(t);
    if (lsq.occupancy() == 0) continue;
    u64 front_tseq = 0;
    bool first = true;
    lsq.for_each([&](const DynInst& e) {
      if (first) {
        front_tseq = e.tseq;
        first = false;
      }
    });
    ReorderBuffer& rob = core.rob_for_test(t);
    while (rob.head() != nullptr && rob.head()->tseq <= front_tseq) rob.pop_head();
    break;
  }
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "pool.liveness"));
}

TEST(InjectedCorruption, SkewedPendingCountFiresEventWheel) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  core.run(500);
  ASSERT_EQ(core.audit_now(), 0u);
  core.wheel_for_test().test_only_corrupt_pending(+1);
  EXPECT_GT(core.audit_now(), 0u);
  EXPECT_TRUE(any_violation_of(core, "events.wheel"));
  core.wheel_for_test().test_only_corrupt_pending(-1);  // restore for teardown sanity
  EXPECT_EQ(core.audit_now(), 0u) << core.auditor().report();
}

TEST(InjectedCorruption, AbortOnViolationThrowsStructuredReport) {
  SmtCore core = make_audited_core(RobScheme::kReactive, /*abort_on_violation=*/true);
  EXPECT_NO_THROW(core.run(500));
  core.iq_for_test().test_only_corrupt_free(+1);
  try {
    core.audit_now();
    FAIL() << "expected AuditFailure";
  } catch (const AuditFailure& e) {
    EXPECT_NE(std::string(e.what()).find("iq.counts"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

TEST(InjectedCorruption, ViolationsAreCountedInRunResultStats) {
  SmtCore core = make_audited_core(RobScheme::kReactive);
  core.run(500);
  core.rename_unit().test_only_leak_free_reg();
  core.audit_now();
  const RunResult r = core.snapshot_result();
  const auto it = r.counters.find("audit.violations.rename.accounting");
  ASSERT_NE(it, r.counters.end());
  EXPECT_GT(it->second, 0u);
  EXPECT_GT(r.counters.at("audit.checks_run"), 0u);
}

}  // namespace
}  // namespace tlrob
