// Golden-run regression suite: every figure/table preset, re-executed at the
// short golden run length and compared bit-for-bit against the fixtures
// recorded under tests/golden/ (see src/runner/golden.hpp). One TEST per
// preset so ctest parallelises across presets.
//
// A failure here means the architectural model changed: cycles, per-thread
// committed counts, IPC, L2 misses or second-level grants drifted on some
// cell. Performance work on the simulator core must keep this suite green;
// deliberate model changes regenerate fixtures via `tlrob-golden --regen`
// (see EXPERIMENTS.md).

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runner/golden.hpp"
#include "runner/presets.hpp"

namespace tlrob::runner {
namespace {

#ifndef TLROB_GOLDEN_DIR
#error "TLROB_GOLDEN_DIR must point at tests/golden (set in tests/CMakeLists.txt)"
#endif

std::string fixture_path(const std::string& preset) {
  return std::string(TLROB_GOLDEN_DIR) + "/" + preset + ".json";
}

GoldenFile load_fixture(const std::string& preset) {
  const std::string path = fixture_path(preset);
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "missing golden fixture " << path
                  << " — record it with: tlrob-golden --regen --preset " << preset;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return golden_from_json(ss.str());
}

void check_preset(const std::string& preset) {
  const GoldenFile fixture = load_fixture(preset);
  if (fixture.rows.empty()) return;  // load_fixture already failed the test
  EXPECT_EQ(fixture.preset, preset);
  const RunLengthSpec length = golden_run_length();
  ASSERT_EQ(fixture.length.insts, length.insts)
      << "fixture recorded at a different run length; regenerate deliberately";
  ASSERT_EQ(fixture.length.warmup, length.warmup)
      << "fixture recorded at a different run length; regenerate deliberately";

  const std::vector<GoldenRow> actual = golden_fingerprints(preset);
  const std::string diff = golden_diff(fixture.rows, actual);
  EXPECT_EQ(diff, "") << "architectural drift on preset " << preset << ": " << diff;
}

// The explicit preset list below must cover src/runner/presets.cpp exactly;
// this test fails the moment a preset is added without a golden TEST.
const std::vector<std::string> kCoveredPresets = {
    "fig1",          "fig2",
    "fig3",          "fig4",
    "fig5",          "fig6",
    "fig7",          "table2",
    "ablation_threshold", "ablation_fetch_policy",
    "ablation_regfile",   "ablation_early_release",
    "ablation_adaptive",  "trace_synth",
    "cmp_mix",            "cmp_trace",
};

TEST(GoldenRuns, SuiteCoversEveryPreset) {
  const std::set<std::string> covered(kCoveredPresets.begin(), kCoveredPresets.end());
  for (const std::string& name : preset_names()) {
    EXPECT_TRUE(covered.count(name))
        << "preset " << name << " has no golden-run test; add it to kCoveredPresets, "
        << "add a TEST below, and record its fixture with tlrob-golden --regen";
  }
  EXPECT_EQ(covered.size(), preset_names().size())
      << "kCoveredPresets lists a preset that no longer exists";
}

TEST(GoldenRuns, Fig1) { check_preset("fig1"); }
TEST(GoldenRuns, Fig2) { check_preset("fig2"); }
TEST(GoldenRuns, Fig3) { check_preset("fig3"); }
TEST(GoldenRuns, Fig4) { check_preset("fig4"); }
TEST(GoldenRuns, Fig5) { check_preset("fig5"); }
TEST(GoldenRuns, Fig6) { check_preset("fig6"); }
TEST(GoldenRuns, Fig7) { check_preset("fig7"); }
TEST(GoldenRuns, Table2) { check_preset("table2"); }
TEST(GoldenRuns, AblationThreshold) { check_preset("ablation_threshold"); }
TEST(GoldenRuns, AblationFetchPolicy) { check_preset("ablation_fetch_policy"); }
TEST(GoldenRuns, AblationRegfile) { check_preset("ablation_regfile"); }
TEST(GoldenRuns, AblationEarlyRelease) { check_preset("ablation_early_release"); }
TEST(GoldenRuns, AblationAdaptive) { check_preset("ablation_adaptive"); }
// The 14th fingerprint: a trace-workload cell (synthesized in memory via the
// tracegen backend, so no fixture file beyond the JSON is needed). Covers
// the whole trace frontend — decode, lowering, replay, rewind — against
// drift, alongside the 13 synthetic presets.
TEST(GoldenRuns, TraceSynth) { check_preset("trace_synth"); }
// CMP fingerprints: two SMT cores behind the shared LLC + banked DRAM
// backend. cmp_mix pins the lockstep engine and cross-core contention on
// paired Table 2 mixes; cmp_trace pins per-core trace assignment. Any drift
// in LLC/DRAM timing, MSHR merging, or the core-major thread mapping lands
// here as a cycle/IPC diff.
TEST(GoldenRuns, CmpMix) { check_preset("cmp_mix"); }
TEST(GoldenRuns, CmpTrace) { check_preset("cmp_trace"); }

// The fixtures must witness the second-level machinery actually engaging at
// the golden run length: a fixture where every two-level scheme records zero
// grants would let the whole R-ROB/P-ROB path drift undetected.
TEST(GoldenRuns, FixturesExerciseSecondLevel) {
  u64 grants = 0;
  for (const char* preset : {"fig2", "fig4", "fig5", "fig6"}) {
    const GoldenFile fixture = load_fixture(preset);
    for (const GoldenRow& row : fixture.rows) grants += row.second_level_grants;
  }
  EXPECT_GT(grants, 0u) << "no fixture records a second-level grant; the golden "
                           "run length is too short to exercise two-level schemes";
}

// JSON round-trip: serialising the parsed fixture reproduces the file
// byte-for-byte, so regens that change nothing are no-op diffs.
TEST(GoldenRuns, FixtureRoundTripIsByteIdentical) {
  const std::string path = fixture_path("fig2");
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const GoldenFile fixture = golden_from_json(text);
  EXPECT_EQ(golden_to_json(fixture.preset, fixture.rows), text);
}

}  // namespace
}  // namespace tlrob::runner
