// tlrob-lint fixture: seeded D3 violations against d3_registry_violation.md.
// Expected findings: "unregistered_counter" has no registry entry (forward
// direction), and the registry's "widget.ghost_counter" is referenced by no
// code (reverse direction, reported against the registry file).
#include <cstdint>
#include <string>

struct StatGroup {
  std::uint64_t& counter(const std::string&);
};

void count_events(StatGroup& stats) {
  stats.counter("frobs") += 1;                 // registered: widget.frobs
  stats.counter("unregistered_counter") += 1;  // D3: not in the registry
}
