// tlrob-lint fixture: D3-clean counter usage against d3_registry_clean.md.
// Every literal matches a registry entry (unprefixed component literals via
// the merged-name suffix, dynamic families via the pattern), and every
// exact registry entry is referenced. Expected findings: none.
#include <cstdint>
#include <map>
#include <string>

struct StatGroup {
  std::uint64_t& counter(const std::string&);
  double& average(const std::string&);
};

void count_events(StatGroup& stats, std::map<std::string, std::uint64_t>& counters,
                  unsigned tid, std::uint64_t cycles) {
  stats.counter("frobs") += 1;                              // widget.frobs
  stats.average("defrags") += 0.5;                          // widget.defrags
  stats.counter("thread." + std::to_string(tid)) += 1;      // widget.thread.*
  counters["top.total_cycles"] = cycles;                    // exact
}
