// tlrob-lint fixture: RAII locking C2 must NOT flag. Expected findings:
// none — MutexLock releases on every exit path, and lock()/unlock() as
// *member function definitions* (the wrapper itself) are not call sites.
struct Mutex;

struct MutexLock {
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

extern Mutex mu;
extern int shared_value;

int read_value(bool fast_path) {
  MutexLock lock(mu);
  if (fast_path) return shared_value;
  return shared_value * 2;
}
