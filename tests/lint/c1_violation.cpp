// tlrob-lint fixture: seeded C1 violation (never compiled, only lexed).
// A mutex that no TLROB_GUARDED_BY / TLROB_PT_GUARDED_BY names guards
// nothing the thread-safety analysis can see. Expected findings: one, on
// the orphan_mu_ declaration.
#include <cstdint>
#include <mutex>

class Emitter {
 public:
  void bump() { ++records_; }

 private:
  std::mutex orphan_mu_;  // C1: guards nothing
  std::uint64_t records_ = 0;
};
