// tlrob-lint fixture: annotated locking C1 must NOT flag.
// Every declared mutex is named by at least one TLROB_GUARDED_BY /
// TLROB_PT_GUARDED_BY annotation. Expected findings: none.
#include <cstdint>

#define TLROB_CAPABILITY(x)
#define TLROB_GUARDED_BY(x)
#define TLROB_PT_GUARDED_BY(x)

class TLROB_CAPABILITY("mutex") Mutex {};

class Emitter {
 private:
  Mutex mu_;
  std::uint64_t records_ TLROB_GUARDED_BY(mu_) = 0;
  std::uint64_t* sink_ TLROB_PT_GUARDED_BY(mu_) = nullptr;
};
