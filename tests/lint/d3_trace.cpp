// tlrob-lint fixture: D3-clean trace-counter usage against
// d3_registry_trace.md. The export side mirrors TraceThreadSource
// (src/trace/source.cpp): exact aggregate names written via counters[...],
// per-thread names built dynamically from a prefix variable (invisible to
// the lexical check — the registry's trace.t* pattern covers them when a
// reader spells one out). Expected findings: none.
#include <cstdint>
#include <map>
#include <string>

void export_trace_counters(std::map<std::string, std::uint64_t>& counters,
                           unsigned tid, std::uint64_t decoded, std::uint64_t rewinds) {
  const std::string prefix = "trace.t" + std::to_string(tid) + ".";
  counters[prefix + "records_decoded"] = decoded;    // dynamic: not captured
  counters["trace.records_decoded"] += decoded;      // trace.records_decoded
  counters["trace.rewinds"] += rewinds;              // trace.rewinds
  counters["trace.unmapped_fallbacks"] += 0;         // trace.unmapped_fallbacks
  counters["trace.decode_stall_cycles"] += 0;        // trace.decode_stall_cycles
}

std::uint64_t read_thread_zero(const std::map<std::string, std::uint64_t>& counters) {
  return counters.at("trace.t0.records_decoded");    // matches pattern trace.t*
}
