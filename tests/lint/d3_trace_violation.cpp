// tlrob-lint fixture: seeded D3 violation against d3_registry_trace.md.
// Every registered trace aggregate is referenced (so the reverse direction
// stays quiet), but "trace.bogus_stat" is exported without a registry
// entry. Expected findings: exactly one, forward direction.
#include <cstdint>
#include <map>
#include <string>

void export_trace_counters(std::map<std::string, std::uint64_t>& counters,
                           std::uint64_t decoded) {
  counters["trace.records_decoded"] += decoded;
  counters["trace.rewinds"] += 1;
  counters["trace.unmapped_fallbacks"] += 0;
  counters["trace.decode_stall_cycles"] += 0;
  counters["trace.bogus_stat"] += 1;  // D3: not in the registry
}
