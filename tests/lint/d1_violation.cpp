// tlrob-lint fixture: seeded D1 violations (never compiled, only lexed).
// Expected findings: range-for over an unordered_map (line of the `for`),
// plus an explicit .begin() iterator walk.
#include <cstdio>
#include <string>
#include <unordered_map>

void emit_stats(const std::unordered_map<std::string, int>& counters_by_name) {
  std::unordered_map<std::string, int> local = counters_by_name;
  for (const auto& [name, value] : local) {  // D1: hash-order reaches stdout
    std::printf("%s=%d\n", name.c_str(), value);
  }
  auto it = local.begin();  // D1: explicit iterator walk
  (void)it;
}
