// tlrob-lint fixture: seeded C2 violations (never compiled, only lexed).
// Naked .lock()/.unlock() pairs leak the mutex on every early return and
// exception path. Expected findings: the .lock(), the .try_lock(), and the
// .unlock() calls.
#include <mutex>

std::mutex mu;
int shared_value;

int read_value(bool fast_path) {
  mu.lock();  // C2: naked lock
  if (fast_path) {
    int v = shared_value;
    mu.unlock();  // C2: naked unlock
    return v;
  }
  int v = shared_value * 2;
  mu.unlock();  // C2: naked unlock
  return v;
}

bool try_read(int* out) {
  if (!mu.try_lock()) return false;  // C2: naked try_lock
  *out = shared_value;
  mu.unlock();  // C2: naked unlock
  return true;
}
