// tlrob-lint fixture: seeded D2 violations (never compiled, only lexed).
// Expected findings: the <random> and <ctime> includes, a random_device
// declaration, rand()/time() calls, and a pointer-keyed map.
#include <map>
#include <cstdlib>
#include <ctime>
#include <random>

struct DynInst;

unsigned roll_latency() {
  std::random_device rd;  // D2: host entropy
  unsigned r = static_cast<unsigned>(rand());  // D2: libc PRNG
  unsigned t = static_cast<unsigned>(time(nullptr));  // D2: wall clock
  return rd() + r + t;
}

// D2: address-order key — ASLR reshuffles iteration order across runs.
std::map<DynInst*, unsigned> inflight_by_pointer;
