// tlrob-lint fixture: the determinism-safe shapes D1 must NOT flag.
// Unordered containers are fine as lookup tables; only iterating one in an
// emission path is a violation. Expected findings: none.
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

void emit_stats(const std::unordered_map<std::string, int>& lookup,
                const std::vector<std::string>& names) {
  // Point lookups into an unordered container: fine.
  const auto hit = lookup.find("core.commit.insts");
  if (hit != lookup.end()) std::printf("found %d\n", hit->second);

  // Emission iterates a deterministically ordered structure, with the
  // unordered container used only for point lookups.
  std::map<std::string, int> ordered;
  for (const std::string& name : names) {
    const auto it = lookup.find(name);
    if (it != lookup.end()) ordered.emplace(name, it->second);
  }
  for (const auto& [name, value] : ordered) {
    std::printf("%s=%d\n", name.c_str(), value);
  }
}
