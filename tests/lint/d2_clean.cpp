// tlrob-lint fixture: determinism-safe shapes D2 must NOT flag, including a
// reviewed suppression (the same mechanism the self-profiler uses).
// Expected findings: none.
#include <chrono>  // tlrob-lint: allow(D2) fixture: host-side measurement, never architectural state
#include <cstdint>
#include <map>

struct Rng {  // seeded, deterministic — the only sanctioned entropy source
  std::uint64_t state;
  std::uint64_t next() { return state = state * 6364136223846793005ull + 1442695040888963407ull; }
};

unsigned roll_latency(Rng& rng) { return static_cast<unsigned>(rng.next() % 7u); }

// Value-typed keys iterate in value order: deterministic.
std::map<std::uint64_t, unsigned> inflight_by_seq;

double host_elapsed_ms() {
  // tlrob-lint: allow(D2) fixture: wall-clock for a progress meter only
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t0.time_since_epoch()).count();
}
