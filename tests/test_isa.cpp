// Unit tests for the ISA layer: opcodes, static instructions, programs and
// the program builder's CFG validation.
#include <gtest/gtest.h>

#include "isa/opcode.hpp"
#include "isa/program.hpp"
#include "isa/program_builder.hpp"

namespace tlrob {
namespace {

TEST(Opcode, Classification) {
  EXPECT_TRUE(is_control(OpClass::kBranch));
  EXPECT_TRUE(is_control(OpClass::kJump));
  EXPECT_TRUE(is_control(OpClass::kCall));
  EXPECT_TRUE(is_control(OpClass::kReturn));
  EXPECT_FALSE(is_control(OpClass::kIntAlu));
  EXPECT_TRUE(is_memory(OpClass::kLoad));
  EXPECT_TRUE(is_memory(OpClass::kStore));
  EXPECT_FALSE(is_memory(OpClass::kFpAdd));
  EXPECT_TRUE(is_fp(OpClass::kFpSqrt));
  EXPECT_FALSE(is_fp(OpClass::kLoad));
}

TEST(Opcode, NamesAreStable) {
  EXPECT_EQ(op_class_name(OpClass::kLoad), "load");
  EXPECT_EQ(op_class_name(OpClass::kFpMult), "fp_mult");
  EXPECT_EQ(op_class_name(OpClass::kReturn), "return");
}

TEST(StaticInst, RegisterHelpers) {
  EXPECT_FALSE(is_fp_reg(ireg(5)));
  EXPECT_TRUE(is_fp_reg(freg(5)));
  EXPECT_EQ(ireg(33), ireg(1));  // wraps within the int file
  EXPECT_EQ(freg(32), freg(0));

  StaticInst si;
  si.op = OpClass::kIntAlu;
  si.dest = ireg(1);
  si.src[0] = ireg(2);
  EXPECT_EQ(si.num_src(), 1);
  EXPECT_TRUE(si.has_dest());
}

TEST(ProgramBuilder, AssignsSequentialPcs) {
  ProgramBuilder pb("p");
  const u32 b0 = pb.current_block();
  pb.int_alu(ireg(1)).int_alu(ireg(2), ireg(1)).jump(b0);
  Program p = pb.build(0, 0, 0x1000);

  ASSERT_TRUE(p.finalized());
  EXPECT_EQ(p.num_static_insts(), 3u);
  EXPECT_EQ(p.block(0).insts[0].pc, 0x1000u);
  EXPECT_EQ(p.block(0).insts[1].pc, 0x1004u);
  EXPECT_EQ(p.block(0).insts[2].pc, 0x1008u);
}

TEST(ProgramBuilder, RejectsControlMidBlock) {
  ProgramBuilder pb("bad");
  const u32 b0 = pb.current_block();
  pb.jump(b0).int_alu(ireg(1));  // jump not at block end
  EXPECT_THROW(pb.build(0, 0), std::logic_error);
}

TEST(ProgramBuilder, RejectsEmptyBlock) {
  ProgramBuilder pb("bad");
  pb.new_block();  // never filled
  pb.int_alu(ireg(1));
  EXPECT_THROW(pb.build(0, 0), std::logic_error);
}

TEST(ProgramBuilder, RejectsBadGeneratorIds) {
  {
    ProgramBuilder pb("bad-agen");
    pb.load(ireg(1), /*agen=*/3);
    EXPECT_THROW(pb.build(/*num_agens=*/1, 0), std::logic_error);
  }
  {
    ProgramBuilder pb("bad-bgen");
    const u32 b0 = pb.current_block();
    pb.branch(/*bgen=*/2, b0);
    EXPECT_THROW(pb.build(0, /*num_bgens=*/1), std::logic_error);
  }
}

TEST(ProgramBuilder, RejectsOutOfRangeTarget) {
  ProgramBuilder pb("bad-target");
  pb.jump(42);
  EXPECT_THROW(pb.build(0, 0), std::logic_error);
}

TEST(ProgramBuilder, RejectsStoreWithDest) {
  ProgramBuilder pb("bad-store");
  StaticInst si;
  si.op = OpClass::kStore;
  si.dest = ireg(1);
  si.agen_id = 0;
  pb.emit(si);
  EXPECT_THROW(pb.build(1, 0), std::logic_error);
}

TEST(ProgramBuilder, ValidMultiBlockProgram) {
  ProgramBuilder pb("ok");
  const u32 entry = pb.current_block();
  const u32 head = pb.new_block();
  const u32 tail = pb.new_block();
  pb.in(entry).int_alu(ireg(1)).jump(head);
  pb.in(head).load(freg(0), 0, ireg(1)).fp_add(freg(1), freg(0), freg(1)).branch(0, head,
                                                                                 ireg(1));
  pb.fallthrough(head, tail);
  pb.in(tail).store(0, freg(1)).jump(head);
  Program p = pb.build(1, 1);
  EXPECT_EQ(p.num_blocks(), 3u);
  EXPECT_EQ(p.num_address_generators(), 1u);
  EXPECT_EQ(p.num_branch_generators(), 1u);
  EXPECT_TRUE(p.finalized());
  EXPECT_THROW(p.finalize(), std::logic_error);  // double finalize
}

}  // namespace
}  // namespace tlrob
