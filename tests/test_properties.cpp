// Property-based / parameterised tests: microarchitectural invariants that
// must hold for every benchmark, scheme and threshold, checked cycle by
// cycle on live cores (TEST_P sweeps per the repository's testing policy).
#include <gtest/gtest.h>

#include <tuple>

#include "sim/experiment.hpp"
#include "sim/smt_sim.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob {
namespace {

// ---------------------------------------------------------------------------
// Every SPEC profile must run standalone: commits progress, no wrong-path
// commits, IPC strictly positive, and its DoD samples are within range.
// ---------------------------------------------------------------------------
class EveryBenchmark : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryBenchmark, RunsStandalone) {
  MachineConfig cfg = single_thread_config();
  SmtCore core(cfg, {spec_benchmark(GetParam())});
  const RunResult r = core.run(4000);
  EXPECT_GE(r.threads[0].committed, 4000u);
  EXPECT_GT(r.threads[0].ipc, 0.0);
  EXPECT_EQ(run_counter(r, "core.commit.wrong_path_bug"), 0u);
}

TEST_P(EveryBenchmark, RunsUnderTwoLevelRob) {
  MachineConfig cfg = two_level_config(RobScheme::kReactive, 16);
  cfg.num_threads = 2;
  SmtCore core(cfg, {spec_benchmark(GetParam()), spec_benchmark("crafty")});
  const RunResult r = core.run(4000);
  EXPECT_GT(r.threads[0].committed, 0u);
  EXPECT_GT(r.threads[1].committed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, EveryBenchmark,
                         ::testing::Values("ammp", "art", "mgrid", "apsi", "swim", "lucas",
                                           "equake", "mcf", "twolf", "vpr", "parser",
                                           "vortex", "gap", "perlbmk", "bzip2", "mesa",
                                           "wupwise", "crafty", "eon", "gzip"));

// ---------------------------------------------------------------------------
// Structural invariants, checked every cycle across schemes and mixes.
// ---------------------------------------------------------------------------
using SchemeCase = std::tuple<RobScheme, u32 /*threshold*/, u32 /*mix*/>;

class SchemeInvariants : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeInvariants, CycleByCycle) {
  const auto [scheme, threshold, mix] = GetParam();
  MachineConfig cfg = two_level_config(scheme, threshold);
  SmtCore core(cfg, mix_benchmarks(table2_mix(mix)));

  for (int i = 0; i < 30000; ++i) {
    core.tick();
    u32 iq_total = 0;
    u32 grants = 0;
    for (ThreadId t = 0; t < cfg.num_threads; ++t) {
      const ReorderBuffer& rob = core.rob(t);
      // The ROB never exceeds the total entries that exist, and beyond the
      // first level it holds instructions only while it owns the partition
      // (including the revoke-then-drain tail of a lease, where capacity has
      // snapped back but the occupied second-level entries are still
      // draining out).
      if (scheme == RobScheme::kAdaptive) {
        // Private growth bounded by the thread's own physical ROB.
        ASSERT_LE(rob.size(),
                  cfg.rob_first_level + cfg.rob.adaptive_max_extra + cfg.rob.adaptive_step);
        ASSERT_LE(rob.extra(), cfg.rob.adaptive_max_extra);
      } else {
        ASSERT_LE(rob.size(), cfg.rob_first_level + cfg.rob_second_level);
        ASSERT_LE(rob.capacity(), cfg.rob_first_level + cfg.rob_second_level);
        if (rob.size() > cfg.rob_first_level) {
          ASSERT_TRUE(core.second_level().owned_by(t)) << "non-owner overflowed level 1";
        }
        if (rob.extra() > 0) {
          ++grants;
          ASSERT_TRUE(core.second_level().owned_by(t));
          ASSERT_EQ(rob.extra(), cfg.rob_second_level);
          ASSERT_LE(rob.size(), rob.capacity());
        }
      }
      iq_total += core.issue_queue().occupancy(t);
    }
    ASSERT_LE(grants, 1u) << "the second level is an atomic single-owner unit";
    ASSERT_EQ(iq_total, core.issue_queue().occupancy());
    ASSERT_LE(core.issue_queue().occupancy(), cfg.iq_entries);
  }

  const RunResult r = core.snapshot_result();
  // Allocation/release accounting balances (an allocation may be live).
  const u64 alloc = run_counter(r, "rob2.allocations");
  const u64 releases =
      run_counter(r, "rob.releases");
  EXPECT_LE(releases, alloc);
  EXPECT_LE(alloc - releases, 1u);
  EXPECT_EQ(run_counter(r, "core.commit.wrong_path_bug"), 0u);
  if (scheme == RobScheme::kBaseline) {
    EXPECT_EQ(alloc, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndMixes, SchemeInvariants,
    ::testing::Values(SchemeCase{RobScheme::kBaseline, 16, 1},
                      SchemeCase{RobScheme::kReactive, 16, 1},
                      SchemeCase{RobScheme::kReactive, 1, 2},
                      SchemeCase{RobScheme::kReactive, 31, 5},
                      SchemeCase{RobScheme::kRelaxedReactive, 15, 1},
                      SchemeCase{RobScheme::kRelaxedReactive, 15, 9},
                      SchemeCase{RobScheme::kCdr, 15, 2},
                      SchemeCase{RobScheme::kCdr, 15, 11},
                      SchemeCase{RobScheme::kPredictive, 3, 1},
                      SchemeCase{RobScheme::kPredictive, 5, 6},
                      SchemeCase{RobScheme::kPredictive, 16, 10},
                      SchemeCase{RobScheme::kAdaptive, 16, 1},
                      SchemeCase{RobScheme::kAdaptive, 16, 8}));

// ---------------------------------------------------------------------------
// Commit-order property: committed instruction counts are monotone and the
// core conserves instructions (fetched >= dispatched >= committed).
// ---------------------------------------------------------------------------
class ConservationCase : public ::testing::TestWithParam<u32 /*mix*/> {};

TEST_P(ConservationCase, InstructionAccounting) {
  SmtCore core(two_level_config(RobScheme::kReactive, 16),
               mix_benchmarks(table2_mix(GetParam())));
  u64 prev[4] = {0, 0, 0, 0};
  for (int i = 0; i < 20000; ++i) {
    core.tick();
    for (ThreadId t = 0; t < 4; ++t) {
      ASSERT_GE(core.committed(t), prev[t]);
      prev[t] = core.committed(t);
    }
  }
  const RunResult r = core.snapshot_result();
  const u64 fetched =
      run_counter(r, "core.fetch.insts") + run_counter(r, "core.fetch.wrong_path");
  EXPECT_GE(fetched, run_counter(r, "core.dispatch.insts") -
                         (run_counter(r, "core.flush.undispatched")));
  EXPECT_GE(run_counter(r, "core.dispatch.insts"), run_counter(r, "core.commit.insts"));
}

INSTANTIATE_TEST_SUITE_P(Mixes, ConservationCase, ::testing::Values(1u, 3u, 7u, 10u));

// ---------------------------------------------------------------------------
// Workload-generator properties over all benchmarks: the architectural
// stream is reproducible for a fixed salt and diverges across salts.
// ---------------------------------------------------------------------------
class StreamProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(StreamProperty, DeterministicPerSalt) {
  const Benchmark& b = spec_benchmark(GetParam());
  ThreadContext a(b, 0x1000000, 42), c(b, 0x1000000, 42);
  for (int i = 0; i < 2000; ++i) {
    const ArchOp x = a.next();
    const ArchOp y = c.next();
    ASSERT_EQ(x.pc, y.pc);
    ASSERT_EQ(x.mem_addr, y.mem_addr);
    ASSERT_EQ(x.taken, y.taken);
  }
}

TEST_P(StreamProperty, ControlFlowStaysInProgram) {
  const Benchmark& b = spec_benchmark(GetParam());
  ThreadContext ctx(b, 0, 7);
  const u32 n = b.program->num_static_insts();
  for (int i = 0; i < 3000; ++i) {
    const ArchOp op = ctx.next();
    ASSERT_GE(op.pc, b.program->code_base());
    ASSERT_LT(op.pc, b.program->code_base() + 4 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, StreamProperty,
                         ::testing::Values("ammp", "art", "mgrid", "apsi", "swim", "lucas",
                                           "equake", "mcf", "twolf", "vpr", "parser",
                                           "vortex", "gap", "perlbmk", "bzip2", "mesa",
                                           "wupwise", "crafty", "eon", "gzip"));

}  // namespace
}  // namespace tlrob
