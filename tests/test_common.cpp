// Unit tests for the common utilities: RNG, stats, histogram, options,
// and the determinism-safe FlatMap.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/flat_map.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace tlrob {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng r(3);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) {
    const u64 v = r.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, GeometricMeanAndCap) {
  Rng r(17);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const u64 v = r.geometric(0.25, 100);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 5000.0, 4.0, 0.4);
  EXPECT_EQ(r.geometric(1.0, 10), 1u);
  EXPECT_EQ(r.geometric(0.0, 10), 10u);
}

TEST(Stats, CounterBasics) {
  StatGroup g;
  g.counter("a").inc();
  g.counter("a").inc(4);
  EXPECT_EQ(g.counter_value("a"), 5u);
  EXPECT_EQ(g.counter_value("missing"), 0u);
  EXPECT_TRUE(g.has_counter("a"));
  EXPECT_FALSE(g.has_counter("missing"));
}

TEST(Stats, AverageBasics) {
  StatGroup g;
  g.average("x").sample(1.0);
  g.average("x").sample(3.0);
  EXPECT_DOUBLE_EQ(g.average("x").mean(), 2.0);
  EXPECT_EQ(g.average("x").count(), 2u);
  EXPECT_DOUBLE_EQ(g.average("never").mean(), 0.0);
}

TEST(Stats, ResetClearsEverything) {
  StatGroup g;
  g.counter("a").inc(3);
  g.average("b").sample(9);
  g.reset();
  EXPECT_EQ(g.counter_value("a"), 0u);
  EXPECT_EQ(g.average("b").count(), 0u);
}

TEST(Histogram, RecordAndClamp) {
  Histogram h(31);
  h.record(0);
  h.record(5);
  h.record(31);
  h.record(100);  // clamps into the 31+ bucket
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(31), 2u);
  EXPECT_EQ(h.total_samples(), 4u);
  // Mean uses true values, not the clamped ones.
  EXPECT_DOUBLE_EQ(h.mean(), (0 + 5 + 31 + 100) / 4.0);
}

TEST(Histogram, MergeAddsBuckets) {
  Histogram a(15), b(15);
  a.record(3);
  b.record(3);
  b.record(7);
  a.merge(b);
  EXPECT_EQ(a.bucket(3), 2u);
  EXPECT_EQ(a.bucket(7), 1u);
  EXPECT_EQ(a.total_samples(), 3u);
}

TEST(Histogram, MergeRejectsMismatchedWidth) {
  Histogram a(15), b(31);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, PercentileEmptyIsZero) {
  Histogram h(15);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(50.0), 0u);
  EXPECT_EQ(h.percentile(100.0), 0u);
}

TEST(Histogram, PercentileSingleBucket) {
  Histogram h(15);
  h.record(7);
  h.record(7);
  h.record(7);
  // Every rank lands in the one occupied bucket; out-of-range p is clamped.
  EXPECT_EQ(h.percentile(0.0), 7u);
  EXPECT_EQ(h.percentile(50.0), 7u);
  EXPECT_EQ(h.percentile(100.0), 7u);
  EXPECT_EQ(h.percentile(-5.0), 7u);
  EXPECT_EQ(h.percentile(250.0), 7u);
}

TEST(Histogram, PercentileNearestRank) {
  Histogram h(15);
  for (u32 v = 1; v <= 10; ++v) h.record(v);  // one sample each of 1..10
  // Nearest-rank: p50 of 10 samples is the 5th smallest, p90 the 9th.
  EXPECT_EQ(h.percentile(50.0), 5u);
  EXPECT_EQ(h.percentile(90.0), 9u);
  EXPECT_EQ(h.percentile(100.0), 10u);
  EXPECT_EQ(h.percentile(10.0), 1u);
}

TEST(Histogram, PercentileSaturatingLastBucket) {
  Histogram h(7);  // values clamp into bucket 7
  h.record(3);
  h.record(100);
  h.record(200);
  // The saturating bucket reports the histogram's max representable value,
  // not the unclamped inputs.
  EXPECT_EQ(h.percentile(100.0), h.max_value());
  EXPECT_EQ(h.percentile(100.0), 7u);
  EXPECT_EQ(h.percentile(10.0), 3u);
}

TEST(FlatMap, LookupAndMisses) {
  FlatMap<u64, u32> m;
  m.reserve(3);
  m.emplace(30, 3);
  m.emplace(10, 1);
  m.emplace(20, 2);
  EXPECT_FALSE(m.sealed());
  m.seal();
  ASSERT_TRUE(m.sealed());
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(10), nullptr);
  EXPECT_EQ(*m.find(10), 1u);
  EXPECT_EQ(*m.find(20), 2u);
  EXPECT_EQ(*m.find(30), 3u);
  EXPECT_EQ(m.find(15), nullptr);
  EXPECT_EQ(m.find(0), nullptr);
  EXPECT_EQ(m.find(31), nullptr);
  EXPECT_TRUE(m.contains(20));
  EXPECT_FALSE(m.contains(25));
}

TEST(FlatMap, FirstInsertionWinsLikeUnorderedEmplace) {
  FlatMap<std::string, int> m;
  m.emplace("pc", 1);
  m.emplace("pc", 2);  // duplicate: discarded at seal(), like emplace()
  m.emplace("sp", 7);
  m.seal();
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find("pc"), nullptr);
  EXPECT_EQ(*m.find("pc"), 1);
}

TEST(FlatMap, IterationIsKeySortedRegardlessOfInsertionOrder) {
  const std::vector<u64> keys = {9, 2, 7, 4, 2, 9, 1};
  FlatMap<u64, u64> forward, reversed;
  for (const u64 k : keys) forward.emplace(k, k * 10);
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) reversed.emplace(*it, *it * 10);
  forward.seal();
  reversed.seal();

  std::vector<u64> order;
  for (const auto& [k, v] : forward) {
    EXPECT_EQ(v, k * 10);
    order.push_back(k);
  }
  EXPECT_EQ(order, (std::vector<u64>{1, 2, 4, 7, 9}));
  // The key sequence (though not necessarily the dup-resolved values) is
  // insertion-order independent — the D1 property block_of_pc relies on.
  std::vector<u64> order_rev;
  for (const auto& [k, v] : reversed) order_rev.push_back(k);
  EXPECT_EQ(order, order_rev);
}

TEST(FlatMap, EmptyMapBehaves) {
  FlatMap<u64, u32> m;
  m.seal();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.begin(), m.end());
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "insts=5000", "--scheme=rrob", "--verbose", "mix3"};
  const Options o = Options::from_args(5, argv);
  EXPECT_EQ(o.get_u64("insts", 0), 5000u);
  EXPECT_EQ(o.get("scheme"), "rrob");
  EXPECT_TRUE(o.get_bool("verbose", false));
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "mix3");
}

TEST(Options, FallbacksAndBoolSpellings) {
  const Options o = Options::from_tokens({"flag=off", "n=0x10"});
  EXPECT_FALSE(o.get_bool("flag", true));
  EXPECT_EQ(o.get_u64("n", 0), 16u);
  EXPECT_EQ(o.get_u64("absent", 7), 7u);
  EXPECT_DOUBLE_EQ(o.get_double("absent", 1.5), 1.5);
}

}  // namespace
}  // namespace tlrob
