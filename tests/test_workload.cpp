// Unit tests for workload generators, thread contexts, SPEC profiles and
// the Table 2 mixes.
#include <gtest/gtest.h>

#include <set>

#include "workload/addr_gen.hpp"
#include "workload/branch_gen.hpp"
#include "workload/kernels.hpp"
#include "workload/mixes.hpp"
#include "workload/spec_profiles.hpp"
#include "workload/thread_context.hpp"

namespace tlrob {
namespace {

AddrGenSpec spec(AddrPattern p, u64 region, i64 stride = 8) {
  AddrGenSpec s;
  s.pattern = p;
  s.base = 0x1000;
  s.region_bytes = region;
  s.stride = stride;
  return s;
}

TEST(AddrGen, StrideWrapsWithinRegion) {
  AddrGen g(spec(AddrPattern::kStride, 256, 8), 0x100000, 1);
  std::set<Addr> seen;
  for (int i = 0; i < 64; ++i) {
    const Addr a = g.next();
    EXPECT_GE(a, 0x101000u);
    EXPECT_LT(a, 0x101000u + 256u);
    seen.insert(a);
  }
  EXPECT_EQ(seen.size(), 32u);  // 256 bytes / stride 8
}

TEST(AddrGen, StrideIsSequential) {
  AddrGen g(spec(AddrPattern::kStride, 1 << 20, 8), 0, 1);
  const Addr a0 = g.next();
  EXPECT_EQ(g.next(), a0 + 8);
  EXPECT_EQ(g.next(), a0 + 16);
}

TEST(AddrGen, RandomStaysInRegion) {
  AddrGen g(spec(AddrPattern::kRandom, 1 << 16), 0x200000, 5);
  for (int i = 0; i < 1000; ++i) {
    const Addr a = g.next();
    EXPECT_GE(a, 0x201000u);
    EXPECT_LT(a, 0x201000u + (1u << 16));
    EXPECT_EQ(a % 8, 0u);  // aligned to access size
  }
}

TEST(AddrGen, PointerChaseVisitsEveryLineOncePerCycle) {
  // 64 lines; the permutation walk must touch each line exactly once before
  // repeating — that is what makes every access a fresh line (a miss) when
  // the region exceeds the cache.
  AddrGen g(spec(AddrPattern::kPointerChase, 64 * 64), 0, 9);
  std::set<Addr> lines;
  for (int i = 0; i < 64; ++i) lines.insert(g.next() / 64);
  EXPECT_EQ(lines.size(), 64u);
}

TEST(AddrGen, StackCyclesOverSmallSet) {
  AddrGen g(spec(AddrPattern::kStack, 64), 0, 2);
  std::set<Addr> seen;
  for (int i = 0; i < 16; ++i) seen.insert(g.next());
  EXPECT_EQ(seen.size(), 8u);  // 64 bytes / 8-byte slots
}

TEST(AddrGen, ThreadSaltDecorrelatesStreams) {
  AddrGen a(spec(AddrPattern::kRandom, 1 << 20), 0, 1);
  AddrGen b(spec(AddrPattern::kRandom, 1 << 20), 0, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 5);
}

TEST(BranchGen, LoopPattern) {
  BranchGenSpec s;
  s.pattern = BranchPattern::kLoop;
  s.trip = 4;
  BranchGen g(s, 0);
  // taken, taken, taken, not-taken, repeating
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_TRUE(g.next());
    EXPECT_TRUE(g.next());
    EXPECT_TRUE(g.next());
    EXPECT_FALSE(g.next());
  }
}

TEST(BranchGen, BiasedFrequency) {
  BranchGenSpec s;
  s.pattern = BranchPattern::kBiased;
  s.p_taken = 0.8;
  BranchGen g(s, 3);
  int taken = 0;
  for (int i = 0; i < 10000; ++i) taken += g.next();
  EXPECT_NEAR(taken / 10000.0, 0.8, 0.02);
}

TEST(BranchGen, TripOneNeverTaken) {
  BranchGenSpec s;
  s.pattern = BranchPattern::kLoop;
  s.trip = 1;
  BranchGen g(s, 0);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(g.next());
}

TEST(ThreadContext, WalksInfinitely) {
  RandomGatherParams p;
  p.working_set_bytes = 1 << 16;
  const Benchmark b = make_random_gather("tiny", p);
  ThreadContext ctx(b, 0x1000000, 1);
  for (int i = 0; i < 5000; ++i) {
    const ArchOp op = ctx.next();
    ASSERT_NE(op.si, nullptr);
  }
  EXPECT_EQ(ctx.generated(), 5000u);
}

TEST(ThreadContext, LoadsCarryAddressesInThreadSpace) {
  RandomGatherParams p;
  p.working_set_bytes = 1 << 16;
  const Benchmark b = make_random_gather("tiny", p);
  ThreadContext ctx(b, 0x4000000, 1);
  int loads = 0;
  for (int i = 0; i < 2000; ++i) {
    const ArchOp op = ctx.next();
    if (op.si->is_load()) {
      ++loads;
      EXPECT_GE(op.mem_addr, 0x4000000u);
    }
  }
  EXPECT_GT(loads, 100);
}

TEST(ThreadContext, BranchTargetsAreBlockStarts) {
  BranchyIntParams p;
  const Benchmark b = make_branchy_int("br", p);
  ThreadContext ctx(b, 0, 2);
  for (int i = 0; i < 5000; ++i) {
    const ArchOp op = ctx.next();
    if (is_control(op.si->op)) {
      bool found = false;
      for (u32 blk = 0; blk < b.program->num_blocks(); ++blk)
        if (b.program->block(blk).insts.front().pc == op.target_pc) found = true;
      ASSERT_TRUE(found) << "control target must be a block entry";
    }
  }
}

TEST(ThreadContext, CallReturnResumesAtFallthrough) {
  ComputeParams p;
  p.use_call = true;
  const Benchmark b = make_compute("callret", p);
  ThreadContext ctx(b, 0, 1);
  // Find a call and verify the instruction stream passes through the callee
  // and then continues (no traps); 10k ops without throwing is the check.
  int calls = 0, rets = 0;
  for (int i = 0; i < 10000; ++i) {
    const ArchOp op = ctx.next();
    calls += op.si->op == OpClass::kCall;
    rets += op.si->op == OpClass::kReturn;
  }
  EXPECT_GT(calls, 0);
  EXPECT_EQ(calls, rets);
}

TEST(ThreadContext, RejectsMismatchedSpecs) {
  RandomGatherParams p;
  Benchmark b = make_random_gather("tiny", p);
  b.agens.pop_back();
  EXPECT_THROW(ThreadContext(b, 0, 1), std::logic_error);
}

TEST(SpecProfiles, AllTwentyPresent) {
  EXPECT_EQ(spec_benchmarks().size(), 20u);
  for (const char* name :
       {"ammp", "art", "mgrid", "apsi", "parser", "vortex", "crafty", "gap", "eon", "vpr",
        "gzip", "perlbmk", "mcf", "lucas", "twolf", "bzip2", "wupwise", "equake", "mesa",
        "swim"}) {
    EXPECT_TRUE(is_spec_benchmark(name)) << name;
    EXPECT_NO_THROW(spec_benchmark(name));
  }
  EXPECT_THROW(spec_benchmark("gcc"), std::out_of_range);
}

TEST(SpecProfiles, ProgramsAreFinalizedAndLooping) {
  for (const auto& b : spec_benchmarks()) {
    ASSERT_TRUE(b.program->finalized()) << b.name;
    ThreadContext ctx(b, 0x1000000, 9);
    for (int i = 0; i < 3000; ++i) ctx.next();
    EXPECT_EQ(ctx.generated(), 3000u) << b.name;
  }
}

TEST(Mixes, TableTwoShape) {
  const auto& mixes = table2_mixes();
  ASSERT_EQ(mixes.size(), 11u);
  EXPECT_EQ(mixes[0].benchmarks,
            (std::vector<std::string>{"ammp", "art", "mgrid", "apsi"}));
  EXPECT_EQ(mixes[8].benchmarks,
            (std::vector<std::string>{"mgrid", "parser", "perlbmk", "mcf"}));
  for (const auto& m : mixes)
    for (const auto& name : m.benchmarks) EXPECT_TRUE(is_spec_benchmark(name)) << name;
}

TEST(Mixes, LookupByIndex) {
  EXPECT_EQ(table2_mix(1).name, "Mix 1");
  EXPECT_EQ(table2_mix(11).name, "Mix 11");
  EXPECT_THROW(table2_mix(0), std::out_of_range);
  EXPECT_THROW(table2_mix(12), std::out_of_range);
  EXPECT_EQ(mix_benchmarks(table2_mix(2)).size(), 4u);
}

}  // namespace
}  // namespace tlrob
