// Observability subsystem (src/obs) tests: the interval sampler's
// fast-forward-equivalence and zero-impact contracts, Chrome trace-event
// export (grant lifecycles, miss shadows), the summary-counter flattening,
// and the host self-profiler.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "obs/interval_sampler.hpp"
#include "obs/self_profile.hpp"
#include "obs/telemetry_config.hpp"
#include "sim/experiment.hpp"
#include "sim/smt_sim.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob {
namespace {

MachineConfig sampled_config(Cycle interval) {
  MachineConfig cfg = two_level_config(RobScheme::kReactive, 16);
  cfg.telemetry.sample_interval = interval;
  return cfg;
}

// The fast-forward-equivalence tests below assert that cycles actually get
// skipped, which requires the audit off (an armed audit pins the core to
// cycle-by-cycle execution). Force it off so a $TLROB_AUDIT=cheap
// environment (the CI test jobs) can't invalidate the tests' premise.
MachineConfig fast_forwarding(MachineConfig cfg) {
  cfg.audit.level = AuditLevel::kOff;
  return cfg;
}

// The determinism contract at the heart of the design: the series recorded
// with idle-cycle fast-forwarding active (skipped sample points replayed
// from the quiescent state) is bit-identical to the series recorded while
// the core is pinned to cycle-by-cycle execution.
TEST(IntervalSampler, SeriesIdenticalWithAndWithoutFastForward) {
  const auto benches = mix_benchmarks(table2_mix(2));

  SmtCore ff(fast_forwarding(sampled_config(250)), benches);
  const RunResult with_ff = ff.run(4000);

  SmtCore pinned(fast_forwarding(sampled_config(250)), benches);
  // An attached text tracer pins the core to cycle-by-cycle execution; a
  // [0, 0) window keeps it silent, so the only difference is the pinning.
  std::ostringstream sink;
  pinned.tracer().attach(&sink, 0, 0);
  const RunResult without_ff = pinned.run(4000);

  // The comparison is only meaningful if the first run actually skipped
  // cycles and the pinned one did not.
  EXPECT_GT(ff.fast_forwarded_cycles(), 0u);
  EXPECT_EQ(pinned.fast_forwarded_cycles(), 0u);

  EXPECT_EQ(with_ff.cycles, without_ff.cycles);
  ASSERT_FALSE(with_ff.samples.empty());
  EXPECT_EQ(with_ff.samples, without_ff.samples);
  EXPECT_EQ(sink.str(), "");  // the pinning tracer never printed
}

// Turning the sampler on must not perturb the simulated machine: cycles,
// committed counts and every architectural counter stay bit-identical to a
// telemetry-off run (the golden-fingerprint contract from the other side).
TEST(IntervalSampler, SamplingDoesNotPerturbTheRun) {
  const auto benches = mix_benchmarks(table2_mix(1));

  SmtCore off(sampled_config(0), benches);
  const RunResult r_off = off.run(4000);

  SmtCore on(sampled_config(200), benches);
  const RunResult r_on = on.run(4000);

  EXPECT_EQ(r_off.cycles, r_on.cycles);
  EXPECT_EQ(r_off.counters, r_on.counters);
  for (size_t t = 0; t < r_off.threads.size(); ++t)
    EXPECT_EQ(r_off.threads[t].committed, r_on.threads[t].committed);
  EXPECT_TRUE(r_off.samples.empty());
  EXPECT_FALSE(r_on.samples.empty());
}

// Sample labels sit on absolute interval multiples, strictly increase, and
// every sample carries one slice per hardware thread.
TEST(IntervalSampler, LabelsAlignToTheIntervalGrid) {
  const auto benches = mix_benchmarks(table2_mix(1));
  SmtCore core(sampled_config(300), benches);
  const RunResult r = core.run(3000, 0, /*warmup=*/1000);

  ASSERT_FALSE(r.samples.empty());
  EXPECT_EQ(r.samples.interval(), 300u);
  Cycle prev = 0;
  for (const auto& s : r.samples.samples()) {
    EXPECT_EQ(s.cycle % 300, 0u);
    EXPECT_GT(s.cycle, prev);
    prev = s.cycle;
    EXPECT_EQ(s.threads.size(), benches.size());
  }
}

TEST(IntervalSampler, JsonlAndCsvExportShapes) {
  obs::IntervalSeries series(100);
  obs::IntervalSample s;
  s.cycle = 100;
  s.second_level_owner = 1;
  s.iq_occ_total = 12;
  s.threads.push_back({.rob_occ = 3,
                       .rob_cap = 32,
                       .iq_occ = 2,
                       .lsq_occ = 1,
                       .dod_proxy = 4,
                       .outstanding_l2 = 2,
                       .dcra_iq_cap = 16,
                       .committed = 50});
  series.add(std::move(s));

  std::ostringstream jsonl;
  series.write_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"cycle\":100"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"owner\":1"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"rob\":3"), std::string::npos);
  EXPECT_EQ(jsonl.str().back(), '\n');

  std::ostringstream csv;
  series.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("cycle,thread,rob_occ"), std::string::npos);
  EXPECT_NE(text.find("100,0,3,32,2,1,4,2,16,50"), std::string::npos);

  // An unowned second level serialises as null / empty.
  obs::IntervalSeries unowned(100);
  obs::IntervalSample u;
  u.cycle = 200;
  u.threads.emplace_back();
  unowned.add(std::move(u));
  std::ostringstream j2;
  unowned.write_jsonl(j2);
  EXPECT_NE(j2.str().find("\"owner\":null"), std::string::npos);
}

TEST(IntervalSampler, SummaryCountersFlattenPercentiles) {
  obs::IntervalSeries series(100);
  for (u32 i = 1; i <= 10; ++i) {
    obs::IntervalSample s;
    s.cycle = 100 * i;
    s.threads.push_back({.rob_occ = i, .rob_cap = 32, .outstanding_l2 = 1});
    series.add(std::move(s));
  }
  const auto counters = obs::series_summary_counters(series);
  ASSERT_NE(counters.find("obs.samples"), counters.end());
  EXPECT_EQ(counters.at("obs.samples"), 10u);
  EXPECT_EQ(counters.at("obs.sample_interval"), 100u);
  EXPECT_EQ(counters.at("obs.t0.rob_occ_p50"), 5u);
  EXPECT_EQ(counters.at("obs.t0.rob_occ_p90"), 9u);
  EXPECT_EQ(counters.at("obs.t0.mlp_p90"), 1u);

  // Empty series -> no keys at all (disabled telemetry adds nothing to
  // campaign records).
  EXPECT_TRUE(obs::series_summary_counters(obs::IntervalSeries{}).empty());
}

TEST(ChromeTrace, WriterEmitsWellFormedEvents) {
  obs::ChromeTraceWriter w;
  w.set_thread_name(0, "t0 art");
  w.complete_event(0, "second_level_grant", 100, 250, {{"trigger_tseq", 7}});
  w.instant_event(0, "squash", 120, {{"insts", 3}});
  w.counter_event(0, "rob_occ", 100, 17);
  EXPECT_EQ(w.event_count(), 4u);
  EXPECT_EQ(w.count_named('X', "second_level_grant"), 1u);
  EXPECT_EQ(w.count_named('i', "squash"), 1u);

  std::ostringstream os;
  w.write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":150"), std::string::npos);
  EXPECT_NE(json.find("\"trigger_tseq\":7"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // scoped instant

  w.clear();
  EXPECT_EQ(w.event_count(), 0u);
}

// Acceptance criterion for the structured trace: running a two-level scheme
// on a memory-bound mix produces named grant-lifecycle duration spans, and
// the request -> grant -> shadow chain is present per thread track.
TEST(ChromeTrace, GrantLifecycleSpansAppearInATwoLevelRun) {
  MachineConfig cfg = two_level_config(RobScheme::kReactive, 16);
  SmtCore core(cfg, mix_benchmarks(table2_mix(2)));
  obs::ChromeTraceWriter trace;
  core.attach_chrome_trace(&trace);
  const RunResult r = core.run(4000);

  ASSERT_GT(run_counter(r, "rob2.allocations"), 0u);
  EXPECT_GT(trace.count_named('X', "second_level_grant"), 0u);
  EXPECT_GT(trace.count_named('X', "l2_miss_shadow"), 0u);
  EXPECT_GT(trace.count_named('i', "second_level_request"), 0u);
  EXPECT_GT(trace.count_named('i', "dod_snapshot"), 0u);
  EXPECT_EQ(trace.count_named('M', "thread_name"), cfg.num_threads);
}

// Attaching the Chrome trace must not change the simulation (it observes
// state-changing ticks only and never pins the fast-forward off).
TEST(ChromeTrace, AttachmentDoesNotPerturbTheRun) {
  const auto benches = mix_benchmarks(table2_mix(2));
  const MachineConfig cfg = fast_forwarding(two_level_config(RobScheme::kReactive, 16));

  SmtCore plain(cfg, benches);
  const RunResult a = plain.run(3000);

  SmtCore traced(cfg, benches);
  obs::ChromeTraceWriter trace;
  traced.attach_chrome_trace(&trace);
  const RunResult b = traced.run(3000);

  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_GT(traced.fast_forwarded_cycles(), 0u);  // FF stayed on
}

TEST(SelfProfiler, DisabledByDefaultAndHarmless) {
  obs::SelfProfiler p;
  EXPECT_FALSE(p.enabled());
  EXPECT_EQ(p.total_attributed_nanos(), 0u);
  EXPECT_STREQ(obs::phase_name(obs::Phase::kCommit), "commit");
}

TEST(SelfProfiler, ProfiledRunAttributesTimeWithoutChangingResults) {
  const auto benches = mix_benchmarks(table2_mix(1));
  MachineConfig cfg = sampled_config(0);

  SmtCore plain(cfg, benches);
  const RunResult a = plain.run(3000);

  cfg.telemetry.profile = true;
  SmtCore profiled(cfg, benches);
  const RunResult b = profiled.run(3000);

  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_TRUE(profiled.profiler().enabled());
  EXPECT_GT(profiled.profiler().total_attributed_nanos(), 0u);
  EXPECT_GT(profiled.profiler().calls(obs::Phase::kCommit), 0u);

  std::ostringstream os;
  profiled.profiler().print(os, profiled.executed_cycles(), 1.0);
  EXPECT_NE(os.str().find("commit"), std::string::npos);
  EXPECT_NE(os.str().find("unattributed"), std::string::npos);
}

TEST(TelemetryConfig, EnvDefaultsAreOff) {
  // The suite runs without $TLROB_SAMPLE / $TLROB_PROFILE; defaults must be
  // fully off so every other test exercises the zero-cost path.
  if (std::getenv("TLROB_SAMPLE") == nullptr && std::getenv("TLROB_PROFILE") == nullptr) {
    const MachineConfig cfg;
    EXPECT_EQ(cfg.telemetry.sample_interval, 0u);
    EXPECT_FALSE(cfg.telemetry.profile);
  }
}

}  // namespace
}  // namespace tlrob
