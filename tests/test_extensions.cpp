// Tests for the optional extensions: early register release (ref [24] of the
// paper) and the CLI configuration-override layer.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/config_override.hpp"
#include "sim/experiment.hpp"
#include "sim/smt_sim.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob {
namespace {

TEST(EarlyRelease, ReaderCountsTrackRenameAndExecution) {
  RenameUnit ru(RenameConfig{224, 224, 1, false});
  static StaticInst producer;
  producer.op = OpClass::kIntAlu;
  producer.dest = ireg(1);
  static StaticInst consumer;
  consumer.op = OpClass::kIntAlu;
  consumer.dest = ireg(2);
  consumer.src[0] = ireg(1);

  DynInst p;
  p.si = &producer;
  p.op = producer.op;
  ru.rename(p);
  DynInst c;
  c.si = &consumer;
  c.op = consumer.op;
  ru.rename(c);
  EXPECT_EQ(ru.pending_readers(p.dest_phys), 1u);
  ru.consumers_read(c);  // consumer executes
  EXPECT_EQ(ru.pending_readers(p.dest_phys), 0u);
}

TEST(EarlyRelease, EarlyFreeSkipsCommitRelease) {
  RenameUnit ru(RenameConfig{224, 224, 1, false});
  static StaticInst w;
  w.op = OpClass::kIntAlu;
  w.dest = ireg(1);
  DynInst a;
  a.si = &w;
  a.op = w.op;
  ru.rename(a);
  DynInst b;
  b.si = &w;
  b.op = w.op;
  ru.rename(b);  // b.prev = a's register
  const u32 free_before = ru.free_int(0);
  ru.early_free_prev(b);
  EXPECT_TRUE(b.prev_freed_early);
  EXPECT_EQ(ru.free_int(0), free_before + 1);
  ru.commit_free(b);  // must not double-free
  EXPECT_EQ(ru.free_int(0), free_before + 1);
}

TEST(EarlyRelease, FiresOnMemoryBoundRunAndStaysCorrect) {
  MachineConfig cfg = two_level_config(RobScheme::kReactive, 16);
  cfg.early_register_release = true;
  SmtCore core(cfg, mix_benchmarks(table2_mix(1)));
  const RunResult r = core.run(15000);
  EXPECT_GT(run_counter(r, "core.rename.early_released"), 0u);
  EXPECT_EQ(run_counter(r, "core.commit.wrong_path_bug"), 0u);
  for (const auto& t : r.threads) EXPECT_GT(t.committed, 0u);
}

TEST(EarlyRelease, DeterministicWithFeatureOn) {
  auto run_once = [] {
    MachineConfig cfg = two_level_config(RobScheme::kReactive, 16);
    cfg.early_register_release = true;
    SmtCore core(cfg, mix_benchmarks(table2_mix(2)));
    return core.run(5000);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(EarlyRelease, RejectsFlushCombination) {
  MachineConfig cfg = baseline32_config();
  cfg.early_register_release = true;
  cfg.fetch_policy = FetchPolicyKind::kFlush;
  EXPECT_THROW(SmtCore(cfg, mix_benchmarks(table2_mix(1))), std::invalid_argument);
}

TEST(ConfigOverride, ParsesSchemesAndPolicies) {
  EXPECT_EQ(parse_scheme("rrob"), RobScheme::kReactive);
  EXPECT_EQ(parse_scheme("relaxed"), RobScheme::kRelaxedReactive);
  EXPECT_EQ(parse_scheme("cdr"), RobScheme::kCdr);
  EXPECT_EQ(parse_scheme("prob"), RobScheme::kPredictive);
  EXPECT_EQ(parse_scheme("baseline"), RobScheme::kBaseline);
  EXPECT_THROW(parse_scheme("bogus"), std::invalid_argument);
  EXPECT_EQ(parse_fetch_policy("icount"), FetchPolicyKind::kIcount);
  EXPECT_EQ(parse_fetch_policy("rr"), FetchPolicyKind::kRoundRobin);
  EXPECT_THROW(parse_fetch_policy("bogus"), std::invalid_argument);
}

TEST(ConfigOverride, AppliesMachineKnobs) {
  const Options opts = Options::from_tokens(
      {"threads=2", "rob1=64", "rob2=128", "iq=32", "scheme=cdr", "threshold=7",
       "policy=stall", "l2_kb=1024", "mem_lat=300", "shared_regfile=1", "seed=99",
       "lease=1234", "mshr=8"});
  const MachineConfig cfg = apply_overrides(baseline32_config(), opts);
  EXPECT_EQ(cfg.num_threads, 2u);
  EXPECT_EQ(cfg.rob_first_level, 64u);
  EXPECT_EQ(cfg.rob_second_level, 128u);
  EXPECT_EQ(cfg.iq_entries, 32u);
  EXPECT_EQ(cfg.rob.scheme, RobScheme::kCdr);
  EXPECT_EQ(cfg.rob.dod_threshold, 7u);
  EXPECT_EQ(cfg.fetch_policy, FetchPolicyKind::kStall);
  EXPECT_EQ(cfg.memory.l2.size_bytes, u64{1024} << 10);
  EXPECT_EQ(cfg.memory.channel.first_chunk, 300u);
  EXPECT_TRUE(cfg.shared_regfile);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.rob.lease_limit, 1234u);
  EXPECT_EQ(cfg.memory.channel.mshr_entries, 8u);
}

TEST(ConfigOverride, LeavesDefaultsAlone) {
  const MachineConfig base = baseline32_config();
  const MachineConfig cfg = apply_overrides(base, Options::from_tokens({}));
  EXPECT_EQ(cfg.num_threads, base.num_threads);
  EXPECT_EQ(cfg.rob_first_level, base.rob_first_level);
  EXPECT_EQ(cfg.fetch_policy, base.fetch_policy);
  EXPECT_EQ(cfg.seed, base.seed);
}

TEST(ConfigOverride, OverriddenMachineRuns) {
  const Options opts = Options::from_tokens({"threads=2", "scheme=rrob", "threshold=12"});
  MachineConfig cfg = apply_overrides(baseline32_config(), opts);
  cfg.rob_second_level = 384;
  SmtCore core(cfg, {spec_benchmark("art"), spec_benchmark("crafty")});
  const RunResult r = core.run(4000);
  EXPECT_GT(r.threads[0].committed, 0u);
  EXPECT_GT(r.threads[1].committed, 0u);
}

TEST(Tracer, EmitsEventsOnlyInsideWindow) {
  MachineConfig cfg = single_thread_config();
  SmtCore core(cfg, {spec_benchmark("art")});
  std::ostringstream os;
  // Mid-run window, well past the cold I-cache fill that silences the first
  // few hundred cycles.
  core.tracer().attach(&os, 2000, 2400);
  core.run(3000);
  const std::string log = os.str();
  ASSERT_FALSE(log.empty());
  EXPECT_NE(log.find("fetch"), std::string::npos);
  EXPECT_NE(log.find("dispatch"), std::string::npos);
  EXPECT_NE(log.find("issue"), std::string::npos);
  EXPECT_NE(log.find("commit"), std::string::npos);
  // Every line starts with a cycle inside [2000, 2400).
  std::istringstream in(log);
  std::string line;
  while (std::getline(in, line)) {
    const u64 cyc = std::strtoull(line.c_str(), nullptr, 10);
    EXPECT_GE(cyc, 2000u);
    EXPECT_LT(cyc, 2400u);
  }
}

TEST(Tracer, DetachedTracerIsFree) {
  MachineConfig cfg = single_thread_config();
  SmtCore core(cfg, {spec_benchmark("gzip")});
  core.run(2000);  // no tracer attached: must simply work
  EXPECT_GE(core.committed(0), 2000u);
}

}  // namespace
}  // namespace tlrob
