// Campaign-runner tests: record serialisation, the work-stealing pool, the
// thread-safe single-thread-IPC memo, and the engine's three contracts —
// serial/parallel bit-identity, failure isolation, and manifest resume.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runner/cli.hpp"
#include "runner/engine.hpp"
#include "runner/render.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"

namespace tlrob::runner {
namespace {

// Small enough to keep the suite fast, long enough to commit real work.
constexpr u64 kInsts = 1500;
constexpr u64 kWarmup = 300;

CampaignSpec small_spec(const std::string& name = "test_campaign") {
  CampaignSpec spec;
  spec.name = name;
  spec.columns = {{"Baseline_32", baseline32_config(), 0},
                  {"R-ROB16", two_level_config(RobScheme::kReactive, 16), 0}};
  spec.mixes = {table2_mix(1), table2_mix(2)};
  spec.lengths = {{kInsts, kWarmup}};
  return spec;
}

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem + ".jsonl";
}

TEST(RunnerJson, RecordRoundTrip) {
  JobRecord r;
  r.job = 7;
  r.campaign = "camp \"quoted\"\n";
  r.config = "R-ROB16";
  r.mix = "Mix 3";
  r.scheme = "rrob";
  r.threshold = 16;
  r.insts = 120000;
  r.warmup = 60000;
  r.max_cycles = 123456789012345ULL;
  r.seed = 0xdeadbeefcafef00dULL;  // must survive without a double round trip
  r.status = JobStatus::kFailed;
  r.error = "cycle cap exceeded";
  r.cycles = 991;
  r.ft = 0.123456789012345678;
  r.throughput = 3.25;
  r.benchmarks = {"art", "mcf"};
  r.committed = {17, 23};
  r.mt_ipc = {0.25, 0.5};
  r.st_ipc = {1.0, 2.0};
  r.dod_true = {5, 12.5, {1, 2, 3}};
  r.dod_proxy = {2, 7.0, {4, 0, 1}};
  r.counters = {{"a.b", 1}, {"c", 2}};

  const JobRecord p = record_from_json_line(to_json_line(r));
  EXPECT_EQ(p.job, r.job);
  EXPECT_EQ(p.campaign, r.campaign);
  EXPECT_EQ(p.config, r.config);
  EXPECT_EQ(p.mix, r.mix);
  EXPECT_EQ(p.scheme, r.scheme);
  EXPECT_EQ(p.threshold, r.threshold);
  EXPECT_EQ(p.max_cycles, r.max_cycles);
  EXPECT_EQ(p.seed, r.seed);
  EXPECT_EQ(p.status, r.status);
  EXPECT_EQ(p.error, r.error);
  EXPECT_EQ(p.cycles, r.cycles);
  EXPECT_DOUBLE_EQ(p.ft, r.ft);
  EXPECT_EQ(p.benchmarks, r.benchmarks);
  EXPECT_EQ(p.committed, r.committed);
  EXPECT_EQ(p.mt_ipc, r.mt_ipc);
  EXPECT_EQ(p.st_ipc, r.st_ipc);
  EXPECT_EQ(p.dod_true.samples, r.dod_true.samples);
  EXPECT_DOUBLE_EQ(p.dod_true.sum, r.dod_true.sum);
  EXPECT_EQ(p.dod_true.buckets, r.dod_true.buckets);
  EXPECT_EQ(p.counters, r.counters);
  EXPECT_EQ(p.key(), r.key());

  // Serialisation is deterministic: a second pass produces identical bytes.
  EXPECT_EQ(to_json_line(r), to_json_line(p));

  EXPECT_THROW(record_from_json_line("{broken"), std::invalid_argument);
  EXPECT_THROW(record_from_json_line("[1,2]"), std::invalid_argument);
}

TEST(RunnerPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 500; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 500);
    // Reuse after wait_idle.
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 501);
  }
}

TEST(RunnerPool, NestedSubmissionsAreStealable) {
  std::atomic<int> count{0};
  WorkStealingPool pool(3);
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      for (int j = 0; j < 50; ++j)
        pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 * 50);
}

TEST(RunnerPool, ResolveThreadsDefaultsToHardware) {
  EXPECT_GE(WorkStealingPool::resolve_threads(0), 1u);
  EXPECT_EQ(WorkStealingPool::resolve_threads(7), 7u);
}

// Satellite regression for the single_thread_ipc memo: hammer the same and
// different keys from many threads; every result must equal the serial
// value and (under TSan) produce no data race.
TEST(RunnerReferenceCache, SingleThreadIpcIsThreadSafe) {
  const double art = single_thread_ipc("art", 800);
  const double mcf = single_thread_ipc("mcf", 800);
  std::vector<std::thread> threads;
  std::vector<double> results(16, 0.0);
  threads.reserve(16);
  for (int t = 0; t < 16; ++t)
    threads.emplace_back([t, &results] {
      results[t] = single_thread_ipc(t % 2 == 0 ? "art" : "mcf", 800);
      // Distinct key computed concurrently with the lookups above.
      (void)single_thread_ipc("crafty", 700 + static_cast<u64>(t % 4));
    });
  for (auto& t : threads) t.join();
  for (int t = 0; t < 16; ++t) EXPECT_DOUBLE_EQ(results[t], t % 2 == 0 ? art : mcf);
}

TEST(RunnerCampaign, ExpansionOrderAndSeeds) {
  CampaignSpec spec = small_spec();
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 4u);
  // Mix-major, column-minor: the streaming order of the rendered table.
  EXPECT_EQ(jobs[0].config_name, "Baseline_32");
  EXPECT_EQ(jobs[0].mix.name, "Mix 1");
  EXPECT_EQ(jobs[1].config_name, "R-ROB16");
  EXPECT_EQ(jobs[1].mix.name, "Mix 1");
  EXPECT_EQ(jobs[2].mix.name, "Mix 2");
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].seed, spec.seed);  // fixed seed by default
  }

  spec.per_job_seeds = true;
  const auto seeded = expand(spec);
  EXPECT_NE(seeded[0].seed, seeded[1].seed);
  EXPECT_EQ(seeded[0].seed, expand(spec)[0].seed);  // still deterministic

  CampaignSpec empty;
  EXPECT_THROW(expand(empty), std::invalid_argument);
}

TEST(RunnerEngine, ExecuteJobMatchesDirectSimulation) {
  const CampaignSpec spec = small_spec();
  const JobSpec js = expand(spec)[0];
  const JobRecord rec = execute_job(js);
  ASSERT_TRUE(rec.ok()) << rec.error;

  MachineConfig cfg = js.config;
  cfg.seed = js.seed;
  const RunResult direct =
      run_benchmarks(cfg, mix_benchmarks(js.mix), js.insts, 0, js.warmup);
  ASSERT_EQ(direct.threads.size(), rec.mt_ipc.size());
  std::vector<double> mt, st;
  for (const auto& t : direct.threads) {
    mt.push_back(t.ipc);
    st.push_back(single_thread_ipc(t.benchmark, js.insts));
  }
  EXPECT_EQ(rec.cycles, direct.cycles);
  EXPECT_EQ(rec.ft, fair_throughput(mt, st));
  EXPECT_EQ(rec.throughput, direct.total_throughput());
  EXPECT_EQ(rec.counters, direct.counters);
}

// The tentpole determinism guarantee: a parallel campaign produces
// byte-identical sink output to a serial one.
TEST(RunnerEngine, SerialAndParallelSinksAreByteIdentical) {
  auto run_with_jobs = [](u32 jobs, std::string* json_out, std::string* csv_out) {
    std::ostringstream json, csv;
    JsonlSink jsink(json);
    CsvSink csink(csv);
    EngineOptions eng;
    eng.jobs = jobs;
    eng.sinks = {&jsink, &csink};
    const CampaignResult res = run_campaign(small_spec(), eng);
    EXPECT_EQ(res.ok, 4u);
    EXPECT_EQ(res.failed, 0u);
    *json_out = json.str();
    *csv_out = csv.str();
  };

  std::string json1, csv1, json4, csv4;
  run_with_jobs(1, &json1, &csv1);
  run_with_jobs(4, &json4, &csv4);
  EXPECT_FALSE(json1.empty());
  EXPECT_EQ(json1, json4);
  EXPECT_EQ(csv1, csv4);
}

// Failure isolation: a cell whose cycle cap is too small for its commit
// target reports `failed`; the rest of the campaign completes.
TEST(RunnerEngine, FailureInjectionMarksOnlyTheCappedColumn) {
  CampaignSpec spec = small_spec();
  spec.columns[1].max_cycles = 50;  // far below what kInsts commits need

  std::ostringstream json;
  JsonlSink jsink(json);
  EngineOptions eng;
  eng.jobs = 2;
  eng.sinks = {&jsink};
  const CampaignResult res = run_campaign(spec, eng);

  EXPECT_EQ(res.ok, 2u);
  EXPECT_EQ(res.failed, 2u);
  ASSERT_EQ(res.records.size(), 4u);
  for (const auto& rec : res.records) {
    if (rec.config == "R-ROB16") {
      EXPECT_FALSE(rec.ok());
      EXPECT_NE(rec.error.find("cycle cap"), std::string::npos) << rec.error;
    } else {
      EXPECT_TRUE(rec.ok()) << rec.error;
    }
  }
  // Failed cells drop out of the renderer aggregates but stay in the sinks.
  EXPECT_EQ(column_records(res, "R-ROB16").size(), 0u);
  EXPECT_EQ(column_records(res, "Baseline_32").size(), 2u);
  EXPECT_NE(json.str().find("\"status\":\"failed\""), std::string::npos);
}

TEST(RunnerEngine, ResumeFromManifestSkipsCompletedCells) {
  const std::string manifest = temp_path("tlrob_resume_manifest");
  std::remove(manifest.c_str());

  // Phase 1: a partial campaign — one configuration column only.
  CampaignSpec partial = small_spec("resume_campaign");
  partial.columns.resize(1);
  {
    EngineOptions eng;
    eng.jobs = 1;
    eng.manifest_path = manifest;
    const CampaignResult res = run_campaign(partial, eng);
    EXPECT_EQ(res.ok, 2u);
  }

  // Phase 2: the full campaign, resumed — the two completed cells replay
  // from the manifest, only the new column executes.
  const CampaignSpec full = small_spec("resume_campaign");
  std::string resumed_json;
  {
    std::ostringstream json;
    JsonlSink jsink(json);
    EngineOptions eng;
    eng.jobs = 1;
    eng.manifest_path = manifest;
    eng.resume = true;
    eng.sinks = {&jsink};
    const CampaignResult res = run_campaign(full, eng);
    EXPECT_EQ(res.resumed, 2u);
    EXPECT_EQ(res.ok, 2u);
    EXPECT_EQ(res.failed, 0u);
    resumed_json = json.str();
  }

  // The resumed output is byte-identical to a from-scratch run.
  std::string fresh_json;
  {
    std::ostringstream json;
    JsonlSink jsink(json);
    EngineOptions eng;
    eng.jobs = 1;
    eng.sinks = {&jsink};
    (void)run_campaign(full, eng);
    fresh_json = json.str();
  }
  EXPECT_EQ(resumed_json, fresh_json);

  // Resuming the now-complete campaign executes nothing.
  {
    EngineOptions eng;
    eng.jobs = 1;
    eng.manifest_path = manifest;
    eng.resume = true;
    const CampaignResult res = run_campaign(full, eng);
    EXPECT_EQ(res.resumed, 4u);
    EXPECT_EQ(res.ok, 0u);
  }
  std::remove(manifest.c_str());
}

TEST(RunnerEngine, ResumeIsManifestLineOrderIndependent) {
  // The manifest is journalled in completion order, which varies with
  // worker count and crash timing. load_manifest keys an ordered map (lint
  // rule D1), so the emitted campaign must be byte-identical no matter how
  // the journal lines are permuted on disk.
  const std::string manifest = temp_path("tlrob_shuffle_manifest");
  const std::string reversed = temp_path("tlrob_shuffle_manifest_rev");
  std::remove(manifest.c_str());

  const CampaignSpec spec = small_spec("shuffle_campaign");
  {
    EngineOptions eng;
    eng.jobs = 1;
    eng.manifest_path = manifest;
    const CampaignResult res = run_campaign(spec, eng);
    EXPECT_EQ(res.ok, 4u);
  }

  // Rewrite the journal with its lines reversed (an adversarial completion
  // order), plus noise a crash could leave behind.
  std::vector<std::string> lines;
  {
    std::ifstream in(manifest);
    std::string line;
    while (std::getline(in, line))
      if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);
  {
    std::ofstream out(reversed);
    out << "\n";  // blank line: skipped
    for (auto it = lines.rbegin(); it != lines.rend(); ++it) out << *it << "\n";
    out << "{truncated by a crash";  // malformed tail: skipped
  }

  auto resume_json = [&](const std::string& path) {
    std::ostringstream json;
    JsonlSink jsink(json);
    EngineOptions eng;
    eng.jobs = 1;
    eng.manifest_path = path;
    eng.resume = true;
    eng.sinks = {&jsink};
    const CampaignResult res = run_campaign(spec, eng);
    EXPECT_EQ(res.resumed, 4u);
    EXPECT_EQ(res.ok, 0u);
    return json.str();
  };
  const std::string from_journal_order = resume_json(manifest);
  const std::string from_reversed = resume_json(reversed);
  EXPECT_FALSE(from_journal_order.empty());
  EXPECT_EQ(from_journal_order, from_reversed);

  std::remove(manifest.c_str());
  std::remove(reversed.c_str());
}

TEST(RunnerCli, ParsesMixedOptionForms) {
  const char* argv[] = {"prog",   "fig2",         "--jobs",   "4",
                        "--insts=2000", "warmup=500", "--resume", "--max-cycles", "123"};
  const Options opts = parse_cli_args(9, argv);
  EXPECT_EQ(opts.get_u64("jobs", 0), 4u);
  EXPECT_EQ(opts.get_u64("insts", 0), 2000u);
  EXPECT_EQ(opts.get_u64("warmup", 0), 500u);
  EXPECT_TRUE(opts.get_bool("resume", false));
  EXPECT_EQ(opts.get_u64("max_cycles", 0), 123u);
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "fig2");
}

TEST(RunnerCli, CustomCampaignFromOptions) {
  Options opts;
  opts.set("schemes", "baseline32,rrob,prob");
  opts.set("thresholds", "8,16");
  opts.set("mixes", "1,3");
  opts.set("insts", "2000");
  opts.set("warmup", "400");
  const CampaignSpec spec = custom_campaign(opts);
  ASSERT_EQ(spec.columns.size(), 5u);  // baseline + 2 schemes x 2 thresholds
  EXPECT_EQ(spec.columns[0].name, "Baseline_32");
  EXPECT_EQ(spec.columns[1].name, "R-ROB8");
  EXPECT_EQ(spec.columns[2].name, "R-ROB16");
  EXPECT_EQ(spec.columns[3].name, "P-ROB8");
  EXPECT_EQ(spec.columns[4].name, "P-ROB16");
  ASSERT_EQ(spec.mixes.size(), 2u);
  EXPECT_EQ(spec.mixes[1].name, "Mix 3");
  EXPECT_EQ(spec.lengths[0].insts, 2000u);

  Options bad;
  bad.set("schemes", "nonsense");
  EXPECT_THROW(custom_campaign(bad), std::invalid_argument);
}

TEST(RunnerPresets, AllPresetsExpand) {
  for (const auto& name : preset_names()) {
    EXPECT_TRUE(is_preset(name));
    EXPECT_FALSE(preset_summary(name).empty());
    const CampaignSpec spec = preset_campaign(name, {1000, 200});
    EXPECT_FALSE(expand(spec).empty()) << name;
  }
  EXPECT_FALSE(is_preset("fig99"));
  EXPECT_THROW(preset_campaign("fig99", {1000, 200}), std::invalid_argument);
}

}  // namespace
}  // namespace tlrob::runner
