// Timing tests for the banked DRAM model behind the shared LLC: row-buffer
// hit/miss/conflict latencies (table-driven against the tCAS/tRCD/tRP
// decomposition), per-bank serialisation vs cross-bank/channel overlap,
// channel-bus occupancy, closed-page auto-precharge, and determinism — the
// same access sequence replayed on a fresh model reproduces every completion
// cycle and counter, and sequences touching disjoint channels commute.
#include <gtest/gtest.h>

#include <vector>

#include "memory/dram.hpp"

namespace tlrob {
namespace {

/// Small geometry so the tests can name banks directly: 2 channels x 4
/// banks, 64B lines, 256B rows (4 lines per row), 8B bus, critical chunk
/// one line. transfer = 64/8 * interchunk(2) = 16 cycles.
DramConfig small_config() {
  DramConfig cfg;
  cfg.channels = 2;
  cfg.banks_per_channel = 4;
  cfg.row_bytes = 256;
  cfg.line_bytes = 64;
  cfg.bus_bytes = 8;
  cfg.interchunk = 2;
  cfg.critical_bytes = 64;
  cfg.tcas = 100;
  cfg.trcd = 60;
  cfg.trp = 40;
  return cfg;
}

/// Inverse of DramModel::map for the small geometry: builds the address of
/// `line_in_row` within (channel, bank, row).
Addr make_addr(const DramConfig& cfg, u32 channel, u32 bank, u64 row, u64 line_in_row) {
  const u64 lines_per_row = cfg.row_bytes / cfg.line_bytes;
  u64 line = row;
  line = line * cfg.banks_per_channel + bank;
  line = line * lines_per_row + line_in_row;
  line = line * cfg.channels + channel;
  return line * cfg.line_bytes;
}

TEST(Dram, MapRoundTripsMakeAddr) {
  const DramConfig cfg = small_config();
  DramModel dram(cfg);
  for (u32 ch = 0; ch < cfg.channels; ++ch)
    for (u32 b = 0; b < cfg.banks_per_channel; ++b)
      for (u64 row : {u64{0}, u64{3}, u64{1000}}) {
        const auto ref = dram.map(make_addr(cfg, ch, b, row, 1));
        EXPECT_EQ(ref.channel, ch);
        EXPECT_EQ(ref.bank, b);
        EXPECT_EQ(ref.row, row);
      }
}

TEST(Dram, ConfigValidation) {
  DramConfig cfg = small_config();
  cfg.channels = 3;
  EXPECT_THROW(DramModel{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.row_bytes = 32;  // smaller than the 64B line
  EXPECT_THROW(DramModel{cfg}, std::invalid_argument);
}

// The table: row-buffer outcome -> absolute completion cycle for a request
// issued at cycle 0 against a prepared bank. transfer = 16.
TEST(Dram, RowOutcomeLatencyTable) {
  const DramConfig cfg = small_config();
  struct Case {
    const char* name;
    u64 prepared_row;  // row opened before the measured access (same bank)
    bool prepare;      // false = cold bank
    u64 target_row;
    DramModel::RowOutcome want;
    Cycle want_latency;  // from issue to done, bank and bus idle
  };
  const Case kCases[] = {
      {"cold miss", 0, false, 5, DramModel::RowOutcome::kMiss, 60 + 100 + 16},
      {"open-row hit", 5, true, 5, DramModel::RowOutcome::kHit, 100 + 16},
      {"row conflict", 4, true, 5, DramModel::RowOutcome::kConflict, 40 + 60 + 100 + 16},
  };
  for (const Case& c : kCases) {
    DramModel dram(cfg);
    Cycle issue = 0;
    if (c.prepare) {
      // Open prepared_row, then issue the measured access after the bank
      // and bus are idle again.
      const auto prep = dram.read(make_addr(cfg, 0, 0, c.prepared_row, 0), 0);
      issue = prep.done;
    }
    const auto got = dram.read(make_addr(cfg, 0, 0, c.target_row, 1), issue);
    EXPECT_EQ(got.outcome, c.want) << c.name;
    EXPECT_EQ(got.done - issue, c.want_latency) << c.name;
  }
  EXPECT_EQ(DramModel(cfg).transfer_cycles(), 16u);
}

TEST(Dram, SameBankRequestsSerialise) {
  const DramConfig cfg = small_config();
  DramModel dram(cfg);
  // Two conflicting rows of one bank, both issued at cycle 0: the second
  // request waits for the first's row command to finish, then pays the
  // full conflict penalty on top of it.
  const auto first = dram.read(make_addr(cfg, 0, 0, 1, 0), 0);
  EXPECT_EQ(first.outcome, DramModel::RowOutcome::kMiss);
  const Cycle first_cmd_done = dram.bank_busy_until(0, 0);  // data_at, pre-transfer
  const auto second = dram.read(make_addr(cfg, 0, 0, 2, 0), 0);
  EXPECT_EQ(second.outcome, DramModel::RowOutcome::kConflict);
  EXPECT_EQ(second.done, first_cmd_done + 40 + 60 + 100 + 16);
  EXPECT_GT(second.done, first.done);
}

TEST(Dram, DistinctBanksOverlapButShareTheChannelBus) {
  const DramConfig cfg = small_config();
  DramModel dram(cfg);
  // Same channel, different banks: row commands overlap (both cold misses
  // resolve data at cycle 160), the 16-cycle transfers serialise on the bus.
  const auto a = dram.read(make_addr(cfg, 0, 0, 0, 0), 0);
  const auto b = dram.read(make_addr(cfg, 0, 1, 0, 0), 0);
  EXPECT_EQ(a.done, 160u + 16u);
  EXPECT_EQ(b.done, a.done + 16);
}

TEST(Dram, DistinctChannelsFullyOverlap) {
  const DramConfig cfg = small_config();
  DramModel dram(cfg);
  const auto a = dram.read(make_addr(cfg, 0, 0, 0, 0), 0);
  const auto b = dram.read(make_addr(cfg, 1, 0, 0, 0), 0);
  EXPECT_EQ(a.done, b.done);
}

TEST(Dram, WritebackOccupiesBankAndBus) {
  const DramConfig cfg = small_config();
  DramModel dram(cfg);
  dram.write(make_addr(cfg, 0, 0, 7, 0), 0);
  // A read behind the writeback on the same bank pays the bank busy window
  // plus its own (hit) latency; the bus slot is consumed too.
  const auto rd = dram.read(make_addr(cfg, 0, 0, 7, 1), 0);
  EXPECT_EQ(rd.outcome, DramModel::RowOutcome::kHit);
  EXPECT_EQ(rd.done, 160u + 100u + 16u);
  EXPECT_EQ(dram.stats().counter_value("writebacks"), 1u);
  EXPECT_EQ(dram.stats().counter_value("reads"), 1u);
}

TEST(Dram, ClosedPagePaysActivateEveryTimeAndAuditsClean) {
  DramConfig cfg = small_config();
  cfg.open_page = false;
  DramModel dram(cfg);
  const Addr addr = make_addr(cfg, 0, 0, 3, 0);
  const auto first = dram.read(addr, 0);
  EXPECT_EQ(first.outcome, DramModel::RowOutcome::kMiss);
  EXPECT_FALSE(dram.bank_row_open(0, 0));
  // Same row again, bank idle: still a miss (auto-precharged), and the bank
  // was additionally busy tRP past the first access's data.
  const auto second = dram.read(addr, 1000);
  EXPECT_EQ(second.outcome, DramModel::RowOutcome::kMiss);
  EXPECT_EQ(dram.audit_check(), "");
}

TEST(Dram, CriticalBytesZeroTransfersTheFullLine) {
  DramConfig cfg = small_config();
  cfg.critical_bytes = 0;
  EXPECT_EQ(DramModel(cfg).transfer_cycles(), 64u / 8u * 2u);
}

TEST(Dram, OutcomeCountersConserveAcrossMixedTraffic) {
  const DramConfig cfg = small_config();
  DramModel dram(cfg);
  u64 x = 0x2545F4914F6CDD1Dull;
  Cycle when = 0;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;  // xorshift: deterministic pseudo-random traffic
    const Addr addr = static_cast<Addr>(x) & 0xFFFFF;
    if ((x >> 60) & 1)
      dram.write(addr, when);
    else
      dram.read(addr, when);
    when += static_cast<Cycle>((x >> 32) & 0x3F);
  }
  const auto& s = dram.stats();
  EXPECT_EQ(s.counter_value("row_hits") + s.counter_value("row_misses") +
                s.counter_value("row_conflicts"),
            s.counter_value("reads") + s.counter_value("writebacks"));
  EXPECT_EQ(dram.audit_check(), "");
}

// Determinism contract: the model is a pure function of its access history.
// Replaying an identical sequence on a fresh instance reproduces every
// completion cycle; interleaving two single-channel streams in a different
// relative order leaves each stream's timings untouched (channels share no
// state).
TEST(Dram, ReplayIsDeterministicAndChannelsCommute) {
  const DramConfig cfg = small_config();
  struct Req {
    Addr addr;
    Cycle when;
    bool is_write;
  };
  std::vector<Req> trace;
  u64 x = 0x9E3779B97F4A7C15ull;
  Cycle when = 0;
  for (int i = 0; i < 200; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    trace.push_back({static_cast<Addr>(x) & 0x7FFFF, when, ((x >> 59) & 1) != 0});
    when += static_cast<Cycle>((x >> 40) & 0x1F);
  }
  auto run = [&](DramModel& dram, const std::vector<Req>& t) {
    std::vector<Cycle> done;
    for (const Req& r : t)
      done.push_back(r.is_write ? dram.write(r.addr, r.when).done
                                : dram.read(r.addr, r.when).done);
    return done;
  };

  DramModel a(cfg), b(cfg);
  EXPECT_EQ(run(a, trace), run(b, trace));
  EXPECT_EQ(a.stats().counter_value("row_hits"), b.stats().counter_value("row_hits"));

  // Split by channel, replay each stream alone: per-request completions
  // must match the interleaved run (cross-channel requests are independent).
  for (u32 ch = 0; ch < cfg.channels; ++ch) {
    std::vector<Req> stream;
    std::vector<Cycle> interleaved;
    DramModel full(cfg);
    for (const Req& r : trace) {
      const Cycle done = r.is_write ? full.write(r.addr, r.when).done
                                    : full.read(r.addr, r.when).done;
      if (full.map(r.addr).channel == ch) {
        stream.push_back(r);
        interleaved.push_back(done);
      }
    }
    DramModel alone(cfg);
    EXPECT_EQ(run(alone, stream), interleaved) << "channel " << ch;
  }
}

TEST(Dram, ResetRestoresColdState) {
  const DramConfig cfg = small_config();
  DramModel dram(cfg);
  const Addr addr = make_addr(cfg, 1, 2, 9, 0);
  const auto first = dram.read(addr, 0);
  dram.reset();
  EXPECT_FALSE(dram.bank_row_open(1, 2));
  EXPECT_EQ(dram.bank_busy_until(1, 2), 0u);
  const auto again = dram.read(addr, 0);
  EXPECT_EQ(again.done, first.done);
  EXPECT_EQ(again.outcome, DramModel::RowOutcome::kMiss);
}

}  // namespace
}  // namespace tlrob
