// Tests for tlrob-lint itself (tools/lint): every rule in the catalogue is
// proven live by a seeded-violation fixture and proven quiet by a clean
// fixture, plus lexer/suppression/scoping/registry-parsing unit tests.
// Fixtures live in tests/lint/ and are lexed, never compiled.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace tlrob::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(TLROB_LINT_FIXTURE_DIR) + "/" + name;
}

/// Lexes a fixture and runs exactly one rule over it, scope lifted.
std::vector<Finding> run_rule(const std::string& file, const std::string& rule) {
  LexedFile lf = lex_file(fixture(file));
  lf.display_path = file;
  LintOptions opts;
  opts.all_scopes = true;
  opts.rules = {rule};
  return run_file_rules(lf, opts);
}

bool any_message_contains(const std::vector<Finding>& fs, const std::string& needle) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.message.find(needle) != std::string::npos;
  });
}

// ---- D1 --------------------------------------------------------------------

TEST(LintD1, SeededViolationsAreFound) {
  const auto fs = run_rule("d1_violation.cpp", "D1");
  ASSERT_EQ(fs.size(), 2u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "D1");
  EXPECT_TRUE(any_message_contains(fs, "range-for over unordered container 'local'"));
  EXPECT_TRUE(any_message_contains(fs, "iterator over unordered container 'local'"));
}

TEST(LintD1, CleanShapesPass) {
  EXPECT_TRUE(run_rule("d1_clean.cpp", "D1").empty());
}

// ---- D2 --------------------------------------------------------------------

TEST(LintD2, SeededViolationsAreFound) {
  const auto fs = run_rule("d2_violation.cpp", "D2");
  ASSERT_EQ(fs.size(), 6u);  // <ctime> + <random> + random_device + rand + time + T* key
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "D2");
  EXPECT_TRUE(any_message_contains(fs, "#include <random>"));
  EXPECT_TRUE(any_message_contains(fs, "#include <ctime>"));
  EXPECT_TRUE(any_message_contains(fs, "random_device"));
  EXPECT_TRUE(any_message_contains(fs, "'rand()'"));
  EXPECT_TRUE(any_message_contains(fs, "'time()'"));
  EXPECT_TRUE(any_message_contains(fs, "pointer-valued key"));
}

TEST(LintD2, CleanAndSuppressedShapesPass) {
  // d2_clean.cpp contains a <chrono> include and a steady_clock read, both
  // under `tlrob-lint: allow(D2)` — the suppression mechanism itself is
  // what this fixture proves.
  EXPECT_TRUE(run_rule("d2_clean.cpp", "D2").empty());
}

// ---- C1 --------------------------------------------------------------------

TEST(LintC1, OrphanMutexIsFound) {
  const auto fs = run_rule("c1_violation.cpp", "C1");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "C1");
  EXPECT_TRUE(any_message_contains(fs, "orphan_mu_"));
}

TEST(LintC1, AnnotatedMutexPasses) {
  EXPECT_TRUE(run_rule("c1_clean.cpp", "C1").empty());
}

// ---- C2 --------------------------------------------------------------------

TEST(LintC2, NakedLockCallsAreFound) {
  const auto fs = run_rule("c2_violation.cpp", "C2");
  ASSERT_EQ(fs.size(), 5u);  // lock + try_lock + 3x unlock
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "C2");
  EXPECT_TRUE(any_message_contains(fs, ".lock()"));
  EXPECT_TRUE(any_message_contains(fs, ".unlock()"));
  EXPECT_TRUE(any_message_contains(fs, ".try_lock()"));
}

TEST(LintC2, RaiiLockingPasses) {
  EXPECT_TRUE(run_rule("c2_clean.cpp", "C2").empty());
}

// ---- D3 --------------------------------------------------------------------

TEST(LintD3, CleanRegistryAndCodeAgree) {
  std::string err;
  LintOptions opts;
  opts.all_scopes = true;
  opts.registry = parse_registry(fixture("d3_registry_clean.md"), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(opts.registry.size(), 4u);

  LexedFile lf = lex_file(fixture("d3_clean.cpp"));
  lf.display_path = "d3_clean.cpp";
  EXPECT_TRUE(run_registry_check({lf}, opts, "d3_registry_clean.md").empty());
}

TEST(LintD3, BothDirectionsFire) {
  std::string err;
  LintOptions opts;
  opts.all_scopes = true;
  opts.registry = parse_registry(fixture("d3_registry_violation.md"), &err);
  ASSERT_TRUE(err.empty()) << err;

  LexedFile lf = lex_file(fixture("d3_violation.cpp"));
  lf.display_path = "d3_violation.cpp";
  const auto fs = run_registry_check({lf}, opts, "d3_registry_violation.md");
  ASSERT_EQ(fs.size(), 2u);
  // Forward: unregistered literal, reported against the code.
  EXPECT_TRUE(any_message_contains(fs, "unregistered_counter"));
  // Reverse: dead exact entry, reported against the registry file.
  EXPECT_TRUE(any_message_contains(fs, "ghost_counter"));
  EXPECT_TRUE(std::any_of(fs.begin(), fs.end(), [](const Finding& f) {
    return f.path == "d3_registry_violation.md";
  }));
}

TEST(LintD3, TraceFamilyCleanShapesPass) {
  // The trace frontend's counter shapes: exact aggregates via counters[...],
  // a per-thread family behind a "trace.t*" pattern, and a dynamic-prefix
  // export the lexical capture deliberately ignores.
  std::string err;
  LintOptions opts;
  opts.all_scopes = true;
  opts.registry = parse_registry(fixture("d3_registry_trace.md"), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(opts.registry.size(), 5u);

  LexedFile lf = lex_file(fixture("d3_trace.cpp"));
  lf.display_path = "d3_trace.cpp";
  EXPECT_TRUE(run_registry_check({lf}, opts, "d3_registry_trace.md").empty());
}

TEST(LintD3, UnregisteredTraceCounterFires) {
  std::string err;
  LintOptions opts;
  opts.all_scopes = true;
  opts.registry = parse_registry(fixture("d3_registry_trace.md"), &err);
  ASSERT_TRUE(err.empty()) << err;

  LexedFile lf = lex_file(fixture("d3_trace_violation.cpp"));
  lf.display_path = "d3_trace_violation.cpp";
  const auto fs = run_registry_check({lf}, opts, "d3_registry_trace.md");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "D3");
  EXPECT_TRUE(any_message_contains(fs, "trace.bogus_stat"));
}

TEST(LintD3, MissingRegistryBlockIsAnError) {
  std::string err;
  const auto reg = parse_registry(fixture("d1_clean.cpp"), &err);
  EXPECT_TRUE(reg.empty());
  EXPECT_NE(err.find("counter-registry"), std::string::npos);
}

TEST(LintD3, RepoRegistryParses) {
  // The real DESIGN.md block must stay parseable (the repo lint gate needs
  // it); this pins the fence name and comment syntax.
  std::string err;
  const auto reg = parse_registry(std::string(TLROB_LINT_FIXTURE_DIR) + "/../../DESIGN.md", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_GE(reg.size(), 60u);
}

// ---- lexer + suppression ---------------------------------------------------

TEST(LintLexer, CommentsStringsAndIncludes) {
  const LexedFile lf = lex_source("x.cpp",
                                  "#include <unordered_map>\n"
                                  "// comment rand() should vanish\n"
                                  "/* block time() too */\n"
                                  "const char* s = \"rand() in a string\";\n"
                                  "auto raw = R\"(rand() in a raw string)\";\n"
                                  "int real_ident = 7;\n");
  ASSERT_EQ(lf.includes.size(), 1u);
  EXPECT_EQ(lf.includes[0].second, "unordered_map");
  // None of the rand/time mentions survive as identifier tokens.
  for (const Token& t : lf.tokens) {
    if (t.kind == Token::Kind::kIdent) {
      EXPECT_NE(t.text, "rand");
    }
  }
}

TEST(LintLexer, AllowDirectivesCoverOwnAndNextLine) {
  const LexedFile lf = lex_source("x.cpp",
                                  "// tlrob-lint: allow(D2) reviewed: host-side only\n"
                                  "int a;\n"
                                  "int b;\n");
  EXPECT_TRUE(lf.allowed("D2", 1));
  EXPECT_TRUE(lf.allowed("D2", 2));
  EXPECT_FALSE(lf.allowed("D2", 3));
  EXPECT_FALSE(lf.allowed("D1", 2));
}

TEST(LintLexer, AllowFileCoversEverything) {
  const LexedFile lf = lex_source("x.cpp",
                                  "// tlrob-lint: allow-file(D1,C2) generated code\n"
                                  "int a;\n");
  EXPECT_TRUE(lf.allowed("D1", 999));
  EXPECT_TRUE(lf.allowed("C2", 1));
  EXPECT_FALSE(lf.allowed("D2", 1));
}

// ---- scoping ---------------------------------------------------------------

TEST(LintScopes, RulesBindToTheirModules) {
  EXPECT_TRUE(in_scope("D1", "src/runner/sinks.cpp"));
  EXPECT_TRUE(in_scope("D1", "src/obs/chrome_trace.cpp"));
  EXPECT_FALSE(in_scope("D1", "src/sim/smt_sim.cpp"));
  EXPECT_TRUE(in_scope("D2", "src/sim/smt_sim.cpp"));
  EXPECT_FALSE(in_scope("D2", "src/runner/engine.cpp"));
  EXPECT_TRUE(in_scope("C2", "src/common/thread_pool.cpp"));
  EXPECT_TRUE(in_scope("C1", "src/common/sync.hpp"));
  EXPECT_TRUE(in_scope("C2", "src/sim/cmp.cpp"));
  EXPECT_FALSE(in_scope("C2", "src/rob/allocation_policy.cpp"));
  EXPECT_TRUE(in_scope("D3", "tools/tlrob_campaign.cpp"));
}

TEST(LintCatalogue, FiveRules) {
  const auto lines = rule_catalogue();
  ASSERT_EQ(lines.size(), 5u);
  for (const char* id : {"D1", "D2", "D3", "C1", "C2"})
    EXPECT_TRUE(std::any_of(lines.begin(), lines.end(), [&](const std::string& l) {
      return l.rfind(id, 0) == 0;
    })) << id;
}

}  // namespace
}  // namespace tlrob::lint
