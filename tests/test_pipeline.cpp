// Unit tests for the pipeline components: rename/scoreboard, issue queue,
// load/store queue, functional units, fetch policies and DCRA.
#include <gtest/gtest.h>

#include <sstream>

#include "pipeline/dcra.hpp"
#include "pipeline/dyn_inst.hpp"
#include "pipeline/fetch_policy.hpp"
#include "pipeline/func_units.hpp"
#include "pipeline/issue_queue.hpp"
#include "pipeline/lsq.hpp"
#include "pipeline/rename.hpp"
#include "sim/trace.hpp"

namespace tlrob {
namespace {

StaticInst alu(ArchReg d, ArchReg a = kNoReg, ArchReg b = kNoReg) {
  StaticInst si;
  si.op = OpClass::kIntAlu;
  si.dest = d;
  si.src[0] = a;
  si.src[1] = b;
  return si;
}

DynInst dyn(const StaticInst* si, ThreadId tid, u64 tseq) {
  DynInst di;
  di.si = si;
  di.op = si != nullptr ? si->op : OpClass::kNop;
  di.tid = tid;
  di.tseq = tseq;
  di.seq = tseq;
  return di;
}

TEST(Rename, RawDependenceThroughRat) {
  RenameUnit ru(RenameConfig{224, 224, 1, false});
  static const StaticInst producer = alu(ireg(1));
  static const StaticInst consumer = alu(ireg(2), ireg(1));
  DynInst p = dyn(&producer, 0, 1);
  DynInst c = dyn(&consumer, 0, 2);
  ru.rename(p);
  ru.rename(c);
  EXPECT_EQ(c.src_phys[0], p.dest_phys);
  EXPECT_FALSE(ru.is_ready(c.src_phys[0], 100));
  ru.set_ready(p.dest_phys);
  EXPECT_TRUE(ru.is_ready(c.src_phys[0], 100));
}

TEST(Rename, CommitFreesPreviousMapping) {
  RenameUnit ru(RenameConfig{224, 224, 1, false});
  static const StaticInst w1 = alu(ireg(1));
  static const StaticInst w2 = alu(ireg(1));
  DynInst a = dyn(&w1, 0, 1), b = dyn(&w2, 0, 2);
  ru.rename(a);
  const u32 free_after_a = ru.free_int(0);
  ru.rename(b);
  EXPECT_EQ(b.prev_dest_phys, a.dest_phys);
  ru.commit_free(b);  // releases a's register
  EXPECT_EQ(ru.free_int(0), free_after_a);
}

TEST(Rename, SquashUndoRestoresRatAndFreesReg) {
  RenameUnit ru(RenameConfig{224, 224, 1, false});
  static const StaticInst w1 = alu(ireg(1));
  static const StaticInst w2 = alu(ireg(1));
  DynInst a = dyn(&w1, 0, 1), b = dyn(&w2, 0, 2);
  ru.rename(a);
  const PhysReg a_phys = a.dest_phys;
  ru.rename(b);
  ru.squash_undo(b);
  EXPECT_EQ(ru.rat_entry(0, ireg(1)), a_phys);
  static const StaticInst r = alu(ireg(5), ireg(1));
  DynInst c = dyn(&r, 0, 3);
  ru.rename(c);
  EXPECT_EQ(c.src_phys[0], a_phys);
}

TEST(Rename, PerThreadFilesAreIndependent) {
  RenameUnit ru(RenameConfig{224, 224, 2, false});
  static const StaticInst w = alu(ireg(1));
  // Exhaust thread 0's int free list; thread 1 must be unaffected.
  const u32 pool = ru.int_rename_pool();
  for (u64 i = 0; i < pool; ++i) {
    DynInst d = dyn(&w, 0, i + 1);
    ASSERT_TRUE(ru.can_rename(0, w));
    ru.rename(d);
  }
  EXPECT_FALSE(ru.can_rename(0, w));
  EXPECT_TRUE(ru.can_rename(1, w));
  EXPECT_EQ(ru.int_in_use(0), pool);
}

TEST(Rename, SharedPoolIsContended) {
  RenameUnit ru(RenameConfig{224, 224, 4, true});
  EXPECT_EQ(ru.int_rename_pool(), 224u - 4 * kNumIntArchRegs);
  static const StaticInst w = alu(ireg(1));
  for (u64 i = 0; i < ru.int_rename_pool(); ++i) {
    DynInst d = dyn(&w, static_cast<ThreadId>(i % 4), i + 1);
    ASSERT_TRUE(ru.can_rename(d.tid, w));
    ru.rename(d);
  }
  // Pool exhausted for every thread.
  for (ThreadId t = 0; t < 4; ++t) EXPECT_FALSE(ru.can_rename(t, w));
}

TEST(Rename, SharedPoolRejectsTooSmallFiles) {
  EXPECT_THROW(RenameUnit(RenameConfig{128, 224, 4, true}), std::invalid_argument);
}

TEST(Rename, SpecReadyLifecycle) {
  RenameUnit ru(RenameConfig{224, 224, 1, false});
  static const StaticInst w = alu(ireg(1));
  DynInst d = dyn(&w, 0, 1);
  ru.rename(d);
  ru.set_spec_ready(d.dest_phys, 10);
  EXPECT_FALSE(ru.is_ready(d.dest_phys, 9));
  EXPECT_TRUE(ru.is_ready(d.dest_phys, 10));
  EXPECT_TRUE(ru.is_spec(d.dest_phys));
  ru.clear_spec(d.dest_phys);
  EXPECT_FALSE(ru.is_ready(d.dest_phys, 100));
  ru.set_ready(d.dest_phys);
  EXPECT_TRUE(ru.is_ready(d.dest_phys, 0));
  EXPECT_FALSE(ru.is_spec(d.dest_phys));
}

TEST(IssueQueue, InsertRemoveAccounting) {
  IssueQueue iq(4, 2);
  static const StaticInst w = alu(ireg(1));
  DynInst a = dyn(&w, 0, 1), b = dyn(&w, 1, 2);
  iq.insert(&a);
  iq.insert(&b);
  EXPECT_EQ(iq.occupancy(), 2u);
  EXPECT_EQ(iq.occupancy(0), 1u);
  EXPECT_EQ(iq.occupancy(1), 1u);
  iq.remove(&a);
  EXPECT_FALSE(a.in_iq);
  EXPECT_EQ(iq.occupancy(0), 0u);
  iq.remove(&a);  // idempotent
  EXPECT_EQ(iq.occupancy(), 1u);
}

TEST(IssueQueue, ThrowsWhenFull) {
  IssueQueue iq(2, 1);
  static const StaticInst w = alu(ireg(1));
  DynInst a = dyn(&w, 0, 1), b = dyn(&w, 0, 2), c = dyn(&w, 0, 3);
  iq.insert(&a);
  iq.insert(&b);
  EXPECT_FALSE(iq.has_free());
  EXPECT_THROW(iq.insert(&c), std::logic_error);
}

TEST(IssueQueue, CollectFilters) {
  IssueQueue iq(8, 1);
  static const StaticInst w = alu(ireg(1));
  DynInst a = dyn(&w, 0, 1), b = dyn(&w, 0, 2);
  b.issued = true;
  iq.insert(&a);
  iq.insert(&b);
  std::vector<DynInst*> unissued;
  iq.collect_into(unissued, [](DynInst& d) { return !d.issued; });
  ASSERT_EQ(unissued.size(), 1u);
  EXPECT_EQ(unissued[0], &a);
}

// Pins collect_into's selection-order contract: ascending slot index, where
// insert() always takes the lowest free slot — NOT age order. The issue
// stage sorts candidates by seq itself; if collect_into ever changed order
// (or insert stopped reusing the lowest slot), replay-heavy workloads would
// issue in a different sequence and every golden fixture would drift.
TEST(IssueQueue, CollectOrderIsSlotOrderNotAge) {
  IssueQueue iq(8, 1);
  static const StaticInst w = alu(ireg(1));
  DynInst a = dyn(&w, 0, 1), b = dyn(&w, 0, 2), c = dyn(&w, 0, 3), d = dyn(&w, 0, 4);
  iq.insert(&a);  // slot 0
  iq.insert(&b);  // slot 1
  iq.insert(&c);  // slot 2
  iq.remove(&b);  // frees slot 1
  iq.insert(&d);  // the *youngest* instruction recycles the lowest free slot
  std::vector<DynInst*> all;
  iq.collect_into(all, [](DynInst&) { return true; });
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], &a);
  EXPECT_EQ(all[1], &d);  // slot order: d (tseq 4) precedes c (tseq 3)
  EXPECT_EQ(all[2], &c);

  // The scratch buffer is cleared on entry and reused; stale contents and
  // prior capacity must not leak into the result.
  iq.collect_into(all, [](DynInst& di) { return di.tseq >= 3; });
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], &d);
  EXPECT_EQ(all[1], &c);
}

// Regression test for the tracer's cycle-window edges: the window is
// half-open [start, end) — an event at start-1 or end must not print, events
// at start and end-1 must. The fast-forward gate (attached()) is independent
// of the window so the core keeps single-stepping even outside it.
TEST(PipelineTracer, WindowEdgesAreHalfOpen) {
  PipelineTracer tracer;
  static const StaticInst w = alu(ireg(1));
  DynInst di = dyn(&w, 0, 7);

  std::ostringstream log;
  tracer.attach(&log, /*start=*/100, /*end=*/200);
  EXPECT_TRUE(tracer.attached());
  EXPECT_FALSE(tracer.active(99));
  EXPECT_TRUE(tracer.active(100));
  EXPECT_TRUE(tracer.active(199));
  EXPECT_FALSE(tracer.active(200));

  tracer.event(99, "fetch", di);
  tracer.note(99, "early");
  EXPECT_EQ(log.str(), "");
  tracer.event(100, "fetch", di);
  const std::string at_start = log.str();
  EXPECT_NE(at_start.find("100 t0 #7 fetch"), std::string::npos);
  tracer.event(199, "commit", di);
  tracer.note(199, "inside");
  EXPECT_NE(log.str().find("199 t0 #7 commit"), std::string::npos);
  EXPECT_NE(log.str().find("199 -- inside"), std::string::npos);
  const std::string before_end = log.str();
  tracer.event(200, "commit", di);
  tracer.note(200, "late");
  EXPECT_EQ(log.str(), before_end);

  // Detaching clears attached() — and with it the fast-forward inhibition.
  tracer.attach(nullptr);
  EXPECT_FALSE(tracer.attached());
  EXPECT_FALSE(tracer.active(150));
}

// note_if must not evaluate its message builder unless the tracer is active
// at that cycle — that laziness is the whole point of the facility (hot-path
// call sites would otherwise build std::strings on millions of untraced
// cycles).
TEST(PipelineTracer, NoteIfIsLazy) {
  PipelineTracer tracer;
  int builds = 0;
  auto build = [&] {
    ++builds;
    return std::string("expensive message");
  };

  // Detached: builder must not run.
  tracer.note_if(50, build);
  EXPECT_EQ(builds, 0);

  std::ostringstream log;
  tracer.attach(&log, /*start=*/100, /*end=*/200);

  // Attached but outside the window: still no build.
  tracer.note_if(99, build);
  tracer.note_if(200, build);
  EXPECT_EQ(builds, 0);
  EXPECT_EQ(log.str(), "");

  // Inside the window: built exactly once and printed.
  tracer.note_if(150, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(log.str(), "150 -- expensive message\n");
}

StaticInst mem_op(OpClass op) {
  StaticInst si;
  si.op = op;
  si.agen_id = 0;
  if (op == OpClass::kLoad) si.dest = ireg(1);
  return si;
}

TEST(Lsq, ConservativeLoadOrdering) {
  LoadStoreQueue lsq(8);
  static const StaticInst st = mem_op(OpClass::kStore);
  static const StaticInst ld = mem_op(OpClass::kLoad);
  DynInst s = dyn(&st, 0, 1);
  DynInst l = dyn(&ld, 0, 2);
  s.mem_addr = 0x100;
  l.mem_addr = 0x200;
  lsq.push(&s);
  lsq.push(&l);
  EXPECT_FALSE(lsq.older_stores_resolved(l));
  s.addr_resolved = true;
  EXPECT_TRUE(lsq.older_stores_resolved(l));
}

TEST(Lsq, ForwardsFromYoungestOlderOverlappingStore) {
  LoadStoreQueue lsq(8);
  static const StaticInst st = mem_op(OpClass::kStore);
  static const StaticInst ld = mem_op(OpClass::kLoad);
  DynInst s1 = dyn(&st, 0, 1), s2 = dyn(&st, 0, 2), l = dyn(&ld, 0, 3);
  s1.mem_addr = s2.mem_addr = l.mem_addr = 0x100;
  s1.addr_resolved = s2.addr_resolved = true;
  lsq.push(&s1);
  lsq.push(&s2);
  lsq.push(&l);
  EXPECT_EQ(lsq.forwarding_store(l), &s2);
  s2.mem_addr = 0x900;  // no longer overlaps
  EXPECT_EQ(lsq.forwarding_store(l), &s1);
  s1.mem_addr = 0x500;
  EXPECT_EQ(lsq.forwarding_store(l), nullptr);
}

TEST(Lsq, SquashRemovesSuffixOnly) {
  LoadStoreQueue lsq(8);
  static const StaticInst st = mem_op(OpClass::kStore);
  DynInst a = dyn(&st, 0, 1), b = dyn(&st, 0, 5), c = dyn(&st, 0, 9);
  lsq.push(&a);
  lsq.push(&b);
  lsq.push(&c);
  lsq.squash_after(5);
  EXPECT_EQ(lsq.occupancy(), 2u);
  EXPECT_FALSE(c.lsq_allocated);
  EXPECT_TRUE(b.lsq_allocated);
}

TEST(Lsq, PopEnforcesOrder) {
  LoadStoreQueue lsq(4);
  static const StaticInst st = mem_op(OpClass::kStore);
  DynInst a = dyn(&st, 0, 1), b = dyn(&st, 0, 2);
  lsq.push(&a);
  lsq.push(&b);
  EXPECT_THROW(lsq.pop(&b), std::logic_error);
  lsq.pop(&a);
  lsq.pop(&b);
  EXPECT_EQ(lsq.occupancy(), 0u);
}

TEST(FuncUnits, Table1Latencies) {
  FuncUnitPool fu;
  EXPECT_EQ(fu.timing(OpClass::kIntAlu).latency, 1u);
  EXPECT_EQ(fu.timing(OpClass::kIntMult).latency, 3u);
  EXPECT_EQ(fu.timing(OpClass::kIntDiv).latency, 20u);
  EXPECT_EQ(fu.timing(OpClass::kIntDiv).interval, 19u);
  EXPECT_EQ(fu.timing(OpClass::kFpAdd).latency, 2u);
  EXPECT_EQ(fu.timing(OpClass::kFpMult).latency, 4u);
  EXPECT_EQ(fu.timing(OpClass::kFpDiv).latency, 12u);
  EXPECT_EQ(fu.timing(OpClass::kFpSqrt).latency, 24u);
  EXPECT_EQ(fu.group_size(OpClass::kIntAlu), 8u);
  EXPECT_EQ(fu.group_size(OpClass::kLoad), 4u);
  EXPECT_EQ(fu.group_size(OpClass::kFpMult), 4u);
}

TEST(FuncUnits, UnpipelinedDivBlocksItsUnit) {
  FuncUnitPool fu;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fu.can_issue(OpClass::kIntDiv, 0));
    fu.issue(OpClass::kIntDiv, 0);
  }
  EXPECT_FALSE(fu.can_issue(OpClass::kIntDiv, 0));
  EXPECT_FALSE(fu.can_issue(OpClass::kIntMult, 5));  // same units
  EXPECT_TRUE(fu.can_issue(OpClass::kIntDiv, 19));
}

TEST(FuncUnits, PipelinedUnitsFreeNextCycle) {
  FuncUnitPool fu;
  for (int i = 0; i < 8; ++i) fu.issue(OpClass::kIntAlu, 0);
  EXPECT_FALSE(fu.can_issue(OpClass::kIntAlu, 0));
  EXPECT_TRUE(fu.can_issue(OpClass::kIntAlu, 1));
}

TEST(FetchPolicy, IcountPrefersLeastLoaded) {
  auto p = FetchPolicy::create(FetchPolicyKind::kIcount, nullptr);
  std::vector<ThreadFetchView> v(3);
  v[0].frontend_count = 10;
  v[1].frontend_count = 2;
  v[2].iq_count = 5;
  std::vector<ThreadId> order;
  p->order(v, 0, order);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(FetchPolicy, StallGatesOnOutstandingL2) {
  auto p = FetchPolicy::create(FetchPolicyKind::kStall, nullptr);
  std::vector<ThreadFetchView> v(2);
  v[0].outstanding_l2 = 1;
  EXPECT_FALSE(p->may_fetch(0, v));
  EXPECT_TRUE(p->may_fetch(1, v));
  EXPECT_FALSE(p->flush_on_l2_miss());
}

TEST(FetchPolicy, FlushRequestsSquash) {
  auto p = FetchPolicy::create(FetchPolicyKind::kFlush, nullptr);
  EXPECT_TRUE(p->flush_on_l2_miss());
  EXPECT_EQ(p->kind(), FetchPolicyKind::kFlush);
}

TEST(FetchPolicy, RoundRobinRotates) {
  auto p = FetchPolicy::create(FetchPolicyKind::kRoundRobin, nullptr);
  std::vector<ThreadFetchView> v(4);
  std::vector<ThreadId> order;
  p->order(v, 0, order);
  EXPECT_EQ(order[0], 0u);
  p->order(v, 1, order);
  EXPECT_EQ(order[0], 1u);
  p->order(v, 5, order);
  EXPECT_EQ(order[0], 1u);
}

TEST(Dcra, ClassifiesByOutstandingL1) {
  DcraController dcra(DcraConfig{}, 2);
  std::vector<ThreadFetchView> v(2);
  v[0].outstanding_l1 = 2;
  dcra.classify(v);
  EXPECT_TRUE(dcra.is_slow(0));
  EXPECT_FALSE(dcra.is_slow(1));
}

TEST(Dcra, SlowThreadsGetLargerBaseShare) {
  DcraController dcra(DcraConfig{}, 4);
  std::vector<ThreadFetchView> v(4);
  v[0].outstanding_l1 = 1;  // one slow, three fast
  dcra.classify(v);
  EXPECT_GT(dcra.base_share(0, 64), dcra.base_share(1, 64));
}

TEST(Dcra, FastThreadsAreNeverThrottled) {
  DcraController dcra(DcraConfig{}, 4);
  std::vector<ThreadFetchView> v(4);
  v[0].outstanding_l1 = 1;
  dcra.classify(v);
  EXPECT_EQ(dcra.cap(1, 64), 64u);
  EXPECT_EQ(dcra.cap(0, 64), 64u);  // slow: advisory estimate, not a hard cap
}

}  // namespace
}  // namespace tlrob
