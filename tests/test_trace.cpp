// Trace-frontend tests: the ChampSim record codec, micro-op lowering,
// deterministic replay, the workload resolver's error contract, and the
// campaign runner's handling of trace workloads — including the malformed-
// input paths, every one of which must surface as a structured per-job
// failure (or a typed exception at resolution), never a crash.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "rob/allocation_policy.hpp"
#include "runner/engine.hpp"
#include "sim/presets.hpp"
#include "trace/byte_source.hpp"
#include "trace/champsim.hpp"
#include "trace/lowering.hpp"
#include "trace/resolve.hpp"
#include "trace/source.hpp"
#include "trace/synth.hpp"
#include "workload/mixes.hpp"

namespace tlrob::trace {
namespace {

using runner::CampaignResult;
using runner::CampaignSpec;
using runner::EngineOptions;
using runner::JobRecord;
using runner::JobStatus;
using runner::run_campaign;
using runner::to_json_line;

std::string temp_file(const std::string& stem) { return testing::TempDir() + stem; }

ChampSimRecord load_record(u64 ip, u64 addr, u8 dest = 1, u8 src = 2) {
  ChampSimRecord rec;
  rec.ip = ip;
  rec.dest_regs[0] = dest;
  rec.src_regs[0] = src;
  rec.src_mem[0] = addr;
  return rec;
}

// -- codec ------------------------------------------------------------------

TEST(TraceCodec, WireRoundTrip) {
  ChampSimRecord rec;
  rec.ip = 0x123456789abcdef0ULL;
  rec.is_branch = 1;
  rec.branch_taken = 1;
  rec.dest_regs = {26, 6};
  rec.src_regs = {26, 25, 3, 0};
  rec.dest_mem = {0xdeadbeef, 0};
  rec.src_mem = {0x1000, 0x2000, 0, 0x4000};

  u8 wire[kRecordBytes];
  serialize_record(rec, wire);
  const ChampSimRecord back = deserialize_record(wire);
  EXPECT_EQ(back.ip, rec.ip);
  EXPECT_EQ(back.is_branch, rec.is_branch);
  EXPECT_EQ(back.branch_taken, rec.branch_taken);
  EXPECT_EQ(back.dest_regs, rec.dest_regs);
  EXPECT_EQ(back.src_regs, rec.src_regs);
  EXPECT_EQ(back.dest_mem, rec.dest_mem);
  EXPECT_EQ(back.src_mem, rec.src_mem);

  // The hash is over wire bytes, so it must be invariant under a round trip.
  EXPECT_EQ(fnv1a_record(kFnvOffsetBasis, rec), fnv1a_record(kFnvOffsetBasis, back));
}

TEST(TraceCodec, SynthesizedBranchConventionsClassify) {
  // The transcription conventions in synth.cpp must land on the ChampSim
  // branch kinds they were designed for.
  ChampSimRecord cond;
  cond.is_branch = 1;
  cond.src_regs = {kRegInstructionPointer, kRegFlags, 0, 0};
  cond.dest_regs = {kRegInstructionPointer, 0};
  EXPECT_EQ(classify_branch(cond), BranchKind::kConditional);

  ChampSimRecord jump;
  jump.is_branch = 1;
  jump.dest_regs = {kRegInstructionPointer, 0};
  EXPECT_EQ(classify_branch(jump), BranchKind::kDirectJump);

  ChampSimRecord call;
  call.is_branch = 1;
  call.src_regs = {kRegInstructionPointer, kRegStackPointer, 0, 0};
  call.dest_regs = {kRegInstructionPointer, kRegStackPointer};
  EXPECT_EQ(classify_branch(call), BranchKind::kDirectCall);

  ChampSimRecord ret;
  ret.is_branch = 1;
  ret.src_regs = {kRegStackPointer, 0, 0, 0};
  ret.dest_regs = {kRegInstructionPointer, kRegStackPointer};
  EXPECT_EQ(classify_branch(ret), BranchKind::kReturn);

  ChampSimRecord plain;
  EXPECT_EQ(classify_branch(plain), BranchKind::kNotBranch);
}

// -- lowering ---------------------------------------------------------------

TEST(TraceLowering, MemoryRecordSplitsIntoAgenAndAccessUops) {
  ChampSimRecord rec;
  rec.ip = 0x400000;
  rec.dest_regs = {1, 0};
  rec.src_regs = {2, 3, 0, 0};
  rec.src_mem = {0x1000, 0x2000, 0, 0};  // two loads
  rec.dest_mem = {0x3000, 0};            // one store

  const std::vector<StaticInst> uops = lower_record(rec);
  ASSERT_EQ(uops.size(), 4u);  // agen + 2 loads + 1 store
  EXPECT_EQ(uops[0].op, OpClass::kIntAlu);
  EXPECT_EQ(uops[0].dest, kAgenTempReg);
  EXPECT_EQ(uops[1].op, OpClass::kLoad);
  EXPECT_EQ(uops[1].src[0], kAgenTempReg);      // depends on address generation
  EXPECT_EQ(uops[1].dest, map_trace_reg(1));    // first load writes the real dest
  EXPECT_EQ(uops[2].op, OpClass::kLoad);
  EXPECT_EQ(uops[2].dest, kValueTempReg);       // second load has no dest slot left
  EXPECT_EQ(uops[3].op, OpClass::kStore);
  EXPECT_EQ(uops[3].src[0], kAgenTempReg);
}

TEST(TraceLowering, RegisterMapAvoidsReservedScratch) {
  EXPECT_EQ(map_trace_reg(0), kNoReg);
  EXPECT_EQ(map_trace_reg(kRegInstructionPointer), kNoReg);
  for (u8 r = 1; r < kMaxTraceReg; ++r) {
    if (r == kRegInstructionPointer) continue;
    const ArchReg m = map_trace_reg(r);
    EXPECT_NE(m, kNoReg) << static_cast<int>(r);
    EXPECT_NE(m, kAgenTempReg) << static_cast<int>(r);
    EXPECT_NE(m, kValueTempReg) << static_cast<int>(r);
  }
  // 33..64 are the FP file.
  EXPECT_TRUE(is_fp_reg(map_trace_reg(33)));
  EXPECT_TRUE(is_fp_reg(map_trace_reg(64)));
  EXPECT_FALSE(is_fp_reg(map_trace_reg(32)));
  EXPECT_FALSE(is_fp_reg(map_trace_reg(65)));
}

TEST(TraceLowering, ZeroRecordTraceThrows) {
  EXPECT_THROW(TraceWorkload::from_records("empty", {}), std::runtime_error);
}

TEST(TraceLowering, OutOfRangeRegisterThrows) {
  std::vector<ChampSimRecord> recs = {load_record(0x400000, 0x1000)};
  recs.push_back(load_record(0x400040, 0x2000));
  recs[1].src_regs[2] = 200;  // >= kMaxTraceReg
  try {
    TraceWorkload::from_records("badreg", recs);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // The diagnostic names the offending record and register.
    EXPECT_NE(std::string(e.what()).find("record 1"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("200"), std::string::npos) << e.what();
  }
}

// -- byte sources & malformed files ----------------------------------------

TEST(TraceFiles, RawFileRoundTrip) {
  const auto recs = synthesize_records("art", 200, 3);
  const std::string path = temp_file("roundtrip.trace");
  write_trace_file(path, recs);

  const auto wl = TraceWorkload::from_file(path);
  EXPECT_EQ(wl->lowering().record_count, 200u);

  // Content identity is backend-independent: the same records loaded from
  // memory hash identically to the file-backed load.
  const auto mem = TraceWorkload::from_records("mem", recs);
  EXPECT_EQ(wl->lowering().content_hash, mem->lowering().content_hash);
}

TEST(TraceFiles, GzipFileRoundTrip) {
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  const auto recs = synthesize_records("mcf", 150, 5);
  const std::string gz_path = temp_file("roundtrip.trace.gz");
  write_trace_file(gz_path, recs);

  const auto wl = TraceWorkload::from_file(gz_path);
  EXPECT_EQ(wl->lowering().record_count, 150u);
  EXPECT_EQ(wl->lowering().content_hash,
            TraceWorkload::from_records("mem", recs)->lowering().content_hash);
}

TEST(TraceFiles, MidRecordTruncationThrows) {
  const auto recs = synthesize_records("art", 10, 1);
  auto bytes = records_to_bytes(recs);
  bytes.resize(bytes.size() - 17);  // chop mid-record
  const std::string path = temp_file("truncated.trace");
  std::ofstream(path, std::ios::binary)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  try {
    TraceWorkload::from_file(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mid-record"), std::string::npos) << e.what();
  }
}

TEST(TraceFiles, TruncatedGzipStreamThrows) {
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  const auto recs = synthesize_records("art", 2000, 1);
  const std::string gz_path = temp_file("corrupt.trace.gz");
  write_trace_file(gz_path, recs);

  // Chop the compressed stream in half: inflate then ends prematurely.
  std::ifstream in(gz_path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string whole = ss.str();
  const std::string cut_path = temp_file("cut.trace.gz");
  std::ofstream(cut_path, std::ios::binary).write(whole.data(), whole.size() / 2);

  EXPECT_THROW(TraceWorkload::from_file(cut_path), std::runtime_error);
}

TEST(TraceFiles, MissingFileThrows) {
  EXPECT_THROW(TraceWorkload::from_file(temp_file("does_not_exist.trace")),
               std::runtime_error);
}

// -- replay -----------------------------------------------------------------

TEST(TraceReplay, DeterministicAndRewinding) {
  const Benchmark bench = resolve_benchmark("tracegen:art@300@5");
  ASSERT_TRUE(bench.source_factory);

  auto a = bench.source_factory(bench, Addr{1} << 36, 101);
  auto b = bench.source_factory(bench, Addr{1} << 36, 909);  // salt must not matter
  for (int i = 0; i < 2000; ++i) {
    const ArchOp x = a->next();
    const ArchOp y = b->next();
    ASSERT_EQ(x.pc, y.pc) << i;
    ASSERT_EQ(x.mem_addr, y.mem_addr) << i;
    ASSERT_EQ(x.taken, y.taken) << i;
    ASSERT_EQ(x.target_pc, y.target_pc) << i;
    ASSERT_EQ(x.si, y.si) << i;  // same shared program
  }
  // 2000 uops over a 300-record trace must have wrapped at least once.
  const auto* src = dynamic_cast<const TraceThreadSource*>(a.get());
  ASSERT_NE(src, nullptr);
  EXPECT_GT(src->reader().rewinds(), 0u);
  EXPECT_GT(src->reader().records_decoded(), 300u);
}

TEST(TraceReplay, AddressesStayInThreadWindow) {
  const Benchmark bench = resolve_benchmark("tracegen:mcf@200@7");
  const Addr base = Addr{3} << 36;
  auto src = bench.source_factory(bench, base, 1);
  for (int i = 0; i < 1000; ++i) {
    const ArchOp op = src->next();
    if (op.si->is_load() || op.si->is_store()) {
      EXPECT_GE(op.mem_addr, base) << i;
      EXPECT_LT(op.mem_addr, base + (Addr{1} << 36)) << i;
    }
  }
}

TEST(TraceReplay, SourceCountersExported) {
  const Benchmark bench = resolve_benchmark("tracegen:art@100@2");
  auto src = bench.source_factory(bench, Addr{1} << 36, 1);
  for (int i = 0; i < 500; ++i) src->next();

  std::map<std::string, u64> counters;
  src->append_source_counters(2, counters);
  EXPECT_GT(counters.at("trace.records_decoded"), 0u);
  EXPECT_GT(counters.at("trace.rewinds"), 0u);
  EXPECT_GT(counters.at("trace.t2.records_decoded"), 0u);
  EXPECT_NE(counters.at("trace.t2.content_hash"), 0u);
  EXPECT_EQ(counters.count("trace.t0.records_decoded"), 0u);  // only tid 2
}

// -- resolver ---------------------------------------------------------------

TEST(TraceResolve, UnknownWorkloadListsBackends) {
  try {
    resolve_benchmark("not_a_workload");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("available workload backends"), std::string::npos) << msg;
    EXPECT_NE(msg.find("trace:<file>"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tracegen:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("art"), std::string::npos) << msg;  // synthetic mixes listed
  }
}

TEST(TraceResolve, WorkloadMixForms) {
  const Mix m = workload_mix("art,trace:/tmp/x.gz,tracegen:mcf@100@1");
  EXPECT_EQ(m.benchmarks,
            (std::vector<std::string>{"art", "trace:/tmp/x.gz", "tracegen:mcf@100@1"}));

  EXPECT_EQ(workload_mix("mix:3").name, table2_mix(3).name);
  EXPECT_EQ(workload_mix("mix:3").benchmarks, table2_mix(3).benchmarks);

  EXPECT_THROW(workload_mix(""), std::invalid_argument);
  EXPECT_THROW(workload_mix("mix:12"), std::out_of_range);
  EXPECT_THROW(workload_mix("art,,mcf"), std::invalid_argument);
  EXPECT_THROW(workload_mix("trace:"), std::invalid_argument);
  EXPECT_THROW(workload_mix("tracegen:art"), std::invalid_argument);        // no @records
  EXPECT_THROW(workload_mix("tracegen:art@0"), std::invalid_argument);      // zero records
  EXPECT_THROW(workload_mix("tracegen:nosuch@10"), std::invalid_argument);  // bad profile
  EXPECT_THROW(workload_mix("tracegen:art@ten"), std::invalid_argument);
}

TEST(TraceResolve, BenchmarkNameRoundTrips) {
  const Benchmark b = resolve_benchmark("tracegen:art@100@1");
  EXPECT_EQ(b.name, "tracegen:art@100@1");
  // The memo hands back the same shared workload on the second resolution.
  const Benchmark c = resolve_benchmark(b.name);
  EXPECT_EQ(b.program.get(), c.program.get());
}

// -- campaign integration ---------------------------------------------------

CampaignSpec trace_spec(const std::string& workload) {
  const Mix mix = workload_mix(workload);
  CampaignSpec spec;
  spec.name = "trace_test";
  spec.columns = {{"Baseline_32", baseline32_config(), 0},
                  {"R-ROB16", two_level_config(RobScheme::kReactive, 16), 0}};
  for (auto& c : spec.columns)
    c.config.num_threads = static_cast<u32>(mix.benchmarks.size());
  spec.mixes = {mix};
  spec.lengths = {{1500, 300}};
  return spec;
}

std::string jsonl_of(const CampaignResult& result) {
  std::string out;
  for (const JobRecord& rec : result.records) out += to_json_line(rec) + "\n";
  return out;
}

TEST(TraceCampaign, ByteIdenticalAcrossWorkerCountsAndInvocations) {
  const CampaignSpec spec = trace_spec("tracegen:art@400@3,tracegen:mcf@400@4");
  EngineOptions serial;
  serial.jobs = 1;
  EngineOptions parallel;
  parallel.jobs = 4;

  const std::string first = jsonl_of(run_campaign(spec, serial));
  const std::string wide = jsonl_of(run_campaign(spec, parallel));
  const std::string again = jsonl_of(run_campaign(spec, serial));
  EXPECT_EQ(first, wide);
  EXPECT_EQ(first, again);
  EXPECT_NE(first.find("\"trace.records_decoded\""), std::string::npos);
  EXPECT_NE(first.find("\"trace.t0.content_hash\""), std::string::npos);
  EXPECT_NE(first.find("\"trace.t1.content_hash\""), std::string::npos);
}

TEST(TraceCampaign, MissingTraceFileIsStructuredFailure) {
  const CampaignSpec spec = trace_spec("trace:" + temp_file("nope.trace") + ",art");
  const CampaignResult result = run_campaign(spec, EngineOptions{});
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.failed, 2u);
  for (const JobRecord& rec : result.records) {
    EXPECT_EQ(rec.status, JobStatus::kFailed);
    EXPECT_NE(rec.error.find("cannot open trace file"), std::string::npos) << rec.error;
  }
}

TEST(TraceCampaign, TruncatedTraceFileIsStructuredFailure) {
  auto bytes = records_to_bytes(synthesize_records("art", 20, 1));
  bytes.resize(bytes.size() - 5);
  const std::string path = temp_file("job_truncated.trace");
  std::ofstream(path, std::ios::binary)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));

  const CampaignSpec spec = trace_spec("trace:" + path + ",art");
  const CampaignResult result = run_campaign(spec, EngineOptions{});
  ASSERT_EQ(result.records.size(), 2u);
  for (const JobRecord& rec : result.records) {
    EXPECT_EQ(rec.status, JobStatus::kFailed);
    EXPECT_NE(rec.error.find("mid-record"), std::string::npos) << rec.error;
  }
}

}  // namespace
}  // namespace tlrob::trace
