// Guards on the workload calibration: the properties of the synthetic SPEC
// profiles that the paper's mechanism discriminates on. If a profile change
// breaks one of these, every figure moves — these tests catch it first.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/smt_sim.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob {
namespace {

RunResult run_single(const char* bench, RobScheme scheme, u32 threshold, u64 insts = 40000) {
  MachineConfig cfg = scheme == RobScheme::kBaseline ? baseline32_config()
                                                     : two_level_config(scheme, threshold);
  cfg.num_threads = 1;
  SmtCore core(cfg, {spec_benchmark(bench)});
  return core.run(insts, 0, 20000);
}

// Gather- and stream-class benchmarks carry low-DoD long-latency loads: they
// must actually qualify for (and use) the second level.
class LowDodBeneficiary : public ::testing::TestWithParam<const char*> {};

TEST_P(LowDodBeneficiary, QualifiesForSecondLevel) {
  const RunResult r = run_single(GetParam(), RobScheme::kReactive, 16);
  EXPECT_GT(run_counter(r, "rob2.allocations"), 0u) << GetParam();
  EXPECT_GT(run_counter(r, "rob2.busy_cycles"), r.cycles / 20) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Gathers, LowDodBeneficiary,
                         ::testing::Values("art", "lucas", "equake", "mgrid", "apsi",
                                           "swim"));

// Pointer-chase benchmarks put (nearly) their whole window behind each miss:
// the DoD filter must reject them most of the time.
class HighDodExcluded : public ::testing::TestWithParam<const char*> {};

TEST_P(HighDodExcluded, MostCandidatesRejected) {
  const RunResult r = run_single(GetParam(), RobScheme::kReactive, 16);
  const u64 rejected = run_counter(r, "rob.rejected_high_dod");
  const u64 granted = run_counter(r, "rob.lease_grants_or_renewals");
  EXPECT_GT(rejected, granted) << GetParam()
                               << ": the chase class should mostly fail the DoD test";
}

INSTANTIATE_TEST_SUITE_P(Chases, HighDodExcluded, ::testing::Values("ammp", "mcf"));

// The miss-service DoD distributions that Figure 1 plots: typical counts are
// small, and the hardware proxy over-approximates the true dependents.
TEST(WorkloadCharacter, GatherDodIsSmallChaseDodIsLarge) {
  const RunResult art = run_single("art", RobScheme::kBaseline, 0);
  const RunResult mcf = run_single("mcf", RobScheme::kBaseline, 0, 20000);
  ASSERT_GT(art.dod_true.total_samples(), 50u);
  ASSERT_GT(mcf.dod_true.total_samples(), 50u);
  // Typical counts are small (the Figure 1 shape)...
  EXPECT_LT(art.dod_true.mean(), 14.0);
  // ...and the hardware proxy over-approximates true dependents. (The
  // scheme-discriminating property — chase candidates failing the threshold
  // where gathers pass — is asserted by the allocation tests above, on the
  // decision-time first-level count rather than these service-time means.)
  EXPECT_GE(art.dod_proxy.mean(), art.dod_true.mean() * 0.8);
  EXPECT_GE(mcf.dod_proxy.mean(), 6.0);
}

// The SMT-contention premise: a gather benchmark with a reuse set runs much
// closer to its solo speed alone than inside a memory-bound mix (shared-L2
// thrash), which is what makes it the thread the mechanism rescues.
TEST(WorkloadCharacter, ReuseSetsThrashUnderSharing) {
  const double st = single_thread_ipc("art", 40000);
  const MixOutcome mix = run_mix(baseline32_config(), table2_mix(1), 40000);
  double art_mt = 0;
  for (size_t t = 0; t < mix.run.threads.size(); ++t)
    if (mix.run.threads[t].benchmark == "art") art_mt = mix.run.threads[t].ipc;
  EXPECT_LT(art_mt, 0.8 * st) << "art should lose most of its reuse set under sharing";
}

// The Figure 2 headline shapes, at test scale: the reactive two-level design
// must beat Baseline_32 on the memory-bound mixes, and blindly scaling the
// private ROBs to 128 must not.
TEST(WorkloadCharacter, HeadlineShapeOnMemoryBoundMixes) {
  double ft_base = 0, ft_rrob = 0, ft_b128 = 0;
  for (u32 m : {1u, 2u, 3u, 4u}) {
    ft_base += run_mix(baseline32_config(), table2_mix(m), 40000).ft;
    ft_rrob += run_mix(two_level_config(RobScheme::kReactive, 16), table2_mix(m), 40000).ft;
    ft_b128 += run_mix(baseline128_config(), table2_mix(m), 40000).ft;
  }
  EXPECT_GT(ft_rrob, ft_base * 1.05) << "R-ROB16 must clearly beat Baseline_32";
  EXPECT_GT(ft_rrob, ft_b128 * 0.95) << "R-ROB16 must not lose to Baseline_128";
}

// Compute-class threads must stay unharmed by the two-level mechanism (the
// paper's "without adversely impacting other applications" claim).
TEST(WorkloadCharacter, ComputeThreadsNotHurtByTwoLevel) {
  const MixOutcome base = run_mix(baseline32_config(), table2_mix(5), 40000);
  const MixOutcome rrob = run_mix(two_level_config(RobScheme::kReactive, 16), table2_mix(5), 40000);
  double crafty_base = 0, crafty_rrob = 0;
  for (size_t t = 0; t < base.run.threads.size(); ++t)
    if (base.run.threads[t].benchmark == "crafty") {
      crafty_base = base.mt_ipc[t];
      crafty_rrob = rrob.mt_ipc[t];
    }
  EXPECT_GT(crafty_rrob, 0.85 * crafty_base);
}

}  // namespace
}  // namespace tlrob
