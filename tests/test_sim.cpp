// Integration tests for the SMT core, metrics, presets and experiment
// harness: short end-to-end runs checking the machine's externally visible
// behaviour and the paper's mechanisms working together.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/presets.hpp"
#include "sim/smt_sim.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob {
namespace {

TEST(Metrics, WeightedIpcAndFairThroughput) {
  EXPECT_DOUBLE_EQ(weighted_ipc(0.5, 1.0), 0.5);
  EXPECT_THROW(weighted_ipc(0.5, 0.0), std::invalid_argument);
  // Harmonic mean of {1.0, 0.5} = 2/(1+2) = 0.666...
  EXPECT_NEAR(fair_throughput({1.0, 0.5}, {1.0, 1.0}), 2.0 / 3.0, 1e-12);
  // Equal weighted IPCs: FT equals that value.
  EXPECT_NEAR(fair_throughput({0.4, 0.8}, {1.0, 2.0}), 0.4, 1e-12);
  EXPECT_THROW(fair_throughput({}, {}), std::invalid_argument);
  EXPECT_THROW(fair_throughput({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Metrics, FairThroughputPenalisesImbalance) {
  // Same total throughput, one balanced one imbalanced: FT prefers balance.
  const double balanced = fair_throughput({0.5, 0.5}, {1.0, 1.0});
  const double imbalanced = fair_throughput({0.9, 0.1}, {1.0, 1.0});
  EXPECT_GT(balanced, imbalanced);
}

TEST(Presets, Table1Values) {
  const MachineConfig cfg = baseline32_config();
  EXPECT_EQ(cfg.num_threads, 4u);
  EXPECT_EQ(cfg.rob_first_level, 32u);
  EXPECT_EQ(cfg.rob_second_level, 0u);
  EXPECT_EQ(cfg.iq_entries, 64u);
  EXPECT_EQ(cfg.lsq_entries, 48u);
  EXPECT_EQ(cfg.int_regs, 224u);
  EXPECT_EQ(baseline128_config().rob_first_level, 128u);
  const MachineConfig tl = two_level_config(RobScheme::kCdr, 15);
  EXPECT_EQ(tl.rob.scheme, RobScheme::kCdr);
  EXPECT_EQ(tl.rob.dod_threshold, 15u);
  EXPECT_EQ(tl.rob_second_level, 384u);
  EXPECT_EQ(single_thread_config().num_threads, 1u);
  EXPECT_FALSE(describe(cfg).empty());
}

TEST(SmtCore, RejectsMismatchedBenchmarkCount) {
  MachineConfig cfg = baseline32_config();
  EXPECT_THROW(SmtCore(cfg, {spec_benchmark("art")}), std::invalid_argument);
}

TEST(SmtCore, SingleThreadRunsToCompletion) {
  MachineConfig cfg = single_thread_config();
  SmtCore core(cfg, {spec_benchmark("crafty")});
  const RunResult r = core.run(5000);
  EXPECT_GE(r.threads[0].committed, 5000u);
  EXPECT_GT(r.threads[0].ipc, 0.5);
  EXPECT_EQ(run_counter(r, "core.commit.wrong_path_bug"), 0u);
}

TEST(SmtCore, DeterministicForSameSeed) {
  auto run_once = [] {
    MachineConfig cfg = two_level_config(RobScheme::kReactive, 16);
    SmtCore core(cfg, mix_benchmarks(table2_mix(2)));
    return core.run(5000);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  for (size_t t = 0; t < a.threads.size(); ++t)
    EXPECT_EQ(a.threads[t].committed, b.threads[t].committed);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(SmtCore, SeedChangesTheRun) {
  MachineConfig a = baseline32_config(), b = baseline32_config();
  b.seed = a.seed + 1;
  SmtCore ca(a, mix_benchmarks(table2_mix(2)));
  SmtCore cb(b, mix_benchmarks(table2_mix(2)));
  EXPECT_NE(ca.run(5000).cycles, cb.run(5000).cycles);
}

TEST(SmtCore, FourThreadsAllMakeProgress) {
  SmtCore core(baseline32_config(), mix_benchmarks(table2_mix(5)));
  const RunResult r = core.run(8000);
  for (const auto& t : r.threads) EXPECT_GT(t.committed, 100u) << t.benchmark;
}

TEST(SmtCore, BaselineNeverTouchesSecondLevel) {
  SmtCore core(baseline32_config(), mix_benchmarks(table2_mix(1)));
  const RunResult r = core.run(8000);
  EXPECT_EQ(run_counter(r, "rob2.allocations"), 0u);
  for (ThreadId t = 0; t < 4; ++t) EXPECT_EQ(core.rob(t).capacity(), 32u);
}

TEST(SmtCore, TwoLevelAllocatesOnMemoryBoundMix) {
  SmtCore core(two_level_config(RobScheme::kReactive, 16), mix_benchmarks(table2_mix(1)));
  const RunResult r = core.run(20000);
  EXPECT_GT(run_counter(r, "rob2.allocations"), 0u);
  EXPECT_GT(run_counter(r, "rob2.busy_cycles"), 0u);
  EXPECT_EQ(run_counter(r, "rob.allocations"), run_counter(r, "rob2.allocations"));
}

TEST(SmtCore, DodHistogramsPopulatedOnMisses) {
  SmtCore core(baseline32_config(), mix_benchmarks(table2_mix(1)));
  const RunResult r = core.run(20000);
  EXPECT_GT(r.dod_true.total_samples(), 0u);
  EXPECT_EQ(r.dod_true.total_samples(), r.dod_proxy.total_samples());
  // The paper's proxy assumes every unexecuted younger instruction depends
  // on the load, so on average it cannot undercount the true dependents.
  EXPECT_GE(r.dod_proxy.mean(), r.dod_true.mean() * 0.9);
}

TEST(SmtCore, MispredictionsAreResolved) {
  MachineConfig cfg = single_thread_config();
  SmtCore core(cfg, {spec_benchmark("parser")});  // branchy
  const RunResult r = core.run(20000);
  EXPECT_GT(run_counter(r, "bpred.branch.cond"), 1000u);
  EXPECT_GT(run_counter(r, "core.branch.mispredicts_resolved"), 0u);
  EXPECT_GT(run_counter(r, "core.fetch.wrong_path"), 0u);
  EXPECT_GT(run_counter(r, "core.squash.insts"), 0u);
}

TEST(SmtCore, CallsAndReturnsPredictViaRas) {
  MachineConfig cfg = single_thread_config();
  SmtCore core(cfg, {spec_benchmark("vortex")});  // call-heavy
  const RunResult r = core.run(20000);
  EXPECT_GT(run_counter(r, "bpred.branch.returns"), 100u);
  // The RAS should predict the overwhelming majority of returns.
  const double ras_mr = static_cast<double>(run_counter(r, "bpred.branch.ras_mispredict")) /
                        static_cast<double>(run_counter(r, "bpred.branch.returns"));
  EXPECT_LT(ras_mr, 0.05);
}

TEST(SmtCore, FlushPolicyUndispatchesOnL2Miss) {
  MachineConfig cfg = baseline32_config();
  cfg.fetch_policy = FetchPolicyKind::kFlush;
  SmtCore core(cfg, mix_benchmarks(table2_mix(1)));
  const RunResult r = core.run(10000);
  EXPECT_GT(run_counter(r, "core.flush.triggered"), 0u);
  EXPECT_GT(run_counter(r, "core.flush.undispatched"), 0u);
  for (const auto& t : r.threads) EXPECT_GT(t.committed, 50u) << t.benchmark;
}

TEST(SmtCore, FlushPolicySurvivesLongRuns) {
  // Regression: un-dispatch used to read LSQ entries after the ROB had
  // destroyed them, corrupting LSQ order hundreds of thousands of cycles in.
  MachineConfig cfg = baseline32_config();
  cfg.fetch_policy = FetchPolicyKind::kFlush;
  SmtCore core(cfg, mix_benchmarks(table2_mix(1)));
  for (int i = 0; i < 120000; ++i) core.tick();
  for (ThreadId t = 0; t < 4; ++t) EXPECT_GT(core.committed(t), 0u);
}

TEST(SmtCore, StallPolicyNeverStarvesAThreadForever) {
  // Regression: a merged secondary miss serviced before its nominal
  // detection time used to leak outstanding_l2 and gate a thread's fetch
  // permanently.
  MachineConfig cfg = baseline32_config();
  cfg.fetch_policy = FetchPolicyKind::kStall;
  SmtCore core(cfg, mix_benchmarks(table2_mix(1)));
  u64 last[4] = {0, 0, 0, 0};
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (int i = 0; i < 50000; ++i) core.tick();
    for (ThreadId t = 0; t < 4; ++t) {
      EXPECT_GT(core.committed(t), last[t]) << "thread " << t << " starved in epoch " << epoch;
      last[t] = core.committed(t);
    }
  }
}

TEST(SmtCore, StallPolicyGatesFetch) {
  MachineConfig cfg = baseline32_config();
  cfg.fetch_policy = FetchPolicyKind::kStall;
  SmtCore core(cfg, mix_benchmarks(table2_mix(1)));
  const RunResult r = core.run(10000);
  EXPECT_GT(run_counter(r, "core.fetch.policy_gated"), 0u);
}

TEST(SmtCore, WarmupExcludedFromStatistics) {
  MachineConfig cfg = single_thread_config();
  SmtCore core(cfg, {spec_benchmark("gzip")});
  const RunResult r = core.run(5000, 0, /*warmup=*/5000);
  EXPECT_GE(r.threads[0].committed, 5000u);
  EXPECT_LT(r.threads[0].committed, 9000u);  // warmup commits not counted
  EXPECT_EQ(run_counter(r, "core.commit.insts"), r.threads[0].committed);
}

TEST(SmtCore, SpeculativeSchedulingReplays) {
  // Memory-bound threads with a load-hit predictor produce some replays.
  SmtCore core(baseline32_config(), mix_benchmarks(table2_mix(1)));
  const RunResult r = core.run(30000);
  EXPECT_GT(run_counter(r, "core.loads.spec_wakeups"), 0u);
}

TEST(Experiment, SingleThreadIpcIsMemoised) {
  const double a = single_thread_ipc("crafty", 4000);
  const double b = single_thread_ipc("crafty", 4000);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 1.0);
}

TEST(Experiment, RunMixProducesConsistentOutcome) {
  const MixOutcome out = run_mix(baseline32_config(), table2_mix(2), 6000);
  ASSERT_EQ(out.mt_ipc.size(), 4u);
  ASSERT_EQ(out.st_ipc.size(), 4u);
  EXPECT_GT(out.ft, 0.0);
  EXPECT_NEAR(out.throughput, out.mt_ipc[0] + out.mt_ipc[1] + out.mt_ipc[2] + out.mt_ipc[3],
              1e-12);
  EXPECT_EQ(out.run.threads.size(), 4u);
}

TEST(Experiment, IlpClassesSeparateAsMeasured) {
  // The Table 2 premise: lows are measurably slower than highs single-thread.
  const double low = single_thread_ipc("mcf", 20000);
  const double high = single_thread_ipc("crafty", 20000);
  EXPECT_LT(low, 0.5);
  EXPECT_GT(high, 2.0);
}

}  // namespace
}  // namespace tlrob
