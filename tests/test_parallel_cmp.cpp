// Parallel CMP engine: determinism, bit-identity, and barrier stress.
//
// The parallel engine (sim/cmp.cpp run_parallel + common/sync.hpp CoreGate)
// promises results BYTE-identical to the serial lockstep engine — same
// JSONL/CSV records, same counter maps, same sample series — for any epoch
// quantum and regardless of host scheduling. These tests attack that promise
// from three sides:
//
//   * differential over every CMP preset — each multi-core cell of each
//     preset re-run with parallel_cores set must serialise to the same JSONL
//     line as the serial engine (covers trace + synthetic workloads via the
//     cmp_trace / cmp_mix presets and the workload grammar);
//   * barrier fuzz — randomized epoch quanta, thrash-prone shared-LLC
//     geometries that force cross-core MSHR merges, and branchy mixes whose
//     mid-epoch squash storms run under the full audit tier (the audit reads
//     the shared backend through the gate, so a single misordered backend
//     call trips it); TSan CI runs this file, making the gate's release /
//     acquire protocol machine-checked, not just argued;
//   * invariance — the numeric --parallel-cores value and the epoch quantum
//     must not leak into results (they only shape scheduling), and the
//     machine-wide fast-forward reconstruction must reproduce the serial
//     core.fast_forwarded_cycles exactly (snapshot counters are compared
//     as full maps, so any drift is caught by name).
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/engine.hpp"
#include "runner/golden.hpp"
#include "runner/presets.hpp"
#include "sim/cmp.hpp"
#include "sim/metrics.hpp"
#include "sim/presets.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob {
namespace {

std::vector<Benchmark> cmp_workload(const MachineConfig& cfg, const char* mem_bound,
                                    const std::vector<const char*>& rest, std::mt19937& rng) {
  std::vector<Benchmark> work;
  for (u32 c = 0; c < cfg.num_cores; ++c)
    for (u32 t = 0; t < cfg.num_threads; ++t)
      work.push_back(c == 0 && t == 0 ? spec_benchmark(mem_bound)
                                      : spec_benchmark(rest[rng() % rest.size()]));
  return work;
}

/// Runs the same machine twice — serial and parallel with `quantum` — and
/// requires identical snapshots (counter maps compared key-by-key).
void expect_engines_identical(MachineConfig cfg, const std::vector<Benchmark>& work,
                              u64 insts, u64 warmup, u32 quantum) {
  cfg.parallel_cores = 0;
  CmpMachine serial(cfg, work);
  const RunResult a = serial.run(insts, 0, warmup);

  cfg.parallel_cores = cfg.num_cores;
  cfg.parallel_quantum = quantum;
  CmpMachine parallel(cfg, work);
  const RunResult b = parallel.run(insts, 0, warmup);

  EXPECT_EQ(a.cycles, b.cycles);
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (size_t t = 0; t < a.threads.size(); ++t) {
    EXPECT_EQ(a.threads[t].committed, b.threads[t].committed) << "thread " << t;
    EXPECT_EQ(a.threads[t].ipc, b.threads[t].ipc) << "thread " << t;
  }
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (const auto& [name, v] : a.counters) {
    const auto it = b.counters.find(name);
    ASSERT_NE(it, b.counters.end()) << name;
    EXPECT_EQ(v, it->second) << name;
  }
  EXPECT_EQ(run_counter(a, "core.fast_forwarded_cycles"),
            run_counter(b, "core.fast_forwarded_cycles"));
}

// ---------------------------------------------------------------------------
// Barrier fuzz: randomized quanta, forced cross-core merges, squash storms.
// ---------------------------------------------------------------------------

class ParallelBarrierFuzz : public ::testing::TestWithParam<u32 /*seed*/> {};

TEST_P(ParallelBarrierFuzz, RandomQuantaMatchSerialUnderMergeAndSquashPressure) {
  std::mt19937 rng(GetParam() * 0x9E3779B9u + 3);
  auto pick = [&](u32 lo, u32 hi) { return lo + rng() % (hi - lo + 1); };

  static const RobScheme kSchemes[] = {RobScheme::kBaseline, RobScheme::kReactive,
                                       RobScheme::kPredictive};
  MachineConfig cfg = cmp_config(pick(2, 4), kSchemes[rng() % 3], pick(4, 24));
  cfg.num_threads = pick(1, 2);
  cfg.rob_first_level = pick(8, 48);
  // Thrash-prone shared LLC + tiny MSHR pool: cross-core merges, pool-full
  // admission delays and dirty-victim spills all fire at fuzz run lengths,
  // so every gated backend path sees concurrent traffic.
  cfg.llc.geo = CacheGeometry{u64{1} << pick(13, 14), 1u << pick(1, 2), 128,
                              static_cast<u32>(pick(16, 32))};
  cfg.llc.mshr_entries = pick(2, 6);
  cfg.dram.channels = 1u << pick(0, 1);
  cfg.dram.banks_per_channel = 1u << pick(1, 3);
  cfg.dram.open_page = (rng() & 1) != 0;
  // Starved predictor => mid-epoch squash storms on the branchy threads.
  cfg.predictor.gshare_entries = 16;
  cfg.predictor.history_bits = 4;
  cfg.predictor.btb_entries = 16;
  cfg.seed = GetParam() * 7901 + 13;
  if (pick(0, 1) != 0) {
    cfg.telemetry.sample_interval = pick(50, 400);  // exercise gated sample reads
  }

  static const std::vector<const char*> kBranchy = {"crafty", "gzip", "twolf", "parser"};
  const std::vector<Benchmark> work = cmp_workload(cfg, "mcf", kBranchy, rng);

  // Randomized epoch quantum, including degenerate 1-cycle epochs (a barrier
  // every cycle — maximal interleaving churn) and quanta far beyond the run.
  static const u32 kQuanta[] = {1, 7, 64, 1023, 8192, 1u << 20};
  expect_engines_identical(cfg, work, 1500, pick(0, 1) ? 400 : 0, kQuanta[rng() % 6]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelBarrierFuzz, ::testing::Range(0u, 6u));

// Full audit pins the machine cycle-by-cycle on both engines; the parallel
// one still runs a worker per core, every audit reading the shared backend
// through the gate. A misordered LLC/DRAM mutation trips abort_on_violation
// inside a worker and must surface as the test failure, not a deadlock.
TEST(ParallelBarrierFuzz, PinnedFullAuditMachineMatchesSerialAndStaysClean) {
  std::mt19937 rng(1234);
  MachineConfig cfg = cmp_config(3, RobScheme::kReactive, 16);
  cfg.num_threads = 2;
  cfg.llc.geo = CacheGeometry{1 << 14, 2, 128, 24};
  cfg.llc.mshr_entries = 4;
  cfg.audit.level = AuditLevel::kFull;
  cfg.audit.cheap_interval = 1;
  cfg.audit.full_interval = 4;
  cfg.audit.abort_on_violation = true;

  static const std::vector<const char*> kBranchy = {"crafty", "twolf"};
  const std::vector<Benchmark> work = cmp_workload(cfg, "mcf", kBranchy, rng);
  expect_engines_identical(cfg, work, 800, 200, 64);

  cfg.parallel_cores = cfg.num_cores;
  CmpMachine machine(cfg, work);
  EXPECT_NO_THROW(machine.run(800));
  for (u32 c = 0; c < machine.num_cores(); ++c)
    EXPECT_EQ(machine.core(c).auditor().total_violations(), 0u)
        << "core " << c << ": " << machine.core(c).auditor().report();
  EXPECT_EQ(machine.shared_memory()->audit_check(), "");
}

// ---------------------------------------------------------------------------
// Invariance: the knob values shape scheduling, never results.
// ---------------------------------------------------------------------------

TEST(ParallelInvariance, FlagValueAndQuantumDoNotChangeResults) {
  std::mt19937 rng(77);
  MachineConfig cfg = cmp_config(2, RobScheme::kReactive, 16);
  cfg.num_threads = 2;
  cfg.telemetry.sample_interval = 250;
  static const std::vector<const char*> kRest = {"crafty", "art"};
  const std::vector<Benchmark> work = cmp_workload(cfg, "mcf", kRest, rng);

  // Full-result fingerprint: cycles, per-thread results, the whole counter
  // map, and the machine-wide sample series bytes.
  auto record = [&](u32 parallel, u32 quantum) {
    MachineConfig c = cfg;
    c.parallel_cores = parallel;
    c.parallel_quantum = quantum;
    CmpMachine m(c, work);
    const RunResult r = m.run(3000, 0, 800);
    std::ostringstream os;
    os << r.cycles;
    for (const ThreadResult& t : r.threads) os << "|" << t.benchmark << ":" << t.committed;
    for (const auto& [name, v] : r.counters) os << "|" << name << "=" << v;
    os << "\n";
    r.samples.write_jsonl(os);
    return os.str();
  };

  const std::string serial = record(0, 0);
  // Any nonzero parallel_cores value means "one worker per core"; the value
  // itself and the quantum are pure scheduling knobs.
  EXPECT_EQ(serial, record(1, 0));
  EXPECT_EQ(serial, record(2, 0));
  EXPECT_EQ(serial, record(16, 0));
  EXPECT_EQ(serial, record(2, 1));
  EXPECT_EQ(serial, record(2, 500000));
}

// ---------------------------------------------------------------------------
// Differential: every CMP preset, serial vs parallel, byte-identical JSONL.
// ---------------------------------------------------------------------------
//
// Multi-core cells of every preset (the cmp_* presets carry both synthetic
// and trace-driven workloads) re-run with parallel_cores set must serialise
// byte-identically. Single-core cells are skipped — the parallel engine
// only engages on multi-core machines by construction.

TEST(ParallelCmpDifferential, ParallelEngineIsByteIdenticalToSerialOnEveryCmpPreset) {
  using runner::JobSpec;
  u32 compared_total = 0;
  for (const std::string& preset : runner::preset_names()) {
    runner::CampaignSpec spec = runner::preset_campaign(preset, runner::golden_run_length());
    std::vector<JobSpec> jobs = runner::expand(spec);
    std::erase_if(jobs, [](const JobSpec& j) { return j.config.num_cores <= 1; });
    const size_t stride = jobs.size() <= 3 ? 1 : jobs.size() / 3;
    u32 compared = 0;
    for (size_t i = 0; i < jobs.size() && compared < 3; i += stride, ++compared) {
      const JobSpec& serial = jobs[i];
      JobSpec parallel = serial;
      parallel.config.parallel_cores = parallel.config.num_cores;
      const std::string a = runner::to_json_line(runner::execute_job(serial));
      const std::string b = runner::to_json_line(runner::execute_job(parallel));
      EXPECT_EQ(a, b) << preset << " cell " << i << " (" << serial.config_name << " / "
                      << serial.mix.name << "): parallel engine diverged";
      ++compared_total;
    }
  }
  // cmp_mix + cmp_trace must both have contributed multi-core cells.
  EXPECT_GE(compared_total, 4u);
}

// A mixed serial/parallel campaign through the engine proper: records (and
// therefore every sink's bytes) must match a fully serial campaign for any
// --jobs count, with the parallel engine active inside each job.
TEST(ParallelCmpDifferential, CampaignRecordsIdenticalWithParallelEngineUnderPoolJobs) {
  runner::CampaignSpec spec = runner::preset_campaign("cmp_mix", {1500, 400});

  runner::EngineOptions serial_opts;
  serial_opts.jobs = 1;
  const runner::CampaignResult serial = runner::run_campaign(spec, serial_opts);

  for (auto& c : spec.columns) c.config.parallel_cores = c.config.num_cores;
  runner::EngineOptions par_opts;
  par_opts.jobs = 2;  // campaign pool x core workers: the nested-pools path
  const runner::CampaignResult parallel = runner::run_campaign(spec, par_opts);

  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (size_t i = 0; i < serial.records.size(); ++i)
    EXPECT_EQ(runner::to_json_line(serial.records[i]), runner::to_json_line(parallel.records[i]))
        << "record " << i;
}

}  // namespace
}  // namespace tlrob
