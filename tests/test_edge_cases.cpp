// Edge-case coverage: output formatting, generator corner cases, metric
// boundary conditions and defensive-path behaviour not exercised elsewhere.
#include <gtest/gtest.h>

#include <sstream>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "isa/program_builder.hpp"
#include "memory/memory_channel.hpp"
#include "sim/metrics.hpp"
#include "workload/addr_gen.hpp"
#include "workload/branch_gen.hpp"
#include "workload/kernels.hpp"

namespace tlrob {
namespace {

TEST(StatsPrint, FormatsCountersAndAverages) {
  StatGroup g;
  g.counter("alpha").inc(3);
  g.average("beta").sample(2.0);
  g.average("beta").sample(4.0);
  std::ostringstream os;
  g.print(os);
  EXPECT_NE(os.str().find("alpha 3"), std::string::npos);
  EXPECT_NE(os.str().find("beta mean=3"), std::string::npos);
}

TEST(HistogramPrint, LabelledRows) {
  Histogram h(3);
  h.record(1);
  h.record(9);  // clamps to 3
  std::ostringstream os;
  h.print(os, "mix1");
  EXPECT_NE(os.str().find("mix1 1 1"), std::string::npos);
  EXPECT_NE(os.str().find("mix1 3 1"), std::string::npos);
}

TEST(Metrics, RunCounterDefaultsToZero) {
  RunResult r;
  EXPECT_EQ(run_counter(r, "nope"), 0u);
  r.counters["x"] = 7;
  EXPECT_EQ(run_counter(r, "x"), 7u);
}

TEST(Metrics, FairThroughputZeroIpcPinsToZero) {
  EXPECT_DOUBLE_EQ(fair_throughput({0.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(AddrGen, TinyRegionsNeverUnderflow) {
  AddrGenSpec s;
  s.pattern = AddrPattern::kRandom;
  s.region_bytes = 4;  // smaller than the access size
  s.access_size = 8;
  AddrGen g(s, 0x1000, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g.next(), 0x1000u);
}

TEST(AddrGen, PointerChaseSingleLineDegenerates) {
  AddrGenSpec s;
  s.pattern = AddrPattern::kPointerChase;
  s.region_bytes = 64;  // exactly one line
  AddrGen g(s, 0, 1);
  const Addr a = g.next();
  EXPECT_EQ(g.next(), a);
}

TEST(AddrGen, HotFractionOneConfinesToPrefix) {
  AddrGenSpec s;
  s.pattern = AddrPattern::kRandom;
  s.region_bytes = 1 << 20;
  s.hot_fraction = 1.0;
  s.hot_bytes = 4096;
  AddrGen g(s, 0, 3);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(g.next(), 4096u);
}

TEST(BranchGen, PeriodicMatchesLoopSemantics) {
  BranchGenSpec s;
  s.pattern = BranchPattern::kPeriodic;
  s.trip = 3;
  BranchGen g(s, 1);
  EXPECT_TRUE(g.next());
  EXPECT_TRUE(g.next());
  EXPECT_FALSE(g.next());
  EXPECT_TRUE(g.next());
}

TEST(BranchGen, ZeroTripClampsToOne) {
  BranchGenSpec s;
  s.pattern = BranchPattern::kLoop;
  s.trip = 0;
  BranchGen g(s, 1);
  EXPECT_FALSE(g.next());  // trip 1: never taken
}

TEST(Channel, ResetRestoresIdleState) {
  MemoryChannelConfig cfg;
  MemoryChannel ch(cfg);
  ch.request_fill(0);
  ch.request_fill(0);
  ch.reset();
  EXPECT_EQ(ch.request_fill(0), cfg.first_chunk + ch.transfer_cycles());
}

TEST(Kernels, ZeroReducePhaseOmitsTheBlocks) {
  RandomGatherParams p;
  p.working_set_bytes = 1 << 16;
  p.reduce_trip = 0;
  const Benchmark without = make_random_gather("nored", p);
  p.reduce_trip = 96;
  const Benchmark with = make_random_gather("red", p);
  EXPECT_LT(without.program->num_blocks(), with.program->num_blocks());
  EXPECT_LT(without.bgens.size(), with.bgens.size());
  // Both remain runnable.
  ThreadContext a(without, 0, 1), b(with, 0, 1);
  for (int i = 0; i < 2000; ++i) {
    a.next();
    b.next();
  }
}

TEST(Kernels, StreamWithoutReuseTableOmitsIt) {
  StreamParams p;
  p.working_set_bytes = 1 << 16;
  p.reuse_bytes = 0;
  p.reduce_trip = 0;
  const Benchmark b = make_stream("plain", p);
  ThreadContext ctx(b, 0, 1);
  for (int i = 0; i < 2000; ++i) ctx.next();
  SUCCEED();
}

TEST(ProgramBuilder, DeepCallChainsAreGuarded) {
  // A call that never returns must not grow the architectural return stack
  // without bound (ThreadContext caps it).
  ProgramBuilder pb("recurse");
  const u32 entry = pb.current_block();
  const u32 callee = pb.new_block();
  pb.in(entry).int_alu(ireg(1)).call(callee);
  pb.fallthrough(entry, entry);
  pb.in(callee).int_alu(ireg(2)).call(callee);  // self-recursive, no ret
  pb.fallthrough(callee, callee);
  Program p = pb.build(0, 0);

  Benchmark b;
  b.name = "recurse";
  b.program = std::make_shared<Program>(std::move(p));
  ThreadContext ctx(b, 0, 1);
  for (int i = 0; i < 100000; ++i) ctx.next();  // must not blow up
  SUCCEED();
}

}  // namespace
}  // namespace tlrob
