// Unit tests for the branch-prediction substrate: bimodal tables, gshare,
// BTB, return address stack, composite predictor and load-hit predictor.
#include <gtest/gtest.h>

#include "branch/bimodal.hpp"
#include "branch/btb.hpp"
#include "branch/gshare.hpp"
#include "branch/load_hit_predictor.hpp"
#include "branch/predictor.hpp"
#include "branch/ras.hpp"

namespace tlrob {
namespace {

TEST(Bimodal, SaturatesAtBounds) {
  BimodalTable t(16);
  EXPECT_TRUE(t.predict(3));  // starts weakly taken (2)
  for (int i = 0; i < 10; ++i) t.update(3, false);
  EXPECT_FALSE(t.predict(3));
  EXPECT_EQ(t.counter(3), 0);
  for (int i = 0; i < 10; ++i) t.update(3, true);
  EXPECT_TRUE(t.predict(3));
  EXPECT_EQ(t.counter(3), 3);
}

TEST(Bimodal, HysteresisNeedsTwoFlips) {
  BimodalTable t(16);
  for (int i = 0; i < 4; ++i) t.update(5, true);  // saturate taken
  t.update(5, false);
  EXPECT_TRUE(t.predict(5));  // one not-taken does not flip
  t.update(5, false);
  EXPECT_FALSE(t.predict(5));
}

TEST(Bimodal, RejectsNonPowerOfTwo) {
  EXPECT_THROW(BimodalTable(12), std::invalid_argument);
  EXPECT_THROW(BimodalTable(0), std::invalid_argument);
}

TEST(Bimodal, IndexMasksWrap) {
  BimodalTable t(8);
  t.update(3, false);
  t.update(3, false);
  EXPECT_FALSE(t.predict(3 + 8));  // aliases onto the same counter
}

TEST(Gshare, LearnsAlternatingPatternThroughHistory) {
  Gshare g(1024, 8, 1);
  const Addr pc = 0x4000;
  // Alternating T/N/T/N is unpredictable for a bimodal counter but perfectly
  // predictable with history. Train, then measure accuracy.
  bool outcome = false;
  for (int i = 0; i < 400; ++i) {
    const auto p = g.predict(0, pc);
    g.update(pc, p.history_before, outcome);
    if (p.taken != outcome) g.recover(0, p.history_before, outcome);
    outcome = !outcome;
  }
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    const auto p = g.predict(0, pc);
    correct += (p.taken == outcome);
    g.update(pc, p.history_before, outcome);
    if (p.taken != outcome) g.recover(0, p.history_before, outcome);
    outcome = !outcome;
  }
  EXPECT_GT(correct, 95);
}

TEST(Gshare, RecoverRestoresHistory) {
  Gshare g(256, 10, 2);
  const auto p1 = g.predict(0, 0x100);
  EXPECT_NE(g.history(0), p1.history_before);  // speculatively shifted
  g.recover(0, p1.history_before, /*actual=*/!p1.taken);
  const u16 expected =
      static_cast<u16>(((p1.history_before << 1) | (!p1.taken ? 1 : 0)) & 0x3ff);
  EXPECT_EQ(g.history(0), expected);
}

TEST(Gshare, PerThreadHistoriesAreIndependent) {
  Gshare g(256, 10, 2);
  g.predict(0, 0x100);
  EXPECT_EQ(g.history(1), 0);  // thread 1 untouched
}

TEST(Btb, StoresAndEvictsLru) {
  Btb btb(8, 2);  // 4 sets x 2 ways
  // Three PCs mapping to the same set: the LRU one is evicted.
  const Addr a = 0x40, b = 0x40 + 4 * 4 * 4, c = 0x40 + 2 * 4 * 4 * 4;
  btb.update(0, a, 0x1000);
  btb.update(0, b, 0x2000);
  ASSERT_TRUE(btb.lookup(0, a).has_value());
  btb.lookup(0, a);  // touch a so b becomes LRU
  btb.update(0, c, 0x3000);
  EXPECT_TRUE(btb.lookup(0, a).has_value());
  EXPECT_TRUE(btb.lookup(0, c).has_value());
}

TEST(Btb, UpdateRefreshesTarget) {
  Btb btb(2048, 2);
  btb.update(0, 0x400, 0x1000);
  btb.update(0, 0x400, 0x2000);
  EXPECT_EQ(btb.lookup(0, 0x400).value(), 0x2000u);
}

TEST(Btb, ThreadsDoNotAliasDestructively) {
  Btb btb(2048, 2);
  btb.update(0, 0x400, 0x1000);
  btb.update(1, 0x400, 0x2000);
  EXPECT_EQ(btb.lookup(0, 0x400).value(), 0x1000u);
  EXPECT_EQ(btb.lookup(1, 0x400).value(), 0x2000u);
}

TEST(Ras, PushPopLifo) {
  ReturnAddressStack ras;
  ras.push(0x100);
  ras.push(0x200);
  EXPECT_EQ(ras.pop(), 0x200u);
  EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, CheckpointRestoreUndoesWrongPathActivity) {
  ReturnAddressStack ras;
  ras.push(0x100);
  const u32 cp = ras.checkpoint();
  ras.push(0x200);  // wrong path
  ras.pop();
  ras.pop();  // wrong path popped the real entry's slot position
  ras.restore(cp);
  EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, WrapsWithoutCrashing) {
  ReturnAddressStack ras;
  for (u32 i = 0; i < ReturnAddressStack::kDepth + 4; ++i) ras.push(i);
  // Oldest entries are overwritten; the most recent survive.
  EXPECT_EQ(ras.pop(), ReturnAddressStack::kDepth + 3);
}

StaticInst make_ctrl(OpClass op, Addr pc) {
  StaticInst si;
  si.op = op;
  si.pc = pc;
  si.bgen_id = op == OpClass::kBranch ? 0 : -1;
  return si;
}

TEST(BranchPredictor, CallPushesReturnPredictsIt) {
  BranchPredictor bp(PredictorConfig{}, 1);
  const StaticInst call = make_ctrl(OpClass::kCall, 0x400000);
  const StaticInst ret = make_ctrl(OpClass::kReturn, 0x500000);
  bp.predict(0, call, /*target=*/0x500000, /*fallthrough=*/0x400004,
             /*return_pc=*/0x400004);
  const BranchPrediction p = bp.predict(0, ret, 0, 0x500004, 0);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, 0x400004u);
  EXPECT_TRUE(p.used_ras);
}

TEST(BranchPredictor, JumpPredictsStaticTarget) {
  BranchPredictor bp(PredictorConfig{}, 1);
  const StaticInst j = make_ctrl(OpClass::kJump, 0x400000);
  const BranchPrediction p = bp.predict(0, j, 0x410000, 0x400004, 0);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, 0x410000u);
}

TEST(BranchPredictor, TrainCountsMispredicts) {
  BranchPredictor bp(PredictorConfig{}, 1);
  const StaticInst br = make_ctrl(OpClass::kBranch, 0x400000);
  for (int i = 0; i < 50; ++i) {
    const BranchPrediction p = bp.predict(0, br, 0x410000, 0x400004, 0);
    const bool actual = false;  // never taken
    bp.train(0, br, p, actual, 0x400004);
    if (p.taken != actual) bp.recover(0, br, p, actual);
  }
  EXPECT_EQ(bp.stats().counter_value("branch.cond"), 50u);
  // After warmup the never-taken branch is predicted correctly.
  EXPECT_LT(bp.stats().counter_value("branch.cond_mispredict"), 10u);
}

TEST(LoadHitPredictor, LearnsStableBehaviour) {
  // Stable streams settle the global history, so each PC trains a fixed
  // (pc, history) counter.
  LoadHitPredictor always_hits(1024, 8, 1);
  for (int i = 0; i < 64; ++i) always_hits.update(0, 0x1000, true);
  EXPECT_TRUE(always_hits.predict(0, 0x1000));

  LoadHitPredictor always_misses(1024, 8, 1);
  for (int i = 0; i < 64; ++i) always_misses.update(0, 0x1000, false);
  EXPECT_FALSE(always_misses.predict(0, 0x1000));
}

TEST(LoadHitPredictor, HistoryDistinguishesContexts) {
  // A strictly periodic hit/miss pattern is fully predictable with history:
  // after warmup every (pc, history) counter sees a constant outcome.
  LoadHitPredictor lhp(1024, 8, 1);
  for (int i = 0; i < 512; ++i) lhp.update(0, 0x1000, i % 2 == 0);
  int correct = 0;
  bool outcome = true;  // i even first
  for (int i = 0; i < 64; ++i) {
    correct += lhp.predict(0, 0x1000) == outcome;
    lhp.update(0, 0x1000, outcome);
    outcome = !outcome;
  }
  EXPECT_GT(correct, 56);
}

}  // namespace
}  // namespace tlrob
