// Unit tests for the paper's core contribution: the reorder buffer, the
// shared second-level partition, the DoD counting mechanism, the DoD
// predictor and the allocation controllers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rob/allocation_policy.hpp"
#include "rob/dod_predictor.hpp"
#include "rob/rob.hpp"
#include "rob/two_level_rob.hpp"

namespace tlrob {
namespace {

StaticInst static_load(Addr pc = 0x400000) {
  static std::vector<std::unique_ptr<StaticInst>> pool;
  pool.push_back(std::make_unique<StaticInst>());
  pool.back()->op = OpClass::kLoad;
  pool.back()->dest = ireg(1);
  pool.back()->agen_id = 0;
  pool.back()->pc = pc;
  return *pool.back();
}

DynInst make_inst(u64 tseq, bool executed = false, OpClass op = OpClass::kIntAlu) {
  DynInst di;
  di.tseq = tseq;
  di.seq = tseq;
  di.op = op;
  di.executed = executed;
  return di;
}

TEST(Rob, PushFindPop) {
  ReorderBuffer rob(4);
  rob.push(make_inst(1));
  rob.push(make_inst(2));
  rob.push(make_inst(5));  // gaps are fine (squashed tseqs are never reused)
  EXPECT_EQ(rob.size(), 3u);
  ASSERT_NE(rob.find(5), nullptr);
  EXPECT_EQ(rob.find(5)->tseq, 5u);
  EXPECT_EQ(rob.find(3), nullptr);
  EXPECT_EQ(rob.find(99), nullptr);
  rob.pop_head();
  EXPECT_EQ(rob.find(1), nullptr);
  EXPECT_EQ(rob.head()->tseq, 2u);
}

TEST(Rob, RejectsOverflowAndDisorder) {
  ReorderBuffer rob(2);
  rob.push(make_inst(1));
  rob.push(make_inst(2));
  EXPECT_TRUE(rob.full());
  EXPECT_THROW(rob.push(make_inst(3)), std::logic_error);
  ReorderBuffer rob2(4);
  rob2.push(make_inst(5));
  EXPECT_THROW(rob2.push(make_inst(5)), std::logic_error);
  EXPECT_THROW(rob2.push(make_inst(3)), std::logic_error);
}

TEST(Rob, CapacityGrowsAndShrinksWithGrant) {
  ReorderBuffer rob(32);
  EXPECT_EQ(rob.capacity(), 32u);
  rob.grant_extra(384);
  EXPECT_EQ(rob.capacity(), 416u);
  EXPECT_FALSE(rob.full());
  rob.revoke_extra();
  EXPECT_EQ(rob.capacity(), 32u);
}

TEST(Rob, FirstLevelFullIndependentOfGrant) {
  ReorderBuffer rob(2);
  rob.grant_extra(8);
  rob.push(make_inst(1));
  EXPECT_FALSE(rob.first_level_full());
  rob.push(make_inst(2));
  EXPECT_TRUE(rob.first_level_full());
  EXPECT_FALSE(rob.full());
}

TEST(Rob, SquashAfterRemovesSuffixYoungestFirst) {
  ReorderBuffer rob(8);
  for (u64 i = 1; i <= 5; ++i) rob.push(make_inst(i));
  std::vector<u64> removed;
  rob.squash_after(2, [&](DynInst& d) { removed.push_back(d.tseq); });
  EXPECT_EQ(removed, (std::vector<u64>{5, 4, 3}));
  EXPECT_EQ(rob.size(), 2u);
}

TEST(Rob, DodProxyCountsUnexecutedYoungerWithinWindow) {
  ReorderBuffer rob(8);
  rob.push(make_inst(1, /*executed=*/false, OpClass::kLoad));  // the missing load
  rob.push(make_inst(2, true));
  rob.push(make_inst(3, false));
  rob.push(make_inst(4, false));
  rob.push(make_inst(5, true));
  rob.push(make_inst(6, false));
  EXPECT_EQ(rob.count_unexecuted_younger(1, 32), 3u);
  EXPECT_EQ(rob.count_unexecuted_younger(1, 2), 1u);  // window clips the scan
  EXPECT_EQ(rob.count_unexecuted_younger(6, 32), 0u);
}

TEST(Rob, TrueDependentsFollowsTransitiveDataflow) {
  ReorderBuffer rob(8);
  DynInst load = make_inst(1, false, OpClass::kLoad);
  load.dest_phys = 100;
  DynInst direct = make_inst(2);
  direct.src_phys[0] = 100;
  direct.dest_phys = 101;
  DynInst indirect = make_inst(3);
  indirect.src_phys[1] = 101;
  indirect.dest_phys = 102;
  DynInst unrelated = make_inst(4);
  unrelated.src_phys[0] = 55;
  unrelated.dest_phys = 103;
  const DynInst& l = rob.push(std::move(load));
  rob.push(std::move(direct));
  rob.push(std::move(indirect));
  rob.push(std::move(unrelated));
  EXPECT_EQ(rob.count_true_dependents(l), 2u);
}

TEST(SecondLevel, SingleOwnerSemantics) {
  SecondLevelRob s(384);
  EXPECT_TRUE(s.available());
  s.allocate(2, 100);
  EXPECT_FALSE(s.available());
  EXPECT_TRUE(s.owned_by(2));
  EXPECT_THROW(s.allocate(1, 110), std::logic_error);
  s.release(250);
  EXPECT_TRUE(s.available());
  EXPECT_EQ(s.busy_cycles(300), 150u);
  EXPECT_EQ(s.total_allocations(), 1u);
  EXPECT_THROW(s.release(300), std::logic_error);
}

TEST(SecondLevel, ZeroEntriesNeverAvailable) {
  SecondLevelRob s(0);
  EXPECT_FALSE(s.available());
}

TEST(DodPredictor, LastValueSemantics) {
  DodPredictor p(256);
  EXPECT_FALSE(p.predict(0, 0x400).has_value());
  p.update(0, 0x400, 7);
  EXPECT_EQ(p.predict(0, 0x400).value(), 7u);
  p.update(0, 0x400, 3);
  EXPECT_EQ(p.predict(0, 0x400).value(), 3u);
  EXPECT_EQ(p.stats().counter_value("cold_installs"), 1u);
  EXPECT_EQ(p.stats().counter_value("value_changes"), 1u);
}

TEST(DodPredictor, ThreadsAndPcsAreDistinguished) {
  DodPredictor p(4096);
  p.update(0, 0x400, 5);
  p.update(1, 0x400, 9);
  EXPECT_EQ(p.predict(0, 0x400).value(), 5u);
  EXPECT_EQ(p.predict(1, 0x400).value(), 9u);
  EXPECT_FALSE(p.predict(0, 0x404).has_value());
}

TEST(DodPredictor, RejectsNonPowerOfTwo) {
  EXPECT_THROW(DodPredictor(100), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Controller tests drive the policy against hand-built ROB contents.
// ---------------------------------------------------------------------------

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : rob0_(32), rob1_(32), second_(384) {}

  TwoLevelRobController make(RobScheme scheme, u32 threshold) {
    RobPolicyConfig cfg;
    cfg.scheme = scheme;
    cfg.dod_threshold = threshold;
    cfg.lease_limit = 1000;
    cfg.lease_cooldown = 500;
    return TwoLevelRobController(cfg, {&rob0_, &rob1_}, second_);
  }

  /// Fills rob0 with a missing load at the head plus `unexec` unexecuted and
  /// the rest executed instructions (full 32-entry first level).
  DynInst& fill_rob0_with_miss(u32 unexec) {
    DynInst load = make_inst(next_tseq_++, false, OpClass::kLoad);
    load.si = &load_si_;
    load.pc = load_si_.pc;
    load.is_l2_miss = true;
    DynInst& ref = rob0_.push(std::move(load));
    for (u32 i = 1; i < 32; ++i)
      rob0_.push(make_inst(next_tseq_++, /*executed=*/i > unexec));
    return ref;
  }

  StaticInst load_si_ = static_load();
  ReorderBuffer rob0_;
  ReorderBuffer rob1_;
  SecondLevelRob second_;
  u64 next_tseq_ = 1;
};

TEST_F(ControllerTest, ReactiveAllocatesWhenAllConditionsHold) {
  auto ctrl = make(RobScheme::kReactive, 16);
  DynInst& load = fill_rob0_with_miss(/*unexec=*/5);
  ctrl.on_l2_miss_detected(load, 100);
  ctrl.tick(100);
  EXPECT_TRUE(second_.owned_by(0));
  EXPECT_EQ(rob0_.capacity(), 32u + 384u);
}

TEST_F(ControllerTest, ReactiveRejectsHighDod) {
  auto ctrl = make(RobScheme::kReactive, 16);
  DynInst& load = fill_rob0_with_miss(/*unexec=*/20);
  ctrl.on_l2_miss_detected(load, 100);
  ctrl.tick(100);
  EXPECT_TRUE(second_.available());
  EXPECT_GE(ctrl.stats().counter_value("rejected_high_dod"), 1u);
}

TEST_F(ControllerTest, ReactiveRequiresLoadAtHead) {
  auto ctrl = make(RobScheme::kReactive, 16);
  rob0_.push(make_inst(next_tseq_++, false));  // older non-load blocks
  DynInst load = make_inst(next_tseq_++, false, OpClass::kLoad);
  load.si = &load_si_;
  load.is_l2_miss = true;
  DynInst& ref = rob0_.push(std::move(load));
  for (u32 i = 2; i < 32; ++i) rob0_.push(make_inst(next_tseq_++, true));
  ctrl.on_l2_miss_detected(ref, 100);
  ctrl.tick(100);
  EXPECT_TRUE(second_.available());
}

TEST_F(ControllerTest, ReactiveRequiresFullFirstLevelButRelaxedDoesNot) {
  {
    auto ctrl = make(RobScheme::kReactive, 16);
    DynInst load = make_inst(next_tseq_++, false, OpClass::kLoad);
    load.si = &load_si_;
    load.is_l2_miss = true;
    DynInst& ref = rob0_.push(std::move(load));  // ROB only 1/32 full
    ctrl.on_l2_miss_detected(ref, 100);
    ctrl.tick(100);
    EXPECT_TRUE(second_.available());
  }
  {
    auto ctrl = make(RobScheme::kRelaxedReactive, 15);
    DynInst* head = rob0_.head();
    ctrl.on_l2_miss_detected(*head, 200);
    ctrl.tick(200);
    EXPECT_TRUE(second_.owned_by(0));
  }
}

TEST_F(ControllerTest, ReactiveRechecksEveryInterval) {
  auto ctrl = make(RobScheme::kReactive, 16);
  DynInst& load = fill_rob0_with_miss(/*unexec=*/20);
  ctrl.on_l2_miss_detected(load, 100);
  ctrl.tick(100);  // rejected: DoD 20 >= 16
  ASSERT_TRUE(second_.available());
  // Independent work completes; the count drops below the threshold.
  rob0_.for_each([](DynInst& d) {
    if (!d.is_load()) d.executed = true;
  });
  ctrl.tick(105);  // before the 10-cycle recheck: no decision yet
  EXPECT_TRUE(second_.available());
  ctrl.tick(110);
  EXPECT_TRUE(second_.owned_by(0));
}

TEST_F(ControllerTest, CdrWaitsForSnapshotDelay) {
  auto ctrl = make(RobScheme::kCdr, 15);
  DynInst& load = fill_rob0_with_miss(/*unexec=*/5);
  ctrl.on_l2_miss_detected(load, 100);
  ctrl.tick(100);
  EXPECT_TRUE(second_.available()) << "CDR must not decide before the 32-cycle delay";
  ctrl.tick(131);
  EXPECT_TRUE(second_.available());
  ctrl.tick(132);
  EXPECT_TRUE(second_.owned_by(0));
}

TEST_F(ControllerTest, PredictiveAllocatesOnlyWithTrainedPredictor) {
  auto ctrl = make(RobScheme::kPredictive, 8);
  DynInst& load = fill_rob0_with_miss(/*unexec=*/5);
  ctrl.on_l2_miss_detected(load, 100);  // cold: no prediction
  ctrl.tick(100);
  EXPECT_TRUE(second_.available());
  EXPECT_EQ(ctrl.stats().counter_value("prediction_cold_misses"), 1u);

  // The fill trains the predictor with the actual count (5 < 8).
  ctrl.on_load_fill(load, 600);
  ASSERT_TRUE(ctrl.predictor()->predict(0, load.pc).has_value());

  // Drain and reissue the same static load: now it predicts and allocates.
  rob0_.squash_after(0, [](DynInst&) {});
  DynInst& load2 = fill_rob0_with_miss(/*unexec=*/5);
  ctrl.on_l2_miss_detected(load2, 1200);
  EXPECT_TRUE(second_.owned_by(0));
  EXPECT_EQ(ctrl.stats().counter_value("predictive_allocations"), 1u);
}

TEST_F(ControllerTest, PredictiveVerificationFailureDropsLease) {
  auto ctrl = make(RobScheme::kPredictive, 8);
  DynInst& load = fill_rob0_with_miss(/*unexec=*/5);
  ctrl.on_load_fill(load, 50);  // trains count 5
  rob0_.squash_after(0, [](DynInst&) {});

  DynInst& load2 = fill_rob0_with_miss(/*unexec=*/20);  // actual DoD is high
  ctrl.on_l2_miss_detected(load2, 1000);                // predicted 5 -> allocate
  ASSERT_TRUE(second_.owned_by(0));
  ctrl.on_load_fill(load2, 1500);  // verification: 20 >= 8
  EXPECT_EQ(ctrl.stats().counter_value("verification_failures"), 1u);
  // Lease is no longer justified: once drained the partition frees.
  rob0_.squash_after(0, [](DynInst&) {});
  ctrl.tick(1501);
  EXPECT_TRUE(second_.available());
}

TEST_F(ControllerTest, ReleaseWaitsForTriggerAndDrain) {
  auto ctrl = make(RobScheme::kReactive, 16);
  DynInst& load = fill_rob0_with_miss(/*unexec=*/5);
  ctrl.on_l2_miss_detected(load, 100);
  ctrl.tick(100);
  ASSERT_TRUE(second_.owned_by(0));
  // Dispatch past the first level while the lease is held.
  for (u32 i = 0; i < 10; ++i) rob0_.push(make_inst(next_tseq_++, true));
  ctrl.tick(150);
  EXPECT_TRUE(second_.owned_by(0)) << "trigger still outstanding";
  load.executed = true;  // fill
  ctrl.tick(160);
  EXPECT_TRUE(second_.owned_by(0)) << "must drain to the first level first";
  EXPECT_EQ(rob0_.extra(), 0u) << "no further second-level dispatch while draining";
  while (rob0_.size() > 30) rob0_.pop_head();
  ctrl.tick(170);
  EXPECT_TRUE(second_.available());
}

TEST_F(ControllerTest, LeaseExpiryStopsRenewalAndCooldownBlocksReacquisition) {
  auto ctrl = make(RobScheme::kReactive, 16);  // lease 1000, cooldown 500
  DynInst& load = fill_rob0_with_miss(/*unexec=*/5);
  ctrl.on_l2_miss_detected(load, 100);
  ctrl.tick(100);
  ASSERT_TRUE(second_.owned_by(0));

  // A second thread now has a qualifying candidate pending.
  DynInst l1 = make_inst(1, false, OpClass::kLoad);
  l1.si = &load_si_;
  l1.tid = 1;
  l1.is_l2_miss = true;
  DynInst& load1 = rob1_.push(std::move(l1));
  for (u32 i = 1; i < 32; ++i) rob1_.push(make_inst(i + 1, true));
  ctrl.on_l2_miss_detected(load1, 150);

  // Past the lease limit the holder's fresh misses stop renewing.
  load.executed = true;
  ctrl.tick(1200);  // trigger dead + drained? not drained yet
  while (rob0_.size() > 0) rob0_.pop_head();
  ctrl.tick(1210);
  EXPECT_FALSE(second_.owned_by(0));
  // Thread 1's pending candidate grabs it on a later tick.
  ctrl.tick(1220);
  EXPECT_TRUE(second_.owned_by(1));

  // Thread 0 is in cooldown: a new qualifying miss must not steal it back
  // even after thread 1 releases.
  load1.executed = true;
  while (rob1_.size() > 0) rob1_.pop_head();
  ctrl.tick(1230);
  ASSERT_TRUE(second_.available());
  DynInst& load0b = fill_rob0_with_miss(5);
  ctrl.on_l2_miss_detected(load0b, 1240);
  ctrl.tick(1240);
  EXPECT_FALSE(second_.owned_by(0)) << "cooldown must block re-acquisition";
}

TEST_F(ControllerTest, SquashDropsCandidates) {
  auto ctrl = make(RobScheme::kReactive, 16);
  DynInst& load = fill_rob0_with_miss(/*unexec=*/20);  // rejected, stays pending
  ctrl.on_l2_miss_detected(load, 100);
  ctrl.tick(100);
  ctrl.on_squash(0, 0);  // everything squashed
  rob0_.squash_after(0, [](DynInst&) {});
  ctrl.tick(110);  // must not dereference the dead candidate
  EXPECT_TRUE(second_.available());
}

TEST_F(ControllerTest, AdaptiveGrowsWhenCommitBoundAndShrinksWhenIssueBound) {
  RobPolicyConfig cfg;
  cfg.scheme = RobScheme::kAdaptive;
  cfg.adaptive_interval = 128;
  cfg.adaptive_step = 16;
  cfg.adaptive_max_extra = 96;
  TwoLevelRobController ctrl(cfg, {&rob0_, &rob1_}, second_);

  // Commit-bound: full window behind an unexecuted head, everything younger
  // executed.
  fill_rob0_with_miss(/*unexec=*/0);
  ctrl.tick(128);
  EXPECT_EQ(rob0_.extra(), 16u);
  // Growth continues only once the thread actually fills the new partition.
  ctrl.tick(256);
  EXPECT_EQ(rob0_.extra(), 16u);
  while (!rob0_.full()) rob0_.push(make_inst(next_tseq_++, true));
  ctrl.tick(384);
  EXPECT_EQ(rob0_.extra(), 32u);
  EXPECT_EQ(ctrl.stats().counter_value("adaptive.grows"), 2u);

  // Issue-bound: many unexecuted instructions in the window.
  rob0_.for_each([](DynInst& d) {
    if (!d.is_load()) d.executed = false;
  });
  ctrl.tick(512);
  EXPECT_EQ(rob0_.extra(), 16u);
  ctrl.tick(640);
  EXPECT_EQ(rob0_.extra(), 0u);
  ctrl.tick(768);
  EXPECT_EQ(rob0_.extra(), 0u);  // floor

  // Decisions only at the interval boundary; never touches the partition.
  ctrl.tick(830);
  EXPECT_EQ(ctrl.stats().counter_value("adaptive.shrinks"), 2u);
  EXPECT_TRUE(second_.available());
}

TEST_F(ControllerTest, AdaptiveGrowthIsBounded) {
  RobPolicyConfig cfg;
  cfg.scheme = RobScheme::kAdaptive;
  cfg.adaptive_interval = 1;
  TwoLevelRobController ctrl(cfg, {&rob0_, &rob1_}, second_);
  fill_rob0_with_miss(/*unexec=*/0);
  for (Cycle c = 1; c < 1000; ++c) {
    ctrl.tick(c);
    // Keep it saturated so it always wants to grow.
    while (!rob0_.full()) rob0_.push(make_inst(next_tseq_++, true));
  }
  EXPECT_EQ(rob0_.extra(), cfg.adaptive_max_extra);
}

TEST_F(ControllerTest, BaselineSchemeIsInert) {
  auto ctrl = make(RobScheme::kBaseline, 16);
  DynInst& load = fill_rob0_with_miss(/*unexec=*/2);
  ctrl.on_l2_miss_detected(load, 100);
  ctrl.tick(100);
  ctrl.on_load_fill(load, 600);
  EXPECT_TRUE(second_.available());
  EXPECT_EQ(ctrl.stats().counter_value("allocations"), 0u);
}

}  // namespace
}  // namespace tlrob
