// Property/fuzz tests for the DynInst ring-slab pool and the event wheel.
//
// The hot-path rework replaced heap-backed deques with fixed ring slabs and
// the completion priority queue with a calendar wheel. Both trade allocator
// safety nets for speed: a recycled slot or a dropped wakeup would no longer
// crash — it would silently corrupt architectural state. These tests attack
// that surface from two sides:
//
//   * whole-core fuzz — randomized machine geometries (window, LSQ, IQ,
//     frontend sizes, scheme, thresholds, lease policy) run branchy mixes
//     under a deliberately starved branch predictor so squash storms recycle
//     slots constantly, with the full invariant-audit tier armed to abort on
//     the first recycled in-flight entry or wheel miscount;
//   * wheel-vs-reference model — a tiny-horizon wheel is driven with random
//     schedule/drain interleavings (including past-due and beyond-horizon
//     whens) and must hand out exactly the multiset of events a reference
//     stable-sorted queue produces, in the same order.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/engine.hpp"
#include "runner/golden.hpp"
#include "runner/presets.hpp"
#include "sim/cmp.hpp"
#include "sim/event_wheel.hpp"
#include "sim/metrics.hpp"
#include "sim/presets.hpp"
#include "sim/smt_sim.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob {
namespace {

class PoolFuzz : public ::testing::TestWithParam<u32 /*seed*/> {};

TEST_P(PoolFuzz, RandomizedGeometrySurvivesSquashStormsUnderFullAudit) {
  std::mt19937 rng(GetParam() * 2654435761u + 1);
  auto pick = [&](u32 lo, u32 hi) { return lo + rng() % (hi - lo + 1); };

  static const RobScheme kSchemes[] = {
      RobScheme::kBaseline,  RobScheme::kReactive, RobScheme::kRelaxedReactive,
      RobScheme::kCdr,       RobScheme::kPredictive, RobScheme::kAdaptive,
  };
  MachineConfig cfg = two_level_config(kSchemes[rng() % 6], pick(4, 32));
  cfg.num_threads = pick(1, 4);
  cfg.rob_first_level = pick(8, 48);
  cfg.rob_second_level = pick(32, 256);
  cfg.lsq_entries = pick(8, 48);
  cfg.iq_entries = pick(16, 64);
  cfg.frontend_buffer = pick(8, 24);
  cfg.rob.recheck_interval = pick(1, 20);
  cfg.rob.lease_limit = pick(200, 4000);
  cfg.rob.lease_cooldown = pick(0, 2500);
  // Starve the predictor so mispredicts — and the squash storms that recycle
  // ring slots mid-flight — happen constantly instead of rarely.
  cfg.predictor.gshare_entries = 16;
  cfg.predictor.history_bits = 4;
  cfg.predictor.btb_entries = 16;
  cfg.audit.level = AuditLevel::kFull;
  cfg.audit.cheap_interval = 1;
  cfg.audit.full_interval = pick(1, 8);
  cfg.audit.abort_on_violation = true;
  cfg.seed = GetParam() * 7919 + 13;

  // Branchy integer codes squash hardest; salt in one memory-bound thread so
  // the second-level machinery engages and its slots churn too.
  static const char* kBranchy[] = {"crafty", "gzip", "twolf", "parser",
                                   "vpr",    "gap",  "perlbmk"};
  std::vector<Benchmark> work;
  work.push_back(spec_benchmark("mcf"));
  for (u32 t = 1; t < cfg.num_threads; ++t)
    work.push_back(spec_benchmark(kBranchy[rng() % 7]));

  SmtCore core(cfg, work);
  EXPECT_NO_THROW(core.run(3000)) << core.auditor().report();
  EXPECT_EQ(core.auditor().total_violations(), 0u) << core.auditor().report();
  EXPECT_GT(core.auditor().checks_executed(), 0u);

  // The storm must actually have stormed, and the wheel must still conserve:
  // every scheduled event either processed or still pending, none twice.
  const RunResult r = core.snapshot_result();
  EXPECT_GT(run_counter(r, "core.squash.insts"), 0u);
  const EventWheel& wheel = core.event_wheel();
  EXPECT_TRUE(wheel.audit_consistent());
  EXPECT_EQ(wheel.scheduled_total(), wheel.processed_total() + wheel.pending());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolFuzz, ::testing::Range(0u, 8u));

// ---------------------------------------------------------------------------
// Wheel vs reference model: exact drain order, no drop, no duplicate.
// ---------------------------------------------------------------------------

struct RefEvent {
  Cycle when;
  u64 order;
};

class WheelFuzz : public ::testing::TestWithParam<u32 /*seed*/> {};

TEST_P(WheelFuzz, MatchesStableSortedReferenceQueue) {
  std::mt19937 rng(GetParam() ^ 0x9e3779b9u);
  // Tiny horizon (16 cycles) with whens up to now+40: most events take the
  // overflow path and must migrate back in without losing FIFO order.
  EventWheel wheel(/*horizon_log2=*/4);
  std::vector<RefEvent> ref;
  u64 order = 0;
  Cycle drained = 0;  // reference mirror of wheel.drained_until()

  for (int step = 0; step < 500; ++step) {
    const u32 pushes = rng() % 4;
    for (u32 i = 0; i < pushes; ++i) {
      // Includes already-due whens (clamped to the cursor, like the wheel).
      Cycle when = drained + rng() % 41;
      if (rng() % 8 == 0 && drained > 0) when = drained - 1;
      wheel.schedule(when, EvKind::kWake, InstRef{0, order, 0});
      ref.push_back({std::max(when, drained), order});
      ++order;
    }

    const Cycle now = drained + rng() % 6;
    // Reference drain: stable order is ascending when, then schedule order.
    std::vector<RefEvent> expect;
    for (const RefEvent& e : ref)
      if (e.when <= now) expect.push_back(e);
    std::stable_sort(expect.begin(), expect.end(), [](const RefEvent& a, const RefEvent& b) {
      return a.when != b.when ? a.when < b.when : a.order < b.order;
    });
    std::erase_if(ref, [&](const RefEvent& e) { return e.when <= now; });

    // next_event_or must agree with the reference minimum before draining.
    Cycle ref_next = kNeverCycle;
    for (const RefEvent& e : ref) ref_next = std::min(ref_next, e.when);
    for (const RefEvent& e : expect) ref_next = std::min(ref_next, e.when);
    ASSERT_EQ(wheel.next_event_or(kNeverCycle), ref_next);

    std::vector<u64> got;
    wheel.process_due(now, [&](const SimEvent& ev) {
      ASSERT_LE(ev.when, now);
      got.push_back(ev.ref.tseq);  // tseq carries the schedule order
    });
    ASSERT_EQ(got.size(), expect.size());
    for (u32 i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], expect[i].order);

    drained = now + 1;
    ASSERT_EQ(wheel.drained_until(), drained);
    ASSERT_TRUE(wheel.audit_consistent());
    ASSERT_EQ(wheel.pending(), ref.size());
  }
  ASSERT_EQ(wheel.scheduled_total(), wheel.processed_total() + wheel.pending());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WheelFuzz, ::testing::Range(0u, 8u));

// A handler that schedules while its cycle is still draining: a same-cycle
// schedule appends to the very slot vector being iterated, and the growth
// past the vector's capacity reallocates it under the drain loop's feet. The
// wheel must survive the reallocation and still deliver the new events this
// cycle, exactly as the priority queue's while-top-due loop did.
TEST(WheelFuzz, HandlerSchedulingDuringDrainIsSafe) {
  EventWheel wheel(4);
  for (u64 i = 0; i < 12; ++i) wheel.schedule(5, EvKind::kWake, InstRef{0, i, 0});
  u32 fired_now = 0;
  wheel.process_due(5, [&](const SimEvent& ev) {
    ++fired_now;
    if (ev.ref.tid == 0 && ev.ref.tseq < 8) {
      wheel.schedule(5, EvKind::kWake, InstRef{1, ev.ref.tseq, 0});
      wheel.schedule(6, EvKind::kWake, InstRef{2, ev.ref.tseq, 0});
    }
  });
  EXPECT_EQ(fired_now, 20u);  // 12 initial + 8 scheduled mid-drain at cycle 5
  EXPECT_EQ(wheel.pending(), 8u);  // the cycle-6 events
  u32 fired_later = 0;
  wheel.process_due(6, [&](const SimEvent&) { ++fired_later; });
  EXPECT_EQ(fired_later, 8u);
  EXPECT_TRUE(wheel.audit_consistent());
  EXPECT_EQ(wheel.pending(), 0u);
}

// ---------------------------------------------------------------------------
// CMP fuzz: randomized multi-core geometries under the full audit tier.
// ---------------------------------------------------------------------------
//
// The lockstep engine adds two failure surfaces the single-core fuzz cannot
// reach: the machine-wide idle fast-forward (every core must prove the same
// cycle idle, and the replay must keep per-core stall counters exact) and
// the shared LLC/MSHR/DRAM bookkeeping that every core mutates in arrival
// order. Squash storms on several cores at once churn both.

class CmpFuzz : public ::testing::TestWithParam<u32 /*seed*/> {};

TEST_P(CmpFuzz, RandomizedCmpGeometrySurvivesSquashStormsUnderFullAudit) {
  std::mt19937 rng(GetParam() * 0x85EBCA6Bu + 7);
  auto pick = [&](u32 lo, u32 hi) { return lo + rng() % (hi - lo + 1); };

  static const RobScheme kSchemes[] = {RobScheme::kBaseline, RobScheme::kReactive,
                                       RobScheme::kPredictive};
  MachineConfig cfg = cmp_config(pick(2, 4), kSchemes[rng() % 3], pick(4, 24));
  cfg.num_threads = pick(1, 3);
  cfg.rob_first_level = pick(8, 48);
  cfg.lsq_entries = pick(8, 48);
  cfg.iq_entries = pick(16, 64);
  // A small thrash-prone LLC and few MSHRs so cross-core eviction, merge,
  // and pool-full paths all fire at fuzz run lengths.
  cfg.llc.geo = CacheGeometry{u64{1} << pick(13, 15), 1u << pick(1, 3), 128,
                              static_cast<u32>(pick(16, 32))};
  cfg.llc.mshr_entries = pick(2, 8);
  cfg.dram.channels = 1u << pick(0, 2);
  cfg.dram.banks_per_channel = 1u << pick(1, 3);
  cfg.dram.open_page = (rng() & 1) != 0;
  cfg.predictor.gshare_entries = 16;
  cfg.predictor.history_bits = 4;
  cfg.predictor.btb_entries = 16;
  cfg.audit.level = AuditLevel::kFull;
  cfg.audit.cheap_interval = 1;
  cfg.audit.full_interval = pick(1, 8);
  cfg.audit.abort_on_violation = true;
  cfg.seed = GetParam() * 6271 + 29;

  static const char* kBranchy[] = {"crafty", "gzip", "twolf", "parser",
                                   "vpr",    "gap",  "perlbmk"};
  // Core 0 thread 0 is memory-bound (shared-backend churn); every other
  // thread is branchy so squash storms fire even at 1 thread per core.
  std::vector<Benchmark> work;
  for (u32 c = 0; c < cfg.num_cores; ++c)
    for (u32 t = 0; t < cfg.num_threads; ++t)
      work.push_back(c == 0 && t == 0 ? spec_benchmark("mcf")
                                      : spec_benchmark(kBranchy[rng() % 7]));

  CmpMachine machine(cfg, work);
  EXPECT_NO_THROW(machine.run(2000));
  u64 squashes = 0;
  for (u32 c = 0; c < machine.num_cores(); ++c) {
    EXPECT_EQ(machine.core(c).auditor().total_violations(), 0u)
        << "core " << c << ": " << machine.core(c).auditor().report();
    EXPECT_GT(machine.core(c).auditor().checks_executed(), 0u);
  }
  const RunResult r = machine.snapshot_result();
  squashes = run_counter(r, "core.squash.insts");
  EXPECT_GT(squashes, 0u);
  // The shared backend saw traffic and still satisfies its own invariants.
  ASSERT_NE(machine.shared_memory(), nullptr);
  EXPECT_GT(run_counter(r, "llc.accesses"), 0u);
  EXPECT_EQ(machine.shared_memory()->audit_check(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmpFuzz, ::testing::Range(0u, 6u));

// ---------------------------------------------------------------------------
// Differential: the CMP engine with no backend IS the legacy engine.
// ---------------------------------------------------------------------------
//
// Every single-core cell of every preset, re-run through CmpMachine with
// force_cmp_engine set, must produce a byte-identical JSONL record: same
// cycles, same per-thread results, same counter families, same DoD
// histograms. Cells are stride-sampled (≤3 per preset) to keep the suite
// fast; the full golden suite pins the legacy path itself.

TEST(CmpDifferential, ForcedCmpEngineIsByteIdenticalToLegacyOnEveryPreset) {
  using runner::JobSpec;
  for (const std::string& preset : runner::preset_names()) {
    runner::CampaignSpec spec = runner::preset_campaign(preset, runner::golden_run_length());
    std::vector<JobSpec> jobs = runner::expand(spec);
    // Keep only cells the legacy engine would run (the cmp_* presets route
    // through CmpMachine either way).
    std::erase_if(jobs, [](const JobSpec& j) {
      return j.config.num_cores > 1 || j.config.llc.enabled || j.config.force_cmp_engine;
    });
    const size_t stride = jobs.size() <= 3 ? 1 : jobs.size() / 3;
    u32 compared = 0;
    for (size_t i = 0; i < jobs.size() && compared < 3; i += stride, ++compared) {
      const JobSpec& legacy = jobs[i];
      JobSpec forced = legacy;
      forced.config.force_cmp_engine = true;
      const std::string a = runner::to_json_line(runner::execute_job(legacy));
      const std::string b = runner::to_json_line(runner::execute_job(forced));
      EXPECT_EQ(a, b) << preset << " cell " << i << " (" << legacy.config_name << " / "
                      << legacy.mix.name << "): forced CMP engine diverged";
    }
  }
}

}  // namespace
}  // namespace tlrob
