// Unit tests for the memory hierarchy: set-associative cache with the
// latency-chain (ready-at) model, the memory channel, and the full system.
#include <gtest/gtest.h>

#include "memory/cache.hpp"
#include "memory/memory_channel.hpp"
#include "memory/memory_system.hpp"
#include "memory/shared_memory.hpp"

namespace tlrob {
namespace {

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(Cache("bad", CacheGeometry{1024, 3, 32, 1}), std::invalid_argument);
  EXPECT_THROW(Cache("bad", CacheGeometry{1024, 4, 48, 1}), std::invalid_argument);
  Cache ok("ok", CacheGeometry{32 << 10, 4, 32, 1});
  EXPECT_EQ(ok.sets(), 256u);
}

TEST(Cache, MissThenResidentHit) {
  Cache c("c", CacheGeometry{1 << 10, 2, 32, 1});
  EXPECT_FALSE(c.probe(0x100, 0).present);
  c.fill(0x100, 0, /*ready_at=*/10, true, nullptr);
  const auto p = c.probe(0x100, 20);
  EXPECT_TRUE(p.present);
  EXPECT_EQ(p.ready_at, 10u);
  EXPECT_EQ(c.stats().counter_value("misses"), 1u);
}

TEST(Cache, PendingLineMergesAndReportsOrigin) {
  Cache c("c", CacheGeometry{1 << 10, 2, 32, 1});
  c.fill(0x100, 0, /*ready_at=*/500, /*from_memory=*/true, nullptr);
  const auto p = c.probe(0x100, 50);  // fill still in flight
  EXPECT_TRUE(p.present);
  EXPECT_TRUE(p.fill_from_memory);
  EXPECT_EQ(p.ready_at, 500u);
  EXPECT_EQ(c.stats().counter_value("mshr_merges"), 1u);
}

TEST(Cache, LruVictimSelection) {
  // 2-way, line 32B, 2 sets. Addresses in set 0: multiples of 64.
  Cache c("c", CacheGeometry{128, 2, 32, 1});
  c.fill(0, 0, 0, false, nullptr);
  c.fill(64, 0, 0, false, nullptr);
  c.probe(0, 1);  // touch 0 -> 64 becomes LRU
  c.fill(128, 2, 2, false, nullptr);
  EXPECT_TRUE(c.probe(0, 3).present);
  EXPECT_FALSE(c.probe(64, 3).present);
  EXPECT_TRUE(c.probe(128, 3).present);
}

TEST(Cache, InFlightLinesAreNotVictimised) {
  Cache c("c", CacheGeometry{128, 2, 32, 1});
  c.fill(0, 0, /*ready_at=*/1000, true, nullptr);   // pending
  c.fill(64, 0, /*ready_at=*/1000, true, nullptr);  // pending
  // Both ways of set 0 are in flight: a third fill must bypass.
  EXPECT_FALSE(c.fill(128, 1, 1, false, nullptr));
  EXPECT_EQ(c.stats().counter_value("fill_bypass"), 1u);
}

TEST(Cache, DirtyEvictionReported) {
  Cache c("c", CacheGeometry{128, 2, 32, 1});
  c.fill(0, 0, 0, false, nullptr);
  c.mark_dirty(0);
  c.fill(64, 0, 0, false, nullptr);
  bool dirty = false;
  c.fill(128, 1, 1, false, &dirty);  // evicts LRU = line 0 (dirty)
  EXPECT_TRUE(dirty);
}

TEST(Channel, FirstChunkPlusTransfer) {
  MemoryChannelConfig cfg;
  cfg.first_chunk = 500;
  cfg.interchunk = 2;
  cfg.bus_bytes = 8;
  cfg.line_bytes = 128;
  cfg.critical_bytes = 32;  // 4 chunks * 2 cycles
  MemoryChannel ch(cfg);
  EXPECT_EQ(ch.transfer_cycles(), 8u);
  EXPECT_EQ(ch.request_fill(0), 508u);
}

TEST(Channel, FullLineTransferWhenCriticalDisabled) {
  MemoryChannelConfig cfg;
  cfg.critical_bytes = 0;  // pessimistic: whole 128B line occupies the bus
  MemoryChannel ch(cfg);
  EXPECT_EQ(ch.transfer_cycles(), 32u);
  EXPECT_EQ(ch.request_fill(0), 532u);
}

TEST(Channel, BusSerialisesOverlappingFills) {
  MemoryChannelConfig cfg;
  MemoryChannel ch(cfg);
  const Cycle t = cfg.first_chunk;
  const Cycle f1 = ch.request_fill(0);
  const Cycle f2 = ch.request_fill(0);
  const Cycle f3 = ch.request_fill(0);
  EXPECT_EQ(f1, t + ch.transfer_cycles());
  EXPECT_EQ(f2, f1 + ch.transfer_cycles());  // access overlapped, bus serial
  EXPECT_EQ(f3, f2 + ch.transfer_cycles());
}

TEST(Channel, MshrLimitDelaysAdmission) {
  MemoryChannelConfig cfg;
  cfg.mshr_entries = 2;
  MemoryChannel ch(cfg);
  const Cycle f1 = ch.request_fill(0);
  ch.request_fill(0);
  // Third request at time 0 cannot be admitted before the first completes.
  const Cycle f3 = ch.request_fill(0);
  EXPECT_GE(f3, f1 + cfg.first_chunk);
  EXPECT_EQ(ch.stats().counter_value("mshr_full_stalls"), 1u);
}

TEST(Channel, WritebackConsumesBandwidthOnly) {
  MemoryChannelConfig cfg;
  MemoryChannel ch(cfg);
  // A writeback finishing just as the fill's DRAM access completes delays
  // the fill's bus transfer by its own occupancy.
  ch.request_writeback(cfg.first_chunk);
  const Cycle f = ch.request_fill(0);
  EXPECT_EQ(f, cfg.first_chunk + 2 * ch.transfer_cycles());
}

TEST(MemorySystem, L1HitTiming) {
  MemorySystem ms((MemoryConfig()));
  ms.access_data(0x1000, false, 0);          // cold; installs the line
  const Cycle ready = ms.access_data(0x1000, false, 10000).data_ready;
  EXPECT_EQ(ready, 10000u + 1u);  // L1 hit latency
}

TEST(MemorySystem, L2MissGoesToMemoryAndReportsDetectTime) {
  MemoryConfig cfg;
  MemorySystem ms(cfg);
  const DataAccess a = ms.access_data(0x100000, false, 0);
  EXPECT_FALSE(a.l1_hit);
  EXPECT_TRUE(a.l2_miss);
  EXPECT_EQ(a.l2_miss_detect, 0u + cfg.l1d.hit_latency + cfg.l2.hit_latency);
  EXPECT_GT(a.data_ready, cfg.channel.first_chunk);
}

TEST(MemorySystem, L2HitAfterL1Eviction) {
  MemoryConfig cfg;
  MemorySystem ms(cfg);
  ms.access_data(0x100000, false, 0);
  // Evict from L1 (4-way, 32B lines, 256 sets => same set every 8KB).
  for (int w = 1; w <= 4; ++w)
    ms.access_data(0x100000 + w * 8192, false, 2000 + w);
  const DataAccess a = ms.access_data(0x100000, false, 10000);
  EXPECT_FALSE(a.l1_hit);
  EXPECT_FALSE(a.l2_miss);  // still resident in L2
  EXPECT_EQ(a.data_ready, 10000u + cfg.l1d.hit_latency + cfg.l2.hit_latency);
}

TEST(MemorySystem, SecondaryMissMergesIntoPendingFill) {
  MemorySystem ms((MemoryConfig()));
  const DataAccess first = ms.access_data(0x200000, false, 0);
  const DataAccess second = ms.access_data(0x200000, false, 5);
  EXPECT_TRUE(second.l2_miss);  // merged into a memory-bound fill
  EXPECT_EQ(second.data_ready, first.data_ready);
}

TEST(MemorySystem, InstSideHitAndMiss) {
  MemoryConfig cfg;
  MemorySystem ms(cfg);
  const Cycle miss = ms.access_inst(0x400000, 0);
  EXPECT_GT(miss, cfg.channel.first_chunk);
  EXPECT_EQ(ms.access_inst(0x400000, miss + 1), miss + 1);  // now resident
}

TEST(MemorySystem, PrewarmMakesRegionResident) {
  MemorySystem ms((MemoryConfig()));
  ms.prewarm_region(0x100000, 64 << 10);
  const DataAccess a = ms.access_data(0x100000 + 4096, false, 0);
  EXPECT_FALSE(a.l2_miss);
}

TEST(MemorySystem, PrewarmHotPrefixSurvivesColdBody) {
  MemoryConfig cfg;
  MemorySystem ms(cfg);
  // Region far larger than the L2, with a 256KB reused prefix.
  ms.prewarm_region(0x1000000, 8 << 20, 256 << 10);
  const DataAccess hot = ms.access_data(0x1000000 + 1024, false, 0);
  EXPECT_FALSE(hot.l2_miss) << "hot prefix must be resident after prewarm";
}

TEST(MemorySystem, StoresDirtyTheLine) {
  MemoryConfig cfg;
  MemorySystem ms(cfg);
  ms.access_data(0x300000, true, 0);  // write-allocate + dirty
  const u64 wb_before = ms.channel().stats().counter_value("writebacks");
  // Evict the dirty L2 line: same L2 set every 2048*128 bytes, 8 ways.
  for (int w = 1; w <= 8; ++w)
    ms.access_data(0x300000 + static_cast<Addr>(w) * 2048 * 128, false, 1000 + w * 600);
  EXPECT_GT(ms.channel().stats().counter_value("writebacks"), wb_before);
}

// --- Replacement / MSHR pinning tests ---------------------------------------
//
// These pin the exact replacement and merge semantics the rest of the model
// depends on, so a storage-layout rework of the cache is checked directly
// rather than only through the golden fingerprints.

TEST(Cache, InvalidWayPreferredOverEviction) {
  // 2-way, 2 sets. One way of set 0 holds a line; a second fill to the same
  // set must take the empty way, not evict.
  Cache c("c", CacheGeometry{128, 2, 32, 1});
  c.fill(0, 0, 0, false, nullptr);
  c.fill(64, 1, 1, false, nullptr);
  EXPECT_EQ(c.stats().counter_value("evictions"), 0u);
  EXPECT_TRUE(c.probe(0, 2).present);
  EXPECT_TRUE(c.probe(64, 2).present);
}

TEST(Cache, LruVictimAfterMixedTouchOrder) {
  // 4-way, 1 set (128B / 4 ways / 32B lines). Fill A..D, then touch in the
  // order C, A, D — B is least recent and must be the victim.
  Cache c("c", CacheGeometry{128, 4, 32, 1});
  const Addr A = 0 * 32, B = 1 * 32, C = 2 * 32, D = 3 * 32, E = 4 * 32;
  for (Addr a : {A, B, C, D}) c.fill(a, 0, 0, false, nullptr);
  c.probe(C, 1);
  c.probe(A, 2);
  c.probe(D, 3);
  c.fill(E, 4, 4, false, nullptr);
  EXPECT_FALSE(c.probe(B, 5).present) << "B was least-recently used";
  for (Addr a : {A, C, D, E}) EXPECT_TRUE(c.probe(a, 5).present);
}

TEST(Cache, ProbeOfInFlightLineRefreshesLru) {
  // A merged (in-flight) probe must refresh recency exactly like a hit.
  Cache c("c", CacheGeometry{128, 2, 32, 1});
  c.fill(0, 0, /*ready_at=*/1000, true, nullptr);  // in flight
  c.fill(64, 1, 1, false, nullptr);                // resident
  c.probe(0, 2);  // merge: touches line 0 -> line 64 becomes LRU
  // At now=2000 both lines are victimisable; LRU must pick line 64.
  c.fill(128, 2000, 2000, false, nullptr);
  EXPECT_TRUE(c.probe(0, 2001).present);
  EXPECT_FALSE(c.probe(64, 2001).present);
}

TEST(Cache, InFlightLineVictimisableOnceReady) {
  Cache c("c", CacheGeometry{128, 2, 32, 1});
  c.fill(0, 0, /*ready_at=*/1000, true, nullptr);
  c.fill(64, 0, /*ready_at=*/1000, true, nullptr);
  // Before the fills land every way is locked; after, normal LRU applies.
  EXPECT_FALSE(c.fill(128, 999, 999, false, nullptr));
  EXPECT_TRUE(c.fill(128, 1000, 1500, false, nullptr));
  EXPECT_EQ(c.stats().counter_value("evictions"), 1u);
}

TEST(Cache, RefillKeepsLaterReadyAt) {
  // MSHR merge on the fill side: re-filling a present line must never pull
  // its ready time earlier (max semantics), but a later fill extends it.
  Cache c("c", CacheGeometry{128, 2, 32, 1});
  c.fill(0, 0, /*ready_at=*/800, true, nullptr);
  c.fill(0, 1, /*ready_at=*/200, false, nullptr);  // earlier: ignored
  EXPECT_EQ(c.probe(0, 900).ready_at, 800u);
  c.fill(0, 2, /*ready_at=*/950, true, nullptr);  // later: extends
  EXPECT_EQ(c.probe(0, 1000).ready_at, 950u);
}

TEST(Cache, FillClearsDirtyAndReportsVictim) {
  // Writeback ordering: the dirty bit travels with the victim exactly once;
  // the newly installed line starts clean.
  Cache c("c", CacheGeometry{128, 2, 32, 1});
  c.fill(0, 0, 0, false, nullptr);
  c.mark_dirty(0);
  c.fill(64, 1, 1, false, nullptr);
  bool dirty = false;
  c.fill(128, 2, 2, false, &dirty);  // evicts line 0 (dirty)
  EXPECT_TRUE(dirty);
  c.fill(192, 3, 3, false, &dirty);  // evicts line 64 (clean)
  EXPECT_FALSE(dirty);
  // Line 128 replaced the dirty line but must itself be clean.
  c.probe(128, 4);
  c.fill(256, 5, 5, false, &dirty);  // evicts line 192, then 128 next
  c.fill(320, 6, 6, false, &dirty);
  EXPECT_FALSE(dirty) << "installed lines start clean";
}

TEST(Cache, MergeCountsNeitherMissNorEviction) {
  Cache c("c", CacheGeometry{128, 2, 32, 1});
  c.fill(0x100, 0, /*ready_at=*/500, true, nullptr);
  c.probe(0x100, 10);  // merge
  c.probe(0x100, 20);  // merge
  EXPECT_EQ(c.stats().counter_value("mshr_merges"), 2u);
  EXPECT_EQ(c.stats().counter_value("misses"), 0u);
  EXPECT_EQ(c.stats().counter_value("evictions"), 0u);
}

TEST(Channel, CompletionsAreMonotonic) {
  // The bus serialises transfers, so fill completions form a non-decreasing
  // sequence even when request times interleave oddly. (The MSHR bookkeeping
  // relies on this: the earliest outstanding completion is the oldest one.)
  MemoryChannelConfig cfg;
  cfg.mshr_entries = 4;
  MemoryChannel ch(cfg);
  Cycle prev = 0;
  const Cycle whens[] = {0, 0, 700, 100, 1500, 1500, 1500, 1500, 1490, 5000};
  for (const Cycle w : whens) {
    const Cycle done = ch.request_fill(w);
    EXPECT_GE(done, prev);
    EXPECT_GT(done, w);
    prev = done;
  }
}

TEST(Channel, MshrDrainAdmitsInCompletionOrder) {
  // With a single MSHR, each request is admitted exactly when the previous
  // fill completes — the stall chain is deterministic.
  MemoryChannelConfig cfg;
  cfg.mshr_entries = 1;
  MemoryChannel ch(cfg);
  const Cycle f1 = ch.request_fill(0);
  const Cycle f2 = ch.request_fill(0);  // admitted at f1's completion
  const Cycle f3 = ch.request_fill(0);  // also admitted at f1; bus-bound
  EXPECT_EQ(f2, f1 + cfg.first_chunk + ch.transfer_cycles());
  EXPECT_EQ(f3, f2 + ch.transfer_cycles());
  EXPECT_EQ(ch.stats().counter_value("mshr_full_stalls"), 2u);
  // A request after everything drained is admitted immediately again.
  const Cycle f4 = ch.request_fill(f3 + 10);
  EXPECT_EQ(f4, f3 + 10 + cfg.first_chunk + ch.transfer_cycles());
  EXPECT_EQ(ch.stats().counter_value("mshr_full_stalls"), 2u);
}

TEST(MemorySystem, DirtyL2EvictionQueuesWritebackBeforeNextFill) {
  // Writeback ordering through the full system: the victim's writeback is
  // queued at the evicting fill's completion and occupies the bus, delaying
  // a later fill by one transfer.
  MemoryConfig cfg;
  MemorySystem ms(cfg);
  ms.access_data(0x300000, true, 0);  // dirty in L1+L2
  const u64 wb_before = ms.channel().stats().counter_value("writebacks");
  // Fill seven more ways of the dirty line's L2 set (8-way; same set every
  // 2048*128 bytes), spaced so every fill has landed before the next access.
  const Addr stride = 2048 * 128;
  Cycle t = 10000;
  for (int w = 1; w <= 7; ++w, t += 10000)
    ms.access_data(0x300000 + static_cast<Addr>(w) * stride, false, t);
  // The eighth conflicting access evicts the dirty victim and queues its
  // writeback at the evicting fill's done-time; a fill requested the same
  // cycle must wait out that extra bus occupancy.
  const Cycle tr = ms.channel().transfer_cycles();
  ms.access_data(0x300000 + 8 * stride, false, t);  // evicts, queues writeback
  EXPECT_EQ(ms.channel().stats().counter_value("writebacks"), wb_before + 1);
  const DataAccess next = ms.access_data(0x900000, false, t);
  EXPECT_TRUE(next.l2_miss);
  const Cycle tag_done = t + cfg.l1d.hit_latency + cfg.l2.hit_latency;
  // evicting fill: tag_done + first_chunk + tr; writeback: + tr; next: + tr.
  EXPECT_EQ(next.data_ready, tag_done + cfg.channel.first_chunk + 3 * tr);
}

// -- shared CMP backend: LLC contention --------------------------------------
//
// Cross-core effects the per-core hierarchy cannot express: set thrashing
// between cores, MSHR merges attributed across cores, and the
// inclusive-victim writeback path (L2 dirty victims absorbed by a resident
// LLC line vs forwarded to DRAM).

/// Tiny 2-way LLC (32 sets, 64B lines, 10-cycle tags) over the default DRAM
/// so two cores can thrash one set with four lines.
LlcConfig tiny_llc() {
  LlcConfig llc;
  llc.enabled = true;
  llc.geo = CacheGeometry{4096, 2, 64, 10};
  llc.mshr_entries = 4;
  return llc;
}

/// Same-set stride: 32 sets x 64B lines.
constexpr Addr kLlcSetStride = 2048;

TEST(SharedLlc, CrossCoreSetThrashingEvictsAndRemisses) {
  SharedMemory sm(tiny_llc(), DramConfig{});
  // Core 0 owns lines A,B of set 0; core 1 pushes C,D through the same set.
  // Accesses are spaced so every fill has landed (no in-flight lock).
  const Addr a = 0, b = kLlcSetStride, c = 2 * kLlcSetStride, d = 3 * kLlcSetStride;
  EXPECT_TRUE(sm.request_fill(a, 0, 0).llc_miss);
  EXPECT_TRUE(sm.request_fill(b, 1000, 0).llc_miss);
  EXPECT_TRUE(sm.request_fill(c, 2000, 1).llc_miss);  // evicts A (LRU)
  EXPECT_TRUE(sm.request_fill(d, 3000, 1).llc_miss);  // evicts B
  // Core 0 lost its working set to core 1: A misses again.
  EXPECT_TRUE(sm.request_fill(a, 4000, 0).llc_miss);
  EXPECT_EQ(sm.llc().stats().counter_value("misses"), 5u);
  EXPECT_EQ(sm.llc().stats().counter_value("evictions"), 3u);
  EXPECT_EQ(sm.audit_check(), "");
}

TEST(SharedLlc, CrossCoreMshrMergeAttributedOnce) {
  SharedMemory sm(tiny_llc(), DramConfig{});
  const SharedMemory::Fill first = sm.request_fill(0x40, 0, /*core=*/0);
  EXPECT_TRUE(first.llc_miss);
  EXPECT_EQ(sm.inflight_count(), 1u);
  // Core 1 hits the in-flight fill: merged, still DRAM-bound, and the
  // cross-core attribution fires.
  const SharedMemory::Fill merged = sm.request_fill(0x40, 5, /*core=*/1);
  EXPECT_TRUE(merged.llc_miss);
  EXPECT_EQ(merged.ready, first.ready);
  EXPECT_EQ(sm.stats().counter_value("cross_core_merges"), 1u);
  // A same-core merge rides the fill too but is not a cross-core event.
  sm.request_fill(0x40, 6, /*core=*/0);
  EXPECT_EQ(sm.stats().counter_value("cross_core_merges"), 1u);
  EXPECT_EQ(sm.llc().stats().counter_value("mshr_merges"), 2u);
  // After the fill lands the line is a plain LLC hit for every core.
  const SharedMemory::Fill hit = sm.request_fill(0x40, first.ready + 100, /*core=*/1);
  EXPECT_FALSE(hit.llc_miss);
}

TEST(SharedLlc, InclusiveVictimWritebackAbsorbedThenSpilled) {
  SharedMemory sm(tiny_llc(), DramConfig{});
  const Addr a = 0;
  sm.request_fill(a, 0, 0);
  // Resident line: the L2's dirty victim is absorbed (marked dirty in the
  // LLC), no DRAM traffic.
  sm.request_writeback(a, 1000, 0);
  EXPECT_EQ(sm.stats().counter_value("writebacks_in"), 1u);
  EXPECT_EQ(sm.stats().counter_value("writeback_misses"), 0u);
  EXPECT_EQ(sm.dram().stats().counter_value("writebacks"), 0u);
  // Thrash the set from the other core until the dirty line is the LRU
  // victim: its eviction must spill to DRAM.
  sm.request_fill(kLlcSetStride, 2000, 1);
  sm.request_fill(2 * kLlcSetStride, 3000, 1);  // evicts dirty A
  EXPECT_EQ(sm.dram().stats().counter_value("writebacks"), 1u);
  // A writeback for a line the LLC no longer holds goes straight to DRAM.
  sm.request_writeback(a, 4000, 0);
  EXPECT_EQ(sm.stats().counter_value("writeback_misses"), 1u);
  EXPECT_EQ(sm.dram().stats().counter_value("writebacks"), 2u);
  EXPECT_EQ(sm.audit_check(), "");
}

TEST(SharedLlc, MshrPoolBoundDelaysAdmission) {
  LlcConfig llc = tiny_llc();
  llc.mshr_entries = 1;
  SharedMemory sm(llc, DramConfig{});
  const SharedMemory::Fill first = sm.request_fill(0, 0, 0);
  // Second miss the same cycle: the single MSHR is held until the first
  // fill completes, so the DRAM access starts late.
  const SharedMemory::Fill second = sm.request_fill(kLlcSetStride, 0, 1);
  EXPECT_EQ(sm.stats().counter_value("mshr_full_stalls"), 1u);
  EXPECT_GT(second.ready, first.ready);
  EXPECT_GE(second.ready, first.ready + sm.dram().config().tcas);
}

TEST(SharedLlc, AuditTripsOnCorruptedMshrPool) {
  SharedMemory sm(tiny_llc(), DramConfig{});
  EXPECT_EQ(sm.audit_check(), "");
  sm.corrupt_inflight_for_test();
  EXPECT_NE(sm.audit_check(), "");
}

}  // namespace
}  // namespace tlrob
