// CMP-wide telemetry tests: the closed stall-cycle taxonomy (every measured
// cycle of every thread attributed to exactly one StallClass, in every
// preset, with or without idle fast-forwarding), the machine-wide interval
// sampler under CmpMachine's global fast-forward, the interference rollup
// counters, and the merged per-core/backend Chrome trace.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/interval_sampler.hpp"
#include "sim/cmp.hpp"
#include "sim/experiment.hpp"
#include "sim/smt_sim.hpp"
#include "workload/spec_profiles.hpp"

namespace tlrob {
namespace {

// One benchmark per hardware thread, cycling the memory-bound Table 2 mix.
std::vector<Benchmark> benches_for(const MachineConfig& cfg) {
  const auto base = mix_benchmarks(table2_mix(2));
  std::vector<Benchmark> out;
  const size_t n = static_cast<size_t>(cfg.num_cores) * cfg.num_threads;
  for (size_t i = 0; i < n; ++i) out.push_back(base[i % base.size()]);
  return out;
}

MachineConfig sampled(MachineConfig cfg, Cycle interval) {
  cfg.telemetry.sample_interval = interval;
  return cfg;
}

// Audit off so the fast-forward actually fires (an armed audit pins every
// core cycle-by-cycle and would trivialise the FF-equivalence premise).
MachineConfig fast_forwarding(MachineConfig cfg) {
  cfg.audit.level = AuditLevel::kOff;
  return cfg;
}

u64 stall_sum(const std::array<u64, obs::kStallClassCount>& per_class) {
  return std::accumulate(per_class.begin(), per_class.end(), u64{0});
}

// The acceptance criterion of the taxonomy: closed accounting. In every
// preset — both engines, with and without warmup (which exercises the
// measurement-boundary reset) — each thread's cycles across the eight
// classes sum to exactly the run's measured cycle count.
TEST(StallTaxonomy, ClosesInEveryPreset) {
  struct Case {
    const char* name;
    MachineConfig cfg;
    u64 warmup;
  };
  const std::vector<Case> cases = {
      {"baseline32", baseline32_config(), 0},
      {"baseline128", baseline128_config(), 0},
      {"two_level_reactive", two_level_config(RobScheme::kReactive, 16), 500},
      {"two_level_predictive", two_level_config(RobScheme::kPredictive, 16), 0},
      {"single_thread", single_thread_config(), 0},
      {"cmp2_reactive", cmp_config(2, RobScheme::kReactive, 16), 500},
      {"cmp4_baseline", cmp_config(4, RobScheme::kBaseline, 16), 0},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const MachineConfig cfg = sampled(c.cfg, 250);
    const RunResult r = run_benchmarks(cfg, benches_for(cfg), 2000, 0, c.warmup);
    ASSERT_EQ(r.stall_cycles.size(),
              static_cast<size_t>(cfg.num_cores) * cfg.num_threads);
    for (size_t t = 0; t < r.stall_cycles.size(); ++t) {
      SCOPED_TRACE("thread " + std::to_string(t));
      EXPECT_EQ(stall_sum(r.stall_cycles[t]), r.cycles);
    }
  }
}

// Taxonomy off (sampling disabled) exports nothing — the structured field
// stays empty, so no campaign record and no counter map ever changes shape
// for a telemetry-off run.
TEST(StallTaxonomy, EmptyWhenSamplingIsOff) {
  const MachineConfig cfg = two_level_config(RobScheme::kReactive, 16);
  const RunResult r = run_benchmarks(cfg, benches_for(cfg), 1500, 0, 0);
  EXPECT_TRUE(r.stall_cycles.empty());
  EXPECT_TRUE(obs::stall_summary_counters(r.stall_cycles).empty());
  EXPECT_TRUE(obs::cmp_summary_counters(r.samples, r.stall_cycles, 4).empty());
}

// A memory-bound mix behind a shared backend must attribute cycles to the
// backend classes — the taxonomy is not closed-but-degenerate.
TEST(StallTaxonomy, CmpRunAttributesBackendStalls) {
  const MachineConfig cfg = sampled(cmp_config(4, RobScheme::kReactive, 16), 250);
  const RunResult r = run_benchmarks(cfg, benches_for(cfg), 2000, 0, 0);
  u64 backend = 0;
  for (const auto& th : r.stall_cycles)
    backend += th[static_cast<size_t>(obs::StallClass::kMemLlc)] +
               th[static_cast<size_t>(obs::StallClass::kMemDram)] +
               th[static_cast<size_t>(obs::StallClass::kMemBus)];
  EXPECT_GT(backend, 0u);
}

// Machine-wide determinism contract: the merged series AND the taxonomy of
// a CmpMachine using the global idle fast-forward are bit-identical to a
// machine pinned cycle-by-cycle (one pinned core pins the whole lockstep
// machine).
TEST(CmpTelemetry, SeriesAndTaxonomyIdenticalWithAndWithoutFastForward) {
  const MachineConfig cfg =
      fast_forwarding(sampled(cmp_config(4, RobScheme::kReactive, 16), 250));
  const auto benches = benches_for(cfg);

  CmpMachine ff(cfg, benches);
  const RunResult with_ff = ff.run(2000);

  CmpMachine pinned(cfg, benches);
  std::ostringstream sink;
  // A silent text tracer on core 0 pins every core: CmpMachine only
  // fast-forwards when no core is pinned in the lockstep cycle.
  pinned.core(0).tracer().attach(&sink, 0, 0);
  const RunResult without_ff = pinned.run(2000);

  u64 skipped = 0;
  for (u32 c = 0; c < ff.num_cores(); ++c) skipped += ff.core(c).fast_forwarded_cycles();
  EXPECT_GT(skipped, 0u);
  for (u32 c = 0; c < pinned.num_cores(); ++c)
    EXPECT_EQ(pinned.core(c).fast_forwarded_cycles(), 0u);

  EXPECT_EQ(with_ff.cycles, without_ff.cycles);
  ASSERT_FALSE(with_ff.samples.empty());
  EXPECT_EQ(with_ff.samples, without_ff.samples);
  EXPECT_EQ(with_ff.stall_cycles, without_ff.stall_cycles);
  EXPECT_EQ(sink.str(), "");
}

// Turning machine-wide sampling on must not perturb the simulated CMP:
// cycles and every architectural counter stay bit-identical (the golden
// contract seen from the CMP side).
TEST(CmpTelemetry, SamplingDoesNotPerturbTheMachine) {
  const MachineConfig base = cmp_config(2, RobScheme::kReactive, 16);
  const auto benches = benches_for(base);

  CmpMachine off(sampled(base, 0), benches);
  const RunResult r_off = off.run(2000);

  CmpMachine on(sampled(base, 200), benches);
  const RunResult r_on = on.run(2000);

  EXPECT_EQ(r_off.cycles, r_on.cycles);
  EXPECT_EQ(r_off.counters, r_on.counters);
  EXPECT_TRUE(r_off.samples.empty());
  EXPECT_TRUE(r_off.stall_cycles.empty());
  ASSERT_FALSE(r_on.samples.empty());
  // The merged series carries the machine-wide MSHR occupancy and every
  // core's thread slices.
  EXPECT_EQ(r_on.samples.samples().front().threads.size(), benches.size());
}

TEST(CmpTelemetry, SummaryCountersFlattenTheTaxonomy) {
  std::vector<std::array<u64, obs::kStallClassCount>> per_thread(2);
  per_thread[0][static_cast<size_t>(obs::StallClass::kCommit)] = 70;
  per_thread[0][static_cast<size_t>(obs::StallClass::kMemLlc)] = 30;
  per_thread[1][static_cast<size_t>(obs::StallClass::kMemDram)] = 60;
  per_thread[1][static_cast<size_t>(obs::StallClass::kMemBus)] = 40;

  const auto stall = obs::stall_summary_counters(per_thread);
  EXPECT_EQ(stall.size(), 2 * obs::kStallClassCount);
  EXPECT_EQ(stall.at("stall.t0.commit_cycles"), 70u);
  EXPECT_EQ(stall.at("stall.t0.mem_llc_cycles"), 30u);
  EXPECT_EQ(stall.at("stall.t1.mem_dram_cycles"), 60u);
  EXPECT_EQ(stall.at("stall.t1.rob2_wait_cycles"), 0u);

  obs::IntervalSeries series(100);
  for (u32 i = 1; i <= 10; ++i) {
    obs::IntervalSample s;
    s.cycle = 100 * i;
    s.llc_mshr_occ = i;
    s.threads.emplace_back();
    series.add(std::move(s));
  }
  const auto cmp = obs::cmp_summary_counters(series, per_thread, 2);
  EXPECT_EQ(cmp.at("obs.cmp.cores"), 2u);
  EXPECT_EQ(cmp.at("obs.cmp.stall_llc_cycles"), 30u);
  EXPECT_EQ(cmp.at("obs.cmp.stall_dram_cycles"), 60u);
  EXPECT_EQ(cmp.at("obs.cmp.stall_bus_cycles"), 40u);
  EXPECT_EQ(cmp.at("obs.cmp.llc_mshr_p90"), 9u);
}

// The machine-wide Chrome trace: one process per core (pid = core index),
// a shared-backend process with the LLC MSHR-pool counter track and
// per-bank DRAM row-state instants, all merged into one well-formed JSON
// document with no (pid, tid) collisions.
TEST(CmpTelemetry, MergedChromeTraceCarriesBackendTracks) {
  const MachineConfig cfg = cmp_config(2, RobScheme::kReactive, 16);
  const auto benches = benches_for(cfg);
  CmpMachine machine(cfg, benches);

  std::vector<obs::ChromeTraceWriter> core_writers(machine.num_cores());
  obs::ChromeTraceWriter backend;
  std::vector<obs::ChromeTraceWriter*> per_core;
  for (auto& w : core_writers) per_core.push_back(&w);
  machine.attach_chrome_trace(per_core, &backend);
  machine.run(2000);

  EXPECT_EQ(core_writers[0].pid(), 0u);
  EXPECT_EQ(core_writers[1].pid(), 1u);
  EXPECT_EQ(backend.pid(), 2u);
  EXPECT_EQ(core_writers[0].count_named('M', "process_name"), 1u);
  EXPECT_EQ(backend.count_named('M', "process_name"), 1u);
  // The backend names its MSHR-pool track and one track per DRAM bank.
  EXPECT_GT(backend.count_named('M', "thread_name"), 1u);
  EXPECT_GT(backend.count_named('C', "llc_mshr_occupancy"), 0u);
  const u64 row_events = backend.count_named('i', "row_hit") +
                         backend.count_named('i', "row_open") +
                         backend.count_named('i', "row_conflict");
  EXPECT_GT(row_events, 0u);

  std::ostringstream os;
  std::vector<const obs::ChromeTraceWriter*> all = {&core_writers[0], &core_writers[1],
                                                    &backend};
  obs::ChromeTraceWriter::write_merged(os, all);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("llc mshr pool"), std::string::npos);
  EXPECT_NE(json.find("dram ch0 bank0"), std::string::npos);
  EXPECT_NE(json.find("core1"), std::string::npos);
}

// Attaching the machine-wide trace must not change the simulated CMP.
TEST(CmpTelemetry, TraceAttachmentDoesNotPerturbTheMachine) {
  const MachineConfig cfg = fast_forwarding(cmp_config(2, RobScheme::kReactive, 16));
  const auto benches = benches_for(cfg);

  CmpMachine plain(cfg, benches);
  const RunResult a = plain.run(2000);

  CmpMachine traced(cfg, benches);
  std::vector<obs::ChromeTraceWriter> core_writers(traced.num_cores());
  obs::ChromeTraceWriter backend;
  std::vector<obs::ChromeTraceWriter*> per_core;
  for (auto& w : core_writers) per_core.push_back(&w);
  traced.attach_chrome_trace(per_core, &backend);
  const RunResult b = traced.run(2000);

  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters, b.counters);
}

// Samples interleave with replayed idle spans at the right boundaries: the
// cumulative per-thread stall vector inside each sample sums to that
// sample's offset from the measurement base (label semantics: a sample
// labelled L captures state after cycle L-1).
TEST(CmpTelemetry, SampledStallVectorsCloseAtEveryBoundary) {
  const MachineConfig cfg = sampled(cmp_config(2, RobScheme::kReactive, 16), 250);
  const auto benches = benches_for(cfg);
  CmpMachine machine(cfg, benches);
  const RunResult r = machine.run(2000);

  ASSERT_FALSE(r.samples.empty());
  const Cycle first = r.samples.samples().front().cycle;
  // Without warmup the measurement base is cycle 0, so the offset of a
  // sample labelled L is exactly L.
  ASSERT_EQ(first, r.samples.interval());
  for (const auto& s : r.samples.samples())
    for (const auto& th : s.threads) EXPECT_EQ(stall_sum(th.stall), s.cycle);
}

}  // namespace
}  // namespace tlrob
