file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dod_rrob.dir/bench_fig3_dod_rrob.cpp.o"
  "CMakeFiles/bench_fig3_dod_rrob.dir/bench_fig3_dod_rrob.cpp.o.d"
  "bench_fig3_dod_rrob"
  "bench_fig3_dod_rrob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dod_rrob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
