# Empty compiler generated dependencies file for bench_fig3_dod_rrob.
# This may be replaced when dependencies are built.
