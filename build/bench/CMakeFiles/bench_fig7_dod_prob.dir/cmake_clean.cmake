file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dod_prob.dir/bench_fig7_dod_prob.cpp.o"
  "CMakeFiles/bench_fig7_dod_prob.dir/bench_fig7_dod_prob.cpp.o.d"
  "bench_fig7_dod_prob"
  "bench_fig7_dod_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dod_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
