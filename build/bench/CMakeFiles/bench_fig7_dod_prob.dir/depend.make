# Empty dependencies file for bench_fig7_dod_prob.
# This may be replaced when dependencies are built.
