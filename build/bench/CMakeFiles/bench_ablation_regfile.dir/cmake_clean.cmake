file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regfile.dir/bench_ablation_regfile.cpp.o"
  "CMakeFiles/bench_ablation_regfile.dir/bench_ablation_regfile.cpp.o.d"
  "bench_ablation_regfile"
  "bench_ablation_regfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
