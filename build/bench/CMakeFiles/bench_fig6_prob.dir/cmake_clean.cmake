file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_prob.dir/bench_fig6_prob.cpp.o"
  "CMakeFiles/bench_fig6_prob.dir/bench_fig6_prob.cpp.o.d"
  "bench_fig6_prob"
  "bench_fig6_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
