file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cdr.dir/bench_fig5_cdr.cpp.o"
  "CMakeFiles/bench_fig5_cdr.dir/bench_fig5_cdr.cpp.o.d"
  "bench_fig5_cdr"
  "bench_fig5_cdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
