# Empty compiler generated dependencies file for bench_fig1_dod_baseline.
# This may be replaced when dependencies are built.
