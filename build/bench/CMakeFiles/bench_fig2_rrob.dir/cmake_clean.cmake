file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_rrob.dir/bench_fig2_rrob.cpp.o"
  "CMakeFiles/bench_fig2_rrob.dir/bench_fig2_rrob.cpp.o.d"
  "bench_fig2_rrob"
  "bench_fig2_rrob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_rrob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
