# Empty dependencies file for bench_fig4_relaxed.
# This may be replaced when dependencies are built.
