
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/bimodal.cpp" "src/CMakeFiles/tlrob.dir/branch/bimodal.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/branch/bimodal.cpp.o.d"
  "/root/repo/src/branch/btb.cpp" "src/CMakeFiles/tlrob.dir/branch/btb.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/branch/btb.cpp.o.d"
  "/root/repo/src/branch/gshare.cpp" "src/CMakeFiles/tlrob.dir/branch/gshare.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/branch/gshare.cpp.o.d"
  "/root/repo/src/branch/load_hit_predictor.cpp" "src/CMakeFiles/tlrob.dir/branch/load_hit_predictor.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/branch/load_hit_predictor.cpp.o.d"
  "/root/repo/src/branch/predictor.cpp" "src/CMakeFiles/tlrob.dir/branch/predictor.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/branch/predictor.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/tlrob.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/common/config.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/CMakeFiles/tlrob.dir/common/histogram.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/common/histogram.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/tlrob.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/tlrob.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/common/stats.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/CMakeFiles/tlrob.dir/isa/opcode.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/isa/opcode.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/CMakeFiles/tlrob.dir/isa/program.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/isa/program.cpp.o.d"
  "/root/repo/src/isa/program_builder.cpp" "src/CMakeFiles/tlrob.dir/isa/program_builder.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/isa/program_builder.cpp.o.d"
  "/root/repo/src/memory/cache.cpp" "src/CMakeFiles/tlrob.dir/memory/cache.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/memory/cache.cpp.o.d"
  "/root/repo/src/memory/memory_channel.cpp" "src/CMakeFiles/tlrob.dir/memory/memory_channel.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/memory/memory_channel.cpp.o.d"
  "/root/repo/src/memory/memory_system.cpp" "src/CMakeFiles/tlrob.dir/memory/memory_system.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/memory/memory_system.cpp.o.d"
  "/root/repo/src/pipeline/dcra.cpp" "src/CMakeFiles/tlrob.dir/pipeline/dcra.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/pipeline/dcra.cpp.o.d"
  "/root/repo/src/pipeline/fetch_policy.cpp" "src/CMakeFiles/tlrob.dir/pipeline/fetch_policy.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/pipeline/fetch_policy.cpp.o.d"
  "/root/repo/src/pipeline/func_units.cpp" "src/CMakeFiles/tlrob.dir/pipeline/func_units.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/pipeline/func_units.cpp.o.d"
  "/root/repo/src/pipeline/issue_queue.cpp" "src/CMakeFiles/tlrob.dir/pipeline/issue_queue.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/pipeline/issue_queue.cpp.o.d"
  "/root/repo/src/pipeline/lsq.cpp" "src/CMakeFiles/tlrob.dir/pipeline/lsq.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/pipeline/lsq.cpp.o.d"
  "/root/repo/src/pipeline/rename.cpp" "src/CMakeFiles/tlrob.dir/pipeline/rename.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/pipeline/rename.cpp.o.d"
  "/root/repo/src/rob/allocation_policy.cpp" "src/CMakeFiles/tlrob.dir/rob/allocation_policy.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/rob/allocation_policy.cpp.o.d"
  "/root/repo/src/rob/dod_predictor.cpp" "src/CMakeFiles/tlrob.dir/rob/dod_predictor.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/rob/dod_predictor.cpp.o.d"
  "/root/repo/src/rob/rob.cpp" "src/CMakeFiles/tlrob.dir/rob/rob.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/rob/rob.cpp.o.d"
  "/root/repo/src/rob/two_level_rob.cpp" "src/CMakeFiles/tlrob.dir/rob/two_level_rob.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/rob/two_level_rob.cpp.o.d"
  "/root/repo/src/sim/config_override.cpp" "src/CMakeFiles/tlrob.dir/sim/config_override.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/sim/config_override.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/tlrob.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/tlrob.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/presets.cpp" "src/CMakeFiles/tlrob.dir/sim/presets.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/sim/presets.cpp.o.d"
  "/root/repo/src/sim/smt_sim.cpp" "src/CMakeFiles/tlrob.dir/sim/smt_sim.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/sim/smt_sim.cpp.o.d"
  "/root/repo/src/workload/addr_gen.cpp" "src/CMakeFiles/tlrob.dir/workload/addr_gen.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/workload/addr_gen.cpp.o.d"
  "/root/repo/src/workload/branch_gen.cpp" "src/CMakeFiles/tlrob.dir/workload/branch_gen.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/workload/branch_gen.cpp.o.d"
  "/root/repo/src/workload/kernels.cpp" "src/CMakeFiles/tlrob.dir/workload/kernels.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/workload/kernels.cpp.o.d"
  "/root/repo/src/workload/mixes.cpp" "src/CMakeFiles/tlrob.dir/workload/mixes.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/workload/mixes.cpp.o.d"
  "/root/repo/src/workload/spec_profiles.cpp" "src/CMakeFiles/tlrob.dir/workload/spec_profiles.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/workload/spec_profiles.cpp.o.d"
  "/root/repo/src/workload/thread_context.cpp" "src/CMakeFiles/tlrob.dir/workload/thread_context.cpp.o" "gcc" "src/CMakeFiles/tlrob.dir/workload/thread_context.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
