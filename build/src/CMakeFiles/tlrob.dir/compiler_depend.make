# Empty compiler generated dependencies file for tlrob.
# This may be replaced when dependencies are built.
