file(REMOVE_RECURSE
  "libtlrob.a"
)
