
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_branch.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_branch.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_branch.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rob.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_rob.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_rob.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_workload.cpp.o.d"
  "/root/repo/tests/test_workload_character.cpp" "tests/CMakeFiles/tlrob_tests.dir/test_workload_character.cpp.o" "gcc" "tests/CMakeFiles/tlrob_tests.dir/test_workload_character.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tlrob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
