file(REMOVE_RECURSE
  "CMakeFiles/tlrob_tests.dir/test_branch.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_branch.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_common.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_edge_cases.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_edge_cases.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_isa.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_isa.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_memory.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_memory.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_pipeline.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_pipeline.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_properties.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_rob.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_rob.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_sim.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_sim.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_workload.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_workload.cpp.o.d"
  "CMakeFiles/tlrob_tests.dir/test_workload_character.cpp.o"
  "CMakeFiles/tlrob_tests.dir/test_workload_character.cpp.o.d"
  "tlrob_tests"
  "tlrob_tests.pdb"
  "tlrob_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrob_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
