# Empty dependencies file for tlrob_tests.
# This may be replaced when dependencies are built.
