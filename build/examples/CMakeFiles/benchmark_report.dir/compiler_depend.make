# Empty compiler generated dependencies file for benchmark_report.
# This may be replaced when dependencies are built.
