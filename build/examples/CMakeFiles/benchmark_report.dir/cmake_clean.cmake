file(REMOVE_RECURSE
  "CMakeFiles/benchmark_report.dir/benchmark_report.cpp.o"
  "CMakeFiles/benchmark_report.dir/benchmark_report.cpp.o.d"
  "benchmark_report"
  "benchmark_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
