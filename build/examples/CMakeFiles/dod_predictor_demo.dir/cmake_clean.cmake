file(REMOVE_RECURSE
  "CMakeFiles/dod_predictor_demo.dir/dod_predictor_demo.cpp.o"
  "CMakeFiles/dod_predictor_demo.dir/dod_predictor_demo.cpp.o.d"
  "dod_predictor_demo"
  "dod_predictor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_predictor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
