# Empty dependencies file for dod_predictor_demo.
# This may be replaced when dependencies are built.
