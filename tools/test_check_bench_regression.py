#!/usr/bin/env python3
"""Exit-code contract tests for check_bench_regression.py.

Runs the checker as a subprocess against synthetic baseline/current files and
asserts the documented contract: 0 = pass, 1 = regression, 2 = usage/format
error — and that format errors produce a one-line diagnostic, never a Python
traceback. Registered with ctest as `check_bench_regression_py`.
"""

import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_bench_regression.py")

BASELINE_OK = {
    "tolerance_pct": 20,
    "history": [
        {
            "label": "seed",
            "date": "2026-01-01",
            "benchmarks": {"BM_sim_speed/mix1": 1000000.0},
        }
    ],
}


def current_json(rate):
    return {
        "benchmarks": [
            {"name": "BM_sim_speed/mix1", "run_type": "iteration", "sim_cycles/s": rate}
        ]
    }


def write(tmp, name, content):
    path = os.path.join(tmp, name)
    with open(path, "w") as f:
        if isinstance(content, str):
            f.write(content)
        else:
            json.dump(content, f)
    return path


def run(baseline, current, *extra):
    proc = subprocess.run(
        [sys.executable, CHECKER, "--baseline", baseline, "--current", current, *extra],
        capture_output=True,
        text=True,
    )
    return proc


failures = []


def check(label, proc, want_code, want_stdout=()):
    ok = proc.returncode == want_code and "Traceback" not in proc.stderr
    for needle in want_stdout:
        if needle not in proc.stdout:
            ok = False
    status = "ok" if ok else f"FAIL (exit {proc.returncode}, wanted {want_code})"
    print(f"  {label:44s} {status}")
    if not ok:
        failures.append(label)
        sys.stderr.write(proc.stderr)
        sys.stderr.write(proc.stdout)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        good_base = write(tmp, "base.json", BASELINE_OK)
        good_cur = write(tmp, "cur_ok.json", current_json(990000.0))
        slow_cur = write(tmp, "cur_slow.json", current_json(100000.0))
        empty_hist = write(tmp, "base_empty.json", {"tolerance_pct": 20, "history": []})
        no_rows = write(tmp, "cur_norows.json", {"benchmarks": [{"name": "x"}]})
        not_json = write(tmp, "garbage.json", "this is not json {")
        missing = os.path.join(tmp, "does_not_exist.json")

        # Per-benchmark tolerance overrides: the same -30% drop passes a
        # benchmark whose override grants 40% slack and fails one tightened
        # to 5%, while --tolerance on the command line beats both.
        loose_base = dict(BASELINE_OK, tolerance_pct_overrides={"BM_sim_speed/mix1": 40})
        tight_base = dict(BASELINE_OK, tolerance_pct_overrides={"BM_sim_speed/mix1": 5})
        bad_overrides = dict(BASELINE_OK, tolerance_pct_overrides={"BM_sim_speed/mix1": "x"})
        commented_overrides = dict(
            BASELINE_OK,
            tolerance_pct_overrides={"_comment": "why", "BM_sim_speed/mix1": 40},
        )
        loose = write(tmp, "base_loose.json", loose_base)
        tight = write(tmp, "base_tight.json", tight_base)
        bad_ovr = write(tmp, "base_badovr.json", bad_overrides)
        commented = write(tmp, "base_commented.json", commented_overrides)
        drop30 = write(tmp, "cur_drop30.json", current_json(700000.0))
        drop10 = write(tmp, "cur_drop10.json", current_json(900000.0))

        # Median-of-last-3 reference: the newest entry records an outlier
        # (2e6 where two prior sessions said 1e6). The reference is the
        # median 1e6, so 950k passes — against the raw newest value it
        # would read as a -52% regression.
        def entry(label, rate):
            return {"label": label, "date": "2026-01-01", "benchmarks": {"BM_sim_speed/mix1": rate}}

        outlier_base = write(
            tmp,
            "base_outlier.json",
            {
                "tolerance_pct": 20,
                "history": [entry("a", 1000000.0), entry("b", 1000000.0), entry("c", 2000000.0)],
            },
        )
        # Only the last 3 entries count: an ancient 10e6 recording must not
        # drag the median up past what the recent sessions sustain.
        windowed_base = write(
            tmp,
            "base_windowed.json",
            {
                "tolerance_pct": 20,
                "history": [
                    entry("old", 10000000.0),
                    entry("a", 1000000.0),
                    entry("b", 1000000.0),
                    entry("c", 1000000.0),
                ],
            },
        )
        # A benchmark added in the newest entry has a 1-deep history; its own
        # value is its reference (no KeyError against older entries).
        new_bench_base = write(
            tmp,
            "base_newbench.json",
            {
                "tolerance_pct": 20,
                "history": [
                    {"label": "a", "date": "2026-01-01", "benchmarks": {}},
                    entry("b", 1000000.0),
                ],
            },
        )
        bad_value_base = write(
            tmp,
            "base_badvalue.json",
            {"tolerance_pct": 20, "history": [entry("a", "fast")]},
        )

        print("check_bench_regression.py exit-code contract:")
        check("within tolerance -> 0", run(good_base, good_cur), 0)
        check("regression -> 1", run(good_base, slow_cur), 1)
        check("override grants slack -> 0", run(loose, drop30), 0)
        check("override tightens -> 1", run(tight, drop10), 1)
        check("--tolerance beats override -> 0", run(tight, drop10, "--tolerance", "20"), 0)
        check("non-numeric override -> 2", run(bad_ovr, good_cur), 2)
        check("_comment key in overrides ignored -> 0", run(commented, drop30), 0)
        check(
            "signed deltas printed",
            run(good_base, good_cur),
            0,
            want_stdout=["-1.00%"],
        )
        check(
            "improvement delta printed",
            run(good_base, write(tmp, "cur_fast.json", current_json(1500000.0))),
            0,
            want_stdout=["+50.00%"],
        )
        check(
            "median absorbs newest outlier -> 0",
            run(outlier_base, write(tmp, "cur_950k.json", current_json(950000.0))),
            0,
            want_stdout=["median of last 3"],
        )
        check(
            "history window is last 3 -> 0",
            run(windowed_base, good_cur),
            0,
        )
        check(
            "newly added benchmark uses its own history -> 0",
            run(new_bench_base, good_cur),
            0,
        )
        check("non-numeric history value -> 2", run(bad_value_base, good_cur), 2)
        check("empty baseline history -> 2", run(empty_hist, good_cur), 2)
        check("current without metric rows -> 2", run(good_base, no_rows), 2)
        check("malformed baseline JSON -> 2", run(not_json, good_cur), 2)
        check("malformed current JSON -> 2", run(good_base, not_json), 2)
        check("missing baseline file -> 2", run(missing, good_cur), 2)
        check("missing current file -> 2", run(good_base, missing), 2)

    if failures:
        print(f"FAIL: {len(failures)} case(s): {', '.join(failures)}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
