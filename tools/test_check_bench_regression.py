#!/usr/bin/env python3
"""Exit-code contract tests for check_bench_regression.py.

Runs the checker as a subprocess against synthetic baseline/current files and
asserts the documented contract: 0 = pass, 1 = regression, 2 = usage/format
error — and that format errors produce a one-line diagnostic, never a Python
traceback. Registered with ctest as `check_bench_regression_py`.
"""

import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_bench_regression.py")

BASELINE_OK = {
    "tolerance_pct": 20,
    "history": [
        {
            "label": "seed",
            "date": "2026-01-01",
            "benchmarks": {"BM_sim_speed/mix1": 1000000.0},
        }
    ],
}


def current_json(rate):
    return {
        "benchmarks": [
            {"name": "BM_sim_speed/mix1", "run_type": "iteration", "sim_cycles/s": rate}
        ]
    }


def write(tmp, name, content):
    path = os.path.join(tmp, name)
    with open(path, "w") as f:
        if isinstance(content, str):
            f.write(content)
        else:
            json.dump(content, f)
    return path


def run(baseline, current):
    proc = subprocess.run(
        [sys.executable, CHECKER, "--baseline", baseline, "--current", current],
        capture_output=True,
        text=True,
    )
    return proc


failures = []


def check(label, proc, want_code):
    ok = proc.returncode == want_code and "Traceback" not in proc.stderr
    status = "ok" if ok else f"FAIL (exit {proc.returncode}, wanted {want_code})"
    print(f"  {label:44s} {status}")
    if not ok:
        failures.append(label)
        sys.stderr.write(proc.stderr)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        good_base = write(tmp, "base.json", BASELINE_OK)
        good_cur = write(tmp, "cur_ok.json", current_json(990000.0))
        slow_cur = write(tmp, "cur_slow.json", current_json(100000.0))
        empty_hist = write(tmp, "base_empty.json", {"tolerance_pct": 20, "history": []})
        no_rows = write(tmp, "cur_norows.json", {"benchmarks": [{"name": "x"}]})
        not_json = write(tmp, "garbage.json", "this is not json {")
        missing = os.path.join(tmp, "does_not_exist.json")

        print("check_bench_regression.py exit-code contract:")
        check("within tolerance -> 0", run(good_base, good_cur), 0)
        check("regression -> 1", run(good_base, slow_cur), 1)
        check("empty baseline history -> 2", run(empty_hist, good_cur), 2)
        check("current without metric rows -> 2", run(good_base, no_rows), 2)
        check("malformed baseline JSON -> 2", run(not_json, good_cur), 2)
        check("malformed current JSON -> 2", run(good_base, not_json), 2)
        check("missing baseline file -> 2", run(missing, good_cur), 2)
        check("missing current file -> 2", run(good_base, missing), 2)

    if failures:
        print(f"FAIL: {len(failures)} case(s): {', '.join(failures)}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
