// Driver plumbing for tlrob-lint: DESIGN.md registry parsing and the
// compile_commands.json file enumeration. The JSON parsing reuses the
// campaign runner's deterministic parser (runner/json.hpp) — the lint tool
// links the tlrob library anyway for common/types.
#include "lint/lint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runner/json.hpp"

namespace tlrob::lint {

std::vector<RegistryEntry> parse_registry(const std::string& design_path, std::string* error) {
  std::vector<RegistryEntry> out;
  std::ifstream in(design_path);
  if (!in.is_open()) {
    if (error) *error = "cannot read " + design_path;
    return out;
  }
  std::string line;
  u32 lineno = 0;
  bool in_block = false;
  bool seen_block = false;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip trailing CR so a CRLF checkout parses identically.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!in_block && line.rfind("```counter-registry", 0) == 0) {
      in_block = true;
      seen_block = true;
      continue;
    }
    if (in_block && line.rfind("```", 0) == 0) {
      in_block = false;
      continue;
    }
    if (!in_block) continue;
    // Entry lines: "name", with optional trailing "# comment".
    std::string entry = line.substr(0, line.find('#'));
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) entry.pop_back();
    size_t start = entry.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    out.push_back(RegistryEntry{entry.substr(start), lineno});
  }
  if (!seen_block && error)
    *error = design_path + " has no ```counter-registry block (DESIGN.md §9)";
  return out;
}

std::vector<std::string> compile_db_files(const std::string& db_path) {
  std::ifstream in(db_path);
  if (!in.is_open())
    throw std::runtime_error("cannot read compile database " + db_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const runner::JsonValue db = runner::parse_json(ss.str());
  if (!db.is_array())
    throw std::runtime_error(db_path + " is not a compile database array");
  std::vector<std::string> files;
  for (const runner::JsonValue& entry : db.items) {
    const runner::JsonValue& file = entry.at("file");
    if (file.kind != runner::JsonValue::Kind::kString) continue;
    std::string path = file.as_string();
    if (path.empty()) continue;
    if (path[0] != '/') {
      const runner::JsonValue& dir = entry.at("directory");
      if (dir.kind == runner::JsonValue::Kind::kString)
        path = dir.as_string() + "/" + path;
    }
    files.push_back(std::move(path));
  }
  return files;
}

}  // namespace tlrob::lint
