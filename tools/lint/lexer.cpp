#include "lint/lexer.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tlrob::lint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Splits "D1,C2" (or "D1, C2") into rule ids.
std::vector<std::string> split_rule_list(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Harvests `tlrob-lint: allow(...)` / `allow-file(...)` from comment text.
void parse_directives(LexedFile& out, const std::string& comment, u32 line) {
  const std::string tag = "tlrob-lint:";
  size_t pos = comment.find(tag);
  while (pos != std::string::npos) {
    size_t p = pos + tag.size();
    while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
    const bool file_wide = comment.compare(p, 11, "allow-file(") == 0;
    const bool line_wide = !file_wide && comment.compare(p, 6, "allow(") == 0;
    if (file_wide || line_wide) {
      const size_t open = comment.find('(', p);
      const size_t close = comment.find(')', open == std::string::npos ? p : open);
      if (open != std::string::npos && close != std::string::npos) {
        for (const std::string& id : split_rule_list(comment.substr(open + 1, close - open - 1))) {
          if (file_wide)
            out.file_allows.push_back(id);
          else
            out.line_allows[line].push_back(id);
        }
      }
    }
    pos = comment.find(tag, pos + tag.size());
  }
}

}  // namespace

bool LexedFile::allowed(const std::string& id, u32 line) const {
  auto hit = [&](const std::vector<std::string>& ids) {
    return std::find(ids.begin(), ids.end(), id) != ids.end() ||
           std::find(ids.begin(), ids.end(), "*") != ids.end();
  };
  if (hit(file_allows)) return true;
  // A directive covers its own line and the next one (standalone-comment
  // style); look back at most one line from the finding.
  for (u32 l : {line, line == 0 ? 0 : line - 1}) {
    const auto it = line_allows.find(l);
    if (it != line_allows.end() && hit(it->second)) return true;
  }
  return false;
}

LexedFile lex_source(std::string path, const std::string& text) {
  LexedFile out;
  out.path = std::move(path);
  out.display_path = out.path;

  const size_t n = text.size();
  size_t i = 0;
  u32 line = 1;
  bool line_begins_pp = false;  // saw '#' as first non-space token on this line

  auto push = [&](Token::Kind k, std::string t, u32 ln) {
    out.tokens.push_back(Token{k, std::move(t), ln});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      line_begins_pp = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Comments (directive-bearing).
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const u32 start = line;
      size_t j = i + 2;
      while (j < n && text[j] != '\n') ++j;
      parse_directives(out, text.substr(i, j - i), start);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const u32 start = line;
      size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        ++j;
      }
      parse_directives(out, text.substr(i, std::min(n, j + 2) - i), start);
      i = j + 2 > n ? n : j + 2;
      continue;
    }

    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string closer = ")" + delim + "\"";
      const size_t end = text.find(closer, j);
      const u32 start = line;
      const size_t stop = end == std::string::npos ? n : end;
      for (size_t k = i; k < stop; ++k)
        if (text[k] == '\n') ++line;
      push(Token::Kind::kString, text.substr(j + 1, stop - j - 1), start);
      i = end == std::string::npos ? n : end + closer.size();
      continue;
    }

    // String / char literals (escapes honoured, contents kept raw).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const u32 start = line;
      size_t j = i + 1;
      std::string content;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          content += text[j];
          content += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') ++line;  // unterminated; keep line count sane
        content += text[j++];
      }
      if (quote == '"') push(Token::Kind::kString, content, start);
      i = j + 1 > n ? n : j + 1;
      continue;
    }

    // Identifiers / keywords.
    if (ident_start(c)) {
      size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      std::string word = text.substr(i, j - i);
      // `#include <name>` header capture: after `# include`, a <...> target
      // is a header-name, not a less-than expression.
      if (line_begins_pp && word == "include") {
        size_t k = j;
        while (k < n && (text[k] == ' ' || text[k] == '\t')) ++k;
        if (k < n && text[k] == '<') {
          const size_t close = text.find('>', k);
          if (close != std::string::npos) {
            out.includes.emplace_back(line, text.substr(k + 1, close - k - 1));
            i = close + 1;
            continue;
          }
        } else if (k < n && text[k] == '"') {
          const size_t close = text.find('"', k + 1);
          if (close != std::string::npos) {
            out.includes.emplace_back(line, text.substr(k + 1, close - k - 1));
            i = close + 1;
            continue;
          }
        }
      }
      push(Token::Kind::kIdent, std::move(word), line);
      i = j;
      continue;
    }

    // Numbers (pp-number: digits, dots, exponents, suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' || text[j - 1] == 'p' ||
                         text[j - 1] == 'P'))))
        ++j;
      push(Token::Kind::kNumber, text.substr(i, j - i), line);
      i = j;
      continue;
    }

    // Punctuation; keep "::" and "->" fused (the rules key on them).
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      push(Token::Kind::kPunct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      push(Token::Kind::kPunct, "->", line);
      i += 2;
      continue;
    }
    if (c == '#') line_begins_pp = true;
    push(Token::Kind::kPunct, std::string(1, c), line);
    ++i;
  }

  return out;
}

LexedFile lex_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("tlrob-lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lex_source(path, ss.str());
}

}  // namespace tlrob::lint
