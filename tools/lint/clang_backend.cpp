// Clang LibTooling backend for tlrob-lint (compiled only when CMake finds
// the Clang dev libraries and TLROB_LINT_CLANG is ON; see tools/CMakeLists).
//
// Re-checks the two rules where real type information beats token matching:
//   D1  range-for statements whose range expression's type involves an
//       unordered container, in emission-path files;
//   D2  references to banned nondeterminism functions/types in simulator-
//       core files.
// The driver merges these findings with the token backend's (dedup by
// rule/file/line), so the AST backend only ever adds precision, never
// removes coverage — and a toolchain without Clang still runs everything.
#include "lint/lint.hpp"

#if defined(TLROB_LINT_HAVE_CLANG)

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

namespace tlrob::lint {

namespace {

using namespace clang;
using namespace clang::ast_matchers;

struct Collector : public MatchFinder::MatchCallback {
  std::vector<Finding>* out;

  void run(const MatchFinder::MatchResult& result) override {
    const SourceManager& sm = *result.SourceManager;
    auto report = [&](SourceLocation loc, const char* rule, std::string msg) {
      if (loc.isInvalid() || !sm.isInMainFile(loc)) return;
      out->push_back(Finding{rule, std::string(sm.getFilename(loc)),
                             sm.getSpellingLineNumber(loc), std::move(msg)});
    };
    if (const auto* loop = result.Nodes.getNodeAs<CXXForRangeStmt>("d1_loop"))
      report(loop->getBeginLoc(), "D1",
             "range-for over an unordered container in an emission path (AST backend)");
    if (const auto* call = result.Nodes.getNodeAs<CallExpr>("d2_call"))
      report(call->getBeginLoc(), "D2",
             "call to a nondeterministic host function in the simulator core (AST backend)");
    if (const auto* decl = result.Nodes.getNodeAs<VarDecl>("d2_type"))
      report(decl->getBeginLoc(), "D2",
             "nondeterministic source type in the simulator core (AST backend)");
  }
};

}  // namespace

std::vector<Finding> run_clang_backend(const std::string& compile_db_dir,
                                       const std::vector<std::string>& files,
                                       const LintOptions& opts) {
  std::vector<Finding> findings;

  std::string db_error;
  auto db = tooling::CompilationDatabase::loadFromDirectory(compile_db_dir, db_error);
  if (!db) return findings;

  // Only TUs a rule is scoped to — AST runs are expensive.
  std::vector<std::string> targets;
  for (const std::string& f : files)
    if (f.size() > 4 && f.compare(f.size() - 4, 4, ".cpp") == 0 &&
        (opts.all_scopes || in_scope("D1", f) || in_scope("D2", f)))
      targets.push_back(f);
  if (targets.empty()) return findings;

  const auto unordered_type = hasType(hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(cxxRecordDecl(hasAnyName("::std::unordered_map", "::std::unordered_set",
                                              "::std::unordered_multimap",
                                              "::std::unordered_multiset"))))));

  Collector collector;
  collector.out = &findings;
  MatchFinder finder;
  finder.addMatcher(
      cxxForRangeStmt(hasRangeInit(expr(anyOf(unordered_type, ignoringImplicit(unordered_type)))))
          .bind("d1_loop"),
      &collector);
  finder.addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand", "::time", "::clock",
                                              "::gettimeofday", "::clock_gettime", "::getpid"))))
          .bind("d2_call"),
      &collector);
  finder.addMatcher(
      varDecl(hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
                  cxxRecordDecl(hasAnyName("::std::random_device", "::std::mt19937",
                                           "::std::mt19937_64")))))))
          .bind("d2_type"),
      &collector);

  tooling::ClangTool tool(*db, targets);
  tool.run(tooling::newFrontendActionFactory(&finder).get());

  // Post-filter by rule scope (the AST match gave absolute paths).
  std::vector<Finding> scoped;
  for (Finding& f : findings)
    if (opts.all_scopes || in_scope(f.rule, f.path)) scoped.push_back(std::move(f));
  return scoped;
}

}  // namespace tlrob::lint

#endif  // TLROB_LINT_HAVE_CLANG
