// Token-level implementations of the tlrob-lint rule catalogue (see
// lint.hpp for the rule list and DESIGN.md §11 for rationale and scope).
//
// These are pattern matchers over the lexer's token stream, written to be
// conservative-but-useful: each one encodes the narrow repo contract it
// polices rather than general C++ semantics, and every scope below names
// the modules the contract covers. False positives are handled with a
// justified `tlrob-lint: allow(...)` directive, never by weakening a rule.

#include <algorithm>
#include <set>
#include <sstream>

#include "lint/lint.hpp"

namespace tlrob::lint {

namespace {

using TokIt = std::vector<Token>::const_iterator;

// ---- rule scopes (root-relative path substrings) ---------------------------

/// D1: emission paths — everything between a StatGroup/RunResult and bytes
/// on disk: records, sinks, golden fingerprints, render tables, the engine
/// (manifest + resume), and the whole observability tree.
const char* const kEmissionScope[] = {
    "src/runner/record", "src/runner/sinks",  "src/runner/golden",
    "src/runner/render", "src/runner/json",   "src/runner/engine",
    "src/obs/",
};

/// D2: the simulated machine. Its only sanctioned entropy is tlrob::Rng
/// seeded from MachineConfig::seed.
const char* const kCoreScope[] = {
    "src/sim/", "src/pipeline/", "src/rob/", "src/memory/",
};

/// D3: everywhere counters are registered or read by name.
const char* const kCounterScope[] = {"src/", "tools/"};

/// C1/C2: the concurrent modules (the shared pool and gate primitives in
/// common/, the campaign engine/emitter/sinks, the single-thread-IPC memo,
/// the parallel CMP epoch executor, observability sample sinks).
const char* const kConcurrencyScope[] = {
    "src/common/thread_pool", "src/common/sync", "src/runner/engine",
    "src/runner/sinks",       "src/sim/experiment", "src/sim/cmp",
    "src/obs/",
};

template <size_t N>
bool match_scope(const char* const (&scope)[N], const std::string& p) {
  for (const char* s : scope)
    if (p.find(s) != std::string::npos) return true;
  return false;
}

// ---- small token helpers ---------------------------------------------------

const std::set<std::string> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

const std::set<std::string> kKeyedContainers = {
    "map",           "unordered_map", "set",           "unordered_set",
    "multimap",      "multiset",      "unordered_multimap", "unordered_multiset"};

/// Forbidden-as-type identifiers for D2 (any appearance is a finding).
const std::set<std::string> kNondetTypes = {
    "random_device", "system_clock",        "high_resolution_clock",
    "steady_clock",  "default_random_engine", "mt19937", "mt19937_64",
};

/// Forbidden-as-call identifiers for D2 (finding when followed by '(' and
/// not a member call, so `wheel.time()`-style members don't trip it).
const std::set<std::string> kNondetCalls = {
    "rand", "srand", "rand_r", "drand48", "time", "clock",
    "gettimeofday", "clock_gettime", "getpid",
};

/// Headers whose inclusion in the simulator core is a finding by itself.
const std::set<std::string> kNondetHeaders = {"random", "ctime", "chrono", "time.h",
                                              "sys/time.h"};

/// Advances past a balanced <...> template argument list; `it` points at
/// '<'. Returns the iterator one past the matching '>'. Tolerates shifts by
/// treating every '<'/'>' as angle brackets — good enough for declarations,
/// which is the only place the rules walk template arguments.
TokIt skip_angles(TokIt it, TokIt end) {
  int depth = 0;
  for (; it != end; ++it) {
    if (it->is_punct("<"))
      ++depth;
    else if (it->is_punct(">") && --depth == 0)
      return it + 1;
    else if (it->is_punct(";"))  // malformed / not a template after all
      return it;
  }
  return it;
}

/// Collects every string literal between a call's '(' and its matching ')'.
/// `it` points at the identifier before '('.
std::vector<const Token*> call_string_args(TokIt it, TokIt end) {
  std::vector<const Token*> out;
  ++it;
  if (it == end || !it->is_punct("(")) return out;
  int depth = 0;
  for (; it != end; ++it) {
    if (it->is_punct("("))
      ++depth;
    else if (it->is_punct(")") && --depth == 0)
      break;
    else if (it->kind == Token::Kind::kString)
      out.push_back(&*it);
  }
  return out;
}

bool prev_is_member_access(TokIt it, TokIt begin) {
  if (it == begin) return false;
  const Token& p = *(it - 1);
  return p.is_punct(".") || p.is_punct("->");
}

void add_finding(std::vector<Finding>& out, const LexedFile& f, const char* rule, u32 line,
                 std::string msg) {
  if (f.allowed(rule, line)) return;
  out.push_back(Finding{rule, f.display_path, line, std::move(msg)});
}

// ---- D1: unordered iteration in emission paths -----------------------------

void rule_d1(const LexedFile& f, std::vector<Finding>& out) {
  // Pass 1: names declared (or returned) with an unordered container type.
  std::set<std::string> unordered_names;
  const auto& ts = f.tokens;
  for (auto it = ts.begin(); it != ts.end(); ++it) {
    if (it->kind != Token::Kind::kIdent || kUnorderedContainers.count(it->text) == 0) continue;
    auto j = it + 1;
    if (j == ts.end() || !j->is_punct("<")) continue;
    j = skip_angles(j, ts.end());
    // Skip declarator decorations between the type and the name.
    while (j != ts.end() &&
           (j->is_punct("&") || j->is_punct("*") || j->is_ident("const") || j->is_punct("::")))
      ++j;
    if (j != ts.end() && j->kind == Token::Kind::kIdent) unordered_names.insert(j->text);
  }

  // Pass 2a: range-for whose range expression mentions a tracked name.
  for (auto it = ts.begin(); it != ts.end(); ++it) {
    if (!it->is_ident("for")) continue;
    auto j = it + 1;
    if (j == ts.end() || !j->is_punct("(")) continue;
    int depth = 0;
    bool in_range_expr = false;
    for (; j != ts.end(); ++j) {
      if (j->is_punct("("))
        ++depth;
      else if (j->is_punct(")") && --depth == 0)
        break;
      else if (j->is_punct(":") && depth == 1)
        in_range_expr = true;
      else if (in_range_expr && j->kind == Token::Kind::kIdent &&
               unordered_names.count(j->text) != 0)
        add_finding(out, f, "D1", it->line,
                    "range-for over unordered container '" + j->text +
                        "' in an emission path: hash-order reaches the output; iterate a "
                        "sorted copy or use a FlatMap/std::map (DESIGN.md §11 D1)");
    }
  }

  // Pass 2b: explicit iterator walks: tracked.begin()/cbegin()/rbegin().
  for (auto it = ts.begin(); it != ts.end(); ++it) {
    if (it->kind != Token::Kind::kIdent || unordered_names.count(it->text) == 0) continue;
    auto j = it + 1;
    if (j == ts.end() || !(j->is_punct(".") || j->is_punct("->"))) continue;
    ++j;
    if (j != ts.end() && j->kind == Token::Kind::kIdent &&
        (j->text == "begin" || j->text == "cbegin" || j->text == "rbegin"))
      add_finding(out, f, "D1", it->line,
                  "iterator over unordered container '" + it->text +
                      "' in an emission path (see DESIGN.md §11 D1)");
  }
}

// ---- D2: nondeterminism sources in the simulator core ----------------------

void rule_d2(const LexedFile& f, std::vector<Finding>& out) {
  for (const auto& [line, header] : f.includes)
    if (kNondetHeaders.count(header) != 0)
      add_finding(out, f, "D2", line,
                  "#include <" + header +
                      "> in the simulator core: wall-clock and libc entropy must not reach "
                      "architectural state (use common/rng.hpp; allow() host-measurement uses)");

  const auto& ts = f.tokens;
  for (auto it = ts.begin(); it != ts.end(); ++it) {
    if (it->kind != Token::Kind::kIdent) continue;

    if (kNondetTypes.count(it->text) != 0) {
      add_finding(out, f, "D2", it->line,
                  "nondeterministic source '" + it->text +
                      "' in the simulator core: simulation state must derive only from "
                      "MachineConfig::seed via tlrob::Rng");
      continue;
    }

    if (kNondetCalls.count(it->text) != 0) {
      auto j = it + 1;
      if (j != ts.end() && j->is_punct("(") && !prev_is_member_access(it, ts.begin()))
        add_finding(out, f, "D2", it->line,
                    "call to '" + it->text +
                        "()' in the simulator core: host time/entropy is not part of the "
                        "simulated machine");
      continue;
    }

    // Pointer-valued keys: map<T*, ...> iterates in address order (ASLR).
    if (kKeyedContainers.count(it->text) != 0) {
      auto j = it + 1;
      if (j == ts.end() || !j->is_punct("<")) continue;
      int depth = 0;
      bool ptr_in_key = false;
      for (; j != ts.end(); ++j) {
        if (j->is_punct("<"))
          ++depth;
        else if (j->is_punct(">")) {
          if (--depth == 0) break;
        } else if (j->is_punct(",") && depth == 1)
          break;  // end of the key type
        else if (j->is_punct("*") && depth == 1)
          ptr_in_key = true;
        else if (j->is_punct(";"))
          break;
      }
      if (ptr_in_key)
        add_finding(out, f, "D2", it->line,
                    "pointer-valued key in '" + it->text +
                        "<...>': key order is allocation-address order, which ASLR and "
                        "allocator state reshuffle across runs");
    }
  }
}

// ---- C1: every mutex guards something --------------------------------------

void rule_c1(const LexedFile& f, std::vector<Finding>& out) {
  const auto& ts = f.tokens;

  // Mutex-typed declarations: `std::mutex name;` / `Mutex name;` /
  // `mutable std::shared_mutex name;`. A following '(' or '{' means a
  // constructor/function — not a plain member/variable declaration.
  struct Decl {
    std::string name;
    u32 line;
  };
  std::vector<Decl> mutexes;
  for (auto it = ts.begin(); it != ts.end(); ++it) {
    if (it->kind != Token::Kind::kIdent ||
        !(it->text == "mutex" || it->text == "shared_mutex" || it->text == "Mutex"))
      continue;
    auto j = it + 1;
    if (j == ts.end() || j->kind != Token::Kind::kIdent) continue;
    auto k = j + 1;
    if (k != ts.end() && k->is_punct(";")) mutexes.push_back({j->text, j->line});
  }
  if (mutexes.empty()) return;

  // Annotation coverage: names appearing inside TLROB_GUARDED_BY(...) /
  // TLROB_PT_GUARDED_BY(...) / TLROB_REQUIRES(...) / TLROB_ACQUIRE(...).
  std::set<std::string> guarded;
  for (auto it = ts.begin(); it != ts.end(); ++it) {
    if (it->kind != Token::Kind::kIdent) continue;
    if (it->text != "TLROB_GUARDED_BY" && it->text != "TLROB_PT_GUARDED_BY" &&
        it->text != "TLROB_REQUIRES" && it->text != "TLROB_ACQUIRE")
      continue;
    auto j = it + 1;
    if (j == ts.end() || !j->is_punct("(")) continue;
    int depth = 0;
    for (; j != ts.end(); ++j) {
      if (j->is_punct("("))
        ++depth;
      else if (j->is_punct(")") && --depth == 0)
        break;
      else if (j->kind == Token::Kind::kIdent)
        guarded.insert(j->text);
    }
  }

  for (const Decl& m : mutexes)
    if (guarded.count(m.name) == 0)
      add_finding(out, f, "C1", m.line,
                  "mutex '" + m.name +
                      "' guards nothing the analysis can see: annotate the state it protects "
                      "with TLROB_GUARDED_BY(" + m.name +
                      ") (common/thread_annotations.hpp, DESIGN.md §11 C1)");
}

// ---- C2: RAII locking only -------------------------------------------------

void rule_c2(const LexedFile& f, std::vector<Finding>& out) {
  const auto& ts = f.tokens;
  for (auto it = ts.begin(); it != ts.end(); ++it) {
    if (it->kind != Token::Kind::kIdent ||
        !(it->text == "lock" || it->text == "unlock" || it->text == "try_lock"))
      continue;
    if (!prev_is_member_access(it, ts.begin())) continue;
    auto j = it + 1;
    if (j != ts.end() && j->is_punct("("))
      add_finding(out, f, "C2", it->line,
                  "naked ." + it->text +
                      "() call: hold mutexes through a scoped MutexLock (common/sync.hpp) so "
                      "every exit path releases (DESIGN.md §11 C2)");
  }
}

// ---- D3: counter-name registry ---------------------------------------------

/// Counter-name string literals referenced by this file, with lines:
/// .counter("x") / .average("x") / counter_value("x") / counter_or_zero(r, "x") /
/// column_counter(res, "CFG", "x") / counters["x"] / counters.at("x").
std::vector<std::pair<std::string, u32>> counter_literals(const LexedFile& f) {
  std::vector<std::pair<std::string, u32>> out;
  const auto& ts = f.tokens;
  for (auto it = ts.begin(); it != ts.end(); ++it) {
    if (it->kind != Token::Kind::kIdent) continue;
    if (it->text == "counter" || it->text == "average" || it->text == "counter_value" ||
        it->text == "counter_or_zero") {
      // Only the accessor calls, not e.g. a local named "counter": require a
      // member access or a call directly ( `stats.counter("x")` / bare
      // `counter_value("x")` ).
      for (const Token* s : call_string_args(it, ts.end()))
        if (!s->text.empty()) out.emplace_back(s->text, s->line);
    } else if (it->text == "column_counter") {
      // column_counter(result, "CONFIG-NAME", "counter.name"): only the last
      // string argument names a counter; the first is a campaign column.
      const auto args = call_string_args(it, ts.end());
      if (!args.empty() && !args.back()->text.empty())
        out.emplace_back(args.back()->text, args.back()->line);
    } else if (it->text == "counters") {
      auto j = it + 1;
      if (j != ts.end() && j->is_punct("[")) {
        ++j;
        if (j != ts.end() && j->kind == Token::Kind::kString && !j->text.empty())
          out.emplace_back(j->text, j->line);
      } else if (j != ts.end() && (j->is_punct(".") || j->is_punct("->"))) {
        ++j;
        if (j != ts.end() && (j->is_ident("at") || j->is_ident("count") ||
                              j->is_ident("find") || j->is_ident("contains")))
          for (const Token* s : call_string_args(j, ts.end()))
            if (!s->text.empty()) out.emplace_back(s->text, s->line);
      }
    }
  }
  return out;
}

/// Does literal L (as written in code, possibly component-unprefixed, and
/// with a trailing '.' when it is a dynamic prefix) satisfy entry E?
bool literal_matches_entry(const std::string& lit, const RegistryEntry& e) {
  if (e.name == lit) return true;
  if (e.is_pattern()) {
    const std::string prefix = e.name.substr(0, e.name.size() - 1);
    if (lit.compare(0, prefix.size(), prefix) == 0 && lit.size() >= prefix.size()) return true;
    // Dynamic-prefix literal ("violations.", "allocations.t") against a
    // namespaced pattern ("audit.violations.*", "rob.allocations.t*"): the
    // pattern's prefix ends with the literal. Dynamic counter names are
    // always built as `"literal" + suffix`, so the literal is a prefix of
    // the full name even when it does not end at a '.' boundary.
    if (lit.size() >= 2 && prefix.size() >= lit.size() &&
        prefix.compare(prefix.size() - lit.size(), lit.size(), lit) == 0)
      return true;
    return false;
  }
  // Component-local literal ("accesses") against a full name
  // ("l1d.accesses"): the entry ends with "." + literal.
  if (e.name.size() > lit.size() + 1 &&
      e.name.compare(e.name.size() - lit.size() - 1, lit.size() + 1, "." + lit) == 0)
    return true;
  return false;
}

}  // namespace

std::vector<Finding> run_registry_check(const std::vector<LexedFile>& files,
                                        const LintOptions& opts,
                                        const std::string& design_path) {
  const std::vector<RegistryEntry>& registry = opts.registry;
  std::vector<Finding> out;
  std::vector<bool> entry_hit(registry.size(), false);

  for (const LexedFile& f : files) {
    if (!opts.all_scopes && !in_scope("D3", f.display_path)) continue;
    for (const auto& [lit, line] : counter_literals(f)) {
      bool matched = false;
      for (size_t i = 0; i < registry.size(); ++i) {
        if (literal_matches_entry(lit, registry[i])) {
          entry_hit[i] = true;
          matched = true;  // keep scanning: one literal can satisfy several entries
        }
      }
      if (!matched && !f.allowed("D3", line))
        out.push_back(Finding{"D3", f.display_path, line,
                              "counter name \"" + lit +
                                  "\" is not in the DESIGN.md §9 counter-name registry; "
                                  "register it (names in golden fixtures are API)"});
    }
  }

  for (size_t i = 0; i < registry.size(); ++i) {
    if (entry_hit[i] || registry[i].is_pattern()) continue;
    out.push_back(Finding{"D3", design_path, registry[i].line,
                          "registry entry \"" + registry[i].name +
                              "\" is referenced by no code: stale registry entries hide real "
                              "drift, remove it or wire the counter back up"});
  }
  return out;
}

bool LintOptions::rule_enabled(const std::string& id) const {
  return rules.empty() || std::find(rules.begin(), rules.end(), id) != rules.end();
}

bool in_scope(const std::string& rule, const std::string& p) {
  if (rule == "D1") return match_scope(kEmissionScope, p);
  if (rule == "D2") return match_scope(kCoreScope, p);
  if (rule == "D3") return match_scope(kCounterScope, p);
  if (rule == "C1" || rule == "C2") return match_scope(kConcurrencyScope, p);
  return false;
}

std::vector<Finding> run_file_rules(const LexedFile& file, const LintOptions& opts) {
  std::vector<Finding> out;
  auto want = [&](const char* id) {
    return opts.rule_enabled(id) && (opts.all_scopes || in_scope(id, file.display_path));
  };
  if (want("D1")) rule_d1(file, out);
  if (want("D2")) rule_d2(file, out);
  if (want("C1")) rule_c1(file, out);
  if (want("C2")) rule_c2(file, out);
  return out;
}

std::string Finding::format() const {
  std::ostringstream ss;
  ss << path << ":" << line << ": [" << rule << "] " << message;
  return ss.str();
}

std::vector<std::string> rule_catalogue() {
  return {
      "D1  no unordered-container iteration in emission paths (runner record/sinks/golden/"
      "render/json/engine, obs)",
      "D2  no nondeterminism sources in the simulator core (sim, pipeline, rob, memory): "
      "rand/clocks/pointer-keyed maps",
      "D3  StatGroup counter names referenced in code <=> DESIGN.md §9 registry, both "
      "directions",
      "C1  every mutex in a concurrent module is named by a TLROB_GUARDED_BY annotation",
      "C2  RAII locking only in concurrent modules (no naked .lock()/.unlock())",
  };
}

}  // namespace tlrob::lint
