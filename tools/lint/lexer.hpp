// Token-level C++ scanner for tlrob-lint's portable backend.
//
// This is deliberately not a C++ parser: it splits a translation unit into
// identifiers / numbers / strings / punctuation with line numbers, strips
// comments (harvesting `tlrob-lint:` suppression directives from them) and
// records #include targets. The rule implementations (rules.cpp) pattern-
// match over this token stream — coarse next to a real AST, but dependency-
// free, so the analyzer always runs even on a toolchain with no Clang dev
// libraries (the TLROB_LINT_CLANG backend deepens D1/D2 when they exist).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tlrob::lint {

struct Token {
  enum class Kind : u8 {
    kIdent,   // identifiers and keywords
    kNumber,  // numeric literals (pp-numbers, near enough)
    kString,  // string literal; text = content without quotes/escapes undone
    kPunct,   // operators/punctuation; "::" and "->" kept as one token
  };

  Kind kind;
  std::string text;
  u32 line;

  bool is_ident(const char* s) const { return kind == Kind::kIdent && text == s; }
  bool is_punct(const char* s) const { return kind == Kind::kPunct && text == s; }
};

/// One scanned source file plus the lint-relevant side channels.
struct LexedFile {
  std::string path;          // as given to lex_file
  std::string display_path;  // root-relative when known (set by the driver)
  std::vector<Token> tokens;

  /// Suppression directives harvested from comments:
  ///   // tlrob-lint: allow(D1,C2) <justification>
  ///   // tlrob-lint: allow-file(D2) <justification>
  /// An allow() applies to the line the comment starts on and the line
  /// after it (so a standalone comment line can cover the statement below);
  /// allow-file() covers the whole file for the named rules.
  std::map<u32, std::vector<std::string>> line_allows;
  std::vector<std::string> file_allows;

  /// #include targets, in order: the header name without <> or "".
  std::vector<std::pair<u32, std::string>> includes;

  /// True when a rule `id` is suppressed at `line`.
  bool allowed(const std::string& id, u32 line) const;
};

/// Scans `text` (the contents of `path`). Never throws on weird input — an
/// unterminated literal just ends the token stream at end-of-file.
LexedFile lex_source(std::string path, const std::string& text);

/// Reads and scans a file. Throws std::runtime_error when unreadable.
LexedFile lex_file(const std::string& path);

}  // namespace tlrob::lint
