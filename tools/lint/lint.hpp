// tlrob-lint: the repo's own determinism & concurrency static analyzer.
//
// Everything this repository certifies rests on one property: bit-identical
// golden fingerprints across all 13 presets at any --jobs N. The golden
// suite and TSan enforce that property dynamically; tlrob-lint enforces the
// *contracts that make it true* statically, as named rules:
//
//   D1  no iteration over unordered containers in an emission path
//       (stat/fingerprint/JSONL/CSV writers): hash-order is an invisible
//       input, so anything emitted from it is nondeterministic.
//   D2  no nondeterminism sources in the simulator core (src/sim, pipeline,
//       rob, memory): rand()/random_device, wall-clock reads, pointer-
//       valued map/set keys (address-order is ASLR-order).
//   D3  every StatGroup counter name referenced in code appears in the
//       DESIGN.md §9 counter-name registry, and every exact registry entry
//       is live in code (a counter name in a golden fixture is API).
//   C1  every mutex declared in a concurrent module guards something:
//       it must be named by at least one TLROB_GUARDED_BY /
//       TLROB_PT_GUARDED_BY annotation (common/thread_annotations.hpp).
//   C2  no naked .lock()/.unlock() in concurrent modules — a Mutex is held
//       through a scoped MutexLock (RAII) or not at all.
//
// Suppression: `// tlrob-lint: allow(D2) <why>` on (or directly above) the
// offending line; `allow-file(...)` for a whole file. Every suppression is
// a reviewed, justified exception — exactly like a NOLINT.
//
// Backends: the token-level core (lexer.cpp + rules.cpp) always runs; when
// built with TLROB_LINT_CLANG and the Clang dev libraries, an AST backend
// (clang_backend.cpp) re-checks D1/D2 with real type information and its
// findings are merged in.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "lint/lexer.hpp"

namespace tlrob::lint {

struct Finding {
  std::string rule;  // "D1".."D3", "C1", "C2"
  std::string path;  // display (root-relative) path
  u32 line = 0;
  std::string message;

  /// "path:line: [rule] message" — the stable output format.
  std::string format() const;
};

/// One entry of the DESIGN.md §9 counter-name registry. `name` may end in
/// '*' (prefix pattern, for dynamically composed families like obs.t*).
struct RegistryEntry {
  std::string name;
  u32 line = 0;  // in DESIGN.md, for reverse-direction findings
  bool is_pattern() const { return !name.empty() && name.back() == '*'; }
};

struct LintOptions {
  /// When true, every rule runs on every file regardless of its scope list
  /// (fixture tests use this; the repo run scopes by path).
  bool all_scopes = false;

  /// Rules to run; empty = all.
  std::vector<std::string> rules;

  /// Counter registry parsed from DESIGN.md (rule D3 is skipped when empty
  /// unless all_scopes forces fixtures through it with a fixture registry).
  std::vector<RegistryEntry> registry;

  bool rule_enabled(const std::string& id) const;
};

/// True when `rule` applies to root-relative path `p` (substring scopes).
bool in_scope(const std::string& rule, const std::string& p);

/// Token-level backend: runs every enabled per-file rule over `file`.
/// (D3's cross-file direction lives in run_registry_check.)
std::vector<Finding> run_file_rules(const LexedFile& file, const LintOptions& opts);

/// D3 both directions over a set of already-lexed files: code literals vs
/// opts.registry, then exact registry entries vs code (all_scopes lifts the
/// path scoping, as in run_file_rules). `design_path` labels
/// reverse-direction findings.
std::vector<Finding> run_registry_check(const std::vector<LexedFile>& files,
                                        const LintOptions& opts,
                                        const std::string& design_path);

/// Parses the ```counter-registry fenced block out of DESIGN.md §9.
/// Returns empty (and sets *error) when the file or block is missing.
std::vector<RegistryEntry> parse_registry(const std::string& design_path, std::string* error);

/// Translation units listed in a compile_commands.json (absolute paths).
/// Throws std::runtime_error when the database is unreadable or malformed.
std::vector<std::string> compile_db_files(const std::string& db_path);

/// The rule catalogue as "ID  description" lines (for --list-rules and the
/// DESIGN.md §11 doc to stay in sync by eyeball).
std::vector<std::string> rule_catalogue();

#if defined(TLROB_LINT_HAVE_CLANG)
/// Clang LibTooling backend: AST-level D1/D2 over the compile database.
/// Findings are merged (deduplicated by rule/file/line) with the token
/// backend's by the driver.
std::vector<Finding> run_clang_backend(const std::string& compile_db_dir,
                                       const std::vector<std::string>& files,
                                       const LintOptions& opts);
#endif

}  // namespace tlrob::lint
