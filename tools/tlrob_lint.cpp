// tlrob-lint CLI — the repo's determinism & concurrency static analyzer.
//
// Repo mode (CI, ctest):
//   tlrob-lint -p build/compile_commands.json --root .
// lints every translation unit in the compile database plus every header
// under <root>/src, runs the D3 registry check against <root>/DESIGN.md,
// and exits 1 on any finding (2 on usage/IO errors).
//
// Fixture mode (rule tests):
//   tlrob-lint --all-scopes [--rules D1,C2] [--design <registry.md>] file...
// lints exactly the named files with path scoping disabled, which is how
// tests/lint/ proves every rule still bites.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;
using namespace tlrob::lint;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-p compile_commands.json] [--root DIR] [--design FILE]\n"
               "          [--rules D1,D2,...] [--all-scopes] [--list-rules] [file...]\n",
               argv0);
  return 2;
}

/// Root-relative display form of `path` (falls back to the path itself).
std::string display(const fs::path& root, const std::string& path) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty() || rel.native().rfind("..", 0) == 0) return path;
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  std::string root = ".";
  std::string design;
  LintOptions opts;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tlrob-lint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-p" || arg == "--compile-db")
      db_path = value("-p");
    else if (arg == "--root")
      root = value("--root");
    else if (arg == "--design")
      design = value("--design");
    else if (arg == "--all-scopes")
      opts.all_scopes = true;
    else if (arg == "--rules") {
      std::string list = value("--rules");
      for (size_t start = 0; start <= list.size();) {
        const size_t comma = list.find(',', start);
        const std::string id = list.substr(start, comma - start);
        if (!id.empty()) opts.rules.push_back(id);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--list-rules") {
      for (const std::string& line : rule_catalogue()) std::printf("%s\n", line.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "tlrob-lint: unknown flag %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  const fs::path root_path = fs::absolute(root);
  const bool repo_mode = files.empty();

  try {
    if (repo_mode) {
      if (db_path.empty()) {
        std::fprintf(stderr, "tlrob-lint: repo mode needs -p compile_commands.json\n");
        return usage(argv[0]);
      }
      files = compile_db_files(db_path);
      // The compile database only lists .cpp TUs; headers carry contracts
      // too (block_of_pc lived in a header), so walk src/ for them.
      const fs::path src = root_path / "src";
      if (fs::is_directory(src))
        for (const auto& e : fs::recursive_directory_iterator(src))
          if (e.is_regular_file() && e.path().extension() == ".hpp")
            files.push_back(e.path().string());
    }

    // D3 registry (repo mode defaults to <root>/DESIGN.md; fixture mode
    // only runs the registry check when --design names one).
    std::string design_path = design;
    if (design_path.empty() && repo_mode) design_path = (root_path / "DESIGN.md").string();
    if (!design_path.empty() && opts.rule_enabled("D3")) {
      std::string err;
      opts.registry = parse_registry(design_path, &err);
      if (!err.empty()) {
        std::fprintf(stderr, "tlrob-lint: %s\n", err.c_str());
        return 2;
      }
    }

    // Lex once, then run the per-file rules and the cross-file D3 check.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    std::vector<LexedFile> lexed;
    lexed.reserve(files.size());
    for (const std::string& f : files) {
      LexedFile lf = lex_file(f);
      lf.display_path = display(root_path, f);
      lexed.push_back(std::move(lf));
    }

    std::vector<Finding> findings;
    for (const LexedFile& lf : lexed)
      for (Finding& fi : run_file_rules(lf, opts)) findings.push_back(std::move(fi));
    if (!opts.registry.empty() && opts.rule_enabled("D3"))
      for (Finding& fi :
           run_registry_check(lexed, opts, display(root_path, design_path)))
        findings.push_back(std::move(fi));

#if defined(TLROB_LINT_HAVE_CLANG)
    if (!db_path.empty()) {
      const std::string db_dir = fs::path(db_path).parent_path().string();
      for (Finding& fi : run_clang_backend(db_dir, files, opts)) findings.push_back(std::move(fi));
    }
#endif

    // Deterministic report order + dedupe (token and AST backends overlap).
    std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
      if (a.path != b.path) return a.path < b.path;
      if (a.line != b.line) return a.line < b.line;
      return a.rule < b.rule;
    });
    std::set<std::string> seen;
    unsigned reported = 0;
    for (const Finding& fi : findings) {
      const std::string key = fi.path + ":" + std::to_string(fi.line) + ":" + fi.rule;
      if (!seen.insert(key).second) continue;
      std::printf("%s\n", fi.format().c_str());
      ++reported;
    }
    if (reported != 0) {
      std::printf("tlrob-lint: %u finding(s) in %zu file(s)\n", reported, lexed.size());
      return 1;
    }
    std::printf("tlrob-lint: clean (%zu files, %zu registry entries)\n", lexed.size(),
                opts.registry.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tlrob-lint: %s\n", e.what());
    return 2;
  }
}
