#!/usr/bin/env python3
"""Exit-code contract tests for validate_trace.py.

Runs the validator as a subprocess against synthetic trace/series files and
asserts the documented contract: 0 = valid, 1 = contract violation, 2 =
usage/unreadable input — and that violations produce a one-line INVALID
diagnostic, never a Python traceback. Covers the CMP extensions: counter
tracks, per-core process metadata, (pid, tid) track keying and uniqueness,
and the per-thread stall-taxonomy vector in sample series. Registered with
ctest as `validate_trace_py`.
"""

import json
import os
import subprocess
import sys
import tempfile

VALIDATOR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "validate_trace.py")


def meta_thread(pid, tid, name):
    return {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": name}}


def meta_process(pid, name):
    return {"ph": "M", "pid": pid, "name": "process_name", "args": {"name": name}}


def span(pid, tid, name="second_level_grant", ts=10, dur=5):
    return {"ph": "X", "pid": pid, "tid": tid, "name": name, "ts": ts,
            "dur": dur, "args": {}}


def instant(pid, tid, name, ts=12):
    return {"ph": "i", "pid": pid, "tid": tid, "name": name, "ts": ts,
            "s": "t", "args": {}}


def counter(pid, tid, name, ts=10, value=3):
    return {"ph": "C", "pid": pid, "tid": tid, "name": name, "ts": ts,
            "args": {"value": value}}


# A miniature CMP-shaped trace: two core processes whose tid spaces overlap
# (tid 0 on both pids — legal, tracks key on (pid, tid)) plus a shared
# backend process with an MSHR counter track and a DRAM row instant.
CMP_TRACE = {"traceEvents": [
    meta_process(0, "core0"),
    meta_process(1, "core1"),
    meta_process(2, "shared backend"),
    meta_thread(0, 0, "t0 art"),
    meta_thread(1, 0, "t0 mcf"),
    meta_thread(2, 0, "llc mshr pool"),
    meta_thread(2, 1, "dram ch0 bank0"),
    span(0, 0),
    span(1, 0),
    counter(2, 0, "llc_mshr_occupancy"),
    instant(2, 1, "row_conflict"),
]}

LEGACY_TRACE = {"traceEvents": [
    meta_thread(0, 0, "t0 art"),
    span(0, 0),
]}


def sample(cycle, interval=500, stall=None, threads=1):
    th = {"rob": 1, "rob_cap": 32, "iq": 0, "lsq": 0, "dod": 0, "mlp": 0,
          "dcra_iq_cap": 64, "committed": 0, "ipc": 0.0,
          "stall": stall if stall is not None else [cycle, 0, 0, 0, 0, 0, 0, 0]}
    return {"cycle": cycle, "interval": interval, "owner": None, "iq_occ": 0,
            "llc_mshr": 0, "threads": [dict(th) for _ in range(threads)]}


def write(tmp, name, content):
    path = os.path.join(tmp, name)
    with open(path, "w") as f:
        if isinstance(content, str):
            f.write(content)
        else:
            json.dump(content, f)
    return path


def write_series(tmp, name, samples):
    path = os.path.join(tmp, name)
    with open(path, "w") as f:
        for s in samples:
            f.write(json.dumps(s) + "\n")
    return path


def run(*args):
    return subprocess.run([sys.executable, VALIDATOR, *args],
                          capture_output=True, text=True)


failures = []


def check(label, proc, want_code, want_stderr=()):
    ok = proc.returncode == want_code and "Traceback" not in proc.stderr
    for needle in want_stderr:
        if needle not in proc.stderr:
            ok = False
    status = "ok" if ok else f"FAIL (exit {proc.returncode}, wanted {want_code})"
    print(f"  {label:52s} {status}")
    if not ok:
        failures.append(label)
        sys.stderr.write(proc.stderr)
        sys.stderr.write(proc.stdout)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        cmp_trace = write(tmp, "cmp.json", CMP_TRACE)
        legacy = write(tmp, "legacy.json", LEGACY_TRACE)

        dup_tid = {"traceEvents": CMP_TRACE["traceEvents"]
                   + [meta_thread(1, 0, "t0 again")]}
        dup_pid = {"traceEvents": CMP_TRACE["traceEvents"]
                   + [meta_process(1, "core1 again")]}
        cross_pid = {"traceEvents": [meta_thread(0, 0, "t0"), span(1, 0)]}
        bare_counter = {"traceEvents": [meta_thread(0, 0, "t0"),
                                        {"ph": "C", "pid": 0, "tid": 0,
                                         "name": "c", "ts": 1}]}

        good_series = write_series(tmp, "good.jsonl",
                                   [sample(0), sample(500), sample(1000)])
        gap_series = write_series(tmp, "gap.jsonl", [sample(0), sample(1500)])
        no_stall = [sample(0)]
        del no_stall[0]["threads"][0]["stall"]
        no_stall_series = write_series(tmp, "nostall.jsonl", no_stall)
        short_stall = write_series(tmp, "short.jsonl",
                                   [sample(0, stall=[1, 2, 3])])
        shrinking = write_series(
            tmp, "shrink.jsonl",
            [sample(0, stall=[500, 0, 0, 0, 0, 0, 0, 0]),
             sample(500, stall=[100, 0, 0, 0, 0, 0, 0, 0])])
        no_mshr = [sample(0)]
        del no_mshr[0]["llc_mshr"]
        no_mshr_series = write_series(tmp, "nomshr.jsonl", no_mshr)

        print("validate_trace.py exit-code contract:")
        check("CMP trace with counters/processes -> 0",
              run("--trace", cmp_trace, "--require-grants",
                  "--require-counter", "llc_mshr_occupancy"), 0)
        check("legacy single-process trace -> 0",
              run("--trace", legacy, "--require-grants"), 0)
        check("missing required counter track -> 1",
              run("--trace", cmp_trace, "--require-counter", "no_such"), 1,
              want_stderr=["no 'no_such' counter track"])
        check("duplicate (pid, tid) thread_name -> 1",
              run("--trace", write(tmp, "duptid.json", dup_tid)), 1,
              want_stderr=["named twice"])
        check("duplicate process_name pid -> 1",
              run("--trace", write(tmp, "duppid.json", dup_pid)), 1,
              want_stderr=["named twice"])
        check("tid named on one pid, used on another -> 1",
              run("--trace", write(tmp, "crosspid.json", cross_pid)), 1,
              want_stderr=["unnamed thread tracks"])
        check("counter event without args -> 1",
              run("--trace", write(tmp, "barec.json", bare_counter)), 1)
        check("series with stall taxonomy -> 0",
              run("--series", good_series, "--interval", "500"), 0)
        check("series gap -> 1",
              run("--series", gap_series), 1, want_stderr=["gap or disorder"])
        check("thread slice without stall -> 1",
              run("--series", no_stall_series), 1, want_stderr=["stall"])
        check("stall vector wrong arity -> 1",
              run("--series", short_stall), 1, want_stderr=["8 classes"])
        check("stall accounting shrinks -> 1",
              run("--series", shrinking), 1, want_stderr=["backwards"])
        check("sample without llc_mshr -> 1",
              run("--series", no_mshr_series), 1, want_stderr=["llc_mshr"])
        check("no inputs -> 2", run(), 2)
        check("missing trace file -> 2",
              run("--trace", os.path.join(tmp, "nope.json")), 2)
        check("malformed trace JSON -> 1",
              run("--trace", write(tmp, "bad.json", "{nope")), 1)

    if failures:
        print(f"FAIL: {len(failures)} case(s): {', '.join(failures)}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
