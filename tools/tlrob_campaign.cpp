// tlrob-campaign — the experiment-campaign CLI.
//
// Expands a declarative sweep (schemes × thresholds × mixes × run length)
// or a named preset (fig1..fig7, table2, ablation_*) into independent jobs,
// executes them on a work-stealing pool, and streams results into
// structured sinks. Parallel runs are byte-identical to serial ones.
//
//   tlrob-campaign fig2 --jobs 8 --json fig2.jsonl
//   tlrob-campaign --schemes rrob,prob --thresholds 8,16 --mixes 1,2
//       --insts 20000 --warmup 5000 --csv sweep.csv
//   tlrob-campaign --workload trace:app.champsim.gz,trace:app.champsim.gz
//       --insts 20000 --json out.jsonl
//   tlrob-campaign fig2 --manifest fig2.manifest --resume
//   tlrob-campaign --list
#include <cstdio>

#include "runner/cli.hpp"

using namespace tlrob;
using namespace tlrob::runner;

namespace {

void print_usage() {
  std::printf(
      "usage: tlrob-campaign [preset] [options]\n"
      "       tlrob-campaign --schemes a,b --thresholds n,m [options]\n"
      "\n"
      "options (both --key value and key=value forms are accepted):\n"
      "  --jobs N         worker threads (0 = hardware concurrency, 1 = serial)\n"
      "  --insts N        committed-instruction target per run (default 120000)\n"
      "  --warmup N       warmup commits excluded from statistics (default 60000)\n"
      "  --json PATH      JSON-lines sink ('-' = stdout)\n"
      "  --csv PATH       CSV sink ('-' = stdout)\n"
      "  --manifest PATH  completion journal enabling --resume\n"
      "  --resume         replay successful cells from the manifest\n"
      "  --no-render      suppress stdout tables (sink-only run)\n"
      "  --max-cycles N   per-job cycle cap / timeout (0 = derived bound)\n"
      "  --seed N         base RNG seed (default 12345)\n"
      "  --per-job-seeds  derive a distinct deterministic seed per cell\n"
      "  --schemes LIST   baseline32|baseline128|rrob|relaxed|cdr|prob|adaptive\n"
      "  --thresholds L   DoD thresholds crossed with the schemes (default 16)\n"
      "  --mixes LIST     1-based Table 2 mix subset (default: all 11)\n"
      "  --workload SPEC  explicit per-thread workload list instead of --mixes:\n"
      "                   comma-separated profile names, trace:<file> (ChampSim\n"
      "                   format, gzip ok), tracegen:<profile>@<records>[@<seed>],\n"
      "                   or mix:<n>; thread count follows the list length\n"
      "  --name NAME      campaign name for custom sweeps\n"
      "  --cores N        CMP: split each column's threads over N cores\n"
      "  --llc SPEC       shared LLC kb[:ways[:lat[:mshr]]] (implies a backend)\n"
      "  --dram SPEC      DRAM channels[:banks[:tcas[:trcd[:trp]]]]\n"
      "  --parallel-cores[=N]\n"
      "                   run each multi-core machine on one worker thread per\n"
      "                   core (bit-identical to the serial engine; default off).\n"
      "                   N declares the per-job width to the thread-budget\n"
      "                   guard, which clamps --jobs so jobs x width stays\n"
      "                   within the hardware threads\n"
      "  --parallel-quantum N\n"
      "                   parallel-engine epoch quantum in cycles (scheduling\n"
      "                   granularity only; 0 = default)\n"
      "  --allow-oversubscribe\n"
      "                   skip the jobs x parallel-cores thread-budget clamp\n"
      "  --list           list the available presets\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_cli_args(argc, argv);

  if (opts.get_bool("help", false)) {
    print_usage();
    return 0;
  }
  if (opts.get_bool("list", false)) {
    std::printf("%-24s %s\n", "preset", "sweep");
    for (const auto& name : preset_names())
      std::printf("%-24s %s\n", name.c_str(), preset_summary(name).c_str());
    return 0;
  }

  std::string preset;
  if (!opts.positional().empty()) {
    preset = opts.positional().front();
    if (!is_preset(preset)) {
      std::fprintf(stderr, "error: unknown preset '%s' (try --list)\n", preset.c_str());
      return 2;
    }
  }
  return preset_main(preset, argc, argv);
}
