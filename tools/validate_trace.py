#!/usr/bin/env python3
"""Validate the telemetry artifacts the simulator exports (CI trace-smoke).

Checks a Chrome trace-event JSON file (tlrob-trace / simulate trace_json=)
and/or an interval-sample JSONL series (sample_out= / --sample-dir) for the
contracts DESIGN.md §9 documents:

  trace:  parses as JSON; non-empty traceEvents; every event carries the
          fields its phase requires (X -> ts+dur, i -> ts+scope, C -> value
          args, M -> thread_name/process_name metadata); every referenced
          (pid, tid) track has a thread_name; metadata names each track and
          process at most once (a CMP trace is one process per core plus a
          shared-backend process, and merged writers must not collide);
          with --require-grants, at least one second_level_grant duration
          span exists; with --require-counter NAME, at least one 'C' event
          with that name exists (e.g. llc_mshr_occupancy from the shared
          backend).
  series: every line parses; labels sit on the interval grid, strictly
          increase, and have no gaps (sample count == span/interval + 1 —
          the fast-forward replay contract); every sample carries the same
          number of per-thread slices with the expected keys, including the
          per-class "stall" taxonomy vector (cumulative, so monotonically
          non-decreasing across samples).

Exit status: 0 = valid, 1 = contract violation, 2 = usage/unreadable input.

Usage:
    python3 tools/validate_trace.py --trace trace.json --require-grants
    python3 tools/validate_trace.py --trace cmp.json \
        --require-counter llc_mshr_occupancy
    python3 tools/validate_trace.py --series series.jsonl --interval 500
"""

import argparse
import json
import sys
from typing import Any, NoReturn

THREAD_SAMPLE_KEYS = {
    "rob", "rob_cap", "iq", "lsq", "dod", "mlp", "dcra_iq_cap", "committed", "ipc",
    "stall",
}

SERIES_SAMPLE_KEYS = ("cycle", "interval", "owner", "iq_occ", "llc_mshr", "threads")

STALL_CLASS_COUNT = 8


def usage_error(msg: str) -> NoReturn:
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def fail(msg: str) -> NoReturn:
    print(f"INVALID: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path: str, what: str) -> Any:
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        usage_error(f"cannot read {what} {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        fail(f"{what} {path} is not valid JSON: {e}")


def validate_trace(path: str, require_grants: bool,
                   require_counters: list[str]) -> None:
    doc = load_json(path, "trace file")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: no traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents is empty")

    named_tracks: set[tuple[int, int]] = set()
    named_pids: set[int] = set()
    used_tracks: set[tuple[int, int]] = set()
    counter_names: set[str] = set()
    counts: dict[str, int] = {}
    for i, e in enumerate(events):
        for key in ("ph", "pid", "name"):
            if key not in e:
                fail(f"{path}: event {i} lacks '{key}': {e}")
        ph = e["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            if e["name"] == "process_name":
                if "name" not in e.get("args", {}):
                    fail(f"{path}: malformed process_name metadata: {e}")
                if e["pid"] in named_pids:
                    fail(f"{path}: process pid {e['pid']} named twice "
                         "(merged writers must carry distinct pids)")
                named_pids.add(e["pid"])
                continue
            if e["name"] != "thread_name" or "name" not in e.get("args", {}):
                fail(f"{path}: malformed metadata (expected thread_name or "
                     f"process_name): {e}")
            if "tid" not in e:
                fail(f"{path}: thread_name metadata lacks 'tid': {e}")
            track = (e["pid"], e["tid"])
            if track in named_tracks:
                fail(f"{path}: track pid={track[0]} tid={track[1]} named twice "
                     "(per-core tid spaces must not collide)")
            named_tracks.add(track)
            continue
        if "tid" not in e:
            fail(f"{path}: event {i} ({e['name']}) lacks 'tid'")
        used_tracks.add((e["pid"], e["tid"]))
        if "ts" not in e:
            fail(f"{path}: event {i} ({e['name']}) lacks 'ts'")
        if ph == "X" and "dur" not in e:
            fail(f"{path}: complete event {i} ({e['name']}) lacks 'dur'")
        if ph == "i" and "s" not in e:
            fail(f"{path}: instant event {i} ({e['name']}) lacks scope 's'")
        if ph == "C":
            if not e.get("args"):
                fail(f"{path}: counter event {i} ({e['name']}) lacks args")
            counter_names.add(e["name"])

    unnamed = used_tracks - named_tracks
    if unnamed:
        fail(f"{path}: events on unnamed thread tracks: {sorted(unnamed)}")
    for name in require_counters:
        if name not in counter_names:
            fail(f"{path}: no '{name}' counter track "
                 f"(found: {sorted(counter_names)})")
    grants = sum(1 for e in events if e["ph"] == "X" and e["name"] == "second_level_grant")
    if require_grants and grants == 0:
        fail(f"{path}: no second_level_grant duration spans "
             "(expected from a two-level run)")
    by_ph = ", ".join(f"{ph}:{n}" for ph, n in sorted(counts.items()))
    print(f"trace ok: {path}: {len(events)} events ({by_ph}), "
          f"{len(named_tracks)} named tracks, {len(named_pids)} processes, "
          f"{grants} grant spans")


def validate_series(path: str, interval: int) -> None:
    try:
        with open(path) as f:
            lines = [ln for ln in f.read().splitlines() if ln]
    except OSError as e:
        usage_error(f"cannot read series file {path}: {e.strerror or e}")
    if not lines:
        fail(f"{path}: series is empty")

    prev_cycle: int | None = None
    num_threads: int | None = None
    prev_stall: list[int] = []
    step = 0
    for i, line in enumerate(lines):
        try:
            s = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i + 1}: not valid JSON: {e}")
        for key in SERIES_SAMPLE_KEYS:
            if key not in s:
                fail(f"{path}:{i + 1}: sample lacks '{key}'")
        if interval and s["interval"] != interval:
            fail(f"{path}:{i + 1}: interval {s['interval']} != expected {interval}")
        step = s["interval"]
        if step <= 0 or s["cycle"] % step != 0:
            fail(f"{path}:{i + 1}: label {s['cycle']} off the {step}-cycle grid")
        if prev_cycle is not None and s["cycle"] != prev_cycle + step:
            fail(f"{path}:{i + 1}: gap or disorder: {prev_cycle} -> {s['cycle']} "
                 "(fast-forward replay must leave no holes)")
        prev_cycle = s["cycle"]
        if not s["threads"]:
            fail(f"{path}:{i + 1}: no per-thread slices")
        if num_threads is None:
            num_threads = len(s["threads"])
            prev_stall = [0] * num_threads
        elif len(s["threads"]) != num_threads:
            fail(f"{path}:{i + 1}: thread count changed mid-series")
        for t, th in enumerate(s["threads"]):
            missing = THREAD_SAMPLE_KEYS - th.keys()
            if missing:
                fail(f"{path}:{i + 1}: thread {t} lacks {sorted(missing)}")
            stall = th["stall"]
            if not isinstance(stall, list) or len(stall) != STALL_CLASS_COUNT:
                fail(f"{path}:{i + 1}: thread {t} stall vector is not "
                     f"{STALL_CLASS_COUNT} classes: {stall}")
            total = sum(stall)
            if total < prev_stall[t]:
                fail(f"{path}:{i + 1}: thread {t} stall accounting went "
                     f"backwards ({prev_stall[t]} -> {total}); the taxonomy "
                     "is cumulative within the measurement window")
            prev_stall[t] = total

    print(f"series ok: {path}: {len(lines)} samples x {num_threads} threads, "
          f"contiguous on the {step}-cycle grid")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--series", action="append", default=[],
                    help="interval-sample JSONL to validate (repeatable)")
    ap.add_argument("--interval", type=int, default=0,
                    help="expected sampling interval for --series files")
    ap.add_argument("--require-grants", action="store_true",
                    help="fail unless the trace has second_level_grant spans")
    ap.add_argument("--require-counter", action="append", default=[],
                    metavar="NAME",
                    help="fail unless the trace has a 'C' track NAME "
                         "(repeatable)")
    args = ap.parse_args()
    if not args.trace and not args.series:
        usage_error("nothing to validate (pass --trace and/or --series)")

    if args.trace:
        validate_trace(args.trace, args.require_grants, args.require_counter)
    for path in args.series:
        validate_series(path, args.interval)
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
