#!/usr/bin/env python3
"""Fail when simulator throughput regresses past the committed baseline.

Usage:
    bench_sim_speed --benchmark_format=json [--benchmark_repetitions=3] > cur.json
    python3 tools/check_bench_regression.py --baseline BENCH_sim_speed.json \
        --current cur.json

The baseline file (BENCH_sim_speed.json at the repo root) holds a history of
recorded runs. The newest entry names the benchmark set under contract; the
reference value for each benchmark is the median of its last (up to) three
recorded values across the history, so one noisy recording session cannot
silently redefine the contract in either direction. For every benchmark
present in both files the current sim_cycles/s must be at least
(1 - tolerance_pct/100) of the reference. Median aggregates are used when
the current run has repetitions; otherwise the plain iteration row.

Per-benchmark tolerances: the baseline file may carry a top-level
"tolerance_pct_overrides" object mapping benchmark names to their own
tolerance (noisier benches get more slack without loosening the rest).
A --tolerance on the command line overrides both. Every compared row prints
its signed relative delta so improvements and regressions are readable at a
glance in CI logs, not just the pass/fail verdict.

Exit status: 0 = no regression, 1 = regression, 2 = usage/format error.
"""

import argparse
import json
import statistics
import sys
from typing import Any, NoReturn

METRIC = "sim_cycles/s"
HISTORY_WINDOW = 3  # per-benchmark reference = median of the last N recordings


def usage_error(msg: str) -> NoReturn:
    """Exit 2 (usage/format error) with a one-line diagnostic, no traceback."""
    print(msg, file=sys.stderr)
    sys.exit(2)


def load_json(path: str, what: str) -> Any:
    """Load a JSON file, exiting 2 with a one-line diagnostic (no traceback)
    when it is missing, unreadable, or not JSON."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        usage_error(f"error: cannot read {what} {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        usage_error(f"error: {what} {path} is not valid JSON: {e}")


def load_current(path: str) -> dict[str, float]:
    """Map benchmark name -> sim_cycles/s, preferring median aggregates."""
    data = load_json(path, "current-run file")
    if not isinstance(data, dict):
        usage_error(f"error: current-run file {path} is not a JSON object")
    medians: dict[str, float] = {}
    singles: dict[str, float] = {}
    for row in data.get("benchmarks", []):
        if METRIC not in row:
            continue
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                medians[row["name"].removesuffix("_median")] = row[METRIC]
        else:
            # Non-repetition runs have run_type "iteration" (or none at all
            # in older library versions).
            singles[row["name"]] = row[METRIC]
    return medians if medians else singles


def reference_values(history: list[Any], baseline_path: str) -> dict[str, float]:
    """Per-benchmark reference: median of the benchmark's last HISTORY_WINDOW
    recorded values. The newest entry defines which benchmarks are under
    contract; older entries only contribute values for those names."""
    newest = history[-1]
    if not isinstance(newest, dict) or not isinstance(newest.get("benchmarks"), dict):
        usage_error(
            f"error: {baseline_path} newest history entry has no benchmarks object"
        )
    reference: dict[str, float] = {}
    for name in newest["benchmarks"]:
        values: list[float] = []
        for entry in history:
            if not isinstance(entry, dict):
                continue
            bench = entry.get("benchmarks")
            if not isinstance(bench, dict) or name not in bench:
                continue
            if not isinstance(bench[name], (int, float)):
                usage_error(
                    f"error: {baseline_path} records a non-numeric value "
                    f"for {name}"
                )
            values.append(float(bench[name]))
        reference[name] = statistics.median(values[-HISTORY_WINDOW:])
    return reference


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="BENCH_sim_speed.json")
    ap.add_argument("--current", required=True, help="google-benchmark JSON output")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline file's tolerance_pct",
    )
    args = ap.parse_args()

    baseline = load_json(args.baseline, "baseline file")
    if not isinstance(baseline, dict):
        print(f"error: baseline file {args.baseline} is not a JSON object", file=sys.stderr)
        return 2
    history = baseline.get("history", [])
    if not history:
        print(
            f"error: {args.baseline} has no history entries "
            "(record a baseline before checking against one)",
            file=sys.stderr,
        )
        return 2
    newest = history[-1]
    default_tol = (
        args.tolerance if args.tolerance is not None else baseline.get("tolerance_pct", 20)
    )
    overrides = baseline.get("tolerance_pct_overrides", {})
    if isinstance(overrides, dict):
        # "_comment"-style annotation keys are allowed, as elsewhere in the file.
        overrides = {k: v for k, v in overrides.items() if not k.startswith("_")}
    if not isinstance(overrides, dict) or not all(
        isinstance(v, (int, float)) for v in overrides.values()
    ):
        print(
            f"error: {args.baseline} tolerance_pct_overrides must map "
            "benchmark names to numbers",
            file=sys.stderr,
        )
        return 2

    current = load_current(args.current)
    if not current:
        print(f"error: {args.current} contains no {METRIC} rows", file=sys.stderr)
        return 2

    reference = reference_values(history, args.baseline)
    window = min(len(history), HISTORY_WINDOW)
    compared = 0
    failed: list[tuple[str, float]] = []
    print(f"baseline: {newest.get('label', '?')} ({newest.get('date', '?')})")
    print(f"reference: median of last {window} history entr{'y' if window == 1 else 'ies'}")
    print(f"tolerance: -{default_tol:g}% (per-benchmark overrides apply)")
    for name, base in sorted(reference.items()):
        if name not in current:
            print(f"  {name:32s} SKIP (not in current run)")
            continue
        # --tolerance beats the file; a per-benchmark override beats the
        # file's default.
        tol = default_tol if args.tolerance is not None else overrides.get(name, default_tol)
        floor = 1.0 - tol / 100.0
        cur = current[name]
        ratio = cur / base
        delta_pct = (ratio - 1.0) * 100.0
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(
            f"  {name:32s} {base:12.4e} -> {cur:12.4e}  "
            f"({delta_pct:+7.2f}%, floor -{tol:g}%) {verdict}"
        )
        compared += 1
        if ratio < floor:
            failed.append((name, tol))

    if compared == 0:
        print("error: no benchmark overlapped the baseline", file=sys.stderr)
        return 2
    if failed:
        detail = ", ".join(f"{name} (>{tol:g}%)" for name, tol in failed)
        print(f"FAIL: regressed past tolerance: {detail}")
        return 1
    print("PASS: throughput within tolerance of the recorded baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
