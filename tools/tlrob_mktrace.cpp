// tlrob-mktrace — deterministic ChampSim-trace synthesis.
//
// Transcribes a synthetic SPEC profile's functional instruction stream into
// the 64-byte ChampSim record format (src/trace/synth.hpp), so the trace
// frontend can be exercised — in tests, CI and experiments — without any
// externally captured trace. Same arguments, bit-identical file.
//
//   tlrob-mktrace --profile art --records 100000 --out art.champsim.gz
//   tlrob-mktrace --profile mcf --records 4000 --seed 7 --out mcf.trace
//
// Output is gzip-compressed when --out ends in .gz (requires zlib), raw
// records otherwise. The resulting file runs through the campaign CLI as
// workload=trace:<file>.
#include <cstdio>
#include <exception>
#include <string>

#include "common/config.hpp"
#include "trace/byte_source.hpp"
#include "trace/champsim.hpp"
#include "trace/synth.hpp"
#include "workload/spec_profiles.hpp"

using namespace tlrob;

namespace {

void print_usage() {
  std::printf(
      "usage: tlrob-mktrace --profile NAME --records N --out PATH [--seed N]\n"
      "\n"
      "  --profile NAME  synthetic SPEC profile to transcribe (--list to see them)\n"
      "  --records N     dynamic instructions to emit (one 64-byte record each)\n"
      "  --out PATH      output file; '.gz' suffix selects gzip compression%s\n"
      "  --seed N        generator seed (default 1); same inputs => same bytes\n"
      "  --list          list the available profiles\n",
      trace::gzip_supported() ? "" : " (unavailable: built without zlib)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> tokens;
    for (int i = 1; i < argc; ++i) {
      const std::string tok = argv[i];
      size_t dashes = 0;
      while (dashes < tok.size() && tok[dashes] == '-') ++dashes;
      const std::string key = tok.substr(dashes);
      if (dashes == 0 || key.find('=') != std::string::npos) {
        tokens.push_back(key.empty() ? tok : key);
        continue;
      }
      const bool bare = key == "list" || key == "help";
      if (!bare && i + 1 < argc)
        tokens.push_back(key + "=" + argv[++i]);
      else
        tokens.push_back("--" + key);
    }
    const Options opts = Options::from_tokens(tokens);

    if (opts.get_bool("help", false)) {
      print_usage();
      return 0;
    }
    if (opts.get_bool("list", false)) {
      for (const auto& b : spec_benchmarks()) std::printf("%s\n", b.name.c_str());
      return 0;
    }

    const std::string profile = opts.get("profile", "");
    const u64 records = opts.get_u64("records", 0);
    const std::string out = opts.get("out", "");
    const u64 seed = opts.get_u64("seed", 1);
    if (profile.empty() || records == 0 || out.empty()) {
      print_usage();
      return 2;
    }

    const auto recs = trace::synthesize_records(profile, records, seed);
    trace::write_trace_file(out, recs);

    u64 hash = trace::kFnvOffsetBasis;
    for (const auto& r : recs) hash = trace::fnv1a_record(hash, r);
    std::fprintf(stderr, "%s: %llu records (%s), content hash %016llx\n", out.c_str(),
                 static_cast<unsigned long long>(records),
                 out.size() > 3 && out.compare(out.size() - 3, 3, ".gz") == 0 ? "gzip" : "raw",
                 static_cast<unsigned long long>(hash));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
