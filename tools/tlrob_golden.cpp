// tlrob-golden — records / checks the golden-run fixtures under tests/golden.
//
// Default mode is a dry check: re-run every preset and diff against the
// fixtures on disk, exiting nonzero on any drift (the same comparison the
// golden-run gtest suite performs, usable standalone). Rewriting fixtures
// is deliberate: it requires --regen, and is only legitimate after an
// intentional architectural-model change — never to paper over drift from a
// performance refactor.
//
//   tlrob-golden [--dir tests/golden] [--preset NAME ...] [--regen]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/golden.hpp"
#include "runner/presets.hpp"

namespace {

using namespace tlrob::runner;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir DIR] [--preset NAME ...] [--regen]\n"
               "  --dir DIR      fixture directory (default tests/golden)\n"
               "  --preset NAME  restrict to one preset (repeatable)\n"
               "  --regen        rewrite fixtures instead of checking them\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "tests/golden";
  std::vector<std::string> presets;
  bool regen = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--preset" && i + 1 < argc) {
      presets.emplace_back(argv[++i]);
    } else if (arg == "--regen") {
      regen = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (presets.empty()) presets = preset_names();
  for (const std::string& name : presets) {
    if (!is_preset(name)) {
      std::fprintf(stderr, "unknown preset: %s\n", name.c_str());
      return 2;
    }
  }

  int failures = 0;
  for (const std::string& name : presets) {
    const std::string path = dir + "/" + name + ".json";
    const std::vector<GoldenRow> rows = golden_fingerprints(name);
    if (regen) {
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out << golden_to_json(name, rows);
      std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
      continue;
    }
    std::string text;
    if (!read_file(path, text)) {
      std::printf("MISSING %s (run with --regen to record)\n", path.c_str());
      ++failures;
      continue;
    }
    const GoldenFile fixture = golden_from_json(text);
    const RunLengthSpec length = golden_run_length();
    if (fixture.length.insts != length.insts || fixture.length.warmup != length.warmup) {
      std::printf("STALE %s: recorded at insts=%llu warmup=%llu, current length is %llu/%llu\n",
                  path.c_str(), (unsigned long long)fixture.length.insts,
                  (unsigned long long)fixture.length.warmup, (unsigned long long)length.insts,
                  (unsigned long long)length.warmup);
      ++failures;
      continue;
    }
    const std::string diff = golden_diff(fixture.rows, rows);
    if (diff.empty()) {
      std::printf("OK %s (%zu rows)\n", name.c_str(), rows.size());
    } else {
      std::printf("DRIFT %s: %s\n", name.c_str(), diff.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
