// tlrob-trace — one-stop telemetry capture: runs a single configuration /
// mix and writes the full observability bundle (Chrome trace-event JSON for
// ui.perfetto.dev, the interval-sample series as JSON lines and/or CSV, and
// the host self-profile), without wading through the simulate driver's
// statistic dump.
//
//   tlrob-trace mix=2 scheme=rrob threshold=16 out=trace.json
//   tlrob-trace mix=1 sample=500 samples=series.jsonl csv=series.csv
//
// Options (key=value / --key value, as everywhere in this repo):
//   mix=N / positional bench names   workload (default mix=1)
//   out=PATH       Chrome trace JSON (default trace.json; "-" = stdout)
//   samples=PATH   interval series, JSON lines
//   csv=PATH       interval series, CSV
//   sample=N       sampling period in cycles (default 1000)
//   profile=0|1    host self-profile to stderr (default 1)
//   insts= / warmup= / max_cycles= and all sim/config_override.hpp machine
//   knobs (scheme=, threshold=, policy=, rob1=, rob2=, ...) apply.
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/config_override.hpp"
#include "sim/experiment.hpp"
#include "workload/spec_profiles.hpp"

using namespace tlrob;

namespace {

bool write_to(const std::string& path, const char* what,
              const std::function<void(std::ostream&)>& emit) {
  if (path == "-") {
    emit(std::cout);
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open %s sink '%s'\n", what, path.c_str());
    return false;
  }
  emit(out);
  std::fprintf(stderr, "wrote %s to %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);

  std::vector<Benchmark> benches;
  if (opts.has("mix")) {
    benches = mix_benchmarks(table2_mix(static_cast<u32>(opts.get_u64("mix", 1))));
  } else {
    for (const std::string& name : opts.positional()) {
      if (!is_spec_benchmark(name)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
        return 2;
      }
      benches.push_back(spec_benchmark(name));
    }
  }
  if (benches.empty()) benches = mix_benchmarks(table2_mix(1));

  MachineConfig cfg;
  cfg.num_threads = static_cast<u32>(benches.size());
  cfg = apply_overrides(cfg, opts);
  while (benches.size() < cfg.num_threads) benches.push_back(benches.back());
  if (benches.size() > cfg.num_threads) benches.resize(cfg.num_threads);

  cfg.telemetry.sample_interval = opts.get_u64("sample", 1000);
  cfg.telemetry.profile = opts.get_bool("profile", true);

  const u64 insts = opts.get_u64("insts", 120000);
  const u64 warmup = opts.get_u64("warmup", 60000);

  SmtCore core(cfg, benches);
  obs::ChromeTraceWriter chrome;
  core.attach_chrome_trace(&chrome);
  const RunResult r = core.run(insts, opts.get_u64("max_cycles", 0), warmup);

  std::fprintf(stderr, "%llu cycles, %zu samples, %zu trace events\n",
               static_cast<unsigned long long>(r.cycles), r.samples.size(),
               chrome.event_count());

  bool ok = write_to(opts.get("out", "trace.json"), "Chrome trace",
                     [&](std::ostream& os) { chrome.write(os); });
  if (opts.has("samples"))
    ok &= write_to(opts.get("samples"), "sample series (JSONL)",
                   [&](std::ostream& os) { r.samples.write_jsonl(os); });
  if (opts.has("csv"))
    ok &= write_to(opts.get("csv"), "sample series (CSV)",
                   [&](std::ostream& os) { r.samples.write_csv(os); });
  if (cfg.telemetry.profile) core.profiler().print(std::cerr, core.executed_cycles());
  return ok ? 0 : 1;
}
